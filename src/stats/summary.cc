#include "stats/summary.h"

#include <cmath>

namespace saga {

Summary
summarize(const std::vector<double> &samples)
{
    Summary result;
    result.count = samples.size();
    if (samples.empty())
        return result;

    double sum = 0;
    for (double x : samples)
        sum += x;
    result.mean = sum / samples.size();

    if (samples.size() > 1) {
        double ss = 0;
        for (double x : samples) {
            const double d = x - result.mean;
            ss += d * d;
        }
        result.stddev = std::sqrt(ss / (samples.size() - 1));
        // Normal approximation: z(0.975) = 1.96. With the pooled
        // batchCount-sized samples the paper uses, this is effectively
        // exact.
        result.ciHalfWidth =
            1.96 * result.stddev / std::sqrt(double(samples.size()));
    }
    return result;
}

namespace {

/** Stage k (0..2) slice bounds of an n-element run: equal thirds. */
std::pair<std::size_t, std::size_t>
stageBounds(std::size_t n, int k)
{
    return {n * k / 3, n * (k + 1) / 3};
}

} // namespace

StageSummary
summarizeStages(const std::vector<double> &per_batch)
{
    return summarizeStages(
        std::vector<std::vector<double>>{per_batch});
}

StageSummary
summarizeStages(const std::vector<std::vector<double>> &runs)
{
    StageSummary result;
    for (int k = 0; k < 3; ++k) {
        std::vector<double> pooled;
        for (const auto &run : runs) {
            const auto [lo, hi] = stageBounds(run.size(), k);
            pooled.insert(pooled.end(), run.begin() + lo, run.begin() + hi);
        }
        Summary s = summarize(pooled);
        (k == 0 ? result.p1 : k == 1 ? result.p2 : result.p3) = s;
    }
    return result;
}

} // namespace saga
