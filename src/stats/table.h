/**
 * @file
 * Plain-text table printer used by the benchmark harnesses.
 */

#ifndef SAGA_STATS_TABLE_H_
#define SAGA_STATS_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace saga {

/** Column-aligned text table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header)
        : header_(std::move(header))
    {}

    void addRow(std::vector<std::string> row);

    /** Render to @p os with column alignment and a separator rule. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment padding). */
    void printCsv(std::ostream &os) const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p precision fractional digits. */
std::string formatDouble(double value, int precision = 4);

} // namespace saga

#endif // SAGA_STATS_TABLE_H_
