/**
 * @file
 * Summary statistics: mean, standard deviation, 95% confidence interval,
 * and the paper's P1/P2/P3 stage aggregation (Section IV-B).
 */

#ifndef SAGA_STATS_SUMMARY_H_
#define SAGA_STATS_SUMMARY_H_

#include <cstddef>
#include <vector>

namespace saga {

/** Mean / spread / 95% CI of a sample. */
struct Summary
{
    std::size_t count = 0;
    double mean = 0;
    double stddev = 0;     // sample standard deviation
    double ciHalfWidth = 0; // 95% CI half width (normal approximation)

    double low() const { return mean - ciHalfWidth; }
    double high() const { return mean + ciHalfWidth; }

    /** True if the 95% CIs of two summaries overlap ("competitive"). */
    bool
    overlaps(const Summary &other) const
    {
        return low() <= other.high() && other.low() <= high();
    }
};

/** Compute a Summary over @p samples. */
Summary summarize(const std::vector<double> &samples);

/**
 * Split @p per_batch values into three equal stages (early / middle /
 * final) and summarize each — the paper's P1, P2, P3 data points. With
 * fewer than 3 values, stages may be empty (count == 0).
 */
struct StageSummary
{
    Summary p1, p2, p3;

    const Summary &
    stage(int i) const
    {
        return i == 0 ? p1 : (i == 1 ? p2 : p3);
    }
};

StageSummary summarizeStages(const std::vector<double> &per_batch);

/**
 * Stage summary over repeated runs: each run contributes its per-batch
 * values; stage Pk pools the k-th third of every run (the paper averages
 * 1/3 x batchCount x repetitions values per stage).
 */
StageSummary summarizeStages(const std::vector<std::vector<double>> &runs);

} // namespace saga

#endif // SAGA_STATS_SUMMARY_H_
