#include "stats/table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace saga {

void
TextTable::addRow(std::vector<std::string> row)
{
    row.resize(header_.size());
    rows_.push_back(std::move(row));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    const auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]))
               << row[c];
            os << (c + 1 < row.size() ? "  " : "");
        }
        os << '\n';
    };

    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    const auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << row[c] << (c + 1 < row.size() ? "," : "");
        os << '\n';
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
formatDouble(double value, int precision)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
    return buffer;
}

} // namespace saga
