#include "telemetry/perf_counters.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace saga {
namespace telemetry {

#if defined(__linux__)

namespace {

/** type + config for each PerfEvent, in enum order. */
struct EventSpec
{
    std::uint32_t type;
    std::uint64_t config;
};

constexpr std::uint64_t
cacheConfig(std::uint64_t cache, std::uint64_t op, std::uint64_t result)
{
    return cache | (op << 8) | (result << 16);
}

constexpr EventSpec kSpecs[kNumPerfEvents] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE,
     cacheConfig(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                 PERF_COUNT_HW_CACHE_RESULT_ACCESS)},
    {PERF_TYPE_HW_CACHE,
     cacheConfig(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
                 PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {PERF_TYPE_HW_CACHE,
     cacheConfig(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                 PERF_COUNT_HW_CACHE_RESULT_ACCESS)},
    {PERF_TYPE_HW_CACHE,
     cacheConfig(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                 PERF_COUNT_HW_CACHE_RESULT_MISS)},
};

int
openEvent(const EventSpec &spec)
{
    perf_event_attr attr{};
    attr.size = sizeof(attr);
    attr.type = spec.type;
    attr.config = spec.config;
    attr.disabled = 0;
    attr.exclude_kernel = 1; // usable at perf_event_paranoid <= 2
    attr.exclude_hv = 1;
    // inherit=1 folds threads created after this open into the count on
    // read — this is why a PerfSampler must open before the ThreadPool
    // exists. (inherit aggregation requires one fd per event; that is
    // why the events are not a PERF_FORMAT_GROUP.)
    attr.inherit = 1;

    return static_cast<int>(syscall(SYS_perf_event_open, &attr,
                                    /*pid=*/0, /*cpu=*/-1,
                                    /*group_fd=*/-1, /*flags=*/0UL));
}

} // namespace

bool
PerfSampler::open()
{
    if (opened_)
        return available_;
    opened_ = true;

    int first_errno = 0;
    std::size_t live = 0;
    for (std::size_t i = 0; i < kNumPerfEvents; ++i) {
        fds_[i] = openEvent(kSpecs[i]);
        if (fds_[i] >= 0)
            ++live;
        else if (first_errno == 0)
            first_errno = errno;
    }
    available_ = live > 0;

    char buf[160];
    if (live == kNumPerfEvents) {
        std::snprintf(buf, sizeof(buf), "all %zu events live", live);
    } else if (live > 0) {
        std::snprintf(buf, sizeof(buf),
                      "%zu of %zu events live (first failure: %s)", live,
                      kNumPerfEvents, std::strerror(first_errno));
    } else {
        std::snprintf(buf, sizeof(buf),
                      "perf_event_open failed: %s (perf_event_paranoid=%d)",
                      std::strerror(first_errno), paranoidLevel());
    }
    status_ = buf;
    return available_;
}

void
PerfSampler::close()
{
    for (int &fd : fds_) {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
    }
    opened_ = false;
    available_ = false;
    status_ = "closed";
}

PerfValues
PerfSampler::read() const
{
    PerfValues out;
    for (std::size_t i = 0; i < kNumPerfEvents; ++i) {
        if (fds_[i] < 0)
            continue;
        std::uint64_t value = 0;
        if (::read(fds_[i], &value, sizeof(value)) ==
            static_cast<ssize_t>(sizeof(value)))
            out.value[i] = value;
    }
    return out;
}

int
PerfSampler::paranoidLevel()
{
    std::FILE *f = std::fopen("/proc/sys/kernel/perf_event_paranoid", "r");
    if (!f)
        return -2;
    int level = -2;
    if (std::fscanf(f, "%d", &level) != 1)
        level = -2;
    std::fclose(f);
    return level;
}

#else // !__linux__

bool
PerfSampler::open()
{
    opened_ = true;
    available_ = false;
    status_ = "perf_event_open unavailable on this platform";
    return false;
}

void
PerfSampler::close()
{
    opened_ = false;
    available_ = false;
    status_ = "closed";
}

PerfValues
PerfSampler::read() const
{
    return PerfValues{};
}

int
PerfSampler::paranoidLevel()
{
    return -2;
}

#endif

} // namespace telemetry
} // namespace saga
