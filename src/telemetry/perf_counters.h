/**
 * @file
 * perf_event_open wrapper — real hardware counters for the phase profile.
 *
 * The paper characterizes the update/compute phases with Intel PCM
 * (cycles, instructions, cache hit ratios, MPKI — Fig. 10). Where the
 * kernel and permissions allow it, this wrapper samples the generic
 * perf events (cycles, instructions, L1D and last-level-cache read
 * accesses/misses) around the telemetry phases so a run on real hardware
 * reports measured hit ratios and MPKI next to the wall-clock numbers.
 *
 * Portability and privilege are both best-effort by design:
 *  - non-Linux builds compile to a permanent "unavailable" stub;
 *  - on Linux, every event is opened independently and a refused event
 *    (EACCES under a strict perf_event_paranoid, ENOENT on a PMU-less
 *    VM) simply stays unavailable — the run continues, and the JSON dump
 *    records which events were live and why the rest were not;
 *  - the kernel has no *generic* private-L2 event (L2 is
 *    microarchitecture-specific), so the portable pair here is L1D + LLC;
 *    docs/TELEMETRY.md maps this onto the paper's L2/LLC methodology.
 *
 * Counters are opened with inherit=1: threads created *after* open() are
 * aggregated into the same counts, so open() must run before the worker
 * pool is constructed (the bench mains do this).
 */

#ifndef SAGA_TELEMETRY_PERF_COUNTERS_H_
#define SAGA_TELEMETRY_PERF_COUNTERS_H_

#include <array>
#include <cstdint>
#include <string>

namespace saga {
namespace telemetry {

/** The sampled hardware events, in fixed order. */
enum class PerfEvent : std::uint32_t {
    Cycles,
    Instructions,
    L1dLoads,
    L1dMisses,
    LlcLoads,
    LlcMisses,
    kCount
};

inline constexpr std::size_t kNumPerfEvents =
    static_cast<std::size_t>(PerfEvent::kCount);

constexpr const char *
name(PerfEvent e)
{
    switch (e) {
      case PerfEvent::Cycles: return "cycles";
      case PerfEvent::Instructions: return "instructions";
      case PerfEvent::L1dLoads: return "l1d_loads";
      case PerfEvent::L1dMisses: return "l1d_misses";
      case PerfEvent::LlcLoads: return "llc_loads";
      case PerfEvent::LlcMisses: return "llc_misses";
      case PerfEvent::kCount: break;
    }
    return "?";
}

/** One sample: the current value of every event (0 if unavailable). */
struct PerfValues
{
    std::array<std::uint64_t, kNumPerfEvents> value{};

    std::uint64_t
    operator[](PerfEvent e) const
    {
        return value[static_cast<std::size_t>(e)];
    }
};

/**
 * A set of independently opened hardware counters for this process.
 *
 * Thread ownership: open(), close(), and read() must all be called from
 * the same thread (the driver thread that brackets the sampled phases);
 * worker activity is captured via inherit, not via concurrent reads.
 */
class PerfSampler
{
  public:
    PerfSampler() = default;
    ~PerfSampler() { close(); }

    PerfSampler(const PerfSampler &) = delete;
    PerfSampler &operator=(const PerfSampler &) = delete;

    /**
     * Try to open every event. Idempotent. @return true if at least one
     * event is live. On failure the sampler stays usable as a no-op and
     * status() explains what happened.
     */
    bool open();

    void close();

    /** True if at least one event opened successfully. */
    bool available() const { return available_; }

    /** True if this specific event is live. */
    bool
    eventAvailable(PerfEvent e) const
    {
        return fds_[static_cast<std::size_t>(e)] >= 0;
    }

    /** Human-readable open outcome (also exported to the JSON dump). */
    const std::string &status() const { return status_; }

    /** Read all live events (unavailable events read as 0). */
    PerfValues read() const;

    /**
     * Value of /proc/sys/kernel/perf_event_paranoid, or -2 when the file
     * is unreadable (non-Linux, masked /proc). Level <= 2 is generally
     * required for unprivileged per-process counting.
     */
    static int paranoidLevel();

  private:
    std::array<int, kNumPerfEvents> fds_{-1, -1, -1, -1, -1, -1};
    bool opened_ = false;
    bool available_ = false;
    std::string status_ = "not opened";
};

} // namespace telemetry
} // namespace saga

#endif // SAGA_TELEMETRY_PERF_COUNTERS_H_
