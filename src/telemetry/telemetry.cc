#include "telemetry/telemetry.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <ostream>
#include <vector>

#include "platform/spinlock.h"
#include "platform/thread_annotations.h"

namespace saga {
namespace telemetry {

namespace {

/** Emit a double that always parses as a JSON number. */
void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v))
        v = 0;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    os << buf;
}

/** Shared metrics-JSON writer (enabled and compiled-out builds emit the
    same schema; compiled-out dumps are all zeros). */
void
writeMetricsJsonImpl(std::ostream &os, const MetricsSnapshot &snap,
                     bool metricsOn, bool traceOn, bool compiledOut)
{
    os << "{\n";
    os << "  \"schema\": \"" << kSchemaName << "\",\n";
    os << "  \"version\": " << kSchemaVersion << ",\n";
    os << "  \"enabled\": " << (metricsOn ? "true" : "false") << ",\n";
    os << "  \"compiled_out\": " << (compiledOut ? "true" : "false")
       << ",\n";
    os << "  \"threads\": " << snap.threads << ",\n";

    os << "  \"counters\": {";
    for (std::size_t i = 0; i < kNumCounters; ++i) {
        os << (i ? ",\n    " : "\n    ");
        os << '"' << name(static_cast<Counter>(i))
           << "\": " << snap.counters[i];
    }
    os << "\n  },\n";

    os << "  \"phases\": {";
    for (std::size_t i = 0; i < kNumPhases; ++i) {
        const PhaseTotals &pt = snap.phases[i];
        double total = static_cast<double>(pt.totalNs) * 1e-9;
        double mean = pt.count ? total / static_cast<double>(pt.count) : 0;
        os << (i ? ",\n    " : "\n    ");
        os << '"' << name(static_cast<Phase>(i)) << "\": {\"count\": "
           << pt.count << ", \"total_s\": ";
        jsonNumber(os, total);
        os << ", \"mean_s\": ";
        jsonNumber(os, mean);
        os << ", \"min_s\": ";
        jsonNumber(os, static_cast<double>(pt.minNs) * 1e-9);
        os << ", \"max_s\": ";
        jsonNumber(os, static_cast<double>(pt.maxNs) * 1e-9);
        os << '}';
    }
    os << "\n  },\n";

    os << "  \"perf\": {\n";
    os << "    \"available\": " << (snap.perfAvailable ? "true" : "false")
       << ",\n";
    os << "    \"status\": \"" << snap.perfStatus << "\",\n";
    os << "    \"paranoid_level\": " << PerfSampler::paranoidLevel()
       << ",\n";
    os << "    \"events\": {";
    for (std::size_t i = 0; i < kNumPerfEvents; ++i) {
        os << (i ? ", " : "");
        os << '"' << name(static_cast<PerfEvent>(i))
           << "\": " << (snap.perfEventLive[i] ? "true" : "false");
    }
    os << "},\n";
    os << "    \"phases\": {";
    bool firstPhase = true;
    for (std::size_t i = 0; i < kNumPhases; ++i) {
        const PerfPhaseTotals &pp = snap.perf[i];
        if (pp.samples == 0)
            continue;
        os << (firstPhase ? "\n      " : ",\n      ");
        firstPhase = false;
        os << '"' << name(static_cast<Phase>(i))
           << "\": {\"samples\": " << pp.samples;
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            os << ", \"" << name(static_cast<PerfEvent>(e))
               << "\": " << pp.delta[e];

        auto live = [&](PerfEvent e) {
            return snap.perfEventLive[static_cast<std::size_t>(e)];
        };
        auto delta = [&](PerfEvent e) {
            return static_cast<double>(
                pp.delta[static_cast<std::size_t>(e)]);
        };
        double instructions = delta(PerfEvent::Instructions);
        if (live(PerfEvent::Cycles) && live(PerfEvent::Instructions) &&
            delta(PerfEvent::Cycles) > 0) {
            os << ", \"ipc\": ";
            jsonNumber(os, instructions / delta(PerfEvent::Cycles));
        }
        if (live(PerfEvent::L1dLoads) && live(PerfEvent::L1dMisses) &&
            delta(PerfEvent::L1dLoads) > 0) {
            os << ", \"l1d_hit_ratio\": ";
            jsonNumber(os, 1.0 - delta(PerfEvent::L1dMisses) /
                                     delta(PerfEvent::L1dLoads));
        }
        if (live(PerfEvent::L1dMisses) && live(PerfEvent::Instructions) &&
            instructions > 0) {
            os << ", \"l1d_mpki\": ";
            jsonNumber(os,
                       delta(PerfEvent::L1dMisses) / instructions * 1000.0);
        }
        if (live(PerfEvent::LlcLoads) && live(PerfEvent::LlcMisses) &&
            delta(PerfEvent::LlcLoads) > 0) {
            os << ", \"llc_hit_ratio\": ";
            jsonNumber(os, 1.0 - delta(PerfEvent::LlcMisses) /
                                     delta(PerfEvent::LlcLoads));
        }
        if (live(PerfEvent::LlcMisses) && live(PerfEvent::Instructions) &&
            instructions > 0) {
            os << ", \"llc_mpki\": ";
            jsonNumber(os,
                       delta(PerfEvent::LlcMisses) / instructions * 1000.0);
        }
        os << '}';
    }
    os << (firstPhase ? "" : "\n    ") << "}\n";
    os << "  },\n";

    os << "  \"trace\": {\"enabled\": " << (traceOn ? "true" : "false")
       << ", \"events\": " << snap.traceEvents
       << ", \"dropped\": " << snap.traceDropped << "}\n";
    os << "}\n";
}

void
writeTraceJsonImpl(std::ostream &os, const std::vector<TraceEvent> &events)
{
    os << "{\"traceEvents\":[\n";
    os << " {\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,"
          "\"args\":{\"name\":\"saga\"}}";
    std::uint32_t maxTid = 0;
    for (const TraceEvent &ev : events)
        maxTid = std::max(maxTid, ev.tid);
    if (!events.empty()) {
        for (std::uint32_t t = 0; t <= maxTid; ++t)
            os << ",\n {\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,"
               << "\"tid\":" << t << ",\"args\":{\"name\":\"saga thread "
               << t << "\"}}";
    }
    for (const TraceEvent &ev : events) {
        char ts[40];
        std::snprintf(ts, sizeof(ts), "%.3f",
                      static_cast<double>(ev.tsNs) / 1000.0);
        os << ",\n {\"name\":\"" << name(ev.phase)
           << "\",\"cat\":\"saga\",\"ph\":\"" << ev.type
           << "\",\"pid\":1,\"tid\":" << ev.tid << ",\"ts\":" << ts << '}';
    }
    os << "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{\"schema\":\""
       << kTraceSchemaName << "\",\"version\":" << kTraceSchemaVersion
       << "}}\n";
}

} // namespace

#ifndef SAGA_TELEMETRY_DISABLED

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
std::atomic<bool> g_trace_enabled{false};
} // namespace detail

namespace {

/** Cap per thread; beyond it events are counted as dropped, never
    silently truncated (the dump reports the drop count). */
constexpr std::size_t kMaxTraceEventsPerThread = std::size_t(1) << 20;

struct PhaseAcc
{
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
    std::uint64_t minNs = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t maxNs = 0;
};

struct TraceRec
{
    std::uint64_t tsNs;
    Phase phase;
    char type;
};

/**
 * One thread's private accumulators. Cache-line aligned so two threads'
 * slots never share a line; all mutation is by the owning thread, with
 * aggregation happening only at quiescent points (the pool barrier that
 * separates phases orders those reads after the workers' writes).
 */
struct alignas(64) ThreadSlot
{
    std::array<std::uint64_t, kNumCounters> counters{};
    std::array<PhaseAcc, kNumPhases> phases{};
    std::vector<TraceRec> trace;
    std::uint64_t traceDropped = 0;

    void
    reset()
    {
        counters.fill(0);
        phases.fill(PhaseAcc{});
        trace.clear();
        traceDropped = 0;
    }
};

class Registry
{
  public:
    static Registry &
    instance()
    {
        static Registry r;
        return r;
    }

    /** This thread's slot, registering it on first use. The slot pointer
        stays valid for the thread's lifetime (slots are never freed while
        the registry lives; growth moves only the owning unique_ptrs). */
    ThreadSlot &
    slot()
    {
        thread_local ThreadSlot *tls = nullptr;
        if (!tls)
            tls = registerThread();
        return *tls;
    }

    std::uint64_t
    nowNs() const
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - epoch_)
                .count());
    }

    MetricsSnapshot
    aggregate()
    {
        MetricsSnapshot out;
        SpinGuard guard(lock_);
        out.threads = slots_.size();
        for (const auto &slotPtr : slots_) {
            const ThreadSlot &s = *slotPtr;
            for (std::size_t i = 0; i < kNumCounters; ++i) {
                if (aggregatesMax(static_cast<Counter>(i)))
                    out.counters[i] =
                        std::max(out.counters[i], s.counters[i]);
                else
                    out.counters[i] += s.counters[i];
            }
            for (std::size_t i = 0; i < kNumPhases; ++i) {
                const PhaseAcc &acc = s.phases[i];
                if (acc.count == 0)
                    continue;
                PhaseTotals &pt = out.phases[i];
                if (pt.count == 0)
                    pt.minNs = acc.minNs;
                else
                    pt.minNs = std::min(pt.minNs, acc.minNs);
                pt.count += acc.count;
                pt.totalNs += acc.totalNs;
                pt.maxNs = std::max(pt.maxNs, acc.maxNs);
            }
            out.traceEvents += s.trace.size();
            out.traceDropped += s.traceDropped;
        }
        return out;
    }

    std::vector<TraceEvent>
    collectTrace()
    {
        std::vector<TraceEvent> out;
        SpinGuard guard(lock_);
        for (std::size_t t = 0; t < slots_.size(); ++t) {
            for (const TraceRec &rec : slots_[t]->trace) {
                TraceEvent ev;
                ev.tsNs = rec.tsNs;
                ev.tid = static_cast<std::uint32_t>(t);
                ev.phase = rec.phase;
                ev.type = rec.type;
                out.push_back(ev);
            }
        }
        return out;
    }

    void
    resetAll()
    {
        SpinGuard guard(lock_);
        for (const auto &slotPtr : slots_)
            slotPtr->reset();
    }

  private:
    Registry() = default;

    ThreadSlot *
    registerThread()
    {
        // hotpath-allow: first-touch slow path, one lock per thread life
        SpinGuard guard(lock_);
        // hotpath-allow: one allocation per thread lifetime, amortized
        slots_.push_back(std::make_unique<ThreadSlot>());
        return slots_.back().get();
    }

    std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
    SpinLock lock_;
    std::vector<std::unique_ptr<ThreadSlot>> slots_ SAGA_GUARDED_BY(lock_);
};

/**
 * Process perf counters plus the per-phase delta accumulators. The
 * sampler itself is driver-thread-only (see perf_counters.h); the
 * accumulators take a spinlock because sampling is per-phase, not
 * per-element — never on the element hot path.
 */
struct PerfState
{
    PerfSampler sampler;
    SpinLock lock;
    std::array<PerfPhaseTotals, kNumPhases> perPhase SAGA_GUARDED_BY(lock);
};

PerfState &
perfState()
{
    static PerfState p;
    return p;
}

void
pushTrace(Phase phase, char type, std::uint64_t tsNs)
{
    ThreadSlot &s = Registry::instance().slot();
    if (s.trace.size() >= kMaxTraceEventsPerThread) {
        ++s.traceDropped;
        return;
    }
    s.trace.push_back(TraceRec{tsNs, phase, type});
}

} // namespace

namespace detail {

void
addCount(Counter c, std::uint64_t n)
{
    Registry::instance().slot().counters[static_cast<std::size_t>(c)] += n;
}

void
maxCount(Counter c, std::uint64_t v)
{
    std::uint64_t &slot =
        Registry::instance().slot().counters[static_cast<std::size_t>(c)];
    slot = std::max(slot, v);
}

} // namespace detail

PhaseScope::PhaseScope(Phase phase, unsigned flags) : phase_(phase)
{
    record_ = enabled();
    trace_ = traceEnabled();
    perf_ = (flags & kSamplePerf) != 0 && record_ &&
            perfState().sampler.available();
    timed_ = record_ || trace_ || (flags & kAlwaysTime) != 0;
    armed_ = true;
    if (perf_)
        perfStart_ = perfState().sampler.read();
    if (timed_)
        startNs_ = Registry::instance().nowNs();
    if (trace_)
        pushTrace(phase_, 'B', startNs_);
}

double
PhaseScope::finish()
{
    if (!armed_)
        return seconds_;
    armed_ = false;

    std::uint64_t endNs = 0;
    std::uint64_t elapsed = 0;
    if (timed_) {
        endNs = Registry::instance().nowNs();
        elapsed = endNs - startNs_;
        seconds_ = static_cast<double>(elapsed) * 1e-9;
    }
    if (trace_)
        pushTrace(phase_, 'E', endNs);
    if (record_) {
        PhaseAcc &acc = Registry::instance()
                            .slot()
                            .phases[static_cast<std::size_t>(phase_)];
        ++acc.count;
        acc.totalNs += elapsed;
        acc.minNs = std::min(acc.minNs, elapsed);
        acc.maxNs = std::max(acc.maxNs, elapsed);
    }
    if (perf_) {
        PerfState &ps = perfState();
        PerfValues end = ps.sampler.read();
        SpinGuard guard(ps.lock);
        PerfPhaseTotals &acc =
            ps.perPhase[static_cast<std::size_t>(phase_)];
        for (std::size_t e = 0; e < kNumPerfEvents; ++e)
            acc.delta[e] += end.value[e] - perfStart_.value[e];
        ++acc.samples;
    }
    return seconds_;
}

void
setEnabled(bool on)
{
    // relaxed: quiescent-toggle flag; see enabled().
    detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

void
setTraceEnabled(bool on)
{
    // relaxed: quiescent-toggle flag; see traceEnabled().
    detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

bool
enablePerf()
{
    return perfState().sampler.open();
}

bool
perfAvailable()
{
    return perfState().sampler.available();
}

std::string
perfStatus()
{
    return perfState().sampler.status();
}

MetricsSnapshot
snapshot()
{
    MetricsSnapshot out = Registry::instance().aggregate();
    PerfState &ps = perfState();
    out.perfAvailable = ps.sampler.available();
    out.perfStatus = ps.sampler.status();
    for (std::size_t e = 0; e < kNumPerfEvents; ++e)
        out.perfEventLive[e] =
            ps.sampler.eventAvailable(static_cast<PerfEvent>(e));
    {
        SpinGuard guard(ps.lock);
        out.perf = ps.perPhase;
    }
    for (std::size_t i = 0; i < kNumPhases; ++i)
        if (out.phases[i].count == 0)
            out.phases[i].minNs = 0;
    return out;
}

std::vector<TraceEvent>
traceSnapshot()
{
    return Registry::instance().collectTrace();
}

void
reset()
{
    Registry::instance().resetAll();
    PerfState &ps = perfState();
    SpinGuard guard(ps.lock);
    ps.perPhase.fill(PerfPhaseTotals{});
}

void
writeMetricsJson(std::ostream &os)
{
    writeMetricsJsonImpl(os, snapshot(), enabled(), traceEnabled(),
                         /*compiledOut=*/false);
}

void
writeTraceJson(std::ostream &os)
{
    writeTraceJsonImpl(os, traceSnapshot());
}

#else // SAGA_TELEMETRY_DISABLED

void
writeMetricsJson(std::ostream &os)
{
    MetricsSnapshot snap;
    snap.perfStatus = "telemetry compiled out";
    writeMetricsJsonImpl(os, snap, /*metricsOn=*/false,
                         /*traceOn=*/false, /*compiledOut=*/true);
}

void
writeTraceJson(std::ostream &os)
{
    writeTraceJsonImpl(os, {});
}

#endif // SAGA_TELEMETRY_DISABLED

bool
writeMetricsJson(const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeMetricsJson(os);
    return static_cast<bool>(os);
}

bool
writeTraceJson(const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeTraceJson(os);
    return static_cast<bool>(os);
}

} // namespace telemetry
} // namespace saga
