/**
 * @file
 * The metrics contract: every counter and phase the telemetry layer can
 * export, as closed enums with stable names.
 *
 * The enums are deliberately closed (no dynamic registration): hot paths
 * index fixed per-thread arrays with a compile-time constant, the JSON
 * schema is enumerable without running anything, and docs/TELEMETRY.md can
 * document every name — which `tools/check_telemetry.py` enforces in CI.
 * Adding a metric means adding an enumerator + a name here *and* a row in
 * docs/TELEMETRY.md.
 */

#ifndef SAGA_TELEMETRY_METRICS_H_
#define SAGA_TELEMETRY_METRICS_H_

#include <cstddef>
#include <cstdint>

namespace saga {
namespace telemetry {

/** Exported JSON schema identity (see docs/TELEMETRY.md). */
inline constexpr const char *kSchemaName = "saga.telemetry";
inline constexpr int kSchemaVersion = 1;

/** Trace-export schema identity (Chrome trace_event JSON). */
inline constexpr const char *kTraceSchemaName = "saga.trace";
inline constexpr int kTraceSchemaVersion = 1;

/**
 * Monotonic event counters, accumulated per thread on the hot paths and
 * summed only at aggregation time.
 */
enum class Counter : std::uint32_t {
    IngestBatches,        ///< batches handed to DynGraph::update
    IngestEdgesSeen,      ///< raw edges offered to a store updateBatch pass
    IngestEdgesInserted,  ///< edges that created a new adjacency entry
    IngestDuplicates,     ///< edges deduplicated against an existing entry
    ScatterEdges,         ///< edges scattered by PartitionedBatch::build
    StingerBlocksAllocated, ///< fresh Stinger edge blocks
    DahPromotions,        ///< vertices promoted to DAH high-degree tables
    DahFlushes,           ///< DAH chunk flush operations
    HybridT0Vertices,     ///< vertices that entered the hybrid inline tier
    HybridT1Vertices,     ///< hybrid promotions into the T1 linear tier
    HybridT2Vertices,     ///< hybrid promotions into the T2 hash tier
    HybridPromotions,     ///< all hybrid tier promotions (T0→T1 + T1→T2)
    HybridProbeLenMax,    ///< longest hub-table probe sequence (max-agg)
    ComputeRounds,        ///< frontier/power-iteration rounds executed
    ComputeFrontierVertices, ///< vertices processed across all rounds
    ComputeAffectedVertices, ///< batch-affected vertices fed to INC
    BfsPushRounds,        ///< BFS rounds run sparse / top-down (push)
    BfsPullRounds,        ///< BFS rounds run dense / bottom-up (pull)
    CcSparseRounds,       ///< CC rounds run as sparse frontier pushes
    CcDenseRounds,        ///< CC rounds run as dense full-graph pulls
    PrPullRounds,         ///< PR rounds run as contrib-hoisted pulls
    PrBlockedRounds,      ///< PR rounds run propagation-blocked (push)
    PrBinFlushes,         ///< full destination slabs sealed while binning
    PrHubVertices,        ///< hub vertices pulled by the hybrid PR path
    ServeRequests,        ///< all requests admitted to the service API
    ServePointReads,      ///< degree / neighbors snapshot reads
    ServeAlgoReads,       ///< BFS-distance / PageRank-top-k reads
    ServeUpdatesAccepted, ///< update requests admitted by the queue
    ServeUpdatesShed,     ///< update requests fast-rejected (backlog)
    ServeUpdateEdges,     ///< edges admitted across accepted updates
    ServeEpochs,          ///< epochs published by the serving loop
    kCount
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);

/**
 * True for counters that aggregate across threads (and across
 * SAGA_COUNT_MAX calls on one thread) by *maximum* instead of sum —
 * high-water marks like the longest probe sequence a hub table ever
 * saw. Everything else is a monotone sum.
 */
constexpr bool
aggregatesMax(Counter c)
{
    return c == Counter::HybridProbeLenMax;
}

/**
 * Timed phases. Names form a hierarchy by prefix: "update/scatter" is
 * always nested inside an "update" span (see docs/TELEMETRY.md for the
 * full tree). The aggregated metrics are flat per-name sums; the nesting
 * is visible in the trace export.
 */
enum class Phase : std::uint32_t {
    Update,          ///< whole update phase of one batch
    UpdateScatter,   ///< PartitionedBatch counting-sort scatter
    UpdateApply,     ///< store updateBatch consumption (both orientations)
    Compute,         ///< whole compute phase of one batch
    ComputeAffected, ///< affected-vertex collection (INC)
    ComputeRound,    ///< one frontier / power-iteration round
    ComputeContrib,  ///< contrib[v] = rank[v]/outDegree(v) build (PR)
    ComputeBin,      ///< blocked-PR binning sweep over out-edges
    ComputeAccumulate, ///< blocked-PR per-bin drain + rank finalize
    PipelineStage,   ///< writer-lane scatter+classify of the next epoch
    PipelineStall,   ///< driver blocked on the writer lane (no overlap)
    PipelinePublish, ///< quiescent publish window between epochs
    ServeEpoch,      ///< one full iteration of the serving epoch loop
    ServeStage,      ///< read-only staging of the drained batch
    ServeRefresh,    ///< algorithm refresh (BFS + PR) on the new epoch
    ServePublish,    ///< reader-excluded publish window (graph or swap)
    kCount
};

inline constexpr std::size_t kNumPhases =
    static_cast<std::size_t>(Phase::kCount);

constexpr const char *
name(Counter c)
{
    switch (c) {
      case Counter::IngestBatches: return "ingest.batches";
      case Counter::IngestEdgesSeen: return "ingest.edges_seen";
      case Counter::IngestEdgesInserted: return "ingest.edges_inserted";
      case Counter::IngestDuplicates: return "ingest.duplicates";
      case Counter::ScatterEdges: return "scatter.edges";
      case Counter::StingerBlocksAllocated:
        return "stinger.blocks_allocated";
      case Counter::DahPromotions: return "dah.promotions";
      case Counter::DahFlushes: return "dah.flushes";
      case Counter::HybridT0Vertices: return "hybrid.t0_vertices";
      case Counter::HybridT1Vertices: return "hybrid.t1_vertices";
      case Counter::HybridT2Vertices: return "hybrid.t2_vertices";
      case Counter::HybridPromotions: return "hybrid.promotions";
      case Counter::HybridProbeLenMax: return "hybrid.probe_len_max";
      case Counter::ComputeRounds: return "compute.rounds";
      case Counter::ComputeFrontierVertices:
        return "compute.frontier_vertices";
      case Counter::ComputeAffectedVertices:
        return "compute.affected_vertices";
      case Counter::BfsPushRounds: return "bfs.push_rounds";
      case Counter::BfsPullRounds: return "bfs.pull_rounds";
      case Counter::CcSparseRounds: return "cc.sparse_rounds";
      case Counter::CcDenseRounds: return "cc.dense_rounds";
      case Counter::PrPullRounds: return "pr.pull_rounds";
      case Counter::PrBlockedRounds: return "pr.blocked_rounds";
      case Counter::PrBinFlushes: return "pr.bin_flushes";
      case Counter::PrHubVertices: return "pr.hub_vertices";
      case Counter::ServeRequests: return "serve.requests";
      case Counter::ServePointReads: return "serve.point_reads";
      case Counter::ServeAlgoReads: return "serve.algo_reads";
      case Counter::ServeUpdatesAccepted:
        return "serve.updates_accepted";
      case Counter::ServeUpdatesShed: return "serve.updates_shed";
      case Counter::ServeUpdateEdges: return "serve.update_edges";
      case Counter::ServeEpochs: return "serve.epochs";
      case Counter::kCount: break;
    }
    return "?";
}

constexpr const char *
name(Phase p)
{
    switch (p) {
      case Phase::Update: return "update";
      case Phase::UpdateScatter: return "update/scatter";
      case Phase::UpdateApply: return "update/apply";
      case Phase::Compute: return "compute";
      case Phase::ComputeAffected: return "compute/affected";
      case Phase::ComputeRound: return "compute/round";
      case Phase::ComputeContrib: return "compute/contrib";
      case Phase::ComputeBin: return "compute/bin";
      case Phase::ComputeAccumulate: return "compute/accumulate";
      case Phase::PipelineStage: return "pipeline/stage";
      case Phase::PipelineStall: return "pipeline/stall";
      case Phase::PipelinePublish: return "pipeline/publish";
      case Phase::ServeEpoch: return "serve/epoch";
      case Phase::ServeStage: return "serve/stage";
      case Phase::ServeRefresh: return "serve/refresh";
      case Phase::ServePublish: return "serve/publish";
      case Phase::kCount: break;
    }
    return "?";
}

} // namespace telemetry
} // namespace saga

#endif // SAGA_TELEMETRY_METRICS_H_
