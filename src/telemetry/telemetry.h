/**
 * @file
 * Runtime telemetry — low-overhead metrics, phase timing, and tracing.
 *
 * Design (DESIGN.md §8):
 *  - *Per-thread accumulation.* Every counter increment and phase sample
 *    lands in the calling thread's cache-line-aligned slot; no locks and
 *    no shared atomics on the hot path. Aggregation walks the slots only
 *    when a snapshot/export is requested, which by contract happens while
 *    the system is quiescent (between phases / after a run) — exactly the
 *    same phase-separation contract the stores' quiescent reads use
 *    (DESIGN.md §7).
 *  - *Closed metric set.* Counters and phases are the enums in
 *    metrics.h, so hot paths index fixed arrays and the exported schema
 *    is statically enumerable (docs/TELEMETRY.md documents every name;
 *    CI enforces it).
 *  - *Off by default.* Metrics and tracing are runtime flags; disabled,
 *    the instrumentation costs one predictable branch on a relaxed flag
 *    load. Compiling with SAGA_TELEMETRY_DISABLED (cmake
 *    -DSAGA_TELEMETRY=OFF) reduces the macros to nothing at all.
 *
 * Hot-path API: SAGA_COUNT(Counter::X, n) and SAGA_PHASE(Phase::X) — the
 * linter requires the argument to be a literal enumerator so the set of
 * live metrics stays greppable. Control/export API at the bottom.
 */

#ifndef SAGA_TELEMETRY_TELEMETRY_H_
#define SAGA_TELEMETRY_TELEMETRY_H_

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/perf_counters.h"

#ifndef SAGA_TELEMETRY_DISABLED
#include <atomic>
#else
#include <chrono>
#endif

namespace saga {
namespace telemetry {

/** Aggregated timing of one phase across all threads. */
struct PhaseTotals
{
    std::uint64_t count = 0;
    std::uint64_t totalNs = 0;
    std::uint64_t minNs = 0;
    std::uint64_t maxNs = 0;
};

/** Hardware-counter deltas attributed to one phase. */
struct PerfPhaseTotals
{
    std::array<std::uint64_t, kNumPerfEvents> delta{};
    std::uint64_t samples = 0;
};

/** One quiescent aggregation of everything the registry holds. */
struct MetricsSnapshot
{
    std::array<std::uint64_t, kNumCounters> counters{};
    std::array<PhaseTotals, kNumPhases> phases{};
    std::array<PerfPhaseTotals, kNumPhases> perf{};
    bool perfAvailable = false;
    std::array<bool, kNumPerfEvents> perfEventLive{};
    std::string perfStatus;
    std::size_t threads = 0;
    std::uint64_t traceEvents = 0;
    std::uint64_t traceDropped = 0;
};

/** One begin/end trace record (tests and the Chrome exporter read these). */
struct TraceEvent
{
    std::uint64_t tsNs = 0; ///< nanoseconds since the registry epoch
    std::uint32_t tid = 0;  ///< slot index of the recording thread
    Phase phase = Phase::Update;
    char type = 'B'; ///< 'B' or 'E'
};

#ifndef SAGA_TELEMETRY_DISABLED

namespace detail {
// Runtime switches. Toggled only while the system is quiescent; hot
// paths read them with relaxed loads.
extern std::atomic<bool> g_metrics_enabled;
extern std::atomic<bool> g_trace_enabled;

void addCount(Counter c, std::uint64_t n);
void maxCount(Counter c, std::uint64_t v);
} // namespace detail

/** True if metric recording is on (hot-path check). */
inline bool
enabled()
{
    // relaxed: a pure on/off flag flipped only while no phase is
    // running; readers need no ordering, just the eventual value.
    return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/** True if trace-span recording is on (hot-path check). */
inline bool
traceEnabled()
{
    // relaxed: same quiescent-toggle flag rationale as enabled().
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/** Add @p n to counter @p c on this thread's slot (if enabled). */
inline void
count(Counter c, std::uint64_t n = 1)
{
    if (enabled())
        detail::addCount(c, n);
}

/**
 * Raise counter @p c on this thread's slot to at least @p v (if
 * enabled). Only valid for counters where aggregatesMax(c) is true:
 * the per-thread slots and the cross-thread aggregation both take the
 * maximum, so the exported value is the process-wide high-water mark.
 */
inline void
countMax(Counter c, std::uint64_t v)
{
    if (enabled())
        detail::maxCount(c, v);
}

/**
 * RAII phase span: times the enclosed scope, records it into the
 * per-thread phase accumulator (metrics), emits a B/E trace pair
 * (tracing), and samples hardware counters around it (kSamplePerf).
 *
 * finish() ends the span early and returns its duration in seconds —
 * the streaming driver uses this so that BatchResult latencies and the
 * telemetry phase sums are one measurement, not two (the fig8
 * single-source-of-truth fix).
 */
class PhaseScope
{
  public:
    enum Flags : unsigned {
        kNone = 0,
        /** Measure time even when telemetry is disabled (caller needs
            the duration regardless, e.g. BatchResult). */
        kAlwaysTime = 1,
        /** Sample the process perf counters across the span. Only
            meaningful on the thread that owns the PerfSampler (the
            driver thread); nested sampled scopes double-count. */
        kSamplePerf = 2,
    };

    explicit PhaseScope(Phase phase, unsigned flags = kNone);
    ~PhaseScope()
    {
        if (armed_)
            finish();
    }

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

    /** End the span (idempotent) and return elapsed seconds. */
    double finish();

  private:
    Phase phase_;
    bool record_ = false;
    bool trace_ = false;
    bool perf_ = false;
    bool timed_ = false;
    bool armed_ = false;
    std::uint64_t startNs_ = 0;
    double seconds_ = 0;
    PerfValues perfStart_{};
};

/** Turn metric recording on/off. Call only while quiescent. */
void setEnabled(bool on);

/** Turn trace-span recording on/off. Call only while quiescent. */
void setTraceEnabled(bool on);

/**
 * Open the process hardware counters (idempotent). Must run before the
 * worker pools are created (inherit semantics — see perf_counters.h).
 * @return true if at least one event is live.
 */
bool enablePerf();

/** True if enablePerf() opened at least one event. */
bool perfAvailable();

/** Human-readable perf open status (also in the JSON dump). */
std::string perfStatus();

/** Aggregate all thread slots. Call only while quiescent. */
MetricsSnapshot snapshot();

/** All recorded trace events, per-thread-ordered. Quiescent only. */
std::vector<TraceEvent> traceSnapshot();

/** Zero every counter, phase accumulator, and trace buffer. Quiescent
    only; thread slots stay registered. */
void reset();

/** Write the versioned metrics JSON (docs/TELEMETRY.md schema). */
void writeMetricsJson(std::ostream &os);

/** Write Chrome trace_event JSON loadable in chrome://tracing/Perfetto. */
void writeTraceJson(std::ostream &os);

/** File-path conveniences; @return false if the file cannot be opened. */
bool writeMetricsJson(const std::string &path);
bool writeTraceJson(const std::string &path);

#else // SAGA_TELEMETRY_DISABLED

// Compiled-out mode: the whole subsystem reduces to inline no-ops. The
// only behavior kept is PhaseScope's kAlwaysTime timing, because the
// streaming driver derives BatchResult latencies from it.

constexpr bool enabled() { return false; }
constexpr bool traceEnabled() { return false; }
inline void count(Counter, std::uint64_t = 1) {}
inline void countMax(Counter, std::uint64_t) {}

class PhaseScope
{
  public:
    enum Flags : unsigned { kNone = 0, kAlwaysTime = 1, kSamplePerf = 2 };

    explicit PhaseScope(Phase, unsigned flags = kNone)
    {
        if (flags & kAlwaysTime) {
            timed_ = true;
            start_ = std::chrono::steady_clock::now();
        }
    }

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

    double
    finish()
    {
        if (timed_) {
            seconds_ = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
            timed_ = false;
        }
        return seconds_;
    }

  private:
    bool timed_ = false;
    double seconds_ = 0;
    std::chrono::steady_clock::time_point start_{};
};

inline void setEnabled(bool) {}
inline void setTraceEnabled(bool) {}
inline bool enablePerf() { return false; }
inline bool perfAvailable() { return false; }
inline std::string perfStatus() { return "telemetry compiled out"; }
inline MetricsSnapshot snapshot() { return {}; }
inline std::vector<TraceEvent> traceSnapshot() { return {}; }
inline void reset() {}
void writeMetricsJson(std::ostream &os);
void writeTraceJson(std::ostream &os);
bool writeMetricsJson(const std::string &path);
bool writeTraceJson(const std::string &path);

#endif // SAGA_TELEMETRY_DISABLED

} // namespace telemetry
} // namespace saga

#define SAGA_TELEMETRY_CAT2(a, b) a##b
#define SAGA_TELEMETRY_CAT(a, b) SAGA_TELEMETRY_CAT2(a, b)

#ifndef SAGA_TELEMETRY_DISABLED

/**
 * Time the rest of the enclosing scope as telemetry phase @p phase.
 * The argument must be a literal ::saga::telemetry::Phase enumerator
 * (enforced by saga_lint's telemetry-enum-qualified rule).
 */
#define SAGA_PHASE(phase)                                                  \
    ::saga::telemetry::PhaseScope SAGA_TELEMETRY_CAT(saga_phase_scope_,   \
                                                     __LINE__)((phase))

/** Add @p n to telemetry counter @p counter (literal enumerator). */
#define SAGA_COUNT(counter, n) ::saga::telemetry::count((counter), (n))

/** Raise max-aggregated counter @p counter to at least @p v (literal
    enumerator; the counter must satisfy aggregatesMax()). */
#define SAGA_COUNT_MAX(counter, v)                                        \
    ::saga::telemetry::countMax((counter), (v))

#else

#define SAGA_PHASE(phase) ((void)0)
#define SAGA_COUNT(counter, n) ((void)0)
#define SAGA_COUNT_MAX(counter, v) ((void)0)

#endif

#endif // SAGA_TELEMETRY_TELEMETRY_H_
