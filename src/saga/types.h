/**
 * @file
 * Fundamental types shared across SAGA-Bench.
 */

#ifndef SAGA_SAGA_TYPES_H_
#define SAGA_SAGA_TYPES_H_

#include <cstdint>
#include <limits>

namespace saga {

/** Vertex identifier. Graphs here stay comfortably under 2^32 vertices. */
using NodeId = std::uint32_t;

/** Edge weight (SSSP/SSWP use it; other algorithms ignore it). */
using Weight = float;

/** Sentinel for "no vertex". */
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/** A directed, weighted edge in the input stream. */
struct Edge
{
    NodeId src = 0;
    NodeId dst = 0;
    Weight weight = 1.0f;

    friend bool
    operator==(const Edge &a, const Edge &b)
    {
        return a.src == b.src && a.dst == b.dst && a.weight == b.weight;
    }
};

/** A (neighbor, weight) pair as stored in / produced by a data structure. */
struct Neighbor
{
    NodeId node = 0;
    Weight weight = 1.0f;

    friend bool
    operator==(const Neighbor &a, const Neighbor &b)
    {
        return a.node == b.node && a.weight == b.weight;
    }
};

} // namespace saga

#endif // SAGA_SAGA_TYPES_H_
