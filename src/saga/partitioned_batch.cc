#include "saga/partitioned_batch.h"

#include <algorithm>

#include "ds/hash_util.h"
#include "perfmodel/trace.h"
#include "platform/parallel_for.h"
#include "telemetry/telemetry.h"

namespace saga {

void
PartitionedBatch::build(const EdgeBatch &batch, ThreadPool &pool,
                        std::size_t num_chunks)
{
    SAGA_PHASE(telemetry::Phase::UpdateScatter);
    num_chunks_ = num_chunks ? num_chunks : 1;
    size_ = batch.size();
    max_node_ = kInvalidNode;

    const std::size_t workers = pool.size();
    const std::size_t cells = workers * num_chunks_;

    fwd_.resize(size_);
    rev_.resize(size_);
    fwd_offsets_.assign(num_chunks_ + 1, 0);
    rev_offsets_.assign(num_chunks_ + 1, 0);
    fwd_cursor_.assign(cells, 0);
    rev_cursor_.assign(cells, 0);
    worker_max_.assign(workers, 0);

    if (size_ == 0)
        return;

    SAGA_COUNT(telemetry::Counter::ScatterEdges, size_);

    // Count pass: per-worker histograms over the worker's static slice
    // (worker-major rows, so no two workers share a cache line), plus the
    // per-worker max vertex id. parallelSlices is deterministic in
    // (count, workers), so the place pass below sees identical slices.
    parallelSlices(pool, 0, size_,
                   [&](std::size_t w, std::uint64_t lo, std::uint64_t hi) {
        std::uint64_t *fwd_row = fwd_cursor_.data() + w * num_chunks_;
        std::uint64_t *rev_row = rev_cursor_.data() + w * num_chunks_;
        NodeId max_node = 0;
        for (std::uint64_t i = lo; i < hi; ++i) {
            const Edge &e = batch[i];
            perf::touch(&e, sizeof(Edge));
            ++fwd_row[chunkOfNode(e.src, num_chunks_)];
            ++rev_row[chunkOfNode(e.dst, num_chunks_)];
            max_node = std::max(max_node, std::max(e.src, e.dst));
        }
        worker_max_[w] = max_node;
    });

    // Serial prefix sum (workers × chunks cells — tiny next to the
    // batch): turns the histograms into write cursors laid out
    // chunk-major, worker-minor, so each bucket is one contiguous run.
    std::uint64_t fwd_total = 0, rev_total = 0;
    for (std::size_t c = 0; c < num_chunks_; ++c) {
        fwd_offsets_[c] = fwd_total;
        rev_offsets_[c] = rev_total;
        for (std::size_t w = 0; w < workers; ++w) {
            std::uint64_t &fwd_cell = fwd_cursor_[w * num_chunks_ + c];
            std::uint64_t &rev_cell = rev_cursor_[w * num_chunks_ + c];
            const std::uint64_t fwd_count = fwd_cell;
            const std::uint64_t rev_count = rev_cell;
            fwd_cell = fwd_total;
            rev_cell = rev_total;
            fwd_total += fwd_count;
            rev_total += rev_count;
        }
    }
    fwd_offsets_[num_chunks_] = fwd_total;
    rev_offsets_[num_chunks_] = rev_total;

    // EdgeBatch rejects sentinel endpoints, so with at least one edge the
    // plain-0-initialized per-worker maxima combine to a valid id.
    max_node_ = 0;
    for (NodeId m : worker_max_)
        max_node_ = std::max(max_node_, m);

    // Place pass: each worker re-reads its slice and scatters every edge
    // into its reserved cursor positions — disjoint target slots, no
    // synchronization. Reversed buckets store the edge pre-swapped so
    // consumers treat both orientations uniformly (e.src owns the edge).
    parallelSlices(pool, 0, size_,
                   [&](std::size_t w, std::uint64_t lo, std::uint64_t hi) {
        std::uint64_t *fwd_row = fwd_cursor_.data() + w * num_chunks_;
        std::uint64_t *rev_row = rev_cursor_.data() + w * num_chunks_;
        for (std::uint64_t i = lo; i < hi; ++i) {
            const Edge &e = batch[i];
            perf::touch(&e, sizeof(Edge));
            Edge &fwd_slot = fwd_[fwd_row[chunkOfNode(e.src, num_chunks_)]++];
            fwd_slot = e;
            perf::touchWrite(&fwd_slot, sizeof(Edge));
            Edge &rev_slot = rev_[rev_row[chunkOfNode(e.dst, num_chunks_)]++];
            rev_slot = Edge{e.dst, e.src, e.weight};
            perf::touchWrite(&rev_slot, sizeof(Edge));
        }
    });
}

} // namespace saga
