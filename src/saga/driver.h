/**
 * @file
 * The streaming driver: repeated update + compute phases over a batch
 * stream (paper Fig. 2b), with per-phase latency measurement (Eq. 1).
 */

#ifndef SAGA_SAGA_DRIVER_H_
#define SAGA_SAGA_DRIVER_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <type_traits>

#include "algo/context.h"
#include "algo/inc_engine.h"
#include "saga/batch_scratch.h"
#include "ds/dah.h"
#include "ds/dyn_graph.h"
#include "ds/hybrid.h"
#include "ds/stinger.h"
#include "platform/thread_pool.h"
#include "saga/edge_batch.h"
#include "saga/types.h"
#include "telemetry/telemetry.h"

namespace saga {

/** The paper's four data structures (Section III-A) plus the tiered
    hybrid store (DESIGN.md §12). */
enum class DsKind { AS, AC, Stinger, DAH, Hybrid };

/** The six algorithms (paper Section III-C). */
enum class AlgKind { BFS, CC, MC, PR, SSSP, SSWP };

/** The two compute models (paper Section III-B). */
enum class ModelKind { FS, INC };

const char *toString(DsKind ds);
const char *toString(AlgKind alg);
const char *toString(ModelKind model);

/** Parse helpers (case-sensitive lowercase names); throws on unknown. */
DsKind parseDs(const std::string &name);
AlgKind parseAlg(const std::string &name);
ModelKind parseModel(const std::string &name);

/** Everything needed to set up one streaming workload. */
struct RunConfig
{
    DsKind ds = DsKind::AS;
    AlgKind alg = AlgKind::BFS;
    ModelKind model = ModelKind::INC;
    bool directed = true;
    /** Worker threads; 0 = hardware concurrency. */
    std::size_t threads = 0;
    /** Chunks for AC/DAH/Hybrid; 0 = same as worker count. */
    std::size_t chunks = 0;
    /** Stinger edges per block. */
    std::uint32_t stingerBlock = StingerStore::kBlockCapacity;
    DahConfig dah{};
    HybridConfig hybrid{};
    AlgContext ctx{};
    /**
     * Pipelined (snapshot-isolated) driver: compute on epoch N overlaps
     * staging of epoch N+1 on a separate writer lane, with a publish
     * barrier between epochs. false = the paper's strict alternation,
     * kept as the oracle the pipelined mode must match bit-for-bit.
     */
    bool pipeline = false;
    /**
     * Writer-lane pool width when pipeline is on; 0 = half the total
     * thread budget (at least one writer and one reader either way).
     * The reader (compute) pool gets the remainder.
     */
    std::size_t writerThreads = 0;
};

/** Measured latencies and graph state after one batch. */
struct BatchResult
{
    double updateSeconds = 0;
    double computeSeconds = 0;
    std::uint64_t batchEdges = 0;
    std::uint64_t graphEdges = 0;
    NodeId graphNodes = 0;

    // Pipelined-driver breakdown (zero on the serial path). stageSeconds
    // is writer-lane wall time that overlapped compute; stallSeconds is
    // how long the driver blocked waiting for it; publishSeconds is the
    // quiescent barrier window. updateSeconds = stage + publish so Eq. 1
    // stays comparable across modes.
    double stageSeconds = 0;
    double publishSeconds = 0;
    double stallSeconds = 0;

    /** Batch processing latency (paper Eq. 1). */
    double totalSeconds() const { return updateSeconds + computeSeconds; }
};

/** What waiting on the writer lane cost (pipelined driver). */
struct PipelineWaitResult
{
    double stageSeconds = 0; ///< writer-lane time for the staged batch
    double stallSeconds = 0; ///< driver time blocked on the lane
};

/**
 * Type-erased streaming workload: one data structure + one algorithm +
 * one compute model, driven batch by batch.
 *
 * The two phases are separately callable so characterization harnesses can
 * install different instrumentation sinks around each.
 */
class StreamingRunner
{
  public:
    virtual ~StreamingRunner() = default;

    /** Update phase: ingest @p batch. @return seconds taken. */
    virtual double updatePhase(const EdgeBatch &batch) = 0;

    /** Compute phase for the last ingested batch. @return seconds. */
    virtual double computePhase(const EdgeBatch &batch) = 0;

    virtual NodeId numNodes() const = 0;
    virtual std::uint64_t numEdges() const = 0;

    /** Current vertex values widened to double (for validation). */
    virtual std::vector<double> values() const = 0;

    virtual const RunConfig &config() const = 0;

    /** True if this runner was built with RunConfig::pipeline. */
    virtual bool pipelined() const { return false; }

    /**
     * Pipelined driver, step 1: hand @p batch to the writer lane, which
     * stages it against the frozen current epoch while the caller runs
     * computePhase() on that same epoch. @p batch must stay alive and
     * unmodified until the matching waitStage() returns. No-op on
     * serial runners.
     */
    virtual void stageAsync(const EdgeBatch &batch) { (void)batch; }

    /** Pipelined driver, step 2: join the writer lane (epoch barrier). */
    virtual PipelineWaitResult waitStage() { return {}; }

    /**
     * Pipelined driver, step 3: publish the staged batch — the quiescent
     * window in which the new epoch becomes visible. @return seconds.
     */
    virtual double publishPhase() { return 0; }

    /** Convenience: update + compute with latency bookkeeping. */
    BatchResult
    processBatch(const EdgeBatch &batch)
    {
        BatchResult result;
        result.batchEdges = batch.size();
        result.updateSeconds = updatePhase(batch);
        result.computeSeconds = computePhase(batch);
        result.graphEdges = numEdges();
        result.graphNodes = numNodes();
        return result;
    }
};

/** Build a runner for @p cfg (defined in registry.cc). */
std::unique_ptr<StreamingRunner> makeRunner(const RunConfig &cfg);

/**
 * Concrete workload implementation, parameterized over the store type and
 * the algorithm traits.
 */
template <typename Store, typename Alg>
class Runner final : public StreamingRunner
{
  public:
    explicit Runner(const RunConfig &cfg)
        : cfg_(cfg),
          writer_pool_(cfg.pipeline
                           ? std::make_unique<ThreadPool>(writerCount(cfg))
                           : nullptr),
          pool_(readerCount(cfg)),
          graph_(makeGraph(cfg, writer_pool_ ? *writer_pool_ : pool_)),
          lane_(cfg.pipeline ? std::make_unique<AsyncLane>() : nullptr)
    {}

    // Both phases derive their returned latency from the telemetry
    // PhaseScope, so BatchResult and the exported "update"/"compute"
    // phase sums are one measurement, not two clocks that drift
    // (kAlwaysTime keeps the timing live with telemetry off).
    double
    updatePhase(const EdgeBatch &batch) override
    {
        telemetry::PhaseScope scope(telemetry::Phase::Update,
                                    telemetry::PhaseScope::kAlwaysTime |
                                        perfFlag());
        graph_.update(batch, ingestPool());
        return scope.finish();
    }

    bool pipelined() const override { return lane_ != nullptr; }

    void
    stageAsync(const EdgeBatch &batch) override
    {
        if (!lane_)
            return;
        // The lane thread reads the frozen epoch concurrently with the
        // reader pool's compute; the store is not mutated until
        // publishPhase(). No kSamplePerf: the span overlaps compute and
        // the process-wide counters cannot be attributed to either.
        lane_->submit([this, &batch] {
            telemetry::PhaseScope scope(
                telemetry::Phase::PipelineStage,
                telemetry::PhaseScope::kAlwaysTime);
            graph_.stageBatch(batch, *writer_pool_);
            stage_seconds_ = scope.finish();
        });
    }

    PipelineWaitResult
    waitStage() override
    {
        if (!lane_)
            return {};
        telemetry::PhaseScope stall(telemetry::Phase::PipelineStall,
                                    telemetry::PhaseScope::kAlwaysTime);
        lane_->wait();
        // stage_seconds_ was written by the lane thread; AsyncLane::wait
        // is the synchronization point that publishes it.
        return {stage_seconds_, stall.finish()};
    }

    double
    publishPhase() override
    {
        if (!lane_)
            return 0;
        telemetry::PhaseScope scope(telemetry::Phase::PipelinePublish,
                                    telemetry::PhaseScope::kAlwaysTime);
        graph_.publishBatch(*writer_pool_);
        return scope.finish();
    }

    double
    computePhase(const EdgeBatch &batch) override
    {
        telemetry::PhaseScope scope(telemetry::Phase::Compute,
                                    telemetry::PhaseScope::kAlwaysTime |
                                        perfFlag());
        AlgContext ctx = cfg_.ctx;
        ctx.numNodesHint = graph_.numNodes();
        if (cfg_.model == ModelKind::FS) {
            Alg::computeFs(graph_, pool_, values_, ctx);
        } else {
            std::vector<NodeId> affected;
            {
                SAGA_PHASE(telemetry::Phase::ComputeAffected);
                affected = affectedVertices(batch, graph_.numNodes(),
                                            scratch_, pool_);
            }
            incCompute<Alg>(graph_, pool_, values_, affected, ctx);
        }
        return scope.finish();
    }

    NodeId numNodes() const override { return graph_.numNodes(); }
    std::uint64_t numEdges() const override { return graph_.numEdges(); }

    std::vector<double>
    values() const override
    {
        // Size to the *graph*, not to values_: ingestion may have grown
        // the vertex range since the last compute sized values_, and
        // callers compare against numNodes(). The tail (vertices never
        // computed) is zero-filled.
        const std::size_t n = graph_.numNodes();
        std::vector<double> widened(n, 0.0);
        const std::size_t have = std::min(values_.size(), n);
        for (std::size_t i = 0; i < have; ++i)
            widened[i] = static_cast<double>(values_[i]);
        return widened;
    }

    const RunConfig &config() const override { return cfg_; }

    const DynGraph<Store> &graph() const { return graph_; }

  private:
    static DynGraph<Store>
    makeGraph(const RunConfig &cfg, ThreadPool &pool)
    {
        const std::size_t chunks = cfg.chunks ? cfg.chunks : pool.size();
        if constexpr (std::is_same_v<Store, DahStore>) {
            return DynGraph<Store>(cfg.directed, chunks, cfg.dah);
        } else if constexpr (std::is_same_v<Store, HybridStore>) {
            return DynGraph<Store>(cfg.directed, chunks, cfg.hybrid);
        } else if constexpr (std::is_same_v<Store, StingerStore>) {
            return DynGraph<Store>(cfg.directed, cfg.stingerBlock);
        } else if constexpr (std::is_constructible_v<Store, std::size_t>) {
            return DynGraph<Store>(cfg.directed, chunks); // AC
        } else {
            return DynGraph<Store>(cfg.directed); // AS, Reference
        }
    }

    /** Total thread budget (0 = hardware concurrency, as ThreadPool). */
    static std::size_t
    totalThreads(const RunConfig &cfg)
    {
        return cfg.threads
                   ? cfg.threads
                   : std::max<std::size_t>(
                         1, std::thread::hardware_concurrency());
    }

    /** Writer-lane pool width: explicit, else half the budget; >= 1. */
    static std::size_t
    writerCount(const RunConfig &cfg)
    {
        const std::size_t total = totalThreads(cfg);
        std::size_t writers =
            cfg.writerThreads ? cfg.writerThreads
                              : std::max<std::size_t>(1, total / 2);
        if (total > 1 && writers >= total)
            writers = total - 1; // leave at least one reader
        return std::max<std::size_t>(1, writers);
    }

    /**
     * Reader (compute) pool width. Serial mode uses the whole budget —
     * pipelined equivalence tests match a serial run with threads == R
     * against a pipelined run with threads == R + W, writerThreads == W,
     * so the compute pools (and thus any pool-width-dependent scheduling)
     * are identical.
     */
    static std::size_t
    readerCount(const RunConfig &cfg)
    {
        if (!cfg.pipeline)
            return cfg.threads;
        const std::size_t total = totalThreads(cfg);
        return std::max<std::size_t>(1, total - writerCount(cfg));
    }

    /** Pool that runs ingest phases (writer lane when pipelined). */
    ThreadPool &
    ingestPool()
    {
        return writer_pool_ ? *writer_pool_ : pool_;
    }

    /**
     * Perf sampling is only attributable when phases do not overlap:
     * the serial driver samples update/compute; the pipelined driver
     * must not (stage spans run concurrently with compute spans and the
     * counters are process-wide).
     */
    unsigned
    perfFlag() const
    {
        return cfg_.pipeline ? 0u : telemetry::PhaseScope::kSamplePerf;
    }

    RunConfig cfg_;
    std::unique_ptr<ThreadPool> writer_pool_; // pipelined mode only
    ThreadPool pool_;                         // compute / serial pool
    DynGraph<Store> graph_;
    std::vector<typename Alg::Value> values_;
    BatchScratch scratch_; // reused across batches (no O(V) per-batch alloc)
    std::unique_ptr<AsyncLane> lane_; // pipelined mode only
    // Written by the lane thread inside stageAsync's job, read by the
    // driver thread after waitStage(); AsyncLane's mutex orders the two.
    double stage_seconds_ = 0;
};

} // namespace saga

#endif // SAGA_SAGA_DRIVER_H_
