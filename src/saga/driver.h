/**
 * @file
 * The streaming driver: repeated update + compute phases over a batch
 * stream (paper Fig. 2b), with per-phase latency measurement (Eq. 1).
 */

#ifndef SAGA_SAGA_DRIVER_H_
#define SAGA_SAGA_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <type_traits>

#include "algo/context.h"
#include "algo/inc_engine.h"
#include "saga/batch_scratch.h"
#include "ds/dah.h"
#include "ds/dyn_graph.h"
#include "ds/stinger.h"
#include "platform/thread_pool.h"
#include "saga/edge_batch.h"
#include "saga/types.h"
#include "telemetry/telemetry.h"

namespace saga {

/** The four data structures (paper Section III-A). */
enum class DsKind { AS, AC, Stinger, DAH };

/** The six algorithms (paper Section III-C). */
enum class AlgKind { BFS, CC, MC, PR, SSSP, SSWP };

/** The two compute models (paper Section III-B). */
enum class ModelKind { FS, INC };

const char *toString(DsKind ds);
const char *toString(AlgKind alg);
const char *toString(ModelKind model);

/** Parse helpers (case-sensitive lowercase names); throws on unknown. */
DsKind parseDs(const std::string &name);
AlgKind parseAlg(const std::string &name);
ModelKind parseModel(const std::string &name);

/** Everything needed to set up one streaming workload. */
struct RunConfig
{
    DsKind ds = DsKind::AS;
    AlgKind alg = AlgKind::BFS;
    ModelKind model = ModelKind::INC;
    bool directed = true;
    /** Worker threads; 0 = hardware concurrency. */
    std::size_t threads = 0;
    /** Chunks for AC/DAH; 0 = same as worker count. */
    std::size_t chunks = 0;
    /** Stinger edges per block. */
    std::uint32_t stingerBlock = StingerStore::kBlockCapacity;
    DahConfig dah{};
    AlgContext ctx{};
};

/** Measured latencies and graph state after one batch. */
struct BatchResult
{
    double updateSeconds = 0;
    double computeSeconds = 0;
    std::uint64_t batchEdges = 0;
    std::uint64_t graphEdges = 0;
    NodeId graphNodes = 0;

    /** Batch processing latency (paper Eq. 1). */
    double totalSeconds() const { return updateSeconds + computeSeconds; }
};

/**
 * Type-erased streaming workload: one data structure + one algorithm +
 * one compute model, driven batch by batch.
 *
 * The two phases are separately callable so characterization harnesses can
 * install different instrumentation sinks around each.
 */
class StreamingRunner
{
  public:
    virtual ~StreamingRunner() = default;

    /** Update phase: ingest @p batch. @return seconds taken. */
    virtual double updatePhase(const EdgeBatch &batch) = 0;

    /** Compute phase for the last ingested batch. @return seconds. */
    virtual double computePhase(const EdgeBatch &batch) = 0;

    virtual NodeId numNodes() const = 0;
    virtual std::uint64_t numEdges() const = 0;

    /** Current vertex values widened to double (for validation). */
    virtual std::vector<double> values() const = 0;

    virtual const RunConfig &config() const = 0;

    /** Convenience: update + compute with latency bookkeeping. */
    BatchResult
    processBatch(const EdgeBatch &batch)
    {
        BatchResult result;
        result.batchEdges = batch.size();
        result.updateSeconds = updatePhase(batch);
        result.computeSeconds = computePhase(batch);
        result.graphEdges = numEdges();
        result.graphNodes = numNodes();
        return result;
    }
};

/** Build a runner for @p cfg (defined in registry.cc). */
std::unique_ptr<StreamingRunner> makeRunner(const RunConfig &cfg);

/**
 * Concrete workload implementation, parameterized over the store type and
 * the algorithm traits.
 */
template <typename Store, typename Alg>
class Runner final : public StreamingRunner
{
  public:
    explicit Runner(const RunConfig &cfg)
        : cfg_(cfg), pool_(cfg.threads), graph_(makeGraph(cfg, pool_))
    {}

    // Both phases derive their returned latency from the telemetry
    // PhaseScope, so BatchResult and the exported "update"/"compute"
    // phase sums are one measurement, not two clocks that drift
    // (kAlwaysTime keeps the timing live with telemetry off).
    double
    updatePhase(const EdgeBatch &batch) override
    {
        telemetry::PhaseScope scope(telemetry::Phase::Update,
                                    telemetry::PhaseScope::kAlwaysTime |
                                        telemetry::PhaseScope::kSamplePerf);
        graph_.update(batch, pool_);
        return scope.finish();
    }

    double
    computePhase(const EdgeBatch &batch) override
    {
        telemetry::PhaseScope scope(telemetry::Phase::Compute,
                                    telemetry::PhaseScope::kAlwaysTime |
                                        telemetry::PhaseScope::kSamplePerf);
        AlgContext ctx = cfg_.ctx;
        ctx.numNodesHint = graph_.numNodes();
        if (cfg_.model == ModelKind::FS) {
            Alg::computeFs(graph_, pool_, values_, ctx);
        } else {
            std::vector<NodeId> affected;
            {
                SAGA_PHASE(telemetry::Phase::ComputeAffected);
                affected = affectedVertices(batch, graph_.numNodes(),
                                            scratch_, pool_);
            }
            incCompute<Alg>(graph_, pool_, values_, affected, ctx);
        }
        return scope.finish();
    }

    NodeId numNodes() const override { return graph_.numNodes(); }
    std::uint64_t numEdges() const override { return graph_.numEdges(); }

    std::vector<double>
    values() const override
    {
        std::vector<double> widened(values_.size());
        for (std::size_t i = 0; i < values_.size(); ++i)
            widened[i] = static_cast<double>(values_[i]);
        return widened;
    }

    const RunConfig &config() const override { return cfg_; }

    const DynGraph<Store> &graph() const { return graph_; }

  private:
    static DynGraph<Store>
    makeGraph(const RunConfig &cfg, ThreadPool &pool)
    {
        const std::size_t chunks = cfg.chunks ? cfg.chunks : pool.size();
        if constexpr (std::is_same_v<Store, DahStore>) {
            return DynGraph<Store>(cfg.directed, chunks, cfg.dah);
        } else if constexpr (std::is_same_v<Store, StingerStore>) {
            return DynGraph<Store>(cfg.directed, cfg.stingerBlock);
        } else if constexpr (std::is_constructible_v<Store, std::size_t>) {
            return DynGraph<Store>(cfg.directed, chunks); // AC
        } else {
            return DynGraph<Store>(cfg.directed); // AS, Reference
        }
    }

    RunConfig cfg_;
    ThreadPool pool_;
    DynGraph<Store> graph_;
    std::vector<typename Alg::Value> values_;
    BatchScratch scratch_; // reused across batches (no O(V) per-batch alloc)
};

} // namespace saga

#endif // SAGA_SAGA_DRIVER_H_
