/**
 * @file
 * PartitionedBatch — the batch-ingestion pipeline's scatter stage.
 *
 * The original update paths made *every* worker scan the *entire* batch
 * and discard the edges it did not own (chunked stores), or pull
 * interleaved edges whose sources collide across workers (shared stores).
 * That is O(batch × workers) total scanning and cache-hostile access.
 *
 * PartitionedBatch replaces it with one parallel counting-sort pass over
 * the raw batch that scatters edges into per-chunk buckets for both
 * orientations (forward, keyed by src, and reversed, keyed by dst with
 * the endpoints pre-swapped), computes maxNode as a by-product, and
 * exposes the buckets as contiguous span views. Store update paths then
 * touch only the edges they own, sequentially:
 *
 *  - chunked stores (AC, DAH): worker w iterates exactly the buckets of
 *    the chunks it owns — O(batch) total work, cache-friendly streams;
 *  - shared stores (AS, Stinger): buckets act as pre-sharded work
 *    ranges — edges with the same source land in the same bucket, so
 *    per-vertex locks stop bouncing between workers.
 *
 * The object is reusable: build() recycles its internal buffers across
 * batches, so steady-state ingestion does not allocate.
 */

#ifndef SAGA_SAGA_PARTITIONED_BATCH_H_
#define SAGA_SAGA_PARTITIONED_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "platform/thread_pool.h"
#include "saga/edge_batch.h"
#include "saga/types.h"

namespace saga {

/** Per-chunk, per-orientation bucket views over one scattered batch. */
class PartitionedBatch
{
  public:
    /** Contiguous view over one bucket's edges. */
    class EdgeSpan
    {
      public:
        EdgeSpan(const Edge *first, const Edge *last)
            : first_(first), last_(last)
        {}

        const Edge *begin() const { return first_; }
        const Edge *end() const { return last_; }
        std::size_t size() const
        {
            return static_cast<std::size_t>(last_ - first_);
        }
        bool empty() const { return first_ == last_; }

      private:
        const Edge *first_;
        const Edge *last_;
    };

    PartitionedBatch() = default;

    /**
     * Scatter @p batch into @p num_chunks buckets per orientation using
     * @p pool. Chunk membership is chunkOfNode(src, num_chunks) — the
     * same mapping the chunked stores use — evaluated on the bucket-local
     * source (the original src forward, the original dst reversed).
     * Replaces any previous contents; buffers are reused.
     */
    void build(const EdgeBatch &batch, ThreadPool &pool,
               std::size_t num_chunks);

    std::size_t numChunks() const { return num_chunks_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /**
     * Largest vertex id in the batch (kInvalidNode if empty), computed as
     * a by-product of the scatter pass — no rescans.
     */
    NodeId maxNode() const { return max_node_; }

    /**
     * Bucket of chunk @p chunk. Reversed buckets hold edges with the
     * endpoints already swapped: for every edge in bucket(c, r),
     * chunkOfNode(e.src, numChunks()) == c.
     */
    EdgeSpan
    bucket(std::size_t chunk, bool reversed) const
    {
        const std::vector<Edge> &edges = reversed ? rev_ : fwd_;
        const std::vector<std::uint64_t> &offsets =
            reversed ? rev_offsets_ : fwd_offsets_;
        return EdgeSpan(edges.data() + offsets[chunk],
                        edges.data() + offsets[chunk + 1]);
    }

  private:
    std::size_t num_chunks_ = 0;
    std::size_t size_ = 0;
    NodeId max_node_ = kInvalidNode;

    std::vector<Edge> fwd_;  // bucketed by chunkOfNode(src)
    std::vector<Edge> rev_;  // endpoint-swapped, bucketed by new src
    std::vector<std::uint64_t> fwd_offsets_; // num_chunks_ + 1
    std::vector<std::uint64_t> rev_offsets_; // num_chunks_ + 1

    // Scatter scratch: per-worker histograms / write cursors, both
    // orientations, chunk-major so a chunk's per-worker runs are
    // adjacent. Reused across builds.
    std::vector<std::uint64_t> fwd_cursor_; // workers × num_chunks_
    std::vector<std::uint64_t> rev_cursor_;
    std::vector<NodeId> worker_max_;        // per-worker max vertex id
};

} // namespace saga

#endif // SAGA_SAGA_PARTITIONED_BATCH_H_
