#include "saga/experiment.h"

#include <cstdlib>

#include "saga/stream_source.h"

namespace saga {

std::vector<double>
StreamRun::updateLatencies() const
{
    std::vector<double> values;
    values.reserve(batches.size());
    for (const BatchResult &b : batches)
        values.push_back(b.updateSeconds);
    return values;
}

std::vector<double>
StreamRun::computeLatencies() const
{
    std::vector<double> values;
    values.reserve(batches.size());
    for (const BatchResult &b : batches)
        values.push_back(b.computeSeconds);
    return values;
}

std::vector<double>
StreamRun::totalLatencies() const
{
    std::vector<double> values;
    values.reserve(batches.size());
    for (const BatchResult &b : batches)
        values.push_back(b.totalSeconds());
    return values;
}

StreamRun
runStream(const DatasetProfile &profile, RunConfig cfg, std::uint64_t seed)
{
    cfg.directed = profile.directed;
    cfg.ctx.source = profile.source;

    StreamSource stream(profile.generate(seed), profile.batchSize, seed);
    std::unique_ptr<StreamingRunner> runner = makeRunner(cfg);

    StreamRun run;
    run.batches.reserve(stream.batchCount());
    while (stream.hasNext()) {
        const EdgeBatch batch = stream.next();
        run.batches.push_back(runner->processBatch(batch));
    }
    return run;
}

double
WorkloadStages::updateSharePct(int stage) const
{
    const Summary &u = update.stage(stage);
    const Summary &t = total.stage(stage);
    // Σ = mean x count (Summary keeps both), so the ratio is sum-based
    // even when the stages pooled different sample counts.
    const double update_sum = u.mean * static_cast<double>(u.count);
    const double total_sum = t.mean * static_cast<double>(t.count);
    return total_sum > 0 ? 100.0 * update_sum / total_sum : 0;
}

WorkloadStages
measureWorkload(const DatasetProfile &profile, RunConfig cfg,
                int repetitions)
{
    std::vector<std::vector<double>> update_runs, compute_runs, total_runs;
    for (int rep = 0; rep < repetitions; ++rep) {
        const StreamRun run = runStream(profile, cfg, 1 + rep);
        update_runs.push_back(run.updateLatencies());
        compute_runs.push_back(run.computeLatencies());
        total_runs.push_back(run.totalLatencies());
    }
    WorkloadStages stages;
    stages.update = summarizeStages(update_runs);
    stages.compute = summarizeStages(compute_runs);
    stages.total = summarizeStages(total_runs);
    return stages;
}

double
benchScale()
{
    if (const char *env = std::getenv("SAGA_SCALE")) {
        const double scale = std::atof(env);
        if (scale > 0)
            return scale;
    }
    return 1.0;
}

int
benchReps()
{
    if (const char *env = std::getenv("SAGA_REPS")) {
        const int reps = std::atoi(env);
        if (reps > 0)
            return reps;
    }
    return 1;
}

} // namespace saga
