#include "saga/experiment.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "saga/stream_source.h"

namespace saga {

std::vector<double>
StreamRun::updateLatencies() const
{
    std::vector<double> values;
    values.reserve(batches.size());
    for (const BatchResult &b : batches)
        values.push_back(b.updateSeconds);
    return values;
}

std::vector<double>
StreamRun::computeLatencies() const
{
    std::vector<double> values;
    values.reserve(batches.size());
    for (const BatchResult &b : batches)
        values.push_back(b.computeSeconds);
    return values;
}

std::vector<double>
StreamRun::totalLatencies() const
{
    std::vector<double> values;
    values.reserve(batches.size());
    for (const BatchResult &b : batches)
        values.push_back(b.totalSeconds());
    return values;
}

namespace {

/**
 * The epoch overlap loop. Batch N's compute (reader pool) runs while
 * batch N+1 stages on the writer lane against the frozen epoch; between
 * epochs the driver joins the lane (waitStage — the stall span measures
 * how imperfect the overlap was) and runs the quiescent publish window.
 * The staged batch object must outlive its waitStage, so two batch slots
 * leapfrog through the loop.
 */
void
drivePipelined(StreamingRunner &runner, StreamSource &stream,
               StreamRun &run)
{
    if (!stream.hasNext())
        return;
    EdgeBatch cur = stream.next();
    runner.stageAsync(cur);
    PipelineWaitResult wait = runner.waitStage();
    double publish = runner.publishPhase();
    for (;;) {
        BatchResult r;
        r.batchEdges = cur.size();
        r.stageSeconds = wait.stageSeconds;
        r.stallSeconds = wait.stallSeconds;
        r.publishSeconds = publish;
        // Eq. 1 comparability: "update" = the work the serial driver
        // would have done in its update phase, overlap or not.
        r.updateSeconds = wait.stageSeconds + publish;

        const bool more = stream.hasNext();
        EdgeBatch next;
        if (more) {
            next = stream.next();
            runner.stageAsync(next); // overlaps the compute below
        }
        r.computeSeconds = runner.computePhase(cur);
        // Safe during the overlap: staging is read-only on the store, so
        // the counts still describe the epoch cur was published into.
        r.graphEdges = runner.numEdges();
        r.graphNodes = runner.numNodes();
        run.batches.push_back(r);

        if (!more)
            break;
        wait = runner.waitStage(); // epoch barrier
        publish = runner.publishPhase();
        cur = std::move(next);
    }
}

} // namespace

StreamRun
driveStream(StreamingRunner &runner, StreamSource &stream)
{
    StreamRun run;
    run.pipelined = runner.pipelined();
    run.batches.reserve(stream.batchCount());
    const auto start = std::chrono::steady_clock::now();
    if (run.pipelined) {
        drivePipelined(runner, stream, run);
    } else {
        while (stream.hasNext()) {
            const EdgeBatch batch = stream.next();
            run.batches.push_back(runner.processBatch(batch));
        }
    }
    run.wallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    return run;
}

StreamRun
runStream(const DatasetProfile &profile, RunConfig cfg, std::uint64_t seed)
{
    cfg.directed = profile.directed;
    cfg.ctx.source = profile.source;

    StreamSource stream(profile.generate(seed), profile.batchSize, seed);
    std::unique_ptr<StreamingRunner> runner = makeRunner(cfg);
    return driveStream(*runner, stream);
}

double
WorkloadStages::updateSharePct(int stage) const
{
    const Summary &u = update.stage(stage);
    const Summary &t = total.stage(stage);
    if (u.count == 0 || t.count == 0) {
        ++degenerateShareCalls;
        return 0;
    }
    // Σ = mean x count (Summary keeps both), so the ratio is sum-based
    // even when the stages pooled different sample counts.
    const double update_sum = u.mean * static_cast<double>(u.count);
    const double total_sum = t.mean * static_cast<double>(t.count);
    // !(> 0) also catches a NaN sum (e.g. a poisoned sample leaked in).
    if (!(total_sum > 0) || !std::isfinite(update_sum)) {
        ++degenerateShareCalls;
        return 0;
    }
    return 100.0 * update_sum / total_sum;
}

WorkloadStages
measureWorkload(const DatasetProfile &profile, RunConfig cfg,
                int repetitions)
{
    std::vector<std::vector<double>> update_runs, compute_runs, total_runs;
    for (int rep = 0; rep < repetitions; ++rep) {
        const StreamRun run = runStream(profile, cfg, 1 + rep);
        update_runs.push_back(run.updateLatencies());
        compute_runs.push_back(run.computeLatencies());
        total_runs.push_back(run.totalLatencies());
    }
    WorkloadStages stages;
    stages.update = summarizeStages(update_runs);
    stages.compute = summarizeStages(compute_runs);
    stages.total = summarizeStages(total_runs);
    return stages;
}

double
benchScale()
{
    if (const char *env = std::getenv("SAGA_SCALE")) {
        const double scale = std::atof(env);
        if (scale > 0)
            return scale;
    }
    return 1.0;
}

int
benchReps()
{
    if (const char *env = std::getenv("SAGA_REPS")) {
        const int reps = std::atoi(env);
        if (reps > 0)
            return reps;
    }
    return 1;
}

} // namespace saga
