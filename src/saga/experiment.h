/**
 * @file
 * Experiment orchestration: run a workload over a full dataset stream
 * (optionally repeated) and aggregate latencies by stage, following the
 * paper's methodology (Section IV-B).
 */

#ifndef SAGA_SAGA_EXPERIMENT_H_
#define SAGA_SAGA_EXPERIMENT_H_

#include <cstdint>
#include <vector>

#include "gen/profiles.h"
#include "saga/driver.h"
#include "stats/summary.h"

namespace saga {

/** Per-batch results of one full pass over a dataset stream. */
struct StreamRun
{
    std::vector<BatchResult> batches;

    /**
     * End-to-end wall time of the whole stream loop. For the pipelined
     * driver this is the honest throughput number: per-batch stage and
     * compute latencies overlap, so their sum over-counts.
     */
    double wallSeconds = 0;
    /** True if the run used the pipelined (overlapping) driver. */
    bool pipelined = false;

    std::vector<double> updateLatencies() const;
    std::vector<double> computeLatencies() const;
    std::vector<double> totalLatencies() const;
};

/**
 * Stream @p profile's edges through a fresh runner built from @p cfg.
 * The profile decides directedness and the source vertex; @p cfg's other
 * fields are respected. @p seed seeds both generation and shuffling.
 */
StreamRun runStream(const DatasetProfile &profile, RunConfig cfg,
                    std::uint64_t seed = 1);

class StreamSource;

/**
 * Drive @p stream through @p runner batch by batch and collect results.
 * Serial runners get the paper's strict alternation (processBatch);
 * pipelined runners get the epoch overlap loop — while batch N's compute
 * runs on the reader pool, batch N+1 stages on the writer lane against
 * the frozen epoch, and a publish barrier separates the epochs.
 * runStream() is a convenience wrapper around this.
 */
StreamRun driveStream(StreamingRunner &runner, StreamSource &stream);

/** Latency stage summaries over repeated runs of the same workload. */
struct WorkloadStages
{
    StageSummary update;
    StageSummary compute;
    StageSummary total;

    /**
     * Percentage of stage @p stage's batch latency spent in the update
     * phase — the paper's Fig. 8 quantity, defined as
     * 100 x Σ update / Σ total over the stage's pooled samples.
     *
     * This is the single source of truth for the update share: the
     * summands come from BatchResult, whose phase latencies are the
     * telemetry PhaseScope measurements themselves (driver.h), so the
     * figure, the telemetry JSON phase sums, and this ratio can never
     * disagree. (A ratio of per-batch means would weight batches
     * unevenly whenever the update/total sample counts differ.)
     *
     * Degenerate stages — no pooled samples (e.g. a stream too short for
     * three stages), or a zero/non-finite total sum — return 0 instead
     * of NaN (which used to poison fig8 output) and bump
     * degenerateShareCalls so harnesses can report how often the figure
     * fell back.
     */
    double updateSharePct(int stage) const;

    /** Number of updateSharePct() calls that hit a degenerate stage. */
    mutable std::size_t degenerateShareCalls = 0;
};

/**
 * Run the workload @p repetitions times (seeds 1..reps for the shuffle,
 * same generated graph) and pool per-stage values as the paper does.
 */
WorkloadStages measureWorkload(const DatasetProfile &profile, RunConfig cfg,
                               int repetitions = 1);

/** Global default scale factor for benches (env SAGA_SCALE, default 1). */
double benchScale();

/** Global repetition count for benches (env SAGA_REPS, default 1). */
int benchReps();

} // namespace saga

#endif // SAGA_SAGA_EXPERIMENT_H_
