/**
 * @file
 * A batch of streaming edges — the unit of ingestion and measurement.
 */

#ifndef SAGA_SAGA_EDGE_BATCH_H_
#define SAGA_SAGA_EDGE_BATCH_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "saga/types.h"

namespace saga {

/**
 * One batch of incoming edges. The streaming driver hands a batch to the
 * data structure's update() and then runs the compute phase; batch
 * processing latency = update latency + compute latency (paper Eq. 1).
 */
class EdgeBatch
{
  public:
    EdgeBatch() = default;
    explicit EdgeBatch(std::vector<Edge> edges) : edges_(std::move(edges))
    {
        // Drop edges carrying the kInvalidNode sentinel: a sentinel
        // endpoint would make the stores' ensureNodes(maxNode() + 1) wrap
        // to 0 and the insert index out of bounds. Rejecting them here
        // keeps every downstream consumer sentinel-free.
        std::erase_if(edges_, [](const Edge &e) {
            return e.src == kInvalidNode || e.dst == kInvalidNode;
        });
        for (const Edge &e : edges_)
            noteEdge(e);
    }

    const std::vector<Edge> &edges() const { return edges_; }
    std::size_t size() const { return edges_.size(); }
    bool empty() const { return edges_.empty(); }

    const Edge &operator[](std::size_t i) const { return edges_[i]; }

    /** Append one edge; sentinel-id edges are skipped (see constructor). */
    void
    push_back(const Edge &e)
    {
        if (e.src == kInvalidNode || e.dst == kInvalidNode)
            return;
        edges_.push_back(e);
        noteEdge(e);
    }

    /**
     * Largest vertex id referenced in this batch, or kInvalidNode if
     * empty. O(1): the value is maintained incrementally by the
     * constructor and push_back, so the per-direction serial rescans the
     * stores used to pay (once per updateBatch call) are gone.
     */
    NodeId maxNode() const { return max_node_; }

  private:
    void
    noteEdge(const Edge &e)
    {
        const NodeId hi = std::max(e.src, e.dst);
        if (max_node_ == kInvalidNode || hi > max_node_)
            max_node_ = hi;
    }

    std::vector<Edge> edges_;
    NodeId max_node_ = kInvalidNode;
};

} // namespace saga

#endif // SAGA_SAGA_EDGE_BATCH_H_
