/**
 * @file
 * BatchScratch — reusable per-runner scratch for per-batch vertex marking.
 *
 * The INC engine's affectedVertices() used to allocate (and zero) an O(V)
 * `seen` array on every batch — pure harness overhead charged to the
 * measured compute phase. BatchScratch keeps one epoch-stamped membership
 * array alive across batches: "marked this batch" means stamp[v] ==
 * current epoch, so starting a new batch is one counter bump instead of an
 * O(V) clear or reallocation. The byte-sized stamp wraps every 255
 * batches, at which point a single real fill keeps stale stamps from
 * aliasing the fresh epoch (same idiom as the INC engine's visited
 * bitvector).
 */

#ifndef SAGA_SAGA_BATCH_SCRATCH_H_
#define SAGA_SAGA_BATCH_SCRATCH_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "platform/atomic_ops.h"
#include "saga/types.h"

namespace saga {

/** Epoch-stamped "seen this batch" set over the vertex space. */
class BatchScratch
{
  public:
    /**
     * Start a new batch over vertices [0, n): grows the stamp array if
     * the graph grew and invalidates all previous marks in O(1)
     * (amortized — one O(V) fill per 255 batches on stamp wrap).
     */
    void
    beginBatch(NodeId n)
    {
        if (n > stamps_.size())
            stamps_.resize(n, 0);
        if (++epoch_ == 0) {
            std::fill(stamps_.begin(), stamps_.end(), 0);
            epoch_ = 1;
        }
    }

    /** Vertex capacity covered by the current stamp array. */
    NodeId numNodes() const { return static_cast<NodeId>(stamps_.size()); }

    /**
     * Claim @p v for this batch; thread-safe (CAS). @return true exactly
     * once per (vertex, batch) across all workers.
     */
    bool
    claim(NodeId v)
    {
        const std::uint8_t seen = atomicLoad(stamps_[v]);
        return seen != epoch_ &&
               atomicClaim<std::uint8_t>(stamps_[v], seen, epoch_);
    }

    /** True if @p v has been claimed this batch (single-threaded read). */
    bool marked(NodeId v) const { return stamps_[v] == epoch_; }

  private:
    std::vector<std::uint8_t> stamps_;
    std::uint8_t epoch_ = 0;
};

} // namespace saga

#endif // SAGA_SAGA_BATCH_SCRATCH_H_
