/**
 * @file
 * Turns a full edge list into a randomized stream of fixed-size batches.
 *
 * Mirrors the paper's methodology (Section IV-B): the input edge list is
 * randomly shuffled first (streaming edges do not arrive in file order),
 * then read out in batches of a configurable size (paper default: 500K).
 */

#ifndef SAGA_SAGA_STREAM_SOURCE_H_
#define SAGA_SAGA_STREAM_SOURCE_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "platform/rng.h"
#include "saga/edge_batch.h"
#include "saga/types.h"

namespace saga {

/** Fisher-Yates shuffle with the project RNG (deterministic per seed). */
inline void
shuffleEdges(std::vector<Edge> &edges, std::uint64_t seed)
{
    Rng rng(seed);
    for (std::size_t i = edges.size(); i > 1; --i)
        std::swap(edges[i - 1], edges[rng.below(i)]);
}

/** Batched, shuffled view over an edge list. */
class StreamSource
{
  public:
    /**
     * @param edges full edge list (consumed).
     * @param batch_size edges per batch; the final batch may be smaller.
     * @param shuffle_seed seed for the pre-stream shuffle; pass
     *        kNoShuffle to preserve input order (used by a few tests).
     */
    static constexpr std::uint64_t kNoShuffle = ~std::uint64_t{0};

    StreamSource(std::vector<Edge> edges, std::size_t batch_size,
                 std::uint64_t shuffle_seed = 1)
        : edges_(std::move(edges)),
          // Clamp to >= 1: batchCount() divides by the batch size, so a
          // zero would divide by zero (and next() would never advance).
          batch_size_(batch_size ? batch_size : 1)
    {
        if (shuffle_seed != kNoShuffle)
            shuffleEdges(edges_, shuffle_seed);
    }

    /** Total number of batches ("batchCount" in the paper's Table II). */
    std::size_t
    batchCount() const
    {
        return (edges_.size() + batch_size_ - 1) / batch_size_;
    }

    std::size_t batchSize() const { return batch_size_; }
    std::size_t totalEdges() const { return edges_.size(); }

    /** True while another batch is available. */
    bool hasNext() const { return cursor_ < edges_.size(); }

    /** Extract the next batch. */
    EdgeBatch
    next()
    {
        const std::size_t hi =
            std::min(cursor_ + batch_size_, edges_.size());
        std::vector<Edge> slice(edges_.begin() + cursor_,
                                edges_.begin() + hi);
        cursor_ = hi;
        return EdgeBatch(std::move(slice));
    }

    /** Rewind to the first batch (same shuffled order). */
    void rewind() { cursor_ = 0; }

  private:
    std::vector<Edge> edges_;
    std::size_t batch_size_;
    std::size_t cursor_ = 0;
};

} // namespace saga

#endif // SAGA_SAGA_STREAM_SOURCE_H_
