/**
 * @file
 * StagedApply — the epoch pipeline's overlappable apply stage.
 *
 * The pipelined driver runs compute on epoch N's read view while the next
 * batch is prepared. The store itself stays *frozen* during that overlap
 * (the strongest possible snapshot contract — readers can never observe a
 * half-applied batch because nothing is applied), yet the expensive half
 * of ingestion still overlaps with compute:
 *
 *  - stage():   read-only. For every bucketed edge, runs the dedup search
 *               against the frozen epoch-N adjacency (the O(degree) scan
 *               that dominates apply cost) and classifies it as *fresh*
 *               (absent — staged for a blind append), an *in-batch
 *               duplicate* (min-weight folded into the staged entry), or
 *               a *snapshot duplicate* (present with a higher weight —
 *               staged as a weight fixup; equal-or-higher weights are
 *               dropped on the spot). Runs on the writer lane while the
 *               reader lane computes.
 *  - publish(): mutating, quiescent. Runs inside the publish barrier
 *               window between epochs (no readers, no stagers): grows the
 *               vertex range and appends the pre-deduplicated fresh edges
 *               via the stores' no-search append hooks, O(new edges)
 *               instead of O(batch x degree).
 *
 * Staged buckets follow PartitionedBatch's chunk partition, so both
 * phases parallelize over the writer pool with the same ownerOf() mapping
 * the stores' partitioned ingest uses — chunk-owned stores keep their
 * lock-free single-owner discipline through the publish window.
 *
 * Epoch-handoff discipline: this layer contains *no atomics at all* —
 * ordering between stage, compute, and publish comes entirely from the
 * AsyncLane/ThreadPool barriers (saga_lint's pipeline-no-relaxed rule
 * keeps it that way).
 */

#ifndef SAGA_SAGA_STAGED_APPLY_H_
#define SAGA_SAGA_STAGED_APPLY_H_

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "ds/hash_util.h"
#include "platform/thread_pool.h"
#include "saga/partitioned_batch.h"
#include "saga/types.h"
#include "telemetry/telemetry.h"

namespace saga {

/** Chunk-owned stores (AC): lock-free append under declared ownership. */
template <typename Store>
inline constexpr bool kChunkOwnedAppend =
    requires(Store &s, NodeId v, Weight w) {
        s.appendNewOwned(v, v, w);
        s.declareChunksOwned();
        s.insertOwned(v, v, w);
        s.addEdgesPublished(std::uint64_t{0});
    };

/** Shared stores (AS, Stinger): internally synchronized append. */
template <typename Store>
inline constexpr bool kSharedAppend = requires(Store &s, NodeId v, Weight w) {
    s.appendNew(v, v, w);
    s.insert(v, v, w);
};

/**
 * True if @p Store supports the staged (overlap) pipeline: a no-search
 * append hook for publish plus block iteration for the read-only dedup
 * search. Stores without it (DAH — promotion/rehash make a cheap blind
 * append impossible) fall back to applying the whole batch inside the
 * publish window; they still overlap the scatter.
 */
template <typename Store>
inline constexpr bool kStageableStore =
    (kChunkOwnedAppend<Store> || kSharedAppend<Store>)&&requires(
        const Store &s, NodeId v) {
        { s.numNodes() } -> std::convertible_to<NodeId>;
        s.forNeighborsBlock(
            v, [](const Neighbor *, std::uint32_t) { return true; });
    };

namespace detail {

/**
 * Stores with a native point lookup (the hybrid store's tiered rows make
 * it O(1)-bounded) let the stage classifier skip the block scan — on hub
 * vertices that turns an O(degree) dedup probe into a hash probe.
 */
template <typename Store>
inline constexpr bool kHasFindWeight =
    requires(const Store &s, NodeId v, bool &f) {
        { s.findWeight(v, v, f) } -> std::convertible_to<Weight>;
    };

/**
 * Weight of edge (src, dst) in the frozen snapshot, or kInvalidNode-free
 * "absent" signal via @p found. Read-only; safe concurrently with any
 * number of readers.
 */
template <typename Store>
inline Weight
snapshotFindWeight(const Store &store, NodeId src, NodeId dst, bool &found)
{
    found = false;
    Weight weight{};
    if (src >= store.numNodes())
        return weight;
    if constexpr (kHasFindWeight<Store>)
        return store.findWeight(src, dst, found);
    store.forNeighborsBlock(src, [&](const Neighbor *run,
                                     std::uint32_t len) {
        for (std::uint32_t i = 0; i < len; ++i) {
            if (run[i].node == dst) {
                found = true;
                weight = run[i].weight;
                return false; // stop
            }
        }
        return true;
    });
    return weight;
}

} // namespace detail

/**
 * Per-chunk open-addressing index over the staged fresh edges, used for
 * in-batch deduplication: key (src, dst) -> index into the fresh vector.
 * Single-owner (one writer-pool worker per chunk); buffers are reused
 * across batches.
 */
class StagedEdgeIndex
{
  public:
    /** Index of the staged edge (src, dst), or kAbsent. */
    static constexpr std::uint32_t kAbsent = ~std::uint32_t{0};

    std::uint32_t
    find(NodeId src, NodeId dst) const
    {
        if (slots_.empty())
            return kAbsent;
        std::size_t i = home(src, dst);
        for (;;) {
            const Slot &slot = slots_[i];
            if (slot.pos == 0)
                return kAbsent;
            if (slot.src == src && slot.dst == dst)
                return slot.pos - 1;
            i = (i + 1) & (slots_.size() - 1);
        }
    }

    /** Record that fresh[@p pos] is edge (src, dst). */
    void
    add(NodeId src, NodeId dst, std::uint32_t pos)
    {
        if ((size_ + 1) * 10 >= slots_.size() * 7)
            grow();
        std::size_t i = home(src, dst);
        while (slots_[i].pos != 0)
            i = (i + 1) & (slots_.size() - 1);
        slots_[i] = {src, dst, pos + 1};
        ++size_;
    }

    void
    clear()
    {
        if (size_ != 0)
            slots_.assign(slots_.size(), Slot{});
        size_ = 0;
    }

  private:
    struct Slot
    {
        NodeId src = 0;
        NodeId dst = 0;
        std::uint32_t pos = 0; // fresh index + 1; 0 = empty
    };

    static constexpr std::size_t kInitialCapacity = 64;
    static_assert((kInitialCapacity & (kInitialCapacity - 1)) == 0,
                  "probe masks need a power-of-two capacity");

    std::size_t
    home(NodeId src, NodeId dst) const
    {
        // Mix both endpoints; hashNode alone would cluster a hub's edges.
        return (hashNode(src) ^ (hashNode(dst) * 0x9E3779B97F4A7C15ull)) &
               (slots_.size() - 1);
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.empty() ? kInitialCapacity : old.size() * 2,
                      Slot{});
        size_ = 0;
        for (const Slot &slot : old) {
            if (slot.pos != 0)
                add(slot.src, slot.dst, slot.pos - 1);
        }
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
};

/**
 * One epoch's staged mutations for a single store. stage() may be called
 * once per orientation (twice for undirected graphs — the accumulated
 * index deduplicates across the two passes exactly like the serial
 * driver's sequential orientation applies); publish() applies everything
 * and resets.
 */
template <typename Store>
class StagedApply
{
  public:
    /**
     * Classify @p parts' bucket(c, reversed) edges against the frozen
     * @p store. Read-only on the store; parallel over @p pool with the
     * partitioned-ingest ownerOf() mapping.
     */
    void
    stage(const Store &store, const PartitionedBatch &parts, bool reversed,
          ThreadPool &pool)
    {
        const std::size_t num_chunks = parts.numChunks();
        if (chunks_.size() < num_chunks)
            // hotpath-allow: once per epoch, before the parallel stage
            chunks_.resize(num_chunks);
        if (parts.maxNode() != kInvalidNode &&
            (max_node_ == kInvalidNode || parts.maxNode() > max_node_))
            max_node_ = parts.maxNode();

        SAGA_COUNT(telemetry::Counter::IngestEdgesSeen, parts.size());
        pool.run([&](std::size_t w) {
            for (std::size_t c = 0; c < num_chunks; ++c) {
                if (ownerOf(c, num_chunks, pool.size()) != w)
                    continue;
                stageBucket(store, parts.bucket(c, reversed), chunks_[c]);
            }
        });
    }

    /**
     * Apply the staged epoch to @p store and reset. Quiescent only: the
     * publish barrier window, with no concurrent readers or stagers.
     */
    void
    publish(Store &store, ThreadPool &pool)
    {
        if (max_node_ != kInvalidNode)
            store.ensureNodes(max_node_ + 1);
        const std::size_t num_chunks = chunks_.size();
        std::vector<std::uint64_t> appended(pool.size(), 0);
        pool.run([&](std::size_t w) {
            if constexpr (kChunkOwnedAppend<Store>)
                store.declareChunksOwned();
            std::uint64_t count = 0;
            for (std::size_t c = 0; c < num_chunks; ++c) {
                if (ownerOf(c, num_chunks, pool.size()) != w)
                    continue;
                ChunkStage &stage = chunks_[c];
                for (const Edge &e : stage.fresh) {
                    if constexpr (kChunkOwnedAppend<Store>)
                        store.appendNewOwned(e.src, e.dst, e.weight);
                    else
                        store.appendNew(e.src, e.dst, e.weight);
                    ++count;
                }
                // Snapshot duplicates with a lower weight rejoin the
                // normal insert path, which folds in the minimum.
                for (const Edge &e : stage.fixups) {
                    if constexpr (kChunkOwnedAppend<Store>)
                        store.insertOwned(e.src, e.dst, e.weight);
                    else
                        store.insert(e.src, e.dst, e.weight);
                }
                stage.clear();
            }
            appended[w] = count;
        });
        if constexpr (kChunkOwnedAppend<Store>) {
            std::uint64_t total = 0;
            for (std::uint64_t n : appended)
                total += n;
            store.addEdgesPublished(total);
        }
        max_node_ = kInvalidNode;
    }

  private:
    struct ChunkStage
    {
        std::vector<Edge> fresh;  ///< absent from snapshot; blind-append
        std::vector<Edge> fixups; ///< present with higher weight
        StagedEdgeIndex index;    ///< in-batch dedup over fresh

        void
        clear()
        {
            fresh.clear();
            fixups.clear();
            index.clear();
        }
    };

    void
    stageBucket(const Store &store, PartitionedBatch::EdgeSpan bucket,
                ChunkStage &stage)
    {
        for (const Edge &e : bucket) {
            const std::uint32_t pos = stage.index.find(e.src, e.dst);
            if (pos != StagedEdgeIndex::kAbsent) {
                // In-batch duplicate: fold the minimum into the staged
                // entry, exactly what the serial insert would do.
                if (e.weight < stage.fresh[pos].weight)
                    stage.fresh[pos].weight = e.weight;
                SAGA_COUNT(telemetry::Counter::IngestDuplicates, 1);
                continue;
            }
            bool found = false;
            const Weight existing =
                detail::snapshotFindWeight(store, e.src, e.dst, found);
            if (found) {
                SAGA_COUNT(telemetry::Counter::IngestDuplicates, 1);
                if (e.weight < existing)
                    // hotpath-allow: writer-lane staging buffer; its
                    // growth overlaps compute on the reader pool
                    stage.fixups.push_back(e);
                continue;
            }
            stage.index.add(
                e.src, e.dst,
                static_cast<std::uint32_t>(stage.fresh.size()));
            // hotpath-allow: writer-lane staging buffer, reused across
            // epochs; growth overlaps compute by design
            stage.fresh.push_back(e);
        }
    }

    std::vector<ChunkStage> chunks_;
    NodeId max_node_ = kInvalidNode;
};

} // namespace saga

#endif // SAGA_SAGA_STAGED_APPLY_H_
