/**
 * @file
 * Instantiates every (data structure x algorithm) workload combination and
 * provides the string-driven factory used by benches, tests, and examples.
 */

#include "algo/bfs.h"
#include "algo/cc.h"
#include "algo/mc.h"
#include "algo/pr.h"
#include "algo/sssp.h"
#include "algo/sswp.h"
#include "ds/adj_chunked.h"
#include "ds/adj_shared.h"
#include "ds/dah.h"
#include "ds/hybrid.h"
#include "ds/stinger.h"
#include "saga/driver.h"

namespace saga {
namespace {

template <typename Store>
std::unique_ptr<StreamingRunner>
makeForStore(const RunConfig &cfg)
{
    switch (cfg.alg) {
      case AlgKind::BFS:
        return std::make_unique<Runner<Store, Bfs>>(cfg);
      case AlgKind::CC:
        return std::make_unique<Runner<Store, Cc>>(cfg);
      case AlgKind::MC:
        return std::make_unique<Runner<Store, Mc>>(cfg);
      case AlgKind::PR:
        return std::make_unique<Runner<Store, Pr>>(cfg);
      case AlgKind::SSSP:
        return std::make_unique<Runner<Store, Sssp>>(cfg);
      case AlgKind::SSWP:
        return std::make_unique<Runner<Store, Sswp>>(cfg);
    }
    return nullptr;
}

} // namespace

std::unique_ptr<StreamingRunner>
makeRunner(const RunConfig &cfg)
{
    switch (cfg.ds) {
      case DsKind::AS:
        return makeForStore<AdjSharedStore>(cfg);
      case DsKind::AC:
        return makeForStore<AdjChunkedStore>(cfg);
      case DsKind::Stinger:
        return makeForStore<StingerStore>(cfg);
      case DsKind::DAH:
        return makeForStore<DahStore>(cfg);
      case DsKind::Hybrid:
        return makeForStore<HybridStore>(cfg);
    }
    return nullptr;
}

} // namespace saga
