#include "saga/driver.h"

#include <stdexcept>

namespace saga {

const char *
toString(DsKind ds)
{
    switch (ds) {
      case DsKind::AS: return "as";
      case DsKind::AC: return "ac";
      case DsKind::Stinger: return "stinger";
      case DsKind::DAH: return "dah";
      case DsKind::Hybrid: return "hybrid";
    }
    return "?";
}

const char *
toString(AlgKind alg)
{
    switch (alg) {
      case AlgKind::BFS: return "bfs";
      case AlgKind::CC: return "cc";
      case AlgKind::MC: return "mc";
      case AlgKind::PR: return "pr";
      case AlgKind::SSSP: return "sssp";
      case AlgKind::SSWP: return "sswp";
    }
    return "?";
}

const char *
toString(ModelKind model)
{
    switch (model) {
      case ModelKind::FS: return "fs";
      case ModelKind::INC: return "inc";
    }
    return "?";
}

DsKind
parseDs(const std::string &name)
{
    if (name == "as") return DsKind::AS;
    if (name == "ac") return DsKind::AC;
    if (name == "stinger") return DsKind::Stinger;
    if (name == "dah") return DsKind::DAH;
    if (name == "hybrid") return DsKind::Hybrid;
    throw std::invalid_argument("unknown data structure: " + name);
}

AlgKind
parseAlg(const std::string &name)
{
    if (name == "bfs") return AlgKind::BFS;
    if (name == "cc") return AlgKind::CC;
    if (name == "mc") return AlgKind::MC;
    if (name == "pr") return AlgKind::PR;
    if (name == "sssp") return AlgKind::SSSP;
    if (name == "sswp") return AlgKind::SSWP;
    throw std::invalid_argument("unknown algorithm: " + name);
}

ModelKind
parseModel(const std::string &name)
{
    if (name == "fs") return ModelKind::FS;
    if (name == "inc") return ModelKind::INC;
    throw std::invalid_argument("unknown compute model: " + name);
}

} // namespace saga
