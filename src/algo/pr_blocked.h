/**
 * @file
 * Locality-aware PageRank paths: propagation-blocked push and the
 * hub-split hybrid (DESIGN.md §10).
 *
 * The pull power iteration in pr.h is pure random-access bandwidth: one
 * rank (contrib) load per edge, landing anywhere in a |V|-sized array —
 * the paper's Fig. 10 MPKI story. The blocked variant restructures one
 * iteration into three barrier-separated, atomic-free phases:
 *
 *   contrib    contrib[v] = rank[v] / outDegree(v)   (streaming)
 *   bin        every out-edge appends (dst, contrib[src]) to the slab
 *              chain of dst's destination-range bin (streaming writes)
 *   accumulate per bin: zero the bin's rank slice, drain its slabs
 *              (every += lands in one cache-resident slice), finalize
 *              next[v] = base + d·acc and the convergence delta
 *
 * The hybrid keeps blocked push for the low-degree tail but pulls hub
 * rows (in-degree > prHubFactor × average) contiguously: hubs receive
 * so many contributions that binning them is slab churn, while their
 * pull reads are amortized by one sequential adjacency run.
 *
 * Concurrency contract: no atomics anywhere. Each phase partitions its
 * writes (contrib by vertex slice, bins by worker lane, accumulate by
 * bin, hubs by hub slice) and the pool barrier between phases publishes
 * them to the next.
 */

#ifndef SAGA_ALGO_PR_BLOCKED_H_
#define SAGA_ALGO_PR_BLOCKED_H_

#include <cmath>
#include <cstdint>
#include <vector>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "algo/context.h"
#include "perfmodel/trace.h"
#include "platform/dest_bins.h"
#include "platform/edge_ranges.h"
#include "platform/padded.h"
#include "platform/parallel_for.h"
#include "platform/thread_pool.h"
#include "saga/types.h"
#include "telemetry/telemetry.h"

namespace saga {
namespace pr_detail {

/** One binned contribution: destination vertex + its source's share. */
struct DestContrib
{
    NodeId dst;
    double contrib;
};

/** Slab granularity: 256 pairs × 16 B = 4 KiB of sequential appends. */
inline constexpr std::uint32_t kSlabPairs = 256;

/** Destination-range binning geometry: bin(v) = v >> shift. */
struct BinLayout
{
    std::uint32_t shift = 0;
    std::uint32_t bins = 1;

    static BinLayout
    pick(NodeId n, std::size_t workers, std::uint32_t bin_bytes)
    {
        // Width so one bin's rank slice is ~bin_bytes (power of two).
        std::uint32_t width = bin_bytes / sizeof(double);
        std::uint32_t shift = 0;
        while ((2u << shift) <= width && shift < 30)
            ++shift;
        const auto binsFor = [n](std::uint32_t s) {
            return static_cast<std::uint32_t>(
                (static_cast<std::uint64_t>(n) + (1ull << s) - 1) >> s);
        };
        // Narrow bins until the accumulate phase can be load-balanced.
        const std::uint32_t want =
            static_cast<std::uint32_t>(4 * workers);
        while (shift > 8 && binsFor(shift) < want)
            --shift;
        // Cap the per-lane bin bookkeeping on huge graphs.
        while (binsFor(shift) > 65536 && shift < 30)
            ++shift;
        BinLayout layout;
        layout.shift = shift;
        layout.bins = binsFor(shift) ? binsFor(shift) : 1;
        return layout;
    }
};

/** inv[v] = 1/outDegree(v), 0 for dangling vertices (their mass
 *  vanishes, matching the pull formulation and the test oracle). */
template <typename Graph>
void
buildInvOutDegree(const Graph &g, ThreadPool &pool,
                  std::vector<double> &inv)
{
    const NodeId n = g.numNodes();
    inv.resize(n);
    parallelSlices(pool, 0, n,
                   [&](std::size_t, std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) {
            const auto deg = g.outDegree(static_cast<NodeId>(i));
            inv[i] = deg > 0 ? 1.0 / deg : 0.0;
        }
        perf::ops(hi - lo);
        perf::touchWrite(&inv[lo],
                         static_cast<std::uint32_t>((hi - lo) *
                                                    sizeof(double)));
    });
}

/** out[i] = a[i] * b[i] over [0, count) — AVX2 when compiled in. */
inline void
mulInto(const double *a, const double *b, double *out, std::size_t count)
{
    std::size_t i = 0;
#if defined(__AVX2__)
    for (; i + 4 <= count; i += 4) {
        const __m256d va = _mm256_loadu_pd(a + i);
        const __m256d vb = _mm256_loadu_pd(b + i);
        _mm256_storeu_pd(out + i, _mm256_mul_pd(va, vb));
    }
#endif
    for (; i < count; ++i)
        out[i] = a[i] * b[i];
}

/** contrib[v] = values[v] * inv[v]: the hoisted per-iteration shared
 *  contribution source (one streaming pass, no per-edge division). */
inline void
buildContrib(ThreadPool &pool, const std::vector<double> &values,
             const std::vector<double> &inv, std::vector<double> &contrib)
{
    SAGA_PHASE(telemetry::Phase::ComputeContrib);
    contrib.resize(values.size());
    parallelSlices(pool, 0, values.size(),
                   [&](std::size_t, std::uint64_t lo, std::uint64_t hi) {
        mulInto(values.data() + lo, inv.data() + lo, contrib.data() + lo,
                hi - lo);
        perf::ops(hi - lo);
        perf::touch(&values[lo], static_cast<std::uint32_t>(
                                     (hi - lo) * sizeof(double)));
        perf::touchWrite(&contrib[lo], static_cast<std::uint32_t>(
                                           (hi - lo) * sizeof(double)));
    });
}

/**
 * Finalize next[v] = base + damping·next[v] over [lo, hi) and return
 * the L1 rank delta vs @p values. AVX2 when compiled in (the SIMD slab
 * "accumulation" lands here: the drain's scatter adds have in-lane
 * dependences, so the vector win is the finalize + delta sweep).
 */
inline double
finalizeRange(double *next, const double *values, std::uint64_t lo,
              std::uint64_t hi, double base, double damping)
{
    double delta = 0;
    std::uint64_t i = lo;
#if defined(__AVX2__)
    const __m256d vbase = _mm256_set1_pd(base);
    const __m256d vdamp = _mm256_set1_pd(damping);
    const __m256d vabs = _mm256_castsi256_pd(
        _mm256_set1_epi64x(0x7fffffffffffffffll));
    __m256d vdelta = _mm256_setzero_pd();
    for (; i + 4 <= hi; i += 4) {
        const __m256d acc = _mm256_loadu_pd(next + i);
        const __m256d rank =
            _mm256_add_pd(vbase, _mm256_mul_pd(vdamp, acc));
        _mm256_storeu_pd(next + i, rank);
        const __m256d diff =
            _mm256_sub_pd(rank, _mm256_loadu_pd(values + i));
        vdelta = _mm256_add_pd(vdelta, _mm256_and_pd(diff, vabs));
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, vdelta);
    delta = lanes[0] + lanes[1] + lanes[2] + lanes[3];
#endif
    for (; i < hi; ++i) {
        next[i] = base + damping * next[i];
        delta += std::fabs(next[i] - values[i]);
    }
    return delta;
}

/**
 * One blocked/hybrid PageRank power iteration loop. @p values must hold
 * the initial ranks; on return it holds the converged ranks. All scratch
 * (@p next, @p contrib, @p inv) is caller-owned so repeated computes
 * reuse allocations.
 */
template <typename Graph>
void
runBlocked(const Graph &g, ThreadPool &pool, const AlgContext &ctx,
           std::vector<double> &values, std::vector<double> &next,
           const std::vector<double> &inv, std::vector<double> &contrib,
           bool hybrid)
{
    const NodeId n = g.numNodes();
    const double base = (1.0 - ctx.damping) / n;

    // Hub split (hybrid only): vertices whose in-degree exceeds
    // prHubFactor × average are pulled, not pushed into bins.
    std::vector<std::uint8_t> is_hub;
    std::vector<NodeId> hubs;
    EdgeBalancedRanges hub_ranges;
    if (hybrid) {
        PaddedAccumulator<std::uint64_t> worker_edges(pool.size(), 0);
        parallelSlices(pool, 0, n, [&](std::size_t w, std::uint64_t lo,
                                       std::uint64_t hi) {
            std::uint64_t sum = 0;
            for (std::uint64_t i = lo; i < hi; ++i)
                sum += g.inDegree(static_cast<NodeId>(i));
            worker_edges[w] = sum;
        });
        const double avg =
            static_cast<double>(worker_edges.sum()) / n;
        const double threshold = ctx.prHubFactor * avg;
        is_hub.assign(n, 0);
        for (NodeId v = 0; v < n; ++v) {
            if (g.inDegree(v) > threshold) {
                is_hub[v] = 1;
                hubs.push_back(v);
            }
        }
        if (!hubs.empty()) {
            hub_ranges.build(pool, hubs.size(), [&](std::uint64_t i) {
                return static_cast<std::uint64_t>(g.inDegree(hubs[i]));
            });
        }
    }
    const bool split = hybrid && !hubs.empty();

    // Binning sweep is source-major: balance slices by out-degree.
    EdgeBalancedRanges src_ranges;
    src_ranges.build(pool, n, [&](std::uint64_t v) {
        return static_cast<std::uint64_t>(
            g.outDegree(static_cast<NodeId>(v)));
    });

    const BinLayout layout = BinLayout::pick(n, pool.size(), ctx.prBinBytes);
    DestBins<DestContrib> bins;
    bins.configure(pool.size(), layout.bins, kSlabPairs);

    // Accumulate slices are balanced by binned-pair count + slice width;
    // the edge set is frozen during FS compute, so the counts are
    // identical every round — built once after the first bin phase.
    EdgeBalancedRanges bin_ranges;
    bool bin_ranges_built = false;

    PaddedAccumulator<double> worker_delta(pool.size(), 0.0);

    for (std::uint32_t iter = 0; iter < ctx.prMaxIters; ++iter) {
        SAGA_PHASE(telemetry::Phase::ComputeRound);
        SAGA_COUNT(telemetry::Counter::ComputeRounds, 1);
        SAGA_COUNT(telemetry::Counter::ComputeFrontierVertices, n);
        SAGA_COUNT(telemetry::Counter::PrBlockedRounds, 1);

        buildContrib(pool, values, inv, contrib);

        {
            SAGA_PHASE(telemetry::Phase::ComputeBin);
            bins.beginRound();
            src_ranges.forSlices(pool, [&](std::size_t w, std::uint64_t lo,
                                           std::uint64_t hi) {
                for (std::uint64_t i = lo; i < hi; ++i) {
                    const NodeId v = static_cast<NodeId>(i);
                    const double c = contrib[v];
                    if (c == 0.0) // dangling: no out-edges to push
                        continue;
                    perf::touch(&contrib[v], sizeof(double));
                    g.outNeighBlock(v, [&](const Neighbor *run,
                                           std::uint32_t len) {
                        perf::ops(len);
                        for (std::uint32_t j = 0; j < len; ++j) {
                            const NodeId dst = run[j].node;
                            if (split && is_hub[dst])
                                continue;
                            bins.append(w, dst >> layout.shift,
                                        DestContrib{dst, c});
                        }
                        return true;
                    });
                }
            });
            SAGA_COUNT(telemetry::Counter::PrBinFlushes,
                       bins.roundFlushes());
        }

        if (!bin_ranges_built) {
            bin_ranges.build(pool, layout.bins, [&](std::uint64_t b) {
                const std::uint64_t vlo = b << layout.shift;
                const std::uint64_t vhi =
                    std::min<std::uint64_t>(n, (b + 1) << layout.shift);
                return bins.pairCount(static_cast<std::uint32_t>(b)) +
                       (vhi - vlo);
            });
            bin_ranges_built = true;
        }

        {
            SAGA_PHASE(telemetry::Phase::ComputeAccumulate);
            worker_delta.fill(0.0);
            bin_ranges.forSlices(pool, [&](std::size_t w,
                                           std::uint64_t blo,
                                           std::uint64_t bhi) {
                double delta = 0;
                for (std::uint64_t b = blo; b < bhi; ++b) {
                    const std::uint64_t vlo = b << layout.shift;
                    const std::uint64_t vhi = std::min<std::uint64_t>(
                        n, (b + 1) << layout.shift);
                    for (std::uint64_t v = vlo; v < vhi; ++v)
                        next[v] = 0.0;
                    bins.drainBin(
                        static_cast<std::uint32_t>(b),
                        [&](const DestContrib *run, std::uint32_t len) {
                            perf::ops(len);
                            std::uint32_t k = 0;
                            for (; k + 4 <= len; k += 4) {
                                next[run[k].dst] += run[k].contrib;
                                next[run[k + 1].dst] += run[k + 1].contrib;
                                next[run[k + 2].dst] += run[k + 2].contrib;
                                next[run[k + 3].dst] += run[k + 3].contrib;
                                perf::touchWrite(&next[run[k].dst],
                                                 sizeof(double));
                                perf::touchWrite(&next[run[k + 1].dst],
                                                 sizeof(double));
                                perf::touchWrite(&next[run[k + 2].dst],
                                                 sizeof(double));
                                perf::touchWrite(&next[run[k + 3].dst],
                                                 sizeof(double));
                            }
                            for (; k < len; ++k) {
                                next[run[k].dst] += run[k].contrib;
                                perf::touchWrite(&next[run[k].dst],
                                                 sizeof(double));
                            }
                        });
                    perf::touch(&values[vlo],
                                static_cast<std::uint32_t>(
                                    (vhi - vlo) * sizeof(double)));
                    perf::touchWrite(&next[vlo],
                                     static_cast<std::uint32_t>(
                                         (vhi - vlo) * sizeof(double)));
                    if (!split) {
                        delta += finalizeRange(next.data(), values.data(),
                                               vlo, vhi, base,
                                               ctx.damping);
                    } else {
                        // Hub slots are overwritten by the pull pass
                        // below; skip them here so the convergence delta
                        // counts each vertex exactly once.
                        for (std::uint64_t v = vlo; v < vhi; ++v) {
                            if (is_hub[v])
                                continue;
                            next[v] = base + ctx.damping * next[v];
                            delta += std::fabs(next[v] - values[v]);
                        }
                    }
                }
                worker_delta[w] = delta;
            });
        }

        if (split) {
            SAGA_PHASE(telemetry::Phase::ComputeAccumulate);
            SAGA_COUNT(telemetry::Counter::PrHubVertices, hubs.size());
            hub_ranges.forSlices(pool, [&](std::size_t w, std::uint64_t lo,
                                           std::uint64_t hi) {
                double delta = 0;
                for (std::uint64_t i = lo; i < hi; ++i) {
                    const NodeId h = hubs[i];
                    double sum = 0;
                    g.inNeighBlock(h, [&](const Neighbor *run,
                                          std::uint32_t len) {
                        perf::ops(len);
                        for (std::uint32_t j = 0; j < len; ++j) {
                            perf::touch(&contrib[run[j].node],
                                        sizeof(double));
                            sum += contrib[run[j].node];
                        }
                        return true;
                    });
                    next[h] = base + ctx.damping * sum;
                    perf::touchWrite(&next[h], sizeof(double));
                    delta += std::fabs(next[h] - values[h]);
                }
                worker_delta[w] += delta;
            });
        }

        values.swap(next);
        if (worker_delta.sum() < ctx.prTolerance)
            break;
    }
}

} // namespace pr_detail
} // namespace saga

#endif // SAGA_ALGO_PR_BLOCKED_H_
