/**
 * @file
 * SSWP — single-source widest paths.
 *
 * Table I vertex function:
 *   v.path <- max over in-edges e of min(e.source.path, e.weight)
 *
 * The source has infinite width; unreached vertices have width 0. Like MC,
 * SSWP is implemented natively (GAP lacks it): the FS compute runs the
 * shared monotone worklist (algo/monotone_worklist.h) — SSSP's delta-
 * stepping core — with the widest-path operator and a single priority
 * bucket (width ordering does not change the monotone fixpoint, so the
 * engine degenerates into a plain round-synchronous worklist).
 */

#ifndef SAGA_ALGO_SSWP_H_
#define SAGA_ALGO_SSWP_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "platform/atomic_ops.h"
#include "algo/context.h"
#include "algo/monotone_worklist.h"
#include "perfmodel/trace.h"
#include "platform/thread_pool.h"
#include "saga/types.h"

namespace saga {

struct Sswp
{
    using Value = float;

    static constexpr const char *kName = "sswp";
    static constexpr bool kUsesBothDirections = false;
    static constexpr Value kInf = std::numeric_limits<Value>::infinity();

    static Value
    init(NodeId v, const AlgContext &ctx)
    {
        return v == ctx.source ? kInf : 0.0f;
    }

    template <typename Graph>
    static Value
    recompute(const Graph &g, NodeId v, const std::vector<Value> &values,
              const AlgContext &ctx)
    {
        if (v == ctx.source)
            return kInf;
        Value best = 0.0f;
        g.inNeigh(v, [&](const Neighbor &nbr) {
            perf::ops(1);
            perf::touch(&values[nbr.node], sizeof(Value));
            // INC runs recompute concurrently with neighbor updates.
            const Value cand =
                std::min(atomicLoad(values[nbr.node]), nbr.weight);
            if (cand > best)
                best = cand;
        });
        return best;
    }

    static bool
    trigger(Value old_value, Value new_value, const AlgContext &ctx)
    {
        if (std::isinf(old_value) != std::isinf(new_value))
            return true;
        if (std::isinf(old_value) && std::isinf(new_value))
            return false;
        return std::fabs(old_value - new_value) >
               static_cast<Value>(ctx.epsilon);
    }

    /** Monotone-worklist policy: widest paths = max over min(width, w). */
    struct Policy
    {
        using Value = Sswp::Value;
        static Value unreached() { return 0.0f; }
        static Value sourceValue() { return kInf; }
        static Value
        relax(Value src, Weight w)
        {
            return std::min(src, w);
        }
        static bool
        improve(Value &slot, Value cand)
        {
            return atomicFetchMax(slot, cand);
        }
        /** Single bucket: a plain worklist is already the fixpoint. */
        static std::size_t bucketOf(Value, double) { return 0; }
    };

    /** From-scratch compute: worklist widest-path propagation. */
    template <typename Graph>
    static void
    computeFs(const Graph &g, ThreadPool &pool, std::vector<Value> &values,
              const AlgContext &ctx)
    {
        monotoneWorklistCompute<Policy>(g, pool, values, ctx);
    }
};

} // namespace saga

#endif // SAGA_ALGO_SSWP_H_
