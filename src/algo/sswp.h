/**
 * @file
 * SSWP — single-source widest paths.
 *
 * Table I vertex function:
 *   v.path <- max over in-edges e of min(e.source.path, e.weight)
 *
 * The source has infinite width; unreached vertices have width 0. Like MC,
 * SSWP is implemented natively (GAP lacks it): the FS compute is a
 * push-based monotone worklist propagation with atomic max.
 */

#ifndef SAGA_ALGO_SSWP_H_
#define SAGA_ALGO_SSWP_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "platform/atomic_ops.h"
#include "algo/context.h"
#include "algo/frontier.h"
#include "perfmodel/trace.h"
#include "platform/thread_pool.h"
#include "saga/types.h"

namespace saga {

struct Sswp
{
    using Value = float;

    static constexpr const char *kName = "sswp";
    static constexpr bool kUsesBothDirections = false;
    static constexpr Value kInf = std::numeric_limits<Value>::infinity();

    static Value
    init(NodeId v, const AlgContext &ctx)
    {
        return v == ctx.source ? kInf : 0.0f;
    }

    template <typename Graph>
    static Value
    recompute(const Graph &g, NodeId v, const std::vector<Value> &values,
              const AlgContext &ctx)
    {
        if (v == ctx.source)
            return kInf;
        Value best = 0.0f;
        g.inNeigh(v, [&](const Neighbor &nbr) {
            perf::ops(1);
            perf::touch(&values[nbr.node], sizeof(Value));
            // INC runs recompute concurrently with neighbor updates.
            const Value cand =
                std::min(atomicLoad(values[nbr.node]), nbr.weight);
            if (cand > best)
                best = cand;
        });
        return best;
    }

    static bool
    trigger(Value old_value, Value new_value, const AlgContext &ctx)
    {
        if (std::isinf(old_value) != std::isinf(new_value))
            return true;
        if (std::isinf(old_value) && std::isinf(new_value))
            return false;
        return std::fabs(old_value - new_value) >
               static_cast<Value>(ctx.epsilon);
    }

    /** From-scratch compute: worklist widest-path propagation. */
    template <typename Graph>
    static void
    computeFs(const Graph &g, ThreadPool &pool, std::vector<Value> &values,
              const AlgContext &ctx)
    {
        const NodeId n = g.numNodes();
        values.assign(n, 0.0f);
        if (ctx.source >= n)
            return;
        values[ctx.source] = kInf;

        std::vector<NodeId> frontier{ctx.source};
        while (!frontier.empty()) {
            frontier = expandFrontier(pool, frontier,
                                      [&](NodeId v, auto &push) {
                // Races with concurrent atomicFetchMax RMWs on this slot.
                const Value width = atomicLoad(values[v]);
                g.outNeigh(v, [&](const Neighbor &nbr) {
                    perf::ops(1);
                    const Value cand = std::min(width, nbr.weight);
                    perf::touch(&values[nbr.node], sizeof(Value));
                    if (atomicFetchMax(values[nbr.node], cand)) {
                        perf::touchWrite(&values[nbr.node], sizeof(Value));
                        push(nbr.node);
                    }
                });
            });
        }
    }
};

} // namespace saga

#endif // SAGA_ALGO_SSWP_H_
