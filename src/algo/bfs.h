/**
 * @file
 * BFS — breadth-first search depth labelling.
 *
 * Table I vertex function:
 *   v.depth <- min over in-edges e of (e.source.depth + 1)
 *
 * FS implementation: level-synchronous parallel BFS from the source over
 * out-edges (GAP-style, without the direction-optimizing heuristic).
 */

#ifndef SAGA_ALGO_BFS_H_
#define SAGA_ALGO_BFS_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "platform/atomic_ops.h"
#include "algo/context.h"
#include "algo/frontier.h"
#include "perfmodel/trace.h"
#include "platform/thread_pool.h"
#include "saga/types.h"

namespace saga {

struct Bfs
{
    using Value = std::uint32_t;

    static constexpr const char *kName = "bfs";
    /** Unreached depth. */
    static constexpr Value kInf = std::numeric_limits<Value>::max();
    /** CC pulls from both directions; BFS only from in-edges. */
    static constexpr bool kUsesBothDirections = false;

    /** Initial value (FS reset, or a vertex newly streamed in). */
    static Value
    init(NodeId v, const AlgContext &ctx)
    {
        return v == ctx.source ? 0 : kInf;
    }

    /** Table I vertex function (pull form). */
    template <typename Graph>
    static Value
    recompute(const Graph &g, NodeId v, const std::vector<Value> &values,
              const AlgContext &ctx)
    {
        if (v == ctx.source)
            return 0;
        Value best = kInf;
        g.inNeigh(v, [&](const Neighbor &nbr) {
            perf::ops(1);
            // INC runs recompute concurrently with neighbor updates.
            const Value d = atomicLoad(values[nbr.node]);
            perf::touch(&values[nbr.node], sizeof(Value));
            if (d != kInf && d + 1 < best)
                best = d + 1;
        });
        return best;
    }

    /** INC trigger: any change in depth is propagated (discrete values). */
    static bool
    trigger(Value old_value, Value new_value, const AlgContext &)
    {
        return old_value != new_value;
    }

    /** From-scratch compute: level-synchronous BFS. */
    template <typename Graph>
    static void
    computeFs(const Graph &g, ThreadPool &pool, std::vector<Value> &values,
              const AlgContext &ctx)
    {
        const NodeId n = g.numNodes();
        values.assign(n, kInf);
        if (ctx.source >= n)
            return;
        values[ctx.source] = 0;

        std::vector<NodeId> frontier{ctx.source};
        Value depth = 0;
        while (!frontier.empty()) {
            ++depth;
            frontier = expandFrontier(pool, frontier,
                                      [&](NodeId v, auto &push) {
                g.outNeigh(v, [&](const Neighbor &nbr) {
                    perf::ops(1);
                    perf::touch(&values[nbr.node], sizeof(Value));
                    // Atomic pre-check: the slot races with concurrent
                    // atomicClaim RMWs from other workers.
                    if (atomicLoad(values[nbr.node]) == kInf &&
                        atomicClaim(values[nbr.node], kInf, depth)) {
                        perf::touchWrite(&values[nbr.node], sizeof(Value));
                        push(nbr.node);
                    }
                });
            });
        }
    }
};

} // namespace saga

#endif // SAGA_ALGO_BFS_H_
