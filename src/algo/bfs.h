/**
 * @file
 * BFS — breadth-first search depth labelling.
 *
 * Table I vertex function:
 *   v.depth <- min over in-edges e of (e.source.depth + 1)
 *
 * FS implementation: direction-optimizing level-synchronous BFS (Beamer
 * et al., the GAP reference design). Sparse rounds push over out-edges
 * from a queue frontier with CAS-claimed insertion (each vertex enters
 * the next frontier exactly once); dense rounds pull over in-edges into
 * a bitmap frontier, early-exiting a vertex's scan at its first parent.
 * The α/β heuristic picks the direction per round: switch to pull when
 * the frontier's out-degree sum exceeds (unexplored edges)/α, back to
 * push when the frontier shrinks below |V|/β and is no longer growing.
 * ctx.direction pins either path (ForcePush / ForcePull).
 */

#ifndef SAGA_ALGO_BFS_H_
#define SAGA_ALGO_BFS_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "platform/atomic_ops.h"
#include "algo/context.h"
#include "algo/frontier.h"
#include "perfmodel/trace.h"
#include "platform/edge_ranges.h"
#include "platform/thread_pool.h"
#include "saga/types.h"
#include "telemetry/telemetry.h"

namespace saga {

struct Bfs
{
    using Value = std::uint32_t;

    static constexpr const char *kName = "bfs";
    /** Unreached depth. */
    static constexpr Value kInf = std::numeric_limits<Value>::max();
    /** CC pulls from both directions; BFS only from in-edges. */
    static constexpr bool kUsesBothDirections = false;

    /** Initial value (FS reset, or a vertex newly streamed in). */
    static Value
    init(NodeId v, const AlgContext &ctx)
    {
        return v == ctx.source ? 0 : kInf;
    }

    /** Table I vertex function (pull form). */
    template <typename Graph>
    static Value
    recompute(const Graph &g, NodeId v, const std::vector<Value> &values,
              const AlgContext &ctx)
    {
        if (v == ctx.source)
            return 0;
        Value best = kInf;
        g.inNeigh(v, [&](const Neighbor &nbr) {
            perf::ops(1);
            // INC runs recompute concurrently with neighbor updates.
            const Value d = atomicLoad(values[nbr.node]);
            perf::touch(&values[nbr.node], sizeof(Value));
            if (d != kInf && d + 1 < best)
                best = d + 1;
        });
        return best;
    }

    /** INC trigger: any change in depth is propagated (discrete values). */
    static bool
    trigger(Value old_value, Value new_value, const AlgContext &)
    {
        return old_value != new_value;
    }

    /** From-scratch compute: direction-optimizing level-synchronous BFS. */
    template <typename Graph>
    static void
    computeFs(const Graph &g, ThreadPool &pool, std::vector<Value> &values,
              const AlgContext &ctx)
    {
        const NodeId n = g.numNodes();
        values.assign(n, kInf);
        if (ctx.source >= n)
            return;
        values[ctx.source] = 0;

        Frontier frontier;
        frontier.assignSparse({ctx.source});
        EdgeBalancedRanges push_ranges;
        EdgeBalancedRanges pull_ranges;
        bool pull_ranges_built = false;
        std::vector<std::uint64_t> next_bits;
        PaddedAccumulator<std::uint64_t> worker_awake(pool.size(), 0);

        // Heuristic state: unexplored out-edge mass (α condition) and
        // the frontier-size trajectory (β condition).
        std::uint64_t edges_remaining = g.numEdges();
        std::uint64_t awake = 1;
        std::uint64_t old_awake = 0;
        bool was_pull = false;
        Value depth = 0;

        while (awake > 0) {
            ++depth;
            bool pull;
            if (ctx.direction == Direction::ForcePull) {
                pull = true;
            } else if (ctx.direction == Direction::ForcePush) {
                pull = false;
            } else if (was_pull) {
                // Keep pulling while the frontier is still growing or
                // still holds at least |V|/β vertices.
                pull = awake >= old_awake ||
                       awake > static_cast<std::uint64_t>(n / ctx.doBeta);
            } else {
                // Candidate push round: the frontier's exact out-degree
                // sum comes from the edge-balanced prefix built below,
                // so the α test runs on measured edge mass.
                pull = false;
            }

            if (!pull) {
                frontier.toSparse(pool);
                push_ranges.build(pool, frontier.count(),
                                  [&](std::uint64_t i) {
                    return g.outDegree(frontier.sparse()[i]);
                });
                const std::uint64_t scout = push_ranges.edgeSum();
                if (ctx.direction == Direction::Auto && !was_pull &&
                    scout > static_cast<std::uint64_t>(edges_remaining /
                                                       ctx.doAlpha)) {
                    pull = true; // hub-heavy frontier: pull instead
                } else {
                    edges_remaining -=
                        scout < edges_remaining ? scout : edges_remaining;
                    std::vector<NodeId> next =
                        pushRound(g, pool, values, frontier.sparse(),
                                  push_ranges, depth);
                    old_awake = awake;
                    awake = next.size();
                    frontier.assignSparse(std::move(next));
                    was_pull = false;
                    continue;
                }
            }

            frontier.toDense(pool, n);
            if (!pull_ranges_built) {
                pull_ranges.build(pool, n, [&](std::uint64_t v) {
                    return g.inDegree(static_cast<NodeId>(v));
                });
                pull_ranges_built = true;
            }
            old_awake = awake;
            awake = pullRound(g, pool, values, frontier, pull_ranges,
                              next_bits, worker_awake, depth, n);
            was_pull = true;
        }
    }

  private:
    /**
     * One sparse top-down round: claim-then-enqueue over out-edges.
     * The CAS claim dedups frontier insertion — a vertex reachable from
     * several frontier members is pushed by exactly one worker.
     */
    template <typename Graph>
    static std::vector<NodeId>
    pushRound(const Graph &g, ThreadPool &pool, std::vector<Value> &values,
              const std::vector<NodeId> &frontier,
              const EdgeBalancedRanges &ranges, Value depth)
    {
        SAGA_PHASE(telemetry::Phase::ComputeRound);
        SAGA_COUNT(telemetry::Counter::ComputeRounds, 1);
        SAGA_COUNT(telemetry::Counter::ComputeFrontierVertices,
                   frontier.size());
        SAGA_COUNT(telemetry::Counter::BfsPushRounds, 1);
        PaddedAccumulator<std::vector<NodeId>> local(pool.size());
        ranges.forSlices(pool, [&](std::size_t w, std::uint64_t lo,
                                   std::uint64_t hi) {
            std::vector<NodeId> &queue = local[w];
            for (std::uint64_t i = lo; i < hi; ++i) {
                g.outNeigh(frontier[i], [&](const Neighbor &nbr) {
                    perf::ops(1);
                    perf::touch(&values[nbr.node], sizeof(Value));
                    // Atomic pre-check: the slot races with concurrent
                    // atomicClaim RMWs from other workers.
                    if (atomicLoad(values[nbr.node]) == kInf &&
                        atomicClaim(values[nbr.node], kInf, depth)) {
                        perf::touchWrite(&values[nbr.node],
                                         sizeof(Value));
                        // hotpath-allow: worker-local next-frontier
                        // queue (PaddedAccumulator slot), amortized
                        queue.push_back(nbr.node);
                    }
                });
            }
        });
        return concatWorkerQueues(local);
    }

    /**
     * One dense bottom-up round: every unvisited vertex scans its
     * in-neighbor runs for a parent in the current frontier bitmap,
     * stopping at the first hit. Newly reached vertices set their bit
     * in @p next_bits; the caller's Frontier adopts it.
     * @return the number of vertices awakened this round.
     */
    template <typename Graph>
    static std::uint64_t
    pullRound(const Graph &g, ThreadPool &pool, std::vector<Value> &values,
              Frontier &frontier, const EdgeBalancedRanges &ranges,
              std::vector<std::uint64_t> &next_bits,
              PaddedAccumulator<std::uint64_t> &worker_awake, Value depth,
              NodeId n)
    {
        SAGA_PHASE(telemetry::Phase::ComputeRound);
        SAGA_COUNT(telemetry::Counter::ComputeRounds, 1);
        SAGA_COUNT(telemetry::Counter::ComputeFrontierVertices,
                   frontier.count());
        SAGA_COUNT(telemetry::Counter::BfsPullRounds, 1);
        next_bits.assign(Frontier::words(n), 0);
        worker_awake.fill(0);
        const std::vector<std::uint64_t> &cur_bits = frontier.bits();
        ranges.forSlices(pool, [&](std::size_t w, std::uint64_t lo,
                                   std::uint64_t hi) {
            std::uint64_t found = 0;
            for (std::uint64_t i = lo; i < hi; ++i) {
                const NodeId v = static_cast<NodeId>(i);
                // Depths are claimed level-synchronously; anything
                // reached in an earlier round is final this round.
                if (atomicLoad(values[v]) != kInf)
                    continue;
                bool has_parent = false;
                g.inNeighBlock(v, [&](const Neighbor *run,
                                      std::uint32_t len) {
                    perf::ops(len);
                    for (std::uint32_t j = 0; j < len; ++j) {
                        if (Frontier::testBit(cur_bits, run[j].node)) {
                            has_parent = true;
                            return false; // first parent suffices
                        }
                    }
                    return true;
                });
                if (has_parent) {
                    // v is owned by this worker's slice; the store only
                    // races with atomicLoad pre-checks elsewhere.
                    atomicStore(values[v], depth);
                    perf::touchWrite(&values[v], sizeof(Value));
                    atomicFetchOr(next_bits[i >> 6],
                                  std::uint64_t{1} << (i & 63));
                    ++found;
                }
            }
            worker_awake[w] = found;
        });

        const std::uint64_t awake = worker_awake.sum();
        frontier.adoptDense(next_bits, awake, n);
        return awake;
    }
};

} // namespace saga

#endif // SAGA_ALGO_BFS_H_
