/**
 * @file
 * CC — connected components by minimum-label propagation.
 *
 * Table I vertex function:
 *   v.value <- min(v.value, min over incident edges e of e.other.value)
 *
 * Connectivity is weak (edge direction ignored), so both the FS iteration
 * and the INC engine pull from in- AND out-neighbors and propagate in both
 * directions.
 *
 * FS implementation: adaptive frontier-based label propagation. Every
 * round works only on the vertices whose label changed last round.
 * Large frontiers (edge mass above the kDenseBreakEven share of total
 * arcs) run as a dense edge-balanced pull sweep over all vertices using
 * the stores' block iteration; small ones run as sparse pushes (atomic
 * min + round-
 * stamped claim dedup). Label propagation is monotone, so any mix of
 * round types converges to the same componentwise minimum; ctx.direction
 * pins one round type for tests and benches.
 */

#ifndef SAGA_ALGO_CC_H_
#define SAGA_ALGO_CC_H_

#include <cstdint>
#include <numeric>
#include <vector>

#include "algo/context.h"
#include "algo/frontier.h"
#include "perfmodel/trace.h"
#include "platform/atomic_ops.h"
#include "platform/edge_ranges.h"
#include "platform/parallel_for.h"
#include "platform/thread_pool.h"
#include "saga/types.h"
#include "telemetry/telemetry.h"

namespace saga {

struct Cc
{
    using Value = NodeId;

    static constexpr const char *kName = "cc";
    static constexpr bool kUsesBothDirections = true;

    static Value init(NodeId v, const AlgContext &) { return v; }

    /**
     * Dense/sparse break-even. Unlike BFS pull (which early-exits on the
     * first reached parent, making dense rounds cheap — hence Beamer's
     * aggressive α=15), a dense CC sweep always scans all 2|E| arcs. A
     * sparse round costs ~2·(frontier arc mass) atomic-min pushes, each
     * a few times the cost of a pull read, so dense only wins when the
     * frontier covers roughly a third of the total arc mass.
     */
    static constexpr std::uint64_t kDenseBreakEven = 3;

    template <typename Graph>
    static Value
    recompute(const Graph &g, NodeId v, const std::vector<Value> &values,
              const AlgContext &)
    {
        Value best = values[v];
        const auto relax = [&](const Neighbor &nbr) {
            perf::ops(1);
            perf::touch(&values[nbr.node], sizeof(Value));
            // Neighbor slots are concurrently written by their owning
            // workers (FS sweep) or by the INC engine's atomicStore.
            const Value label = atomicLoad(values[nbr.node]);
            if (label < best)
                best = label;
        };
        g.inNeigh(v, relax);
        g.outNeigh(v, relax);
        return best;
    }

    static bool
    trigger(Value old_value, Value new_value, const AlgContext &)
    {
        return old_value != new_value;
    }

    /** From-scratch compute: adaptive dense/sparse label propagation. */
    template <typename Graph>
    static void
    computeFs(const Graph &g, ThreadPool &pool, std::vector<Value> &values,
              const AlgContext &ctx)
    {
        const NodeId n = g.numNodes();
        values.resize(n);
        std::iota(values.begin(), values.end(), Value{0});
        if (n == 0)
            return;

        const auto degreeBoth = [&](NodeId v) {
            return static_cast<std::uint64_t>(g.inDegree(v)) +
                   g.outDegree(v);
        };

        // Round 1 starts with every vertex active, so the Auto heuristic
        // naturally begins dense and shifts to sparse as labels settle.
        std::vector<NodeId> frontier(n);
        std::iota(frontier.begin(), frontier.end(), NodeId{0});

        EdgeBalancedRanges full_ranges;    // all vertices, built once
        EdgeBalancedRanges frontier_ranges; // rebuilt per round
        bool full_ranges_built = false;
        std::uint64_t total_arcs = 0;
        std::vector<std::uint32_t> enqueued(n, 0);
        std::uint32_t round = 0;

        while (!frontier.empty()) {
            frontier_ranges.build(pool, frontier.size(),
                                  [&](std::uint64_t i) {
                return degreeBoth(frontier[i]);
            });

            bool dense;
            if (ctx.direction == Direction::ForcePull) {
                dense = true;
            } else if (ctx.direction == Direction::ForcePush) {
                dense = false;
            } else {
                if (!full_ranges_built) {
                    // Lazy: ForcePush never needs the full prefix.
                    full_ranges.build(pool, n, [&](std::uint64_t v) {
                        return degreeBoth(static_cast<NodeId>(v));
                    });
                    total_arcs = full_ranges.edgeSum();
                    full_ranges_built = true;
                }
                dense = frontier_ranges.edgeSum() * kDenseBreakEven >
                        total_arcs;
            }

            if (dense) {
                if (!full_ranges_built) {
                    full_ranges.build(pool, n, [&](std::uint64_t v) {
                        return degreeBoth(static_cast<NodeId>(v));
                    });
                    full_ranges_built = true;
                }
                frontier = denseRound(g, pool, values, full_ranges);
            } else {
                ++round;
                frontier = sparseRound(g, pool, values, frontier,
                                       frontier_ranges, enqueued, round);
            }
        }
    }

  private:
    /**
     * Dense pull sweep over all vertices with edge-balanced slices and
     * block neighbor iteration. Returns the vertices whose label
     * dropped (each collected once, by its owning worker).
     */
    template <typename Graph>
    static std::vector<NodeId>
    denseRound(const Graph &g, ThreadPool &pool,
               std::vector<Value> &values,
               const EdgeBalancedRanges &ranges)
    {
        SAGA_PHASE(telemetry::Phase::ComputeRound);
        SAGA_COUNT(telemetry::Counter::ComputeRounds, 1);
        SAGA_COUNT(telemetry::Counter::ComputeFrontierVertices,
                   ranges.count());
        SAGA_COUNT(telemetry::Counter::CcDenseRounds, 1);
        PaddedAccumulator<std::vector<NodeId>> local(pool.size());
        ranges.forSlices(pool, [&](std::size_t w, std::uint64_t lo,
                                   std::uint64_t hi) {
            std::vector<NodeId> &changed = local[w];
            const auto scan = [&](const Neighbor *run, std::uint32_t len,
                                  Value &best) {
                perf::ops(len);
                for (std::uint32_t j = 0; j < len; ++j) {
                    const Value label = atomicLoad(values[run[j].node]);
                    if (label < best)
                        best = label;
                }
                return true;
            };
            for (std::uint64_t i = lo; i < hi; ++i) {
                const NodeId v = static_cast<NodeId>(i);
                const Value cur = atomicLoad(values[v]);
                // Floor skip: labels are vertex ids and only decrease,
                // so a vertex already at the global floor can never
                // improve; its neighbors pull values[v] themselves, so
                // its scan contributes nothing. On skewed graphs most
                // vertices hit the floor after the first sweep, making
                // later dense rounds nearly free.
                if (cur == 0)
                    continue;
                Value best = cur;
                // Pointer-jumping shortcut: a label is a vertex id in
                // v's own component, so its label is too — min it in for
                // Shiloach-Vishkin-style exponential label collapse.
                const Value hop = atomicLoad(values[best]);
                if (hop < best)
                    best = hop;
                g.inNeighBlock(v, [&](const Neighbor *run,
                                      std::uint32_t len) {
                    return scan(run, len, best);
                });
                g.outNeighBlock(v, [&](const Neighbor *run,
                                       std::uint32_t len) {
                    return scan(run, len, best);
                });
                // v belongs to this worker's slice (dense rounds store
                // only through the owner), but other workers
                // concurrently read values[v] through their scans.
                if (best < cur) {
                    atomicStore(values[v], best);
                    perf::touchWrite(&values[v], sizeof(Value));
                    // hotpath-allow: worker-local changed list
                    // (PaddedAccumulator slot), amortized growth
                    changed.push_back(v);
                }
            }
        });
        return concatWorkerQueues(local);
    }

    /**
     * Sparse push round: every frontier vertex pushes its label to both
     * neighbor directions with an atomic min; a lowered neighbor enters
     * the next frontier exactly once (round-stamped claim, the SSSP
     * bucket-push discipline).
     */
    template <typename Graph>
    static std::vector<NodeId>
    sparseRound(const Graph &g, ThreadPool &pool,
                std::vector<Value> &values,
                const std::vector<NodeId> &frontier,
                const EdgeBalancedRanges &ranges,
                std::vector<std::uint32_t> &enqueued, std::uint32_t round)
    {
        SAGA_PHASE(telemetry::Phase::ComputeRound);
        SAGA_COUNT(telemetry::Counter::ComputeRounds, 1);
        SAGA_COUNT(telemetry::Counter::ComputeFrontierVertices,
                   frontier.size());
        SAGA_COUNT(telemetry::Counter::CcSparseRounds, 1);
        PaddedAccumulator<std::vector<NodeId>> local(pool.size());
        ranges.forSlices(pool, [&](std::size_t w, std::uint64_t lo,
                                   std::uint64_t hi) {
            std::vector<NodeId> &queue = local[w];
            const auto relax = [&](const Neighbor &nbr, Value label) {
                perf::ops(1);
                perf::touch(&values[nbr.node], sizeof(Value));
                if (atomicFetchMin(values[nbr.node], label)) {
                    perf::touchWrite(&values[nbr.node], sizeof(Value));
                    const std::uint32_t seen =
                        atomicLoad(enqueued[nbr.node]);
                    if (seen != round &&
                        atomicClaim(enqueued[nbr.node], seen, round)) {
                        // hotpath-allow: worker-local sparse queue
                        // (PaddedAccumulator slot), amortized growth
                        queue.push_back(nbr.node);
                    }
                }
            };
            for (std::uint64_t i = lo; i < hi; ++i) {
                const NodeId v = frontier[i];
                // Races with concurrent atomicFetchMin RMWs on the slot.
                const Value label = atomicLoad(values[v]);
                g.outNeigh(v, [&](const Neighbor &nbr) {
                    relax(nbr, label);
                });
                g.inNeigh(v, [&](const Neighbor &nbr) {
                    relax(nbr, label);
                });
            }
        });
        return concatWorkerQueues(local);
    }
};

} // namespace saga

#endif // SAGA_ALGO_CC_H_
