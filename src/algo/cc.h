/**
 * @file
 * CC — connected components by minimum-label propagation.
 *
 * Table I vertex function:
 *   v.value <- min(v.value, min over incident edges e of e.other.value)
 *
 * Connectivity is weak (edge direction ignored), so both the FS iteration
 * and the INC engine pull from in- AND out-neighbors and propagate in both
 * directions.
 */

#ifndef SAGA_ALGO_CC_H_
#define SAGA_ALGO_CC_H_

#include <vector>

#include "algo/context.h"
#include "perfmodel/trace.h"
#include "platform/atomic_ops.h"
#include "platform/parallel_for.h"
#include "platform/thread_pool.h"
#include "saga/types.h"
#include "telemetry/telemetry.h"

namespace saga {

struct Cc
{
    using Value = NodeId;

    static constexpr const char *kName = "cc";
    static constexpr bool kUsesBothDirections = true;

    static Value init(NodeId v, const AlgContext &) { return v; }

    template <typename Graph>
    static Value
    recompute(const Graph &g, NodeId v, const std::vector<Value> &values,
              const AlgContext &)
    {
        Value best = values[v];
        const auto relax = [&](const Neighbor &nbr) {
            perf::ops(1);
            perf::touch(&values[nbr.node], sizeof(Value));
            // Neighbor slots are concurrently written by their owning
            // workers (FS sweep) or by the INC engine's atomicStore.
            const Value label = atomicLoad(values[nbr.node]);
            if (label < best)
                best = label;
        };
        g.inNeigh(v, relax);
        g.outNeigh(v, relax);
        return best;
    }

    static bool
    trigger(Value old_value, Value new_value, const AlgContext &)
    {
        return old_value != new_value;
    }

    /**
     * From-scratch compute: synchronous min-label iteration until a full
     * pass makes no change (deterministic; labels are pulled from the
     * previous pass via a double buffer-free sweep, which still converges
     * to the componentwise minimum).
     */
    template <typename Graph>
    static void
    computeFs(const Graph &g, ThreadPool &pool, std::vector<Value> &values,
              const AlgContext &ctx)
    {
        const NodeId n = g.numNodes();
        values.resize(n);
        for (NodeId v = 0; v < n; ++v)
            values[v] = v;

        std::vector<char> changed(pool.size(), 1);
        bool any_change = true;
        while (any_change) {
            SAGA_PHASE(telemetry::Phase::ComputeRound);
            SAGA_COUNT(telemetry::Counter::ComputeRounds, 1);
            SAGA_COUNT(telemetry::Counter::ComputeFrontierVertices, n);
            std::fill(changed.begin(), changed.end(), 0);
            parallelSlices(pool, 0, n,
                           [&](std::size_t w, std::uint64_t lo,
                               std::uint64_t hi) {
                char local_change = 0;
                for (NodeId v = static_cast<NodeId>(lo); v < hi; ++v) {
                    const Value best = recompute(g, v, values, ctx);
                    // v belongs to this worker's slice, but other workers
                    // concurrently read values[v] through relax.
                    if (best < values[v]) {
                        atomicStore(values[v], best);
                        perf::touchWrite(&values[v], sizeof(Value));
                        local_change = 1;
                    }
                }
                changed[w] = local_change;
            });
            any_change = false;
            for (char c : changed)
                any_change |= (c != 0);
        }
    }
};

} // namespace saga

#endif // SAGA_ALGO_CC_H_
