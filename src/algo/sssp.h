/**
 * @file
 * SSSP — single-source shortest paths.
 *
 * Table I vertex function:
 *   v.path <- min over in-edges e of (e.source.path + e.weight)
 *
 * FS implementation: delta-stepping (the "highly optimized" GAP-style FS
 * the paper credits for SSSP's competitive FS results, Section V-C
 * footnote 7). Vertices are binned into buckets of width ctx.delta and
 * buckets are processed in order; relaxations use atomic min so a bucket
 * can be expanded in parallel.
 */

#ifndef SAGA_ALGO_SSSP_H_
#define SAGA_ALGO_SSSP_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "platform/atomic_ops.h"
#include "algo/context.h"
#include "algo/frontier.h"
#include "perfmodel/trace.h"
#include "platform/thread_pool.h"
#include "saga/types.h"

namespace saga {

struct Sssp
{
    using Value = float;

    static constexpr const char *kName = "sssp";
    static constexpr bool kUsesBothDirections = false;
    static constexpr Value kInf = std::numeric_limits<Value>::infinity();

    static Value
    init(NodeId v, const AlgContext &ctx)
    {
        return v == ctx.source ? 0.0f : kInf;
    }

    template <typename Graph>
    static Value
    recompute(const Graph &g, NodeId v, const std::vector<Value> &values,
              const AlgContext &ctx)
    {
        if (v == ctx.source)
            return 0.0f;
        Value best = kInf;
        g.inNeigh(v, [&](const Neighbor &nbr) {
            perf::ops(1);
            perf::touch(&values[nbr.node], sizeof(Value));
            // INC runs recompute concurrently with neighbor updates.
            const Value cand = atomicLoad(values[nbr.node]) + nbr.weight;
            if (cand < best)
                best = cand;
        });
        return best;
    }

    static bool
    trigger(Value old_value, Value new_value, const AlgContext &ctx)
    {
        if (std::isinf(old_value) != std::isinf(new_value))
            return true;
        if (std::isinf(old_value) && std::isinf(new_value))
            return false;
        return std::fabs(old_value - new_value) >
               static_cast<Value>(ctx.epsilon);
    }

    /** From-scratch compute: delta-stepping. */
    template <typename Graph>
    static void
    computeFs(const Graph &g, ThreadPool &pool, std::vector<Value> &values,
              const AlgContext &ctx)
    {
        const NodeId n = g.numNodes();
        values.assign(n, kInf);
        if (ctx.source >= n)
            return;
        values[ctx.source] = 0.0f;

        const double delta = ctx.delta > 0 ? ctx.delta : 1.0;
        std::vector<std::vector<NodeId>> buckets;
        const auto bucketFor = [&](Value dist) {
            return static_cast<std::size_t>(dist / delta);
        };
        const auto place = [&](NodeId v, Value dist) {
            const std::size_t b = bucketFor(dist);
            if (b >= buckets.size())
                buckets.resize(b + 1);
            buckets[b].push_back(v);
        };
        place(ctx.source, 0.0f);

        // Round-stamped membership marks: several workers can lower the
        // same vertex in one round, but only the worker whose claim CAS
        // succeeds pushes it, so each vertex enters a bucket round at most
        // once (instead of once per successful relaxation).
        std::vector<std::uint32_t> enqueued(n, 0);
        std::uint32_t round = 0;

        for (std::size_t b = 0; b < buckets.size(); ++b) {
            // A vertex may be re-binned several times; process until this
            // bucket stays empty (re-insertions into bucket b happen when
            // a shorter same-bucket path is found).
            while (!buckets[b].empty()) {
                std::vector<NodeId> frontier = std::move(buckets[b]);
                buckets[b].clear();
                ++round;

                std::vector<NodeId> relaxed = expandFrontier(
                    pool, frontier, [&](NodeId v, auto &push) {
                    // Concurrent atomicFetchMin RMWs target this slot, so
                    // the read must be atomic too.
                    const Value dist = atomicLoad(values[v]);
                    // Skip stale entries (v was re-binned with a shorter
                    // path already processed).
                    if (bucketFor(dist) != b)
                        return;
                    g.outNeigh(v, [&](const Neighbor &nbr) {
                        perf::ops(1);
                        const Value cand = dist + nbr.weight;
                        perf::touch(&values[nbr.node], sizeof(Value));
                        if (atomicFetchMin(values[nbr.node], cand)) {
                            perf::touchWrite(&values[nbr.node],
                                             sizeof(Value));
                            const std::uint32_t seen =
                                atomicLoad(enqueued[nbr.node]);
                            if (seen != round &&
                                atomicClaim(enqueued[nbr.node], seen,
                                            round)) {
                                push(nbr.node);
                            }
                        }
                    });
                });

                for (NodeId v : relaxed)
                    place(v, values[v]);
            }
        }
    }
};

} // namespace saga

#endif // SAGA_ALGO_SSSP_H_
