/**
 * @file
 * SSSP — single-source shortest paths.
 *
 * Table I vertex function:
 *   v.path <- min over in-edges e of (e.source.path + e.weight)
 *
 * FS implementation: delta-stepping (the "highly optimized" GAP-style FS
 * the paper credits for SSSP's competitive FS results, Section V-C
 * footnote 7). Vertices are binned into buckets of width ctx.delta and
 * buckets are processed in order; relaxations use atomic min so a bucket
 * can be expanded in parallel. The bucket engine itself is the shared
 * monotone worklist (algo/monotone_worklist.h) — SSWP runs the same core
 * with the max/min-width operator.
 */

#ifndef SAGA_ALGO_SSSP_H_
#define SAGA_ALGO_SSSP_H_

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "platform/atomic_ops.h"
#include "algo/context.h"
#include "algo/monotone_worklist.h"
#include "perfmodel/trace.h"
#include "platform/thread_pool.h"
#include "saga/types.h"

namespace saga {

struct Sssp
{
    using Value = float;

    static constexpr const char *kName = "sssp";
    static constexpr bool kUsesBothDirections = false;
    static constexpr Value kInf = std::numeric_limits<Value>::infinity();

    static Value
    init(NodeId v, const AlgContext &ctx)
    {
        return v == ctx.source ? 0.0f : kInf;
    }

    template <typename Graph>
    static Value
    recompute(const Graph &g, NodeId v, const std::vector<Value> &values,
              const AlgContext &ctx)
    {
        if (v == ctx.source)
            return 0.0f;
        Value best = kInf;
        g.inNeigh(v, [&](const Neighbor &nbr) {
            perf::ops(1);
            perf::touch(&values[nbr.node], sizeof(Value));
            // INC runs recompute concurrently with neighbor updates.
            const Value cand = atomicLoad(values[nbr.node]) + nbr.weight;
            if (cand < best)
                best = cand;
        });
        return best;
    }

    static bool
    trigger(Value old_value, Value new_value, const AlgContext &ctx)
    {
        if (std::isinf(old_value) != std::isinf(new_value))
            return true;
        if (std::isinf(old_value) && std::isinf(new_value))
            return false;
        return std::fabs(old_value - new_value) >
               static_cast<Value>(ctx.epsilon);
    }

    /** Monotone-worklist policy: shortest paths = min over (dist + w). */
    struct Policy
    {
        using Value = Sssp::Value;
        static Value unreached() { return kInf; }
        static Value sourceValue() { return 0.0f; }
        static Value relax(Value src, Weight w) { return src + w; }
        static bool
        improve(Value &slot, Value cand)
        {
            return atomicFetchMin(slot, cand);
        }
        /** Delta-stepping bucket: distance binned by ctx.delta. */
        static std::size_t
        bucketOf(Value value, double delta)
        {
            return static_cast<std::size_t>(value / delta);
        }
    };

    /** From-scratch compute: delta-stepping on the shared core. */
    template <typename Graph>
    static void
    computeFs(const Graph &g, ThreadPool &pool, std::vector<Value> &values,
              const AlgContext &ctx)
    {
        monotoneWorklistCompute<Policy>(g, pool, values, ctx);
    }
};

} // namespace saga

#endif // SAGA_ALGO_SSSP_H_
