/**
 * @file
 * MC — max computation (maximum ancestor value propagation).
 *
 * Table I vertex function:
 *   v.value <- max(v.value, max over in-edges e of e.source.value)
 *
 * Each vertex starts with its own id as value; at the fixed point each
 * vertex holds the maximum id among vertices that can reach it. MC is one
 * of the two algorithms (with SSWP) the paper implements itself because GAP
 * lacks it; as the paper notes (Section V-C, footnote 7), the FS and INC
 * implementations are naturally similar — a monotone worklist propagation.
 */

#ifndef SAGA_ALGO_MC_H_
#define SAGA_ALGO_MC_H_

#include <cstdint>
#include <vector>

#include "platform/atomic_ops.h"
#include "algo/context.h"
#include "algo/frontier.h"
#include "platform/edge_ranges.h"
#include "perfmodel/trace.h"
#include "platform/parallel_for.h"
#include "platform/thread_pool.h"
#include "saga/types.h"

namespace saga {

struct Mc
{
    using Value = NodeId;

    static constexpr const char *kName = "mc";
    static constexpr bool kUsesBothDirections = false;

    static Value init(NodeId v, const AlgContext &) { return v; }

    template <typename Graph>
    static Value
    recompute(const Graph &g, NodeId v, const std::vector<Value> &values,
              const AlgContext &)
    {
        Value best = values[v];
        g.inNeigh(v, [&](const Neighbor &nbr) {
            perf::ops(1);
            perf::touch(&values[nbr.node], sizeof(Value));
            // INC runs recompute concurrently with neighbor updates.
            const Value label = atomicLoad(values[nbr.node]);
            if (label > best)
                best = label;
        });
        return best;
    }

    static bool
    trigger(Value old_value, Value new_value, const AlgContext &)
    {
        return old_value != new_value;
    }

    /**
     * From-scratch compute: push-based worklist max propagation with
     * edge-balanced rounds (per-round out-degree prefix sum) and round-
     * stamped claim dedup — a vertex raised by several frontier members
     * enters the next frontier once.
     */
    template <typename Graph>
    static void
    computeFs(const Graph &g, ThreadPool &pool, std::vector<Value> &values,
              const AlgContext &)
    {
        const NodeId n = g.numNodes();
        values.resize(n);
        std::vector<NodeId> frontier(n);
        for (NodeId v = 0; v < n; ++v) {
            values[v] = v;
            frontier[v] = v;
        }

        EdgeBalancedRanges ranges;
        std::vector<std::uint32_t> enqueued(n, 0);
        std::uint32_t round = 0;

        while (!frontier.empty()) {
            ++round;
            frontier = expandFrontierBalanced(
                pool, frontier, ranges,
                [&](NodeId v) { return g.outDegree(v); },
                [&](NodeId v, auto &push) {
                // Races with concurrent atomicFetchMax RMWs on this slot.
                const Value value = atomicLoad(values[v]);
                g.outNeigh(v, [&](const Neighbor &nbr) {
                    perf::ops(1);
                    perf::touch(&values[nbr.node], sizeof(Value));
                    if (atomicFetchMax(values[nbr.node], value)) {
                        perf::touchWrite(&values[nbr.node], sizeof(Value));
                        const std::uint32_t seen =
                            atomicLoad(enqueued[nbr.node]);
                        if (seen != round &&
                            atomicClaim(enqueued[nbr.node], seen, round)) {
                            push(nbr.node);
                        }
                    }
                });
            });
        }
    }
};

} // namespace saga

#endif // SAGA_ALGO_MC_H_
