/**
 * @file
 * Parallel frontier expansion shared by the FS and INC engines.
 */

#ifndef SAGA_ALGO_FRONTIER_H_
#define SAGA_ALGO_FRONTIER_H_

#include <cstddef>
#include <vector>

#include "platform/parallel_for.h"
#include "platform/thread_pool.h"
#include "saga/types.h"
#include "telemetry/telemetry.h"

namespace saga {

/**
 * Apply body(v, push) to every vertex in @p frontier in parallel;
 * push(NodeId) collects vertices into per-worker queues which are
 * concatenated into the returned next frontier.
 */
template <typename Body>
std::vector<NodeId>
expandFrontier(ThreadPool &pool, const std::vector<NodeId> &frontier,
               const Body &body)
{
    // Every frontier sweep is one compute round (FS traversals and INC
    // propagation both come through here).
    SAGA_PHASE(telemetry::Phase::ComputeRound);
    SAGA_COUNT(telemetry::Counter::ComputeRounds, 1);
    SAGA_COUNT(telemetry::Counter::ComputeFrontierVertices,
               frontier.size());
    std::vector<std::vector<NodeId>> local(pool.size());
    parallelSlices(pool, 0, frontier.size(),
                   [&](std::size_t w, std::uint64_t lo, std::uint64_t hi) {
        std::vector<NodeId> &queue = local[w];
        auto push = [&queue](NodeId v) { queue.push_back(v); };
        for (std::uint64_t i = lo; i < hi; ++i)
            body(frontier[i], push);
    });

    std::size_t total = 0;
    for (const auto &queue : local)
        total += queue.size();
    std::vector<NodeId> next;
    next.reserve(total);
    for (const auto &queue : local)
        next.insert(next.end(), queue.begin(), queue.end());
    return next;
}

} // namespace saga

#endif // SAGA_ALGO_FRONTIER_H_
