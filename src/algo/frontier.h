/**
 * @file
 * Frontier machinery shared by the FS and INC engines.
 *
 * Two pieces:
 *
 *  - Frontier — a GAP-style dual-representation vertex set: a sparse
 *    queue (one NodeId per member, the push engines' natural form) and a
 *    dense bitmap (one bit per vertex, the pull engines' natural form),
 *    with cheap parallel conversion between them. The direction-
 *    optimizing kernels (bfs.h, cc.h) flip representation at the push ⇄
 *    pull crossover instead of paying O(n) per round unconditionally.
 *
 *  - expandFrontier / expandFrontierBalanced — one parallel sweep over a
 *    sparse frontier, collecting pushed vertices into per-worker queues
 *    that are concatenated into the next frontier. The balanced variant
 *    splits the frontier by edge mass (degree prefix sum,
 *    platform/edge_ranges.h) instead of by vertex count, so a hub vertex
 *    no longer serializes the round on power-law graphs.
 */

#ifndef SAGA_ALGO_FRONTIER_H_
#define SAGA_ALGO_FRONTIER_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "platform/atomic_ops.h"
#include "platform/edge_ranges.h"
#include "platform/padded.h"
#include "platform/parallel_for.h"
#include "platform/thread_pool.h"
#include "saga/types.h"
#include "telemetry/telemetry.h"

namespace saga {

/**
 * Concatenate per-worker output queues into one vector. The queues live
 * in a PaddedAccumulator (one cache line per worker) so the parallel
 * push_backs that filled them never falsely shared a line; this runs
 * after the pool barrier that published them.
 */
inline std::vector<NodeId>
concatWorkerQueues(const PaddedAccumulator<std::vector<NodeId>> &local)
{
    std::size_t total = 0;
    for (std::size_t w = 0; w < local.size(); ++w)
        total += local[w].size();
    std::vector<NodeId> out;
    // hotpath-allow: one exact-size reserve per round, after the barrier
    out.reserve(total);
    for (std::size_t w = 0; w < local.size(); ++w)
        // hotpath-allow: bulk copy into the reserved buffer, no regrowth
        out.insert(out.end(), local[w].begin(), local[w].end());
    return out;
}

/**
 * Dual-representation vertex frontier: sparse NodeId queue + dense
 * bitmap. Exactly one representation is authoritative at a time;
 * toDense()/toSparse() convert in parallel and are no-ops when the
 * frontier is already in the requested form. Buffers are reused across
 * conversions (capacity persists), so round-to-round flips in a
 * traversal do not allocate in steady state.
 */
class Frontier
{
  public:
    /** Bitmap words needed for @p n vertices. */
    static constexpr std::uint64_t
    words(NodeId n)
    {
        return (static_cast<std::uint64_t>(n) + 63) / 64;
    }

    /** Membership test against a dense bitmap. */
    static bool
    testBit(const std::vector<std::uint64_t> &bits, NodeId v)
    {
        return (bits[v >> 6] >> (v & 63)) & 1u;
    }

    /** Replace the contents with a sparse queue. */
    void
    assignSparse(std::vector<NodeId> queue)
    {
        queue_ = std::move(queue);
        count_ = queue_.size();
        dense_ = false;
    }

    /**
     * Replace the contents with a dense bitmap over @p n vertices whose
     * population count the caller already knows (pull rounds count
     * awakened vertices as they set bits). The bitmap is *swapped* in,
     * leaving the previous one behind in @p bits for reuse.
     */
    void
    adoptDense(std::vector<std::uint64_t> &bits, std::uint64_t count,
               NodeId n)
    {
        bits_.swap(bits);
        count_ = count;
        num_nodes_ = n;
        dense_ = true;
    }

    std::uint64_t count() const { return count_; }
    bool empty() const { return count_ == 0; }
    bool dense() const { return dense_; }

    /** The sparse queue (valid only when !dense()). */
    const std::vector<NodeId> &sparse() const { return queue_; }

    /** The dense bitmap (valid only when dense()). */
    const std::vector<std::uint64_t> &bits() const { return bits_; }

    /**
     * Convert to the dense representation over @p n vertices: clear the
     * bitmap and scatter the queue's bits in parallel (two O(n/64 +
     * |frontier|/P) passes).
     */
    void
    toDense(ThreadPool &pool, NodeId n)
    {
        if (dense_)
            return;
        bits_.assign(words(n), 0);
        num_nodes_ = n;
        parallelFor(pool, 0, queue_.size(), [&](std::uint64_t i) {
            const NodeId v = queue_[i];
            // Two queue entries can share a word; the OR must be atomic.
            atomicFetchOr(bits_[v >> 6],
                          std::uint64_t{1} << (v & 63));
        });
        dense_ = true;
    }

    /**
     * Convert to the sparse representation: per-worker gathers over word
     * slices, concatenated. Vertex order is bitmap order, not insertion
     * order — the parallel sweeps do not observe ordering.
     */
    void
    toSparse(ThreadPool &pool)
    {
        if (!dense_)
            return;
        PaddedAccumulator<std::vector<NodeId>> local(pool.size());
        parallelSlices(pool, 0, bits_.size(),
                       [&](std::size_t w, std::uint64_t lo,
                           std::uint64_t hi) {
            std::vector<NodeId> &out = local[w];
            for (std::uint64_t word = lo; word < hi; ++word) {
                std::uint64_t m = bits_[word];
                while (m) {
                    const int bit = std::countr_zero(m);
                    out.push_back(
                        static_cast<NodeId>(word * 64 + bit));
                    m &= m - 1;
                }
            }
        });
        queue_ = concatWorkerQueues(local);
        dense_ = false;
    }

  private:
    std::vector<NodeId> queue_;
    std::vector<std::uint64_t> bits_;
    std::uint64_t count_ = 0;
    NodeId num_nodes_ = 0;
    bool dense_ = false;
};

/**
 * Apply body(v, push) to every vertex in @p frontier in parallel;
 * push(NodeId) collects vertices into per-worker queues which are
 * concatenated into the returned next frontier. Vertex-balanced static
 * split — kept as the reference partitioning (bench_compute measures
 * the edge-balanced variant against it).
 */
template <typename Body>
std::vector<NodeId>
expandFrontier(ThreadPool &pool, const std::vector<NodeId> &frontier,
               const Body &body)
{
    // Every frontier sweep is one compute round (FS traversals and INC
    // propagation both come through here).
    SAGA_PHASE(telemetry::Phase::ComputeRound);
    SAGA_COUNT(telemetry::Counter::ComputeRounds, 1);
    SAGA_COUNT(telemetry::Counter::ComputeFrontierVertices,
               frontier.size());
    PaddedAccumulator<std::vector<NodeId>> local(pool.size());
    parallelSlices(pool, 0, frontier.size(),
                   [&](std::size_t w, std::uint64_t lo, std::uint64_t hi) {
        std::vector<NodeId> &queue = local[w];
        auto push = [&queue](NodeId v) { queue.push_back(v); };
        for (std::uint64_t i = lo; i < hi; ++i)
            body(frontier[i], push);
    });
    return concatWorkerQueues(local);
}

/**
 * expandFrontier with edge-balanced work division: @p ranges is rebuilt
 * over the frontier using degree(v) weights, and each worker receives a
 * contiguous slice of ~equal edge mass. @p ranges is caller-owned so its
 * prefix buffer is reused across rounds.
 */
template <typename DegreeFn, typename Body>
std::vector<NodeId>
expandFrontierBalanced(ThreadPool &pool,
                       const std::vector<NodeId> &frontier,
                       EdgeBalancedRanges &ranges, const DegreeFn &degree,
                       const Body &body)
{
    SAGA_PHASE(telemetry::Phase::ComputeRound);
    SAGA_COUNT(telemetry::Counter::ComputeRounds, 1);
    SAGA_COUNT(telemetry::Counter::ComputeFrontierVertices,
               frontier.size());
    ranges.build(pool, frontier.size(),
                 [&](std::uint64_t i) { return degree(frontier[i]); });
    PaddedAccumulator<std::vector<NodeId>> local(pool.size());
    ranges.forSlices(pool, [&](std::size_t w, std::uint64_t lo,
                               std::uint64_t hi) {
        std::vector<NodeId> &queue = local[w];
        auto push = [&queue](NodeId v) { queue.push_back(v); };
        for (std::uint64_t i = lo; i < hi; ++i)
            body(frontier[i], push);
    });
    return concatWorkerQueues(local);
}

} // namespace saga

#endif // SAGA_ALGO_FRONTIER_H_
