/**
 * @file
 * PR — PageRank.
 *
 * Table I vertex function (with the out-degree normalization noted in
 * Section V-B):
 *   v.rank <- (1-d)/|V| + d * sum over in-edges e of
 *             e.source.rank / outDegree(e.source)
 *
 * FS implementation: power iteration until the L1 rank change falls
 * below prTolerance (or prMaxIters passes), with three locality-aware
 * execution strategies (PrVariant, DESIGN.md §10):
 *
 *  - Pull: GAP-style pull iteration over in-edges, with the per-edge
 *    outDegree lookup + division hoisted into a per-iteration
 *    contrib[] array (one streaming pass instead of |E| divisions).
 *  - Blocked: propagation-blocked push — contributions are binned by
 *    destination range into cache-sized slabs, then accumulated per
 *    bin with no atomics (pr_blocked.h).
 *  - Hybrid: hub rows pulled contiguously, low-degree tail via blocked
 *    push.
 *
 * Auto picks per graph shape: Pull while the rank array is
 * cache-resident, Hybrid on dense graphs, Blocked otherwise.
 */

#ifndef SAGA_ALGO_PR_H_
#define SAGA_ALGO_PR_H_

#include <cmath>
#include <vector>

#include "algo/context.h"
#include "algo/pr_blocked.h"
#include "perfmodel/trace.h"
#include "platform/atomic_ops.h"
#include "platform/edge_ranges.h"
#include "platform/padded.h"
#include "platform/parallel_for.h"
#include "platform/thread_pool.h"
#include "saga/types.h"
#include "telemetry/telemetry.h"

namespace saga {

struct Pr
{
    using Value = double;

    static constexpr const char *kName = "pr";
    static constexpr bool kUsesBothDirections = false;

    static Value
    init(NodeId, const AlgContext &ctx)
    {
        return ctx.numNodesHint > 0 ? 1.0 / ctx.numNodesHint : 1.0;
    }

    template <typename Graph>
    static Value
    recompute(const Graph &g, NodeId v, const std::vector<Value> &values,
              const AlgContext &ctx)
    {
        const double base = (1.0 - ctx.damping) / g.numNodes();
        double sum = 0;
        // Shared contribution source: the INC engine materializes
        // 1/outDegree once per batch (prepareIncPhase) so the hot loop
        // skips the per-edge degree lookup + division. Degrees are
        // static during a compute phase; only the rank loads race with
        // concurrent recomputes, hence the atomicLoad.
        const double *inv = ctx.prInvOutDegree;
        g.inNeigh(v, [&](const Neighbor &nbr) {
            perf::ops(1);
            perf::touch(&values[nbr.node], sizeof(Value));
            if (inv != nullptr) {
                sum += atomicLoad(values[nbr.node]) * inv[nbr.node];
                return;
            }
            const std::uint32_t out_degree = g.outDegree(nbr.node);
            if (out_degree > 0)
                sum += atomicLoad(values[nbr.node]) / out_degree;
        });
        return base + ctx.damping * sum;
    }

    /** INC trigger: Algorithm 1's |old - new| > epsilon. */
    static bool
    trigger(Value old_value, Value new_value, const AlgContext &ctx)
    {
        return std::fabs(old_value - new_value) > ctx.epsilon;
    }

    /**
     * INC batch hook: build the shared 1/outDegree array into
     * caller-owned @p scratch and point the context at it, so every
     * recompute in this phase multiplies instead of dividing. The
     * engine calls this once per batch after resizing values.
     */
    template <typename Graph>
    static void
    prepareIncPhase(const Graph &g, ThreadPool &pool, AlgContext &ctx,
                    std::vector<double> &scratch)
    {
        pr_detail::buildInvOutDegree(g, pool, scratch);
        ctx.prInvOutDegree = scratch.data();
    }

    /** Resolve Auto to a concrete variant from the graph shape. */
    static PrVariant
    pickVariant(NodeId n, std::uint64_t edges, const AlgContext &ctx)
    {
        if (ctx.prVariant != PrVariant::Auto)
            return ctx.prVariant;
        // Rank array cache-resident: random pulls mostly hit, binning
        // overhead can't pay for itself.
        if (static_cast<std::uint64_t>(n) * sizeof(Value) <=
            ctx.prResidentBytes)
            return PrVariant::Pull;
        const double avg = n > 0 ? static_cast<double>(edges) / n : 0.0;
        return avg >= ctx.prHybridAvgDegree ? PrVariant::Hybrid
                                            : PrVariant::Blocked;
    }

    /**
     * From-scratch compute. All variants share the same math per
     * iteration and the same L1-delta convergence test, so they agree
     * within floating-point reassociation noise (prTolerance-scale;
     * tests/test_pr_blocked.cc bit-compares against the pull oracle).
     */
    template <typename Graph>
    static void
    computeFs(const Graph &g, ThreadPool &pool, std::vector<Value> &values,
              const AlgContext &ctx)
    {
        const NodeId n = g.numNodes();
        if (n == 0) {
            values.clear();
            return;
        }
        values.assign(n, 1.0 / n);
        std::vector<Value> next(n, 0);
        std::vector<double> inv;
        std::vector<double> contrib;
        pr_detail::buildInvOutDegree(g, pool, inv);

        PaddedAccumulator<std::uint64_t> worker_edges(pool.size(), 0);
        parallelSlices(pool, 0, n, [&](std::size_t w, std::uint64_t lo,
                                       std::uint64_t hi) {
            std::uint64_t sum = 0;
            for (std::uint64_t i = lo; i < hi; ++i)
                sum += g.outDegree(static_cast<NodeId>(i));
            worker_edges[w] = sum;
        });
        const PrVariant variant =
            pickVariant(n, worker_edges.sum(), ctx);

        if (variant == PrVariant::Blocked ||
            variant == PrVariant::Hybrid) {
            pr_detail::runBlocked(g, pool, ctx, values, next, inv,
                                  contrib, variant == PrVariant::Hybrid);
            return;
        }

        // Pull: destination-major power iteration. The vertex range is
        // split by in-edge mass (degree prefix sum, built once — the
        // graph is static during compute), so hub-heavy slices don't
        // serialize an iteration; each vertex pulls its in-neighbors as
        // contiguous runs via the store block hooks, reading the
        // barrier-published contrib[] (no per-edge division, no
        // atomics).
        const double base = (1.0 - ctx.damping) / n;
        PaddedAccumulator<double> worker_delta(pool.size(), 0.0);

        EdgeBalancedRanges ranges;
        ranges.build(pool, n, [&](std::uint64_t v) {
            return g.inDegree(static_cast<NodeId>(v));
        });

        for (std::uint32_t iter = 0; iter < ctx.prMaxIters; ++iter) {
            SAGA_PHASE(telemetry::Phase::ComputeRound);
            SAGA_COUNT(telemetry::Counter::ComputeRounds, 1);
            SAGA_COUNT(telemetry::Counter::ComputeFrontierVertices, n);
            SAGA_COUNT(telemetry::Counter::PrPullRounds, 1);
            pr_detail::buildContrib(pool, values, inv, contrib);
            worker_delta.fill(0.0);
            ranges.forSlices(pool, [&](std::size_t w, std::uint64_t lo,
                                       std::uint64_t hi) {
                double delta = 0;
                for (std::uint64_t i = lo; i < hi; ++i) {
                    const NodeId v = static_cast<NodeId>(i);
                    double sum = 0;
                    g.inNeighBlock(v, [&](const Neighbor *run,
                                          std::uint32_t len) {
                        perf::ops(len);
                        for (std::uint32_t j = 0; j < len; ++j) {
                            perf::touch(&contrib[run[j].node],
                                        sizeof(double));
                            sum += contrib[run[j].node];
                        }
                        return true;
                    });
                    next[v] = base + ctx.damping * sum;
                    perf::touchWrite(&next[v], sizeof(Value));
                    delta += std::fabs(next[v] - values[v]);
                }
                worker_delta[w] = delta;
            });
            values.swap(next);
            if (worker_delta.sum() < ctx.prTolerance)
                break;
        }
    }
};

} // namespace saga

#endif // SAGA_ALGO_PR_H_
