/**
 * @file
 * PR — PageRank.
 *
 * Table I vertex function (with the out-degree normalization noted in
 * Section V-B):
 *   v.rank <- (1-d)/|V| + d * sum over in-edges e of
 *             e.source.rank / outDegree(e.source)
 *
 * FS implementation: GAP-style pull power iteration until the L1 rank
 * change falls below prTolerance (or prMaxIters passes).
 */

#ifndef SAGA_ALGO_PR_H_
#define SAGA_ALGO_PR_H_

#include <cmath>
#include <vector>

#include "algo/context.h"
#include "perfmodel/trace.h"
#include "platform/atomic_ops.h"
#include "platform/edge_ranges.h"
#include "platform/parallel_for.h"
#include "platform/thread_pool.h"
#include "saga/types.h"
#include "telemetry/telemetry.h"

namespace saga {

struct Pr
{
    using Value = double;

    static constexpr const char *kName = "pr";
    static constexpr bool kUsesBothDirections = false;

    static Value
    init(NodeId, const AlgContext &ctx)
    {
        return ctx.numNodesHint > 0 ? 1.0 / ctx.numNodesHint : 1.0;
    }

    template <typename Graph>
    static Value
    recompute(const Graph &g, NodeId v, const std::vector<Value> &values,
              const AlgContext &ctx)
    {
        const double base = (1.0 - ctx.damping) / g.numNodes();
        double sum = 0;
        g.inNeigh(v, [&](const Neighbor &nbr) {
            perf::ops(1);
            perf::touch(&values[nbr.node], sizeof(Value));
            const std::uint32_t out_degree = g.outDegree(nbr.node);
            // INC runs recompute concurrently with neighbor updates.
            if (out_degree > 0)
                sum += atomicLoad(values[nbr.node]) / out_degree;
        });
        return base + ctx.damping * sum;
    }

    /** INC trigger: Algorithm 1's |old - new| > epsilon. */
    static bool
    trigger(Value old_value, Value new_value, const AlgContext &ctx)
    {
        return std::fabs(old_value - new_value) > ctx.epsilon;
    }

    /**
     * From-scratch compute: pull power iteration. The vertex range is
     * split by in-edge mass (degree prefix sum, built once — the graph
     * is static during compute), so hub-heavy slices no longer
     * serialize an iteration, and each vertex pulls its in-neighbors as
     * contiguous runs via the store block hooks.
     */
    template <typename Graph>
    static void
    computeFs(const Graph &g, ThreadPool &pool, std::vector<Value> &values,
              const AlgContext &ctx)
    {
        const NodeId n = g.numNodes();
        if (n == 0) {
            values.clear();
            return;
        }
        values.assign(n, 1.0 / n);
        std::vector<Value> next(n, 0);
        std::vector<double> worker_delta(pool.size(), 0);
        const double base = (1.0 - ctx.damping) / n;

        EdgeBalancedRanges ranges;
        ranges.build(pool, n, [&](std::uint64_t v) {
            return g.inDegree(static_cast<NodeId>(v));
        });

        for (std::uint32_t iter = 0; iter < ctx.prMaxIters; ++iter) {
            SAGA_PHASE(telemetry::Phase::ComputeRound);
            SAGA_COUNT(telemetry::Counter::ComputeRounds, 1);
            SAGA_COUNT(telemetry::Counter::ComputeFrontierVertices, n);
            ranges.forSlices(pool, [&](std::size_t w, std::uint64_t lo,
                                       std::uint64_t hi) {
                double delta = 0;
                for (std::uint64_t i = lo; i < hi; ++i) {
                    const NodeId v = static_cast<NodeId>(i);
                    double sum = 0;
                    g.inNeighBlock(v, [&](const Neighbor *run,
                                          std::uint32_t len) {
                        perf::ops(len);
                        for (std::uint32_t j = 0; j < len; ++j) {
                            const std::uint32_t out_degree =
                                g.outDegree(run[j].node);
                            if (out_degree > 0)
                                sum += atomicLoad(values[run[j].node]) /
                                       out_degree;
                        }
                        return true;
                    });
                    next[v] = base + ctx.damping * sum;
                    perf::touchWrite(&next[v], sizeof(Value));
                    delta += std::fabs(next[v] - values[v]);
                }
                worker_delta[w] = delta;
            });
            values.swap(next);
            double total_delta = 0;
            for (double d : worker_delta)
                total_delta += d;
            if (total_delta < ctx.prTolerance)
                break;
        }
    }
};

} // namespace saga

#endif // SAGA_ALGO_PR_H_
