/**
 * @file
 * INC — the incremental compute engine (paper Algorithm 1).
 *
 * Implements both incremental techniques the paper integrates:
 *
 *  - *processing amortization*: computation starts from the vertex values
 *    produced by the previous batch (the caller-owned `values` array is
 *    carried across batches; only newly streamed vertices get init values);
 *  - *selective triggering*: only vertices affected by the latest update
 *    are recomputed; changes larger than the trigger threshold propagate
 *    iteration-by-iteration to neighbors via a CAS-guarded visited
 *    bitvector, until no vertex triggers.
 *
 * Concurrency contract: the values array and visited marks are plain
 * storage shared across workers within a phase; every cross-thread access
 * goes through the platform/atomic_ops.h helpers (atomicLoad/atomicStore/
 * atomicClaim) — never raw loads or std::atomic_ref. saga_lint's
 * kernel-atomics rule enforces this for all of src/algo/ and the pool
 * barrier publishes each phase's results to the next.
 */

#ifndef SAGA_ALGO_INC_ENGINE_H_
#define SAGA_ALGO_INC_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "platform/atomic_ops.h"
#include "algo/context.h"
#include "algo/frontier.h"
#include "perfmodel/trace.h"
#include "platform/edge_ranges.h"
#include "platform/padded.h"
#include "platform/parallel_for.h"
#include "platform/thread_pool.h"
#include "saga/batch_scratch.h"
#include "saga/edge_batch.h"
#include "saga/types.h"
#include "telemetry/telemetry.h"

namespace saga {

/**
 * Collect the unique vertices directly affected by @p batch (both
 * endpoints of every ingested edge). Serial, allocates O(num_nodes)
 * per call; kept for tests and one-shot callers. Streaming runners use
 * the BatchScratch overload below.
 */
inline std::vector<NodeId>
affectedVertices(const EdgeBatch &batch, NodeId num_nodes)
{
    std::vector<std::uint8_t> seen(num_nodes, 0);
    std::vector<NodeId> affected;
    affected.reserve(batch.size());
    const auto mark = [&](NodeId v) {
        if (v < num_nodes && !seen[v]) {
            seen[v] = 1;
            affected.push_back(v);
        }
    };
    for (std::size_t i = 0; i < batch.size(); ++i) {
        mark(batch[i].src);
        mark(batch[i].dst);
    }
    SAGA_COUNT(telemetry::Counter::ComputeAffectedVertices,
               affected.size());
    return affected;
}

/**
 * affectedVertices with reusable scratch and a parallel marking path:
 * no O(num_nodes) allocation per batch (the scratch's epoch-stamped
 * array persists across batches), and the batch endpoints are claimed
 * via per-worker slices + CAS, concatenated like a frontier. The result
 * is the same *set* as the serial overload; the order of vertices may
 * differ, which the INC engine (a parallel sweep) does not observe.
 */
inline std::vector<NodeId>
affectedVertices(const EdgeBatch &batch, NodeId num_nodes,
                 BatchScratch &scratch, ThreadPool &pool)
{
    scratch.beginBatch(num_nodes);
    PaddedAccumulator<std::vector<NodeId>> local(pool.size());
    parallelSlices(pool, 0, batch.size(),
                   [&](std::size_t w, std::uint64_t lo, std::uint64_t hi) {
        std::vector<NodeId> &out = local[w];
        const auto mark = [&](NodeId v) {
            if (v < num_nodes && scratch.claim(v))
                out.push_back(v);
        };
        for (std::uint64_t i = lo; i < hi; ++i) {
            mark(batch[i].src);
            mark(batch[i].dst);
        }
    });

    std::size_t total = 0;
    for (std::size_t w = 0; w < local.size(); ++w)
        total += local[w].size();
    std::vector<NodeId> affected;
    affected.reserve(total);
    for (std::size_t w = 0; w < local.size(); ++w)
        affected.insert(affected.end(), local[w].begin(), local[w].end());
    SAGA_COUNT(telemetry::Counter::ComputeAffectedVertices,
               affected.size());
    return affected;
}

/**
 * One incremental compute phase (Algorithm 1).
 *
 * @param g         graph as of the latest update phase.
 * @param pool      worker pool.
 * @param values    vertex values from the previous batch; resized and
 *                  updated in place.
 * @param affected  vertices directly affected by the latest update.
 * @param ctx       algorithm parameters (epsilon etc.).
 */
template <typename Alg, typename Graph>
void
incCompute(const Graph &g, ThreadPool &pool,
           std::vector<typename Alg::Value> &values,
           const std::vector<NodeId> &affected, AlgContext ctx)
{
    const NodeId n = g.numNodes();
    ctx.numNodesHint = n;

    // Lines 2-4: initialize newly streamed vertices.
    const NodeId old_n = static_cast<NodeId>(values.size());
    values.resize(n);
    for (NodeId v = old_n; v < n; ++v) {
        values[v] = Alg::init(v, ctx);
        perf::touchWrite(&values[v], sizeof(values[v]));
    }

    // Algorithms may hoist per-batch invariants (e.g. PageRank's
    // 1/outDegree array) into scratch the whole phase shares; degrees
    // are static between here and the end of the phase.
    std::vector<double> prep_scratch;
    if constexpr (requires {
                      Alg::prepareIncPhase(g, pool, ctx, prep_scratch);
                  }) {
        Alg::prepareIncPhase(g, pool, ctx, prep_scratch);
    }

    // Per-round visited marks, cleared by bumping `epoch` instead of the
    // O(n) std::fill of the whole bitvector (line 20 of Algorithm 1):
    // visited[v] == epoch means "claimed this round". The byte-sized
    // counter wraps every 255 rounds, at which point one real fill keeps
    // stale marks from aliasing the fresh epoch.
    std::vector<std::uint8_t> visited(n, 0);
    std::uint8_t epoch = 0;
    const auto nextRound = [&] {
        if (++epoch == 0) {
            std::fill(visited.begin(), visited.end(), 0);
            epoch = 1;
        }
    };
    nextRound();

    // Recompute one vertex; on a triggering change, claim-and-enqueue its
    // unvisited neighbors (lines 9-15). The values array is concurrently
    // read by neighbor recomputes on other workers, so both the
    // read-modify-write here and the reads inside Alg::recompute go
    // through the atomic helpers.
    const auto processVertex = [&](NodeId v, auto &push) {
        perf::ops(1);
        perf::touch(&values[v], sizeof(values[v]));
        const typename Alg::Value old_value = atomicLoad(values[v]);
        const typename Alg::Value new_value =
            Alg::recompute(g, v, values, ctx);
        if (!Alg::trigger(old_value, new_value, ctx))
            return;
        atomicStore(values[v], new_value);
        perf::touchWrite(&values[v], sizeof(values[v]));
        const auto enqueue = [&](const Neighbor &nbr) {
            perf::touch(&visited[nbr.node], 1);
            const std::uint8_t seen = atomicLoad(visited[nbr.node]);
            if (seen != epoch &&
                atomicClaim<std::uint8_t>(visited[nbr.node], seen, epoch)) {
                push(nbr.node);
            }
        };
        g.outNeigh(v, enqueue);
        if (Alg::kUsesBothDirections)
            g.inNeigh(v, enqueue);
    };

    // Edge-balanced rounds: processVertex pulls v's in-edges (recompute)
    // and scans the push directions on a trigger, so a vertex's work is
    // proportional to its total degree — split slices by that, not by
    // vertex count, or one affected hub serializes every round.
    EdgeBalancedRanges ranges;
    const auto degreeOf = [&](NodeId v) {
        return static_cast<std::uint64_t>(g.inDegree(v)) + g.outDegree(v);
    };

    // Lines 6-15: parallel sweep over the affected vertices.
    std::vector<NodeId> frontier = expandFrontierBalanced(
        pool, affected, ranges, degreeOf, processVertex);

    // Lines 17-25: propagate until no vertex triggers.
    while (!frontier.empty()) {
        nextRound(); // line 20, O(frontier) instead of O(n)
        frontier = expandFrontierBalanced(pool, frontier, ranges,
                                          degreeOf, processVertex);
    }
}

} // namespace saga

#endif // SAGA_ALGO_INC_ENGINE_H_
