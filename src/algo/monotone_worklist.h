/**
 * @file
 * Shared monotone-worklist core for the single-source path algorithms.
 *
 * SSSP (delta-stepping, atomic min) and SSWP (widest path, atomic max)
 * are the same engine with a different relaxation operator: buckets of
 * priority-binned vertices, parallel bucket expansion with round-stamped
 * claim dedup, and re-binning of relaxed vertices. This header is that
 * engine once, so the two kernels cannot drift apart.
 *
 * Policy concept:
 *   using Value;
 *   static Value unreached();              // initial value
 *   static Value sourceValue();            // value of ctx.source
 *   static Value relax(Value src, Weight w);        // candidate for dst
 *   static bool improve(Value &slot, Value cand);   // atomic min/max RMW
 *   static std::size_t bucketOf(Value v, double delta); // priority bin
 *
 * A policy whose bucketOf is constant degenerates into a plain worklist
 * (SSWP: width order does not affect the monotone fixpoint); SSSP bins
 * by distance/delta for the classic delta-stepping work ordering.
 */

#ifndef SAGA_ALGO_MONOTONE_WORKLIST_H_
#define SAGA_ALGO_MONOTONE_WORKLIST_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "platform/atomic_ops.h"
#include "algo/context.h"
#include "algo/frontier.h"
#include "perfmodel/trace.h"
#include "platform/edge_ranges.h"
#include "platform/thread_pool.h"
#include "saga/types.h"

namespace saga {

/** Bucketed monotone relaxation from ctx.source (see file comment). */
template <typename Policy, typename Graph>
void
monotoneWorklistCompute(const Graph &g, ThreadPool &pool,
                        std::vector<typename Policy::Value> &values,
                        const AlgContext &ctx)
{
    using Value = typename Policy::Value;

    const NodeId n = g.numNodes();
    values.assign(n, Policy::unreached());
    if (ctx.source >= n)
        return;
    values[ctx.source] = Policy::sourceValue();

    const double delta = ctx.delta > 0 ? ctx.delta : 1.0;
    std::vector<std::vector<NodeId>> buckets;
    const auto place = [&](NodeId v, Value value) {
        const std::size_t b = Policy::bucketOf(value, delta);
        if (b >= buckets.size())
            buckets.resize(b + 1);
        buckets[b].push_back(v);
    };
    place(ctx.source, values[ctx.source]);

    // Round-stamped membership marks: several workers can improve the
    // same vertex in one round, but only the worker whose claim CAS
    // succeeds pushes it, so each vertex enters a bucket round at most
    // once (instead of once per successful relaxation).
    std::vector<std::uint32_t> enqueued(n, 0);
    std::uint32_t round = 0;
    EdgeBalancedRanges ranges;

    for (std::size_t b = 0; b < buckets.size(); ++b) {
        // A vertex may be re-binned several times; process until this
        // bucket stays empty (re-insertions into bucket b happen when
        // an improved same-bucket value is found).
        while (!buckets[b].empty()) {
            std::vector<NodeId> frontier = std::move(buckets[b]);
            buckets[b].clear();
            ++round;

            std::vector<NodeId> relaxed = expandFrontierBalanced(
                pool, frontier, ranges,
                [&](NodeId v) { return g.outDegree(v); },
                [&](NodeId v, auto &push) {
                // Concurrent improve() RMWs target this slot, so the
                // read must be atomic too.
                const Value value = atomicLoad(values[v]);
                // Skip stale entries (v was re-binned with a better
                // value already processed).
                if (Policy::bucketOf(value, delta) != b)
                    return;
                g.outNeigh(v, [&](const Neighbor &nbr) {
                    perf::ops(1);
                    const Value cand = Policy::relax(value, nbr.weight);
                    perf::touch(&values[nbr.node], sizeof(Value));
                    if (Policy::improve(values[nbr.node], cand)) {
                        perf::touchWrite(&values[nbr.node],
                                         sizeof(Value));
                        const std::uint32_t seen =
                            atomicLoad(enqueued[nbr.node]);
                        if (seen != round &&
                            atomicClaim(enqueued[nbr.node], seen,
                                        round)) {
                            push(nbr.node);
                        }
                    }
                });
            });

            for (NodeId v : relaxed)
                place(v, values[v]);
        }
    }
}

} // namespace saga

#endif // SAGA_ALGO_MONOTONE_WORKLIST_H_
