/**
 * @file
 * Shared algorithm-execution context.
 */

#ifndef SAGA_ALGO_CONTEXT_H_
#define SAGA_ALGO_CONTEXT_H_

#include <cstdint>

#include "saga/types.h"

namespace saga {

/** Parameters shared by the FS and INC engines. */
struct AlgContext
{
    /** Root vertex for BFS / SSSP / SSWP. */
    NodeId source = 0;

    /**
     * Current vertex count, refreshed by the engines before init() calls
     * (PageRank initializes new vertices to 1/|V|, Algorithm 1 line 4).
     */
    NodeId numNodesHint = 0;

    /** INC triggering threshold epsilon (paper Algorithm 1: 1e-7). */
    double epsilon = 1e-7;

    /** PageRank damping factor (Table I: 0.85). */
    double damping = 0.85;

    /** PageRank FS convergence tolerance (GAP default). */
    double prTolerance = 1e-4;

    /** PageRank FS maximum iterations (GAP's default). */
    std::uint32_t prMaxIters = 20;

    /** Delta-stepping bucket width for SSSP FS. */
    double delta = 8.0;
};

} // namespace saga

#endif // SAGA_ALGO_CONTEXT_H_
