/**
 * @file
 * Shared algorithm-execution context.
 */

#ifndef SAGA_ALGO_CONTEXT_H_
#define SAGA_ALGO_CONTEXT_H_

#include <cstdint>

#include "saga/types.h"

namespace saga {

/**
 * Traversal-direction policy for the direction-optimizing kernels (BFS,
 * CC). Auto applies Beamer's α/β heuristic; the forced modes pin one
 * code path (tests run both under TSan, benches use them to measure the
 * crossover).
 */
enum class Direction : std::uint8_t {
    Auto,      ///< α/β heuristic picks push or pull per round
    ForcePush, ///< always sparse top-down
    ForcePull, ///< always dense bottom-up
};

/** Parameters shared by the FS and INC engines. */
struct AlgContext
{
    /** Root vertex for BFS / SSSP / SSWP. */
    NodeId source = 0;

    /**
     * Current vertex count, refreshed by the engines before init() calls
     * (PageRank initializes new vertices to 1/|V|, Algorithm 1 line 4).
     */
    NodeId numNodesHint = 0;

    /** INC triggering threshold epsilon (paper Algorithm 1: 1e-7). */
    double epsilon = 1e-7;

    /** PageRank damping factor (Table I: 0.85). */
    double damping = 0.85;

    /** PageRank FS convergence tolerance (GAP default). */
    double prTolerance = 1e-4;

    /** PageRank FS maximum iterations (GAP's default). */
    std::uint32_t prMaxIters = 20;

    /** Delta-stepping bucket width for SSSP FS. */
    double delta = 8.0;

    /** Push/pull policy for the direction-optimizing kernels. */
    Direction direction = Direction::Auto;

    /**
     * Beamer α: switch push → pull when the frontier's out-degree sum
     * exceeds (unexplored edges) / α (GAP default 15).
     */
    double doAlpha = 15.0;

    /**
     * Beamer β: switch pull → push when the frontier shrinks below
     * |V| / β vertices (GAP default 18).
     */
    double doBeta = 18.0;
};

} // namespace saga

#endif // SAGA_ALGO_CONTEXT_H_
