/**
 * @file
 * Shared algorithm-execution context.
 */

#ifndef SAGA_ALGO_CONTEXT_H_
#define SAGA_ALGO_CONTEXT_H_

#include <cstdint>

#include "saga/types.h"

namespace saga {

/**
 * Traversal-direction policy for the direction-optimizing kernels (BFS,
 * CC). Auto applies Beamer's α/β heuristic; the forced modes pin one
 * code path (tests run both under TSan, benches use them to measure the
 * crossover).
 */
enum class Direction : std::uint8_t {
    Auto,      ///< α/β heuristic picks push or pull per round
    ForcePush, ///< always sparse top-down
    ForcePull, ///< always dense bottom-up
};

/**
 * PageRank FS execution strategy (mirrors Direction for the
 * locality-aware PR paths). Auto picks per graph shape: plain pull when
 * the rank array is cache-resident, the hub-split hybrid on dense
 * graphs, propagation-blocked push otherwise. The pinned modes are for
 * tests and the bench_compute ablation.
 */
enum class PrVariant : std::uint8_t {
    Auto,    ///< heuristic on |V| and average degree
    Pull,    ///< contrib-hoisted pull power iteration
    Blocked, ///< propagation-blocked push (destination-range bins)
    Hybrid,  ///< hub rows pulled contiguously, tail via blocked push
};

/** Parameters shared by the FS and INC engines. */
struct AlgContext
{
    /** Root vertex for BFS / SSSP / SSWP. */
    NodeId source = 0;

    /**
     * Current vertex count, refreshed by the engines before init() calls
     * (PageRank initializes new vertices to 1/|V|, Algorithm 1 line 4).
     */
    NodeId numNodesHint = 0;

    /** INC triggering threshold epsilon (paper Algorithm 1: 1e-7). */
    double epsilon = 1e-7;

    /** PageRank damping factor (Table I: 0.85). */
    double damping = 0.85;

    /** PageRank FS convergence tolerance (GAP default). */
    double prTolerance = 1e-4;

    /** PageRank FS maximum iterations (GAP's default). */
    std::uint32_t prMaxIters = 20;

    /** Delta-stepping bucket width for SSSP FS. */
    double delta = 8.0;

    /** Push/pull policy for the direction-optimizing kernels. */
    Direction direction = Direction::Auto;

    /**
     * Beamer α: switch push → pull when the frontier's out-degree sum
     * exceeds (unexplored edges) / α (GAP default 15).
     */
    double doAlpha = 15.0;

    /**
     * Beamer β: switch pull → push when the frontier shrinks below
     * |V| / β vertices (GAP default 18).
     */
    double doBeta = 18.0;

    /** PageRank FS variant policy (see PrVariant). */
    PrVariant prVariant = PrVariant::Auto;

    /**
     * Target bytes of rank-accumulator range per destination bin on the
     * blocked PR path. One bin's slice of the accumulator should fit the
     * L1; 32 KiB of doubles = 4096 vertices per bin. Rounded to a
     * power-of-two vertex width so binning is a shift.
     */
    std::uint32_t prBinBytes = 32u * 1024u;

    /**
     * Hybrid hub threshold factor: vertices with in-degree >
     * prHubFactor × average in-degree are pulled contiguously instead of
     * receiving binned pushes.
     */
    double prHubFactor = 8.0;

    /**
     * Auto-heuristic crossover: with |V| × 8 bytes at or below this, the
     * rank array is effectively cache-resident and plain pull wins over
     * the binning overhead (~LLC of the reference Xeon Gold 6142).
     */
    std::uint64_t prResidentBytes = 4ull * 1024 * 1024;

    /**
     * Auto-heuristic dense crossover: average in-degree at or above this
     * favors the hub-split hybrid over pure blocked push.
     */
    double prHybridAvgDegree = 16.0;

    /**
     * Shared contribution source for the INC path: when non-null, points
     * at an array of 1/outDegree(v) (0 for dangling vertices) valid for
     * the duration of the compute phase. Set by the INC engine via
     * Pr::prepareIncPhase so Pr::recompute skips the per-edge degree
     * lookup + division. Never set by callers directly.
     */
    const double *prInvOutDegree = nullptr;
};

} // namespace saga

#endif // SAGA_ALGO_CONTEXT_H_
