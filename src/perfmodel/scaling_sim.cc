#include "perfmodel/scaling_sim.h"

#include <algorithm>
#include <unordered_map>

namespace saga {
namespace perf {

ScheduleResult
scheduleTasks(const std::vector<SimTask> &tasks, int cores,
              double wait_penalty)
{
    ScheduleResult result;
    if (cores < 1)
        cores = 1;

    std::vector<double> core_free(cores, 0.0);
    std::unordered_map<std::int64_t, double> lock_free;

    for (const SimTask &task : tasks) {
        int core;
        if (task.affinity >= 0) {
            core = static_cast<int>(task.affinity % cores);
        } else {
            core = 0;
            for (int c = 1; c < cores; ++c) {
                if (core_free[c] < core_free[core])
                    core = c;
            }
        }

        const double start = core_free[core];
        double end = start + task.parCost;
        if (task.serCost > 0 && task.lockId >= 0) {
            double &lock_time = lock_free[task.lockId];
            double ser_cost = task.serCost;
            if (lock_time > end) {
                // The lock is busy when this task arrives: spin-waiting
                // inflates the critical section (cache-line ping-pong).
                ser_cost += wait_penalty;
            }
            const double ser_start = std::max(end, lock_time);
            end = ser_start + ser_cost;
            lock_time = end;
            result.busyTime += ser_cost - task.serCost;
        } else {
            end += task.serCost;
        }
        core_free[core] = end;
        result.busyTime += task.parCost + task.serCost;
        result.makespan = std::max(result.makespan, end);
    }

    if (result.makespan > 0)
        result.utilization = result.busyTime / (result.makespan * cores);
    return result;
}

double
scheduleIterations(const std::vector<std::vector<SimTask>> &iterations,
                   int cores, double barrier_cost)
{
    double total = 0;
    for (const auto &tasks : iterations)
        total += scheduleTasks(tasks, cores).makespan + barrier_cost;
    return total;
}

} // namespace perf
} // namespace saga
