#include "perfmodel/bandwidth_model.h"

#include <algorithm>
#include <initializer_list>

namespace saga {
namespace perf {

PhaseUtilization
modelPhase(const MachineModel &machine, double cpu_units,
           std::uint64_t dram_bytes)
{
    PhaseUtilization result;

    // Core-limited time: abstract units retired at unitsPerCycle per core
    // cycle. The scaling-simulator makespan already accounts for how many
    // cores the phase can actually keep busy.
    const double cycles = cpu_units / machine.unitsPerCycle;
    const double cpu_seconds = cycles / (machine.coreGHz * 1e9);

    // Bandwidth roofs: DRAM and the inter-socket link (remote traffic).
    const double peak_mem =
        machine.memBandwidthPerSocketGBs * machine.sockets * 1e9;
    const double mem_seconds = double(dram_bytes) / peak_mem;
    const double qpi_seconds = double(dram_bytes) * machine.remoteFraction /
                               (machine.qpiBandwidthGBs * 1e9);

    result.seconds = std::max({cpu_seconds, mem_seconds, qpi_seconds});
    result.memoryBound = result.seconds > cpu_seconds;
    if (result.seconds > 0) {
        result.memGBs = double(dram_bytes) / result.seconds / 1e9;
        const double qpi_bytes = double(dram_bytes) * machine.remoteFraction;
        result.qpiPercent = 100.0 * qpi_bytes / result.seconds /
                            (machine.qpiBandwidthGBs * 1e9);
    }
    return result;
}

} // namespace perf
} // namespace saga
