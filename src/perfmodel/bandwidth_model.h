/**
 * @file
 * Memory / inter-socket bandwidth model for the paper's platform.
 *
 * Converts a phase's simulated execution time (from the core-scaling
 * simulator) and DRAM traffic (from the cache simulator) into the
 * utilization numbers Fig. 9(b) and 9(c) report: achieved memory bandwidth
 * in GB/s and QPI utilization as a percentage of the available
 * inter-socket bandwidth.
 */

#ifndef SAGA_PERFMODEL_BANDWIDTH_MODEL_H_
#define SAGA_PERFMODEL_BANDWIDTH_MODEL_H_

#include <cstdint>

namespace saga {
namespace perf {

/** The paper's dual-socket Xeon Gold 6142 (Section IV-A). */
struct MachineModel
{
    int sockets = 2;
    int coresPerSocket = 16;
    /** Sustained core frequency in GHz (Turbo Boost off). */
    double coreGHz = 2.6;
    /** Abstract work units retired per core cycle. */
    double unitsPerCycle = 1.0;
    /** Peak DRAM bandwidth per socket (GB/s). */
    double memBandwidthPerSocketGBs = 128.0;
    /** Total QPI bandwidth, each direction (GB/s). */
    double qpiBandwidthGBs = 68.1;
    /**
     * Fraction of DRAM traffic to the remote socket (memory pages
     * interleaved across two sockets -> about half).
     */
    double remoteFraction = 0.5;

    int totalCores() const { return sockets * coresPerSocket; }
};

/** Utilization estimate for one phase. */
struct PhaseUtilization
{
    double seconds = 0;      // modeled phase duration
    double memGBs = 0;       // achieved DRAM bandwidth
    double qpiPercent = 0;   // % of available QPI bandwidth
    bool memoryBound = false; // true if the bandwidth roof set the time
};

/**
 * Model one phase.
 *
 * @param machine     platform description.
 * @param cpu_units   core-limited execution time in abstract work units
 *                    (a scaling-simulator makespan).
 * @param dram_bytes  bytes exchanged with DRAM (cache-simulator output).
 */
PhaseUtilization modelPhase(const MachineModel &machine, double cpu_units,
                            std::uint64_t dram_bytes);

} // namespace perf
} // namespace saga

#endif // SAGA_PERFMODEL_BANDWIDTH_MODEL_H_
