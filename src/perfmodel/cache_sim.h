/**
 * @file
 * Trace-driven multi-level cache-hierarchy simulator.
 *
 * Substitutes for the Intel PCM measurements in the paper (Section VI-C):
 * the instrumented workloads (see trace.h) stream their memory touches
 * through a set-associative LRU L1/L2/LLC model, which produces per-level
 * hit ratios, MPKI, and DRAM traffic. Geometry defaults to the paper's
 * Xeon Gold 6142 (32KB L1d, 1MB L2, 22MB shared LLC).
 */

#ifndef SAGA_PERFMODEL_CACHE_SIM_H_
#define SAGA_PERFMODEL_CACHE_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "perfmodel/trace.h"

namespace saga {
namespace perf {

/** Geometry of one cache level. */
struct CacheLevelConfig
{
    std::string name;
    std::uint64_t sizeBytes = 0;
    std::uint32_t ways = 8;
};

/** Geometry of the full hierarchy. */
struct CacheHierarchyConfig
{
    std::uint32_t lineSize = 64;
    std::vector<CacheLevelConfig> levels;

    /** The paper's platform: 32KB L1d / 1MB L2 / 22MB LLC. */
    static CacheHierarchyConfig xeonGold6142();

    /** A small hierarchy for fast unit tests. */
    static CacheHierarchyConfig tiny();
};

/** Hit/miss counters for one level. */
struct CacheLevelStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    std::uint64_t accesses() const { return hits + misses; }
    double
    hitRatio() const
    {
        const std::uint64_t n = accesses();
        return n ? double(hits) / double(n) : 0.0;
    }
};

/**
 * The simulator. Install it as the thread's AccessSink (single-threaded:
 * characterization harnesses run with one worker).
 */
class CacheSim : public AccessSink
{
  public:
    explicit CacheSim(
        CacheHierarchyConfig config = CacheHierarchyConfig::xeonGold6142());

    // AccessSink
    void access(const void *addr, std::uint32_t bytes, bool write) override;
    void op(std::uint64_t n) override;

    std::size_t numLevels() const { return levels_.size(); }
    const CacheLevelStats &levelStats(std::size_t i) const
    {
        return stats_[i];
    }
    const std::string &levelName(std::size_t i) const
    {
        return config_.levels[i].name;
    }

    /** Simulated instructions = explicit ops + one per memory access. */
    std::uint64_t instructions() const { return ops_ + accesses_; }
    std::uint64_t memoryAccesses() const { return accesses_; }

    /** Bytes moved to/from DRAM (LLC fills + dirty writebacks). */
    std::uint64_t dramBytes() const { return dram_bytes_; }

    /** Misses per kilo-instruction at level @p i. */
    double
    mpki(std::size_t i) const
    {
        const std::uint64_t instr = instructions();
        return instr ? 1000.0 * double(stats_[i].misses) / double(instr)
                     : 0.0;
    }

    /** Zero all statistics (cache contents persist). */
    void resetStats();

    /** Drop cache contents and statistics. */
    void flush();

  private:
    struct Line
    {
        std::uint64_t tag = ~std::uint64_t{0};
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    struct Level
    {
        std::uint32_t ways = 0;
        std::uint64_t numSets = 0;
        std::vector<Line> lines; // numSets * ways

        Line *set(std::uint64_t index) { return &lines[index * ways]; }
    };

    /** Access one line address at level @p i; recurses on miss. */
    void touchLine(std::size_t i, std::uint64_t line_addr, bool write);

    CacheHierarchyConfig config_;
    std::vector<Level> levels_;
    std::vector<CacheLevelStats> stats_;
    std::uint64_t ops_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t dram_bytes_ = 0;
    std::uint64_t clock_ = 0;
};

} // namespace perf
} // namespace saga

#endif // SAGA_PERFMODEL_CACHE_SIM_H_
