/**
 * @file
 * Builders that turn a streamed workload's *structure* into SimTask lists
 * for the core-scaling simulator (scaling_sim.h).
 *
 * The update model replays a batch against running degree counters and
 * emits one task per per-store edge insert, with the cost/locking shape of
 * the chosen data structure:
 *
 *  - AS: whole scan serialized under the source-vertex lock;
 *  - Stinger: search parallel, block-header walk serialized;
 *  - AC: scan lock-free but pinned to the source's chunk;
 *  - DAH: constant-ish hash work plus meta-ops, pinned to the chunk.
 *
 * The compute model emits one lock-free task per vertex with cost
 * proportional to its degree (one pull iteration), run for a configurable
 * number of iterations with barriers.
 */

#ifndef SAGA_PERFMODEL_WORKLOAD_MODEL_H_
#define SAGA_PERFMODEL_WORKLOAD_MODEL_H_

#include <cstdint>
#include <vector>

#include "perfmodel/scaling_sim.h"
#include "saga/driver.h"
#include "saga/edge_batch.h"

namespace saga {
namespace perf {

/** Abstract-cycle costs of the modeled micro-operations. */
struct CostParams
{
    double updateBase = 40;  // fixed per-insert overhead
    double scanEntry = 1;    // per adjacency entry scanned
    double blockHeader = 4;  // per Stinger block-header visit
    double hashWork = 60;    // DAH probe + insert + displacement
    double dahMeta = 60;     // DAH degree-query / table-location meta-ops
    double computeBase = 20; // fixed per-vertex compute overhead
    double computeEdge = 3;  // per edge pulled during compute
    double barrier = 3000;   // per compute iteration barrier
    double lockWaitPenalty = 400; // spin-wait convoy cost per blocked task
};

/** Streaming update-phase task builder for one data structure. */
class UpdatePhaseModel
{
  public:
    UpdatePhaseModel(DsKind ds, std::size_t chunks, bool directed,
                     CostParams params = {});

    /**
     * Tasks for ingesting @p batch (out-store inserts plus in-store
     * inserts for directed graphs / reverse orientation for undirected).
     * Advances the running degree counters.
     */
    std::vector<SimTask> batchTasks(const EdgeBatch &batch);

    const std::vector<std::uint32_t> &outDegrees() const { return out_deg_; }
    const std::vector<std::uint32_t> &inDegrees() const { return in_deg_; }

  private:
    /** One insert of (src -> ...) into a store where src has degree d. */
    SimTask makeTask(NodeId src, std::uint32_t degree,
                     std::int64_t lock_base) const;

    DsKind ds_;
    std::size_t chunks_;
    bool directed_;
    CostParams params_;
    std::uint32_t stinger_block_ = 16;
    std::vector<std::uint32_t> out_deg_;
    std::vector<std::uint32_t> in_deg_;
};

/**
 * One compute iteration: a lock-free task per vertex, cost proportional
 * to its in-degree (pull direction).
 */
std::vector<SimTask> computeIterationTasks(
    const std::vector<std::uint32_t> &in_degrees, const CostParams &params);

} // namespace perf
} // namespace saga

#endif // SAGA_PERFMODEL_WORKLOAD_MODEL_H_
