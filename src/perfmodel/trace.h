/**
 * @file
 * Memory-access tracing hooks — the substitute for hardware counters.
 *
 * The paper measures caches/bandwidth with Intel PCM on a Xeon server. This
 * environment has no PMU access, so data structures and compute engines are
 * instrumented at their semantically meaningful memory touches (edge reads
 * and writes, hash probes, property loads/stores). When a sink is installed
 * on the current thread, every touch is forwarded to it; the cache-hierarchy
 * simulator (cache_sim.h) is one such sink. When no sink is installed the
 * hook is one thread-local load and a predictable branch, cheap enough to
 * leave compiled into the timed paths.
 */

#ifndef SAGA_PERFMODEL_TRACE_H_
#define SAGA_PERFMODEL_TRACE_H_

#include <cstdint>

namespace saga {
namespace perf {

/** Consumer of a simulated memory-access stream. */
class AccessSink
{
  public:
    virtual ~AccessSink() = default;

    /** One memory access of @p bytes at @p addr; @p write for stores. */
    virtual void access(const void *addr, std::uint32_t bytes,
                        bool write) = 0;

    /**
     * Account @p n simulated non-memory instructions (used for MPKI
     * denominators). Engines call this once per unit of algorithmic work.
     */
    virtual void op(std::uint64_t n) = 0;
};

/** Per-thread current sink (null = tracing disabled). */
inline thread_local AccessSink *tls_sink = nullptr;

/** Record a read of @p bytes at @p addr if tracing is enabled. */
inline void
touch(const void *addr, std::uint32_t bytes)
{
    if (tls_sink)
        tls_sink->access(addr, bytes, false);
}

/** Record a write of @p bytes at @p addr if tracing is enabled. */
inline void
touchWrite(const void *addr, std::uint32_t bytes)
{
    if (tls_sink)
        tls_sink->access(addr, bytes, true);
}

/** Record @p n units of simulated instruction work. */
inline void
ops(std::uint64_t n = 1)
{
    if (tls_sink)
        tls_sink->op(n);
}

/** RAII installer for a thread's sink. */
class ScopedSink
{
  public:
    explicit ScopedSink(AccessSink *sink) : saved_(tls_sink)
    {
        tls_sink = sink;
    }
    ~ScopedSink() { tls_sink = saved_; }
    ScopedSink(const ScopedSink &) = delete;
    ScopedSink &operator=(const ScopedSink &) = delete;

  private:
    AccessSink *saved_;
};

/**
 * Trivial sink that counts accesses/bytes/ops — used in tests and as a
 * sanity denominator.
 */
class CountingSink : public AccessSink
{
  public:
    void access(const void *addr, std::uint32_t bytes, bool write) override;
    void op(std::uint64_t n) override;

    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytesTotal = 0;
    std::uint64_t opsTotal = 0;

    // Touched address range (for working-set sanity checks).
    std::uint64_t minAddr = ~std::uint64_t{0};
    std::uint64_t maxAddr = 0;
};

} // namespace perf
} // namespace saga

#endif // SAGA_PERFMODEL_TRACE_H_
