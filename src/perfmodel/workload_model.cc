#include "perfmodel/workload_model.h"

#include <algorithm>

#include "ds/hash_util.h"

namespace saga {
namespace perf {

UpdatePhaseModel::UpdatePhaseModel(DsKind ds, std::size_t chunks,
                                   bool directed, CostParams params)
    : ds_(ds), chunks_(chunks ? chunks : 1), directed_(directed),
      params_(params)
{}

SimTask
UpdatePhaseModel::makeTask(NodeId src, std::uint32_t degree,
                           std::int64_t lock_base) const
{
    SimTask task;
    switch (ds_) {
      case DsKind::AS:
        // Lock held for the full scan + append.
        task.serCost = params_.updateBase + params_.scanEntry * degree;
        task.lockId = lock_base + src;
        break;
      case DsKind::Stinger: {
        // Search pass parallel; block-header walk + append serialized.
        const double blocks = 1.0 + double(degree) / stinger_block_;
        task.parCost = params_.updateBase / 2 +
                       params_.scanEntry * degree +
                       params_.blockHeader * blocks;
        task.serCost = params_.updateBase / 2 +
                       params_.blockHeader * blocks;
        task.lockId = lock_base + src;
        break;
      }
      case DsKind::AC:
        // Lock-free scan, but bound to the source's chunk.
        task.parCost = params_.updateBase + params_.scanEntry * degree;
        task.affinity =
            static_cast<std::int64_t>(hashNode(src) % chunks_);
        break;
      case DsKind::DAH:
        // Hash insert with degree-aware meta-ops, bound to the chunk.
        task.parCost = params_.updateBase + params_.hashWork +
                       params_.dahMeta +
                       params_.scanEntry *
                           std::min<std::uint32_t>(degree, 64);
        task.affinity =
            static_cast<std::int64_t>(hashNode(src) % chunks_);
        break;
      case DsKind::Hybrid:
        // Tiered insert: inline/linear rows pay a capacity-bounded scan;
        // hub rows pay a bounded-probe hash insert. No meta-op term —
        // the tier tag lives in the vertex slot header.
        if (degree < 128)
            task.parCost = params_.updateBase + params_.scanEntry * degree;
        else
            task.parCost = params_.updateBase + params_.hashWork;
        task.affinity =
            static_cast<std::int64_t>(hashNode(src) % chunks_);
        break;
    }
    return task;
}

std::vector<SimTask>
UpdatePhaseModel::batchTasks(const EdgeBatch &batch)
{
    const NodeId max_node = batch.maxNode();
    if (max_node != kInvalidNode) {
        if (max_node >= out_deg_.size()) {
            out_deg_.resize(max_node + 1, 0);
            in_deg_.resize(max_node + 1, 0);
        }
    }

    // Lock namespaces: out-store locks and in-store locks are distinct.
    const std::int64_t kOutLocks = 0;
    const std::int64_t kInLocks = std::int64_t{1} << 40;

    std::vector<SimTask> tasks;
    tasks.reserve(batch.size() * 2);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const Edge &e = batch[i];
        // Out-store insert keyed by src.
        tasks.push_back(makeTask(e.src, out_deg_[e.src], kOutLocks));
        ++out_deg_[e.src];
        if (directed_) {
            // In-store insert keyed by dst.
            tasks.push_back(makeTask(e.dst, in_deg_[e.dst], kInLocks));
            ++in_deg_[e.dst];
        } else {
            // Undirected: reverse orientation into the same store.
            tasks.push_back(makeTask(e.dst, out_deg_[e.dst], kOutLocks));
            ++out_deg_[e.dst];
            ++in_deg_[e.src];
            ++in_deg_[e.dst];
        }
    }
    return tasks;
}

std::vector<SimTask>
computeIterationTasks(const std::vector<std::uint32_t> &in_degrees,
                      const CostParams &params)
{
    std::vector<SimTask> tasks;
    tasks.reserve(in_degrees.size());
    for (std::uint32_t degree : in_degrees) {
        SimTask task;
        task.parCost = params.computeBase + params.computeEdge * degree;
        tasks.push_back(task);
    }
    return tasks;
}

} // namespace perf
} // namespace saga
