#include "perfmodel/trace.h"

#include <algorithm>

namespace saga {
namespace perf {

void
CountingSink::access(const void *addr, std::uint32_t bytes, bool write)
{
    if (write)
        ++writes;
    else
        ++reads;
    bytesTotal += bytes;
    const auto a = reinterpret_cast<std::uint64_t>(addr);
    minAddr = std::min(minAddr, a);
    maxAddr = std::max(maxAddr, a + bytes);
}

void
CountingSink::op(std::uint64_t n)
{
    opsTotal += n;
}

} // namespace perf
} // namespace saga
