/**
 * @file
 * Core-scaling simulator — the substitute for the paper's 32-core Xeon.
 *
 * The measurement host has a single physical core, so the scaling curves
 * of Fig. 9(a) cannot be measured in wall-clock time. Instead, we replay
 * each phase's *work structure* on a simple scheduling model:
 *
 *  - every unit of work is a SimTask with a lock-free portion (parCost),
 *    an optional serialized portion (serCost, guarded by lockId — the AS
 *    per-vertex lock or the Stinger vertex insert lock), and an optional
 *    fixed core affinity (chunked-style structures bind a chunk's tasks to
 *    one worker);
 *  - greedy in-order list scheduling assigns each task to the earliest
 *    available core, serializing the serCost portions per lock.
 *
 * The makespan at N cores reproduces the three effects the paper reports:
 * near-linear compute scaling, AS update flattening from lock contention,
 * and DAH update flat-lining from chunk imbalance.
 */

#ifndef SAGA_PERFMODEL_SCALING_SIM_H_
#define SAGA_PERFMODEL_SCALING_SIM_H_

#include <cstdint>
#include <vector>

namespace saga {
namespace perf {

/** One schedulable unit of work (one edge update, one vertex compute). */
struct SimTask
{
    /** Work done without holding any lock (abstract cycles). */
    double parCost = 0;
    /** Work done while holding @ref lockId (0 if lock-free). */
    double serCost = 0;
    /** Lock serializing serCost across tasks; -1 = none. */
    std::int64_t lockId = -1;
    /** Fixed core (modulo core count); -1 = any core. */
    std::int64_t affinity = -1;
};

/** Result of scheduling a task list on N cores. */
struct ScheduleResult
{
    double makespan = 0;   // finish time of the last task
    double busyTime = 0;   // sum of all task costs (work)
    double utilization = 0; // busyTime / (makespan * cores)
};

/**
 * Greedy list-schedule @p tasks on @p cores cores.
 *
 * @param wait_penalty extra serialized cost charged whenever a task finds
 *        its lock busy — models the spin-wait convoy (cache-line bouncing
 *        between waiters lengthens the effective critical section). Zero
 *        disables the effect.
 */
ScheduleResult scheduleTasks(const std::vector<SimTask> &tasks, int cores,
                             double wait_penalty = 0.0);

/**
 * Convenience for iterative compute phases: schedule each iteration's
 * tasks with a barrier between iterations; returns summed makespan.
 */
double scheduleIterations(
    const std::vector<std::vector<SimTask>> &iterations, int cores,
    double barrier_cost = 0);

} // namespace perf
} // namespace saga

#endif // SAGA_PERFMODEL_SCALING_SIM_H_
