#include "perfmodel/cache_sim.h"

#include <cassert>

namespace saga {
namespace perf {

CacheHierarchyConfig
CacheHierarchyConfig::xeonGold6142()
{
    CacheHierarchyConfig config;
    config.lineSize = 64;
    config.levels = {
        {"L1", 32 * 1024, 8},
        {"L2", 1024 * 1024, 16},
        {"LLC", 22ull * 1024 * 1024, 11},
    };
    return config;
}

CacheHierarchyConfig
CacheHierarchyConfig::tiny()
{
    CacheHierarchyConfig config;
    config.lineSize = 64;
    config.levels = {
        {"L1", 1024, 2},
        {"L2", 4096, 4},
    };
    return config;
}

CacheSim::CacheSim(CacheHierarchyConfig config) : config_(std::move(config))
{
    levels_.resize(config_.levels.size());
    stats_.resize(config_.levels.size());
    for (std::size_t i = 0; i < config_.levels.size(); ++i) {
        const CacheLevelConfig &lc = config_.levels[i];
        Level &level = levels_[i];
        level.ways = lc.ways;
        level.numSets = lc.sizeBytes / (config_.lineSize * lc.ways);
        assert(level.numSets > 0);
        level.lines.assign(level.numSets * level.ways, Line{});
    }
}

void
CacheSim::access(const void *addr, std::uint32_t bytes, bool write)
{
    const auto base = reinterpret_cast<std::uint64_t>(addr);
    const std::uint64_t first = base / config_.lineSize;
    const std::uint64_t last = (base + (bytes ? bytes - 1 : 0)) /
                               config_.lineSize;
    for (std::uint64_t line = first; line <= last; ++line) {
        ++accesses_;
        ++clock_;
        touchLine(0, line, write);
    }
}

void
CacheSim::op(std::uint64_t n)
{
    ops_ += n;
}

void
CacheSim::touchLine(std::size_t i, std::uint64_t line_addr, bool write)
{
    if (i >= levels_.size()) {
        // DRAM fill.
        dram_bytes_ += config_.lineSize;
        return;
    }

    Level &level = levels_[i];
    const std::uint64_t index = line_addr % level.numSets;
    Line *set = level.set(index);

    // Hit?
    for (std::uint32_t w = 0; w < level.ways; ++w) {
        Line &line = set[w];
        if (line.valid && line.tag == line_addr) {
            ++stats_[i].hits;
            line.lastUse = clock_;
            line.dirty |= write;
            return;
        }
    }

    // Miss: fetch from the next level, then fill the LRU way.
    ++stats_[i].misses;
    touchLine(i + 1, line_addr, write);

    std::uint32_t victim = 0;
    for (std::uint32_t w = 0; w < level.ways; ++w) {
        Line &line = set[w];
        if (!line.valid) {
            victim = w;
            break;
        }
        if (line.lastUse < set[victim].lastUse)
            victim = w;
    }
    Line &line = set[victim];
    if (line.valid && line.dirty && i + 1 >= levels_.size()) {
        // Dirty eviction from the last level: write back to DRAM.
        dram_bytes_ += config_.lineSize;
    }
    line.valid = true;
    line.tag = line_addr;
    line.lastUse = clock_;
    line.dirty = write;
}

void
CacheSim::resetStats()
{
    for (CacheLevelStats &s : stats_)
        s = CacheLevelStats{};
    ops_ = 0;
    accesses_ = 0;
    dram_bytes_ = 0;
}

void
CacheSim::flush()
{
    resetStats();
    for (Level &level : levels_) {
        for (Line &line : level.lines)
            line = Line{};
    }
}

} // namespace perf
} // namespace saga
