/**
 * @file
 * Phantom capability for the chunked-ownership stores (AC, DAH).
 *
 * The chunked multithreading style has no locks to annotate: worker w
 * exclusively owns chunk w during a batch, and everything per-chunk is
 * lock-free single-writer. Thread Safety Analysis can still machine-check
 * the *calling discipline* — "mutating a chunk is only legal from code
 * that has declared ownership" — by modelling ownership as a capability
 * that is never really locked, only asserted.
 *
 * A store embeds one ChunkOwnership and annotates its owner-only mutators
 * `SAGA_REQUIRES(ownership_)`. The batch-update worker lambdas (and any
 * single-threaded caller, e.g. tests) declare ownership by calling the
 * store's `assertOwned()` before mutating; a call path that skips the
 * declaration fails to compile under `-Wthread-safety -Werror` (see
 * tests/compile_fail/missing_lock_method_call.cc). The assertion is a
 * compile-time construct only — it emits no code — so the lock-free hot
 * path stays lock-free.
 */

#ifndef SAGA_PLATFORM_CHUNK_OWNERSHIP_H_
#define SAGA_PLATFORM_CHUNK_OWNERSHIP_H_

#include "platform/thread_annotations.h"

namespace saga {

/** Compile-time-only capability: "this thread owns the chunk it touches". */
class SAGA_CAPABILITY("chunk-ownership") ChunkOwnership
{
  public:
    /**
     * Declare to the analysis that the calling context owns the chunks it
     * is about to mutate (because it is the pool worker the owner mapping
     * assigned, or because the store is single-threaded-quiescent).
     */
    void declareOwned() const SAGA_ASSERT_CAPABILITY(this) {}
};

} // namespace saga

#endif // SAGA_PLATFORM_CHUNK_OWNERSHIP_H_
