/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in SAGA-Bench (graph generation, shuffling, weights) flows
 * through this splitmix64/xoshiro-style generator so that every experiment
 * is reproducible from a single seed, independent of libstdc++ version.
 */

#ifndef SAGA_PLATFORM_RNG_H_
#define SAGA_PLATFORM_RNG_H_

#include <cstdint>
#include <limits>

namespace saga {

/**
 * Fast deterministic 64-bit generator (xoshiro256**), seeded via
 * splitmix64. Satisfies UniformRandomBitGenerator.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x5A6AULL ^ 0x9E3779B97F4A7C15ULL)
    {
        // Expand the seed with splitmix64 so nearby seeds diverge.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9E3779B97F4A7C15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
            word = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<result_type>::max();
    }

    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection method.
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            const std::uint64_t threshold = -bound % bound;
            while (lo < threshold) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace saga

#endif // SAGA_PLATFORM_RNG_H_
