/**
 * @file
 * Clang Thread Safety Analysis macro shim.
 *
 * SAGA's four dynamic stores each rely on a different hand-written
 * locking/ownership discipline. PR 1 proved those disciplines correct
 * *dynamically* (TSan); these macros make them machine-checked at
 * *compile time*: every lock-protected field and lock-requiring method
 * carries its contract as an attribute, and a Clang build with
 * `-Wthread-safety -Werror` (the CI `static-analysis` job, or any local
 * Clang configure) rejects code that touches a guarded field without
 * holding its capability. On compilers without the analysis (GCC) every
 * macro expands to nothing, so the annotations are zero-cost
 * documentation there.
 *
 * Naming follows the Clang documentation's canonical mutex.h shim
 * (capability / guarded_by / requires_capability / acquire / release),
 * prefixed SAGA_ to keep the macro namespace ours.
 */

#ifndef SAGA_PLATFORM_THREAD_ANNOTATIONS_H_
#define SAGA_PLATFORM_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SAGA_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef SAGA_THREAD_ANNOTATION_
#define SAGA_THREAD_ANNOTATION_(x) // no-op off Clang
#endif

/** Marks a class as a capability (lockable) type. */
#define SAGA_CAPABILITY(name) SAGA_THREAD_ANNOTATION_(capability(name))

/** Marks an RAII class whose ctor acquires and dtor releases a capability. */
#define SAGA_SCOPED_CAPABILITY SAGA_THREAD_ANNOTATION_(scoped_lockable)

/** Field access requires the given capability to be held. */
#define SAGA_GUARDED_BY(x) SAGA_THREAD_ANNOTATION_(guarded_by(x))

/** Dereferencing this pointer requires the given capability. */
#define SAGA_PT_GUARDED_BY(x) SAGA_THREAD_ANNOTATION_(pt_guarded_by(x))

/** Caller must hold the listed capabilities (and does not release them). */
#define SAGA_REQUIRES(...) \
    SAGA_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/** Function acquires the listed capabilities (held on return). */
#define SAGA_ACQUIRE(...) \
    SAGA_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities (caller must hold them). */
#define SAGA_RELEASE(...) \
    SAGA_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/** Function attempts to acquire; first arg is the success return value. */
#define SAGA_TRY_ACQUIRE(...) \
    SAGA_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the listed capabilities (deadlock guard). */
#define SAGA_EXCLUDES(...) SAGA_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/** Asserts (to the analysis) that the capability is held in this scope. */
#define SAGA_ASSERT_CAPABILITY(x) \
    SAGA_THREAD_ANNOTATION_(assert_capability(x))

/** Function returns a reference to the given capability. */
#define SAGA_RETURN_CAPABILITY(x) SAGA_THREAD_ANNOTATION_(lock_returned(x))

/**
 * Escape hatch: disables the analysis inside one function. Used only for
 * the documented phase-separation reads (compute phases read store fields
 * without locks because the pool barrier orders them strictly after the
 * update phase) and for quiescent-state relocation (vector growth copying
 * rows while no worker runs). Every use must carry a comment naming the
 * barrier that makes it safe.
 */
#define SAGA_NO_THREAD_SAFETY_ANALYSIS \
    SAGA_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif // SAGA_PLATFORM_THREAD_ANNOTATIONS_H_
