/**
 * @file
 * Fixed-size worker pool used by both the update and compute phases.
 *
 * SAGA-Bench (the paper) uses OpenMP with threads pinned to hardware
 * contexts. We reproduce the same execution model with a persistent
 * std::thread pool: a set of workers created once, to which the driver
 * dispatches "run f(worker_id) on every worker" bulk tasks. This matches the
 * two multithreading styles in the paper:
 *
 *  - shared style (AS, Stinger): every worker pulls edge indices from a
 *    shared range and synchronizes on per-vertex / per-block locks;
 *  - chunked style (AC, DAH): worker w exclusively owns chunk w and only
 *    processes edges whose source hashes to its chunk.
 *
 * Concurrency contract: the barrier state (generation_/remaining_/
 * sleepers_/caller_parked_/task_) is guarded by the seq_cst Dekker
 * handshake documented in thread_pool.cc, not by mutex_ — the mutex and
 * condvars exist only to park and wake; no field is mutex-protected.
 * That handshake is outside what Thread Safety Analysis can express, so
 * this file carries no capability annotations; TSan (PR 1) and the
 * barrier stress tests are its checkers. The pool is the one sanctioned
 * user of <mutex> in src/ (parking needs a condvar); saga_lint enforces
 * that everything else uses platform/spinlock.h.
 */
// saga-lint: allow-file(no-std-mutex): condvar parking needs a real mutex

#ifndef SAGA_PLATFORM_THREAD_POOL_H_
#define SAGA_PLATFORM_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace saga {

/**
 * Persistent pool of worker threads executing bulk-synchronous tasks.
 *
 * run(f) invokes f(worker_id) on all workers (worker 0 runs on the calling
 * thread) and returns when every invocation has finished. The pool is
 * reused across batches so thread creation cost never pollutes latency
 * measurements.
 *
 * Dispatch and completion use a spin-then-park barrier: workers watch an
 * atomic generation counter and the caller watches an atomic remaining
 * counter, each spinning for a short bounded window before parking on a
 * condition variable. Sub-millisecond batches — the common case for an
 * ingestion pipeline issuing several pool.run() calls per batch — used to
 * be dominated by the mutex/condvar handshake on every dispatch; with the
 * spin window, back-to-back run() calls hand off through two atomic
 * transitions and fall back to parking (and its syscalls) only when a gap
 * between tasks is genuinely long. See thread_pool.cc for the memory-order
 * contract.
 */
class ThreadPool
{
  public:
    /** @param num_workers number of workers; 0 = hardware concurrency. */
    explicit ThreadPool(std::size_t num_workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of workers in the pool. */
    std::size_t size() const { return num_workers_; }

    /**
     * Execute task(worker_id) for worker_id in [0, size()) and wait for
     * all of them. Must not be called reentrantly from inside a task.
     */
    void run(const std::function<void(std::size_t)> &task);

  private:
    void workerLoop(std::size_t id);

    // immutable-after-build: fixed in the constructor
    std::size_t num_workers_;
    std::vector<std::thread> threads_;

    // Barrier state. generation_ increments once per run(); remaining_
    // counts workers that have not finished the current task. sleepers_
    // and caller_parked_ publish "somebody is (about to be) parked on a
    // condvar", so the fast path skips the mutex entirely.
    std::atomic<std::uint64_t> generation_{0};
    std::atomic<std::size_t> remaining_{0};
    std::atomic<std::size_t> sleepers_{0};
    std::atomic<bool> caller_parked_{false};
    std::atomic<bool> stop_{false};
    // guarded-member-allow: plain pointer published by the seq_cst
    // generation_ bump and retired after the remaining_ == 0 barrier
    // (memory-order contract in thread_pool.cc)
    const std::function<void(std::size_t)> *task_ = nullptr;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
};

/**
 * One-job asynchronous lane: a single long-lived thread that executes one
 * submitted closure at a time while the submitter does something else.
 *
 * The pipelined streaming driver uses it as the *writer lane* master: the
 * driver thread submits "stage the next batch" (which internally fans out
 * over the writer ThreadPool), runs the compute phase on the reader pool,
 * then wait()s — the epoch publish barrier.
 *
 * Concurrency contract: deliberately boring. All handoff state is guarded
 * by the mutex and signalled through condvars — no lock-free fast path,
 * no relaxed atomics (the epoch handoff is exactly where saga_lint's
 * pipeline-no-relaxed rule bans them). submit()/wait() happen-before
 * edges come from the mutex alone. Latency does not matter here: the lane
 * hands off twice per *batch*, not per task, so a parked-thread wakeup is
 * noise next to a multi-millisecond stage.
 *
 * Single-submitter discipline: one thread calls submit()/wait(); the lane
 * runs the closures in submission order, one at a time. submit() blocks
 * while a previous job is still running (it cannot overwrite it).
 */
class AsyncLane
{
  public:
    AsyncLane();
    ~AsyncLane();

    AsyncLane(const AsyncLane &) = delete;
    AsyncLane &operator=(const AsyncLane &) = delete;

    /** Hand @p job to the lane thread; blocks until the lane is free. */
    void submit(std::function<void()> job);

    /** Block until the most recently submitted job has finished. */
    void wait();

  private:
    void laneLoop();

    std::mutex mutex_;
    std::condition_variable wake_; ///< submitter -> lane: job available
    std::condition_variable done_; ///< lane -> submitter: job finished
    // guarded-member-allow: guarded by mutex_ — a plain std::mutex on
    // purpose (condvar parking), which is not a TSA capability type
    std::function<void()> job_;
    // guarded-member-allow: guarded by mutex_, same as job_
    bool busy_ = false;
    // guarded-member-allow: guarded by mutex_, same as job_
    bool stop_ = false;
    std::thread thread_;           ///< last member: starts after state init
};

} // namespace saga

#endif // SAGA_PLATFORM_THREAD_POOL_H_
