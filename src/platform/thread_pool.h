/**
 * @file
 * Fixed-size worker pool used by both the update and compute phases.
 *
 * SAGA-Bench (the paper) uses OpenMP with threads pinned to hardware
 * contexts. We reproduce the same execution model with a persistent
 * std::thread pool: a set of workers created once, to which the driver
 * dispatches "run f(worker_id) on every worker" bulk tasks. This matches the
 * two multithreading styles in the paper:
 *
 *  - shared style (AS, Stinger): every worker pulls edge indices from a
 *    shared range and synchronizes on per-vertex / per-block locks;
 *  - chunked style (AC, DAH): worker w exclusively owns chunk w and only
 *    processes edges whose source hashes to its chunk.
 */

#ifndef SAGA_PLATFORM_THREAD_POOL_H_
#define SAGA_PLATFORM_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace saga {

/**
 * Persistent pool of worker threads executing bulk-synchronous tasks.
 *
 * run(f) invokes f(worker_id) on all workers (including worker 0 run on the
 * calling thread when the pool has a single worker) and returns when every
 * invocation has finished. The pool is reused across batches so thread
 * creation cost never pollutes latency measurements.
 */
class ThreadPool
{
  public:
    /** @param num_workers number of workers; 0 = hardware concurrency. */
    explicit ThreadPool(std::size_t num_workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of workers in the pool. */
    std::size_t size() const { return num_workers_; }

    /**
     * Execute task(worker_id) for worker_id in [0, size()) and wait for
     * all of them. Must not be called reentrantly from inside a task.
     */
    void run(const std::function<void(std::size_t)> &task);

  private:
    void workerLoop(std::size_t id);

    std::size_t num_workers_;
    std::vector<std::thread> threads_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(std::size_t)> *task_ = nullptr;
    std::uint64_t generation_ = 0;
    std::size_t remaining_ = 0;
    bool stop_ = false;
};

} // namespace saga

#endif // SAGA_PLATFORM_THREAD_POOL_H_
