/**
 * @file
 * Bulk-parallel loop helpers built on ThreadPool.
 *
 * These model the `#pragma omp parallel for` loops in the paper's
 * pseudocode: a contiguous index range split over the pool's workers.
 */

#ifndef SAGA_PLATFORM_PARALLEL_FOR_H_
#define SAGA_PLATFORM_PARALLEL_FOR_H_

#include <cstddef>
#include <cstdint>

#include "platform/thread_pool.h"

namespace saga {

/**
 * Run body(i) for every i in [begin, end), statically partitioned into one
 * contiguous slice per worker (OpenMP `schedule(static)` semantics).
 */
template <typename Body>
void
parallelFor(ThreadPool &pool, std::uint64_t begin, std::uint64_t end,
            const Body &body)
{
    const std::uint64_t count = end > begin ? end - begin : 0;
    if (count == 0)
        return;
    if (pool.size() == 1 || count == 1) {
        for (std::uint64_t i = begin; i < end; ++i)
            body(i);
        return;
    }

    const std::size_t workers = pool.size();
    pool.run([&](std::size_t w) {
        const std::uint64_t lo = begin + count * w / workers;
        const std::uint64_t hi = begin + count * (w + 1) / workers;
        for (std::uint64_t i = lo; i < hi; ++i)
            body(i);
    });
}

/**
 * Run body(worker_id, lo, hi) once per worker with that worker's static
 * slice of [begin, end). Useful when the body wants per-worker state.
 */
template <typename Body>
void
parallelSlices(ThreadPool &pool, std::uint64_t begin, std::uint64_t end,
               const Body &body)
{
    const std::uint64_t count = end > begin ? end - begin : 0;
    if (count == 0)
        return;
    const std::size_t workers = pool.size();
    if (workers == 1) {
        body(std::size_t{0}, begin, end);
        return;
    }
    pool.run([&](std::size_t w) {
        const std::uint64_t lo = begin + count * w / workers;
        const std::uint64_t hi = begin + count * (w + 1) / workers;
        if (lo < hi)
            body(w, lo, hi);
    });
}

} // namespace saga

#endif // SAGA_PLATFORM_PARALLEL_FOR_H_
