/**
 * @file
 * Per-worker destination-range bins for propagation blocking.
 *
 * The locality transformation behind the blocked PageRank path (GAP's
 * propagation blocking): instead of scattering contributions straight
 * into a |V|-sized accumulator (one random cache line per edge), each
 * worker appends (destination, payload) pairs to a slab chain owned by
 * the destination's *bin* — a contiguous destination range small enough
 * that its accumulator slice stays cache-resident. The append stream is
 * sequential per (worker, bin), and the later per-bin drain touches only
 * that bin's slice, so both phases run at streaming bandwidth instead of
 * random-access latency.
 *
 * Memory discipline mirrors BatchScratch: every slab lives in a
 * per-worker pool that persists across rounds and compute calls —
 * beginRound() is an O(bins) counter reset per worker, not a free/alloc
 * cycle. All per-worker state is cache-line-aligned (one Lane per
 * worker), so concurrent appends never share a line across workers.
 *
 * Concurrency contract: append(w, ...) is worker-private (no two threads
 * may share a lane); drainBin()/pairCount() read every lane and must run
 * after the pool barrier that ended the append phase.
 */

#ifndef SAGA_PLATFORM_DEST_BINS_H_
#define SAGA_PLATFORM_DEST_BINS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "perfmodel/trace.h"
#include "platform/padded.h"

namespace saga {

/**
 * Per-worker, per-bin slab chains of Pair records. Pair must be
 * trivially copyable (it is bulk-moved through the slab pool).
 */
template <typename Pair>
class DestBins
{
  public:
    /**
     * Shape the bin matrix: @p workers lanes × @p bins destination
     * ranges, slabs of @p slab_pairs records. Reshaping keeps each
     * lane's pool memory when the geometry allows it.
     */
    void
    configure(std::size_t workers, std::uint32_t bins,
              std::uint32_t slab_pairs)
    {
        bins_ = bins;
        slab_pairs_ = slab_pairs;
        if (lanes_.size() != workers)
            lanes_.assign(workers, Lane{});
        for (std::size_t w = 0; w < lanes_.size(); ++w) {
            Lane &lane = lanes_[w];
            lane.chains.resize(bins);
            lane.fill.resize(bins);
        }
        beginRound();
    }

    std::uint32_t numBins() const { return bins_; }
    std::uint32_t slabPairs() const { return slab_pairs_; }
    std::size_t workers() const { return lanes_.size(); }

    /**
     * Reset every lane for a fresh append round. Slab memory is kept;
     * chains shrink to empty and every bin's open slab becomes "none"
     * (the full-slab sentinel makes the first append open one lazily).
     */
    void
    beginRound()
    {
        for (Lane &lane : lanes_) {
            lane.next_slab = 0;
            lane.flushes = 0;
            for (std::uint32_t b = 0; b < bins_; ++b) {
                lane.chains[b].clear();
                lane.fill[b] = slab_pairs_; // sentinel: no open slab
            }
        }
    }

    /**
     * Append @p p to worker @p w's chain for @p bin. Worker-private:
     * lane w must only ever be touched by one thread per round.
     */
    void
    append(std::size_t w, std::uint32_t bin, const Pair &p)
    {
        Lane &lane = lanes_[w];
        std::uint32_t fill = lane.fill[bin];
        if (fill == slab_pairs_) {
            // Open a fresh slab; sealing a *full* one counts as a flush
            // (the first slab of a bin is lazy creation, not a flush).
            if (!lane.chains[bin].empty())
                ++lane.flushes;
            const std::uint32_t slab = lane.next_slab++;
            const std::size_t need =
                static_cast<std::size_t>(slab + 1) * slab_pairs_;
            if (lane.pool.size() < need)
                // hotpath-allow: slab-open slow path; the pool grows
                // once per high-water mark and is reused across rounds
                lane.pool.resize(need);
            // hotpath-allow: one slab id per slab open, amortized over
            // slab_pairs_ appends
            lane.chains[bin].push_back(slab);
            fill = 0;
        }
        Pair *slot = &lane.pool[static_cast<std::size_t>(
                                    lane.chains[bin].back()) *
                                    slab_pairs_ +
                                fill];
        *slot = p;
        perf::touchWrite(slot, sizeof(Pair));
        lane.fill[bin] = fill + 1;
    }

    /** Slabs sealed full (and replaced) across all lanes this round. */
    std::uint64_t
    roundFlushes() const
    {
        std::uint64_t total = 0;
        for (const Lane &lane : lanes_)
            total += lane.flushes;
        return total;
    }

    /** Records appended to @p bin across all lanes this round. */
    std::uint64_t
    pairCount(std::uint32_t bin) const
    {
        std::uint64_t total = 0;
        for (const Lane &lane : lanes_) {
            const std::vector<std::uint32_t> &chain = lane.chains[bin];
            if (chain.empty())
                continue;
            total += static_cast<std::uint64_t>(chain.size() - 1) *
                         slab_pairs_ +
                     lane.fill[bin];
        }
        return total;
    }

    /**
     * Visit every record appended to @p bin as contiguous runs:
     * fn(const Pair *run, std::uint32_t len). Quiescent only (after the
     * append phase's barrier); any thread may drain any bin.
     */
    template <typename Fn>
    void
    drainBin(std::uint32_t bin, Fn &&fn) const
    {
        for (const Lane &lane : lanes_) {
            const std::vector<std::uint32_t> &chain = lane.chains[bin];
            for (std::size_t k = 0; k < chain.size(); ++k) {
                const std::uint32_t len = k + 1 < chain.size()
                                              ? slab_pairs_
                                              : lane.fill[bin];
                if (len == 0)
                    continue;
                const Pair *run =
                    &lane.pool[static_cast<std::size_t>(chain[k]) *
                               slab_pairs_];
                perf::touch(run, len * sizeof(Pair));
                fn(run, len);
            }
        }
    }

  private:
    /** One worker's bin state; aligned so lanes never share a line. */
    struct alignas(kCacheLineBytes) Lane
    {
        std::vector<Pair> pool;       ///< slab backing store, persistent
        std::vector<std::vector<std::uint32_t>> chains; ///< per-bin slabs
        std::vector<std::uint32_t> fill; ///< open-slab fill per bin
        std::uint32_t next_slab = 0;     ///< pool bump allocator
        std::uint64_t flushes = 0;       ///< full slabs sealed this round
    };

    std::uint32_t bins_ = 0;
    std::uint32_t slab_pairs_ = 0;
    std::vector<Lane> lanes_;
};

} // namespace saga

#endif // SAGA_PLATFORM_DEST_BINS_H_
