/**
 * @file
 * Edge-balanced work partitioning for parallel graph sweeps.
 *
 * parallelSlices() splits an index range into equal *vertex* counts,
 * which serializes a round on power-law graphs: the worker that draws a
 * hub vertex does most of the edge work while the rest idle at the pool
 * barrier. EdgeBalancedRanges instead builds a prefix sum of per-item
 * weights (degree + 1, so zero-degree items still cost one unit and the
 * prefix is strictly increasing) and binary-searches the split points so
 * every worker gets a contiguous slice of roughly equal *edge* mass —
 * the GAP benchmark's answer to degree skew, applied per round.
 *
 * The prefix array is reused across build() calls (capacity persists),
 * so per-round rebuilding over a frontier does not allocate in steady
 * state. The degree queries in build() run in parallel; the final scan
 * is one serial pass of plain adds.
 */

#ifndef SAGA_PLATFORM_EDGE_RANGES_H_
#define SAGA_PLATFORM_EDGE_RANGES_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "platform/parallel_for.h"
#include "platform/thread_pool.h"

namespace saga {

/** Degree-prefix-sum splitter: equal edge mass per worker slice. */
class EdgeBalancedRanges
{
  public:
    /**
     * Build the prefix sum over @p count items; weight(i) must return
     * the degree-like cost of item i (the +1 vertex cost is added here).
     * Runs the weight queries in parallel on @p pool.
     */
    template <typename WeightFn>
    void
    build(ThreadPool &pool, std::uint64_t count, const WeightFn &weight)
    {
        prefix_.resize(count + 1);
        prefix_[0] = 0;
        parallelFor(pool, 0, count, [&](std::uint64_t i) {
            prefix_[i + 1] = static_cast<std::uint64_t>(weight(i)) + 1;
        });
        for (std::uint64_t i = 1; i <= count; ++i)
            prefix_[i] += prefix_[i - 1];
    }

    /** Number of items covered by the last build(). */
    std::uint64_t count() const { return prefix_.size() - 1; }

    /** Total weight (edge mass + one unit per item) of all items. */
    std::uint64_t total() const { return prefix_.back(); }

    /** Edge mass alone: total() minus the per-item unit costs. */
    std::uint64_t edgeSum() const { return total() - count(); }

    /**
     * Slice [lo, hi) of worker @p w out of @p workers. Slices partition
     * [0, count()) exactly; each carries weight within one item of the
     * ideal total()/workers (split points are lower bounds on the
     * strictly increasing prefix).
     */
    std::pair<std::uint64_t, std::uint64_t>
    slice(std::size_t w, std::size_t workers) const
    {
        return {split(w, workers), split(w + 1, workers)};
    }

    /**
     * Run body(worker, lo, hi) once per worker with its edge-balanced
     * slice of [0, count()); workers with an empty slice are skipped
     * (parallelSlices semantics).
     */
    template <typename Body>
    void
    forSlices(ThreadPool &pool, const Body &body) const
    {
        if (count() == 0)
            return;
        const std::size_t workers = pool.size();
        if (workers == 1) {
            body(std::size_t{0}, std::uint64_t{0}, count());
            return;
        }
        pool.run([&](std::size_t w) {
            const auto [lo, hi] = slice(w, workers);
            if (lo < hi)
                body(w, lo, hi);
        });
    }

  private:
    std::uint64_t
    split(std::size_t w, std::size_t workers) const
    {
        const std::uint64_t target = total() * w / workers;
        const auto it =
            std::lower_bound(prefix_.begin(), prefix_.end(), target);
        return static_cast<std::uint64_t>(it - prefix_.begin());
    }

    std::vector<std::uint64_t> prefix_{0};
};

} // namespace saga

#endif // SAGA_PLATFORM_EDGE_RANGES_H_
