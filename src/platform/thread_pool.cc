// saga-lint: allow-file(no-std-mutex): condvar parking needs a real mutex
#include "platform/thread_pool.h"

#include <atomic>
#include <cstdint>

namespace saga {
namespace {

/**
 * Spin budget before parking. The pause stage (~a microsecond of busy
 * polling) covers back-to-back run() calls; the yield stage keeps an
 * oversubscribed machine (more workers than cores — this container has
 * one core) from burning a scheduling quantum before giving the core to
 * whoever holds the work.
 */
constexpr int kPauseSpins = 2048;
constexpr int kYieldSpins = 64;

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
}

/**
 * Spin until pred() holds or the budget runs out.
 * @return true if pred() held.
 */
template <typename Pred>
bool
spinUntil(const Pred &pred)
{
    for (int spin = 0; spin < kPauseSpins; ++spin) {
        if (pred())
            return true;
        cpuRelax();
    }
    for (int spin = 0; spin < kYieldSpins; ++spin) {
        if (pred())
            return true;
        std::this_thread::yield();
    }
    return pred();
}

} // namespace

/*
 * Memory-order contract.
 *
 * Publication: run() stores task_/remaining_ plainly, then bumps
 * generation_ (seq_cst RMW = release). A worker reads generation_ with at
 * least acquire before touching task_, so the task pointer and counters
 * are visible. Symmetrically, each worker's task-side writes happen
 * before its seq_cst fetch_sub of remaining_, and run() reads
 * remaining_ == 0 before returning, so the caller observes all task
 * effects.
 *
 * Parking: both park sides use the Dekker pattern
 *     sleeper:  W(flag)        seq_cst; R(state) seq_cst; park if stale
 *     waker:    W(state)       seq_cst; R(flag)  seq_cst; notify if set
 * With all four accesses seq_cst, at least one side sees the other's
 * store, so a notification cannot fall between the sleeper's last check
 * and its wait — the lost-wakeup window is closed without taking the
 * mutex on the fast path. Notifiers do take the mutex, which pins the
 * sleeper either before its predicate re-check or fully inside wait().
 */

ThreadPool::ThreadPool(std::size_t num_workers)
    : num_workers_(num_workers ? num_workers
                               : std::max(1u, std::thread::hardware_concurrency()))
{
    // Worker 0 is the calling thread; spawn the rest.
    threads_.reserve(num_workers_ - 1);
    for (std::size_t id = 1; id < num_workers_; ++id)
        threads_.emplace_back([this, id] { workerLoop(id); });
}

ThreadPool::~ThreadPool()
{
    stop_.store(true, std::memory_order_seq_cst);
    {
        std::lock_guard<std::mutex> hold(mutex_);
    }
    wake_.notify_all();
    for (auto &thread : threads_)
        thread.join();
}

void
ThreadPool::run(const std::function<void(std::size_t)> &task)
{
    if (num_workers_ == 1) {
        task(0);
        return;
    }

    task_ = &task;
    // relaxed: published by the seq_cst generation_ bump below; nobody
    // reads remaining_ for this generation before observing that bump.
    remaining_.store(num_workers_ - 1, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_seq_cst);
    if (sleepers_.load(std::memory_order_seq_cst) != 0) {
        std::lock_guard<std::mutex> hold(mutex_);
        wake_.notify_all();
    }

    // The calling thread doubles as worker 0.
    task(0);

    const auto finished = [this] {
        return remaining_.load(std::memory_order_seq_cst) == 0;
    };
    if (!spinUntil(finished)) {
        caller_parked_.store(true, std::memory_order_seq_cst);
        {
            std::unique_lock<std::mutex> hold(mutex_);
            done_.wait(hold, finished);
        }
        // relaxed: only this thread parks itself; clearing the flag late
        // at worst costs one spurious notify.
        caller_parked_.store(false, std::memory_order_relaxed);
    }
    task_ = nullptr;
}

void
ThreadPool::workerLoop(std::size_t id)
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        // Await the next generation (or stop): spin, then park.
        const auto ready = [&] {
            return generation_.load(std::memory_order_seq_cst) !=
                       seen_generation ||
                   stop_.load(std::memory_order_seq_cst);
        };
        if (!spinUntil(ready)) {
            sleepers_.fetch_add(1, std::memory_order_seq_cst);
            {
                std::unique_lock<std::mutex> hold(mutex_);
                wake_.wait(hold, ready);
            }
            // relaxed: decrementing after waking; a waker that still sees
            // the stale count only pays one spurious notify.
            sleepers_.fetch_sub(1, std::memory_order_relaxed);
        }

        const std::uint64_t generation =
            generation_.load(std::memory_order_seq_cst);
        if (generation == seen_generation)
            return; // stop_ with no new work
        seen_generation = generation;

        (*task_)(id);

        if (remaining_.fetch_sub(1, std::memory_order_seq_cst) == 1 &&
            caller_parked_.load(std::memory_order_seq_cst)) {
            std::lock_guard<std::mutex> hold(mutex_);
            done_.notify_one();
        }
    }
}

AsyncLane::AsyncLane() : thread_([this] { laneLoop(); }) {}

AsyncLane::~AsyncLane()
{
    {
        std::lock_guard<std::mutex> hold(mutex_);
        stop_ = true;
    }
    wake_.notify_one();
    thread_.join();
}

void
AsyncLane::submit(std::function<void()> job)
{
    std::unique_lock<std::mutex> hold(mutex_);
    done_.wait(hold, [this] { return !busy_; });
    job_ = std::move(job);
    busy_ = true;
    hold.unlock();
    wake_.notify_one();
}

void
AsyncLane::wait()
{
    std::unique_lock<std::mutex> hold(mutex_);
    done_.wait(hold, [this] { return !busy_; });
}

void
AsyncLane::laneLoop()
{
    std::unique_lock<std::mutex> hold(mutex_);
    for (;;) {
        wake_.wait(hold, [this] { return busy_ || stop_; });
        if (!busy_) {
            if (stop_)
                return;
            continue;
        }
        std::function<void()> job = std::move(job_);
        job_ = nullptr;
        hold.unlock();
        job();
        hold.lock();
        busy_ = false;
        done_.notify_all();
    }
}

} // namespace saga
