#include "platform/thread_pool.h"

#include <cstdint>

namespace saga {

ThreadPool::ThreadPool(std::size_t num_workers)
    : num_workers_(num_workers ? num_workers
                               : std::max(1u, std::thread::hardware_concurrency()))
{
    // Worker 0 is the calling thread; spawn the rest.
    threads_.reserve(num_workers_ - 1);
    for (std::size_t id = 1; id < num_workers_; ++id)
        threads_.emplace_back([this, id] { workerLoop(id); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> hold(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &thread : threads_)
        thread.join();
}

void
ThreadPool::run(const std::function<void(std::size_t)> &task)
{
    if (num_workers_ == 1) {
        task(0);
        return;
    }

    {
        std::lock_guard<std::mutex> hold(mutex_);
        task_ = &task;
        ++generation_;
        remaining_ = num_workers_ - 1;
    }
    wake_.notify_all();

    // The calling thread doubles as worker 0.
    task(0);

    std::unique_lock<std::mutex> hold(mutex_);
    done_.wait(hold, [this] { return remaining_ == 0; });
    task_ = nullptr;
}

void
ThreadPool::workerLoop(std::size_t id)
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        const std::function<void(std::size_t)> *task;
        {
            std::unique_lock<std::mutex> hold(mutex_);
            wake_.wait(hold, [&] {
                return stop_ || generation_ != seen_generation;
            });
            if (stop_)
                return;
            seen_generation = generation_;
            task = task_;
        }

        (*task)(id);

        bool last;
        {
            std::lock_guard<std::mutex> hold(mutex_);
            last = (--remaining_ == 0);
        }
        if (last)
            done_.notify_one();
    }
}

} // namespace saga
