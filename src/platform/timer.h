/**
 * @file
 * Wall-clock timing helpers used for latency measurement.
 */

#ifndef SAGA_PLATFORM_TIMER_H_
#define SAGA_PLATFORM_TIMER_H_

#include <chrono>

namespace saga {

/** Monotonic stopwatch reporting elapsed seconds as double. */
class Timer
{
  public:
    Timer() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** @return seconds elapsed since construction or last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** @return milliseconds elapsed since construction or last reset(). */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace saga

#endif // SAGA_PLATFORM_TIMER_H_
