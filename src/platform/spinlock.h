/**
 * @file
 * Minimal spinlocks used by the graph data structures.
 *
 * The update phase takes very short critical sections (scan one vertex's
 * adjacency and possibly append), so a test-and-test-and-set spinlock is a
 * better fit than std::mutex: it is one byte, never syscalls, and can be
 * embedded per vertex or per edge block without blowing up the footprint.
 *
 * SpinLock is a Thread Safety Analysis *capability*: fields annotated
 * `SAGA_GUARDED_BY(lock)` can only be touched while the lock is held, and
 * a Clang `-Wthread-safety -Werror` build enforces that at compile time.
 */

#ifndef SAGA_PLATFORM_SPINLOCK_H_
#define SAGA_PLATFORM_SPINLOCK_H_

#include <atomic>
#include <cassert>
#include <cstdint>

#include "platform/thread_annotations.h"

namespace saga {

/** Test-and-test-and-set spinlock. Satisfies BasicLockable. */
class SAGA_CAPABILITY("SpinLock") SpinLock
{
  public:
    SpinLock() = default;

    /**
     * Copying is a construction-time affair only: it exists so that
     * std::vector<SpinLock> (and structs embedding a SpinLock) can
     * relocate elements when ensureNodes() grows the vertex space, which
     * happens strictly before the parallel region — i.e. while every lock
     * is free. Copying a *held* lock would silently yield an unlocked
     * copy, so debug builds assert the source is free; there is no
     * legitimate reason to copy-assign a lock at all, so that is deleted.
     */
    SpinLock(const SpinLock &other) : SpinLock()
    {
        // relaxed: debug-only sanity read; the copy happens while the
        // structure is quiescent, so there is nothing to order against.
        assert(!other.flag_.load(std::memory_order_relaxed) &&
               "copying a held SpinLock");
        (void)other;
    }
    SpinLock &operator=(const SpinLock &) = delete;

    void
    lock() SAGA_ACQUIRE()
    {
        for (;;) {
            if (!flag_.exchange(true, std::memory_order_acquire))
                return;
            // relaxed: pure spin-wait poll; the acquiring exchange above
            // provides the ordering once the lock is observed free.
            while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
                __builtin_ia32_pause();
#endif
            }
        }
    }

    bool
    try_lock() SAGA_TRY_ACQUIRE(true)
    {
        // relaxed: optimistic pre-check only; the acquiring exchange is
        // what actually takes the lock (and orders the critical section).
        return !flag_.load(std::memory_order_relaxed) &&
               !flag_.exchange(true, std::memory_order_acquire);
    }

    void unlock() SAGA_RELEASE()
    {
        flag_.store(false, std::memory_order_release);
    }

  private:
    std::atomic<bool> flag_{false};
};

/**
 * RAII guard for SpinLock (std::lock_guard works too; this avoids the
 * <mutex> include in hot headers). A scoped capability: the analysis
 * credits the constructor with acquiring the lock and the destructor
 * with releasing it.
 */
class SAGA_SCOPED_CAPABILITY SpinGuard
{
  public:
    explicit SpinGuard(SpinLock &lock) SAGA_ACQUIRE(lock) : lock_(lock)
    {
        lock_.lock();
    }
    ~SpinGuard() SAGA_RELEASE() { lock_.unlock(); }
    SpinGuard(const SpinGuard &) = delete;
    SpinGuard &operator=(const SpinGuard &) = delete;

  private:
    SpinLock &lock_;
};

} // namespace saga

#endif // SAGA_PLATFORM_SPINLOCK_H_
