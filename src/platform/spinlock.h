/**
 * @file
 * Minimal spinlocks used by the graph data structures.
 *
 * The update phase takes very short critical sections (scan one vertex's
 * adjacency and possibly append), so a test-and-test-and-set spinlock is a
 * better fit than std::mutex: it is one byte, never syscalls, and can be
 * embedded per vertex or per edge block without blowing up the footprint.
 */

#ifndef SAGA_PLATFORM_SPINLOCK_H_
#define SAGA_PLATFORM_SPINLOCK_H_

#include <atomic>
#include <cstdint>

namespace saga {

/** Test-and-test-and-set spinlock. Satisfies BasicLockable. */
class SpinLock
{
  public:
    SpinLock() = default;
    SpinLock(const SpinLock &) : SpinLock() {}
    SpinLock &operator=(const SpinLock &) { return *this; }

    void
    lock()
    {
        for (;;) {
            if (!flag_.exchange(true, std::memory_order_acquire))
                return;
            while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
                __builtin_ia32_pause();
#endif
            }
        }
    }

    bool
    try_lock()
    {
        return !flag_.load(std::memory_order_relaxed) &&
               !flag_.exchange(true, std::memory_order_acquire);
    }

    void unlock() { flag_.store(false, std::memory_order_release); }

  private:
    std::atomic<bool> flag_{false};
};

/**
 * RAII guard for SpinLock (std::lock_guard works too; this avoids the
 * <mutex> include in hot headers).
 */
class SpinGuard
{
  public:
    explicit SpinGuard(SpinLock &lock) : lock_(lock) { lock_.lock(); }
    ~SpinGuard() { lock_.unlock(); }
    SpinGuard(const SpinGuard &) = delete;
    SpinGuard &operator=(const SpinGuard &) = delete;

  private:
    SpinLock &lock_;
};

} // namespace saga

#endif // SAGA_PLATFORM_SPINLOCK_H_
