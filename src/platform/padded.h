/**
 * @file
 * Cache-line-padded per-worker accumulators.
 *
 * The kernels' per-worker reduction arrays used to be packed vectors
 * (`std::vector<double> worker_delta(pool.size())`): eight workers'
 * slots share one or two cache lines, so every per-slice write
 * invalidates the line under every other worker — textbook false
 * sharing on the hottest reduction paths. PaddedAccumulator gives each
 * worker its own cache-line-aligned slot, so cross-worker traffic on
 * the accumulator is zero until the quiescent reduction after the pool
 * barrier.
 *
 * saga_lint's padded-worker-accumulators rule bans the packed pattern
 * in src/algo/ — per-worker accumulator arrays must come through here
 * (or carry an explicit alignas(kCacheLineBytes)).
 */

#ifndef SAGA_PLATFORM_PADDED_H_
#define SAGA_PLATFORM_PADDED_H_

#include <cstddef>
#include <vector>

namespace saga {

/** Destructive-interference granule: one x86/ARM cache line. */
inline constexpr std::size_t kCacheLineBytes = 64;

/**
 * A per-worker array of T values, one cache line per slot. T can be a
 * scalar (reduction accumulators) or a container (per-worker output
 * queues) — anything default/copy-constructible. Indexing semantics
 * match a plain vector; only the memory layout differs.
 */
template <typename T>
class PaddedAccumulator
{
  public:
    PaddedAccumulator() = default;

    /** @param workers slot count; every slot starts as a copy of @p init. */
    explicit PaddedAccumulator(std::size_t workers, const T &init = T{})
    {
        assign(workers, init);
    }

    /** Resize to @p workers slots, each reset to a copy of @p init. */
    void
    assign(std::size_t workers, const T &init = T{})
    {
        slots_.assign(workers, Slot{init});
    }

    /** Reset every existing slot to a copy of @p value. */
    void
    fill(const T &value)
    {
        for (Slot &slot : slots_)
            slot.value = value;
    }

    std::size_t size() const { return slots_.size(); }
    bool empty() const { return slots_.empty(); }

    T &operator[](std::size_t w) { return slots_[w].value; }
    const T &operator[](std::size_t w) const { return slots_[w].value; }

    /**
     * Quiescent reduction: fold every slot into @p init with operator+=.
     * Call only after the pool barrier that published the writes.
     */
    T
    sum(T init = T{}) const
    {
        for (const Slot &slot : slots_)
            init += slot.value;
        return init;
    }

  private:
    struct alignas(kCacheLineBytes) Slot
    {
        T value;
    };

    std::vector<Slot> slots_;
};

} // namespace saga

#endif // SAGA_PLATFORM_PADDED_H_
