/**
 * @file
 * Lock-free read-modify-write helpers on plain arrays.
 *
 * The compute engines keep vertex values in plain std::vector storage (so
 * the single-threaded paths stay branch-free) and use std::atomic_ref for
 * the cross-thread updates inside parallel frontiers.
 */

#ifndef SAGA_PLATFORM_ATOMIC_OPS_H_
#define SAGA_PLATFORM_ATOMIC_OPS_H_

#include <atomic>

namespace saga {

/**
 * Atomic load from a plain slot that other threads may update through
 * atomic_ref RMWs (atomicFetchMin/Max/Claim/Store). Mixing a plain load
 * with those RMWs is a data race; every cross-thread read of a shared
 * value array during a parallel phase must go through this helper.
 */
template <typename T>
T
atomicLoad(const T &slot,
           // relaxed: default for intra-phase value reads — the pool
           // barrier, not the load, publishes cross-phase results.
           std::memory_order order = std::memory_order_relaxed)
{
    // atomic_ref<const T> arrives in C++26; the cast is safe because the
    // referenced object itself is non-const (a mutable values array).
    std::atomic_ref<T> ref(const_cast<T &>(slot));
    return ref.load(order);
}

/**
 * Atomic store into a plain slot that other threads may read through
 * atomicLoad during the same parallel phase.
 */
template <typename T>
void
atomicStore(T &slot, T value,
            // relaxed: default for intra-phase value writes — the pool
            // barrier publishes them to the next phase.
            std::memory_order order = std::memory_order_relaxed)
{
    std::atomic_ref<T> ref(slot);
    ref.store(value, order);
}

/**
 * Atomically set *slot = min(*slot, value).
 * @return true if this call lowered the stored value.
 */
template <typename T>
bool
atomicFetchMin(T &slot, T value)
{
    std::atomic_ref<T> ref(slot);
    // relaxed: monotone min over a single slot; the kernels only need
    // atomicity, and the pool barrier publishes the converged value.
    T current = ref.load(std::memory_order_relaxed);
    while (value < current) {
        // relaxed: see monotone-min rationale above.
        if (ref.compare_exchange_weak(current, value,
                                      std::memory_order_relaxed))
            return true;
    }
    return false;
}

/**
 * Atomically set *slot = max(*slot, value).
 * @return true if this call raised the stored value.
 */
template <typename T>
bool
atomicFetchMax(T &slot, T value)
{
    std::atomic_ref<T> ref(slot);
    // relaxed: monotone max over a single slot, as atomicFetchMin.
    T current = ref.load(std::memory_order_relaxed);
    while (value > current) {
        // relaxed: see monotone-max rationale above.
        if (ref.compare_exchange_weak(current, value,
                                      std::memory_order_relaxed))
            return true;
    }
    return false;
}

/** One-shot CAS from @p expected to @p desired (Algorithm 1's CAS). */
template <typename T>
bool
atomicClaim(T &slot, T expected, T desired)
{
    std::atomic_ref<T> ref(slot);
    // relaxed: claim flags carry no payload; winners only need the CAS
    // to be atomic, and the pool barrier orders the phase's results.
    return ref.compare_exchange_strong(expected, desired,
                                       std::memory_order_relaxed);
}

/**
 * Atomically OR @p mask into a plain integer slot. Used for the dense
 * frontier bitmaps, where several workers set bits in the same word
 * during one pull round.
 */
template <typename T>
void
atomicFetchOr(T &slot, T mask)
{
    std::atomic_ref<T> ref(slot);
    // relaxed: bitmap bits are write-once flags within a round; readers
    // only see them after the pool barrier publishes the round.
    ref.fetch_or(mask, std::memory_order_relaxed);
}

} // namespace saga

#endif // SAGA_PLATFORM_ATOMIC_OPS_H_
