/**
 * @file
 * Lock-free read-modify-write helpers on plain arrays.
 *
 * The compute engines keep vertex values in plain std::vector storage (so
 * the single-threaded paths stay branch-free) and use std::atomic_ref for
 * the cross-thread updates inside parallel frontiers.
 */

#ifndef SAGA_PLATFORM_ATOMIC_OPS_H_
#define SAGA_PLATFORM_ATOMIC_OPS_H_

#include <atomic>

namespace saga {

/**
 * Atomically set *slot = min(*slot, value).
 * @return true if this call lowered the stored value.
 */
template <typename T>
bool
atomicFetchMin(T &slot, T value)
{
    std::atomic_ref<T> ref(slot);
    T current = ref.load(std::memory_order_relaxed);
    while (value < current) {
        if (ref.compare_exchange_weak(current, value,
                                      std::memory_order_relaxed))
            return true;
    }
    return false;
}

/**
 * Atomically set *slot = max(*slot, value).
 * @return true if this call raised the stored value.
 */
template <typename T>
bool
atomicFetchMax(T &slot, T value)
{
    std::atomic_ref<T> ref(slot);
    T current = ref.load(std::memory_order_relaxed);
    while (value > current) {
        if (ref.compare_exchange_weak(current, value,
                                      std::memory_order_relaxed))
            return true;
    }
    return false;
}

/** One-shot CAS from @p expected to @p desired (Algorithm 1's CAS). */
template <typename T>
bool
atomicClaim(T &slot, T expected, T desired)
{
    std::atomic_ref<T> ref(slot);
    return ref.compare_exchange_strong(expected, desired,
                                       std::memory_order_relaxed);
}

} // namespace saga

#endif // SAGA_PLATFORM_ATOMIC_OPS_H_
