/**
 * @file
 * ServiceImpl — the store-parameterized implementation behind
 * GraphService, plus the makeService() DsKind dispatch.
 *
 * Epoch-handoff structure (see service.h and docs/SERVING.md):
 *
 *   stepEpoch():
 *     1. drain the admission queue into one EdgeBatch
 *     2. stageBatch() — read-only vs the frozen epoch, so concurrent
 *        snapshot reads keep flowing (this is the overlap the pipelined
 *        driver bought us)
 *     3. publish window 1 (EpochGate): publishBatch() + graph epoch++
 *     4. refresh — BFS + PageRank on the new epoch into back buffers;
 *        still concurrent with reads (compute is read-only on the graph)
 *     5. publish window 2: swap the algorithm front/back buffers and
 *        advance the algorithm epoch
 *
 * Readers therefore block only for the two short windows (a staged
 * apply and two vector swaps), never for staging or compute. Algorithm
 * replies may lag the graph epoch by design; each reply carries the
 * epoch it actually observed.
 *
 * This file is epoch-handoff code: saga_lint's pipeline-no-relaxed rule
 * applies — every atomic here uses acquire/release ordering.
 */

#include "serve/service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "algo/bfs.h"
#include "algo/context.h"
#include "algo/pr.h"
#include "ds/adj_chunked.h"
#include "ds/adj_shared.h"
#include "ds/dah.h"
#include "ds/dyn_graph.h"
#include "ds/stinger.h"
#include "platform/thread_pool.h"
#include "saga/edge_batch.h"
#include "serve/admission_queue.h"
#include "serve/epoch_gate.h"
#include "telemetry/telemetry.h"

namespace saga {
namespace {

template <typename Store>
class ServiceImpl final : public GraphService
{
  public:
    explicit ServiceImpl(const ServeConfig &cfg)
        : cfg_(cfg), pool_(std::max<std::size_t>(1, cfg.threads)),
          graph_(makeGraph(cfg, pool_)), queue_(cfg.queueDepthEdges)
    {}

    ~ServiceImpl() override { ServiceImpl::stop(); }

    void
    bootstrap(const std::vector<Edge> &edges) override
    {
        if (!edges.empty()) {
            const EdgeBatch batch(edges);
            graph_.update(batch, pool_);
        }
        refreshAlgo();
    }

    bool
    offerUpdate(const Edge *edges, std::size_t n) override
    {
        SAGA_COUNT(telemetry::Counter::ServeRequests, 1);
        if (!queue_.offer(edges, n)) {
            SAGA_COUNT(telemetry::Counter::ServeUpdatesShed, 1);
            return false;
        }
        SAGA_COUNT(telemetry::Counter::ServeUpdatesAccepted, 1);
        SAGA_COUNT(telemetry::Counter::ServeUpdateEdges, n);
        return true;
    }

    DegreeReply
    degree(NodeId v) override
    {
        SAGA_COUNT(telemetry::Counter::ServeRequests, 1);
        SAGA_COUNT(telemetry::Counter::ServePointReads, 1);
        EpochGate::ReadGuard guard(gate_);
        DegreeReply r;
        r.epoch = graph_epoch_.load(std::memory_order_acquire);
        if (v < graph_.numNodes()) {
            r.outDegree = graph_.outDegree(v);
            r.inDegree = graph_.inDegree(v);
        }
        return r;
    }

    NeighborsReply
    neighbors(NodeId v) override
    {
        SAGA_COUNT(telemetry::Counter::ServeRequests, 1);
        SAGA_COUNT(telemetry::Counter::ServePointReads, 1);
        EpochGate::ReadGuard guard(gate_);
        NeighborsReply r;
        r.epoch = graph_epoch_.load(std::memory_order_acquire);
        if (v < graph_.numNodes()) {
            r.degree = graph_.outDegree(v);
            r.neighbors.reserve(r.degree);
            graph_.outNeigh(v, [&](const Neighbor &nbr) {
                r.neighbors.push_back(nbr.node);
            });
        }
        return r;
    }

    BfsReply
    bfsDistance(NodeId v) override
    {
        SAGA_COUNT(telemetry::Counter::ServeRequests, 1);
        SAGA_COUNT(telemetry::Counter::ServeAlgoReads, 1);
        EpochGate::ReadGuard guard(gate_);
        BfsReply r;
        r.epoch = algo_epoch_.load(std::memory_order_acquire);
        r.distance = v < bfs_front_.size() ? bfs_front_[v] : Bfs::kInf;
        r.reachable = r.distance != Bfs::kInf;
        return r;
    }

    TopKReply
    pageRankTopK() override
    {
        SAGA_COUNT(telemetry::Counter::ServeRequests, 1);
        SAGA_COUNT(telemetry::Counter::ServeAlgoReads, 1);
        EpochGate::ReadGuard guard(gate_);
        TopKReply r;
        r.epoch = algo_epoch_.load(std::memory_order_acquire);
        r.entries = topk_front_;
        return r;
    }

    ServeStats
    stats() override
    {
        SAGA_COUNT(telemetry::Counter::ServeRequests, 1);
        EpochGate::ReadGuard guard(gate_);
        ServeStats s;
        s.graphEpoch = graph_epoch_.load(std::memory_order_acquire);
        s.algoEpoch = algo_epoch_.load(std::memory_order_acquire);
        s.acceptedEdges = queue_.acceptedEdges();
        s.shedEdges = queue_.shedEdges();
        s.backlogEdges = queue_.backlog();
        s.graphEdges = graph_.numEdges();
        s.graphNodes = graph_.numNodes();
        return s;
    }

    std::uint64_t
    graphEpoch() override
    {
        return graph_epoch_.load(std::memory_order_acquire);
    }

    bool
    stepEpoch() override
    {
        SAGA_PHASE(telemetry::Phase::ServeEpoch);
        EdgeBatch batch;
        queue_.drain(batch, cfg_.epochMaxEdges);
        const bool advanced = !batch.empty();
        if (advanced) {
            {
                SAGA_PHASE(telemetry::Phase::ServeStage);
                graph_.stageBatch(batch, pool_);
            }
            gate_.beginPublish();
            {
                SAGA_PHASE(telemetry::Phase::ServePublish);
                graph_.publishBatch(pool_);
                const std::uint64_t next =
                    graph_epoch_.load(std::memory_order_acquire) + 1;
                graph_epoch_.store(next, std::memory_order_release);
            }
            gate_.endPublish();
            SAGA_COUNT(telemetry::Counter::ServeEpochs, 1);
        }
        if (advanced || algo_epoch_.load(std::memory_order_acquire) !=
                            graph_epoch_.load(std::memory_order_acquire))
            refreshAlgo();
        return advanced;
    }

    void
    start() override
    {
        if (loop_.joinable())
            return;
        loop_stop_.store(false, std::memory_order_release);
        loop_ = std::thread([this] {
            while (!loop_stop_.load(std::memory_order_acquire)) {
                if (!stepEpoch())
                    std::this_thread::sleep_for(std::chrono::microseconds(
                        cfg_.epochIntervalMicros));
            }
        });
    }

    void
    stop() override
    {
        if (!loop_.joinable())
            return;
        loop_stop_.store(true, std::memory_order_release);
        loop_.join();
    }

  private:
    static DynGraph<Store>
    makeGraph(const ServeConfig &cfg, ThreadPool &pool)
    {
        const std::size_t chunks = cfg.chunks ? cfg.chunks : pool.size();
        if constexpr (std::is_same_v<Store, DahStore>) {
            return DynGraph<Store>(cfg.directed, chunks, cfg.dah);
        } else if constexpr (std::is_same_v<Store, HybridStore>) {
            return DynGraph<Store>(cfg.directed, chunks, cfg.hybrid);
        } else if constexpr (std::is_same_v<Store, StingerStore>) {
            return DynGraph<Store>(cfg.directed, cfg.stingerBlock);
        } else if constexpr (std::is_constructible_v<Store, std::size_t>) {
            return DynGraph<Store>(cfg.directed, chunks); // AC
        } else {
            return DynGraph<Store>(cfg.directed); // AS
        }
    }

    /**
     * Recompute BFS + PageRank on the current epoch into the back
     * buffers (concurrent with snapshot reads — compute is read-only on
     * the graph), then swap them in under a publish window.
     */
    void
    refreshAlgo()
    {
        {
            SAGA_PHASE(telemetry::Phase::ServeRefresh);
            AlgContext bfs_ctx;
            bfs_ctx.source = cfg_.bfsSource;
            bfs_ctx.numNodesHint = graph_.numNodes();
            Bfs::computeFs(graph_, pool_, bfs_back_, bfs_ctx);
            AlgContext pr_ctx;
            pr_ctx.numNodesHint = graph_.numNodes();
            pr_ctx.prMaxIters = cfg_.prMaxIters;
            Pr::computeFs(graph_, pool_, pr_back_, pr_ctx);
            buildTopK();
        }
        gate_.beginPublish();
        {
            SAGA_PHASE(telemetry::Phase::ServePublish);
            bfs_front_.swap(bfs_back_);
            topk_front_.swap(topk_back_);
            const std::uint64_t published =
                graph_epoch_.load(std::memory_order_acquire);
            algo_epoch_.store(published, std::memory_order_release);
        }
        gate_.endPublish();
    }

    /** Select the top cfg_.topK ranks from pr_back_ (ties by id). */
    void
    buildTopK()
    {
        const std::size_t n = pr_back_.size();
        const std::size_t k = std::min(cfg_.topK, n);
        std::vector<NodeId> idx(n);
        std::iota(idx.begin(), idx.end(), NodeId{0});
        std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                          [&](NodeId a, NodeId b) {
                              if (pr_back_[a] != pr_back_[b])
                                  return pr_back_[a] > pr_back_[b];
                              return a < b;
                          });
        topk_back_.clear();
        topk_back_.reserve(k);
        for (std::size_t i = 0; i < k; ++i)
            topk_back_.push_back({idx[i], pr_back_[idx[i]]});
    }

    // immutable-after-build: fixed at construction
    ServeConfig cfg_;
    ThreadPool pool_; // writer/refresh pool, driven by the epoch loop
    // guarded-member-allow: mutated only inside EpochGate publish
    // windows; read under ReadGuard (the serving epoch discipline)
    DynGraph<Store> graph_;
    AdmissionQueue queue_;
    EpochGate gate_;
    std::atomic<std::uint64_t> graph_epoch_{0};
    std::atomic<std::uint64_t> algo_epoch_{0};
    // Front buffers are read under ReadGuard and swapped only inside
    // publish windows; back buffers belong to the epoch-loop thread.
    // guarded-member-allow: same publish-window discipline as graph_
    std::vector<Bfs::Value> bfs_front_;
    // guarded-member-allow: epoch-loop-private scratch
    std::vector<Bfs::Value> bfs_back_;
    // guarded-member-allow: same publish-window discipline as graph_
    std::vector<TopKEntry> topk_front_;
    // guarded-member-allow: epoch-loop-private scratch
    std::vector<TopKEntry> topk_back_;
    // guarded-member-allow: epoch-loop-private scratch
    std::vector<Pr::Value> pr_back_;
    std::thread loop_;
    std::atomic<bool> loop_stop_{false};
};

} // namespace

std::unique_ptr<GraphService>
makeService(const ServeConfig &cfg)
{
    switch (cfg.ds) {
      case DsKind::AS:
        return std::make_unique<ServiceImpl<AdjSharedStore>>(cfg);
      case DsKind::AC:
        return std::make_unique<ServiceImpl<AdjChunkedStore>>(cfg);
      case DsKind::Stinger:
        return std::make_unique<ServiceImpl<StingerStore>>(cfg);
      case DsKind::DAH:
        return std::make_unique<ServiceImpl<DahStore>>(cfg);
      case DsKind::Hybrid:
        return std::make_unique<ServiceImpl<HybridStore>>(cfg);
    }
    return nullptr;
}

} // namespace saga
