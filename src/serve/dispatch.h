/**
 * @file
 * Wire-op dispatch: one decoded request frame in, one reply frame out.
 *
 * Kept separate from the socket front-end (tools/saga_serve.cc) so the
 * protocol surface is testable in-process — the unit tests round-trip
 * frames through handleRequest() without opening a socket, and the TCP
 * server and the load generator's TCP mode share exactly this code
 * path. Payload layouts are documented in wire.h / docs/SERVING.md.
 */

#ifndef SAGA_SERVE_DISPATCH_H_
#define SAGA_SERVE_DISPATCH_H_

#include <cstdint>
#include <vector>

#include "saga/types.h"
#include "serve/service.h"
#include "serve/wire.h"

namespace saga {
namespace wire {

/** @return a reply body with only a status byte. */
inline std::vector<std::uint8_t>
statusReply(Status status)
{
    std::vector<std::uint8_t> out;
    putU8(out, static_cast<std::uint8_t>(status));
    return out;
}

/**
 * Execute one request body against @p svc and build the reply body.
 * Malformed input never throws — it yields a kBadRequest reply.
 */
inline std::vector<std::uint8_t>
handleRequest(GraphService &svc, const std::vector<std::uint8_t> &body)
{
    Reader r(body);
    const Op op = static_cast<Op>(r.u8());
    std::vector<std::uint8_t> out;
    switch (op) {
      case Op::kDegree: {
        const NodeId v = r.u32();
        if (!r.ok() || r.remaining() != 0)
            return statusReply(Status::kBadRequest);
        const DegreeReply reply = svc.degree(v);
        putU8(out, static_cast<std::uint8_t>(Status::kOk));
        putU64(out, reply.epoch);
        putU32(out, reply.outDegree);
        putU32(out, reply.inDegree);
        return out;
      }
      case Op::kNeighbors: {
        const NodeId v = r.u32();
        if (!r.ok() || r.remaining() != 0)
            return statusReply(Status::kBadRequest);
        const NeighborsReply reply = svc.neighbors(v);
        putU8(out, static_cast<std::uint8_t>(Status::kOk));
        putU64(out, reply.epoch);
        putU32(out, reply.degree);
        for (const NodeId nbr : reply.neighbors)
            putU32(out, nbr);
        return out;
      }
      case Op::kBfs: {
        const NodeId v = r.u32();
        if (!r.ok() || r.remaining() != 0)
            return statusReply(Status::kBadRequest);
        const BfsReply reply = svc.bfsDistance(v);
        putU8(out, static_cast<std::uint8_t>(Status::kOk));
        putU64(out, reply.epoch);
        putU32(out, reply.distance);
        return out;
      }
      case Op::kTopK: {
        if (!r.ok() || r.remaining() != 0)
            return statusReply(Status::kBadRequest);
        const TopKReply reply = svc.pageRankTopK();
        putU8(out, static_cast<std::uint8_t>(Status::kOk));
        putU64(out, reply.epoch);
        putU32(out, static_cast<std::uint32_t>(reply.entries.size()));
        for (const TopKEntry &entry : reply.entries) {
            putU32(out, entry.node);
            putF64(out, entry.rank);
        }
        return out;
      }
      case Op::kUpdate: {
        std::vector<Edge> edges;
        if (!decodeUpdatePayload(r, edges))
            return statusReply(Status::kBadRequest);
        if (!svc.offerUpdate(edges.data(), edges.size()))
            return statusReply(Status::kBacklog);
        putU8(out, static_cast<std::uint8_t>(Status::kOk));
        putU64(out, svc.graphEpoch());
        return out;
      }
      case Op::kStats: {
        if (!r.ok() || r.remaining() != 0)
            return statusReply(Status::kBadRequest);
        const ServeStats s = svc.stats();
        putU8(out, static_cast<std::uint8_t>(Status::kOk));
        putU64(out, s.graphEpoch);
        putU64(out, s.algoEpoch);
        putU64(out, s.acceptedEdges);
        putU64(out, s.shedEdges);
        putU64(out, s.backlogEdges);
        putU64(out, s.graphEdges);
        putU32(out, s.graphNodes);
        return out;
      }
    }
    return statusReply(Status::kBadRequest);
}

} // namespace wire
} // namespace saga

#endif // SAGA_SERVE_DISPATCH_H_
