/**
 * @file
 * EpochGate — the reader/publisher barrier of the serving layer.
 *
 * The serving loop reuses the pipelined driver's epoch discipline
 * (DESIGN.md §9): queries read the frozen epoch-N snapshot while the
 * writer lane *stages* epoch N+1 read-only, and the store only mutates
 * inside a quiescent publish window. The pipelined driver gets its
 * quiescence for free (the driver thread owns both pools); a server
 * does not — request threads arrive whenever they like. EpochGate is
 * the minimal ingredient that restores the contract: readers pass
 * through freely between publishes, and beginPublish() drains and then
 * excludes them for the (short) window in which publishBatch() and the
 * result-buffer swaps run.
 *
 * One word of state: bit 31 is the publish flag, bits 0..30 count
 * in-flight readers. Readers optimistically increment; if the publish
 * bit was already set they back out and yield until it clears, so a
 * waiting publisher is never starved by a stream of new readers.
 *
 * This file is epoch-handoff code: saga_lint's pipeline-no-relaxed
 * rule applies, so every operation uses acquire/release ordering —
 * publish-window cheapness is not worth reasoning about relaxed here.
 */

#ifndef SAGA_SERVE_EPOCH_GATE_H_
#define SAGA_SERVE_EPOCH_GATE_H_

#include <atomic>
#include <cstdint>
#include <thread>

namespace saga {

class EpochGate
{
  public:
    /** Publish flag; the low 31 bits count in-flight readers. */
    static constexpr std::uint32_t kPublishBit = std::uint32_t{1} << 31;

    /**
     * Enter a read-side critical section; blocks (yielding) while a
     * publish window is open. Pairs with exitRead().
     */
    void
    enterRead()
    {
        for (;;) {
            const std::uint32_t prev =
                state_.fetch_add(1, std::memory_order_acquire);
            if ((prev & kPublishBit) == 0)
                return;
            // A publisher owns the window: undo the optimistic entry
            // and wait for the flag to clear before retrying.
            state_.fetch_sub(1, std::memory_order_release);
            while ((state_.load(std::memory_order_acquire) &
                    kPublishBit) != 0)
                std::this_thread::yield();
        }
    }

    /** Leave the read-side critical section. */
    void
    exitRead()
    {
        state_.fetch_sub(1, std::memory_order_release);
    }

    /**
     * Open the publish window: set the flag (turning away new readers)
     * and wait for in-flight readers to drain. On return the caller has
     * exclusive access until endPublish(). Single publisher only — the
     * serving loop is one thread by construction.
     */
    void
    beginPublish()
    {
        state_.fetch_or(kPublishBit, std::memory_order_acq_rel);
        while ((state_.load(std::memory_order_acquire) &
                ~kPublishBit) != 0)
            std::this_thread::yield();
    }

    /** Close the publish window; blocked readers proceed. */
    void
    endPublish()
    {
        state_.fetch_and(~kPublishBit, std::memory_order_release);
    }

    /** RAII read-side guard. */
    class ReadGuard
    {
      public:
        explicit ReadGuard(EpochGate &gate) : gate_(gate)
        {
            gate_.enterRead();
        }
        ~ReadGuard() { gate_.exitRead(); }
        ReadGuard(const ReadGuard &) = delete;
        ReadGuard &operator=(const ReadGuard &) = delete;

      private:
        EpochGate &gate_;
    };

  private:
    std::atomic<std::uint32_t> state_{0};
};

} // namespace saga

#endif // SAGA_SERVE_EPOCH_GATE_H_
