/**
 * @file
 * AdmissionQueue — bounded edge-update buffer with load shedding.
 *
 * The write path of the serving layer is admission-controlled: producers
 * offer() edge arrays and the epoch loop drain()s them into the next
 * staged batch. The queue holds at most @p depth edges; an offer that
 * would exceed the depth is rejected *whole* (all-or-nothing), which is
 * the fast-reject backlog error the wire protocol surfaces to clients.
 * Shedding at the door keeps accepted-write latency bounded: once the
 * writer lane falls behind, waiting updates would otherwise queue
 * without limit and every SLO would drown in queueing delay
 * (docs/SERVING.md covers the rationale).
 *
 * Concurrency: many producers, one consumer (the epoch loop). Critical
 * sections are a bounds check plus a memcpy-sized append, so the store
 * layer's SpinLock is the right tool (src/ bans std::mutex; see
 * docs/STATIC_ANALYSIS.md). FIFO order is preserved — edges are applied
 * in admission order, which the snapshot-consistency tests rely on.
 */

#ifndef SAGA_SERVE_ADMISSION_QUEUE_H_
#define SAGA_SERVE_ADMISSION_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "platform/spinlock.h"
#include "platform/thread_annotations.h"
#include "saga/edge_batch.h"
#include "saga/types.h"

namespace saga {

class AdmissionQueue
{
  public:
    /** @param depthEdges maximum queued (admitted, undrained) edges. */
    explicit AdmissionQueue(std::size_t depthEdges) : depth_(depthEdges)
    {}

    /**
     * Offer @p n edges for admission. All-or-nothing: either the whole
     * array is appended (true) or the queue is over depth and nothing
     * is taken (false — the caller reports backlog to the client).
     */
    bool
    offer(const Edge *edges, std::size_t n)
    {
        SpinGuard guard(lock_);
        if (pending_.size() - head_ + n > depth_) {
            shed_ += n;
            return false;
        }
        pending_.insert(pending_.end(), edges, edges + n);
        accepted_ += n;
        return true;
    }

    /**
     * Consumer side: move up to @p maxEdges admitted edges (FIFO) into
     * @p out. @return the number of edges moved.
     *
     * The consumed prefix [0, head_) is reclaimed eagerly: cleared when
     * the queue empties, compacted away once it reaches depth_ edges.
     * Under sustained backlog — the steady state shedding is designed
     * for, where the queue never fully drains — the buffer would
     * otherwise keep its dead prefix forever and grow without bound.
     * The compaction memmove shifts at most depth_ live edges per
     * depth_ consumed, so it is O(1) amortized per edge and caps the
     * buffer at 2 * depth_ edges.
     */
    std::size_t
    drain(EdgeBatch &out, std::size_t maxEdges)
    {
        SpinGuard guard(lock_);
        const std::size_t avail = pending_.size() - head_;
        const std::size_t take = avail < maxEdges ? avail : maxEdges;
        for (std::size_t i = 0; i < take; ++i)
            out.push_back(pending_[head_ + i]);
        head_ += take;
        if (head_ == pending_.size()) {
            pending_.clear();
            head_ = 0;
        } else if (head_ >= depth_) {
            pending_.erase(pending_.begin(),
                           pending_.begin() +
                               static_cast<std::ptrdiff_t>(head_));
            head_ = 0;
        }
        return take;
    }

    /** Currently queued (admitted, undrained) edges. */
    std::size_t
    backlog() const
    {
        SpinGuard guard(lock_);
        return pending_.size() - head_;
    }

    /** Lifetime totals (edges, not calls). */
    std::uint64_t
    acceptedEdges() const
    {
        SpinGuard guard(lock_);
        return accepted_;
    }
    std::uint64_t
    shedEdges() const
    {
        SpinGuard guard(lock_);
        return shed_;
    }

    std::size_t depth() const { return depth_; }

    /**
     * Live plus not-yet-reclaimed edges in the internal buffer — the
     * quantity the drain()-side compaction bounds at 2 * depth().
     * Exposed for the leak-bound tests; not a service statistic.
     */
    std::size_t
    bufferedEdges() const
    {
        SpinGuard guard(lock_);
        return pending_.size();
    }

  private:
    // immutable-after-build: fixed at construction
    std::size_t depth_;
    mutable SpinLock lock_;
    std::vector<Edge> pending_ SAGA_GUARDED_BY(lock_);
    std::size_t head_ SAGA_GUARDED_BY(lock_) = 0;
    std::uint64_t accepted_ SAGA_GUARDED_BY(lock_) = 0;
    std::uint64_t shed_ SAGA_GUARDED_BY(lock_) = 0;
};

} // namespace saga

#endif // SAGA_SERVE_ADMISSION_QUEUE_H_
