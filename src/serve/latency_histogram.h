/**
 * @file
 * HDR-style log-linear latency histogram for the serving layer.
 *
 * Request latencies span five orders of magnitude (a sub-microsecond
 * degree probe vs a multi-millisecond PageRank refresh stall), so a
 * fixed-width histogram either blows up in size or loses the tail.
 * The classic answer (HdrHistogram) is log-linear bucketing: values
 * below 2^(P+1) get exact one-nanosecond buckets, and every octave
 * above that is split into 2^P linear sub-buckets, bounding the
 * relative quantization error at 2^-P everywhere. With P = 7 the
 * error bound is < 0.8% and the whole table covers the full uint64
 * nanosecond range in 7424 buckets (~58 KiB).
 *
 * Concurrency contract: *none*. Each load-generator or connection
 * thread owns a private histogram and records without synchronization;
 * merge() folds them together after the run, mirroring the telemetry
 * layer's per-thread-slots + quiescent-aggregation discipline
 * (DESIGN.md §8). There are deliberately no atomics in this file.
 */

#ifndef SAGA_SERVE_LATENCY_HISTOGRAM_H_
#define SAGA_SERVE_LATENCY_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace saga {

class LatencyHistogram
{
  public:
    /** Sub-bucket precision: 2^-kPrecisionBits relative error bound. */
    static constexpr unsigned kPrecisionBits = 7;
    /** Sub-buckets per octave above the linear region. */
    static constexpr std::uint64_t kSubBuckets =
        std::uint64_t{1} << kPrecisionBits;
    /**
     * Bucket count covering every uint64 value: the linear region holds
     * indices [0, 2*kSubBuckets) and each octave m in [kPrecisionBits+1,
     * 63] appends kSubBuckets more.
     */
    static constexpr std::size_t kNumBuckets =
        static_cast<std::size_t>((64 - kPrecisionBits) * kSubBuckets +
                                 kSubBuckets);

    /** Bucket index for @p value (exact below 2^(P+1), log-linear above). */
    static constexpr std::size_t
    bucketIndex(std::uint64_t value)
    {
        if (value < 2 * kSubBuckets)
            return static_cast<std::size_t>(value);
        const unsigned m = std::bit_width(value) - 1; // 2^m <= value
        const unsigned shift = m - kPrecisionBits;
        return static_cast<std::size_t>(
            static_cast<std::uint64_t>(shift) * kSubBuckets +
            (value >> shift));
    }

    /**
     * Largest value mapping to bucket @p index — what percentile()
     * reports, so quantiles are conservative (never under-report).
     */
    static constexpr std::uint64_t
    bucketUpperBound(std::size_t index)
    {
        const std::uint64_t i = static_cast<std::uint64_t>(index);
        if (i < 2 * kSubBuckets)
            return i;
        const std::uint64_t shift = i / kSubBuckets - 1;
        const std::uint64_t sub = i % kSubBuckets + kSubBuckets;
        return ((sub + 1) << shift) - 1;
    }

    /** Record one latency sample of @p ns nanoseconds. */
    void
    record(std::uint64_t ns)
    {
        ++buckets_[bucketIndex(ns)];
        ++count_;
        sumNs_ += ns;
        maxNs_ = std::max(maxNs_, ns);
        minNs_ = count_ == 1 ? ns : std::min(minNs_, ns);
    }

    /** Fold @p other into this histogram (post-run aggregation). */
    void
    merge(const LatencyHistogram &other)
    {
        for (std::size_t i = 0; i < kNumBuckets; ++i)
            buckets_[i] += other.buckets_[i];
        if (other.count_ > 0) {
            minNs_ = count_ == 0 ? other.minNs_
                                 : std::min(minNs_, other.minNs_);
            count_ += other.count_;
            sumNs_ += other.sumNs_;
            maxNs_ = std::max(maxNs_, other.maxNs_);
        }
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sumNs() const { return sumNs_; }
    /** Exact (not bucketed) extremes of everything recorded. */
    std::uint64_t maxNs() const { return maxNs_; }
    std::uint64_t minNs() const { return count_ == 0 ? 0 : minNs_; }

    double
    meanNs() const
    {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sumNs_) /
                                 static_cast<double>(count_);
    }

    /**
     * Value at percentile @p p in [0, 100]: the upper bound of the
     * bucket holding the ceil(p/100 * count)-th smallest sample, exact
     * for the recorded max (p >= 100) and for values in the linear
     * region, within 2^-kPrecisionBits above it.
     */
    std::uint64_t
    percentile(double p) const
    {
        if (count_ == 0)
            return 0;
        if (p >= 100.0)
            return maxNs_;
        const double want = p / 100.0 * static_cast<double>(count_);
        std::uint64_t rank = static_cast<std::uint64_t>(want);
        if (static_cast<double>(rank) < want)
            ++rank;
        rank = std::max<std::uint64_t>(rank, 1);
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < kNumBuckets; ++i) {
            seen += buckets_[i];
            if (seen >= rank)
                return std::min(bucketUpperBound(i), maxNs_);
        }
        return maxNs_; // unreachable: seen reaches count_
    }

  private:
    std::array<std::uint64_t, kNumBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sumNs_ = 0;
    std::uint64_t maxNs_ = 0;
    std::uint64_t minNs_ = 0;
};

} // namespace saga

#endif // SAGA_SERVE_LATENCY_HISTOGRAM_H_
