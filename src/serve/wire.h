/**
 * @file
 * The saga_serve wire protocol: length-prefixed binary frames.
 *
 * Framing (all integers little-endian):
 *
 *   request  = [u32 bodyLen][u8 op][payload...]
 *   reply    = [u32 bodyLen][u8 status][payload...]
 *
 * Ops and payloads (docs/SERVING.md holds the authoritative table):
 *
 *   Degree(1)    req: u32 node        ok: u64 epoch, u32 out, u32 in
 *   Neighbors(2) req: u32 node        ok: u64 epoch, u32 deg, deg*u32
 *   Bfs(3)       req: u32 node        ok: u64 epoch, u32 distance
 *   TopK(4)      req: (empty)         ok: u64 epoch, u32 k,
 *                                         k*(u32 node, f64 rank)
 *   Update(5)    req: u32 n, n*(u32 src, u32 dst, f32 w)
 *                                     ok: u64 epoch
 *   Stats(6)     req: (empty)         ok: u64 graphEpoch, u64 algoEpoch,
 *                                         u64 accepted, u64 shed,
 *                                         u64 backlog, u64 graphEdges,
 *                                         u32 graphNodes
 *
 * status: Ok(0) carries the op's payload; Backlog(1) is the admission
 * fast-reject (empty payload); BadRequest(2) covers malformed frames
 * and unknown ops (empty payload).
 *
 * This header is serialization only — byte building and bounds-checked
 * parsing over std::vector buffers — plus two fd helpers (readFrame /
 * writeFrame) shared by the server binary and the load generator's TCP
 * mode. No sockets are opened here.
 */

#ifndef SAGA_SERVE_WIRE_H_
#define SAGA_SERVE_WIRE_H_

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "saga/types.h"

namespace saga {
namespace wire {

enum class Op : std::uint8_t {
    kDegree = 1,
    kNeighbors = 2,
    kBfs = 3,
    kTopK = 4,
    kUpdate = 5,
    kStats = 6,
};

enum class Status : std::uint8_t {
    kOk = 0,
    kBacklog = 1,
    kBadRequest = 2,
};

/** Sanity cap on one frame body; larger prefixes are protocol errors. */
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 24;

// --- byte building ------------------------------------------------------

inline void
putU8(std::vector<std::uint8_t> &buf, std::uint8_t v)
{
    buf.push_back(v);
}

inline void
putU32(std::vector<std::uint8_t> &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void
putU64(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void
putF32(std::vector<std::uint8_t> &buf, float v)
{
    std::uint32_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    putU32(buf, bits);
}

inline void
putF64(std::vector<std::uint8_t> &buf, double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(buf, bits);
}

// --- bounds-checked parsing ---------------------------------------------

/**
 * Cursor over a received frame body. Every read checks remaining bytes;
 * the first short read latches ok() false and zero-fills, so parsers
 * can decode unconditionally and test ok() once at the end.
 */
class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {}
    explicit Reader(const std::vector<std::uint8_t> &buf)
        : Reader(buf.data(), buf.size())
    {}

    bool ok() const { return ok_; }
    std::size_t remaining() const { return size_ - pos_; }

    std::uint8_t
    u8()
    {
        std::uint8_t v = 0;
        take(&v, 1);
        return v;
    }

    std::uint32_t
    u32()
    {
        std::uint8_t raw[4] = {};
        take(raw, 4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(raw[i]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint8_t raw[8] = {};
        take(raw, 8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(raw[i]) << (8 * i);
        return v;
    }

    float
    f32()
    {
        const std::uint32_t bits = u32();
        float v = 0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v = 0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

  private:
    void
    take(std::uint8_t *out, std::size_t n)
    {
        if (!ok_ || size_ - pos_ < n) {
            ok_ = false;
            return;
        }
        std::memcpy(out, data_ + pos_, n);
        pos_ += n;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

// --- request/reply encoders ---------------------------------------------

/** Body of a single-node request (Degree / Neighbors / Bfs). */
inline std::vector<std::uint8_t>
encodeNodeRequest(Op op, NodeId node)
{
    std::vector<std::uint8_t> body;
    putU8(body, static_cast<std::uint8_t>(op));
    putU32(body, node);
    return body;
}

/** Body of a payload-free request (TopK / Stats). */
inline std::vector<std::uint8_t>
encodeEmptyRequest(Op op)
{
    std::vector<std::uint8_t> body;
    putU8(body, static_cast<std::uint8_t>(op));
    return body;
}

/** Body of an edge-update request. */
inline std::vector<std::uint8_t>
encodeUpdateRequest(const Edge *edges, std::size_t n)
{
    std::vector<std::uint8_t> body;
    body.reserve(5 + 12 * n);
    putU8(body, static_cast<std::uint8_t>(Op::kUpdate));
    putU32(body, static_cast<std::uint32_t>(n));
    for (std::size_t i = 0; i < n; ++i) {
        putU32(body, edges[i].src);
        putU32(body, edges[i].dst);
        putF32(body, edges[i].weight);
    }
    return body;
}

/** Decode an update request's edge list (after the op byte). */
inline bool
decodeUpdatePayload(Reader &r, std::vector<Edge> &out)
{
    const std::uint32_t n = r.u32();
    if (!r.ok() || r.remaining() != static_cast<std::size_t>(n) * 12)
        return false;
    out.clear();
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        Edge e;
        e.src = r.u32();
        e.dst = r.u32();
        e.weight = r.f32();
        out.push_back(e);
    }
    return r.ok();
}

// --- fd framing ---------------------------------------------------------

/**
 * Read one length-prefixed frame body from @p fd into @p body.
 * @return true on success; false on EOF, error, or an oversized prefix.
 */
inline bool
readFrame(int fd, std::vector<std::uint8_t> &body)
{
    std::uint8_t prefix[4];
    std::size_t got = 0;
    while (got < sizeof(prefix)) {
        const ssize_t n = ::read(fd, prefix + got, sizeof(prefix) - got);
        if (n <= 0)
            return false;
        got += static_cast<std::size_t>(n);
    }
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
    if (len == 0 || len > kMaxFrameBytes)
        return false;
    body.resize(len);
    got = 0;
    while (got < len) {
        const ssize_t n = ::read(fd, body.data() + got, len - got);
        if (n <= 0)
            return false;
        got += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Write @p body to @p fd as one length-prefixed frame.
 *
 * Sockets are written with MSG_NOSIGNAL so a peer that disconnects
 * mid-reply surfaces as EPIPE (return false — a normal disconnect)
 * instead of raising SIGPIPE, whose default action would kill the
 * whole server. Non-socket fds (the tests frame over plain pipes)
 * fall back to ::write on ENOTSOCK.
 */
inline bool
writeFrame(int fd, const std::vector<std::uint8_t> &body)
{
    std::vector<std::uint8_t> framed;
    framed.reserve(4 + body.size());
    putU32(framed, static_cast<std::uint32_t>(body.size()));
    framed.insert(framed.end(), body.begin(), body.end());
    std::size_t sent = 0;
    while (sent < framed.size()) {
        ssize_t n = ::send(fd, framed.data() + sent,
                           framed.size() - sent, MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK)
            n = ::write(fd, framed.data() + sent, framed.size() - sent);
        if (n <= 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace wire
} // namespace saga

#endif // SAGA_SERVE_WIRE_H_
