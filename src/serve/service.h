/**
 * @file
 * GraphService — the in-process request API of saga_serve.
 *
 * An always-on streaming-graph service: producers push edge updates,
 * clients issue point reads (degree, neighbor lists) and algorithm
 * reads (BFS distance from a pinned source, PageRank top-k) at any
 * time. The implementation turns the paper's offline update/compute
 * alternation into a serving loop built from the pipelined driver's
 * parts (DESIGN.md §9):
 *
 *   - reads execute against the frozen epoch-N snapshot,
 *   - a bounded AdmissionQueue admits (or sheds) incoming updates,
 *   - the epoch loop drains the queue, *stages* the batch read-only
 *     against epoch N (DynGraph::stageBatch, concurrent with reads),
 *     publishes it inside an EpochGate window, then refreshes the
 *     algorithm results and swaps them in inside a second window.
 *
 * Every reply carries the epoch it observed. Point reads report the
 * graph epoch; algorithm reads report the (possibly lagging) epoch
 * their values were computed on. docs/SERVING.md states the full
 * consistency contract.
 *
 * The interface is type-erased over the four stores (same shape as
 * StreamingRunner / makeRunner); makeService() in service.cc does the
 * DsKind dispatch.
 */

#ifndef SAGA_SERVE_SERVICE_H_
#define SAGA_SERVE_SERVICE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "ds/dah.h"
#include "ds/hybrid.h"
#include "ds/stinger.h"
#include "saga/driver.h"
#include "saga/types.h"

namespace saga {

/** Everything needed to stand up one service instance. */
struct ServeConfig
{
    DsKind ds = DsKind::AS;
    bool directed = true;
    /** Writer/refresh pool width (the epoch loop's workers); >= 1. */
    std::size_t threads = 1;
    /** Chunks for AC/DAH/Hybrid; 0 = same as the pool width. */
    std::size_t chunks = 0;
    std::uint32_t stingerBlock = StingerStore::kBlockCapacity;
    DahConfig dah{};
    HybridConfig hybrid{};
    /** Pinned BFS source vertex for bfsDistance() queries. */
    NodeId bfsSource = 0;
    /** Entries returned by pageRankTopK(). */
    std::size_t topK = 10;
    /** PageRank iteration budget per refresh (freshness vs cost). */
    std::uint32_t prMaxIters = 5;
    /** Admission-queue depth in edges; offers beyond it are shed. */
    std::size_t queueDepthEdges = std::size_t{1} << 16;
    /** Maximum edges drained into one epoch's batch. */
    std::size_t epochMaxEdges = std::size_t{1} << 14;
    /** Idle sleep of the background epoch loop between polls. */
    std::uint32_t epochIntervalMicros = 1000;
};

struct DegreeReply
{
    std::uint64_t epoch = 0;
    std::uint32_t outDegree = 0;
    std::uint32_t inDegree = 0;
};

struct NeighborsReply
{
    std::uint64_t epoch = 0;
    /** Degree read under the same snapshot guard as the list — the
        consistency check is degree == neighbors.size(). */
    std::uint32_t degree = 0;
    std::vector<NodeId> neighbors;
};

struct BfsReply
{
    std::uint64_t epoch = 0;
    /** Hops from the pinned source; Bfs::kInf when unreachable. */
    std::uint32_t distance = 0;
    bool reachable = false;
};

struct TopKEntry
{
    NodeId node = 0;
    double rank = 0;
};

struct TopKReply
{
    std::uint64_t epoch = 0;
    std::vector<TopKEntry> entries;
};

/** One consistent stats snapshot (the Stats wire op serializes this). */
struct ServeStats
{
    std::uint64_t graphEpoch = 0;
    std::uint64_t algoEpoch = 0;
    std::uint64_t acceptedEdges = 0;
    std::uint64_t shedEdges = 0;
    std::uint64_t backlogEdges = 0;
    std::uint64_t graphEdges = 0;
    NodeId graphNodes = 0;
};

class GraphService
{
  public:
    virtual ~GraphService() = default;

    /**
     * Load an initial graph and compute epoch-0 algorithm results.
     * Call before start() / before any concurrent requests.
     */
    virtual void bootstrap(const std::vector<Edge> &edges) = 0;

    /**
     * Offer @p n edges to the admission queue. @return false if the
     * queue is over depth (the update was shed — nothing was taken).
     */
    virtual bool offerUpdate(const Edge *edges, std::size_t n) = 0;

    // Reads: safe from any thread, any time after bootstrap().
    virtual DegreeReply degree(NodeId v) = 0;
    virtual NeighborsReply neighbors(NodeId v) = 0;
    virtual BfsReply bfsDistance(NodeId v) = 0;
    virtual TopKReply pageRankTopK() = 0;
    virtual ServeStats stats() = 0;
    virtual std::uint64_t graphEpoch() = 0;

    /**
     * Run one epoch iteration synchronously: drain + stage + publish +
     * refresh. @return true if a graph epoch was published. Exposed so
     * tests and the e2e oracle can drive epochs deterministically; the
     * background loop (start()) calls exactly this.
     */
    virtual bool stepEpoch() = 0;

    /** Start / join the background epoch-loop thread. */
    virtual void start() = 0;
    virtual void stop() = 0;
};

/** Build a service for @p cfg (DsKind dispatch in service.cc). */
std::unique_ptr<GraphService> makeService(const ServeConfig &cfg);

} // namespace saga

#endif // SAGA_SERVE_SERVICE_H_
