/**
 * @file
 * Hybrid — per-vertex adaptive tiered store (GraphTango-style; ROADMAP 4).
 *
 * The paper's four stores each fix one representation for every vertex
 * and pay for it somewhere: AS/AC scan O(degree) per duplicate check and
 * chase a pointer per row, Stinger chases block lists, DAH pays hashing
 * and meta-op costs even for degree-1 vertices. On power-law streams most
 * vertices are tiny and a few are huge, so this store picks the format
 * *per vertex*, by current degree, with one-way promotion:
 *
 *  - **T0 inline** — the adjacency lives directly inside the vertex's
 *    64-byte slot (up to 7 edges). Degree lookups, duplicate checks and
 *    traversal touch exactly one cache line, no pointer chase at all.
 *  - **T1 linear** — a power-of-two, cache-line-multiple Neighbor array
 *    from a per-chunk slab allocator, doubled amortizedly. Duplicate
 *    checks are a bounded linear scan; traversal is one contiguous run.
 *  - **T2 hash** — a Robin-Hood open-addressing set with a bounded probe
 *    sequence length (PSL) for hub vertices: duplicate detection is O(1)
 *    probes instead of DAH's scan-then-promote, and iteration coalesces
 *    occupied clusters into contiguous runs.
 *
 * The degree() meta-op every streaming kernel leans on is a single header
 * read — the slot stores it — which is exactly the cost DAH cannot avoid
 * paying via table lookups.
 *
 * Multithreading is chunked like AC/DAH: worker w exclusively owns its
 * chunks, so slots, slabs and hub tables are all lock-free single-writer.
 *
 * Concurrency contract (machine-checked under Clang -Wthread-safety):
 * insertOwned()/appendNewOwned() require the ChunkOwnership phantom
 * capability — callers must declare via declareChunksOwned() that they
 * are the worker the ownerOf() mapping assigned (or that the store is
 * quiescent). See platform/chunk_ownership.h.
 */

#ifndef SAGA_DS_HYBRID_H_
#define SAGA_DS_HYBRID_H_

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#include <sys/prctl.h>
#endif

#include "ds/hash_util.h"
#include "perfmodel/trace.h"
#include "platform/chunk_ownership.h"
#include "platform/thread_annotations.h"
#include "platform/thread_pool.h"
#include "saga/edge_batch.h"
#include "saga/partitioned_batch.h"
#include "saga/types.h"
#include "telemetry/telemetry.h"

namespace saga {

/** Tuning knobs for the hybrid store (exposed for the ablation benches). */
struct HybridConfig
{
    /**
     * Largest T1 capacity: a vertex whose linear array is full at this
     * capacity promotes to a T2 hash table on its next new edge. Rounded
     * up to a power of two ≥ 16 (the slab size classes are powers of two).
     */
    std::uint32_t t1MaxDegree = 128;
    /**
     * Robin-Hood probe-sequence-length bound for T2 hub tables. A probe
     * that would exceed it triggers an amortized grow-and-rehash, so both
     * lookups and duplicate checks are O(pslLimit) worst case. Clamped to
     * [1, 200] (PSLs are stored as bytes).
     */
    std::uint32_t pslLimit = 24;
};

/**
 * Per-chunk slab allocator for T1 linear arrays. Blocks are power-of-two
 * Neighbor counts (16, 32, ..., t1 cap), carved 64-byte-aligned out of
 * 256 KiB slabs, with a per-size-class free list so a vertex growing
 * 16 → 32 recycles its old block for the next promotion. Single-owner
 * (one chunk, one worker); never shrinks — freed blocks are reused, the
 * slabs themselves live as long as the chunk.
 */
class HybridSlabAllocator
{
  public:
    /** Smallest block handed out (> the 7-edge inline tier). */
    static constexpr std::uint32_t kMinBlock = 16;

    /** @return a 64-byte-aligned block of @p cap Neighbors (cap must be a
        power of two ≥ kMinBlock). */
    Neighbor *
    allocate(std::uint32_t cap)
    {
        const std::size_t cls = classOf(cap);
        if (cls < free_.size() && !free_[cls].empty()) {
            Neighbor *block = free_[cls].back();
            free_[cls].pop_back();
            return block;
        }
        if (bump_left_ < cap)
            refill(cap);
        Neighbor *block = bump_;
        bump_ += cap;
        bump_left_ -= cap;
        return block;
    }

    /** Return a block from allocate() to its size class's free list. */
    void
    release(Neighbor *block, std::uint32_t cap)
    {
        const std::size_t cls = classOf(cap);
        if (free_.size() <= cls)
            free_.resize(cls + 1);
        free_[cls].push_back(block);
    }

    /** Slabs allocated so far (tests assert reuse keeps this flat). */
    std::size_t numSlabs() const { return slabs_.size(); }

  private:
    /** Neighbors per slab: 32768 × 8 B = 256 KiB. */
    static constexpr std::size_t kSlabNeighbors = std::size_t(1) << 15;
    /** Neighbors per cache line (64 B / 8 B). */
    static constexpr std::size_t kLineNeighbors = 64 / sizeof(Neighbor);

    static std::size_t
    classOf(std::uint32_t cap)
    {
        std::size_t cls = 0;
        for (std::uint32_t c = kMinBlock; c < cap; c *= 2)
            ++cls;
        return cls;
    }

    void
    refill(std::uint32_t cap)
    {
        // A slab always fits the largest class (t1 caps are bounded well
        // below kSlabNeighbors); oversized requests get a dedicated slab.
        const std::size_t want =
            std::max<std::size_t>(kSlabNeighbors, cap) + kLineNeighbors;
        // hotpath-allow: one 256 KiB slab per ~32k edges, amortized
        slabs_.push_back(std::make_unique<Neighbor[]>(want));
        Neighbor *base = slabs_.back().get();
        // Round up to the cache line; blocks are line multiples, so every
        // block carved after this stays line-aligned.
        const std::uintptr_t addr = reinterpret_cast<std::uintptr_t>(base);
        const std::uintptr_t aligned = (addr + 63) & ~std::uintptr_t(63);
        bump_ = base + (aligned - addr) / sizeof(Neighbor);
        bump_left_ = want - kLineNeighbors;
    }

    std::vector<std::unique_ptr<Neighbor[]>> slabs_;
    Neighbor *bump_ = nullptr;
    std::size_t bump_left_ = 0;
    std::vector<std::vector<Neighbor *>> free_;
};

/**
 * Neighbor set for one T2 hub vertex, split into two halves so ingest
 * and traversal each get their ideal layout: a Robin-Hood
 * open-addressing *index* (node → position, bounded probe sequence
 * length) answers the duplicate check in O(limit) worst case, while the
 * neighbors themselves live in a dense append-only array that pull
 * loops scan as one contiguous run — an open-addressed table at a
 * 0.25–0.7 load factor degenerates into one-or-two-slot runs with a
 * callback each, which is what made hash-only hubs lose compute ground.
 * Single-threaded (chunk-owned). PSLs are stored per index slot (home
 * slot = 1, 0 = empty), kept ≤ the configured limit by growing the
 * index whenever an insert's probe would breach it.
 */
class HybridHubTable
{
  public:
    explicit HybridHubTable(std::size_t initial_capacity,
                            std::uint32_t psl_limit)
        : psl_limit_(std::min<std::uint32_t>(
              std::max<std::uint32_t>(psl_limit, 1), 200))
    {
        // Doubling from a power-of-two seed keeps capacity a power of
        // two, which the `& (capacity - 1)` probe masks rely on.
        static_assert((kMinCapacity & (kMinCapacity - 1)) == 0,
                      "hub table capacity must be a power of two");
        std::size_t cap = kMinCapacity;
        while (cap < initial_capacity)
            cap *= 2;
        slots_.assign(cap, IndexSlot{kInvalidNode, 0});
        psl_.assign(cap, 0);
        dense_.reserve(cap / 2);
    }

    std::uint32_t size() const { return size_; }
    std::size_t capacity() const { return slots_.size(); }
    /** Longest probe sequence this table ever placed (≤ the PSL limit). */
    std::uint32_t maxPsl() const { return max_psl_; }

    /** Insert if absent (duplicates keep the min weight).
        @return true if a new edge was added. */
    bool
    insertUnique(NodeId dst, Weight weight)
    {
        if ((size_ + 1) * 10 >= slots_.size() * 7)
            grow();
        IndexSlot entry{dst, static_cast<std::uint32_t>(dense_.size())};
        std::uint32_t dist = 1;
        bool carrying_new = true; // entry is still the caller's edge
        std::size_t i = hashNode(entry.node) & (slots_.size() - 1);
        for (;;) {
            IndexSlot &slot = slots_[i];
            perf::touch(&slot, sizeof(IndexSlot));
            if (psl_[i] == 0) {
                slot = entry;
                perf::touchWrite(&slot, sizeof(IndexSlot));
                psl_[i] = static_cast<std::uint8_t>(dist);
                max_psl_ = std::max(max_psl_, dist);
                ++size_;
                // hotpath-allow: amortized doubling append of the dense row
                dense_.push_back(Neighbor{dst, weight});
                perf::touchWrite(&dense_.back(), sizeof(Neighbor));
                return true;
            }
            if (carrying_new && slot.node == entry.node) {
                Neighbor &n = dense_[slot.idx];
                if (weight < n.weight)
                    n.weight = weight; // duplicates keep the min
                perf::touchWrite(&n, sizeof(Neighbor));
                return false;
            }
            if (psl_[i] < dist) {
                // Robin Hood: displace the richer resident; from here on
                // the caller's edge is placed, so no more dup checks.
                std::swap(slot, entry);
                perf::touchWrite(&slot, sizeof(IndexSlot));
                const std::uint32_t resident = psl_[i];
                psl_[i] = static_cast<std::uint8_t>(dist);
                max_psl_ = std::max(max_psl_, dist);
                dist = resident;
                carrying_new = false;
            }
            ++dist;
            i = (i + 1) & (slots_.size() - 1);
            if (dist > psl_limit_) {
                // Bounded-PSL discipline: never let a cluster exceed the
                // limit — grow, then re-place the carried entry.
                grow();
                dist = 1;
                i = hashNode(entry.node) & (slots_.size() - 1);
            }
        }
    }

    /** @return the dense entry of @p dst, or nullptr. O(pslLimit). */
    const Neighbor *
    find(NodeId dst) const
    {
        std::size_t i = hashNode(dst) & (slots_.size() - 1);
        std::uint32_t dist = 1;
        for (;;) {
            perf::touch(&slots_[i], sizeof(IndexSlot));
            if (psl_[i] == 0 || psl_[i] < dist)
                return nullptr; // passed where dst would live
            if (slots_[i].node == dst)
                return &dense_[slots_[i].idx];
            ++dist;
            i = (i + 1) & (slots_.size() - 1);
        }
    }

    template <typename Fn>
    void
    forAll(Fn &&fn) const
    {
        perf::touch(dense_.data(), static_cast<std::uint32_t>(
                                       dense_.size() * sizeof(Neighbor)));
        for (const Neighbor &n : dense_)
            fn(n);
    }

    /**
     * Visit the neighbors as contiguous runs: fn(const Neighbor *run,
     * std::uint32_t len) -> bool, return false to stop. The dense array
     * is one run, so pull loops scan a hub exactly like a T1 row.
     */
    template <typename Fn>
    void
    forRuns(Fn &&fn) const
    {
        if (dense_.empty())
            return;
        perf::touch(dense_.data(), static_cast<std::uint32_t>(
                                       dense_.size() * sizeof(Neighbor)));
        fn(dense_.data(), static_cast<std::uint32_t>(dense_.size()));
    }

  private:
    static constexpr std::size_t kMinCapacity = 64;

    /** One index slot: the neighbor id and its position in dense_. */
    struct IndexSlot
    {
        NodeId node;
        std::uint32_t idx;
    };

    void
    grow()
    {
        std::size_t cap = slots_.size() * 2;
        for (;;) {
            // hotpath-allow: amortized doubling rehash of one hub index
            std::vector<IndexSlot> slots(cap, IndexSlot{kInvalidNode, 0});
            std::vector<std::uint8_t> psl(cap, 0);
            std::uint32_t deepest = 0;
            if (rehashInto(slots, psl, deepest)) {
                slots_ = std::move(slots);
                psl_ = std::move(psl);
                max_psl_ = std::max(max_psl_, deepest);
                return;
            }
            cap *= 2; // a cluster still breached the PSL limit
        }
    }

    /** Re-place every occupied slot into @p slots; false on PSL breach.
        The dense array is untouched — indices stay valid by design. */
    bool
    rehashInto(std::vector<IndexSlot> &slots,
               std::vector<std::uint8_t> &psl, std::uint32_t &deepest) const
    {
        const std::size_t mask = slots.size() - 1;
        for (std::size_t s = 0; s < slots_.size(); ++s) {
            if (psl_[s] == 0)
                continue;
            IndexSlot entry = slots_[s];
            std::uint32_t dist = 1;
            std::size_t i = hashNode(entry.node) & mask;
            for (;;) {
                if (psl[i] == 0) {
                    slots[i] = entry;
                    psl[i] = static_cast<std::uint8_t>(dist);
                    deepest = std::max(deepest, dist);
                    break;
                }
                if (psl[i] < dist) {
                    std::swap(slots[i], entry);
                    const std::uint32_t resident = psl[i];
                    psl[i] = static_cast<std::uint8_t>(dist);
                    deepest = std::max(deepest, dist);
                    dist = resident;
                }
                ++dist;
                i = (i + 1) & mask;
                if (dist > psl_limit_)
                    return false;
            }
        }
        return true;
    }

    std::vector<IndexSlot> slots_;  // node → dense_ position
    std::vector<std::uint8_t> psl_; // probe distance, home = 1; 0 = empty
    std::vector<Neighbor> dense_;   // insertion-ordered, append-only
    std::uint32_t size_ = 0;
    std::uint32_t max_psl_ = 0;
    std::uint32_t psl_limit_;
};

/** Single-direction tiered adaptive store. */
class HybridStore
{
  public:
    /** Inline (T0) edge capacity: 64-byte slot minus the 8-byte header. */
    static constexpr std::uint32_t kInlineCap = 7;

    explicit HybridStore(std::size_t num_chunks = 1, HybridConfig config = {})
        : num_chunks_(num_chunks ? num_chunks : 1), config_(config),
          chunks_(num_chunks_)
    {
        t1_cap_ = HybridSlabAllocator::kMinBlock;
        while (t1_cap_ < config_.t1MaxDegree)
            t1_cap_ *= 2;
    }

    std::size_t numChunks() const { return num_chunks_; }
    const HybridConfig &config() const { return config_; }
    /** Effective T1 → T2 threshold (t1MaxDegree rounded up to 2^k). */
    std::uint32_t t1Cap() const { return t1_cap_; }
    /** Chunk membership (shared mapping — see chunkOfNode). */
    NodeId chunkOf(NodeId v) const
    {
        return static_cast<NodeId>(chunkOfNode(v, num_chunks_));
    }

    /**
     * Grow the vertex range to @p n. The slot directory sits on
     * demand-zero pages (see growSlots): announcing new vertices costs
     * no page touches, because an all-zero slot *is* the empty T0
     * state — a page faults in only when one of its vertices is first
     * written. Quiescent only (serial, before the parallel scatter).
     */
    void
    ensureNodes(NodeId n)
    {
        if (n <= num_nodes_)
            return;
        if (n > slot_cap_)
            growSlots(n);
        num_nodes_ = n;
    }

    NodeId numNodes() const { return num_nodes_; }

    std::uint64_t
    numEdges() const
    {
        std::uint64_t total = 0;
        for (const Chunk &chunk : chunks_)
            total += chunk.numEdges;
        return total;
    }

    /** O(1): the degree is the slot header — no table lookup meta-op. */
    std::uint32_t
    degree(NodeId v) const
    {
        perf::touch(&slots_[v], sizeof(std::uint64_t));
        return slots_[v].degree;
    }

    /**
     * Legacy full-scan ingest (O(batch × workers) total scanning); kept
     * as the pre-pipeline reference path. DynGraph routes through the
     * PartitionedBatch overload below.
     */
    void
    updateBatch(const EdgeBatch &batch, ThreadPool &pool, bool reversed)
    {
        const NodeId max_node = batch.maxNode();
        if (max_node != kInvalidNode)
            ensureNodes(max_node + 1);

        SAGA_COUNT(telemetry::Counter::IngestEdgesSeen, batch.size());
        pool.run([&](std::size_t w) {
            declareChunksOwned(); // worker w touches only chunks it owns
            for (std::size_t i = 0; i < batch.size(); ++i) {
                const Edge &e = batch[i];
                const NodeId src = reversed ? e.dst : e.src;
                if (ownerOf(chunkOf(src), num_chunks_, pool.size()) != w)
                    continue;
                const NodeId dst = reversed ? e.src : e.dst;
                insertOwned(src, dst, e.weight);
            }
        });
        publishProbeLen();
    }

    /**
     * Partitioned ingest: worker w consumes exactly the buckets of its
     * owned chunks. @p parts must be built with numChunks() chunks.
     */
    void
    updateBatch(const PartitionedBatch &parts, ThreadPool &pool,
                bool reversed)
    {
        const NodeId max_node = parts.maxNode();
        if (max_node != kInvalidNode)
            ensureNodes(max_node + 1);

        SAGA_COUNT(telemetry::Counter::IngestEdgesSeen, parts.size());
        pool.run([&](std::size_t w) {
            declareChunksOwned(); // worker w iterates only owned buckets
            for (std::size_t c = 0; c < num_chunks_; ++c) {
                if (ownerOf(c, num_chunks_, pool.size()) != w)
                    continue;
                const auto bucket = parts.bucket(c, reversed);
                const Edge *edges = bucket.begin();
                const std::size_t n = bucket.size();
                // Slot lookups hop randomly through the directory; with
                // the bucket contiguous, the upcoming sources are known,
                // so hide the miss latency by prefetching a few ahead.
                constexpr std::size_t kAhead = 8;
                for (std::size_t i = 0; i < n; ++i) {
                    if (i + kAhead < n)
                        __builtin_prefetch(&slots_[edges[i + kAhead].src]);
                    insertOwned(edges[i].src, edges[i].dst,
                                edges[i].weight);
                }
            }
        });
        publishProbeLen();
    }

    /**
     * Declare chunk ownership to the thread-safety analysis: the caller
     * is the pool worker that ownerOf() assigned the chunks it is about
     * to mutate, or the store is quiescent (single-threaded test/setup
     * code). Compile-time only; emits no code.
     */
    void declareChunksOwned() const SAGA_ASSERT_CAPABILITY(ownership_) {}

    /**
     * Lock-free insert; caller must own the chunk containing @p src
     * (declared via declareChunksOwned()).
     * @return true if a new edge was added.
     */
    bool
    insertOwned(NodeId src, NodeId dst, Weight weight)
        SAGA_REQUIRES(ownership_)
    {
        perf::ops(1);
        VertexSlot &slot = slots_[src];
        Chunk &chunk = chunks_[chunkOf(src)];

        if (slot.cap == kHubTag) { // T2: O(1) bounded-probe dup check
            if (!slot.rep.hub->insertUnique(dst, weight)) {
                SAGA_COUNT(telemetry::Counter::IngestDuplicates, 1);
                return false;
            }
            ++slot.degree;
            ++chunk.numEdges;
            chunk.maxPsl = std::max(chunk.maxPsl, slot.rep.hub->maxPsl());
            SAGA_COUNT(telemetry::Counter::IngestEdgesInserted, 1);
            return true;
        }

        // T0/T1: one contiguous bounded scan is the dup check.
        Neighbor *row = slot.cap == 0 ? slot.rep.inl : slot.rep.lin;
        perf::touch(row, slot.degree * sizeof(Neighbor));
        for (std::uint32_t k = 0; k < slot.degree; ++k) {
            if (row[k].node == dst) {
                if (weight < row[k].weight)
                    row[k].weight = weight; // duplicates keep the min
                SAGA_COUNT(telemetry::Counter::IngestDuplicates, 1);
                return false;
            }
        }
        appendAbsentOwned(chunk, slot, dst, weight);
        return true;
    }

    /**
     * Publish-window append for the pipelined driver: the caller (the
     * staged-apply pipeline) has already proven (src, dst) absent against
     * the frozen snapshot and deduplicated it within the batch, so the
     * dup scan is skipped. Caller must own @p src's chunk. Unlike AC,
     * the per-chunk edge totals are owner-written here directly, so
     * addEdgesPublished() is a no-op.
     */
    void
    appendNewOwned(NodeId src, NodeId dst, Weight weight)
        SAGA_REQUIRES(ownership_)
    {
        perf::ops(1);
        appendAbsentOwned(chunks_[chunkOf(src)], slots_[src], dst, weight);
    }

    /**
     * kChunkOwnedAppend contract hook. The edge totals were already
     * counted per chunk by appendNewOwned() (each chunk's counter is
     * owner-written, so no post-barrier fold is needed).
     */
    void addEdgesPublished(std::uint64_t) {}

    /**
     * Point lookup against a frozen snapshot (the stage classifier's
     * fast path): T0/T1 scan ≤ t1Cap() entries in one run, T2 probes
     * ≤ pslLimit slots. Read-only; safe under concurrent readers.
     */
    Weight
    findWeight(NodeId src, NodeId dst, bool &found) const
    {
        found = false;
        const VertexSlot &slot = slots_[src];
        if (slot.cap == kHubTag) {
            if (const Neighbor *hit = slot.rep.hub->find(dst)) {
                found = true;
                return hit->weight;
            }
            return Weight{};
        }
        const Neighbor *row = slot.cap == 0 ? slot.rep.inl : slot.rep.lin;
        perf::touch(row, slot.degree * sizeof(Neighbor));
        for (std::uint32_t k = 0; k < slot.degree; ++k) {
            if (row[k].node == dst) {
                found = true;
                return row[k].weight;
            }
        }
        return Weight{};
    }

    /** Visit every neighbor of @p v: fn(const Neighbor &). */
    template <typename Fn>
    void
    forNeighbors(NodeId v, Fn &&fn) const
    {
        const VertexSlot &slot = slots_[v];
        if (slot.cap == kHubTag) {
            slot.rep.hub->forAll(fn);
            return;
        }
        const Neighbor *row = slot.cap == 0 ? slot.rep.inl : slot.rep.lin;
        perf::touch(row, slot.degree * sizeof(Neighbor));
        for (std::uint32_t k = 0; k < slot.degree; ++k)
            fn(row[k]);
    }

    /**
     * Block iteration for the hot pull loops: fn(const Neighbor *run,
     * std::uint32_t len) -> bool, return false to stop. Every tier is
     * one contiguous run — T0/T1 rows directly, T2 hubs via their dense
     * neighbor array (the hash index is not walked on the read side).
     */
    template <typename Fn>
    void
    forNeighborsBlock(NodeId v, Fn &&fn) const
    {
        const VertexSlot &slot = slots_[v];
        if (slot.cap == kHubTag) {
            slot.rep.hub->forRuns(fn);
            return;
        }
        if (slot.degree == 0)
            return;
        const Neighbor *row = slot.cap == 0 ? slot.rep.inl : slot.rep.lin;
        perf::touch(row, slot.degree * sizeof(Neighbor));
        fn(row, slot.degree);
    }

    /** Tier occupancy over vertices with ≥ 1 edge (tests/telemetry). */
    std::size_t
    numT0Vertices() const
    {
        std::size_t n = 0;
        for (NodeId v = 0; v < num_nodes_; ++v)
            n += slots_[v].degree > 0 && slots_[v].cap == 0;
        return n;
    }

    std::size_t
    numT1Vertices() const
    {
        std::size_t n = 0;
        for (NodeId v = 0; v < num_nodes_; ++v)
            n += slots_[v].cap != 0 && slots_[v].cap != kHubTag;
        return n;
    }

    std::size_t
    numT2Vertices() const
    {
        std::size_t n = 0;
        for (NodeId v = 0; v < num_nodes_; ++v)
            n += slots_[v].cap == kHubTag;
        return n;
    }

    /** T1 capacity of @p v (0 if not in T1) — tier-boundary tests. */
    std::uint32_t
    t1CapacityOf(NodeId v) const
    {
        const VertexSlot &slot = slots_[v];
        return slot.cap == kHubTag ? 0 : slot.cap;
    }

    /** Longest hub probe sequence ever placed, across all chunks. */
    std::uint32_t
    maxProbeLen() const
    {
        std::uint32_t psl = 0;
        for (const Chunk &chunk : chunks_)
            psl = std::max(psl, chunk.maxPsl);
        return psl;
    }

    /** Slabs allocated across all chunks (slab-reuse tests). */
    std::size_t
    numSlabs() const
    {
        std::size_t n = 0;
        for (const Chunk &chunk : chunks_)
            n += chunk.slab.numSlabs();
        return n;
    }

  private:
    /** cap value tagging a T2 (hub) slot. */
    static constexpr std::uint32_t kHubTag = ~std::uint32_t{0};

    /** Smallest slot-directory capacity (64 KiB of slots). */
    static constexpr std::size_t kMinSlotCap = 1024;

    /** Owns the demand-zero backing of the slot directory. */
    struct SlotArena
    {
        // quiescent-mutated: only growSlots() swaps the mapping, serial
        // before the parallel scatter
        void *mem = nullptr;
        // quiescent-mutated: munmap length of mem, set with it
        std::size_t bytes = 0;

        SlotArena() = default;
        SlotArena(const SlotArena &) = delete;
        SlotArena &operator=(const SlotArena &) = delete;
        SlotArena(SlotArena &&other) noexcept
            : mem(other.mem), bytes(other.bytes)
        {
            other.mem = nullptr;
            other.bytes = 0;
        }
        SlotArena &
        operator=(SlotArena &&other) noexcept
        {
            std::swap(mem, other.mem);
            std::swap(bytes, other.bytes);
            return *this;
        }
        ~SlotArena() { reset(); }

        void
        reset()
        {
            if (mem == nullptr)
                return;
#if defined(__linux__)
            ::munmap(mem, bytes);
#else
            std::free(mem);
#endif
            mem = nullptr;
            bytes = 0;
        }
    };

    /**
     * One 64-byte vertex slot: an 8-byte header (degree + tier/capacity
     * tag) and 56 bytes of payload — seven inline Neighbors (T0), or a
     * pointer to a slab block (T1) / hub table (T2). alignas(64) keeps
     * every slot on its own cache line, which both makes T0 single-line
     * and prevents false sharing between adjacent vertices owned by
     * different workers.
     */
    struct alignas(64) VertexSlot
    {
        // chunk-owned: written only through the store's
        // SAGA_REQUIRES(ownership_) insert/append path by the worker
        // that owns this vertex's chunk
        std::uint32_t degree = 0;
        // chunk-owned: 0 = T0 inline, kHubTag = T2 hub, else T1 capacity
        std::uint32_t cap = 0;
        // chunk-owned: payload — inline edges, slab block, or hub table
        union Rep {
            Neighbor inl[kInlineCap];
            Neighbor *lin;
            HybridHubTable *hub;
            // Neighbor's member initializers make the union's default
            // ctor deleted; initialize through the pointer member.
            Rep() : lin(nullptr) {}
        } rep;
    };
    static_assert(sizeof(VertexSlot) == 64,
                  "vertex slot must be exactly one cache line");
    // The slot directory relies on both: growth relocates slots with
    // memcpy, and calloc'd zero bytes must be a valid empty T0 slot
    // (degree 0, cap 0, null payload).
    static_assert(std::is_trivially_copyable_v<VertexSlot>);
    static_assert(std::is_trivially_destructible_v<VertexSlot>);

    /** Per-chunk owner-private state (slabs, hubs, accounting). */
    struct Chunk
    {
        // chunk-owned: T1 block storage, owner-written
        HybridSlabAllocator slab;
        // chunk-owned: owns the hub tables VertexSlot::rep.hub points at
        std::vector<std::unique_ptr<HybridHubTable>> hubs;
        // chunk-owned: per-chunk edge count, summed at quiescent points
        std::uint64_t numEdges = 0;
        // chunk-owned: high-water probe length across this chunk's hubs
        std::uint32_t maxPsl = 0;
    };

    /** Append an edge proven absent, promoting tiers as needed. */
    void
    appendAbsentOwned(Chunk &chunk, VertexSlot &slot, NodeId dst,
                      Weight weight) SAGA_REQUIRES(ownership_)
    {
        if (slot.degree == 0)
            SAGA_COUNT(telemetry::Counter::HybridT0Vertices, 1);
        const std::uint32_t cap = slot.cap == 0 ? kInlineCap : slot.cap;
        if (slot.cap == kHubTag) { // T2 (append path for staged publish)
            slot.rep.hub->insertUnique(dst, weight);
            ++slot.degree;
            chunk.maxPsl = std::max(chunk.maxPsl, slot.rep.hub->maxPsl());
        } else if (slot.degree < cap) { // room in the current tier
            Neighbor *row = slot.cap == 0 ? slot.rep.inl : slot.rep.lin;
            row[slot.degree++] = Neighbor{dst, weight};
            perf::touchWrite(&row[slot.degree - 1], sizeof(Neighbor));
        } else if (slot.cap == 0) { // T0 full → promote to T1
            Neighbor *block =
                chunk.slab.allocate(HybridSlabAllocator::kMinBlock);
            std::memcpy(block, slot.rep.inl,
                        kInlineCap * sizeof(Neighbor));
            block[kInlineCap] = Neighbor{dst, weight};
            perf::touchWrite(block, (kInlineCap + 1) * sizeof(Neighbor));
            slot.rep.lin = block;
            slot.cap = HybridSlabAllocator::kMinBlock;
            slot.degree = kInlineCap + 1;
            SAGA_COUNT(telemetry::Counter::HybridT1Vertices, 1);
            SAGA_COUNT(telemetry::Counter::HybridPromotions, 1);
        } else if (slot.cap < t1_cap_) { // T1 full → double within T1
            Neighbor *block = chunk.slab.allocate(slot.cap * 2);
            std::memcpy(block, slot.rep.lin,
                        slot.degree * sizeof(Neighbor));
            chunk.slab.release(slot.rep.lin, slot.cap);
            block[slot.degree++] = Neighbor{dst, weight};
            perf::touchWrite(block, slot.degree * sizeof(Neighbor));
            slot.rep.lin = block;
            slot.cap *= 2;
        } else { // T1 at max capacity → promote to T2 hub
            // Start at 4× the row so the rehashed load factor is ~0.25.
            // hotpath-allow: one hub-table build per T2 promotion
            auto hub = std::make_unique<HybridHubTable>(
                std::size_t(t1_cap_) * 4, config_.pslLimit);
            for (std::uint32_t k = 0; k < slot.degree; ++k)
                hub->insertUnique(slot.rep.lin[k].node,
                                  slot.rep.lin[k].weight);
            hub->insertUnique(dst, weight);
            chunk.slab.release(slot.rep.lin, slot.cap);
            chunk.maxPsl = std::max(chunk.maxPsl, hub->maxPsl());
            slot.rep.hub = hub.get();
            slot.cap = kHubTag;
            ++slot.degree;
            // hotpath-allow: hub registry push, once per promotion
            chunk.hubs.push_back(std::move(hub));
            SAGA_COUNT(telemetry::Counter::HybridT2Vertices, 1);
            SAGA_COUNT(telemetry::Counter::HybridPromotions, 1);
        }
        ++chunk.numEdges;
        SAGA_COUNT(telemetry::Counter::IngestEdgesInserted, 1);
    }

    /**
     * Grow the slot directory to >= @p n slots (amortized doubling).
     * Backed by demand-zero memory rather than a std::vector: the
     * kernel hands back untouched zero pages, and since an all-zero
     * VertexSlot is the valid empty T0 state, no per-slot construction
     * pass (and no up-front page-fault storm) is needed — 64 B/vertex
     * is only paid for vertices that actually get edges. On Linux the
     * region additionally carries MADV_HUGEPAGE, so a dense cold ingest
     * takes one fault per 2 MiB of directory instead of one per 4 KiB
     * (random-order vertex writes defeat the kernel's sequential
     * fault-around, so fault count is what matters). The portable
     * fallback is calloc with a cache line of alignment slack (calloc
     * guarantees max_align_t only). Quiescent only, like ensureNodes().
     */
    void
    growSlots(NodeId n)
    {
        std::size_t cap = slot_cap_ ? slot_cap_ * 2 : kMinSlotCap;
        while (cap < n)
            cap *= 2;
        // hotpath-allow: amortized doubling growth of the slot directory
        SlotArena arena;
        arena.bytes = cap * sizeof(VertexSlot);
        VertexSlot *fresh;
#if defined(__linux__)
        // Container runtimes often start processes with PR_SET_THP_DISABLE,
        // which silently voids MADV_HUGEPAGE. Clear it once; with THP in
        // "madvise" mode only regions that explicitly opt in (this
        // directory) are affected, so other allocations keep 4 KiB pages.
        static const bool thp_allowed = [] {
            ::prctl(PR_SET_THP_DISABLE, 0, 0, 0, 0);
            return true;
        }();
        (void)thp_allowed;
        arena.mem = ::mmap(nullptr, arena.bytes, PROT_READ | PROT_WRITE,
                           MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        if (arena.mem == MAP_FAILED) {
            arena.mem = nullptr;
            throw std::bad_alloc();
        }
        ::madvise(arena.mem, arena.bytes, MADV_HUGEPAGE); // best-effort
        fresh = static_cast<VertexSlot *>(arena.mem); // page-aligned >= 64
#else
        arena.mem = std::calloc(arena.bytes + alignof(VertexSlot), 1);
        if (arena.mem == nullptr)
            throw std::bad_alloc();
        const auto base = reinterpret_cast<std::uintptr_t>(arena.mem);
        fresh = reinterpret_cast<VertexSlot *>(
            (base + alignof(VertexSlot) - 1) &
            ~std::uintptr_t{alignof(VertexSlot) - 1});
#endif
        if (num_nodes_ > 0)
            std::memcpy(fresh, slots_,
                        std::size_t{num_nodes_} * sizeof(VertexSlot));
        slots_mem_ = std::move(arena); // the old mapping dies with `arena`
        slots_ = fresh;
        slot_cap_ = cap;
    }

    /** Fold the per-chunk probe-length high-water marks into telemetry.
        Quiescent only (after the pool barrier). */
    void
    publishProbeLen() const
    {
        std::uint32_t psl = 0;
        for (const Chunk &chunk : chunks_)
            psl = std::max(psl, chunk.maxPsl);
        if (psl > 0)
            SAGA_COUNT_MAX(telemetry::Counter::HybridProbeLenMax, psl);
    }

    // immutable-after-build: fixed at construction
    std::size_t num_chunks_;
    // immutable-after-build: tuning knobs, never change after ctor
    HybridConfig config_;
    // immutable-after-build: t1MaxDegree rounded up to a power of two
    std::uint32_t t1_cap_;
    // quiescent-mutated: grown only in ensureNodes(), serial before the
    // parallel scatter; the pool barrier publishes it
    NodeId num_nodes_ = 0;
    // quiescent-mutated: the directory is regrown only in growSlots()
    // (serial, before the parallel scatter); the pool barrier publishes
    // the new pointer
    SlotArena slots_mem_;
    // chunk-owned: 64-aligned view into slots_mem_, repointed only at
    // quiescent growth; slot contents are written solely through
    // SAGA_REQUIRES(ownership_) accessors by the owning chunk's worker
    VertexSlot *slots_ = nullptr;
    // quiescent-mutated: directory capacity in slots, growSlots() only
    std::size_t slot_cap_ = 0;
    // chunk-owned: sized at construction; each element is mutated only
    // by its owning worker via SAGA_REQUIRES(ownership_) methods
    std::vector<Chunk> chunks_;
    ChunkOwnership ownership_;
};

} // namespace saga

#endif // SAGA_DS_HYBRID_H_
