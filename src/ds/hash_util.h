/**
 * @file
 * Hashing and partitioning primitives shared by the data structures and
 * the batch-ingestion pipeline.
 */

#ifndef SAGA_DS_HASH_UTIL_H_
#define SAGA_DS_HASH_UTIL_H_

#include <cstddef>
#include <cstdint>

#include "saga/types.h"

namespace saga {

/** splitmix64 finalizer — fast, well-mixed 64-bit hash. */
inline std::uint64_t
hashU64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
}

/** Hash of a vertex id. */
inline std::uint64_t
hashNode(NodeId v)
{
    return hashU64(v);
}

/** Hash of a (src, dst) pair. */
inline std::uint64_t
hashEdgeKey(NodeId src, NodeId dst)
{
    return hashU64((static_cast<std::uint64_t>(src) << 32) | dst);
}

/**
 * Chunk that vertex @p v belongs to when the vertex space is partitioned
 * into @p num_chunks chunks. Hash-partitioned (plain modulo correlates
 * with RMAT id structure). This is the single source of truth for chunk
 * membership: the chunked stores (AC, DAH) and the PartitionedBatch
 * scatter must agree on it, or the scatter would hand workers edges whose
 * chunk they do not own.
 */
inline std::size_t
chunkOfNode(NodeId v, std::size_t num_chunks)
{
    return static_cast<std::size_t>(hashNode(v) % num_chunks);
}

/**
 * Worker that owns chunk @p chunk during a batch update with @p workers
 * workers over @p num_chunks chunks.
 *
 * Contiguous block mapping: worker w owns chunks
 * [ceil(w*C/W), ceil((w+1)*C/W)), balanced to within one chunk. This
 * replaces the old `chunkOf(v) % workers` mapping, which idled high-id
 * workers when chunks < workers (chunk ids never reached them) and
 * aliased unevenly when chunks was not a multiple of workers (the
 * double-modulo gave the low workers one extra chunk each). When
 * chunks < workers some workers necessarily own nothing — ownership is
 * exclusive — but every chunk still maps to a distinct worker.
 */
inline std::size_t
ownerOf(std::size_t chunk, std::size_t num_chunks, std::size_t workers)
{
    return chunk * workers / num_chunks;
}

} // namespace saga

#endif // SAGA_DS_HASH_UTIL_H_
