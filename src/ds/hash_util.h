/**
 * @file
 * Hashing and partitioning primitives shared by the data structures and
 * the batch-ingestion pipeline.
 */

#ifndef SAGA_DS_HASH_UTIL_H_
#define SAGA_DS_HASH_UTIL_H_

#include <cstddef>
#include <cstdint>

#include "saga/types.h"

namespace saga {

/** splitmix64 finalizer — fast, well-mixed 64-bit hash. */
constexpr std::uint64_t
hashU64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
}

/** Hash of a vertex id. */
constexpr std::uint64_t
hashNode(NodeId v)
{
    return hashU64(v);
}

/** Hash of a (src, dst) pair. */
constexpr std::uint64_t
hashEdgeKey(NodeId src, NodeId dst)
{
    return hashU64((static_cast<std::uint64_t>(src) << 32) | dst);
}

// The finalizer must be a bijection (no two vertex ids may be forced to
// collide before the modulo); spot-check that it is not degenerate and
// that distinct nearby ids separate.
static_assert(hashU64(0) != hashU64(1) && hashU64(1) != hashU64(2),
              "splitmix64 finalizer is degenerate");
static_assert(hashEdgeKey(1, 2) != hashEdgeKey(2, 1),
              "edge key must distinguish direction");

/**
 * Chunk that vertex @p v belongs to when the vertex space is partitioned
 * into @p num_chunks chunks. Hash-partitioned (plain modulo correlates
 * with RMAT id structure). This is the single source of truth for chunk
 * membership: the chunked stores (AC, DAH) and the PartitionedBatch
 * scatter must agree on it, or the scatter would hand workers edges whose
 * chunk they do not own.
 */
constexpr std::size_t
chunkOfNode(NodeId v, std::size_t num_chunks)
{
    return static_cast<std::size_t>(hashNode(v) % num_chunks);
}

/**
 * Worker that owns chunk @p chunk during a batch update with @p workers
 * workers over @p num_chunks chunks.
 *
 * Contiguous block mapping: worker w owns chunks
 * [ceil(w*C/W), ceil((w+1)*C/W)), balanced to within one chunk. This
 * replaces the old `chunkOf(v) % workers` mapping, which idled high-id
 * workers when chunks < workers (chunk ids never reached them) and
 * aliased unevenly when chunks was not a multiple of workers (the
 * double-modulo gave the low workers one extra chunk each). When
 * chunks < workers some workers necessarily own nothing — ownership is
 * exclusive — but every chunk still maps to a distinct worker.
 */
constexpr std::size_t
ownerOf(std::size_t chunk, std::size_t num_chunks, std::size_t workers)
{
    return chunk * workers / num_chunks;
}

namespace detail {

/** ownerOf() stays in [0, workers) for every chunk of every layout. */
constexpr bool
ownerRangeValid(std::size_t num_chunks, std::size_t workers)
{
    for (std::size_t c = 0; c < num_chunks; ++c) {
        if (ownerOf(c, num_chunks, workers) >= workers)
            return false;
    }
    return true;
}

/** Every worker w <= chunks gets at least one chunk (no idle workers). */
constexpr bool
ownerCoversWorkers(std::size_t num_chunks, std::size_t workers)
{
    for (std::size_t w = 0; w < workers; ++w) {
        bool owns = false;
        for (std::size_t c = 0; c < num_chunks; ++c)
            owns = owns || (ownerOf(c, num_chunks, workers) == w);
        if (!owns)
            return false;
    }
    return true;
}

/** chunkOfNode() stays in [0, num_chunks) for a sample of vertex ids. */
constexpr bool
chunkRangeValid(std::size_t num_chunks)
{
    for (NodeId v = 0; v < 64; ++v) {
        if (chunkOfNode(v, num_chunks) >= num_chunks)
            return false;
    }
    return true;
}

// Compile-time checks of the partitioning contract over representative
// layouts: even split, chunks not a multiple of workers (the case the old
// double-modulo mapping got wrong), oversubscription, and 1-worker.
static_assert(ownerRangeValid(8, 8) && ownerRangeValid(7, 3) &&
                  ownerRangeValid(64, 12) && ownerRangeValid(5, 1),
              "ownerOf must map every chunk to a real worker");
static_assert(ownerCoversWorkers(8, 8) && ownerCoversWorkers(7, 3) &&
                  ownerCoversWorkers(64, 12) && ownerCoversWorkers(5, 5),
              "ownerOf must not idle workers when chunks >= workers");
static_assert(chunkRangeValid(1) && chunkRangeValid(3) &&
                  chunkRangeValid(8),
              "chunkOfNode must stay inside the chunk space");
// Monotone block mapping: chunk 0 belongs to worker 0 and the last chunk
// to the last worker whenever workers <= chunks.
static_assert(ownerOf(0, 8, 4) == 0 && ownerOf(7, 8, 4) == 3,
              "ownerOf block mapping must span the worker range");

} // namespace detail

} // namespace saga

#endif // SAGA_DS_HASH_UTIL_H_
