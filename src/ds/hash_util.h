/**
 * @file
 * Hashing primitives shared by the hash-based data structures.
 */

#ifndef SAGA_DS_HASH_UTIL_H_
#define SAGA_DS_HASH_UTIL_H_

#include <cstdint>

#include "saga/types.h"

namespace saga {

/** splitmix64 finalizer — fast, well-mixed 64-bit hash. */
inline std::uint64_t
hashU64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
}

/** Hash of a vertex id. */
inline std::uint64_t
hashNode(NodeId v)
{
    return hashU64(v);
}

/** Hash of a (src, dst) pair. */
inline std::uint64_t
hashEdgeKey(NodeId src, NodeId dst)
{
    return hashU64((static_cast<std::uint64_t>(src) << 32) | dst);
}

} // namespace saga

#endif // SAGA_DS_HASH_UTIL_H_
