/**
 * @file
 * Stinger-style store (paper III-A3, after Ediger et al. [9]).
 *
 * A header array holds, per source vertex, its degree and a pointer to a
 * linked list of fixed-capacity edge blocks (16 edges per block, as in the
 * paper's implementation). Insertion takes two passes over the block list:
 * the first scans for the target edge (lock-free; this is the long pass for
 * high-degree vertices and is what parallelizes across threads), and if the
 * edge is absent a second pass finds an empty slot. The second pass holds
 * the vertex's insert lock — the fine-grained trade-off that lets searches
 * for a hot vertex proceed in parallel with at most one writer.
 *
 * Concurrency contract (machine-checked under Clang -Wthread-safety):
 * all *mutation* of a vertex's block chain (count/next/first stores,
 * entry writes) happens in appendLocked()/finishInsert(), which are
 * SAGA_REQUIRES(header.insertLock). The chain links and counts are
 * atomics so the lock-free search pass may read them concurrently;
 * release-stores under the lock publish entries to acquire-loads in the
 * searchers (that part of the contract is the acquire/release pairing,
 * which TSan — not TSA — checks).
 */

#ifndef SAGA_DS_STINGER_H_
#define SAGA_DS_STINGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "ds/hash_util.h"
#include "perfmodel/trace.h"
#include "platform/atomic_ops.h"
#include "platform/parallel_for.h"
#include "platform/spinlock.h"
#include "platform/thread_annotations.h"
#include "platform/thread_pool.h"
#include "saga/edge_batch.h"
#include "saga/partitioned_batch.h"
#include "saga/types.h"
#include "telemetry/telemetry.h"

namespace saga {

/** Single-direction Stinger store. */
class StingerStore
{
  public:
    /** Edges per block; 16 matches the paper's implementation. */
    static constexpr std::uint32_t kBlockCapacity = 16;
    static_assert(kBlockCapacity == 16,
                  "paper III-A3 characterizes Stinger with 16-edge blocks; "
                  "use the StingerStore(block_capacity) ctor for ablations");

    StingerStore() = default;
    explicit StingerStore(std::uint32_t block_capacity)
        : block_capacity_(block_capacity ? block_capacity : kBlockCapacity)
    {}

    ~StingerStore() { clear(); }

    StingerStore(const StingerStore &) = delete;
    StingerStore &operator=(const StingerStore &) = delete;

    void
    clear()
    {
        for (Header &h : headers_) {
            // relaxed: teardown/reset is single-threaded by contract
            // (no concurrent updates), so no ordering is needed.
            EdgeBlock *block = h.first.load(std::memory_order_relaxed);
            while (block) {
                // relaxed: same single-threaded teardown walk.
                EdgeBlock *next = block->next.load(std::memory_order_relaxed);
                delete block;
                block = next;
            }
            // relaxed: same single-threaded teardown walk.
            h.first.store(nullptr, std::memory_order_relaxed);
        }
        headers_.clear();
        // relaxed: single-threaded reset of a monotonic counter.
        num_edges_.store(0, std::memory_order_relaxed);
    }

    void
    ensureNodes(NodeId n)
    {
        if (n > headers_.size())
            headers_.resize(n);
    }

    NodeId numNodes() const { return static_cast<NodeId>(headers_.size()); }
    std::uint64_t numEdges() const
    {
        // relaxed: monotonic counter; exact values are read after the
        // pool barrier.
        return num_edges_.load(std::memory_order_relaxed);
    }

    std::uint32_t
    degree(NodeId v) const
    {
        perf::touch(&headers_[v], sizeof(Header));
        // relaxed: degree is advisory during a batch; the pool barrier
        // publishes the final value before compute phases read it.
        return headers_[v].degree.load(std::memory_order_relaxed);
    }

    /**
     * Legacy interleaved ingest (shared raw edge range; hot vertices'
     * insert locks and block lists bounce between workers). Kept as the
     * pre-pipeline reference path; DynGraph routes through the
     * PartitionedBatch overload below.
     */
    void
    updateBatch(const EdgeBatch &batch, ThreadPool &pool, bool reversed)
    {
        const NodeId max_node = batch.maxNode();
        if (max_node != kInvalidNode)
            ensureNodes(max_node + 1);

        SAGA_COUNT(telemetry::Counter::IngestEdgesSeen, batch.size());
        parallelFor(pool, 0, batch.size(), [&](std::uint64_t i) {
            const Edge &e = batch[i];
            const NodeId src = reversed ? e.dst : e.src;
            const NodeId dst = reversed ? e.src : e.dst;
            insert(src, dst, e.weight);
        });
    }

    /**
     * Partitioned ingest: buckets act as pre-sharded work ranges — a
     * source's edges are contiguous in one bucket with one owning
     * worker, so its insert lock never contends and its block list stays
     * in one cache. insert() keeps its full two-pass protocol (the store
     * must remain correct for concurrent same-source writers, e.g. via
     * the legacy path), it just stops paying contention here.
     */
    void
    updateBatch(const PartitionedBatch &parts, ThreadPool &pool,
                bool reversed)
    {
        const NodeId max_node = parts.maxNode();
        if (max_node != kInvalidNode)
            ensureNodes(max_node + 1);

        SAGA_COUNT(telemetry::Counter::IngestEdgesSeen, parts.size());
        const std::size_t chunks = parts.numChunks();
        pool.run([&](std::size_t w) {
            for (std::size_t c = 0; c < chunks; ++c) {
                if (ownerOf(c, chunks, pool.size()) != w)
                    continue;
                for (const Edge &e : parts.bucket(c, reversed))
                    insert(e.src, e.dst, e.weight);
            }
        });
    }

    /**
     * Two-pass search-then-insert (see file comment).
     *
     * The first (long) scan runs lock-free, so concurrent inserts for the
     * same hot vertex overlap their searches. The second scan runs under
     * the vertex's insert lock but only walks block *headers* (appends
     * never leave holes, so duplicate re-checking is limited to entries
     * added since the search snapshot) — the serialized portion is
     * O(degree / blockCapacity) instead of O(degree).
     */
    void
    insert(NodeId src, NodeId dst, Weight weight)
    {
        perf::ops(1);
        Header &header = headers_[src];

        // Pass 1: lock-free search; snapshot the tail position so the
        // locked pass only re-checks entries appended afterwards.
        EdgeBlock *tail0 = nullptr;
        std::uint32_t count0 = 0;
        {
            EdgeBlock *block =
                header.first.load(std::memory_order_acquire);
            while (block) {
                perf::touch(block, 16);
                const std::uint32_t count =
                    block->count.load(std::memory_order_acquire);
                for (std::uint32_t slot = 0; slot < count; ++slot) {
                    perf::touch(&block->entries[slot], sizeof(Neighbor));
                    if (block->entries[slot].node == dst) {
                        // Duplicates keep the min weight (atomic: the
                        // search pass runs lock-free).
                        atomicFetchMin(block->entries[slot].weight,
                                       weight);
                        SAGA_COUNT(telemetry::Counter::IngestDuplicates,
                                   1);
                        return;
                    }
                }
                tail0 = block;
                count0 = count;
                block = block->next.load(std::memory_order_acquire);
            }
        }

        SpinGuard hold(header.insertLock);
        appendLocked(header, dst, weight, tail0, count0);
    }

    /**
     * Publish-window append for the pipelined driver: the caller (the
     * staged-apply pipeline) has already proven (src, dst) absent against
     * the frozen snapshot and deduplicated it within the batch, so the
     * lock-free search pass is skipped entirely. Under the insert lock
     * the chain tail is snapshotted (block headers only) and handed to
     * appendLocked(), whose duplicate re-check then starts at the tail
     * and sees nothing — O(degree / blockCapacity) total.
     */
    void
    appendNew(NodeId src, NodeId dst, Weight weight)
    {
        perf::ops(1);
        Header &header = headers_[src];
        SpinGuard hold(header.insertLock);
        EdgeBlock *tail0 = nullptr;
        std::uint32_t count0 = 0;
        EdgeBlock *block = header.first.load(std::memory_order_acquire);
        while (block) {
            perf::touch(block, 16);
            tail0 = block;
            count0 = block->count.load(std::memory_order_acquire);
            block = block->next.load(std::memory_order_acquire);
        }
        appendLocked(header, dst, weight, tail0, count0);
    }

    /** Visit every neighbor of @p v: fn(const Neighbor &). */
    template <typename Fn>
    void
    forNeighbors(NodeId v, Fn &&fn) const
    {
        const EdgeBlock *block =
            headers_[v].first.load(std::memory_order_acquire);
        while (block) {
            perf::touch(block, 16); // block header / pointer chase
            const std::uint32_t count =
                block->count.load(std::memory_order_acquire);
            for (std::uint32_t slot = 0; slot < count; ++slot) {
                perf::touch(&block->entries[slot], sizeof(Neighbor));
                fn(block->entries[slot]);
            }
            block = block->next.load(std::memory_order_acquire);
        }
    }

    /**
     * Block iteration for the hot pull loops: fn(const Neighbor *run,
     * std::uint32_t len) -> bool, return false to stop. One run per
     * edge block — the pull kernels scan a block's entries without a
     * callback per neighbor, and the pointer chase happens once per
     * blockCapacity() entries.
     */
    template <typename Fn>
    void
    forNeighborsBlock(NodeId v, Fn &&fn) const
    {
        const EdgeBlock *block =
            headers_[v].first.load(std::memory_order_acquire);
        while (block) {
            perf::touch(block, 16); // block header / pointer chase
            const std::uint32_t count =
                block->count.load(std::memory_order_acquire);
            if (count > 0) {
                perf::touch(block->entries.get(),
                            count * sizeof(Neighbor));
                if (!fn(block->entries.get(), count))
                    return;
            }
            block = block->next.load(std::memory_order_acquire);
        }
    }

    std::uint32_t blockCapacity() const { return block_capacity_; }

  private:
    struct EdgeBlock
    {
        std::atomic<std::uint32_t> count{0};
        std::atomic<EdgeBlock *> next{nullptr};
        // immutable-after-build: the array (block_capacity_ entries) is
        // allocated when the block is created and the pointer never
        // changes; slot visibility rides the count release store
        std::unique_ptr<Neighbor[]> entries;
    };

    struct Header
    {
        std::atomic<std::uint32_t> degree{0};
        std::atomic<EdgeBlock *> first{nullptr};
        SpinLock insertLock;

        Header() = default;
        // Headers only move while the structure is quiescent (resize
        // happens before the parallel region).
        // relaxed: quiescent-state relocation; nothing concurrent to
        // order against (and insertLock is free, per SpinLock's copy).
        Header(const Header &other)
            : degree(other.degree.load(std::memory_order_relaxed)),
              // relaxed: quiescent-state relocation, as above.
              first(other.first.load(std::memory_order_relaxed))
        {}
        Header &
        operator=(const Header &other)
        {
            // relaxed: quiescent-state relocation, as above.
            degree.store(other.degree.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
            // relaxed: quiescent-state relocation, as above.
            first.store(other.first.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
            return *this;
        }
    };

    EdgeBlock *
    makeBlock()
    {
        SAGA_COUNT(telemetry::Counter::StingerBlocksAllocated, 1);
        auto *block = new EdgeBlock;
        block->entries = std::make_unique<Neighbor[]>(block_capacity_);
        return block;
    }

    /**
     * The serialized half of insert(): re-check entries appended since
     * the lock-free snapshot (@p tail0 / @p count0), then append into the
     * first block with space (or a fresh block). Every store to the
     * chain happens here, under @p header's insert lock.
     */
    void
    appendLocked(Header &header, NodeId dst, Weight weight,
                 EdgeBlock *tail0, std::uint32_t count0)
        SAGA_REQUIRES(header.insertLock)
    {
        // Re-check only entries appended since the snapshot.
        {
            EdgeBlock *block =
                tail0 ? tail0 : header.first.load(std::memory_order_acquire);
            std::uint32_t slot = tail0 ? count0 : 0;
            while (block) {
                const std::uint32_t count =
                    block->count.load(std::memory_order_acquire);
                for (; slot < count; ++slot) {
                    perf::touch(&block->entries[slot], sizeof(Neighbor));
                    if (block->entries[slot].node == dst) {
                        atomicFetchMin(block->entries[slot].weight,
                                       weight);
                        SAGA_COUNT(telemetry::Counter::IngestDuplicates,
                                   1);
                        return;
                    }
                }
                slot = 0;
                block = block->next.load(std::memory_order_acquire);
            }
        }

        // Pass 2: the paper's second scan — walk the block list for a
        // block with free space (header reads only). All count stores
        // happen under the insert lock, so the lock handoff alone already
        // orders them; the loads are still acquire so that this path makes
        // no assumption about who published the count (the same
        // release-store is what lock-free searchers synchronize with).
        EdgeBlock *space = header.first.load(std::memory_order_acquire);
        EdgeBlock *last = nullptr;
        while (space) {
            perf::touch(space, 16);
            if (space->count.load(std::memory_order_acquire) <
                block_capacity_) {
                break;
            }
            last = space;
            space = space->next.load(std::memory_order_acquire);
        }

        if (space) {
            const std::uint32_t count =
                space->count.load(std::memory_order_acquire);
            space->entries[count] = {dst, weight};
            perf::touchWrite(&space->entries[count], sizeof(Neighbor));
            space->count.store(count + 1, std::memory_order_release);
        } else {
            EdgeBlock *fresh = makeBlock();
            fresh->entries[0] = {dst, weight};
            perf::touchWrite(&fresh->entries[0], sizeof(Neighbor));
            fresh->count.store(1, std::memory_order_release);
            if (last)
                last->next.store(fresh, std::memory_order_release);
            else
                header.first.store(fresh, std::memory_order_release);
        }
        finishInsert(header);
    }

    bool
    findEdge(const Header &header, NodeId dst) const
    {
        const EdgeBlock *block = header.first.load(std::memory_order_acquire);
        while (block) {
            perf::touch(block, 16);
            const std::uint32_t count =
                block->count.load(std::memory_order_acquire);
            for (std::uint32_t slot = 0; slot < count; ++slot) {
                perf::touch(&block->entries[slot], sizeof(Neighbor));
                if (block->entries[slot].node == dst)
                    return true;
            }
            block = block->next.load(std::memory_order_acquire);
        }
        return false;
    }

    void
    finishInsert(Header &header) SAGA_REQUIRES(header.insertLock)
    {
        // relaxed: monotonic counters; readers (degree/numEdges) accept
        // any momentary value and the pool barrier publishes the final
        // one.
        header.degree.fetch_add(1, std::memory_order_relaxed);
        // relaxed: same monotonic-counter rationale as degree above.
        num_edges_.fetch_add(1, std::memory_order_relaxed);
        SAGA_COUNT(telemetry::Counter::IngestEdgesInserted, 1);
    }

    // immutable-after-build: configured before first insert
    std::uint32_t block_capacity_ = kBlockCapacity;
    // quiescent-mutated: resized only in ensureNodes()/clear(), serial
    // points; header contents use their own locks and atomics
    std::vector<Header> headers_;
    std::atomic<std::uint64_t> num_edges_{0};
};

} // namespace saga

#endif // SAGA_DS_STINGER_H_
