/**
 * @file
 * DynGraph — the public streaming-graph facade over any store.
 *
 * Implements the paper's API surface (Section III-D): update() for batched
 * ingestion, out_neigh()/in_neigh() traversal, and degree queries. Property
 * values are *not* stored here; they live in separate arrays owned by the
 * compute engines (paper footnote 4).
 *
 * Directed graphs keep two copies of the store — out-neighbors and
 * in-neighbors (paper footnote 3); undirected graphs ingest each edge in
 * both orientations into a single store.
 */

#ifndef SAGA_DS_DYN_GRAPH_H_
#define SAGA_DS_DYN_GRAPH_H_

#include <algorithm>
#include <cstdint>
#include <utility>

#include "platform/thread_pool.h"
#include "saga/edge_batch.h"
#include "saga/partitioned_batch.h"
#include "saga/staged_apply.h"
#include "saga/types.h"
#include "telemetry/telemetry.h"

namespace saga {

/**
 * Streaming graph over a Store type.
 *
 * Store concept:
 *   void ensureNodes(NodeId n);
 *   NodeId numNodes() const;
 *   std::uint64_t numEdges() const;
 *   std::uint32_t degree(NodeId v) const;
 *   void updateBatch(const EdgeBatch &, ThreadPool &, bool reversed);
 *   template <typename Fn> void forNeighbors(NodeId v, Fn &&) const;
 *
 * Stores may additionally accept
 *   void updateBatch(const PartitionedBatch &, ThreadPool &, bool);
 * in which case update() scatters the batch once (see PartitionedBatch)
 * and feeds both orientations from the buckets; stores without the
 * overload (Reference, CSR) fall back to the raw-batch path.
 */
template <typename Store>
class DynGraph
{
  public:
    using StoreType = Store;

    /**
     * @param directed directed graphs keep separate in/out stores.
     * @param args forwarded to both store constructors.
     */
    template <typename... Args>
    explicit DynGraph(bool directed, const Args &...args)
        : directed_(directed), out_(args...), in_(args...)
    {}

    bool directed() const { return directed_; }

    /** True if the store consumes the PartitionedBatch scatter pipeline. */
    static constexpr bool kPartitionedIngest =
        requires(Store &s, const PartitionedBatch &p, ThreadPool &pl) {
            s.updateBatch(p, pl, false);
        };

    /** Number of vertices seen so far (max id + 1). */
    NodeId
    numNodes() const
    {
        return std::max(out_.numNodes(), in_.numNodes());
    }

    /** Number of unique directed edges ingested. */
    std::uint64_t numEdges() const { return out_.numEdges(); }

    /**
     * Update phase: ingest a batch (deduplicating). For directed graphs
     * the reversed copy is ingested into the in-store; for undirected
     * graphs both orientations go into the single store.
     *
     * Stores with a PartitionedBatch overload get the scatter pipeline:
     * one counting-sort pass builds both orientations' buckets (and
     * maxNode), amortized over the two updateBatch consumers. The
     * scatter scratch lives on the graph, so steady-state ingestion does
     * not allocate.
     */
    void
    update(const EdgeBatch &batch, ThreadPool &pool)
    {
        SAGA_COUNT(telemetry::Counter::IngestBatches, 1);
        if constexpr (kPartitionedIngest) {
            // build() times itself as the "update/scatter" phase.
            parts_.build(batch, pool, ingestChunks(pool));
            SAGA_PHASE(telemetry::Phase::UpdateApply);
            if (directed_) {
                out_.updateBatch(parts_, pool, /*reversed=*/false);
                in_.updateBatch(parts_, pool, /*reversed=*/true);
            } else {
                out_.updateBatch(parts_, pool, /*reversed=*/false);
                out_.updateBatch(parts_, pool, /*reversed=*/true);
            }
        } else {
            SAGA_PHASE(telemetry::Phase::UpdateApply);
            if (directed_) {
                out_.updateBatch(batch, pool, /*reversed=*/false);
                in_.updateBatch(batch, pool, /*reversed=*/true);
            } else {
                out_.updateBatch(batch, pool, /*reversed=*/false);
                out_.updateBatch(batch, pool, /*reversed=*/true);
            }
        }
    }

    /**
     * True if the pipelined driver's stage/publish split can overlap the
     * full dedup classification with compute for this store; stores
     * without staged-apply support (DAH, fallback stores) only overlap
     * the scatter and run the apply inside the publish window.
     */
    static constexpr bool kStagedIngest =
        kPartitionedIngest && kStageableStore<Store>;

    /**
     * Pipelined update, first half: prepare batch @p batch against the
     * *frozen* current epoch. Read-only on the stores, so it may run on
     * the writer lane concurrently with compute-phase readers. The
     * stores themselves do not change until publishBatch().
     */
    void
    stageBatch(const EdgeBatch &batch, ThreadPool &writers)
    {
        if constexpr (kPartitionedIngest) {
            SAGA_COUNT(telemetry::Counter::IngestBatches, 1);
            // build() times itself as the "update/scatter" phase.
            parts_.build(batch, writers, ingestChunks(writers));
            if constexpr (kStagedIngest) {
                if (directed_) {
                    staged_out_.stage(out_, parts_, /*reversed=*/false,
                                      writers);
                    staged_in_.stage(in_, parts_, /*reversed=*/true,
                                     writers);
                } else {
                    // Both orientations into ONE staged set,
                    // sequentially: the second pass deduplicates against
                    // the first through the shared in-batch index,
                    // mirroring the serial driver's sequential
                    // orientation applies (a batch holding both (a,b)
                    // and (b,a) must not double-insert).
                    staged_out_.stage(out_, parts_, /*reversed=*/false,
                                      writers);
                    staged_out_.stage(out_, parts_, /*reversed=*/true,
                                      writers);
                }
            }
        } else {
            // No partitioned pipeline: nothing useful to overlap; stash
            // the batch for publishBatch(). update() counts the batch.
            staged_raw_ = batch;
        }
    }

    /**
     * Pipelined update, second half: make the staged batch visible. Must
     * run inside the publish barrier window — no concurrent readers or
     * stagers anywhere in the graph.
     */
    void
    publishBatch(ThreadPool &writers)
    {
        if constexpr (kStagedIngest) {
            if (directed_) {
                staged_out_.publish(out_, writers);
                staged_in_.publish(in_, writers);
            } else {
                staged_out_.publish(out_, writers);
            }
        } else if constexpr (kPartitionedIngest) {
            // parts_ still holds the staged batch: the driver publishes
            // epoch N before staging epoch N+1 rebuilds it.
            SAGA_PHASE(telemetry::Phase::UpdateApply);
            if (directed_) {
                out_.updateBatch(parts_, writers, /*reversed=*/false);
                in_.updateBatch(parts_, writers, /*reversed=*/true);
            } else {
                out_.updateBatch(parts_, writers, /*reversed=*/false);
                out_.updateBatch(parts_, writers, /*reversed=*/true);
            }
        } else {
            update(staged_raw_, writers);
        }
    }

    std::uint32_t outDegree(NodeId v) const { return out_.degree(v); }
    std::uint32_t
    inDegree(NodeId v) const
    {
        return directed_ ? in_.degree(v) : out_.degree(v);
    }

    /** Visit out-neighbors of @p v: fn(const Neighbor &). */
    template <typename Fn>
    void
    outNeigh(NodeId v, Fn &&fn) const
    {
        out_.forNeighbors(v, std::forward<Fn>(fn));
    }

    /** Visit in-neighbors of @p v: fn(const Neighbor &). */
    template <typename Fn>
    void
    inNeigh(NodeId v, Fn &&fn) const
    {
        if (directed_)
            in_.forNeighbors(v, std::forward<Fn>(fn));
        else
            out_.forNeighbors(v, std::forward<Fn>(fn));
    }

    /**
     * Visit out-neighbors of @p v as contiguous runs:
     * fn(const Neighbor *run, std::uint32_t len) -> bool, return false
     * to stop early. Stores with a forNeighborsBlock hook (AS/AC rows,
     * Stinger edge blocks, DAH table runs, CSR rows) hand out real
     * blocks; other stores fall back to single-entry runs so the pull
     * kernels stay generic.
     */
    template <typename Fn>
    void
    outNeighBlock(NodeId v, Fn &&fn) const
    {
        storeNeighBlock(out_, v, std::forward<Fn>(fn));
    }

    /** In-neighbor counterpart of outNeighBlock(). */
    template <typename Fn>
    void
    inNeighBlock(NodeId v, Fn &&fn) const
    {
        storeNeighBlock(directed_ ? in_ : out_, v, std::forward<Fn>(fn));
    }

    Store &outStore() { return out_; }
    const Store &outStore() const { return out_; }
    Store &inStore() { return directed_ ? in_ : out_; }
    const Store &inStore() const { return directed_ ? in_ : out_; }

  private:
    template <typename Fn>
    static void
    storeNeighBlock(const Store &store, NodeId v, Fn &&fn)
    {
        if constexpr (requires { store.forNeighborsBlock(v, fn); }) {
            store.forNeighborsBlock(v, std::forward<Fn>(fn));
        } else {
            bool keep_going = true;
            store.forNeighbors(v, [&](const Neighbor &nbr) {
                if (keep_going)
                    keep_going = fn(&nbr, std::uint32_t{1});
            });
        }
    }

    /**
     * Bucket count for the scatter: chunked stores need their own chunk
     * count (bucket == chunk); shared stores shard by worker.
     */
    std::size_t
    ingestChunks(ThreadPool &pool) const
    {
        if constexpr (requires(const Store &s) { s.numChunks(); })
            return out_.numChunks();
        else
            return pool.size();
    }

    // immutable-after-build: fixed at construction
    bool directed_;
    // guarded-member-allow: each store encodes its own concurrency
    // contract (locks / chunk ownership / atomics) internally
    Store out_;
    // guarded-member-allow: same as out_; unused when undirected
    Store in_;
    // guarded-member-allow: reusable scatter scratch with its own
    // phase discipline (counting-sort passes separated by barriers)
    PartitionedBatch parts_;

    // Pipelined-driver staging state (idle on the serial path).
    // guarded-member-allow: written only by the writer lane during an
    // epoch; the quiescent publish barrier hands it to the readers
    StagedApply<Store> staged_out_;
    // guarded-member-allow: same as staged_out_; unused when undirected
    StagedApply<Store> staged_in_;
    // guarded-member-allow: fallback stores stage a plain batch copy,
    // same single-writer epoch discipline
    EdgeBatch staged_raw_;
};

} // namespace saga

#endif // SAGA_DS_DYN_GRAPH_H_
