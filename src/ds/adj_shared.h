/**
 * @file
 * AS — adjacency list with shared-style multithreading (paper III-A1).
 *
 * An array of rows, one vector of (neighbor, weight) entries plus one
 * spinlock per source vertex. Every worker pulls edges from the shared
 * batch; to ingest an edge a worker (1) locks the source vertex's row,
 * (2) scans it for the target (edges are ingested uniquely), and
 * (3) appends if absent. The whole row is locked, so there is no
 * intra-vertex parallelism — the behaviour the paper shows melting down on
 * heavy-tailed batches — but updates to different vertices proceed in
 * parallel.
 *
 * Concurrency contract (machine-checked under Clang -Wthread-safety):
 * Row::data is SAGA_GUARDED_BY(Row::lock) — every update-phase access
 * goes through insert(), which holds the row's lock. Compute-phase reads
 * (degree / forNeighbors) are lock-free by design: the pool barrier ends
 * the update phase before any compute phase starts, so they go through
 * Row::quiescent(), the annotated phase-separation escape hatch.
 */

#ifndef SAGA_DS_ADJ_SHARED_H_
#define SAGA_DS_ADJ_SHARED_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "ds/hash_util.h"
#include "perfmodel/trace.h"
#include "platform/parallel_for.h"
#include "platform/spinlock.h"
#include "platform/thread_annotations.h"
#include "platform/thread_pool.h"
#include "saga/edge_batch.h"
#include "saga/partitioned_batch.h"
#include "saga/types.h"
#include "telemetry/telemetry.h"

namespace saga {

/** Single-direction adjacency store, shared-style multithreading. */
class AdjSharedStore
{
  public:
    /** Grow to hold vertices [0, n). Must not race with updates. */
    void
    ensureNodes(NodeId n)
    {
        if (n > rows_.size())
            rows_.resize(n);
    }

    NodeId numNodes() const { return static_cast<NodeId>(rows_.size()); }
    std::uint64_t numEdges() const
    {
        // relaxed: monotonic counter; readers only need an eventual value
        // (exact counts are read after the pool barrier).
        return num_edges_.load(std::memory_order_relaxed);
    }

    std::uint32_t
    degree(NodeId v) const
    {
        const std::vector<Neighbor> &row = rows_[v].quiescent();
        perf::touch(&row, sizeof(row));
        return static_cast<std::uint32_t>(row.size());
    }

    /**
     * Legacy interleaved ingest: all workers share the raw edge range;
     * per-vertex locks serialize same-source inserts, and a hot source
     * interleaved through the batch makes its lock (and row cache lines)
     * bounce between workers. Kept as the pre-pipeline reference path;
     * DynGraph routes through the PartitionedBatch overload below.
     * @p reversed swaps src/dst (used for the in-neighbor copy of
     * directed graphs).
     */
    void
    updateBatch(const EdgeBatch &batch, ThreadPool &pool, bool reversed)
    {
        const NodeId max_node = batch.maxNode();
        if (max_node != kInvalidNode)
            ensureNodes(max_node + 1);

        SAGA_COUNT(telemetry::Counter::IngestEdgesSeen, batch.size());
        parallelFor(pool, 0, batch.size(), [&](std::uint64_t i) {
            const Edge &e = batch[i];
            const NodeId src = reversed ? e.dst : e.src;
            const NodeId dst = reversed ? e.src : e.dst;
            insert(src, dst, e.weight);
        });
    }

    /**
     * Partitioned ingest: buckets are pre-sharded work ranges — all
     * edges of a source land in one bucket, and a bucket has exactly one
     * owning worker, so the per-vertex locks are never contended and a
     * source's row stays in its owner's cache. The locks are still taken
     * (an uncontended spinlock is two uncontended atomics) so the insert
     * path keeps a single concurrency story.
     */
    void
    updateBatch(const PartitionedBatch &parts, ThreadPool &pool,
                bool reversed)
    {
        const NodeId max_node = parts.maxNode();
        if (max_node != kInvalidNode)
            ensureNodes(max_node + 1);

        SAGA_COUNT(telemetry::Counter::IngestEdgesSeen, parts.size());
        const std::size_t chunks = parts.numChunks();
        pool.run([&](std::size_t w) {
            for (std::size_t c = 0; c < chunks; ++c) {
                if (ownerOf(c, chunks, pool.size()) != w)
                    continue;
                for (const Edge &e : parts.bucket(c, reversed))
                    insert(e.src, e.dst, e.weight);
            }
        });
    }

    /**
     * Single edge insert with search-before-insert dedup. Duplicate
     * edges keep the minimum weight seen, which makes the stored graph
     * deterministic under parallel ingestion (and keeps the two
     * orientations of an undirected edge consistent).
     */
    void
    insert(NodeId src, NodeId dst, Weight weight)
    {
        perf::ops(1);
        Row &row = rows_[src];
        SpinGuard hold(row.lock);
        for (Neighbor &nbr : row.data) {
            perf::touch(&nbr, sizeof(nbr));
            if (nbr.node == dst) {
                if (weight < nbr.weight)
                    nbr.weight = weight;
                SAGA_COUNT(telemetry::Counter::IngestDuplicates, 1);
                return;
            }
        }
        row.data.push_back({dst, weight});
        perf::touchWrite(&row.data.back(), sizeof(Neighbor));
        SAGA_COUNT(telemetry::Counter::IngestEdgesInserted, 1);
        // relaxed: monotonic counter increment; never read mid-phase.
        num_edges_.fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * Publish-window append for the pipelined driver: the caller (the
     * staged-apply pipeline) has already proven (src, dst) absent against
     * the frozen snapshot and deduplicated it within the batch, so the
     * search pass is skipped. The row lock is still taken — staged chunks
     * shard by the source's chunk, but the publish pool may differ in
     * width from the chunk count, and an uncontended spinlock is cheap.
     */
    void
    appendNew(NodeId src, NodeId dst, Weight weight)
    {
        perf::ops(1);
        Row &row = rows_[src];
        SpinGuard hold(row.lock);
        row.data.push_back({dst, weight});
        perf::touchWrite(&row.data.back(), sizeof(Neighbor));
        SAGA_COUNT(telemetry::Counter::IngestEdgesInserted, 1);
        // relaxed: monotonic counter increment; never read mid-phase.
        num_edges_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Visit every neighbor of @p v: fn(const Neighbor &). */
    template <typename Fn>
    void
    forNeighbors(NodeId v, Fn &&fn) const
    {
        for (const Neighbor &nbr : rows_[v].quiescent()) {
            perf::touch(&nbr, sizeof(nbr));
            fn(nbr);
        }
    }

    /**
     * Block iteration for the hot pull loops: fn(const Neighbor *run,
     * std::uint32_t len) -> bool, return false to stop. A row is one
     * contiguous run here.
     */
    template <typename Fn>
    void
    forNeighborsBlock(NodeId v, Fn &&fn) const
    {
        const std::vector<Neighbor> &row = rows_[v].quiescent();
        if (!row.empty()) {
            perf::touch(row.data(), row.size() * sizeof(Neighbor));
            fn(row.data(), static_cast<std::uint32_t>(row.size()));
        }
    }

  private:
    /** One vertex's adjacency row together with the lock guarding it. */
    struct Row
    {
        SpinLock lock;
        std::vector<Neighbor> data SAGA_GUARDED_BY(lock);

        Row() = default;
        // Safe without holding other.lock: rows only relocate during
        // ensureNodes(), which runs strictly before the parallel region
        // (quiescent state — every lock is free; SpinLock's copy-ctor
        // asserts that in debug builds).
        Row(const Row &other) SAGA_NO_THREAD_SAFETY_ANALYSIS
            : lock(other.lock), data(other.data)
        {}
        Row &operator=(const Row &) = delete;

        /**
         * Phase-separated read access. Safe without holding lock: the
         * compute phase starts only after the update phase's pool
         * barrier, so no writer is live and the barrier publishes all
         * row contents.
         */
        const std::vector<Neighbor> &
        quiescent() const SAGA_NO_THREAD_SAFETY_ANALYSIS
        {
            return data;
        }
    };

    // quiescent-mutated: resized only in ensureNodes(), serial before
    // the parallel region; row contents are guarded by each Row's lock
    std::vector<Row> rows_;
    std::atomic<std::uint64_t> num_edges_{0};
};

} // namespace saga

#endif // SAGA_DS_ADJ_SHARED_H_
