/**
 * @file
 * AC — adjacency list with chunked-style multithreading (paper III-A2).
 *
 * The vertex space is partitioned into chunks; chunk c holds the adjacency
 * vectors of every vertex v with v % num_chunks == c. Each chunk is a
 * single-threaded, lock-free structure: during a batch update, worker w
 * exclusively owns chunk w (workers filter the shared batch for edges whose
 * source falls in their chunk), so no locks are needed. The intra-chunk
 * insert path is identical to AS (scan the vector, append if absent).
 *
 * Concurrency contract (machine-checked under Clang -Wthread-safety):
 * insertOwned() requires the ChunkOwnership phantom capability — callers
 * must declare via declareChunksOwned() that they are the worker the
 * ownerOf() mapping assigned (or that the store is quiescent). See
 * platform/chunk_ownership.h.
 */

#ifndef SAGA_DS_ADJ_CHUNKED_H_
#define SAGA_DS_ADJ_CHUNKED_H_

#include <cstdint>
#include <vector>

#include "ds/hash_util.h"
#include "perfmodel/trace.h"
#include "platform/chunk_ownership.h"
#include "platform/thread_annotations.h"
#include "platform/thread_pool.h"
#include "saga/edge_batch.h"
#include "saga/partitioned_batch.h"
#include "saga/types.h"
#include "telemetry/telemetry.h"

namespace saga {

/** Single-direction adjacency store, chunked-style multithreading. */
class AdjChunkedStore
{
  public:
    /** @param num_chunks chunk count; normally the worker count. */
    explicit AdjChunkedStore(std::size_t num_chunks = 1)
        : num_chunks_(num_chunks ? num_chunks : 1)
    {}

    std::size_t numChunks() const { return num_chunks_; }
    /** Chunk membership (shared mapping — see chunkOfNode). */
    NodeId chunkOf(NodeId v) const
    {
        return static_cast<NodeId>(chunkOfNode(v, num_chunks_));
    }

    void
    ensureNodes(NodeId n)
    {
        if (n > num_nodes_) {
            num_nodes_ = n;
            rows_.resize(n);
        }
    }

    NodeId numNodes() const { return num_nodes_; }
    std::uint64_t numEdges() const { return num_edges_; }

    std::uint32_t
    degree(NodeId v) const
    {
        perf::touch(&rows_[v], sizeof(rows_[v]));
        return static_cast<std::uint32_t>(rows_[v].size());
    }

    /**
     * Legacy full-scan ingest: every worker scans the whole batch and
     * processes only the edges whose source vertex lies in a chunk it
     * owns — O(batch × workers) total scanning. Kept as the pre-pipeline
     * reference path (bench_ingest measures against it; direct-store
     * tests use it); DynGraph routes through the PartitionedBatch
     * overload below.
     */
    void
    updateBatch(const EdgeBatch &batch, ThreadPool &pool, bool reversed)
    {
        const NodeId max_node = batch.maxNode();
        if (max_node != kInvalidNode)
            ensureNodes(max_node + 1);

        SAGA_COUNT(telemetry::Counter::IngestEdgesSeen, batch.size());
        std::vector<std::uint64_t> inserted_per_worker(pool.size(), 0);
        pool.run([&](std::size_t w) {
            declareChunksOwned(); // worker w touches only chunks it owns
            std::uint64_t inserted = 0;
            for (std::size_t i = 0; i < batch.size(); ++i) {
                const Edge &e = batch[i];
                const NodeId src = reversed ? e.dst : e.src;
                if (ownerOf(chunkOf(src), num_chunks_, pool.size()) != w)
                    continue;
                const NodeId dst = reversed ? e.src : e.dst;
                if (insertOwned(src, dst, e.weight))
                    ++inserted;
            }
            inserted_per_worker[w] = inserted;
        });
        for (std::uint64_t n : inserted_per_worker)
            num_edges_ += n;
    }

    /**
     * Partitioned ingest: worker w iterates exactly the buckets of the
     * chunks it owns — O(batch) total work with sequential, cache-friendly
     * access. @p parts must be built with numChunks() chunks so bucket
     * membership matches chunk ownership.
     */
    void
    updateBatch(const PartitionedBatch &parts, ThreadPool &pool,
                bool reversed)
    {
        const NodeId max_node = parts.maxNode();
        if (max_node != kInvalidNode)
            ensureNodes(max_node + 1);

        SAGA_COUNT(telemetry::Counter::IngestEdgesSeen, parts.size());
        std::vector<std::uint64_t> inserted_per_worker(pool.size(), 0);
        pool.run([&](std::size_t w) {
            declareChunksOwned(); // worker w iterates only owned buckets
            std::uint64_t inserted = 0;
            for (std::size_t c = 0; c < num_chunks_; ++c) {
                if (ownerOf(c, num_chunks_, pool.size()) != w)
                    continue;
                for (const Edge &e : parts.bucket(c, reversed)) {
                    if (insertOwned(e.src, e.dst, e.weight))
                        ++inserted;
                }
            }
            inserted_per_worker[w] = inserted;
        });
        for (std::uint64_t n : inserted_per_worker)
            num_edges_ += n;
    }

    /**
     * Declare chunk ownership to the thread-safety analysis: the caller
     * is the pool worker that ownerOf() assigned the chunks it is about
     * to mutate, or the store is quiescent (single-threaded test/setup
     * code). Compile-time only; emits no code.
     */
    void declareChunksOwned() const SAGA_ASSERT_CAPABILITY(ownership_) {}

    /**
     * Lock-free insert; caller must own the chunk containing @p src
     * (declared via declareChunksOwned()).
     * @return true if a new edge was added.
     */
    bool
    insertOwned(NodeId src, NodeId dst, Weight weight)
        SAGA_REQUIRES(ownership_)
    {
        perf::ops(1);
        std::vector<Neighbor> &row = rows_[src];
        for (Neighbor &nbr : row) {
            perf::touch(&nbr, sizeof(nbr));
            if (nbr.node == dst) {
                if (weight < nbr.weight)
                    nbr.weight = weight; // duplicates keep the min weight
                SAGA_COUNT(telemetry::Counter::IngestDuplicates, 1);
                return false;
            }
        }
        row.push_back({dst, weight});
        perf::touchWrite(&row.back(), sizeof(Neighbor));
        SAGA_COUNT(telemetry::Counter::IngestEdgesInserted, 1);
        return true;
    }

    /**
     * Publish-window append for the pipelined driver: the caller (the
     * staged-apply pipeline) has already proven (src, dst) absent against
     * the frozen snapshot and deduplicated it within the batch, so the
     * search pass is skipped. Caller must own @p src's chunk; the edge
     * total is settled afterwards via addEdgesPublished().
     */
    void
    appendNewOwned(NodeId src, NodeId dst, Weight weight)
        SAGA_REQUIRES(ownership_)
    {
        perf::ops(1);
        std::vector<Neighbor> &row = rows_[src];
        row.push_back({dst, weight});
        perf::touchWrite(&row.back(), sizeof(Neighbor));
        SAGA_COUNT(telemetry::Counter::IngestEdgesInserted, 1);
    }

    /**
     * Fold @p n publish-window appends into the edge total. Quiescent
     * only (the publish barrier window, after the pool has joined) —
     * num_edges_ is deliberately not atomic.
     */
    void addEdgesPublished(std::uint64_t n) { num_edges_ += n; }

    /** Visit every neighbor of @p v: fn(const Neighbor &). */
    template <typename Fn>
    void
    forNeighbors(NodeId v, Fn &&fn) const
    {
        for (const Neighbor &nbr : rows_[v]) {
            perf::touch(&nbr, sizeof(nbr));
            fn(nbr);
        }
    }

    /**
     * Block iteration for the hot pull loops: fn(const Neighbor *run,
     * std::uint32_t len) -> bool, return false to stop. A row is one
     * contiguous run here.
     */
    template <typename Fn>
    void
    forNeighborsBlock(NodeId v, Fn &&fn) const
    {
        const std::vector<Neighbor> &row = rows_[v];
        if (!row.empty()) {
            perf::touch(row.data(), row.size() * sizeof(Neighbor));
            fn(row.data(), static_cast<std::uint32_t>(row.size()));
        }
    }

  private:
    // immutable-after-build: fixed at construction
    std::size_t num_chunks_;
    // quiescent-mutated: grown only in ensureNodes(), serial before the
    // parallel scatter; the pool barrier publishes it
    NodeId num_nodes_ = 0;
    // chunk-owned: the vector is resized only at quiescent points; row
    // contents are written solely through SAGA_REQUIRES(ownership_)
    // accessors by the owning chunk's worker
    std::vector<std::vector<Neighbor>> rows_;
    // quiescent-mutated: accumulated serially after the barrier (see
    // addEdgesPublished above — deliberately not atomic)
    std::uint64_t num_edges_ = 0;
    ChunkOwnership ownership_;
};

} // namespace saga

#endif // SAGA_DS_ADJ_CHUNKED_H_
