/**
 * @file
 * Reference store — a deliberately simple, obviously-correct adjacency
 * store used as the oracle in tests and as a readable example of the Store
 * concept. Single-threaded regardless of the pool handed to it.
 */

#ifndef SAGA_DS_REFERENCE_H_
#define SAGA_DS_REFERENCE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "platform/thread_pool.h"
#include "saga/edge_batch.h"
#include "saga/types.h"

namespace saga {

/** std::map-based single-direction store (the correctness oracle). */
class ReferenceStore
{
  public:
    void
    ensureNodes(NodeId n)
    {
        if (n > rows_.size())
            rows_.resize(n);
    }

    NodeId numNodes() const { return static_cast<NodeId>(rows_.size()); }
    std::uint64_t numEdges() const { return num_edges_; }

    std::uint32_t
    degree(NodeId v) const
    {
        return static_cast<std::uint32_t>(rows_[v].size());
    }

    void
    updateBatch(const EdgeBatch &batch, ThreadPool &, bool reversed)
    {
        const NodeId max_node = batch.maxNode();
        if (max_node != kInvalidNode)
            ensureNodes(max_node + 1);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const Edge &e = batch[i];
            const NodeId src = reversed ? e.dst : e.src;
            const NodeId dst = reversed ? e.src : e.dst;
            // Duplicates keep the minimum weight (deterministic under
            // parallel ingestion in the real stores).
            auto [it, fresh] = rows_[src].emplace(dst, e.weight);
            if (fresh)
                ++num_edges_;
            else if (e.weight < it->second)
                it->second = e.weight;
        }
    }

    template <typename Fn>
    void
    forNeighbors(NodeId v, Fn &&fn) const
    {
        for (const auto &[dst, weight] : rows_[v])
            fn(Neighbor{dst, weight});
    }

  private:
    std::vector<std::map<NodeId, Weight>> rows_;
    std::uint64_t num_edges_ = 0;
};

} // namespace saga

#endif // SAGA_DS_REFERENCE_H_
