/**
 * @file
 * CSR — the static-graph baseline (paper Section II-C).
 *
 * Static graph frameworks (GAP et al.) store graphs in Compressed Sparse
 * Row form: a contiguous offset array plus a contiguous neighbor array.
 * That layout is unbeatable for the compute phase but cannot absorb
 * updates: CsrStore implements the Store concept by *rebuilding the whole
 * CSR from scratch on every batch* — precisely the strategy the paper
 * argues against for streaming graphs ("borrowing array-based CSR ...
 * would substantially hurt the update latency"). The baseline_csr bench
 * quantifies that claim against the dynamic structures.
 */

#ifndef SAGA_DS_CSR_H_
#define SAGA_DS_CSR_H_

#include <cstdint>
#include <vector>

#include "perfmodel/trace.h"
#include "platform/thread_pool.h"
#include "saga/edge_batch.h"
#include "saga/types.h"

namespace saga {

/** Immutable CSR topology built from an edge list. */
class CsrGraph
{
  public:
    CsrGraph() : offsets_(1, 0) {}

    /**
     * Build from @p edges over @p num_nodes vertices. Duplicate (src,
     * dst) pairs collapse to one edge keeping the minimum weight (the
     * library-wide dedup rule).
     */
    static CsrGraph build(const std::vector<Edge> &edges, NodeId num_nodes);

    NodeId
    numNodes() const
    {
        return static_cast<NodeId>(offsets_.size() - 1);
    }
    std::uint64_t numEdges() const { return neighbors_.size(); }

    std::uint32_t
    degree(NodeId v) const
    {
        return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
    }

    template <typename Fn>
    void
    forNeighbors(NodeId v, Fn &&fn) const
    {
        for (std::uint64_t i = offsets_[v]; i < offsets_[v + 1]; ++i)
            fn(neighbors_[i]);
    }

    /**
     * Block iteration for the hot pull loops: fn(const Neighbor *run,
     * std::uint32_t len) -> bool, return false to stop. A CSR row is
     * one contiguous run by construction.
     */
    template <typename Fn>
    void
    forNeighborsBlock(NodeId v, Fn &&fn) const
    {
        const std::uint64_t lo = offsets_[v];
        const std::uint64_t hi = offsets_[v + 1];
        if (lo < hi) {
            // Touch parity with the mutable stores: the cache-sim MPKI
            // cross-check (bench_compute --mpki) runs over this store,
            // so its adjacency stream must be modeled too.
            perf::touch(&neighbors_[lo],
                        static_cast<std::uint32_t>((hi - lo) *
                                                   sizeof(Neighbor)));
            fn(&neighbors_[lo], static_cast<std::uint32_t>(hi - lo));
        }
    }

  private:
    std::vector<std::uint64_t> offsets_;  // numNodes + 1
    std::vector<Neighbor> neighbors_;     // sorted within each row
};

/**
 * Store-concept adapter: accumulates every streamed edge and rebuilds the
 * CSR on each batch. Traversal and degree queries delegate to the current
 * CSR snapshot.
 */
class CsrStore
{
  public:
    void
    ensureNodes(NodeId n)
    {
        if (n > num_nodes_)
            num_nodes_ = n;
    }

    NodeId numNodes() const { return num_nodes_; }
    std::uint64_t numEdges() const { return csr_.numEdges(); }
    std::uint32_t degree(NodeId v) const { return csr_.degree(v); }

    void
    updateBatch(const EdgeBatch &batch, ThreadPool &, bool reversed)
    {
        const NodeId max_node = batch.maxNode();
        if (max_node != kInvalidNode)
            ensureNodes(max_node + 1);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const Edge &e = batch[i];
            if (reversed)
                raw_edges_.push_back({e.dst, e.src, e.weight});
            else
                raw_edges_.push_back(e);
        }
        // The whole point of the baseline: a full rebuild per batch.
        csr_ = CsrGraph::build(raw_edges_, num_nodes_);
    }

    template <typename Fn>
    void
    forNeighbors(NodeId v, Fn &&fn) const
    {
        csr_.forNeighbors(v, std::forward<Fn>(fn));
    }

    /** Block iteration (see CsrGraph::forNeighborsBlock). */
    template <typename Fn>
    void
    forNeighborsBlock(NodeId v, Fn &&fn) const
    {
        csr_.forNeighborsBlock(v, std::forward<Fn>(fn));
    }

    const CsrGraph &csr() const { return csr_; }

  private:
    NodeId num_nodes_ = 0;
    std::vector<Edge> raw_edges_; // every edge streamed so far
    CsrGraph csr_;
};

} // namespace saga

#endif // SAGA_DS_CSR_H_
