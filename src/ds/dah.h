/**
 * @file
 * DAH — degree-aware hashing (paper III-A4, after Iwabuchi et al. [10]).
 *
 * Two hash structures per chunk:
 *
 *  - a *low-degree table*: one Robin-Hood open-addressing multimap keyed by
 *    source vertex, holding the edges of every low-degree vertex in the
 *    chunk. Equal keys cluster around their home slot, so a vertex's edges
 *    are enumerated with a bounded probe sequence;
 *  - a *high-degree table*: a directory mapping each promoted (high-degree)
 *    vertex to its own open-addressing neighbor set.
 *
 * Degree-awareness brings two meta-operations the paper calls out as DAH's
 * cost: every insert/traversal first queries the tables to find where a
 * vertex lives (and how many edges it has), and vertices crossing the
 * degree threshold are *periodically flushed* from the low table into their
 * own high-degree table.
 *
 * Multithreading is chunked like AC: worker w exclusively owns chunk w, so
 * all per-chunk state is lock-free.
 *
 * Concurrency contract (machine-checked under Clang -Wthread-safety):
 * insertOwned() and flushChunk() require the ChunkOwnership phantom
 * capability — callers must declare via declareChunksOwned() that they
 * are the worker the ownerOf() mapping assigned (or that the store is
 * quiescent). See platform/chunk_ownership.h.
 */

#ifndef SAGA_DS_DAH_H_
#define SAGA_DS_DAH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "ds/hash_util.h"
#include "perfmodel/trace.h"
#include "platform/chunk_ownership.h"
#include "platform/thread_annotations.h"
#include "platform/thread_pool.h"
#include "saga/edge_batch.h"
#include "saga/partitioned_batch.h"
#include "saga/types.h"
#include "telemetry/telemetry.h"

namespace saga {

/** Tuning knobs for DAH (exposed for the ablation benches). */
struct DahConfig
{
    /**
     * Degree at which a vertex is promoted to the high-degree table.
     * High enough that ordinary vertices keep paying the low-table
     * cluster-scan + meta-op costs (the overhead the paper identifies on
     * short-tailed graphs), low enough that genuine hubs promote fast.
     */
    std::uint32_t promoteThreshold = 64;
    /** Chunk-local insert count between flushes of pending promotions. */
    std::uint32_t flushPeriod = 2048;
};

/**
 * Robin-Hood open-addressing multimap from source vertex to (dst, weight).
 * Single-threaded (one per DAH chunk).
 */
class RobinHoodEdgeTable
{
  public:
    RobinHoodEdgeTable() { rehash(kInitialCapacity); }

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return slots_.size(); }

    /** Insert (no dup check — DAH searches before inserting). */
    void
    insert(NodeId src, NodeId dst, Weight weight)
    {
        if ((size_ + 1) * 10 >= slots_.size() * 7)
            rehash(slots_.size() * 2);
        Slot entry{src, dst, weight, 0};
        std::size_t i = home(src);
        for (;;) {
            Slot &slot = slots_[i];
            perf::touch(&slot, sizeof(Slot));
            if (slot.dist < 0) {
                slot = entry;
                perf::touchWrite(&slot, sizeof(Slot));
                ++size_;
                return;
            }
            if (slot.dist < entry.dist) {
                std::swap(slot, entry);
                perf::touchWrite(&slot, sizeof(Slot));
            }
            i = next(i);
            ++entry.dist;
            if (entry.dist >= kMaxProbe) {
                // Pathological clustering: grow and restart the insert.
                rehash(slots_.size() * 2);
                entry.dist = 0;
                i = home(entry.src);
            }
        }
    }

    /** True if edge (src, dst) is present. */
    bool
    contains(NodeId src, NodeId dst) const
    {
        bool found = false;
        forEachOfKey(src, [&](NodeId d, Weight) {
            if (d == dst)
                found = true;
        });
        return found;
    }

    /** Number of edges whose source is @p src. */
    std::uint32_t
    countKey(NodeId src) const
    {
        std::uint32_t count = 0;
        forEachOfKey(src, [&](NodeId, Weight) { ++count; });
        return count;
    }

    /** Visit (dst, weight&) of every edge with source @p src (mutable). */
    template <typename Fn>
    void
    forEachOfKeyMut(NodeId src, Fn &&fn)
    {
        std::size_t i = home(src);
        std::int16_t dist = 0;
        for (;;) {
            Slot &slot = slots_[i];
            perf::touch(&slot, sizeof(Slot));
            if (slot.dist < 0 || slot.dist < dist)
                return;
            if (slot.src == src)
                fn(slot.dst, slot.weight);
            i = next(i);
            ++dist;
        }
    }

    /** Visit (dst, weight) of every edge with source @p src. */
    template <typename Fn>
    void
    forEachOfKey(NodeId src, Fn &&fn) const
    {
        std::size_t i = home(src);
        std::int16_t dist = 0;
        for (;;) {
            const Slot &slot = slots_[i];
            perf::touch(&slot, sizeof(Slot));
            if (slot.dist < 0 || slot.dist < dist)
                return; // passed src's cluster
            if (slot.src == src)
                fn(slot.dst, slot.weight);
            i = next(i);
            ++dist;
        }
    }

    /** Remove every edge with source @p src (backward-shift deletion). */
    void
    removeKey(NodeId src)
    {
        // Deleting shifts the cluster, so repeat until no entry remains.
        for (;;) {
            std::size_t i = home(src);
            std::int16_t dist = 0;
            std::size_t hit = slots_.size();
            for (;;) {
                const Slot &slot = slots_[i];
                if (slot.dist < 0 || slot.dist < dist)
                    break;
                if (slot.src == src) {
                    hit = i;
                    break;
                }
                i = next(i);
                ++dist;
            }
            if (hit == slots_.size())
                return;
            eraseAt(hit);
        }
    }

    /** Visit every (src, dst, weight) in the table. */
    template <typename Fn>
    void
    forAll(Fn &&fn) const
    {
        for (const Slot &slot : slots_) {
            if (slot.dist >= 0)
                fn(slot.src, slot.dst, slot.weight);
        }
    }

  private:
    struct Slot
    {
        NodeId src = 0;
        NodeId dst = 0;
        Weight weight = 0;
        std::int16_t dist = -1; // probe distance; -1 = empty
    };

    static constexpr std::size_t kInitialCapacity = 1024;
    static constexpr std::int16_t kMaxProbe = 30000;
    // home()/next() index with `& (capacity - 1)`; rehash() only ever
    // doubles, so power-of-two at the seed keeps the mask valid forever.
    static_assert((kInitialCapacity & (kInitialCapacity - 1)) == 0,
                  "Robin-Hood table capacity must be a power of two");

    std::size_t home(NodeId src) const
    {
        return hashNode(src) & (slots_.size() - 1);
    }
    std::size_t next(std::size_t i) const
    {
        return (i + 1) & (slots_.size() - 1);
    }

    void
    eraseAt(std::size_t i)
    {
        // Backward-shift: pull successors with dist > 0 one slot left.
        std::size_t j = next(i);
        while (slots_[j].dist > 0) {
            slots_[i] = slots_[j];
            --slots_[i].dist;
            i = j;
            j = next(j);
        }
        slots_[i].dist = -1;
        --size_;
    }

    void
    rehash(std::size_t new_capacity)
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(new_capacity, Slot{});
        size_ = 0;
        for (const Slot &slot : old) {
            if (slot.dist >= 0)
                insert(slot.src, slot.dst, slot.weight);
        }
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
};

/** Open-addressing neighbor set for one high-degree vertex. */
class HighDegreeTable
{
  public:
    explicit HighDegreeTable(std::size_t initial_capacity = 32)
    {
        // Doubling from a power-of-two seed keeps capacity a power of
        // two, which the `& (capacity - 1)` probe masks rely on.
        static_assert((kMinCapacity & (kMinCapacity - 1)) == 0,
                      "high-degree table capacity must be a power of two");
        std::size_t cap = kMinCapacity;
        while (cap < initial_capacity * 2)
            cap *= 2;
        slots_.assign(cap, Neighbor{kInvalidNode, 0});
    }

    std::uint32_t size() const { return size_; }

    /** Insert if absent. @return true if a new edge was added. */
    bool
    insertUnique(NodeId dst, Weight weight)
    {
        if ((size_ + 1) * 10 >= slots_.size() * 7)
            grow();
        std::size_t i = hashNode(dst) & (slots_.size() - 1);
        for (;;) {
            Neighbor &slot = slots_[i];
            perf::touch(&slot, sizeof(Neighbor));
            if (slot.node == kInvalidNode) {
                slot = {dst, weight};
                perf::touchWrite(&slot, sizeof(Neighbor));
                ++size_;
                return true;
            }
            if (slot.node == dst) {
                if (weight < slot.weight)
                    slot.weight = weight; // duplicates keep the min
                return false;
            }
            i = (i + 1) & (slots_.size() - 1);
        }
    }

    bool
    contains(NodeId dst) const
    {
        std::size_t i = hashNode(dst) & (slots_.size() - 1);
        for (;;) {
            const Neighbor &slot = slots_[i];
            perf::touch(&slot, sizeof(Neighbor));
            if (slot.node == kInvalidNode)
                return false;
            if (slot.node == dst)
                return true;
            i = (i + 1) & (slots_.size() - 1);
        }
    }

    template <typename Fn>
    void
    forAll(Fn &&fn) const
    {
        for (const Neighbor &slot : slots_) {
            perf::touch(&slot, sizeof(Neighbor));
            if (slot.node != kInvalidNode)
                fn(slot);
        }
    }

    /**
     * Visit the occupied slots as maximal contiguous runs:
     * fn(const Neighbor *run, std::uint32_t len) -> bool, return false
     * to stop. At high load factors most of the table is one long run,
     * so pull loops scan it without a per-neighbor hole test.
     */
    template <typename Fn>
    void
    forRuns(Fn &&fn) const
    {
        const std::size_t cap = slots_.size();
        std::size_t i = 0;
        while (i < cap) {
            if (slots_[i].node == kInvalidNode) {
                ++i;
                continue;
            }
            std::size_t end = i + 1;
            while (end < cap && slots_[end].node != kInvalidNode)
                ++end;
            perf::touch(&slots_[i], (end - i) * sizeof(Neighbor));
            if (!fn(&slots_[i], static_cast<std::uint32_t>(end - i)))
                return;
            i = end + 1; // slots_[end] is a hole (or one past the end)
        }
    }

  private:
    static constexpr std::size_t kMinCapacity = 16;

    void
    grow()
    {
        std::vector<Neighbor> old = std::move(slots_);
        // hotpath-allow: amortized doubling rehash of a per-vertex table
        slots_.assign(old.size() * 2, Neighbor{kInvalidNode, 0});
        size_ = 0;
        for (const Neighbor &slot : old) {
            if (slot.node != kInvalidNode)
                insertUnique(slot.node, slot.weight);
        }
    }

    std::vector<Neighbor> slots_;
    std::uint32_t size_ = 0;
};

/** Single-direction degree-aware-hashing store. */
class DahStore
{
  public:
    explicit DahStore(std::size_t num_chunks = 1, DahConfig config = {})
        : num_chunks_(num_chunks ? num_chunks : 1), config_(config),
          chunks_(num_chunks_)
    {}

    std::size_t numChunks() const { return num_chunks_; }
    const DahConfig &config() const { return config_; }
    /** Chunk membership (shared mapping — see chunkOfNode). */
    NodeId chunkOf(NodeId v) const
    {
        return static_cast<NodeId>(chunkOfNode(v, num_chunks_));
    }

    void
    ensureNodes(NodeId n)
    {
        if (n > num_nodes_)
            num_nodes_ = n;
    }

    NodeId numNodes() const { return num_nodes_; }

    std::uint64_t
    numEdges() const
    {
        std::uint64_t total = 0;
        for (const Chunk &chunk : chunks_)
            total += chunk.numEdges;
        return total;
    }

    /**
     * Degree query — the degree-aware meta-operation. Looks the vertex up
     * in the high-degree directory first; if absent, counts its cluster in
     * the low-degree table.
     */
    std::uint32_t
    degree(NodeId v) const
    {
        const Chunk &chunk = chunks_[chunkOf(v)];
        perf::ops(1);
        if (const HighDegreeTable *table = chunk.findHigh(v))
            return table->size();
        return chunk.low.countKey(v);
    }

    /**
     * Legacy full-scan ingest (O(batch × workers) total scanning); kept
     * as the pre-pipeline reference path. DynGraph routes through the
     * PartitionedBatch overload below.
     */
    void
    updateBatch(const EdgeBatch &batch, ThreadPool &pool, bool reversed)
    {
        const NodeId max_node = batch.maxNode();
        if (max_node != kInvalidNode)
            ensureNodes(max_node + 1);

        SAGA_COUNT(telemetry::Counter::IngestEdgesSeen, batch.size());
        pool.run([&](std::size_t w) {
            declareChunksOwned(); // worker w touches only chunks it owns
            for (std::size_t i = 0; i < batch.size(); ++i) {
                const Edge &e = batch[i];
                const NodeId src = reversed ? e.dst : e.src;
                if (ownerOf(chunkOf(src), num_chunks_, pool.size()) != w)
                    continue;
                const NodeId dst = reversed ? e.src : e.dst;
                insertOwned(src, dst, e.weight);
            }
            // End-of-batch flush so traversal sees each vertex in exactly
            // one table.
            for (std::size_t c = 0; c < num_chunks_; ++c) {
                if (ownerOf(c, num_chunks_, pool.size()) == w)
                    flushChunk(chunks_[c]);
            }
        });
    }

    /**
     * Partitioned ingest: worker w consumes exactly the buckets of its
     * owned chunks. @p parts must be built with numChunks() chunks.
     */
    void
    updateBatch(const PartitionedBatch &parts, ThreadPool &pool,
                bool reversed)
    {
        const NodeId max_node = parts.maxNode();
        if (max_node != kInvalidNode)
            ensureNodes(max_node + 1);

        SAGA_COUNT(telemetry::Counter::IngestEdgesSeen, parts.size());
        pool.run([&](std::size_t w) {
            declareChunksOwned(); // worker w iterates only owned buckets
            for (std::size_t c = 0; c < num_chunks_; ++c) {
                if (ownerOf(c, num_chunks_, pool.size()) != w)
                    continue;
                for (const Edge &e : parts.bucket(c, reversed))
                    insertOwned(e.src, e.dst, e.weight);
                // End-of-batch flush so traversal sees each vertex in
                // exactly one table.
                flushChunk(chunks_[c]);
            }
        });
    }

    /**
     * Declare chunk ownership to the thread-safety analysis: the caller
     * is the pool worker that ownerOf() assigned the chunks it is about
     * to mutate, or the store is quiescent (single-threaded test/setup
     * code). Compile-time only; emits no code.
     */
    void declareChunksOwned() const SAGA_ASSERT_CAPABILITY(ownership_) {}

    /**
     * Lock-free insert; caller must own the chunk containing @p src
     * (declared via declareChunksOwned()).
     */
    void
    insertOwned(NodeId src, NodeId dst, Weight weight)
        SAGA_REQUIRES(ownership_)
    {
        perf::ops(1);
        Chunk &chunk = chunks_[chunkOf(src)];

        // Meta-op: decide which table the vertex lives in.
        if (HighDegreeTable *table = chunk.findHigh(src)) {
            if (table->insertUnique(dst, weight)) {
                ++chunk.numEdges;
                SAGA_COUNT(telemetry::Counter::IngestEdgesInserted, 1);
            } else {
                SAGA_COUNT(telemetry::Counter::IngestDuplicates, 1);
            }
            return;
        }

        // Low path: search the cluster (dup check doubles as degree count).
        std::uint32_t cluster_degree = 0;
        bool duplicate = false;
        chunk.low.forEachOfKeyMut(src, [&](NodeId d, Weight &w) {
            ++cluster_degree;
            if (d == dst) {
                duplicate = true;
                if (weight < w)
                    w = weight; // duplicates keep the min weight
            }
        });
        if (duplicate) {
            SAGA_COUNT(telemetry::Counter::IngestDuplicates, 1);
            return;
        }

        chunk.low.insert(src, dst, weight);
        ++chunk.numEdges;
        SAGA_COUNT(telemetry::Counter::IngestEdgesInserted, 1);
        // ">=": duplicates can make the degree skip the exact threshold
        // crossing, and the vertex must still be promoted (flushChunk
        // deduplicates pending entries).
        if (cluster_degree + 1 >= config_.promoteThreshold)
            chunk.pending.push_back(src);
        // Flush when the periodic budget is used up, or immediately when a
        // pending vertex's cluster has grown far past the threshold (long
        // equal-key clusters make every probe of this chunk expensive).
        if (++chunk.insertsSinceFlush >= config_.flushPeriod ||
            cluster_degree + 1 >= 2 * config_.promoteThreshold) {
            flushChunk(chunk);
        }
    }

    /** Visit every neighbor of @p v: fn(const Neighbor &). */
    template <typename Fn>
    void
    forNeighbors(NodeId v, Fn &&fn) const
    {
        const Chunk &chunk = chunks_[chunkOf(v)];
        perf::ops(1); // table-location meta-op
        if (const HighDegreeTable *table = chunk.findHigh(v)) {
            table->forAll(fn);
            return;
        }
        chunk.low.forEachOfKey(v, [&](NodeId dst, Weight weight) {
            fn(Neighbor{dst, weight});
        });
    }

    /**
     * Block iteration for the hot pull loops: fn(const Neighbor *run,
     * std::uint32_t len) -> bool, return false to stop. High-degree
     * vertices iterate their table's contiguous occupied runs; low-
     * degree vertices (Robin-Hood slots keyed by source, not Neighbor-
     * shaped) are coalesced into stack-buffered runs so callers pay one
     * indirect call per ~32 edges instead of per edge. Low degrees are
     * bounded by the promotion threshold, so most rows fit one buffer.
     */
    template <typename Fn>
    void
    forNeighborsBlock(NodeId v, Fn &&fn) const
    {
        const Chunk &chunk = chunks_[chunkOf(v)];
        perf::ops(1); // table-location meta-op
        if (const HighDegreeTable *table = chunk.findHigh(v)) {
            table->forRuns(fn);
            return;
        }
        constexpr std::uint32_t kRun = 32;
        Neighbor buf[kRun];
        std::uint32_t fill = 0;
        bool keep_going = true;
        chunk.low.forEachOfKey(v, [&](NodeId dst, Weight weight) {
            if (!keep_going)
                return;
            buf[fill++] = Neighbor{dst, weight};
            if (fill == kRun) {
                keep_going = fn(buf, fill);
                fill = 0;
            }
        });
        if (keep_going && fill > 0)
            fn(buf, fill);
    }

    /** Vertices currently in the high-degree directory (for tests). */
    std::size_t
    numHighDegreeVertices() const
    {
        std::size_t total = 0;
        for (const Chunk &chunk : chunks_)
            total += chunk.high.size();
        return total;
    }

  private:
    /** Open-address directory: promoted vertex -> its neighbor table. */
    struct Chunk
    {
        // chunk-owned: every field below is written only through the
        // store's SAGA_REQUIRES(ownership_) insert/flush path by the
        // worker that owns this chunk
        RobinHoodEdgeTable low;
        // chunk-owned: promoted-vertex directory, owner-written
        std::vector<std::pair<NodeId, HighDegreeTable>> high;
        // chunk-owned: open-address idx+1, 0=empty
        std::vector<std::uint64_t> highIndex;
        // chunk-owned: promotion queue drained by flushChunk()
        std::vector<NodeId> pending;
        // chunk-owned: flush pacing counter
        std::uint32_t insertsSinceFlush = 0;
        // chunk-owned: per-chunk edge count, summed after the barrier
        std::uint64_t numEdges = 0;

        // findHigh()/indexInsert() index with `& (size - 1)`; growIndex()
        // only doubles, so the power-of-two seed keeps the mask valid.
        static constexpr std::size_t kInitialIndexCapacity = 64;
        static_assert(
            (kInitialIndexCapacity & (kInitialIndexCapacity - 1)) == 0,
            "high-degree directory capacity must be a power of two");

        Chunk() : highIndex(kInitialIndexCapacity, 0) {}

        HighDegreeTable *
        findHigh(NodeId v)
        {
            const Chunk *self = this;
            return const_cast<HighDegreeTable *>(self->findHigh(v));
        }

        const HighDegreeTable *
        findHigh(NodeId v) const
        {
            std::size_t i = hashNode(v) & (highIndex.size() - 1);
            for (;;) {
                const std::uint64_t ref = highIndex[i];
                perf::touch(&highIndex[i], sizeof(ref));
                if (ref == 0)
                    return nullptr;
                const auto &entry = high[ref - 1];
                if (entry.first == v)
                    return &entry.second;
                i = (i + 1) & (highIndex.size() - 1);
            }
        }

        void
        addHigh(NodeId v, HighDegreeTable table)
        {
            high.emplace_back(v, std::move(table));
            if (high.size() * 10 >= highIndex.size() * 7) {
                growIndex(); // reindexes everything, including v
            } else {
                indexInsert(v, high.size());
            }
        }

        void
        indexInsert(NodeId v, std::uint64_t ref)
        {
            std::size_t i = hashNode(v) & (highIndex.size() - 1);
            while (highIndex[i] != 0)
                i = (i + 1) & (highIndex.size() - 1);
            highIndex[i] = ref;
        }

        void
        growIndex()
        {
            highIndex.assign(highIndex.size() * 2, 0);
            for (std::size_t k = 0; k < high.size(); ++k)
                indexInsert(high[k].first, k + 1);
        }
    };

    /** Migrate pending vertices from the low to the high-degree table. */
    void
    flushChunk(Chunk &chunk) SAGA_REQUIRES(ownership_)
    {
        SAGA_COUNT(telemetry::Counter::DahFlushes, 1);
        chunk.insertsSinceFlush = 0;
        for (NodeId v : chunk.pending) {
            if (chunk.findHigh(v))
                continue; // already promoted
            SAGA_COUNT(telemetry::Counter::DahPromotions, 1);
            HighDegreeTable table(config_.promoteThreshold * 2);
            chunk.low.forEachOfKey(v, [&](NodeId dst, Weight weight) {
                table.insertUnique(dst, weight);
            });
            chunk.low.removeKey(v);
            chunk.addHigh(v, std::move(table));
        }
        chunk.pending.clear();
    }

    // immutable-after-build: fixed at construction
    std::size_t num_chunks_;
    // immutable-after-build: tuning knobs, never change after ctor
    DahConfig config_;
    // quiescent-mutated: grown only in ensureNodes(), serial before the
    // parallel scatter
    NodeId num_nodes_ = 0;
    // chunk-owned: sized at construction; each element is mutated only
    // by its owning worker via SAGA_REQUIRES(ownership_) methods
    std::vector<Chunk> chunks_;
    ChunkOwnership ownership_;
};

} // namespace saga

#endif // SAGA_DS_DAH_H_
