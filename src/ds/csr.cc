#include "ds/csr.h"

#include <algorithm>

namespace saga {

CsrGraph
CsrGraph::build(const std::vector<Edge> &edges, NodeId num_nodes)
{
    CsrGraph graph;

    // Pass 1: per-vertex counts (upper bound; duplicates trimmed later).
    std::vector<std::uint64_t> counts(num_nodes + 1, 0);
    for (const Edge &e : edges)
        ++counts[e.src + 1];

    // Prefix sum -> provisional offsets.
    for (NodeId v = 0; v < num_nodes; ++v)
        counts[v + 1] += counts[v];

    // Pass 2: scatter neighbors.
    std::vector<Neighbor> slots(edges.size());
    std::vector<std::uint64_t> cursor(counts.begin(), counts.end() - 1);
    for (const Edge &e : edges)
        slots[cursor[e.src]++] = {e.dst, e.weight};

    // Pass 3: sort each row, collapse duplicates keeping the min weight,
    // and compact into the final arrays.
    graph.offsets_.assign(num_nodes + 1, 0);
    graph.neighbors_.reserve(edges.size());
    for (NodeId v = 0; v < num_nodes; ++v) {
        const std::uint64_t lo = counts[v];
        const std::uint64_t hi = counts[v + 1];
        std::sort(slots.begin() + lo, slots.begin() + hi,
                  [](const Neighbor &a, const Neighbor &b) {
                      return a.node != b.node ? a.node < b.node
                                              : a.weight < b.weight;
                  });
        for (std::uint64_t i = lo; i < hi; ++i) {
            if (i > lo && slots[i].node == slots[i - 1].node)
                continue; // duplicate; the min weight sorted first
            graph.neighbors_.push_back(slots[i]);
        }
        graph.offsets_[v + 1] = graph.neighbors_.size();
    }
    return graph;
}

} // namespace saga
