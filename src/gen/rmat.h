/**
 * @file
 * R-MAT synthetic graph generator (Chakrabarti et al., paper ref [63]).
 *
 * The paper's RMAT dataset uses a=0.55, b=0.15, c=0.15, d=0.25; those are
 * the defaults here.
 */

#ifndef SAGA_GEN_RMAT_H_
#define SAGA_GEN_RMAT_H_

#include <cstdint>
#include <vector>

#include "saga/types.h"

namespace saga {

/** R-MAT parameters. */
struct RmatParams
{
    /** log2 of the vertex count. */
    std::uint32_t scale = 15;
    std::uint64_t numEdges = 1 << 18;
    double a = 0.55;
    double b = 0.15;
    double c = 0.15;
    double d = 0.25;
    /** Edge weights drawn uniformly from {1, ..., weightMax}. */
    std::uint32_t weightMax = 64;
    std::uint64_t seed = 1;
};

/** Generate an R-MAT edge list (duplicates and self-loops possible). */
std::vector<Edge> generateRmat(const RmatParams &params);

} // namespace saga

#endif // SAGA_GEN_RMAT_H_
