/**
 * @file
 * Power-law edge-list generator with planted hubs.
 *
 * Used to synthesize structural stand-ins for the paper's SNAP datasets:
 * endpoint ranks follow a Zipf distribution (all of the paper's datasets
 * are power-law, Section V-B footnote 5), and explicitly planted hubs
 * control the heaviness of the degree-distribution tail — the property the
 * paper identifies as deciding data-structure performance (Table IV).
 */

#ifndef SAGA_GEN_POWERLAW_H_
#define SAGA_GEN_POWERLAW_H_

#include <cstdint>
#include <vector>

#include "saga/types.h"

namespace saga {

/** A planted hub: a vertex receiving fixed fractions of edge endpoints. */
struct PlantedHub
{
    NodeId node = 0;
    /** Fraction of all edges whose source is this hub. */
    double outFrac = 0;
    /** Fraction of all edges whose destination is this hub. */
    double inFrac = 0;
};

struct PowerLawParams
{
    NodeId numNodes = 1 << 14;
    std::uint64_t numEdges = 1 << 17;
    /** Zipf exponents for source / destination rank sampling. */
    double alphaOut = 0.8;
    double alphaIn = 0.8;
    /**
     * Ranks below this value share the weight of this rank, flattening
     * the head of the Zipf distribution. This bounds the max degree of
     * the *background* distribution so short-tailed profiles stay
     * short-tailed; planted hubs are unaffected.
     */
    std::uint32_t flattenTopRanks = 64;
    std::vector<PlantedHub> hubs;
    /** Edge weights drawn uniformly from {1, ..., weightMax}. */
    std::uint32_t weightMax = 64;
    std::uint64_t seed = 1;
};

/** Generate a power-law edge list (duplicates possible, no self-loops). */
std::vector<Edge> generatePowerLaw(const PowerLawParams &params);

/**
 * Walker alias table for O(1) sampling from an arbitrary discrete
 * distribution. Exposed for tests and reuse.
 */
class AliasTable
{
  public:
    /** Build from (unnormalized, non-negative) weights. */
    explicit AliasTable(const std::vector<double> &weights);

    /** Sample an index; @p u1, @p u2 are independent uniforms in [0,1). */
    std::size_t
    sample(double u1, double u2) const
    {
        const auto i = static_cast<std::size_t>(u1 * prob_.size());
        return u2 < prob_[i] ? i : alias_[i];
    }

    std::size_t size() const { return prob_.size(); }

  private:
    std::vector<double> prob_;
    std::vector<std::uint32_t> alias_;
};

} // namespace saga

#endif // SAGA_GEN_POWERLAW_H_
