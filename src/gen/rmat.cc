#include "gen/rmat.h"

#include <algorithm>

#include "ds/hash_util.h"
#include "platform/rng.h"

namespace saga {

std::vector<Edge>
generateRmat(const RmatParams &params)
{
    Rng rng(params.seed);
    const double ab = params.a + params.b;
    const double abc = ab + params.c;

    std::vector<Edge> edges;
    edges.reserve(params.numEdges);
    for (std::uint64_t i = 0; i < params.numEdges; ++i) {
        NodeId src = 0;
        NodeId dst = 0;
        for (std::uint32_t bit = 0; bit < params.scale; ++bit) {
            const double r = rng.uniform();
            src <<= 1;
            dst <<= 1;
            if (r < params.a) {
                // top-left quadrant: neither bit set
            } else if (r < ab) {
                dst |= 1;
            } else if (r < abc) {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        // Weight is a symmetric pure function of the endpoints so that
        // duplicate edges (and both orientations of an undirected edge)
        // always agree — conflicting duplicate weights would make the
        // deduplicated graph depend on ingestion order.
        const Weight weight = static_cast<Weight>(
            1 + hashEdgeKey(std::min(src, dst), std::max(src, dst)) %
                    params.weightMax);
        edges.push_back({src, dst, weight});
    }
    return edges;
}

} // namespace saga
