#include "gen/powerlaw.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>

#include "ds/hash_util.h"
#include "platform/rng.h"

namespace saga {

AliasTable::AliasTable(const std::vector<double> &weights)
    : prob_(weights.size(), 1.0), alias_(weights.size(), 0)
{
    const std::size_t n = weights.size();
    if (n == 0)
        return;
    double total = 0;
    for (double w : weights)
        total += w;

    std::vector<double> scaled(n);
    for (std::size_t i = 0; i < n; ++i)
        scaled[i] = weights[i] * n / total;

    std::deque<std::uint32_t> small, large;
    for (std::size_t i = 0; i < n; ++i)
        (scaled[i] < 1.0 ? small : large).push_back(i);

    while (!small.empty() && !large.empty()) {
        const std::uint32_t s = small.front();
        small.pop_front();
        const std::uint32_t l = large.front();
        prob_[s] = scaled[s];
        alias_[s] = l;
        scaled[l] -= 1.0 - scaled[s];
        if (scaled[l] < 1.0) {
            large.pop_front();
            small.push_back(l);
        }
    }
    // Leftovers (numerical residue) get probability 1.
    for (std::uint32_t i : small)
        prob_[i] = 1.0;
    for (std::uint32_t i : large)
        prob_[i] = 1.0;
}

namespace {

/**
 * Deterministic pseudo-random permutation of [0, n): rank -> node id.
 * Spreads the high-Zipf-weight ranks across the id space so vertex ids
 * carry no degree information (matching shuffled real datasets).
 */
std::vector<NodeId>
rankPermutation(NodeId n, std::uint64_t seed)
{
    std::vector<NodeId> perm(n);
    for (NodeId i = 0; i < n; ++i)
        perm[i] = i;
    Rng rng(seed ^ 0xABCDEF);
    for (std::size_t i = n; i > 1; --i)
        std::swap(perm[i - 1], perm[rng.below(i)]);
    return perm;
}

} // namespace

std::vector<Edge>
generatePowerLaw(const PowerLawParams &params)
{
    const NodeId n = params.numNodes;
    Rng rng(params.seed);

    std::vector<double> out_weights(n), in_weights(n);
    for (NodeId r = 0; r < n; ++r) {
        const double rank = std::max<double>(r, params.flattenTopRanks);
        out_weights[r] = std::pow(rank + 1.0, -params.alphaOut);
        in_weights[r] = std::pow(rank + 1.0, -params.alphaIn);
    }
    const AliasTable out_table(out_weights);
    const AliasTable in_table(in_weights);
    const std::vector<NodeId> perm = rankPermutation(n, params.seed);

    double hub_out_total = 0, hub_in_total = 0;
    for (const PlantedHub &hub : params.hubs) {
        hub_out_total += hub.outFrac;
        hub_in_total += hub.inFrac;
    }

    const auto sampleSrc = [&]() -> NodeId {
        double r = rng.uniform();
        if (r < hub_out_total) {
            for (const PlantedHub &hub : params.hubs) {
                if (r < hub.outFrac)
                    return hub.node;
                r -= hub.outFrac;
            }
        }
        return perm[out_table.sample(rng.uniform(), rng.uniform())];
    };
    const auto sampleDst = [&]() -> NodeId {
        double r = rng.uniform();
        if (r < hub_in_total) {
            for (const PlantedHub &hub : params.hubs) {
                if (r < hub.inFrac)
                    return hub.node;
                r -= hub.inFrac;
            }
        }
        return perm[in_table.sample(rng.uniform(), rng.uniform())];
    };

    std::vector<Edge> edges;
    edges.reserve(params.numEdges);
    for (std::uint64_t i = 0; i < params.numEdges; ++i) {
        const NodeId src = sampleSrc();
        NodeId dst = sampleDst();
        for (int tries = 0; dst == src && tries < 16; ++tries)
            dst = sampleDst();
        if (dst == src)
            dst = (src + 1) % n;
        // Symmetric pure function of the endpoints (see rmat.cc).
        const Weight weight = static_cast<Weight>(
            1 + hashEdgeKey(std::min(src, dst), std::max(src, dst)) %
                    params.weightMax);
        edges.push_back({src, dst, weight});
    }
    return edges;
}

} // namespace saga
