#include "gen/profiles.h"

#include <cmath>
#include <stdexcept>

#include "gen/powerlaw.h"
#include "gen/rmat.h"

namespace saga {
namespace {

/**
 * Profile construction notes (scaled from the paper's Table II / IV):
 *
 *  - lj / orkut / rmat are short-tailed: Zipf endpoints, no planted hubs,
 *    so per-batch max degree stays small. rmat is the largest graph (the
 *    paper's RMAT dominates everything; here it has the most vertices and
 *    edges so the "larger graphs benefit more from INC" finding can
 *    reproduce).
 *  - wiki is heavy-tailed on IN-degree (wiki-topcats: max in-degree 238040
 *    vs max out-degree 3907): a planted hub receives ~3% of all edge
 *    destinations, plus two smaller hubs.
 *  - talk is heavy-tailed on OUT-degree (wiki-talk: max out-degree 100022
 *    vs max in-degree 3311): a planted hub sources ~5% of all edges. Talk
 *    keeps the paper's batchCount of 11.
 *
 * Hub shares are far above strict proportional scaling (wiki ~9% of edge
 * destinations, talk ~10% of edge sources vs the paper's 0.8-2%): on the
 * measurement host (a single physical core) the lock-contention component
 * of the paper's heavy-tail effect cannot manifest in wall-clock time, so
 * the serialization component (quadratic adjacency-scan growth on the hub)
 * must carry the measured flip alone — which it does once the hub's
 * absolute degree crosses the scan-vs-hash crossover (~10^4, see
 * bench/micro_ds). The relative tail ordering of Table IV is preserved.
 * See DESIGN.md, substitutions.
 */
std::vector<DatasetProfile>
makeProfiles()
{
    std::vector<DatasetProfile> profiles;

    // LiveJournal-like: directed social network, short tail.
    profiles.push_back({"lj", /*directed=*/true, /*heavyTailed=*/false,
                        /*numNodes=*/18000, /*numEdges=*/252000,
                        /*batchSize=*/2520, /*source=*/17});

    // Orkut-like: the only undirected dataset, short tail.
    profiles.push_back({"orkut", /*directed=*/false, /*heavyTailed=*/false,
                        /*numNodes=*/12000, /*numEdges=*/288000,
                        /*batchSize=*/2880, /*source=*/17});

    // RMAT: the largest dataset, short tail (paper Table IV: max degree
    // 8016 across 500M edges).
    profiles.push_back({"rmat", /*directed=*/true, /*heavyTailed=*/false,
                        /*numNodes=*/65536, /*numEdges=*/480000,
                        /*batchSize=*/3600, /*source=*/0});

    // wiki-topcats-like: heavy IN-degree tail.
    profiles.push_back({"wiki", /*directed=*/true, /*heavyTailed=*/true,
                        /*numNodes=*/9000, /*numEdges=*/144000,
                        /*batchSize=*/1800, /*source=*/17});

    // wiki-talk-like: heavy OUT-degree tail, 11 batches as in Table II.
    profiles.push_back({"talk", /*directed=*/true, /*heavyTailed=*/true,
                        /*numNodes=*/12000, /*numEdges=*/150000,
                        /*batchSize=*/13637, /*source=*/42});

    return profiles;
}

} // namespace

const std::vector<DatasetProfile> &
allProfiles()
{
    static const std::vector<DatasetProfile> profiles = makeProfiles();
    return profiles;
}

const DatasetProfile *
findProfile(const std::string &name)
{
    for (const DatasetProfile &profile : allProfiles()) {
        if (profile.name == name)
            return &profile;
    }
    return nullptr;
}

DatasetProfile
DatasetProfile::scaled(double factor) const
{
    DatasetProfile copy = *this;
    copy.numNodes = static_cast<NodeId>(
        std::max(16.0, std::round(numNodes * factor)));
    copy.numEdges = static_cast<std::uint64_t>(
        std::max(16.0, std::round(double(numEdges) * factor)));
    copy.batchSize = static_cast<std::size_t>(
        std::max(4.0, std::round(double(batchSize) * factor)));
    if (copy.source >= copy.numNodes)
        copy.source = 0;
    return copy;
}

std::vector<Edge>
DatasetProfile::generate(std::uint64_t seed) const
{
    if (name == "rmat") {
        RmatParams params;
        params.scale = 0;
        while ((NodeId{1} << params.scale) < numNodes)
            ++params.scale;
        params.numEdges = numEdges;
        params.seed = seed;
        return generateRmat(params);
    }

    PowerLawParams params;
    params.numNodes = numNodes;
    params.numEdges = numEdges;
    params.seed = seed;
    if (name == "lj") {
        params.alphaOut = 0.82;
        params.alphaIn = 0.82;
        // source vertex gets a mild boost so BFS/SSSP reach the graph
        params.hubs = {{source, 0.004, 0.004}};
    } else if (name == "orkut") {
        params.alphaOut = 0.78;
        params.alphaIn = 0.78;
        params.hubs = {{source, 0.004, 0.004}};
    } else if (name == "wiki") {
        params.alphaOut = 0.85;
        params.alphaIn = 0.85;
        // Heavy IN tail: one dominant category page plus secondary hubs.
        params.hubs = {{source, 0.004, 0.090},
                       {NodeId(source + 100), 0.002, 0.024},
                       {NodeId(source + 200), 0.002, 0.016}};
    } else if (name == "talk") {
        params.alphaOut = 0.85;
        params.alphaIn = 0.85;
        // Heavy OUT tail: one hyper-active talk user plus a secondary.
        params.hubs = {{source, 0.100, 0.004},
                       {NodeId(source + 100), 0.036, 0.002}};
    } else {
        throw std::invalid_argument("unknown profile: " + name);
    }
    return generatePowerLaw(params);
}

} // namespace saga
