/**
 * @file
 * Dataset profiles — synthetic stand-ins for the paper's Table II datasets.
 *
 * Each profile fixes the structural signature that drives the paper's
 * conclusions: directedness, size ordering, batch count, and — decisive for
 * data-structure ranking — whether the per-batch degree distribution is
 * short-tailed (LJ, Orkut, RMAT) or heavy-tailed (Wiki, Talk; Table IV).
 * Absolute sizes are scaled to laptop class; pass a scale factor to grow
 * them.
 */

#ifndef SAGA_GEN_PROFILES_H_
#define SAGA_GEN_PROFILES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "saga/types.h"

namespace saga {

/** A named streaming-graph workload description. */
struct DatasetProfile
{
    std::string name;
    bool directed = true;
    /** True for Wiki/Talk-like graphs (high per-batch max degree). */
    bool heavyTailed = false;
    NodeId numNodes = 0;
    std::uint64_t numEdges = 0;
    /** Edges per streamed batch (paper: 500K at full scale). */
    std::size_t batchSize = 0;
    /** Root vertex for BFS/SSSP/SSWP (a well-connected vertex). */
    NodeId source = 0;

    /** batchCount as in Table II. */
    std::size_t
    batchCount() const
    {
        return (numEdges + batchSize - 1) / batchSize;
    }

    /** Generate the full edge list (deterministic per seed). */
    std::vector<Edge> generate(std::uint64_t seed = 1) const;

    /** Return a copy with node/edge/batch sizes multiplied by @p factor. */
    DatasetProfile scaled(double factor) const;
};

/** The five profiles mirroring Table II: lj, orkut, rmat, wiki, talk. */
const std::vector<DatasetProfile> &allProfiles();

/** Find a profile by name; nullptr if unknown. */
const DatasetProfile *findProfile(const std::string &name);

} // namespace saga

#endif // SAGA_GEN_PROFILES_H_
