/**
 * @file
 * Ablation: the INC triggering threshold epsilon (Algorithm 1 uses 1e-7).
 * For PageRank — the only non-discrete algorithm, where the threshold
 * actually trades accuracy for work — sweeps epsilon and reports both the
 * compute latency and the L1 error against an FS reference on the same
 * stream.
 */

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "saga/stream_source.h"

namespace saga {
namespace {

void
run()
{
    bench::banner("Ablation — INC trigger threshold (Algorithm 1 "
                  "epsilon)");

    TextTable table({"Dataset", "epsilon", "INC compute s (sum)",
                     "L1 error vs FS", "FS compute s (sum)"});

    for (const char *name : {"lj", "wiki"}) {
        const DatasetProfile profile =
            findProfile(name)->scaled(benchScale());

        for (double eps : {1e-9, 1e-7, 1e-5, 1e-3, 1e-2}) {
            RunConfig inc_cfg;
            inc_cfg.ds = bench::bestDsFor(profile);
            inc_cfg.alg = AlgKind::PR;
            inc_cfg.model = ModelKind::INC;
            inc_cfg.ctx.epsilon = eps;
            RunConfig fs_cfg = inc_cfg;
            fs_cfg.model = ModelKind::FS;

            // Drive both models over the same stream; compare at the end.
            StreamSource stream(profile.generate(1), profile.batchSize, 1);
            auto inc = bench::makeRunnerFor(profile, inc_cfg);
            auto fs = bench::makeRunnerFor(profile, fs_cfg);
            double inc_compute = 0, fs_compute = 0;
            while (stream.hasNext()) {
                const EdgeBatch batch = stream.next();
                const BatchResult bi = inc->processBatch(batch);
                const BatchResult bf = fs->processBatch(batch);
                inc_compute += bi.computeSeconds;
                fs_compute += bf.computeSeconds;
            }
            const std::vector<double> vi = inc->values();
            const std::vector<double> vf = fs->values();
            double l1 = 0;
            for (std::size_t v = 0; v < vi.size(); ++v)
                l1 += std::fabs(vi[v] - vf[v]);

            table.addRow({profile.name, formatDouble(eps, 9),
                          formatDouble(inc_compute, 4),
                          formatDouble(l1, 6),
                          formatDouble(fs_compute, 4)});
            std::cerr << "." << std::flush;
        }
    }
    std::cerr << "\n";
    table.print(std::cout);

    std::cout << "\nExpected shape: tightening epsilon below the paper's "
                 "1e-7 buys almost no accuracy but more propagation work; "
                 "loosening it toward 1e-2 cuts compute latency sharply "
                 "at a visible accuracy cost. 1e-7 sits on the accurate, "
                 "still-cheap plateau.\n";
}

} // namespace
} // namespace saga

int
main()
{
    saga::run();
    return 0;
}
