/**
 * @file
 * bench_serve — open-loop load generator for the saga_serve service.
 *
 * Drives mixed read/write traffic against a GraphService at fixed
 * arrival rates and reports tail latency per request class. Two
 * executors share the whole harness: the default in-process mode calls
 * the service API directly (precise, no socket noise), and --tcp
 * HOST:PORT drives a running saga_serve over the wire protocol (CI's
 * serve-smoke job uses it to exercise the socket front-end).
 *
 * Measurement discipline (docs/SERVING.md has the full rationale):
 *
 *   - *Open loop.* Request arrival times are scheduled up front from
 *     the target rate; a slow reply does not delay the next arrival.
 *     Latency is measured from the *scheduled* arrival, not from the
 *     moment the generator got around to sending — the classic
 *     coordinated-omission fix: a stalled server accrues the queueing
 *     delay it caused instead of silently suppressing load.
 *   - *Closed-loop calibration first.* Per-class service times and the
 *     write-path drain rate are measured closed-loop, and the sweep
 *     rates are derived as fractions of that capacity, so the same
 *     binary produces sane sweeps on a laptop and a many-core server.
 *   - *Overload by payload.* The overload runs keep the request rate
 *     sustainable for the generator and multiply the edges per update
 *     instead; the admission queue must shed (generator-side rejected
 *     count > 0) while accepted reads keep bounded tails.
 *
 * Per-run output lands in the JSON report (schema saga.bench_serve)
 * plus a per-class CSV; --gate enforces the serve-smoke invariants
 * (non-zero counts per class, monotone percentiles, zero consistency
 * errors, shed > 0 at overload, bounded accepted-read P99).
 *
 * Flags:
 *   --smoke            short runs, small seed graph — used by CI
 *   --gate             enforce the invariants above (exit 1 on fail)
 *   --tcp HOST:PORT    drive a running saga_serve instead of in-process
 *   --ds NAME          store for in-process mode (default as)
 *   --threads N        service writer-pool width (in-process mode)
 *   --read-workers N   generator read threads (default 2)
 *   --out PATH         JSON report path (default BENCH_serve.json)
 *   --csv PATH         per-class CSV path (default BENCH_serve.csv)
 *   --telemetry=PATH   dump the telemetry metrics JSON at exit
 *   --trace=PATH       record phase spans; write Chrome trace JSON
 */

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "gen/rmat.h"
#include "saga/driver.h"
#include "serve/latency_histogram.h"
#include "serve/service.h"
#include "serve/wire.h"
#include "stats/table.h"
#include "telemetry/telemetry.h"

namespace saga {
namespace {

using Clock = std::chrono::steady_clock;

struct Options
{
    bool smoke = false;
    bool gate = false;
    std::string tcp; // "HOST:PORT" — empty = in-process mode
    std::string ds = "as";
    std::size_t threads = 2;      // service writer pool (in-process)
    std::size_t readWorkers = 2;  // generator read threads
    std::string out = "BENCH_serve.json";
    std::string csv = "BENCH_serve.csv";
    std::string telemetry;
    std::string trace;
};

// --- request classes ----------------------------------------------------

enum class ReqClass : std::size_t {
    Degree = 0,
    Neighbors,
    Bfs,
    TopK,
    Update,
    kCount
};

constexpr std::size_t kNumClasses =
    static_cast<std::size_t>(ReqClass::kCount);

const char *
className(ReqClass c)
{
    switch (c) {
      case ReqClass::Degree: return "degree";
      case ReqClass::Neighbors: return "neighbors";
      case ReqClass::Bfs: return "bfs";
      case ReqClass::TopK: return "topk";
      case ReqClass::Update: return "update";
      case ReqClass::kCount: break;
    }
    return "?";
}

/** Read-class pick weights inside the read lane (sums to 1). */
constexpr double kReadWeights[4] = {0.4, 0.3, 0.2, 0.1};

// --- client abstraction (in-process vs TCP) -----------------------------

struct ReadOutcome
{
    bool ok = false;         ///< transport + protocol success
    bool consistent = true;  ///< reply-internal invariants held
    std::uint64_t epoch = 0; ///< epoch tag carried by the reply
};

struct UpdateOutcome
{
    bool ok = false;       ///< transport success
    bool accepted = false; ///< admitted (false = shed)
};

class Client
{
  public:
    virtual ~Client() = default;
    virtual ReadOutcome readDegree(NodeId v) = 0;
    virtual ReadOutcome readNeighbors(NodeId v) = 0;
    virtual ReadOutcome readBfs(NodeId v) = 0;
    virtual ReadOutcome readTopK() = 0;
    virtual UpdateOutcome sendUpdate(const Edge *edges, std::size_t n) = 0;
};

class InProcClient final : public Client
{
  public:
    explicit InProcClient(GraphService &svc) : svc_(svc) {}

    ReadOutcome
    readDegree(NodeId v) override
    {
        const DegreeReply r = svc_.degree(v);
        return {true, true, r.epoch};
    }

    ReadOutcome
    readNeighbors(NodeId v) override
    {
        const NeighborsReply r = svc_.neighbors(v);
        return {true, r.degree == r.neighbors.size(), r.epoch};
    }

    ReadOutcome
    readBfs(NodeId v) override
    {
        const BfsReply r = svc_.bfsDistance(v);
        return {true, true, r.epoch};
    }

    ReadOutcome
    readTopK() override
    {
        const TopKReply r = svc_.pageRankTopK();
        // Ranks must arrive sorted descending (ties by id) — a torn
        // buffer swap would break this.
        bool sorted = true;
        for (std::size_t i = 1; i < r.entries.size(); ++i)
            if (r.entries[i - 1].rank < r.entries[i].rank)
                sorted = false;
        return {true, sorted, r.epoch};
    }

    UpdateOutcome
    sendUpdate(const Edge *edges, std::size_t n) override
    {
        return {true, svc_.offerUpdate(edges, n)};
    }

  private:
    GraphService &svc_;
};

class TcpClient final : public Client
{
  public:
    /** @return nullptr if the connection cannot be established. */
    static std::unique_ptr<TcpClient>
    connect(const std::string &host, int port)
    {
        addrinfo hints{};
        hints.ai_family = AF_INET;
        hints.ai_socktype = SOCK_STREAM;
        addrinfo *res = nullptr;
        if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                          &hints, &res) != 0 ||
            res == nullptr)
            return nullptr;
        const int fd =
            ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
        if (fd < 0 || ::connect(fd, res->ai_addr, res->ai_addrlen) != 0) {
            ::freeaddrinfo(res);
            if (fd >= 0)
                ::close(fd);
            return nullptr;
        }
        ::freeaddrinfo(res);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        return std::unique_ptr<TcpClient>(new TcpClient(fd));
    }

    ~TcpClient() override { ::close(fd_); }

    ReadOutcome
    readDegree(NodeId v) override
    {
        ReadOutcome out;
        if (!roundTrip(wire::encodeNodeRequest(wire::Op::kDegree, v)))
            return out;
        wire::Reader r(reply_);
        if (static_cast<wire::Status>(r.u8()) != wire::Status::kOk)
            return out;
        out.epoch = r.u64();
        r.u32(); // outDegree
        r.u32(); // inDegree
        out.ok = r.ok() && r.remaining() == 0;
        return out;
    }

    ReadOutcome
    readNeighbors(NodeId v) override
    {
        ReadOutcome out;
        if (!roundTrip(wire::encodeNodeRequest(wire::Op::kNeighbors, v)))
            return out;
        wire::Reader r(reply_);
        if (static_cast<wire::Status>(r.u8()) != wire::Status::kOk)
            return out;
        out.epoch = r.u64();
        const std::uint32_t deg = r.u32();
        out.ok = r.ok();
        // The wire-level consistency check: the advertised degree must
        // match the number of entries actually serialized.
        out.consistent =
            out.ok && r.remaining() == static_cast<std::size_t>(deg) * 4;
        return out;
    }

    ReadOutcome
    readBfs(NodeId v) override
    {
        ReadOutcome out;
        if (!roundTrip(wire::encodeNodeRequest(wire::Op::kBfs, v)))
            return out;
        wire::Reader r(reply_);
        if (static_cast<wire::Status>(r.u8()) != wire::Status::kOk)
            return out;
        out.epoch = r.u64();
        r.u32(); // distance
        out.ok = r.ok() && r.remaining() == 0;
        return out;
    }

    ReadOutcome
    readTopK() override
    {
        ReadOutcome out;
        if (!roundTrip(wire::encodeEmptyRequest(wire::Op::kTopK)))
            return out;
        wire::Reader r(reply_);
        if (static_cast<wire::Status>(r.u8()) != wire::Status::kOk)
            return out;
        out.epoch = r.u64();
        const std::uint32_t k = r.u32();
        double prev = 0;
        bool sorted = true;
        for (std::uint32_t i = 0; i < k; ++i) {
            r.u32(); // node
            const double rank = r.f64();
            if (i > 0 && rank > prev)
                sorted = false;
            prev = rank;
        }
        out.ok = r.ok() && r.remaining() == 0;
        out.consistent = out.ok && sorted;
        return out;
    }

    UpdateOutcome
    sendUpdate(const Edge *edges, std::size_t n) override
    {
        UpdateOutcome out;
        if (!roundTrip(wire::encodeUpdateRequest(edges, n)))
            return out;
        wire::Reader r(reply_);
        const wire::Status status = static_cast<wire::Status>(r.u8());
        out.ok = status != wire::Status::kBadRequest && r.ok();
        out.accepted = status == wire::Status::kOk;
        return out;
    }

  private:
    explicit TcpClient(int fd) : fd_(fd) {}

    bool
    roundTrip(const std::vector<std::uint8_t> &request)
    {
        return wire::writeFrame(fd_, request) &&
               wire::readFrame(fd_, reply_);
    }

    int fd_;
    std::vector<std::uint8_t> reply_;
};

// --- per-run bookkeeping ------------------------------------------------

/** One generator thread's private results (merged after the run). */
struct WorkerResult
{
    LatencyHistogram hist[kNumClasses];
    std::uint64_t updatesOffered = 0;
    std::uint64_t updatesShed = 0;
    std::uint64_t updateEdgesOffered = 0;
    std::uint64_t consistencyErrors = 0;
    std::uint64_t transportErrors = 0;
    std::uint64_t epochRegressions = 0;
    std::uint64_t maxSchedLagNs = 0;
};

/** Specification of one open-loop run. */
struct RunSpec
{
    std::string name;
    std::string mix; ///< "90/10" or "50/50" (reads/writes by request)
    bool overload = false;
    double readRate = 0;  ///< read requests/sec across all read workers
    double writeRate = 0; ///< update requests/sec (one write worker)
    std::size_t updateBatchEdges = 8;
    double durationSeconds = 1.0;
};

/** Aggregated outcome of one run. */
struct RunResult
{
    RunSpec spec;
    LatencyHistogram hist[kNumClasses];
    std::uint64_t updatesOffered = 0;
    std::uint64_t updatesShed = 0;
    std::uint64_t updateEdgesOffered = 0;
    std::uint64_t consistencyErrors = 0;
    std::uint64_t transportErrors = 0;
    std::uint64_t epochRegressions = 0;
    std::uint64_t maxSchedLagNs = 0;

    void
    merge(const WorkerResult &w)
    {
        for (std::size_t c = 0; c < kNumClasses; ++c)
            hist[c].merge(w.hist[c]);
        updatesOffered += w.updatesOffered;
        updatesShed += w.updatesShed;
        updateEdgesOffered += w.updateEdgesOffered;
        consistencyErrors += w.consistencyErrors;
        transportErrors += w.transportErrors;
        epochRegressions += w.epochRegressions;
        maxSchedLagNs = std::max(maxSchedLagNs, w.maxSchedLagNs);
    }
};

/** Calibration numbers the sweep rates are derived from. */
struct Calibration
{
    double classMeanNs[kNumClasses] = {};
    double readCapacityRps = 0;    ///< closed-loop mixed-read req/s
    double floodAcceptedEps = 0;   ///< edges/s the write path absorbed
    double floodOfferedEps = 0;    ///< edges/s the generator offered
};

std::uint64_t
elapsedNs(Clock::time_point from, Clock::time_point to)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
            .count());
}

/** Pick a read class from the weighted distribution. */
ReqClass
pickReadClass(double u)
{
    double acc = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        acc += kReadWeights[i];
        if (u < acc)
            return static_cast<ReqClass>(i);
    }
    return ReqClass::Degree;
}

ReadOutcome
issueRead(Client &client, ReqClass cls, NodeId v)
{
    switch (cls) {
      case ReqClass::Degree: return client.readDegree(v);
      case ReqClass::Neighbors: return client.readNeighbors(v);
      case ReqClass::Bfs: return client.readBfs(v);
      case ReqClass::TopK: return client.readTopK();
      default: return {};
    }
}

// --- calibration --------------------------------------------------------

/**
 * Closed-loop: issue the weighted read mix back to back for
 * @p seconds, yielding per-class mean service time (as seen from the
 * generator thread, loop overhead included) and the mixed capacity.
 */
void
calibrateReads(Client &client, NodeId nodes, double seconds,
               Calibration &cal)
{
    std::mt19937_64 rng(42);
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    std::uniform_int_distribution<NodeId> node(0, nodes - 1);
    std::uint64_t totalNs[4] = {};
    std::uint64_t count[4] = {};
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
    std::uint64_t requests = 0;
    const Clock::time_point begin = Clock::now();
    while (Clock::now() < deadline) {
        const ReqClass cls = pickReadClass(uni(rng));
        const Clock::time_point t0 = Clock::now();
        issueRead(client, cls, node(rng));
        const std::uint64_t ns = elapsedNs(t0, Clock::now());
        totalNs[static_cast<std::size_t>(cls)] += ns;
        ++count[static_cast<std::size_t>(cls)];
        ++requests;
    }
    const double wall =
        static_cast<double>(elapsedNs(begin, Clock::now())) / 1e9;
    for (std::size_t i = 0; i < 4; ++i)
        cal.classMeanNs[i] =
            count[i] ? static_cast<double>(totalNs[i]) /
                           static_cast<double>(count[i])
                     : 0;
    cal.readCapacityRps =
        wall > 0 ? static_cast<double>(requests) / wall : 0;
}

/**
 * Closed-loop write flood: offer fixed-size batches as fast as the
 * transport allows for @p seconds. The accepted edge rate bounds what
 * the epoch loop can drain (queue fill contributes at most one depth);
 * the overload runs offer a multiple of it.
 */
void
calibrateWrites(Client &client, NodeId nodes, double seconds,
                Calibration &cal)
{
    std::mt19937_64 rng(43);
    std::uniform_int_distribution<NodeId> node(0, nodes - 1);
    constexpr std::size_t kBatch = 64;
    std::vector<Edge> edges(kBatch);
    std::uint64_t offered = 0;
    std::uint64_t accepted = 0;
    std::uint64_t updateNs = 0;
    std::uint64_t updates = 0;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds));
    const Clock::time_point begin = Clock::now();
    while (Clock::now() < deadline) {
        for (Edge &e : edges)
            e = Edge{node(rng), node(rng), 1.0f};
        const Clock::time_point t0 = Clock::now();
        const UpdateOutcome out = client.sendUpdate(edges.data(), kBatch);
        updateNs += elapsedNs(t0, Clock::now());
        ++updates;
        offered += kBatch;
        if (out.accepted)
            accepted += kBatch;
    }
    const double wall =
        static_cast<double>(elapsedNs(begin, Clock::now())) / 1e9;
    cal.classMeanNs[static_cast<std::size_t>(ReqClass::Update)] =
        updates ? static_cast<double>(updateNs) /
                      static_cast<double>(updates)
                : 0;
    cal.floodOfferedEps =
        wall > 0 ? static_cast<double>(offered) / wall : 0;
    cal.floodAcceptedEps =
        wall > 0 ? static_cast<double>(accepted) / wall : 0;
}

// --- the open-loop engine -----------------------------------------------

/**
 * One generator thread: requests w, w+W, w+2W, ... of an arrival
 * schedule at @p rate requests/sec. Latency is recorded from the
 * *scheduled* arrival (coordinated-omission-free); the lag between
 * schedule and actual issue is tracked separately as maxSchedLagNs.
 */
void
runWorker(Client &client, const RunSpec &spec, bool writeLane,
          std::size_t workerId, std::size_t laneWorkers, NodeId nodes,
          Clock::time_point start, WorkerResult &result)
{
    const double rate = writeLane ? spec.writeRate : spec.readRate;
    if (rate <= 0)
        return;
    std::mt19937_64 rng(1000 + workerId * 7919 + (writeLane ? 1 : 0));
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    std::uniform_int_distribution<NodeId> node(0, nodes - 1);
    std::vector<Edge> edges(writeLane ? spec.updateBatchEdges : 0);
    const double intervalNs = 1e9 / rate;
    const std::uint64_t horizonNs = static_cast<std::uint64_t>(
        spec.durationSeconds * 1e9);
    std::uint64_t lastGraphEpoch = 0;
    std::uint64_t lastAlgoEpoch = 0;

    for (std::uint64_t i = workerId;; i += laneWorkers) {
        const std::uint64_t schedNs =
            static_cast<std::uint64_t>(static_cast<double>(i) *
                                       intervalNs);
        if (schedNs >= horizonNs)
            break;
        const Clock::time_point sched =
            start + std::chrono::nanoseconds(schedNs);
        std::this_thread::sleep_until(sched);
        const Clock::time_point issued = Clock::now();
        if (issued > sched)
            result.maxSchedLagNs = std::max(
                result.maxSchedLagNs, elapsedNs(sched, issued));

        if (writeLane) {
            for (Edge &e : edges)
                e = Edge{node(rng), node(rng), 1.0f};
            const UpdateOutcome out =
                client.sendUpdate(edges.data(), edges.size());
            const std::uint64_t ns = elapsedNs(sched, Clock::now());
            result.hist[static_cast<std::size_t>(ReqClass::Update)]
                .record(ns);
            ++result.updatesOffered;
            result.updateEdgesOffered += edges.size();
            if (!out.ok)
                ++result.transportErrors;
            else if (!out.accepted)
                ++result.updatesShed;
        } else {
            const ReqClass cls = pickReadClass(uni(rng));
            const ReadOutcome out = issueRead(client, cls, node(rng));
            const std::uint64_t ns = elapsedNs(sched, Clock::now());
            result.hist[static_cast<std::size_t>(cls)].record(ns);
            if (!out.ok) {
                ++result.transportErrors;
            } else {
                if (!out.consistent)
                    ++result.consistencyErrors;
                // Epoch tags must be monotone per connection: point
                // reads carry the graph epoch, algorithm reads the
                // (possibly lagging) algorithm epoch.
                std::uint64_t &last =
                    cls == ReqClass::Degree || cls == ReqClass::Neighbors
                        ? lastGraphEpoch
                        : lastAlgoEpoch;
                if (out.epoch < last)
                    ++result.epochRegressions;
                else
                    last = out.epoch;
            }
        }
    }
}

/** Factory for per-worker clients (own TCP connection each). */
struct ClientFactory
{
    GraphService *svc = nullptr; // in-process mode
    std::string host;            // TCP mode
    int port = 0;

    std::unique_ptr<Client>
    make() const
    {
        if (svc != nullptr)
            return std::make_unique<InProcClient>(*svc);
        return TcpClient::connect(host, port);
    }
};

bool
executeRun(const ClientFactory &factory, const RunSpec &spec,
           std::size_t readWorkers, NodeId nodes, RunResult &out)
{
    out.spec = spec;
    const std::size_t writeWorkers = spec.writeRate > 0 ? 1 : 0;
    const std::size_t total = readWorkers + writeWorkers;
    std::vector<std::unique_ptr<Client>> clients;
    for (std::size_t i = 0; i < total; ++i) {
        clients.push_back(factory.make());
        if (!clients.back()) {
            std::cerr << "FAIL: cannot connect load-generator client\n";
            return false;
        }
    }
    std::vector<WorkerResult> results(total);
    std::vector<std::thread> threads;
    const Clock::time_point start =
        Clock::now() + std::chrono::milliseconds(20);
    for (std::size_t w = 0; w < readWorkers; ++w) {
        threads.emplace_back([&, w] {
            runWorker(*clients[w], spec, /*writeLane=*/false, w,
                      readWorkers, nodes, start, results[w]);
        });
    }
    if (writeWorkers > 0) {
        threads.emplace_back([&] {
            runWorker(*clients[readWorkers], spec, /*writeLane=*/true, 0,
                      1, nodes, start, results[readWorkers]);
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (const WorkerResult &w : results)
        out.merge(w);
    std::cerr << "." << std::flush;
    return true;
}

// --- reporting ----------------------------------------------------------

void
writeCsv(const std::string &path, const std::vector<RunResult> &runs)
{
    std::ofstream os(path);
    os << "run,mix,overload,class,count,mean_ns,p50_ns,p95_ns,p99_ns,"
          "max_ns\n";
    for (const RunResult &r : runs) {
        for (std::size_t c = 0; c < kNumClasses; ++c) {
            const LatencyHistogram &h = r.hist[c];
            os << r.spec.name << "," << r.spec.mix << ","
               << (r.spec.overload ? 1 : 0) << ","
               << className(static_cast<ReqClass>(c)) << "," << h.count()
               << "," << static_cast<std::uint64_t>(h.meanNs()) << ","
               << h.percentile(50) << "," << h.percentile(95) << ","
               << h.percentile(99) << "," << h.maxNs() << "\n";
        }
    }
}

void
writeJson(const std::string &path, const Options &opt,
          const Calibration &cal, const std::vector<RunResult> &runs,
          const ServeStats *stats)
{
    std::ofstream os(path);
    os << "{\n"
       << "  \"bench\": \"bench_serve\",\n"
       << "  \"schema\": \"saga.bench_serve\",\n"
       << "  \"schema_version\": 1,\n"
       << "  \"mode\": \"" << (opt.tcp.empty() ? "inproc" : "tcp")
       << "\",\n"
       << "  \"store\": \"" << opt.ds << "\",\n"
       << "  \"smoke\": " << (opt.smoke ? "true" : "false") << ",\n"
       << "  \"read_workers\": " << opt.readWorkers << ",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"note\": \"open-loop load generator; latencies measured "
          "from scheduled arrival (coordinated-omission-free); overload "
          "runs scale the per-update edge payload, not the request "
          "rate\",\n"
       << "  \"calibration\": {\"read_capacity_rps\": "
       << cal.readCapacityRps
       << ", \"flood_accepted_eps\": " << cal.floodAcceptedEps
       << ", \"flood_offered_eps\": " << cal.floodOfferedEps;
    for (std::size_t c = 0; c < kNumClasses; ++c)
        os << ", \"" << className(static_cast<ReqClass>(c))
           << "_mean_ns\": "
           << static_cast<std::uint64_t>(cal.classMeanNs[c]);
    os << "},\n"
       << "  \"runs\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const RunResult &r = runs[i];
        os << "    {\"name\": \"" << r.spec.name << "\", \"mix\": \""
           << r.spec.mix << "\", \"overload\": "
           << (r.spec.overload ? "true" : "false")
           << ", \"read_rate_rps\": " << r.spec.readRate
           << ", \"write_rate_rps\": " << r.spec.writeRate
           << ", \"update_batch_edges\": " << r.spec.updateBatchEdges
           << ", \"duration_seconds\": " << r.spec.durationSeconds
           << ",\n     \"classes\": [";
        for (std::size_t c = 0; c < kNumClasses; ++c) {
            const LatencyHistogram &h = r.hist[c];
            os << (c ? ", " : "") << "{\"class\": \""
               << className(static_cast<ReqClass>(c))
               << "\", \"count\": " << h.count() << ", \"mean_ns\": "
               << static_cast<std::uint64_t>(h.meanNs())
               << ", \"p50_ns\": " << h.percentile(50)
               << ", \"p95_ns\": " << h.percentile(95)
               << ", \"p99_ns\": " << h.percentile(99)
               << ", \"max_ns\": " << h.maxNs() << "}";
        }
        os << "],\n     \"updates_offered\": " << r.updatesOffered
           << ", \"updates_shed\": " << r.updatesShed
           << ", \"update_edges_offered\": " << r.updateEdgesOffered
           << ", \"consistency_errors\": " << r.consistencyErrors
           << ", \"transport_errors\": " << r.transportErrors
           << ", \"epoch_regressions\": " << r.epochRegressions
           << ", \"max_sched_lag_ns\": " << r.maxSchedLagNs << "}"
           << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    os << "  ]";
    if (stats != nullptr) {
        os << ",\n  \"service_stats\": {\"graph_epoch\": "
           << stats->graphEpoch << ", \"algo_epoch\": " << stats->algoEpoch
           << ", \"accepted_edges\": " << stats->acceptedEdges
           << ", \"shed_edges\": " << stats->shedEdges
           << ", \"backlog_edges\": " << stats->backlogEdges
           << ", \"graph_edges\": " << stats->graphEdges
           << ", \"graph_nodes\": " << stats->graphNodes << "}";
    }
    os << "\n}\n";
}

// --- gate ---------------------------------------------------------------

bool
gateRuns(const std::vector<RunResult> &runs)
{
    bool pass = true;
    bool sawOverload = false;
    for (const RunResult &r : runs) {
        for (std::size_t c = 0; c < kNumClasses; ++c) {
            const LatencyHistogram &h = r.hist[c];
            const bool classActive =
                c != static_cast<std::size_t>(ReqClass::Update) ||
                r.spec.writeRate > 0;
            if (classActive && h.count() == 0) {
                std::cerr << "FAIL: " << r.spec.name << " recorded zero "
                          << className(static_cast<ReqClass>(c))
                          << " requests\n";
                pass = false;
            }
            if (!(h.percentile(50) <= h.percentile(95) &&
                  h.percentile(95) <= h.percentile(99) &&
                  h.percentile(99) <= h.maxNs())) {
                std::cerr << "FAIL: " << r.spec.name
                          << " non-monotone percentiles for "
                          << className(static_cast<ReqClass>(c)) << "\n";
                pass = false;
            }
        }
        if (r.consistencyErrors != 0 || r.epochRegressions != 0) {
            std::cerr << "FAIL: " << r.spec.name << " saw "
                      << r.consistencyErrors << " consistency errors, "
                      << r.epochRegressions << " epoch regressions\n";
            pass = false;
        }
        if (r.transportErrors != 0) {
            std::cerr << "FAIL: " << r.spec.name << " saw "
                      << r.transportErrors << " transport errors\n";
            pass = false;
        }
        if (r.spec.overload) {
            sawOverload = true;
            if (r.updatesShed == 0) {
                std::cerr << "FAIL: " << r.spec.name
                          << " shed no updates at overload\n";
                pass = false;
            }
            // "Bounded" accepted-read tail under write overload: the
            // point-read P99 must stay far from the run duration —
            // unbounded queueing would drag it toward the horizon.
            const std::uint64_t p99 =
                r.hist[static_cast<std::size_t>(ReqClass::Degree)]
                    .percentile(99);
            const std::uint64_t ceiling = static_cast<std::uint64_t>(
                r.spec.durationSeconds * 1e9 / 4);
            if (p99 >= ceiling) {
                std::cerr << "FAIL: " << r.spec.name
                          << " degree P99 " << p99
                          << "ns >= bound " << ceiling << "ns\n";
                pass = false;
            }
        }
    }
    if (!sawOverload) {
        std::cerr << "FAIL: no overload run executed\n";
        pass = false;
    }
    return pass;
}

// --- main driver --------------------------------------------------------

int
run(const Options &opt)
{
    // TCP mode: a server that dies mid-reply must fail the round trip
    // (EPIPE from writeFrame), not kill the generator via SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);
    if (!opt.telemetry.empty()) {
        telemetry::enablePerf();
        telemetry::setEnabled(true);
    }
    if (!opt.trace.empty())
        telemetry::setTraceEnabled(true);

    const std::uint32_t seedScale = opt.smoke ? 10 : 13;
    const std::uint64_t seedEdges = std::uint64_t{1}
                                    << (seedScale + 3);
    const NodeId nodes = NodeId{1} << seedScale;
    const double calSeconds = opt.smoke ? 0.2 : 0.5;
    const double runSeconds = opt.smoke ? 1.0 : 3.0;

    std::cout << "==============================================\n"
              << "saga_serve load generator ("
              << (opt.tcp.empty() ? "in-process" : "tcp") << " mode, "
              << "store=" << opt.ds << ", seed scale=" << seedScale
              << ")" << (opt.smoke ? "  [smoke]" : "") << "\n"
              << "==============================================\n";

    // Stand up the service (in-process) or connect (TCP).
    std::unique_ptr<GraphService> svc;
    ClientFactory factory;
    if (opt.tcp.empty()) {
        ServeConfig cfg;
        cfg.ds = parseDs(opt.ds);
        cfg.threads = opt.threads;
        cfg.bfsSource = 0;
        svc = makeService(cfg);
        RmatParams params;
        params.scale = seedScale;
        params.numEdges = seedEdges;
        svc->bootstrap(generateRmat(params));
        svc->start();
        factory.svc = svc.get();
    } else {
        const std::size_t colon = opt.tcp.rfind(':');
        if (colon == std::string::npos) {
            std::cerr << "FAIL: --tcp expects HOST:PORT\n";
            return 2;
        }
        factory.host = opt.tcp.substr(0, colon);
        try {
            factory.port = std::stoi(opt.tcp.substr(colon + 1));
        } catch (const std::exception &) {
            std::cerr << "FAIL: bad port in --tcp " << opt.tcp << "\n";
            return 2;
        }
    }

    // Calibration (closed loop).
    Calibration cal;
    {
        std::unique_ptr<Client> client = factory.make();
        if (!client) {
            std::cerr << "FAIL: cannot connect for calibration\n";
            return 1;
        }
        calibrateReads(*client, nodes, calSeconds, cal);
        calibrateWrites(*client, nodes, calSeconds, cal);
    }
    if (cal.readCapacityRps <= 0 || cal.floodAcceptedEps <= 0) {
        std::cerr << "FAIL: calibration measured zero capacity\n";
        return 1;
    }
    std::cout << "calibration: read capacity "
              << static_cast<std::uint64_t>(cal.readCapacityRps)
              << " req/s, write drain "
              << static_cast<std::uint64_t>(cal.floodAcceptedEps)
              << " edges/s\n";

    // Sweep: healthy 90/10 and 50/50 mixes, then the same mixes with
    // the per-update payload scaled so the offered edge rate is a
    // multiple of the measured drain rate — the queue must shed.
    //
    // The target rate is a small fraction of the *mixed* closed-loop
    // capacity (weighted read mean + update-offer mean), not of the
    // raw read capacity: the generator threads share cores with the
    // service's epoch loop, and an arrival schedule the generator
    // cannot keep would turn every measured latency into generator
    // lag. Overload pressure comes from the edge payload instead.
    double weightedReadMeanNs = 0;
    for (std::size_t i = 0; i < 4; ++i)
        weightedReadMeanNs += kReadWeights[i] * cal.classMeanNs[i];
    const double updateMeanNs =
        cal.classMeanNs[static_cast<std::size_t>(ReqClass::Update)];
    if (weightedReadMeanNs <= 0 || updateMeanNs <= 0) {
        std::cerr << "FAIL: calibration measured zero service time\n";
        return 1;
    }
    constexpr double kUtilization = 0.1;
    const auto spec = [&](const char *name, const char *mix,
                          double writeFraction, bool overload) {
        RunSpec s;
        s.name = name;
        s.mix = mix;
        s.overload = overload;
        const double meanMixNs =
            (weightedReadMeanNs + writeFraction * updateMeanNs) /
            (1.0 + writeFraction);
        const double totalRate = kUtilization * 1e9 / meanMixNs;
        s.readRate = totalRate / (1.0 + writeFraction);
        s.writeRate = s.readRate * writeFraction;
        s.durationSeconds = runSeconds;
        const double targetEps =
            overload ? 3.0 * cal.floodAcceptedEps
                     : 0.25 * cal.floodAcceptedEps;
        s.updateBatchEdges = std::clamp<std::size_t>(
            static_cast<std::size_t>(targetEps / s.writeRate), 1,
            std::size_t{1} << 16);
        return s;
    };
    const std::vector<RunSpec> specs = {
        spec("mix9010_moderate", "90/10", 1.0 / 9.0, false),
        spec("mix5050_moderate", "50/50", 1.0, false),
        spec("mix9010_overload", "90/10", 1.0 / 9.0, true),
        spec("mix5050_overload", "50/50", 1.0, true),
    };

    std::vector<RunResult> runs;
    for (const RunSpec &s : specs) {
        RunResult r;
        if (!executeRun(factory, s, opt.readWorkers, nodes, r))
            return 1;
        runs.push_back(std::move(r));
    }
    std::cerr << "\n";

    ServeStats stats;
    if (svc) {
        svc->stop();
        stats = svc->stats();
    }

    TextTable table({"Run", "Class", "Count", "P50 us", "P95 us",
                     "P99 us", "Max us"});
    for (const RunResult &r : runs) {
        for (std::size_t c = 0; c < kNumClasses; ++c) {
            const LatencyHistogram &h = r.hist[c];
            if (h.count() == 0)
                continue;
            table.addRow(
                {r.spec.name, className(static_cast<ReqClass>(c)),
                 std::to_string(h.count()),
                 formatDouble(static_cast<double>(h.percentile(50)) / 1e3,
                              1),
                 formatDouble(static_cast<double>(h.percentile(95)) / 1e3,
                              1),
                 formatDouble(static_cast<double>(h.percentile(99)) / 1e3,
                              1),
                 formatDouble(static_cast<double>(h.maxNs()) / 1e3, 1)});
        }
    }
    table.print(std::cout);
    for (const RunResult &r : runs) {
        if (r.spec.overload)
            std::cout << r.spec.name << ": shed " << r.updatesShed
                      << " of " << r.updatesOffered << " updates\n";
    }

    writeJson(opt.out, opt, cal, runs, svc ? &stats : nullptr);
    writeCsv(opt.csv, runs);
    std::cout << "\nWrote " << opt.out << " and " << opt.csv << "\n";

    if (!opt.telemetry.empty()) {
        if (!telemetry::writeMetricsJson(opt.telemetry)) {
            std::cerr << "FAIL: cannot write " << opt.telemetry << "\n";
            return 1;
        }
        std::cout << "Wrote " << opt.telemetry << "\n";
    }
    if (!opt.trace.empty()) {
        if (!telemetry::writeTraceJson(opt.trace)) {
            std::cerr << "FAIL: cannot write " << opt.trace << "\n";
            return 1;
        }
        std::cout << "Wrote " << opt.trace << "\n";
    }

    if (opt.gate) {
        if (!gateRuns(runs))
            return 1;
        std::cout << "serve gate passed (counts, monotone percentiles, "
                     "consistency, shed at overload, bounded read P99)\n";
    }
    return 0;
}

} // namespace
} // namespace saga

int
main(int argc, char **argv)
{
    saga::Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            opt.smoke = true;
        } else if (arg == "--gate") {
            opt.gate = true;
        } else if (arg == "--tcp" && i + 1 < argc) {
            opt.tcp = argv[++i];
        } else if (arg == "--ds" && i + 1 < argc) {
            opt.ds = argv[++i];
        } else if (arg == "--threads" && i + 1 < argc) {
            try {
                opt.threads =
                    static_cast<std::size_t>(std::stoul(argv[++i]));
            } catch (const std::exception &) {
                std::cerr << "bad value for --threads\n";
                return 2;
            }
        } else if (arg == "--read-workers" && i + 1 < argc) {
            try {
                opt.readWorkers =
                    std::max<std::size_t>(1, std::stoul(argv[++i]));
            } catch (const std::exception &) {
                std::cerr << "bad value for --read-workers\n";
                return 2;
            }
        } else if (arg == "--out" && i + 1 < argc) {
            opt.out = argv[++i];
        } else if (arg == "--csv" && i + 1 < argc) {
            opt.csv = argv[++i];
        } else if (arg.rfind("--telemetry=", 0) == 0) {
            opt.telemetry = arg.substr(12);
        } else if (arg.rfind("--trace=", 0) == 0) {
            opt.trace = arg.substr(8);
        } else {
            std::cerr << "usage: bench_serve [--smoke] [--gate] "
                         "[--tcp HOST:PORT] [--ds NAME] [--threads N] "
                         "[--read-workers N] [--out PATH] [--csv PATH] "
                         "[--telemetry=PATH] [--trace=PATH]\n";
            return 2;
        }
    }
    return saga::run(opt);
}
