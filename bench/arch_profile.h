/**
 * @file
 * Shared architecture-characterization harness for the Figure 9/10
 * benches.
 *
 * Replays a workload with a single worker thread, all memory touches
 * routed through the trace-driven cache-hierarchy simulator (one simulator
 * per run, shared between phases, so the compute phase really can reuse
 * lines the update phase brought in — the mechanism behind the paper's
 * LLC observation). Per batch it snapshots the per-phase cache/instruction
 * deltas and runs the update phase's task structure through the
 * core-scaling simulator at the paper's core count.
 */

#ifndef SAGA_BENCH_ARCH_PROFILE_H_
#define SAGA_BENCH_ARCH_PROFILE_H_

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "perfmodel/cache_sim.h"
#include "perfmodel/scaling_sim.h"
#include "perfmodel/trace.h"
#include "perfmodel/workload_model.h"
#include "saga/stream_source.h"

namespace saga {
namespace bench {

/** Deltas attributed to one phase, accumulated over batches. */
struct PhaseStats
{
    std::uint64_t l2Hits = 0, l2Misses = 0;
    std::uint64_t llcHits = 0, llcMisses = 0;
    std::uint64_t instructions = 0;
    std::uint64_t dramBytes = 0;
    /** Modeled phase duration in abstract cycles at the model core count. */
    double makespanUnits = 0;

    void
    operator+=(const PhaseStats &other)
    {
        l2Hits += other.l2Hits;
        l2Misses += other.l2Misses;
        llcHits += other.llcHits;
        llcMisses += other.llcMisses;
        instructions += other.instructions;
        dramBytes += other.dramBytes;
        makespanUnits += other.makespanUnits;
    }

    double
    l2HitRatio() const
    {
        const std::uint64_t n = l2Hits + l2Misses;
        return n ? double(l2Hits) / double(n) : 0;
    }
    double
    llcHitRatio() const
    {
        const std::uint64_t n = llcHits + llcMisses;
        return n ? double(llcHits) / double(n) : 0;
    }
    double
    l2Mpki() const
    {
        return retiredInstructions() ? 1000.0 * double(l2Misses) /
                                           retiredInstructions()
                                     : 0;
    }
    double
    llcMpki() const
    {
        return retiredInstructions() ? 1000.0 * double(llcMisses) /
                                           retiredInstructions()
                                     : 0;
    }

    /** Abstract instructions scaled to retired-instruction magnitude. */
    double retiredInstructions() const;
};

/** Per-stage (P1/P2/P3), per-phase (update/compute) aggregates. */
struct ArchProfile
{
    PhaseStats update[3];
    PhaseStats compute[3];

    void
    operator+=(const ArchProfile &other)
    {
        for (int s = 0; s < 3; ++s) {
            update[s] += other.update[s];
            compute[s] += other.compute[s];
        }
    }
};

namespace detail {

struct CacheSnapshot
{
    std::uint64_t l2h, l2m, llch, llcm, instr, dram;
};

inline CacheSnapshot
snap(const perf::CacheSim &sim)
{
    return {sim.levelStats(1).hits,   sim.levelStats(1).misses,
            sim.levelStats(2).hits,   sim.levelStats(2).misses,
            sim.instructions(),       sim.dramBytes()};
}

inline void
addDelta(PhaseStats &stats, const CacheSnapshot &before,
         const CacheSnapshot &after)
{
    stats.l2Hits += after.l2h - before.l2h;
    stats.l2Misses += after.l2m - before.l2m;
    stats.llcHits += after.llch - before.llch;
    stats.llcMisses += after.llcm - before.llcm;
    stats.instructions += after.instr - before.instr;
    stats.dramBytes += after.dram - before.dram;
}

} // namespace detail

/**
 * Retired x86 instructions per abstract simulated instruction. The
 * tracer counts ~1 instruction per edge/probe/value touch; real graph
 * kernels retire an order of magnitude more (loop control, address
 * arithmetic, locking). Calibrated so MPKI magnitudes land in the range
 * Intel PCM reports for these workloads (paper Fig. 10b,c).
 */
inline constexpr double kInstructionScale = 12.0;

/** Modeled core cycles per abstract simulated instruction. */
inline constexpr double kCyclesPerInstruction = kInstructionScale * 1.5;

/**
 * Cache geometry for the arch studies: private L1/L2 kept in proportion
 * to the scaled datasets' working sets (the full Xeon hierarchy would
 * swallow them whole and produce vacuous hit ratios); the shared-LLC
 * share follows the same scaling.
 */
inline perf::CacheHierarchyConfig
archCacheConfig()
{
    perf::CacheHierarchyConfig config;
    config.lineSize = 64;
    config.levels = {
        {"L1", 32 * 1024, 8},
        {"L2", 256 * 1024, 16},
        {"LLC", 4ull * 1024 * 1024, 11},
    };
    return config;
}

/**
 * Characterize one {dataset, algorithm, data structure} workload (INC
 * compute model, as in the paper's Section VI methodology).
 *
 * @param model_cores core count for the scheduling model (paper: 32).
 */
inline ArchProfile
profileWorkload(const DatasetProfile &profile, AlgKind alg, DsKind ds,
                int model_cores)
{
    RunConfig cfg;
    cfg.ds = ds;
    cfg.alg = alg;
    cfg.model = ModelKind::INC;
    cfg.threads = 1; // tracing is single-threaded
    cfg.chunks = static_cast<std::size_t>(model_cores);
    cfg.directed = profile.directed;
    cfg.ctx.source = profile.source;

    auto runner = makeRunner(cfg);
    perf::CacheSim sim(archCacheConfig());
    perf::UpdatePhaseModel update_model(ds, model_cores, profile.directed);

    StreamSource stream(profile.generate(1), profile.batchSize, 1);
    const std::size_t batch_count = stream.batchCount();

    ArchProfile result;
    std::size_t index = 0;
    while (stream.hasNext()) {
        const EdgeBatch batch = stream.next();
        const int stage =
            static_cast<int>(std::min<std::size_t>(2, index * 3 /
                                                          batch_count));

        auto before = detail::snap(sim);
        {
            perf::ScopedSink scope(&sim);
            runner->updatePhase(batch);
        }
        auto mid = detail::snap(sim);
        detail::addDelta(result.update[stage], before, mid);
        result.update[stage].makespanUnits +=
            perf::scheduleTasks(update_model.batchTasks(batch),
                                model_cores,
                                perf::CostParams{}.lockWaitPenalty)
                .makespan;

        {
            perf::ScopedSink scope(&sim);
            runner->computePhase(batch);
        }
        auto after = detail::snap(sim);
        detail::addDelta(result.compute[stage], mid, after);
        // The compute phase parallelizes nearly perfectly across cores
        // (paper Fig. 9a); its modeled duration is instruction-limited.
        result.compute[stage].makespanUnits +=
            double(after.instr - mid.instr) * kCyclesPerInstruction /
            model_cores;

        ++index;
    }
    return result;
}

inline double
PhaseStats::retiredInstructions() const
{
    return double(instructions) * kInstructionScale;
}

/** Aggregate a dataset group x algorithm list (STail / HTail groups). */
inline ArchProfile
profileGroup(const std::vector<DatasetProfile> &profiles, DsKind ds,
             const std::vector<AlgKind> &algs, int model_cores)
{
    ArchProfile total;
    for (const DatasetProfile &profile : profiles) {
        for (AlgKind alg : algs) {
            total += profileWorkload(profile, alg, ds, model_cores);
            std::cerr << "." << std::flush;
        }
    }
    return total;
}

/** The paper's STail group: short-tailed datasets on AS. */
inline std::vector<DatasetProfile>
stailProfiles(double extra_scale = 1.0)
{
    std::vector<DatasetProfile> group;
    for (const DatasetProfile &p : scaledProfiles(extra_scale)) {
        if (!p.heavyTailed)
            group.push_back(p);
    }
    return group;
}

/** The paper's HTail group: heavy-tailed datasets on DAH. */
inline std::vector<DatasetProfile>
htailProfiles(double extra_scale = 1.0)
{
    std::vector<DatasetProfile> group;
    for (const DatasetProfile &p : scaledProfiles(extra_scale)) {
        if (p.heavyTailed)
            group.push_back(p);
    }
    return group;
}

/**
 * Extra scale factor for the cache/bandwidth studies. The default bench
 * datasets fit in a 22MB LLC, which would make every DRAM-traffic number
 * vacuous; the arch studies run a subset of workloads at several times
 * the size instead. Override with SAGA_ARCH_SCALE.
 */
inline double
archScale()
{
    if (const char *env = std::getenv("SAGA_ARCH_SCALE")) {
        const double scale = std::atof(env);
        if (scale > 0)
            return scale;
    }
    return 4.0;
}

/** Representative short-tailed subset for the arch studies. */
inline std::vector<DatasetProfile>
archStail(double arch_scale)
{
    return {findProfile("lj")->scaled(benchScale() * arch_scale),
            findProfile("rmat")->scaled(benchScale() * arch_scale)};
}

/** Representative heavy-tailed subset for the arch studies. */
inline std::vector<DatasetProfile>
archHtail(double arch_scale)
{
    return {findProfile("wiki")->scaled(benchScale() * arch_scale),
            findProfile("talk")->scaled(benchScale() * arch_scale)};
}

} // namespace bench
} // namespace saga

#endif // SAGA_BENCH_ARCH_PROFILE_H_
