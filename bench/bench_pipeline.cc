/**
 * @file
 * Pipelined-driver benchmark: the serial strict alternation (paper
 * Fig. 2b) vs the snapshot-isolated overlap loop on the same ingest+PR
 * workload, same thread budget. Emits BENCH_pipeline.json.
 *
 * Two speedups are reported per workload:
 *   measured = serial wall / pipelined wall — honest end-to-end gain,
 *              meaningful only when the host has cores to spare;
 *   modeled  = from the pipelined run's own per-batch stage/publish/
 *              compute spans, serialized sum vs ideal-overlap critical
 *              path (stage_1 + pub_1 + sum max(compute_k, stage_{k+1})
 *              + pub_{k+1} ... + compute_B). This isolates what the
 *              overlap buys given the phase durations, independent of
 *              whether the CI host can actually run writer and reader
 *              pools in parallel, so the regression gate uses it.
 *
 * Flags:
 *   --smoke             small dataset, 1 rep — used by CI
 *   --gate              exit 1 unless the headline modeled speedup is
 *                       >= 1.5x and serial/pipelined values bit-match
 *   --threads N         total thread budget (default: hardware)
 *   --out PATH          JSON output path (default: BENCH_pipeline.json)
 *   --telemetry=PATH    enable runtime metrics; write the telemetry JSON
 *                       dump (docs/TELEMETRY.md schema) at exit
 *   --trace=PATH        record phase spans; write Chrome trace JSON
 */

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "gen/profiles.h"
#include "saga/experiment.h"
#include "saga/stream_source.h"
#include "stats/table.h"
#include "telemetry/telemetry.h"

namespace saga {
namespace {

struct Options
{
    bool smoke = false;
    bool gate = false;
    std::size_t threads = 0; // 0 = hardware concurrency
    std::string out = "BENCH_pipeline.json";
    std::string telemetry; // metrics JSON dump path ("" = disabled)
    std::string trace;     // Chrome trace path ("" = disabled)
};

struct Measurement
{
    std::string dataset;
    std::string store;
    std::uint64_t totalEdges = 0;
    std::uint64_t batches = 0;
    double serialWall = 0;
    double pipelineWall = 0;
    // Sums over the pipelined run's per-batch spans.
    double stageSum = 0;
    double publishSum = 0;
    double computeSum = 0;
    double stallSum = 0;
    double modeledSerial = 0;
    double modeledOverlap = 0;

    double measuredSpeedup() const { return serialWall / pipelineWall; }
    double modeledSpeedup() const { return modeledSerial / modeledOverlap; }
    double serialEps() const { return totalEdges / serialWall; }
    double pipelineEps() const { return totalEdges / pipelineWall; }
};

/**
 * Ideal-overlap critical path of the measured spans: batch 1 stages and
 * publishes with nothing to hide behind; every later stage overlaps the
 * previous batch's compute; every publish is a barrier; the last compute
 * runs with nothing left to stage.
 */
double
overlapCriticalPath(const std::vector<BatchResult> &batches)
{
    if (batches.empty())
        return 0;
    double wall = batches[0].stageSeconds + batches[0].publishSeconds;
    for (std::size_t k = 0; k + 1 < batches.size(); ++k) {
        wall += std::max(batches[k].computeSeconds,
                         batches[k + 1].stageSeconds) +
                batches[k + 1].publishSeconds;
    }
    return wall + batches.back().computeSeconds;
}

/** The workload both drivers run: ingest + PageRank FS. */
RunConfig
workloadConfig(DsKind ds, std::size_t threads)
{
    RunConfig cfg;
    cfg.ds = ds;
    cfg.alg = AlgKind::PR;
    cfg.model = ModelKind::FS;
    cfg.threads = threads;
    // Balance compute against staging so the overlap is visible: at the
    // GAP default (20 iterations) PR dwarfs ingest and the pipeline can
    // only hide a sliver of it. 6 rounds is the streaming-refresh regime
    // the pipeline targets.
    cfg.ctx.prMaxIters = 4;
    return cfg;
}

Measurement
measure(const DatasetProfile &profile, DsKind ds, std::size_t threads,
        int reps)
{
    Measurement m;
    m.dataset = profile.name;
    m.store = toString(ds);
    m.totalEdges = profile.numEdges;
    m.batches = profile.batchCount();

    RunConfig serial_cfg = workloadConfig(ds, threads);
    RunConfig piped_cfg = serial_cfg;
    piped_cfg.pipeline = true; // writerThreads=0: half the same budget

    for (int r = 0; r < reps; ++r) {
        const StreamRun serial = runStream(profile, serial_cfg, 1);
        const StreamRun piped = runStream(profile, piped_cfg, 1);
        if (r == 0 || serial.wallSeconds < m.serialWall)
            m.serialWall = serial.wallSeconds;
        if (r == 0 || piped.wallSeconds < m.pipelineWall) {
            m.pipelineWall = piped.wallSeconds;
            m.stageSum = m.publishSum = m.computeSum = m.stallSum = 0;
            for (const BatchResult &b : piped.batches) {
                m.stageSum += b.stageSeconds;
                m.publishSum += b.publishSeconds;
                m.computeSum += b.computeSeconds;
                m.stallSum += b.stallSeconds;
            }
            m.modeledSerial = m.stageSum + m.publishSum + m.computeSum;
            m.modeledOverlap = overlapCriticalPath(piped.batches);
        }
    }
    std::cerr << "." << std::flush;
    return m;
}

/**
 * Correctness preflight: with paired pools (serial R threads vs
 * pipelined R readers + W=R writers) the two drivers must agree bit for
 * bit — PR FS floating-point sums expose any apply-order divergence.
 */
bool
equivalencePreflight()
{
    for (DsKind ds : bench::allDs()) {
        RunConfig serial = workloadConfig(ds, 2);
        serial.chunks = 4;
        RunConfig piped = serial;
        piped.pipeline = true;
        piped.threads = 4;
        piped.writerThreads = 2;

        const DatasetProfile profile = findProfile("rmat")->scaled(0.01);
        auto sr = bench::makeRunnerFor(profile, serial);
        auto pr = bench::makeRunnerFor(profile, piped);
        StreamSource s1(profile.generate(5), profile.batchSize, 5);
        StreamSource s2(profile.generate(5), profile.batchSize, 5);
        driveStream(*sr, s1);
        driveStream(*pr, s2);
        if (pr->numEdges() != sr->numEdges() ||
            pr->numNodes() != sr->numNodes() ||
            pr->values() != sr->values()) {
            std::cerr << "FAIL: pipelined run diverged from the serial "
                         "oracle on "
                      << toString(ds) << "\n";
            return false;
        }
    }
    return true;
}

void
writeJson(const std::string &path, const Options &opt, std::size_t threads,
          const std::vector<Measurement> &results)
{
    std::ofstream os(path);
    os << "{\n"
       << "  \"bench\": \"bench_pipeline\",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"smoke\": " << (opt.smoke ? "true" : "false") << ",\n"
       << "  \"note\": \"serial strict alternation vs pipelined overlap, "
          "ingest+PR FS, same thread budget; modeled = serialized span "
          "sum / ideal-overlap critical path of the measured spans\",\n"
       << "  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Measurement &m = results[i];
        os << "    {\"dataset\": \"" << m.dataset << "\", \"store\": \""
           << m.store << "\", \"total_edges\": " << m.totalEdges
           << ", \"batches\": " << m.batches
           << ", \"serial_wall_seconds\": " << m.serialWall
           << ", \"pipeline_wall_seconds\": " << m.pipelineWall
           << ", \"measured_speedup\": "
           << formatDouble(m.measuredSpeedup(), 3)
           << ", \"stage_seconds\": " << m.stageSum
           << ", \"publish_seconds\": " << m.publishSum
           << ", \"compute_seconds\": " << m.computeSum
           << ", \"stall_seconds\": " << m.stallSum
           << ", \"modeled_serial_seconds\": " << m.modeledSerial
           << ", \"modeled_overlap_seconds\": " << m.modeledOverlap
           << ", \"modeled_speedup\": "
           << formatDouble(m.modeledSpeedup(), 3) << "}"
           << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

int
run(const Options &opt)
{
    // Perf counters must open before any pool exists (see bench_ingest).
    if (!opt.telemetry.empty()) {
        telemetry::enablePerf();
        telemetry::setEnabled(true);
    }
    if (!opt.trace.empty())
        telemetry::setTraceEnabled(true);

    const std::size_t threads =
        opt.threads ? opt.threads
                    : std::max<std::size_t>(
                          1, std::thread::hardware_concurrency());

    std::cout << "==============================================\n"
              << "SAGA-Bench pipelined driver: serial alternation vs "
                 "snapshot-isolated overlap\n"
              << "threads=" << threads << " (hardware_concurrency="
              << std::thread::hardware_concurrency() << ")"
              << (opt.smoke ? "  [smoke]" : "") << "\n"
              << "==============================================\n";

    if (!equivalencePreflight())
        return 1;
    std::cout << "equivalence preflight passed (5 stores, bit-equal)\n";

    const double scale = benchScale() * (opt.smoke ? 0.1 : 1.0);
    const int reps = opt.smoke ? 1 : std::max(benchReps(), 2);

    // Re-batch to a coarse epoch stream (8 batches): the pipeline's
    // regime is large snapshot refreshes, where per-epoch staging work
    // (scatter + dedup scans, growing with degree) is commensurate with
    // the per-epoch recompute. The profiles' native fine-grained batch
    // sizes leave nothing for the overlap to hide: compute per batch
    // scales with the whole accumulated graph, staging only with the
    // batch.
    const auto coarse = [](DatasetProfile p) {
        p.batchSize = std::max<std::uint64_t>(1, p.numEdges / 12);
        return p;
    };

    // The headline combo comes first: the gate reads results.front().
    std::vector<Measurement> results;
    const DatasetProfile rmat = coarse(findProfile("rmat")->scaled(scale));
    results.push_back(measure(rmat, DsKind::AC, threads, reps));
    results.push_back(measure(rmat, DsKind::AS, threads, reps));
    if (!opt.smoke) {
        const DatasetProfile lj = coarse(findProfile("lj")->scaled(scale));
        results.push_back(measure(lj, DsKind::AC, threads, reps));
        results.push_back(measure(lj, DsKind::AS, threads, reps));
    }
    std::cerr << "\n";

    TextTable table({"Dataset", "Store", "Serial s", "Pipelined s",
                     "Measured x", "Modeled x", "Stall s"});
    for (const Measurement &m : results) {
        table.addRow({m.dataset, m.store, formatDouble(m.serialWall, 3),
                      formatDouble(m.pipelineWall, 3),
                      formatDouble(m.measuredSpeedup(), 2),
                      formatDouble(m.modeledSpeedup(), 2),
                      formatDouble(m.stallSum, 3)});
    }
    table.print(std::cout);
    writeJson(opt.out, opt, threads, results);
    std::cout << "\nWrote " << opt.out << "\n";

    if (!opt.telemetry.empty()) {
        if (!telemetry::writeMetricsJson(opt.telemetry)) {
            std::cerr << "FAIL: cannot write " << opt.telemetry << "\n";
            return 1;
        }
        std::cout << "Wrote " << opt.telemetry
                  << " (perf: " << telemetry::perfStatus() << ")\n";
    }
    if (!opt.trace.empty()) {
        if (!telemetry::writeTraceJson(opt.trace)) {
            std::cerr << "FAIL: cannot write " << opt.trace << "\n";
            return 1;
        }
        std::cout << "Wrote " << opt.trace << "\n";
    }

    if (opt.gate) {
        // The 1.5x claim is checked at full scale, where spans are tens
        // of milliseconds; smoke datasets are an order of magnitude
        // smaller and their sub-millisecond phases too noisy for a tight
        // bound, so the smoke gate only catches a pipeline that stopped
        // overlapping at all.
        const double floor = opt.smoke ? 1.2 : 1.5;
        const double modeled = results.front().modeledSpeedup();
        if (modeled < floor) {
            std::cerr << "FAIL: headline modeled speedup "
                      << formatDouble(modeled, 3) << "x < "
                      << formatDouble(floor, 1) << "x ("
                      << results.front().dataset << "/"
                      << results.front().store << ")\n";
            return 1;
        }
        std::cout << "speedup gate passed (modeled "
                  << formatDouble(modeled, 2) << "x >= "
                  << formatDouble(floor, 1) << "x)\n";
    }
    return 0;
}

} // namespace
} // namespace saga

int
main(int argc, char **argv)
{
    saga::Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            opt.smoke = true;
        } else if (arg == "--gate") {
            opt.gate = true;
        } else if (arg == "--threads" && i + 1 < argc) {
            opt.threads = static_cast<std::size_t>(std::stoul(argv[++i]));
        } else if (arg == "--out" && i + 1 < argc) {
            opt.out = argv[++i];
        } else if (arg.rfind("--telemetry=", 0) == 0) {
            opt.telemetry = arg.substr(12);
        } else if (arg.rfind("--trace=", 0) == 0) {
            opt.trace = arg.substr(8);
        } else {
            std::cerr << "usage: bench_pipeline [--smoke] [--gate] "
                         "[--threads N] [--out PATH] [--telemetry=PATH] "
                         "[--trace=PATH]\n";
            return 2;
        }
    }
    return saga::run(opt);
}
