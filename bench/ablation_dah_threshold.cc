/**
 * @file
 * Ablation: DAH degree-awareness knobs — the promotion threshold between
 * the low- and high-degree tables and the periodic flush interval
 * (Section III-A4). Swept on the heavy-tailed datasets where DAH is the
 * best structure.
 */

#include <iostream>

#include "bench_util.h"

namespace saga {
namespace {

void
run()
{
    bench::banner("Ablation — DAH promotion threshold and flush period");

    std::cout << "\nPromotion threshold sweep (flushPeriod = 2048)\n";
    TextTable threshold_table({"Dataset", "threshold", "P3 update s",
                               "P3 compute s", "P3 total s"});
    for (const char *name : {"wiki", "talk"}) {
        const DatasetProfile profile =
            findProfile(name)->scaled(benchScale());
        for (std::uint32_t threshold : {4u, 8u, 16u, 32u, 64u}) {
            RunConfig cfg;
            cfg.ds = DsKind::DAH;
            cfg.alg = AlgKind::BFS;
            cfg.model = ModelKind::INC;
            cfg.dah.promoteThreshold = threshold;
            const WorkloadStages stages =
                measureWorkload(profile, cfg, benchReps());
            threshold_table.addRow({profile.name,
                                    std::to_string(threshold),
                                    formatDouble(stages.update.p3.mean, 4),
                                    formatDouble(stages.compute.p3.mean, 4),
                                    formatDouble(stages.total.p3.mean, 4)});
            std::cerr << "." << std::flush;
        }
    }
    std::cerr << "\n";
    threshold_table.print(std::cout);

    std::cout << "\nFlush period sweep (threshold = 16)\n";
    TextTable flush_table({"Dataset", "flushPeriod", "P3 update s",
                           "P3 total s"});
    for (const char *name : {"wiki", "talk"}) {
        const DatasetProfile profile =
            findProfile(name)->scaled(benchScale());
        for (std::uint32_t period : {64u, 512u, 2048u, 16384u}) {
            RunConfig cfg;
            cfg.ds = DsKind::DAH;
            cfg.alg = AlgKind::BFS;
            cfg.model = ModelKind::INC;
            cfg.dah.flushPeriod = period;
            const WorkloadStages stages =
                measureWorkload(profile, cfg, benchReps());
            flush_table.addRow({profile.name, std::to_string(period),
                                formatDouble(stages.update.p3.mean, 4),
                                formatDouble(stages.total.p3.mean, 4)});
            std::cerr << "." << std::flush;
        }
    }
    std::cerr << "\n";
    flush_table.print(std::cout);

    std::cout << "\nExpected shape: very low thresholds promote almost "
                 "everything (high-degree-table churn, more directory "
                 "meta-ops); very high thresholds leave hub clusters in "
                 "the Robin-Hood table, lengthening every probe. The "
                 "flush period matters less — it bounds how long a "
                 "pending hub keeps probing the low table.\n";
}

} // namespace
} // namespace saga

int
main()
{
    saga::run();
    return 0;
}
