/**
 * @file
 * Ablation: sensitivity to the streaming batch size (the paper fixes
 * 500K edges per batch, citing [9], [12]-[14]; Section IV-B). Sweeps the
 * batch size on one short-tailed and one heavy-tailed dataset and reports
 * mean per-EDGE latency so different batch sizes are comparable.
 */

#include <iostream>

#include "bench_util.h"
#include "saga/stream_source.h"

namespace saga {
namespace {

void
run()
{
    bench::banner("Ablation — batch size (paper Section IV-B)");

    TextTable table({"Dataset", "DS", "batchSize", "batches",
                     "update us/edge", "compute us/edge",
                     "total us/edge"});

    for (const char *name : {"lj", "talk"}) {
        const DatasetProfile base =
            findProfile(name)->scaled(benchScale());
        for (double factor : {0.25, 0.5, 1.0, 2.0, 4.0}) {
            DatasetProfile profile = base;
            profile.batchSize = std::max<std::size_t>(
                16, static_cast<std::size_t>(base.batchSize * factor));

            RunConfig cfg;
            cfg.ds = bench::bestDsFor(profile);
            cfg.alg = AlgKind::CC;
            cfg.model = ModelKind::INC;
            const StreamRun sweep = runStream(profile, cfg, 1);

            double update = 0, compute = 0;
            for (const BatchResult &b : sweep.batches) {
                update += b.updateSeconds;
                compute += b.computeSeconds;
            }
            const double edges = double(profile.numEdges);
            table.addRow({profile.name, toString(cfg.ds),
                          std::to_string(profile.batchSize),
                          std::to_string(sweep.batches.size()),
                          formatDouble(update / edges * 1e6, 3),
                          formatDouble(compute / edges * 1e6, 3),
                          formatDouble((update + compute) / edges * 1e6,
                                       3)});
            std::cerr << "." << std::flush;
        }
    }
    std::cerr << "\n";
    table.print(std::cout);

    std::cout << "\nExpected shape: per-edge update cost is largely batch-"
                 "size independent, while per-edge compute cost drops with "
                 "larger batches (fewer compute phases amortize the "
                 "propagation) — the latency/recency trade-off that makes "
                 "batch size a policy knob rather than a correctness one.\n";
}

} // namespace
} // namespace saga

int
main()
{
    saga::run();
    return 0;
}
