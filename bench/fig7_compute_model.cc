/**
 * @file
 * Reproduces **Figure 7**: compute latency of FS normalized to INC at the
 * best data structure, over the three stages, for BFS, CC, PR, SSSP, and
 * SSWP (the paper omits MC from the figure because its FS and INC
 * implementations are naturally similar; we print it anyway, expecting a
 * ratio near 1).
 *
 * Expected shape: the largest graph (rmat) benefits most from INC, the
 * small heavy-tailed graphs (wiki, talk) least, and the benefit grows
 * from P1 to P3 as the graph gets bigger.
 */

#include <iostream>

#include "bench_util.h"

namespace saga {
namespace {

void
run()
{
    bench::banner("Figure 7 — FS compute latency normalized to INC "
                  "(best data structure)");

    TextTable table({"Alg", "Dataset", "DS", "FS/INC P1", "FS/INC P2",
                     "FS/INC P3"});

    for (AlgKind alg : bench::allAlgs()) {
        for (const DatasetProfile &profile : bench::scaledProfiles()) {
            const DsKind ds = bench::bestDsFor(profile);

            RunConfig inc_cfg;
            inc_cfg.ds = ds;
            inc_cfg.alg = alg;
            inc_cfg.model = ModelKind::INC;
            RunConfig fs_cfg = inc_cfg;
            fs_cfg.model = ModelKind::FS;

            const WorkloadStages inc =
                measureWorkload(profile, inc_cfg, benchReps());
            const WorkloadStages fs =
                measureWorkload(profile, fs_cfg, benchReps());

            std::vector<std::string> row{toString(alg), profile.name,
                                         toString(ds)};
            for (int stage = 0; stage < 3; ++stage) {
                const double i = inc.compute.stage(stage).mean;
                const double f = fs.compute.stage(stage).mean;
                row.push_back(i > 0 ? formatDouble(f / i, 2) : "n/a");
            }
            table.addRow(row);
            std::cerr << "." << std::flush;
        }
    }
    std::cerr << "\n";
    table.print(std::cout);

    std::cout
        << "\nExpected shape (paper Fig. 7 / Section V-C): rmat (the "
           "largest graph) is the largest INC beneficiary (paper: up to "
           "40x at P3 for CC); wiki/talk the smallest (PR 1.9x, SSWP/SSSP "
           "sometimes < 1, i.e. FS wins); the ratio grows with the stage; "
           "MC stays near 1; SSSP's optimized delta-stepping FS is "
           "competitive except on rmat.\n";
}

} // namespace
} // namespace saga

int
main()
{
    saga::run();
    return 0;
}
