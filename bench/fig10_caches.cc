/**
 * @file
 * Reproduces **Figure 10**: (a) private-L2 and shared-LLC hit ratios for
 * the update and compute phases, and (b,c) L2/LLC MPKI per phase, over the
 * three stages, for the STail (AS) and HTail (DAH) groups, averaged across
 * all six algorithms.
 *
 * Measured with the trace-driven cache simulator (Xeon Gold 6142 geometry)
 * substituting for the paper's Intel PCM counters. One simulator instance
 * is shared across phases, so the compute phase can genuinely reuse edge
 * data the update phase just brought into the hierarchy — the mechanism
 * behind the paper's LLC finding.
 */

#include <iostream>

#include "arch_profile.h"
#include "bench_util.h"

namespace saga {
namespace {

using bench::ArchProfile;
using bench::PhaseStats;

void
printGroup(const char *name, const ArchProfile &arch)
{
    std::cout << "\n--- " << name << " ---\n";

    std::cout << "(a) cache hit ratios\n";
    TextTable hits({"phase", "level", "P1", "P2", "P3"});
    for (bool update : {true, false}) {
        const PhaseStats *stats = update ? arch.update : arch.compute;
        std::vector<std::string> l2{update ? "update" : "compute", "L2"};
        std::vector<std::string> llc{update ? "update" : "compute", "LLC"};
        for (int stage = 0; stage < 3; ++stage) {
            l2.push_back(formatDouble(100 * stats[stage].l2HitRatio(), 1));
            llc.push_back(
                formatDouble(100 * stats[stage].llcHitRatio(), 1));
        }
        hits.addRow(l2);
        hits.addRow(llc);
    }
    hits.print(std::cout);

    std::cout << "(b,c) MPKI\n";
    TextTable mpki({"phase", "counter", "P1", "P2", "P3"});
    for (bool update : {true, false}) {
        const PhaseStats *stats = update ? arch.update : arch.compute;
        std::vector<std::string> l2{update ? "update" : "compute",
                                    "L2 MPKI"};
        std::vector<std::string> llc{update ? "update" : "compute",
                                     "LLC MPKI"};
        for (int stage = 0; stage < 3; ++stage) {
            l2.push_back(formatDouble(stats[stage].l2Mpki(), 2));
            llc.push_back(formatDouble(stats[stage].llcMpki(), 2));
        }
        mpki.addRow(l2);
        mpki.addRow(llc);
    }
    mpki.print(std::cout);
}

void
run()
{
    bench::banner("Figure 10 — L2/LLC hit ratios and MPKI, update vs "
                  "compute (cache simulator)");

    // Representative subset at arch-study scale: the cache conclusions
    // need working sets well beyond the 22MB LLC (see arch_profile.h).
    const std::vector<AlgKind> algs{AlgKind::BFS, AlgKind::CC};
    const double arch_scale = bench::archScale();

    const ArchProfile stail = bench::profileGroup(
        bench::archStail(arch_scale), DsKind::AS, algs, 32);
    const ArchProfile htail = bench::profileGroup(
        bench::archHtail(arch_scale), DsKind::DAH, algs, 32);
    std::cerr << "\n";

    printGroup("STail subset: lj/rmat on AS", stail);
    printGroup("HTail subset: wiki/talk on DAH", htail);

    std::cout
        << "\nExpected shape (paper Fig. 10): the compute phase has the "
           "higher LLC hit ratio (it reuses edge data the update phase "
           "fetched, and its larger working set exploits the 22MB LLC); "
           "the update phase has the higher L2 hit ratio (small working "
           "set); update L2 MPKI (paper: 3-9) sits below compute L2 MPKI "
           "(paper: 12-16); the LLC roughly halves the compute phase's "
           "MPKI between L2 and LLC levels.\n";
}

} // namespace
} // namespace saga

int
main()
{
    saga::run();
    return 0;
}
