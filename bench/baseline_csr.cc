/**
 * @file
 * Baseline: the static-graph strategy on a streaming workload (paper
 * Section II-C). Rebuilding a CSR from scratch on every batch gives the
 * best compute-phase layout but pays an update cost that grows with the
 * whole graph — quantifying the paper's argument that static-graph
 * solutions do not port to streaming graphs.
 */

#include <iostream>

#include "algo/bfs.h"
#include "algo/pr.h"
#include "bench_util.h"
#include "ds/csr.h"
#include "saga/stream_source.h"

namespace saga {
namespace {

template <typename Store, typename Alg>
WorkloadStages
measureDirect(const DatasetProfile &profile, RunConfig cfg)
{
    cfg.directed = profile.directed;
    cfg.ctx.source = profile.source;
    std::vector<std::vector<double>> update_runs, compute_runs, total_runs;
    for (int rep = 0; rep < benchReps(); ++rep) {
        Runner<Store, Alg> runner(cfg);
        StreamSource stream(profile.generate(1 + rep), profile.batchSize,
                            1 + rep);
        std::vector<double> update, compute, total;
        while (stream.hasNext()) {
            const BatchResult r = runner.processBatch(stream.next());
            update.push_back(r.updateSeconds);
            compute.push_back(r.computeSeconds);
            total.push_back(r.totalSeconds());
        }
        update_runs.push_back(std::move(update));
        compute_runs.push_back(std::move(compute));
        total_runs.push_back(std::move(total));
    }
    WorkloadStages stages;
    stages.update = summarizeStages(update_runs);
    stages.compute = summarizeStages(compute_runs);
    stages.total = summarizeStages(total_runs);
    return stages;
}

void
run()
{
    bench::banner("Baseline — per-batch CSR rebuild vs dynamic "
                  "structures (paper Section II-C)");

    TextTable table({"Dataset", "Alg", "DS", "P1 update s", "P3 update s",
                     "P3 compute s", "P3 total s"});

    for (const char *name : {"lj", "wiki"}) {
        const DatasetProfile profile =
            findProfile(name)->scaled(benchScale());
        for (AlgKind alg : {AlgKind::BFS, AlgKind::PR}) {
            RunConfig cfg;
            cfg.alg = alg;
            cfg.model = ModelKind::INC;

            // The streaming-native structure for this dataset.
            cfg.ds = bench::bestDsFor(profile);
            const WorkloadStages dynamic =
                measureWorkload(profile, cfg, benchReps());
            table.addRow({profile.name, toString(alg), toString(cfg.ds),
                          formatDouble(dynamic.update.p1.mean, 4),
                          formatDouble(dynamic.update.p3.mean, 4),
                          formatDouble(dynamic.compute.p3.mean, 4),
                          formatDouble(dynamic.total.p3.mean, 4)});

            // The static-graph strategy: full CSR rebuild per batch.
            WorkloadStages csr;
            switch (alg) {
              case AlgKind::BFS:
                csr = measureDirect<CsrStore, Bfs>(profile, cfg);
                break;
              default:
                csr = measureDirect<CsrStore, Pr>(profile, cfg);
                break;
            }
            table.addRow({profile.name, toString(alg), "csr-rebuild",
                          formatDouble(csr.update.p1.mean, 4),
                          formatDouble(csr.update.p3.mean, 4),
                          formatDouble(csr.compute.p3.mean, 4),
                          formatDouble(csr.total.p3.mean, 4)});
            std::cerr << "." << std::flush;
        }
    }
    std::cerr << "\n";
    table.print(std::cout);

    std::cout
        << "\nExpected shape: CSR's compute phase is the fastest layout, "
           "but its update latency grows with the WHOLE graph (the P3 "
           "rebuild re-sorts every edge ever streamed) while the dynamic "
           "structures' update cost tracks the batch — by P3 the rebuild "
           "dwarfs any compute advantage, which is why the update phase "
           "cannot be treated as a one-time overhead in streaming "
           "analytics.\n";
}

} // namespace
} // namespace saga

int
main()
{
    saga::run();
    return 0;
}
