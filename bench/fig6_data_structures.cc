/**
 * @file
 * Reproduces **Figure 6**: impact of the data structure. For every
 * algorithm (at the incremental compute model, the predominantly best) and
 * dataset, reports the P3-stage (a) batch, (b) update, and (c) compute
 * latencies of AC, DAH, and Stinger normalized to AS.
 *
 * A final section replays the update phase's work structure through the
 * core-scaling simulator at the paper's 32 cores. On this single-core
 * measurement host the wall-clock numbers cannot show the effects that
 * need real parallelism (Stinger's parallel intra-vertex search, AS's lock
 * contention); the modeled section recovers them.
 */

#include <iostream>
#include <map>

#include "bench_util.h"
#include "perfmodel/scaling_sim.h"
#include "perfmodel/workload_model.h"
#include "saga/stream_source.h"

namespace saga {
namespace {

struct DsStages
{
    StageSummary total, update, compute;
};

void
run()
{
    bench::banner("Figure 6 — latency of AC/DAH/Stinger normalized to AS "
                  "at P3 (INC compute model)");

    // results[dataset][alg][ds]
    std::map<std::string, std::map<AlgKind, std::map<DsKind, DsStages>>>
        results;

    for (const DatasetProfile &profile : bench::scaledProfiles()) {
        for (AlgKind alg : bench::allAlgs()) {
            for (DsKind ds : bench::allDs()) {
                RunConfig cfg;
                cfg.ds = ds;
                cfg.alg = alg;
                cfg.model = ModelKind::INC;
                const WorkloadStages stages =
                    measureWorkload(profile, cfg, benchReps());
                results[profile.name][alg][ds] =
                    {stages.total, stages.update, stages.compute};
                std::cerr << "." << std::flush;
            }
        }
    }
    std::cerr << "\n";

    const auto normRow = [&](const std::string &dataset, AlgKind alg,
                             const StageSummary DsStages::*part) {
        const auto &per_ds = results[dataset][alg];
        const double as = (per_ds.at(DsKind::AS).*part).p3.mean;
        std::vector<std::string> row{toString(alg), dataset};
        for (DsKind ds : {DsKind::AC, DsKind::DAH, DsKind::Stinger}) {
            const double x = (per_ds.at(ds).*part).p3.mean;
            row.push_back(as > 0 ? formatDouble(x / as, 2) : "n/a");
        }
        return row;
    };

    std::cout << "\n(a) P3 batch-processing latency normalized to AS\n";
    TextTable total_table({"Alg", "Dataset", "AC/AS", "DAH/AS",
                           "Stinger/AS"});
    for (AlgKind alg : bench::allAlgs()) {
        for (const DatasetProfile &profile : bench::scaledProfiles())
            total_table.addRow(normRow(profile.name, alg,
                                       &DsStages::total));
    }
    total_table.print(std::cout);

    std::cout << "\n(b) P3 update latency normalized to AS (BFS runs; the "
                 "update phase is algorithm-independent)\n";
    TextTable update_table({"Alg", "Dataset", "AC/AS", "DAH/AS",
                            "Stinger/AS"});
    for (const DatasetProfile &profile : bench::scaledProfiles())
        update_table.addRow(normRow(profile.name, AlgKind::BFS,
                                    &DsStages::update));
    update_table.print(std::cout);

    std::cout << "\n(c) P3 compute latency normalized to AS\n";
    TextTable compute_table({"Alg", "Dataset", "AC/AS", "DAH/AS",
                             "Stinger/AS"});
    for (AlgKind alg : bench::allAlgs()) {
        for (const DatasetProfile &profile : bench::scaledProfiles())
            compute_table.addRow(normRow(profile.name, alg,
                                         &DsStages::compute));
    }
    compute_table.print(std::cout);

    // ---- Modeled update latency at the paper's core count. ----
    std::cout << "\n(b') update latency normalized to AS, *modeled at 32 "
                 "cores* (core-scaling simulator; recovers contention / "
                 "intra-vertex parallelism effects a 1-core host hides)\n";
    TextTable model_table({"Dataset", "AC/AS", "DAH/AS", "Stinger/AS"});
    for (const DatasetProfile &profile : bench::scaledProfiles()) {
        std::map<DsKind, double> makespan;
        const perf::CostParams params;
        for (DsKind ds : bench::allDs()) {
            perf::UpdatePhaseModel model(ds, 32, profile.directed, params);
            StreamSource stream(profile.generate(1), profile.batchSize, 1);
            double total = 0;
            while (stream.hasNext()) {
                const EdgeBatch batch = stream.next();
                total += perf::scheduleTasks(model.batchTasks(batch), 32,
                                             params.lockWaitPenalty)
                             .makespan;
            }
            makespan[ds] = total;
        }
        model_table.addRow(
            {profile.name,
             formatDouble(makespan[DsKind::AC] / makespan[DsKind::AS], 2),
             formatDouble(makespan[DsKind::DAH] / makespan[DsKind::AS], 2),
             formatDouble(makespan[DsKind::Stinger] / makespan[DsKind::AS],
                          2)});
    }
    model_table.print(std::cout);

    std::cout
        << "\nExpected shape (paper Fig. 6): on lj/orkut/rmat DAH is the "
           "worst (1.7-4.1x AS) and AS the best; on wiki/talk the update "
           "phase flips — AS is 5.6-12.8x worse than DAH. In the modeled "
           "section, heavy-tailed update ordering is AS > AC > Stinger > "
           "DAH (highest to lowest latency).\n";
}

} // namespace
} // namespace saga

int
main()
{
    saga::run();
    return 0;
}
