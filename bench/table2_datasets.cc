/**
 * @file
 * Reproduces **Table II**: the evaluated datasets — vertices, edges, and
 * batchCount — plus the measured post-dedup graph size as a sanity column.
 */

#include <iostream>

#include "bench_util.h"
#include "ds/dyn_graph.h"
#include "ds/reference.h"
#include "platform/thread_pool.h"
#include "saga/stream_source.h"

namespace saga {
namespace {

void
run()
{
    bench::banner("Table II — evaluated datasets");

    TextTable table({"Dataset", "directed", "vertices", "edges",
                     "batchSize", "batchCount", "uniqueEdges"});

    ThreadPool pool(0);
    for (const DatasetProfile &profile : bench::scaledProfiles()) {
        // Stream the whole dataset once to count unique directed edges.
        DynGraph<ReferenceStore> g(profile.directed);
        StreamSource stream(profile.generate(1), profile.batchSize, 1);
        while (stream.hasNext())
            g.update(stream.next(), pool);

        table.addRow({profile.name,
                      profile.directed ? "yes" : "no",
                      std::to_string(profile.numNodes),
                      std::to_string(profile.numEdges),
                      std::to_string(profile.batchSize),
                      std::to_string(profile.batchCount()),
                      std::to_string(g.numEdges())});
    }
    table.print(std::cout);

    std::cout << "\nPaper reference (full scale): LJ 4.8M/69M/138, Orkut "
                 "3.1M/117M/235, RMAT 32M/500M/1000, Wiki 1.8M/28.5M/58, "
                 "Talk 2.4M/5.0M/11.\n"
                 "The profiles preserve the orderings (RMAT largest, Talk "
                 "smallest with 11 batches) at bench scale.\n";
}

} // namespace
} // namespace saga

int
main()
{
    saga::run();
    return 0;
}
