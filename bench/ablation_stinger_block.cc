/**
 * @file
 * Ablation: Stinger edge-block capacity. The paper fixes 16 edges per
 * block (Section III-A3); this sweep shows the trade-off that choice
 * sits on — small blocks mean more pointer chasing on search, large
 * blocks waste space and lengthen the serialized free-slot walk less
 * often.
 */

#include <iostream>

#include "bench_util.h"

namespace saga {
namespace {

void
run()
{
    bench::banner("Ablation — Stinger edge-block capacity (paper: 16)");

    TextTable table({"Dataset", "blockCap", "P3 update s", "P3 compute s",
                     "P3 total s"});

    for (const char *name : {"orkut", "talk"}) {
        const DatasetProfile profile =
            findProfile(name)->scaled(benchScale());
        for (std::uint32_t cap : {2u, 4u, 8u, 16u, 32u, 64u}) {
            RunConfig cfg;
            cfg.ds = DsKind::Stinger;
            cfg.alg = AlgKind::BFS;
            cfg.model = ModelKind::INC;
            cfg.stingerBlock = cap;
            const WorkloadStages stages =
                measureWorkload(profile, cfg, benchReps());
            table.addRow({profile.name, std::to_string(cap),
                          formatDouble(stages.update.p3.mean, 4),
                          formatDouble(stages.compute.p3.mean, 4),
                          formatDouble(stages.total.p3.mean, 4)});
            std::cerr << "." << std::flush;
        }
    }
    std::cerr << "\n";
    table.print(std::cout);

    std::cout << "\nExpected shape: tiny blocks (2-4) pay pointer-chasing "
                 "overhead on both phases; very large blocks stop helping "
                 "once most vertices fit in one block. The paper's 16 "
                 "sits on the flat part of the curve.\n";
}

} // namespace
} // namespace saga

int
main()
{
    saga::run();
    return 0;
}
