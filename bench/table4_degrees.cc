/**
 * @file
 * Reproduces **Table IV**: maximum in/out degree of each dataset, over the
 * entire edge list and within one (shuffled) batch. This is the structural
 * property the paper identifies as deciding data-structure ranking: Wiki
 * and Talk must show far heavier tails than LJ, Orkut, and RMAT.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "saga/stream_source.h"

namespace saga {
namespace {

struct DegreePair
{
    std::uint64_t maxIn = 0;
    std::uint64_t maxOut = 0;
};

DegreePair
maxDegrees(const std::vector<Edge> &edges, NodeId n)
{
    std::vector<std::uint32_t> out(n, 0), in(n, 0);
    for (const Edge &e : edges) {
        ++out[e.src];
        ++in[e.dst];
    }
    DegreePair result;
    result.maxOut = *std::max_element(out.begin(), out.end());
    result.maxIn = *std::max_element(in.begin(), in.end());
    return result;
}

void
run()
{
    bench::banner("Table IV — max in/out degree (entire dataset vs one "
                  "batch)");

    TextTable table({"Dataset", "tail", "maxIn(all)", "maxOut(all)",
                     "maxIn(batch)", "maxOut(batch)", "maxIn(all)/|E| %"});

    for (const DatasetProfile &profile : bench::scaledProfiles()) {
        std::vector<Edge> edges = profile.generate(1);
        const DegreePair whole = maxDegrees(edges, profile.numNodes);

        // One shuffled batch, as in the paper (batch size = profile's).
        StreamSource stream(std::move(edges), profile.batchSize, 1);
        const EdgeBatch batch = stream.next();
        const DegreePair one = maxDegrees(batch.edges(), profile.numNodes);

        table.addRow(
            {profile.name, profile.heavyTailed ? "heavy" : "short",
             std::to_string(whole.maxIn), std::to_string(whole.maxOut),
             std::to_string(one.maxIn), std::to_string(one.maxOut),
             formatDouble(100.0 * double(std::max(whole.maxIn,
                                                  whole.maxOut)) /
                              double(profile.numEdges),
                          3)});
    }
    table.print(std::cout);

    std::cout << "\nExpected shape (paper Table IV): wiki's max in-degree "
                 "and talk's max out-degree dwarf every short-tailed "
                 "dataset, both across the dataset and inside a single "
                 "shuffled batch.\n";
}

} // namespace
} // namespace saga

int
main()
{
    saga::run();
    return 0;
}
