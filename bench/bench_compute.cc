/**
 * @file
 * Compute-engine microbenchmark: the pre-engine kernels (push-only
 * vertex-balanced BFS, full-sweep CC, vertex-balanced PR/MC) vs the
 * direction-optimizing, edge-balanced engine in src/algo/, per store, on
 * a power-law graph with planted hubs — the skew regime the α/β
 * heuristic and the edge-balanced split were built for.
 *
 * The legacy kernels below are faithful copies of the pre-engine
 * computeFs bodies (see git history of src/algo/{bfs,cc,pr,mc}.h), kept
 * here so the comparison measures the engine against what it replaced,
 * not against a strawman. Emits BENCH_compute.json next to the table.
 *
 * Flags:
 *   --smoke             small graph, 1 rep, and a regression gate: the
 *                       engine must not be pathologically slower and the
 *                       direction heuristic must actually take pull
 *                       rounds (bfs.pull_rounds > 0) — used by CI
 *   --threads N         worker threads (default: hardware concurrency)
 *   --out PATH          JSON output path (default: BENCH_compute.json)
 *   --telemetry=PATH    enable perf counters; write the telemetry JSON
 *                       dump (docs/TELEMETRY.md schema) at exit
 *   --trace=PATH        record compute spans; write Chrome trace JSON
 */

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "algo/bfs.h"
#include "algo/cc.h"
#include "algo/frontier.h"
#include "algo/mc.h"
#include "algo/pr.h"
#include "ds/adj_chunked.h"
#include "ds/dyn_graph.h"
#include "ds/stinger.h"
#include "gen/powerlaw.h"
#include "perfmodel/trace.h"
#include "platform/atomic_ops.h"
#include "platform/parallel_for.h"
#include "platform/thread_pool.h"
#include "platform/timer.h"
#include "saga/edge_batch.h"
#include "stats/table.h"
#include "telemetry/telemetry.h"

namespace saga {
namespace {

struct Options
{
    bool smoke = false;
    std::size_t threads = 0; // 0 = hardware concurrency
    std::string out = "BENCH_compute.json";
    std::string telemetry; // metrics JSON dump path ("" = disabled)
    std::string trace;     // Chrome trace path ("" = disabled)
};

struct Measurement
{
    std::string store;
    std::string alg;
    double legacySeconds = 0;
    double engineSeconds = 0;
    std::uint64_t pushRounds = 0; // engine rounds, from telemetry deltas
    std::uint64_t pullRounds = 0;

    double speedup() const { return legacySeconds / engineSeconds; }
};

std::uint64_t
counterNow(telemetry::Counter c)
{
    return telemetry::snapshot()
        .counters[static_cast<std::size_t>(c)];
}

// ---------------------------------------------------------------------------
// Legacy kernels: the pre-engine computeFs bodies, copied verbatim
// (including the per-arc perf:: hooks the shipped kernels carried) minus
// the SAGA_COUNT/SAGA_PHASE macros, so the timed loops match what
// shipped before the engine.
// ---------------------------------------------------------------------------

/** Push-only level-synchronous BFS, vertex-balanced frontier slices. */
struct LegacyBfs
{
    template <typename Graph>
    static void
    run(const Graph &g, ThreadPool &pool, std::vector<Bfs::Value> &values,
        const AlgContext &ctx)
    {
        constexpr Bfs::Value kInf = Bfs::kInf;
        const NodeId n = g.numNodes();
        values.assign(n, kInf);
        if (ctx.source >= n)
            return;
        values[ctx.source] = 0;

        std::vector<NodeId> frontier{ctx.source};
        Bfs::Value depth = 0;
        while (!frontier.empty()) {
            ++depth;
            frontier = expandFrontier(pool, frontier,
                                      [&](NodeId v, auto &push) {
                g.outNeigh(v, [&](const Neighbor &nbr) {
                    perf::ops(1);
                    perf::touch(&values[nbr.node], sizeof(Bfs::Value));
                    if (atomicLoad(values[nbr.node]) == kInf &&
                        atomicClaim(values[nbr.node], kInf, depth)) {
                        perf::touchWrite(&values[nbr.node],
                                         sizeof(Bfs::Value));
                        push(nbr.node);
                    }
                });
            });
        }
    }
};

/** Full-sweep min-label iteration until a pass makes no change. */
struct LegacyCc
{
    template <typename Graph>
    static void
    run(const Graph &g, ThreadPool &pool, std::vector<Cc::Value> &values,
        const AlgContext &)
    {
        const NodeId n = g.numNodes();
        values.resize(n);
        for (NodeId v = 0; v < n; ++v)
            values[v] = v;

        std::vector<char> changed(pool.size(), 1);
        bool any_change = true;
        while (any_change) {
            std::fill(changed.begin(), changed.end(), 0);
            parallelSlices(pool, 0, n,
                           [&](std::size_t w, std::uint64_t lo,
                               std::uint64_t hi) {
                char local_change = 0;
                for (NodeId v = static_cast<NodeId>(lo); v < hi; ++v) {
                    Cc::Value best = values[v];
                    const auto relax = [&](const Neighbor &nbr) {
                        perf::ops(1);
                        perf::touch(&values[nbr.node],
                                    sizeof(Cc::Value));
                        const Cc::Value label =
                            atomicLoad(values[nbr.node]);
                        if (label < best)
                            best = label;
                    };
                    g.inNeigh(v, relax);
                    g.outNeigh(v, relax);
                    if (best < values[v]) {
                        atomicStore(values[v], best);
                        perf::touchWrite(&values[v], sizeof(Cc::Value));
                        local_change = 1;
                    }
                }
                changed[w] = local_change;
            });
            any_change = false;
            for (char c : changed)
                any_change |= (c != 0);
        }
    }
};

/** Vertex-balanced pull power iteration. */
struct LegacyPr
{
    template <typename Graph>
    static void
    run(const Graph &g, ThreadPool &pool, std::vector<Pr::Value> &values,
        const AlgContext &ctx)
    {
        const NodeId n = g.numNodes();
        if (n == 0) {
            values.clear();
            return;
        }
        values.assign(n, 1.0 / n);
        std::vector<Pr::Value> next(n, 0);
        std::vector<double> worker_delta(pool.size(), 0);

        for (std::uint32_t iter = 0; iter < ctx.prMaxIters; ++iter) {
            parallelSlices(pool, 0, n,
                           [&](std::size_t w, std::uint64_t lo,
                               std::uint64_t hi) {
                double delta = 0;
                for (NodeId v = static_cast<NodeId>(lo); v < hi; ++v) {
                    next[v] = Pr::recompute(g, v, values, ctx);
                    delta += std::fabs(next[v] - values[v]);
                }
                worker_delta[w] = delta;
            });
            values.swap(next);
            double total_delta = 0;
            for (double d : worker_delta)
                total_delta += d;
            if (total_delta < ctx.prTolerance)
                break;
        }
    }
};

/** Max-label propagation, vertex-balanced, no insertion dedup. */
struct LegacyMc
{
    template <typename Graph>
    static void
    run(const Graph &g, ThreadPool &pool, std::vector<Mc::Value> &values,
        const AlgContext &)
    {
        const NodeId n = g.numNodes();
        values.resize(n);
        std::vector<NodeId> frontier(n);
        for (NodeId v = 0; v < n; ++v) {
            values[v] = v;
            frontier[v] = v;
        }

        while (!frontier.empty()) {
            frontier = expandFrontier(pool, frontier,
                                      [&](NodeId v, auto &push) {
                const Mc::Value value = atomicLoad(values[v]);
                g.outNeigh(v, [&](const Neighbor &nbr) {
                    perf::ops(1);
                    perf::touch(&values[nbr.node], sizeof(Mc::Value));
                    if (atomicFetchMax(values[nbr.node], value)) {
                        perf::touchWrite(&values[nbr.node],
                                         sizeof(Mc::Value));
                        push(nbr.node);
                    }
                });
            });
        }
    }
};

// ---------------------------------------------------------------------------

template <typename Alg, typename Legacy, typename Graph>
Measurement
measure(const std::string &store, const std::string &alg, const Graph &g,
        ThreadPool &pool, const AlgContext &ctx, int reps,
        telemetry::Counter push_counter, telemetry::Counter pull_counter)
{
    Measurement m;
    m.store = store;
    m.alg = alg;

    std::vector<typename Alg::Value> legacy_values;
    std::vector<typename Alg::Value> engine_values;
    for (int r = 0; r < reps; ++r) {
        Timer legacy_timer;
        Legacy::run(g, pool, legacy_values, ctx);
        const double legacy_s = legacy_timer.seconds();

        const std::uint64_t push0 = counterNow(push_counter);
        const std::uint64_t pull0 = counterNow(pull_counter);
        Timer engine_timer;
        {
            telemetry::PhaseScope scope(telemetry::Phase::Compute,
                                        telemetry::PhaseScope::kSamplePerf);
            Alg::computeFs(g, pool, engine_values, ctx);
        }
        const double engine_s = engine_timer.seconds();
        m.pushRounds = counterNow(push_counter) - push0;
        m.pullRounds = counterNow(pull_counter) - pull0;

        if (r == 0) {
            m.legacySeconds = legacy_s;
            m.engineSeconds = engine_s;
        } else { // best-of-reps
            m.legacySeconds = std::min(m.legacySeconds, legacy_s);
            m.engineSeconds = std::min(m.engineSeconds, engine_s);
        }
    }

    // Cross-check: both kernels computed the same fixpoint. PR iterates
    // to a tolerance, so compare exactly only for the discrete algs.
    if (alg != "pr" && legacy_values != engine_values) {
        std::cerr << "FAIL: " << store << "/" << alg
                  << " engine result differs from legacy kernel\n";
        std::exit(1);
    }
    std::cerr << "." << std::flush;
    return m;
}

template <typename Graph>
void
measureStore(const std::string &store, const Graph &g, ThreadPool &pool,
             int reps, std::vector<Measurement> &results)
{
    AlgContext ctx;
    ctx.source = 0; // the planted out-hub: a fat frontier by round 2
    ctx.numNodesHint = g.numNodes();
    using C = telemetry::Counter;
    results.push_back(measure<Bfs, LegacyBfs>(store, "bfs", g, pool, ctx,
                                              reps, C::BfsPushRounds,
                                              C::BfsPullRounds));
    results.push_back(measure<Cc, LegacyCc>(store, "cc", g, pool, ctx,
                                            reps, C::CcSparseRounds,
                                            C::CcDenseRounds));
    results.push_back(measure<Pr, LegacyPr>(store, "pr", g, pool, ctx,
                                            reps, C::ComputeRounds,
                                            C::ComputeRounds));
    results.push_back(measure<Mc, LegacyMc>(store, "mc", g, pool, ctx,
                                            reps, C::ComputeRounds,
                                            C::ComputeRounds));
}

void
writeJson(const std::string &path, const Options &opt, std::size_t threads,
          std::uint64_t num_nodes, std::uint64_t num_edges,
          const std::vector<Measurement> &results)
{
    std::ofstream os(path);
    os << "{\n"
       << "  \"bench\": \"bench_compute\",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"smoke\": " << (opt.smoke ? "true" : "false") << ",\n"
       << "  \"num_nodes\": " << num_nodes << ",\n"
       << "  \"num_edges\": " << num_edges << ",\n"
       << "  \"note\": \"FS compute phase, power-law graph with planted "
          "hubs; speedup = legacy_seconds / engine_seconds; rounds are "
          "push/pull for bfs, sparse/dense for cc, total for pr and mc\",\n"
       << "  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Measurement &m = results[i];
        os << "    {\"store\": \"" << m.store << "\", \"alg\": \""
           << m.alg << "\", \"legacy_seconds\": " << m.legacySeconds
           << ", \"engine_seconds\": " << m.engineSeconds
           << ", \"speedup\": " << formatDouble(m.speedup(), 3)
           << ", \"push_rounds\": " << m.pushRounds
           << ", \"pull_rounds\": " << m.pullRounds << "}"
           << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

int
run(const Options &opt)
{
    // Perf counters must open before the pool exists (inherit=1 folds
    // later-created workers into the counts — see perf_counters.h).
    if (!opt.telemetry.empty())
        telemetry::enablePerf();
    // Counters stay on even without --telemetry: the round counts in the
    // JSON (and the smoke gate on pull rounds) come from snapshots.
    telemetry::setEnabled(true);
    if (!opt.trace.empty())
        telemetry::setTraceEnabled(true);

    ThreadPool pool(opt.threads);
    const std::size_t threads = pool.size();
    const std::size_t chunks = threads; // matches the driver default

    std::cout << "==============================================\n"
              << "SAGA-Bench compute engine: legacy kernels vs "
                 "direction-optimizing, edge-balanced engine\n"
              << "threads=" << threads << " (hardware_concurrency="
              << std::thread::hardware_concurrency() << ")"
              << (opt.smoke ? "  [smoke]" : "") << "\n"
              << "==============================================\n";

    PowerLawParams params;
    params.numNodes = opt.smoke ? (1u << 15) : (1u << 17);
    params.numEdges = opt.smoke ? (1ull << 19) : (1ull << 22);
    // Planted hubs: the BFS source is a fat out-hub (the frontier's
    // out-degree sum explodes by round 2, tripping the α switch) and a
    // handful of in-hubs give the pull rounds skewed in-degrees for the
    // edge-balanced split to flatten.
    params.hubs = {{0, 0.05, 0.0},
                   {3, 0.0, 0.04},
                   {7, 0.02, 0.02},
                   {11, 0.0, 0.03}};
    const std::vector<Edge> edges = generatePowerLaw(params);
    const EdgeBatch batch{std::vector<Edge>(edges)};
    const int reps = opt.smoke ? 1 : 3;

    std::vector<Measurement> results;
    {
        DynGraph<AdjChunkedStore> g(/*directed=*/true, chunks);
        g.update(batch, pool);
        measureStore("AC", g, pool, reps, results);
    }
    {
        DynGraph<StingerStore> g(/*directed=*/true);
        g.update(batch, pool);
        measureStore("Stinger", g, pool, reps, results);
    }
    std::cerr << "\n";

    TextTable table({"Store", "Alg", "Legacy ms", "Engine ms", "Speedup",
                     "Rounds (push/pull)"});
    for (const Measurement &m : results) {
        table.addRow({m.store, m.alg,
                      formatDouble(m.legacySeconds * 1e3, 2),
                      formatDouble(m.engineSeconds * 1e3, 2),
                      formatDouble(m.speedup(), 2),
                      std::to_string(m.pushRounds) + "/" +
                          std::to_string(m.pullRounds)});
    }
    table.print(std::cout);
    writeJson(opt.out, opt, threads, params.numNodes, edges.size(),
              results);
    std::cout << "\nWrote " << opt.out << "\n";

    if (!opt.telemetry.empty()) {
        if (!telemetry::writeMetricsJson(opt.telemetry)) {
            std::cerr << "FAIL: cannot write " << opt.telemetry << "\n";
            return 1;
        }
        std::cout << "Wrote " << opt.telemetry
                  << " (perf: " << telemetry::perfStatus() << ")\n";
    }
    if (!opt.trace.empty()) {
        if (!telemetry::writeTraceJson(opt.trace)) {
            std::cerr << "FAIL: cannot write " << opt.trace << "\n";
            return 1;
        }
        std::cout << "Wrote " << opt.trace << "\n";
    }

    if (opt.smoke) {
        bool ok = true;
        for (const Measurement &m : results) {
            // Loose perf floor: CI runners are too noisy/small for the
            // >= 2x claim (that is checked on multi-worker perf runs and
            // recorded in the committed BENCH_compute.json); here the
            // engine must only never be pathologically slower.
            if (m.speedup() < 0.5) {
                std::cerr << "FAIL: " << m.store << "/" << m.alg
                          << " engine is "
                          << formatDouble(1.0 / m.speedup(), 2)
                          << "x slower than the legacy kernel\n";
                ok = false;
            }
#ifndef SAGA_TELEMETRY_DISABLED
            // Hard functional gate: on this hub graph the α heuristic
            // must actually switch BFS to pull, or the whole direction
            // machinery silently degenerated to push-only.
            if (m.alg == "bfs" && m.pullRounds == 0) {
                std::cerr << "FAIL: " << m.store
                          << "/bfs took no pull rounds — direction "
                             "heuristic never switched\n";
                ok = false;
            }
#endif
        }
        if (!ok)
            return 1;
        std::cout << "smoke gate passed (speedup >= 0.5x, "
                     "bfs.pull_rounds > 0)\n";
    }
    return 0;
}

} // namespace
} // namespace saga

int
main(int argc, char **argv)
{
    saga::Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            opt.smoke = true;
        } else if (arg == "--threads" && i + 1 < argc) {
            opt.threads = static_cast<std::size_t>(std::stoul(argv[++i]));
        } else if (arg == "--out" && i + 1 < argc) {
            opt.out = argv[++i];
        } else if (arg.rfind("--telemetry=", 0) == 0) {
            opt.telemetry = arg.substr(12);
        } else if (arg.rfind("--trace=", 0) == 0) {
            opt.trace = arg.substr(8);
        } else {
            std::cerr << "usage: bench_compute [--smoke] [--threads N] "
                         "[--out PATH] [--telemetry=PATH] [--trace=PATH]\n";
            return 2;
        }
    }
    return saga::run(opt);
}
