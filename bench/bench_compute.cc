/**
 * @file
 * Compute-engine microbenchmark: the pre-engine kernels (push-only
 * vertex-balanced BFS, full-sweep CC, vertex-balanced PR/MC) vs the
 * direction-optimizing, edge-balanced engine in src/algo/, per store, on
 * a power-law graph with planted hubs — the skew regime the α/β
 * heuristic and the edge-balanced split were built for.
 *
 * PageRank is measured once per PrVariant (pull / blocked / hybrid) so
 * the locality ablation of DESIGN.md §10 is reproducible from the CLI,
 * and the locality claim is validated two independent ways:
 *  - real LLC-miss deltas per variant from the telemetry perf sampler
 *    (recorded in the JSON whenever the PMU is available);
 *  - --mpki: a single-threaded cache-simulator cross-check on a larger
 *    graph whose rank array exceeds a scaled LLC, gating that the
 *    blocked variant's simulated LLC MPKI actually drops vs pull.
 *
 * The legacy kernels below are faithful copies of the pre-engine
 * computeFs bodies (see git history of src/algo/{bfs,cc,pr,mc}.h), kept
 * here so the comparison measures the engine against what it replaced,
 * not against a strawman. Emits BENCH_compute.json next to the table.
 *
 * Flags:
 *   --smoke             small graph, 1 rep, and a regression gate: the
 *                       engine must not be pathologically slower, the
 *                       direction heuristic must take pull rounds, the
 *                       best PR variant must clear the 1.8x floor, and
 *                       the blocked variant must take blocked rounds
 *   --threads N         worker threads (default: hardware concurrency)
 *   --store NAME        measure only one store (ac|stinger|hybrid)
 *   --alg NAME          measure only one algorithm (bfs|cc|pr|mc)
 *   --variant NAME      measure only one PR variant (pull|blocked|hybrid)
 *   --mpki              run the cache-sim MPKI cross-check and gate it
 *   --out PATH          JSON output path (default: BENCH_compute.json)
 *   --telemetry=PATH    write the telemetry JSON dump at exit
 *   --trace=PATH        record compute spans; write Chrome trace JSON
 */

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "algo/bfs.h"
#include "algo/cc.h"
#include "algo/frontier.h"
#include "algo/mc.h"
#include "algo/pr.h"
#include "ds/adj_chunked.h"
#include "ds/dyn_graph.h"
#include "ds/hybrid.h"
#include "ds/stinger.h"
#include "gen/powerlaw.h"
#include "perfmodel/cache_sim.h"
#include "perfmodel/trace.h"
#include "platform/atomic_ops.h"
#include "platform/parallel_for.h"
#include "platform/thread_pool.h"
#include "platform/timer.h"
#include "saga/edge_batch.h"
#include "stats/table.h"
#include "telemetry/telemetry.h"

namespace saga {
namespace {

struct Options
{
    bool smoke = false;
    bool mpki = false;
    std::size_t threads = 0; // 0 = hardware concurrency
    std::string store;     // "" = all (ac|stinger|hybrid)
    std::string alg;       // "" = all
    std::string variant;   // "" = all PR variants
    std::string out = "BENCH_compute.json";
    std::string telemetry; // metrics JSON dump path ("" = disabled)
    std::string trace;     // Chrome trace path ("" = disabled)
};

struct Measurement
{
    std::string store;
    std::string alg;
    std::string variant; // PR rows only ("" elsewhere)
    double legacySeconds = 0;
    double engineSeconds = 0;
    std::uint64_t pushRounds = 0; // engine rounds, from telemetry deltas
    std::uint64_t pullRounds = 0;
    std::uint64_t llcMisses = 0; // PMU delta across the engine run
    bool llcValid = false;

    double speedup() const { return legacySeconds / engineSeconds; }
};

/** One PR variant's cache-sim + PMU cross-check numbers (--mpki). */
struct MpkiResult
{
    std::string variant;
    double l1Mpki = 0;
    double l2Mpki = 0;
    double llcMpki = 0;
    std::uint64_t dramBytes = 0;
    std::uint64_t llcMisses = 0; // PMU, sim detached
    bool llcValid = false;
};

std::uint64_t
counterNow(telemetry::Counter c)
{
    return telemetry::snapshot()
        .counters[static_cast<std::size_t>(c)];
}

/** Accumulated PMU LLC misses attributed to Phase::Compute so far. */
std::uint64_t
llcMissesNow(bool &valid)
{
    const telemetry::MetricsSnapshot snap = telemetry::snapshot();
    valid = snap.perfAvailable &&
            snap.perfEventLive[static_cast<std::size_t>(
                telemetry::PerfEvent::LlcMisses)];
    return snap.perf[static_cast<std::size_t>(telemetry::Phase::Compute)]
        .delta[static_cast<std::size_t>(telemetry::PerfEvent::LlcMisses)];
}

// ---------------------------------------------------------------------------
// Legacy kernels: the pre-engine computeFs bodies, copied verbatim
// (including the per-arc perf:: hooks the shipped kernels carried) minus
// the SAGA_COUNT/SAGA_PHASE macros, so the timed loops match what
// shipped before the engine.
// ---------------------------------------------------------------------------

/** Push-only level-synchronous BFS, vertex-balanced frontier slices. */
struct LegacyBfs
{
    template <typename Graph>
    static void
    run(const Graph &g, ThreadPool &pool, std::vector<Bfs::Value> &values,
        const AlgContext &ctx)
    {
        constexpr Bfs::Value kInf = Bfs::kInf;
        const NodeId n = g.numNodes();
        values.assign(n, kInf);
        if (ctx.source >= n)
            return;
        values[ctx.source] = 0;

        std::vector<NodeId> frontier{ctx.source};
        Bfs::Value depth = 0;
        while (!frontier.empty()) {
            ++depth;
            frontier = expandFrontier(pool, frontier,
                                      [&](NodeId v, auto &push) {
                g.outNeigh(v, [&](const Neighbor &nbr) {
                    perf::ops(1);
                    perf::touch(&values[nbr.node], sizeof(Bfs::Value));
                    if (atomicLoad(values[nbr.node]) == kInf &&
                        atomicClaim(values[nbr.node], kInf, depth)) {
                        perf::touchWrite(&values[nbr.node],
                                         sizeof(Bfs::Value));
                        push(nbr.node);
                    }
                });
            });
        }
    }
};

/** Full-sweep min-label iteration until a pass makes no change. */
struct LegacyCc
{
    template <typename Graph>
    static void
    run(const Graph &g, ThreadPool &pool, std::vector<Cc::Value> &values,
        const AlgContext &)
    {
        const NodeId n = g.numNodes();
        values.resize(n);
        for (NodeId v = 0; v < n; ++v)
            values[v] = v;

        std::vector<char> changed(pool.size(), 1);
        bool any_change = true;
        while (any_change) {
            std::fill(changed.begin(), changed.end(), 0);
            parallelSlices(pool, 0, n,
                           [&](std::size_t w, std::uint64_t lo,
                               std::uint64_t hi) {
                char local_change = 0;
                for (NodeId v = static_cast<NodeId>(lo); v < hi; ++v) {
                    Cc::Value best = values[v];
                    const auto relax = [&](const Neighbor &nbr) {
                        perf::ops(1);
                        perf::touch(&values[nbr.node],
                                    sizeof(Cc::Value));
                        const Cc::Value label =
                            atomicLoad(values[nbr.node]);
                        if (label < best)
                            best = label;
                    };
                    g.inNeigh(v, relax);
                    g.outNeigh(v, relax);
                    if (best < values[v]) {
                        atomicStore(values[v], best);
                        perf::touchWrite(&values[v], sizeof(Cc::Value));
                        local_change = 1;
                    }
                }
                changed[w] = local_change;
            });
            any_change = false;
            for (char c : changed)
                any_change |= (c != 0);
        }
    }
};

/** Vertex-balanced pull power iteration (per-edge degree + division). */
struct LegacyPr
{
    template <typename Graph>
    static void
    run(const Graph &g, ThreadPool &pool, std::vector<Pr::Value> &values,
        const AlgContext &ctx)
    {
        const NodeId n = g.numNodes();
        if (n == 0) {
            values.clear();
            return;
        }
        values.assign(n, 1.0 / n);
        std::vector<Pr::Value> next(n, 0);
        std::vector<double> worker_delta(pool.size(), 0);

        for (std::uint32_t iter = 0; iter < ctx.prMaxIters; ++iter) {
            parallelSlices(pool, 0, n,
                           [&](std::size_t w, std::uint64_t lo,
                               std::uint64_t hi) {
                double delta = 0;
                for (NodeId v = static_cast<NodeId>(lo); v < hi; ++v) {
                    next[v] = Pr::recompute(g, v, values, ctx);
                    delta += std::fabs(next[v] - values[v]);
                }
                worker_delta[w] = delta;
            });
            values.swap(next);
            double total_delta = 0;
            for (double d : worker_delta)
                total_delta += d;
            if (total_delta < ctx.prTolerance)
                break;
        }
    }
};

/** Max-label propagation, vertex-balanced, no insertion dedup. */
struct LegacyMc
{
    template <typename Graph>
    static void
    run(const Graph &g, ThreadPool &pool, std::vector<Mc::Value> &values,
        const AlgContext &)
    {
        const NodeId n = g.numNodes();
        values.resize(n);
        std::vector<NodeId> frontier(n);
        for (NodeId v = 0; v < n; ++v) {
            values[v] = v;
            frontier[v] = v;
        }

        while (!frontier.empty()) {
            frontier = expandFrontier(pool, frontier,
                                      [&](NodeId v, auto &push) {
                const Mc::Value value = atomicLoad(values[v]);
                g.outNeigh(v, [&](const Neighbor &nbr) {
                    perf::ops(1);
                    perf::touch(&values[nbr.node], sizeof(Mc::Value));
                    if (atomicFetchMax(values[nbr.node], value)) {
                        perf::touchWrite(&values[nbr.node],
                                         sizeof(Mc::Value));
                        push(nbr.node);
                    }
                });
            });
        }
    }
};

// ---------------------------------------------------------------------------

template <typename Alg, typename Legacy, typename Graph>
Measurement
measure(const std::string &store, const std::string &alg, const Graph &g,
        ThreadPool &pool, const AlgContext &ctx, int reps,
        telemetry::Counter push_counter, telemetry::Counter pull_counter)
{
    Measurement m;
    m.store = store;
    m.alg = alg;

    std::vector<typename Alg::Value> legacy_values;
    std::vector<typename Alg::Value> engine_values;
    for (int r = 0; r < reps; ++r) {
        Timer legacy_timer;
        Legacy::run(g, pool, legacy_values, ctx);
        const double legacy_s = legacy_timer.seconds();

        const std::uint64_t push0 = counterNow(push_counter);
        const std::uint64_t pull0 = counterNow(pull_counter);
        Timer engine_timer;
        {
            telemetry::PhaseScope scope(telemetry::Phase::Compute,
                                        telemetry::PhaseScope::kSamplePerf);
            Alg::computeFs(g, pool, engine_values, ctx);
        }
        const double engine_s = engine_timer.seconds();
        m.pushRounds = counterNow(push_counter) - push0;
        m.pullRounds = counterNow(pull_counter) - pull0;

        if (r == 0) {
            m.legacySeconds = legacy_s;
            m.engineSeconds = engine_s;
        } else { // best-of-reps
            m.legacySeconds = std::min(m.legacySeconds, legacy_s);
            m.engineSeconds = std::min(m.engineSeconds, engine_s);
        }
    }

    // Cross-check: both kernels computed the same fixpoint (PR goes
    // through measurePr's tolerance compare instead).
    if (legacy_values != engine_values) {
        std::cerr << "FAIL: " << store << "/" << alg
                  << " engine result differs from legacy kernel\n";
        std::exit(1);
    }
    std::cerr << "." << std::flush;
    return m;
}

/**
 * PageRank: one legacy baseline, then one engine measurement per
 * PrVariant so the committed JSON records the whole ablation. Each
 * variant's ranks must agree with the legacy pull fixpoint within a
 * small multiple of prTolerance (FP reassociation + at most one round
 * of convergence slack).
 */
template <typename Graph>
void
measurePr(const std::string &store, const Graph &g, ThreadPool &pool,
          AlgContext ctx, int reps, const std::string &variant_filter,
          std::vector<Measurement> &results)
{
    std::vector<Pr::Value> legacy_values;
    double legacy_s = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
        Timer timer;
        LegacyPr::run(g, pool, legacy_values, ctx);
        legacy_s = std::min(legacy_s, timer.seconds());
    }

    struct VariantSpec
    {
        const char *name;
        PrVariant variant;
    };
    constexpr VariantSpec kSpecs[] = {
        {"pull", PrVariant::Pull},
        {"blocked", PrVariant::Blocked},
        {"hybrid", PrVariant::Hybrid},
    };

    using C = telemetry::Counter;
    for (const VariantSpec &spec : kSpecs) {
        if (!variant_filter.empty() && variant_filter != spec.name)
            continue;
        ctx.prVariant = spec.variant;
        Measurement m;
        m.store = store;
        m.alg = "pr";
        m.variant = spec.name;
        m.legacySeconds = legacy_s;
        m.engineSeconds = std::numeric_limits<double>::infinity();

        std::vector<Pr::Value> engine_values;
        for (int r = 0; r < reps; ++r) {
            const std::uint64_t blocked0 = counterNow(C::PrBlockedRounds);
            const std::uint64_t pull0 = counterNow(C::PrPullRounds);
            bool llc_valid = false;
            const std::uint64_t llc0 = llcMissesNow(llc_valid);
            Timer timer;
            {
                telemetry::PhaseScope scope(
                    telemetry::Phase::Compute,
                    telemetry::PhaseScope::kSamplePerf);
                Pr::computeFs(g, pool, engine_values, ctx);
            }
            m.engineSeconds = std::min(m.engineSeconds, timer.seconds());
            m.pushRounds = counterNow(C::PrBlockedRounds) - blocked0;
            m.pullRounds = counterNow(C::PrPullRounds) - pull0;
            m.llcMisses = llcMissesNow(llc_valid) - llc0;
            m.llcValid = llc_valid;
        }

        double l1 = 0;
        for (std::size_t i = 0; i < legacy_values.size(); ++i)
            l1 += std::fabs(engine_values[i] - legacy_values[i]);
        if (l1 > 4 * ctx.prTolerance) {
            std::cerr << "FAIL: " << store << "/pr[" << spec.name
                      << "] diverges from the legacy fixpoint (L1 = "
                      << l1 << ")\n";
            std::exit(1);
        }
        std::cerr << "." << std::flush;
        results.push_back(m);
    }
}

template <typename Graph>
void
measureStore(const std::string &store, const Graph &g, ThreadPool &pool,
             int reps, const Options &opt,
             std::vector<Measurement> &results)
{
    AlgContext ctx;
    ctx.source = 0; // the planted out-hub: a fat frontier by round 2
    ctx.numNodesHint = g.numNodes();
    using C = telemetry::Counter;
    const auto want = [&](const char *alg) {
        return opt.alg.empty() || opt.alg == alg;
    };
    if (want("bfs"))
        results.push_back(measure<Bfs, LegacyBfs>(store, "bfs", g, pool,
                                                  ctx, reps,
                                                  C::BfsPushRounds,
                                                  C::BfsPullRounds));
    if (want("cc"))
        results.push_back(measure<Cc, LegacyCc>(store, "cc", g, pool, ctx,
                                                reps, C::CcSparseRounds,
                                                C::CcDenseRounds));
    if (want("pr"))
        measurePr(store, g, pool, ctx, reps, opt.variant, results);
    if (want("mc"))
        results.push_back(measure<Mc, LegacyMc>(store, "mc", g, pool, ctx,
                                                reps, C::ComputeRounds,
                                                C::ComputeRounds));
}

/**
 * Cache-sim MPKI cross-check (--mpki): run each PR variant single-
 * threaded on a graph whose rank array exceeds a scaled LLC, first under
 * the cache simulator (the forSlices single-worker path runs inline on
 * this thread, so the thread-local sink sees every touch), then again
 * sim-free under the PMU sampler. The two measurements validate each
 * other: simulated LLC MPKI and real LLC misses must move the same way.
 */
std::vector<MpkiResult>
runMpkiCrossCheck(std::uint64_t &mpki_nodes, std::uint64_t &mpki_edges)
{
    PowerLawParams params;
    params.numNodes = 1u << 18;  // 2 MB of ranks: exceeds the scaled LLC
    params.numEdges = 1ull << 20;
    params.hubs = {{0, 0.05, 0.0}, {3, 0.0, 0.04}, {7, 0.02, 0.02}};
    const std::vector<Edge> edges = generatePowerLaw(params);
    mpki_nodes = params.numNodes;
    mpki_edges = edges.size();

    ThreadPool pool(1);
    DynGraph<AdjChunkedStore> g(/*directed=*/true, /*chunks=*/1);
    g.update(EdgeBatch{std::vector<Edge>(edges)}, pool);

    AlgContext ctx;
    ctx.numNodesHint = g.numNodes();
    ctx.prMaxIters = 2; // per-touch simulation: bound the work

    // Scaled geometry: same L1 as the paper's Xeon, but an LLC small
    // enough that this graph's rank array spills — the regime the
    // full-size runs hit at 10^8 vertices on the real 22 MB part.
    perf::CacheHierarchyConfig config;
    config.lineSize = 64;
    config.levels = {{"L1d", 32 * 1024, 8},
                     {"L2", 256 * 1024, 8},
                     {"LLC", 2 * 1024 * 1024, 16}};

    struct VariantSpec
    {
        const char *name;
        PrVariant variant;
    };
    constexpr VariantSpec kSpecs[] = {
        {"pull", PrVariant::Pull},
        {"blocked", PrVariant::Blocked},
        {"hybrid", PrVariant::Hybrid},
    };

    std::vector<MpkiResult> out;
    std::vector<Pr::Value> values;
    for (const VariantSpec &spec : kSpecs) {
        ctx.prVariant = spec.variant;
        MpkiResult r;
        r.variant = spec.name;
        {
            perf::CacheSim sim(config);
            perf::ScopedSink sink(&sim);
            Pr::computeFs(g, pool, values, ctx);
            r.l1Mpki = sim.mpki(0);
            r.l2Mpki = sim.mpki(1);
            r.llcMpki = sim.mpki(2);
            r.dramBytes = sim.dramBytes();
        }
        {
            bool llc_valid = false;
            const std::uint64_t llc0 = llcMissesNow(llc_valid);
            telemetry::PhaseScope scope(telemetry::Phase::Compute,
                                        telemetry::PhaseScope::kSamplePerf);
            Pr::computeFs(g, pool, values, ctx);
            scope.finish();
            r.llcMisses = llcMissesNow(llc_valid) - llc0;
            r.llcValid = llc_valid;
        }
        std::cerr << "." << std::flush;
        out.push_back(r);
    }
    return out;
}

void
writeJson(const std::string &path, const Options &opt, std::size_t threads,
          std::uint64_t num_nodes, std::uint64_t num_edges,
          const std::vector<Measurement> &results,
          const std::vector<MpkiResult> &mpki, std::uint64_t mpki_nodes,
          std::uint64_t mpki_edges)
{
    std::ofstream os(path);
    os << "{\n"
       << "  \"bench\": \"bench_compute\",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"smoke\": " << (opt.smoke ? "true" : "false") << ",\n"
       << "  \"num_nodes\": " << num_nodes << ",\n"
       << "  \"num_edges\": " << num_edges << ",\n"
       << "  \"note\": \"FS compute phase, power-law graph with planted "
          "hubs; speedup = legacy_seconds / engine_seconds; rounds are "
          "push/pull for bfs, sparse/dense for cc, blocked/pull for pr, "
          "total for mc; llc_misses is the PMU delta across the engine "
          "run (0 when no PMU)\",\n"
       << "  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Measurement &m = results[i];
        os << "    {\"store\": \"" << m.store << "\", \"alg\": \""
           << m.alg << "\"";
        if (!m.variant.empty())
            os << ", \"variant\": \"" << m.variant << "\"";
        os << ", \"legacy_seconds\": " << m.legacySeconds
           << ", \"engine_seconds\": " << m.engineSeconds
           << ", \"speedup\": " << formatDouble(m.speedup(), 3)
           << ", \"push_rounds\": " << m.pushRounds
           << ", \"pull_rounds\": " << m.pullRounds
           << ", \"llc_misses\": " << m.llcMisses
           << ", \"llc_valid\": " << (m.llcValid ? "true" : "false")
           << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]";
    if (!mpki.empty()) {
        os << ",\n  \"pr_mpki\": {\n"
           << "    \"note\": \"single-threaded cache-sim cross-check; "
              "scaled 32KB/256KB/2MB geometry so the rank array spills "
              "the LLC; perf_llc_misses from a second sim-free run\",\n"
           << "    \"num_nodes\": " << mpki_nodes << ",\n"
           << "    \"num_edges\": " << mpki_edges << ",\n"
           << "    \"iterations\": 2,\n"
           << "    \"variants\": [\n";
        for (std::size_t i = 0; i < mpki.size(); ++i) {
            const MpkiResult &r = mpki[i];
            os << "      {\"variant\": \"" << r.variant
               << "\", \"l1_mpki\": " << formatDouble(r.l1Mpki, 2)
               << ", \"l2_mpki\": " << formatDouble(r.l2Mpki, 2)
               << ", \"llc_mpki\": " << formatDouble(r.llcMpki, 2)
               << ", \"dram_bytes\": " << r.dramBytes
               << ", \"perf_llc_misses\": " << r.llcMisses
               << ", \"perf_valid\": " << (r.llcValid ? "true" : "false")
               << "}" << (i + 1 < mpki.size() ? "," : "") << "\n";
        }
        os << "    ]\n  }";
    }
    os << "\n}\n";
}

int
run(const Options &opt)
{
    // Perf counters must open before the pool exists (inherit=1 folds
    // later-created workers into the counts — see perf_counters.h).
    // Opened unconditionally: the per-variant LLC-miss deltas in the
    // JSON come from it (gracefully absent without a PMU).
    telemetry::enablePerf();
    // Counters stay on even without --telemetry: the round counts in the
    // JSON (and the smoke gates on rounds) come from snapshots.
    telemetry::setEnabled(true);
    if (!opt.trace.empty())
        telemetry::setTraceEnabled(true);

    ThreadPool pool(opt.threads);
    const std::size_t threads = pool.size();
    const std::size_t chunks = threads; // matches the driver default

    std::cout << "==============================================\n"
              << "SAGA-Bench compute engine: legacy kernels vs "
                 "direction-optimizing, edge-balanced engine\n"
              << "threads=" << threads << " (hardware_concurrency="
              << std::thread::hardware_concurrency() << ")"
              << (opt.smoke ? "  [smoke]" : "") << "\n"
              << "==============================================\n";

    PowerLawParams params;
    params.numNodes = opt.smoke ? (1u << 15) : (1u << 17);
    params.numEdges = opt.smoke ? (1ull << 19) : (1ull << 22);
    // Planted hubs: the BFS source is a fat out-hub (the frontier's
    // out-degree sum explodes by round 2, tripping the α switch) and a
    // handful of in-hubs give the pull rounds skewed in-degrees for the
    // edge-balanced split to flatten.
    params.hubs = {{0, 0.05, 0.0},
                   {3, 0.0, 0.04},
                   {7, 0.02, 0.02},
                   {11, 0.0, 0.03}};
    const std::vector<Edge> edges = generatePowerLaw(params);
    const EdgeBatch batch{std::vector<Edge>(edges)};
    const int reps = opt.smoke ? 1 : 3;

    const auto want_store = [&](const char *name) {
        return opt.store.empty() || opt.store == name;
    };
    std::vector<Measurement> results;
    if (want_store("ac")) {
        DynGraph<AdjChunkedStore> g(/*directed=*/true, chunks);
        g.update(batch, pool);
        measureStore("AC", g, pool, reps, opt, results);
    }
    if (want_store("stinger")) {
        DynGraph<StingerStore> g(/*directed=*/true);
        g.update(batch, pool);
        measureStore("Stinger", g, pool, reps, opt, results);
    }
    if (want_store("hybrid")) {
        // The compute-ground check for the tiered store: hub traversal
        // goes through forNeighborsBlock runs instead of a contiguous
        // row, and this measurement keeps that regression honest.
        DynGraph<HybridStore> g(/*directed=*/true, chunks, HybridConfig{});
        g.update(batch, pool);
        measureStore("Hybrid", g, pool, reps, opt, results);
    }

    std::vector<MpkiResult> mpki;
    std::uint64_t mpki_nodes = 0;
    std::uint64_t mpki_edges = 0;
    if (opt.mpki)
        mpki = runMpkiCrossCheck(mpki_nodes, mpki_edges);
    std::cerr << "\n";

    TextTable table({"Store", "Alg", "Legacy ms", "Engine ms", "Speedup",
                     "Rounds (push/pull)"});
    for (const Measurement &m : results) {
        const std::string alg =
            m.variant.empty() ? m.alg : m.alg + "[" + m.variant + "]";
        table.addRow({m.store, alg,
                      formatDouble(m.legacySeconds * 1e3, 2),
                      formatDouble(m.engineSeconds * 1e3, 2),
                      formatDouble(m.speedup(), 2),
                      std::to_string(m.pushRounds) + "/" +
                          std::to_string(m.pullRounds)});
    }
    table.print(std::cout);
    if (!mpki.empty()) {
        TextTable sim_table({"PR variant", "L1 MPKI", "L2 MPKI",
                             "LLC MPKI", "DRAM MB", "PMU LLC misses"});
        for (const MpkiResult &r : mpki) {
            sim_table.addRow({r.variant, formatDouble(r.l1Mpki, 2),
                              formatDouble(r.l2Mpki, 2),
                              formatDouble(r.llcMpki, 2),
                              formatDouble(r.dramBytes / 1e6, 1),
                              r.llcValid ? std::to_string(r.llcMisses)
                                         : "n/a"});
        }
        std::cout << "\nCache-sim MPKI cross-check (single-threaded, "
                  << mpki_nodes << " nodes / " << mpki_edges
                  << " edges, scaled 32KB/256KB/2MB hierarchy):\n";
        sim_table.print(std::cout);
    }
    writeJson(opt.out, opt, threads, params.numNodes, edges.size(),
              results, mpki, mpki_nodes, mpki_edges);
    std::cout << "\nWrote " << opt.out << "\n";

    if (!opt.telemetry.empty()) {
        if (!telemetry::writeMetricsJson(opt.telemetry)) {
            std::cerr << "FAIL: cannot write " << opt.telemetry << "\n";
            return 1;
        }
        std::cout << "Wrote " << opt.telemetry
                  << " (perf: " << telemetry::perfStatus() << ")\n";
    }
    if (!opt.trace.empty()) {
        if (!telemetry::writeTraceJson(opt.trace)) {
            std::cerr << "FAIL: cannot write " << opt.trace << "\n";
            return 1;
        }
        std::cout << "Wrote " << opt.trace << "\n";
    }

    bool ok = true;
    if (opt.smoke) {
        double best_pr = 0;
        bool saw_pr = false;
        for (const Measurement &m : results) {
            if (m.alg == "pr") {
                saw_pr = true;
                best_pr = std::max(best_pr, m.speedup());
#ifndef SAGA_TELEMETRY_DISABLED
                // Functional gates: the pinned variants must actually
                // take their own round types, or the dispatch silently
                // fell through.
                if (m.variant == "blocked" && m.pushRounds == 0) {
                    std::cerr << "FAIL: " << m.store
                              << "/pr[blocked] took no blocked rounds\n";
                    ok = false;
                }
                if (m.variant == "pull" && m.pullRounds == 0) {
                    std::cerr << "FAIL: " << m.store
                              << "/pr[pull] took no pull rounds\n";
                    ok = false;
                }
#endif
                continue;
            }
            // Loose perf floor for the discrete algorithms: CI runners
            // are too noisy/small for the >= 2x claims (those are
            // checked on perf runs and recorded in the committed JSON);
            // here the engine must only never be pathologically slower.
            if (m.speedup() < 0.5) {
                std::cerr << "FAIL: " << m.store << "/" << m.alg
                          << " engine is "
                          << formatDouble(1.0 / m.speedup(), 2)
                          << "x slower than the legacy kernel\n";
                ok = false;
            }
#ifndef SAGA_TELEMETRY_DISABLED
            // Hard functional gate: on this hub graph the α heuristic
            // must actually switch BFS to pull, or the whole direction
            // machinery silently degenerated to push-only.
            if (m.alg == "bfs" && m.pullRounds == 0) {
                std::cerr << "FAIL: " << m.store
                          << "/bfs took no pull rounds — direction "
                             "heuristic never switched\n";
                ok = false;
            }
#endif
        }
        // The locality tentpole's floor: the best PR variant must beat
        // the legacy kernel by >= 1.8x even on a noisy CI runner (the
        // committed perf-run JSON records >= 2x).
        if (saw_pr && best_pr < 1.8) {
            std::cerr << "FAIL: best pr variant speedup "
                      << formatDouble(best_pr, 2) << "x < 1.8x floor\n";
            ok = false;
        }
        if (ok)
            std::cout << "smoke gate passed (speedup >= 0.5x, "
                         "bfs.pull_rounds > 0, best pr >= 1.8x)\n";
    }
    if (!mpki.empty()) {
        // The cross-check gate: propagation blocking must reduce the
        // simulated LLC MPKI vs pull, and when a PMU is present the
        // real LLC misses must agree directionally.
        const auto find = [&](const char *name) -> const MpkiResult * {
            for (const MpkiResult &r : mpki)
                if (r.variant == name)
                    return &r;
            return nullptr;
        };
        const MpkiResult *pull = find("pull");
        const MpkiResult *blocked = find("blocked");
        if (pull && blocked) {
            if (blocked->llcMpki >= pull->llcMpki) {
                std::cerr << "FAIL: blocked LLC MPKI "
                          << formatDouble(blocked->llcMpki, 2)
                          << " is not below pull "
                          << formatDouble(pull->llcMpki, 2) << "\n";
                ok = false;
            }
            if (pull->llcValid && blocked->llcValid &&
                blocked->llcMisses >= pull->llcMisses) {
                std::cerr << "FAIL: PMU LLC misses disagree with the "
                             "simulator (blocked "
                          << blocked->llcMisses << " >= pull "
                          << pull->llcMisses << ")\n";
                ok = false;
            }
            if (ok)
                std::cout << "mpki cross-check passed (blocked LLC MPKI "
                          << formatDouble(blocked->llcMpki, 2)
                          << " < pull "
                          << formatDouble(pull->llcMpki, 2)
                          << (pull->llcValid && blocked->llcValid
                                  ? ", PMU agrees"
                                  : ", PMU unavailable")
                          << ")\n";
        }
    }
    return ok ? 0 : 1;
}

} // namespace
} // namespace saga

int
main(int argc, char **argv)
{
    saga::Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            opt.smoke = true;
        } else if (arg == "--mpki") {
            opt.mpki = true;
        } else if (arg == "--threads" && i + 1 < argc) {
            opt.threads = static_cast<std::size_t>(std::stoul(argv[++i]));
        } else if (arg == "--store" && i + 1 < argc) {
            opt.store = argv[++i];
        } else if (arg.rfind("--store=", 0) == 0) {
            opt.store = arg.substr(8);
        } else if (arg == "--alg" && i + 1 < argc) {
            opt.alg = argv[++i];
        } else if (arg.rfind("--alg=", 0) == 0) {
            opt.alg = arg.substr(6);
        } else if (arg == "--variant" && i + 1 < argc) {
            opt.variant = argv[++i];
        } else if (arg.rfind("--variant=", 0) == 0) {
            opt.variant = arg.substr(10);
        } else if (arg == "--out" && i + 1 < argc) {
            opt.out = argv[++i];
        } else if (arg.rfind("--telemetry=", 0) == 0) {
            opt.telemetry = arg.substr(12);
        } else if (arg.rfind("--trace=", 0) == 0) {
            opt.trace = arg.substr(8);
        } else {
            std::cerr << "usage: bench_compute [--smoke] [--mpki] "
                         "[--threads N] [--store ac|stinger|hybrid] "
                         "[--alg NAME] [--variant NAME] [--out PATH] "
                         "[--telemetry=PATH] [--trace=PATH]\n";
            return 2;
        }
    }
    return saga::run(opt);
}
