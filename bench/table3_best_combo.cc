/**
 * @file
 * Reproduces **Table III**: for every algorithm x dataset, the combination
 * of data structure and compute model with the lowest batch-processing
 * latency at each stage (P1/P2/P3), derived — exactly as in the paper —
 * by comparing all 4 x 2 = 8 combinations' stage averages with 95%
 * confidence intervals. Combinations whose CI overlaps the winner's are
 * reported as competitive ("a/b" notation).
 *
 * Environment filters (full sweep by default):
 *   SAGA_ALGS=bfs,pr      restrict algorithms
 *   SAGA_DATASETS=lj,talk restrict datasets
 */

#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>

#include "bench_util.h"

namespace saga {
namespace {

std::vector<std::string>
splitCsv(const char *env)
{
    std::vector<std::string> items;
    if (!env)
        return items;
    std::stringstream stream(env);
    std::string item;
    while (std::getline(stream, item, ','))
        items.push_back(item);
    return items;
}

struct ComboResult
{
    DsKind ds;
    ModelKind model;
    StageSummary total;
};

/** "inc+as 0.1705" style cell: winner plus CI-competitive combos. */
std::string
bestCell(const std::vector<ComboResult> &combos, int stage)
{
    int best = 0;
    for (int i = 1; i < int(combos.size()); ++i) {
        if (combos[i].total.stage(stage).mean <
            combos[best].total.stage(stage).mean)
            best = i;
    }
    std::string cell = std::string(toString(combos[best].model)) + "+" +
                       toString(combos[best].ds);
    for (int i = 0; i < int(combos.size()); ++i) {
        if (i == best)
            continue;
        if (combos[i].total.stage(stage).overlaps(
                combos[best].total.stage(stage))) {
            cell += std::string("/") + toString(combos[i].model) + "+" +
                    toString(combos[i].ds);
        }
    }
    cell += " " + formatDouble(combos[best].total.stage(stage).mean, 4);
    return cell;
}

void
run()
{
    bench::banner("Table III — best data structure + compute model per "
                  "{algorithm, dataset, stage}");

    const auto alg_filter = splitCsv(std::getenv("SAGA_ALGS"));
    const auto ds_filter = splitCsv(std::getenv("SAGA_DATASETS"));
    const auto keep = [](const std::vector<std::string> &filter,
                         const std::string &name) {
        if (filter.empty())
            return true;
        for (const std::string &f : filter) {
            if (f == name)
                return true;
        }
        return false;
    };

    TextTable table({"Alg", "Dataset", "P1 (early)", "P2 (middle)",
                     "P3 (final)"});

    for (AlgKind alg : bench::allAlgs()) {
        if (!keep(alg_filter, toString(alg)))
            continue;
        for (const DatasetProfile &profile : bench::scaledProfiles()) {
            if (!keep(ds_filter, profile.name))
                continue;

            std::vector<ComboResult> combos;
            for (DsKind ds : bench::allDs()) {
                for (ModelKind model : {ModelKind::INC, ModelKind::FS}) {
                    RunConfig cfg;
                    cfg.ds = ds;
                    cfg.alg = alg;
                    cfg.model = model;
                    const WorkloadStages stages =
                        measureWorkload(profile, cfg, benchReps());
                    combos.push_back({ds, model, stages.total});
                }
            }
            table.addRow({toString(alg), profile.name, bestCell(combos, 0),
                          bestCell(combos, 1), bestCell(combos, 2)});
            // Stream progress: the full sweep is 240 runs.
            std::cerr << "." << std::flush;
        }
    }
    std::cerr << "\n";
    table.print(std::cout);

    std::cout
        << "\nExpected shape (paper Table III): INC predominantly best; "
           "AS (sometimes Stinger) wins on lj/orkut/rmat; DAH takes over "
           "on wiki/talk by P3; FS stays competitive for MC, for SSSP "
           "(except rmat), and on the small heavy-tailed datasets.\n";
}

} // namespace
} // namespace saga

int
main()
{
    saga::run();
    return 0;
}
