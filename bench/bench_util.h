/**
 * @file
 * Shared helpers for the benchmark harnesses.
 *
 * Every bench binary regenerates one of the paper's tables or figures at a
 * configurable scale:
 *   SAGA_SCALE=<f>  multiply dataset/batch sizes (default 1.0)
 *   SAGA_REPS=<n>   repetitions pooled into the stage averages (default 1)
 */

#ifndef SAGA_BENCH_BENCH_UTIL_H_
#define SAGA_BENCH_BENCH_UTIL_H_

#include <iostream>
#include <string>
#include <vector>

#include "gen/profiles.h"
#include "saga/experiment.h"
#include "stats/table.h"

namespace saga {
namespace bench {

/** All profiles at the global bench scale. */
inline std::vector<DatasetProfile>
scaledProfiles(double extra_scale = 1.0)
{
    std::vector<DatasetProfile> profiles;
    for (const DatasetProfile &p : allProfiles())
        profiles.push_back(p.scaled(benchScale() * extra_scale));
    return profiles;
}

/**
 * The predominantly-best data structure per dataset found by the
 * software-level study (paper Section VI intro): AS for the short-tailed
 * graphs, DAH for the heavy-tailed ones.
 */
inline DsKind
bestDsFor(const DatasetProfile &profile)
{
    return profile.heavyTailed ? DsKind::DAH : DsKind::AS;
}

/** The six algorithms in paper order. */
inline const std::vector<AlgKind> &
allAlgs()
{
    static const std::vector<AlgKind> algs{
        AlgKind::BFS, AlgKind::CC,   AlgKind::MC,
        AlgKind::PR,  AlgKind::SSSP, AlgKind::SSWP};
    return algs;
}

/** The four paper stores plus the tiered hybrid store. */
inline const std::vector<DsKind> &
allDs()
{
    static const std::vector<DsKind> ds{DsKind::AS, DsKind::AC,
                                        DsKind::Stinger, DsKind::DAH,
                                        DsKind::Hybrid};
    return ds;
}

/** Build a runner wired to a profile's directedness and source vertex. */
inline std::unique_ptr<StreamingRunner>
makeRunnerFor(const DatasetProfile &profile, RunConfig cfg)
{
    cfg.directed = profile.directed;
    cfg.ctx.source = profile.source;
    return makeRunner(cfg);
}

/** Print a standard bench banner. */
inline void
banner(const std::string &what)
{
    std::cout << "==============================================\n"
              << "SAGA-Bench reproduction: " << what << "\n"
              << "scale=" << benchScale() << " reps=" << benchReps()
              << "  (set SAGA_SCALE / SAGA_REPS to change)\n"
              << "==============================================\n";
}

} // namespace bench
} // namespace saga

#endif // SAGA_BENCH_BENCH_UTIL_H_
