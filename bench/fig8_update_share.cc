/**
 * @file
 * Reproduces **Figure 8**: the percentage of batch-processing latency
 * spent in the update phase, over the three stages, measured at the best
 * data structure + the incremental compute model (the best conditions, as
 * in the paper).
 *
 * Expected shape: update contributes >= ~40% in many cells — the paper's
 * headline finding that the update phase is a first-class performance
 * limiter in streaming graph analytics.
 */

#include <iostream>

#include "bench_util.h"

namespace saga {
namespace {

void
run()
{
    bench::banner("Figure 8 — update share of batch processing latency "
                  "(best DS + INC)");

    TextTable table({"Alg", "Dataset", "DS", "P1 %", "P2 %", "P3 %"});
    int cells_over_40 = 0, cells = 0;

    for (AlgKind alg : bench::allAlgs()) {
        for (const DatasetProfile &profile : bench::scaledProfiles()) {
            RunConfig cfg;
            cfg.ds = bench::bestDsFor(profile);
            cfg.alg = alg;
            cfg.model = ModelKind::INC;
            const WorkloadStages stages =
                measureWorkload(profile, cfg, benchReps());

            std::vector<std::string> row{toString(alg), profile.name,
                                         toString(cfg.ds)};
            for (int stage = 0; stage < 3; ++stage) {
                const double update = stages.update.stage(stage).mean;
                const double total = stages.total.stage(stage).mean;
                const double pct = total > 0 ? 100.0 * update / total : 0;
                row.push_back(formatDouble(pct, 1));
                ++cells;
                if (pct >= 40.0)
                    ++cells_over_40;
            }
            table.addRow(row);
            std::cerr << "." << std::flush;
        }
    }
    std::cerr << "\n";
    table.print(std::cout);

    std::cout << "\n" << cells_over_40 << " of " << cells
              << " stage cells spend >= 40% of the batch latency in the "
                 "update phase.\nExpected shape (paper Fig. 8): the update "
                 "phase contributes at least 40% in many workloads — "
                 "notably BFS, CC, and SSWP across stages, and the small "
                 "wiki/talk datasets where compute is cheap.\n";
}

} // namespace
} // namespace saga

int
main()
{
    saga::run();
    return 0;
}
