/**
 * @file
 * Reproduces **Figure 8**: the percentage of batch-processing latency
 * spent in the update phase, over the three stages, measured at the best
 * data structure + the incremental compute model (the best conditions, as
 * in the paper).
 *
 * Expected shape: update contributes >= ~40% in many cells — the paper's
 * headline finding that the update phase is a first-class performance
 * limiter in streaming graph analytics.
 *
 * The share comes from WorkloadStages::updateSharePct() — the same
 * PhaseScope measurements the telemetry layer exports, so this figure and
 * a --telemetry dump of the run can never disagree.
 *
 * Flags:
 *   --telemetry=PATH   enable runtime metrics; write the telemetry JSON
 *                      dump (docs/TELEMETRY.md schema) at exit
 *   --trace=PATH       record phase spans; write Chrome trace_event JSON
 */

#include <iostream>
#include <string>

#include "bench_util.h"
#include "telemetry/telemetry.h"

namespace saga {
namespace {

void
run()
{
    bench::banner("Figure 8 — update share of batch processing latency "
                  "(best DS + INC)");

    TextTable table({"Alg", "Dataset", "DS", "P1 %", "P2 %", "P3 %"});
    int cells_over_40 = 0, cells = 0;

    for (AlgKind alg : bench::allAlgs()) {
        for (const DatasetProfile &profile : bench::scaledProfiles()) {
            RunConfig cfg;
            cfg.ds = bench::bestDsFor(profile);
            cfg.alg = alg;
            cfg.model = ModelKind::INC;
            const WorkloadStages stages =
                measureWorkload(profile, cfg, benchReps());

            std::vector<std::string> row{toString(alg), profile.name,
                                         toString(cfg.ds)};
            for (int stage = 0; stage < 3; ++stage) {
                const double pct = stages.updateSharePct(stage);
                row.push_back(formatDouble(pct, 1));
                ++cells;
                if (pct >= 40.0)
                    ++cells_over_40;
            }
            table.addRow(row);
            std::cerr << "." << std::flush;
        }
    }
    std::cerr << "\n";
    table.print(std::cout);

    std::cout << "\n" << cells_over_40 << " of " << cells
              << " stage cells spend >= 40% of the batch latency in the "
                 "update phase.\nExpected shape (paper Fig. 8): the update "
                 "phase contributes at least 40% in many workloads — "
                 "notably BFS, CC, and SSWP across stages, and the small "
                 "wiki/talk datasets where compute is cheap.\n";
}

} // namespace
} // namespace saga

int
main(int argc, char **argv)
{
    std::string telemetry, trace;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--telemetry=", 0) == 0) {
            telemetry = arg.substr(12);
        } else if (arg.rfind("--trace=", 0) == 0) {
            trace = arg.substr(8);
        } else {
            std::cerr << "usage: fig8_update_share [--telemetry=PATH] "
                         "[--trace=PATH]\n";
            return 2;
        }
    }

    // Perf counters must open before any worker pool exists (inherit=1
    // folds later-created workers into the counts — see perf_counters.h).
    if (!telemetry.empty()) {
        saga::telemetry::enablePerf();
        saga::telemetry::setEnabled(true);
    }
    if (!trace.empty())
        saga::telemetry::setTraceEnabled(true);

    saga::run();

    if (!telemetry.empty()) {
        if (!saga::telemetry::writeMetricsJson(telemetry)) {
            std::cerr << "FAIL: cannot write " << telemetry << "\n";
            return 1;
        }
        std::cout << "Wrote " << telemetry
                  << " (perf: " << saga::telemetry::perfStatus() << ")\n";
    }
    if (!trace.empty()) {
        if (!saga::telemetry::writeTraceJson(trace)) {
            std::cerr << "FAIL: cannot write " << trace << "\n";
            return 1;
        }
        std::cout << "Wrote " << trace << "\n";
    }
    return 0;
}
