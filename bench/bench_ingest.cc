/**
 * @file
 * Ingestion microbenchmark: legacy full-scan `updateBatch(EdgeBatch)` vs
 * the PartitionedBatch one-pass scatter pipeline, per store, across batch
 * sizes 10K-1M (the paper's Fig. 5 sweep range).
 *
 * Both paths do the directed DynGraph's work — ingest every batch into an
 * out-store and a reversed in-store — so the partitioned path's one-scatter
 * amortization over both orientations is measured, not assumed. Emits a
 * machine-readable BENCH_ingest.json next to the table.
 *
 * Flags:
 *   --smoke             small sizes, 1 rep, and regression gates: the
 *                       AC/DAH scatter path must not be pathologically
 *                       slower than legacy, and hybrid's partitioned
 *                       ingest must beat the best of the four paper
 *                       stores by >= 1.2x — used by CI
 *   --store=NAME        measure only one store
 *                       (as|ac|stinger|dah|hybrid; default: all)
 *   --threads N         worker threads (default: hardware concurrency)
 *   --out PATH          JSON output path (default: BENCH_ingest.json)
 *   --telemetry=PATH    enable runtime metrics; write the telemetry JSON
 *                       dump (docs/TELEMETRY.md schema) at exit
 *   --trace=PATH        record per-batch update/scatter/apply spans; write
 *                       Chrome trace_event JSON at exit
 */

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "ds/adj_chunked.h"
#include "ds/adj_shared.h"
#include "ds/dah.h"
#include "ds/hybrid.h"
#include "ds/stinger.h"
#include "gen/rmat.h"
#include "platform/thread_pool.h"
#include "platform/timer.h"
#include "saga/edge_batch.h"
#include "saga/partitioned_batch.h"
#include "stats/table.h"
#include "telemetry/telemetry.h"

namespace saga {
namespace {

struct Options
{
    bool smoke = false;
    std::size_t threads = 0; // 0 = hardware concurrency
    std::string store;       // lowercase store filter ("" = all)
    std::string out = "BENCH_ingest.json";
    std::string telemetry; // metrics JSON dump path ("" = disabled)
    std::string trace;     // Chrome trace path ("" = disabled)
};

struct Measurement
{
    std::string store;
    std::uint64_t batchSize = 0;
    std::uint64_t totalEdges = 0;
    double legacySeconds = 0;
    double partitionedSeconds = 0;

    double legacyEps() const { return totalEdges / legacySeconds; }
    double partitionedEps() const { return totalEdges / partitionedSeconds; }
    double speedup() const { return legacySeconds / partitionedSeconds; }
};

/** Slice a pre-generated R-MAT stream into equally sized batches. */
std::vector<EdgeBatch>
makeBatches(const std::vector<Edge> &stream, std::uint64_t batch_size,
            std::uint64_t num_batches)
{
    std::vector<EdgeBatch> batches;
    std::uint64_t pos = 0;
    for (std::uint64_t b = 0; b < num_batches; ++b) {
        std::vector<Edge> edges;
        edges.reserve(batch_size);
        for (std::uint64_t i = 0; i < batch_size; ++i) {
            edges.push_back(stream[pos]);
            pos = (pos + 1) % stream.size();
        }
        batches.emplace_back(std::move(edges));
    }
    return batches;
}

/** Legacy path: per-store full scan of the raw batch, both orientations. */
template <typename MakeStore>
double
runLegacy(const MakeStore &make, const std::vector<EdgeBatch> &batches,
          ThreadPool &pool)
{
    auto out = make();
    auto in = make();
    Timer timer;
    for (const EdgeBatch &batch : batches) {
        // The scope mirrors the driver's per-batch "update" phase so the
        // trace shows one span per batch (no-op unless telemetry is on).
        telemetry::PhaseScope scope(telemetry::Phase::Update,
                                    telemetry::PhaseScope::kSamplePerf);
        SAGA_PHASE(telemetry::Phase::UpdateApply);
        out.updateBatch(batch, pool, false);
        in.updateBatch(batch, pool, true);
    }
    return timer.seconds();
}

/** Partitioned path: one scatter feeding both orientations. */
template <typename MakeStore>
double
runPartitioned(const MakeStore &make, const std::vector<EdgeBatch> &batches,
               ThreadPool &pool, std::size_t chunks)
{
    auto out = make();
    auto in = make();
    PartitionedBatch parts;
    Timer timer;
    for (const EdgeBatch &batch : batches) {
        telemetry::PhaseScope scope(telemetry::Phase::Update,
                                    telemetry::PhaseScope::kSamplePerf);
        parts.build(batch, pool, chunks); // times itself: update/scatter
        SAGA_PHASE(telemetry::Phase::UpdateApply);
        out.updateBatch(parts, pool, false);
        in.updateBatch(parts, pool, true);
    }
    return timer.seconds();
}

template <typename MakeStore>
Measurement
measure(const std::string &name, const MakeStore &make,
        const std::vector<EdgeBatch> &batches, ThreadPool &pool,
        std::size_t chunks, int reps)
{
    Measurement m;
    m.store = name;
    m.batchSize = batches.front().size();
    for (const EdgeBatch &batch : batches)
        m.totalEdges += batch.size();
    m.legacySeconds = runLegacy(make, batches, pool);
    m.partitionedSeconds = runPartitioned(make, batches, pool, chunks);
    for (int r = 1; r < reps; ++r) { // best-of-reps
        m.legacySeconds =
            std::min(m.legacySeconds, runLegacy(make, batches, pool));
        m.partitionedSeconds = std::min(
            m.partitionedSeconds, runPartitioned(make, batches, pool, chunks));
    }
    std::cerr << "." << std::flush;
    return m;
}

void
writeJson(const std::string &path, const Options &opt, std::size_t threads,
          const std::vector<Measurement> &results)
{
    std::ofstream os(path);
    os << "{\n"
       << "  \"bench\": \"bench_ingest\",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"smoke\": " << (opt.smoke ? "true" : "false") << ",\n"
       << "  \"note\": \"edges/sec of the update phase, out+in stores; "
          "speedup = legacy_seconds / partitioned_seconds\",\n"
       << "  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Measurement &m = results[i];
        os << "    {\"store\": \"" << m.store << "\", \"batch_size\": "
           << m.batchSize << ", \"total_edges\": " << m.totalEdges
           << ", \"legacy_seconds\": " << m.legacySeconds
           << ", \"partitioned_seconds\": " << m.partitionedSeconds
           << ", \"legacy_eps\": " << formatDouble(m.legacyEps(), 0)
           << ", \"partitioned_eps\": " << formatDouble(m.partitionedEps(), 0)
           << ", \"speedup\": " << formatDouble(m.speedup(), 3) << "}"
           << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

int
run(const Options &opt)
{
    // Perf counters must open before the pool exists (inherit=1 folds
    // later-created workers into the counts — see perf_counters.h).
    if (!opt.telemetry.empty()) {
        telemetry::enablePerf();
        telemetry::setEnabled(true);
    }
    if (!opt.trace.empty())
        telemetry::setTraceEnabled(true);

    ThreadPool pool(opt.threads);
    const std::size_t threads = pool.size();
    const std::size_t chunks = threads; // matches the driver default

    std::cout << "==============================================\n"
              << "SAGA-Bench ingestion pipeline: legacy full scan vs "
                 "PartitionedBatch scatter\n"
              << "threads=" << threads << " (hardware_concurrency="
              << std::thread::hardware_concurrency() << ")"
              << (opt.smoke ? "  [smoke]" : "") << "\n"
              << "==============================================\n";

    const std::vector<std::uint64_t> batch_sizes =
        opt.smoke ? std::vector<std::uint64_t>{10'000, 50'000}
                  : std::vector<std::uint64_t>{10'000, 100'000, 1'000'000};
    const int reps = opt.smoke ? 1 : 3;
    const std::uint64_t num_batches = opt.smoke ? 2 : 4;

    RmatParams params;
    params.scale = opt.smoke ? 16 : 20;
    params.numEdges = batch_sizes.back() * num_batches;
    const std::vector<Edge> stream = generateRmat(params);

    // "" in opt.store means every store is wanted.
    const auto wanted = [&](const char *name) {
        return opt.store.empty() || opt.store == name;
    };

    std::vector<Measurement> results;
    for (std::uint64_t batch_size : batch_sizes) {
        const std::vector<EdgeBatch> batches =
            makeBatches(stream, batch_size, num_batches);
        if (wanted("as"))
            results.push_back(measure(
                "AS", [] { return AdjSharedStore(); }, batches, pool, chunks,
                reps));
        if (wanted("ac"))
            results.push_back(measure(
                "AC", [&] { return AdjChunkedStore(chunks); }, batches, pool,
                chunks, reps));
        if (wanted("stinger"))
            results.push_back(measure(
                "Stinger", [] { return StingerStore(); }, batches, pool,
                chunks, reps));
        if (wanted("dah"))
            results.push_back(measure(
                "DAH", [&] { return DahStore(chunks); }, batches, pool, chunks,
                reps));
        if (wanted("hybrid"))
            results.push_back(measure(
                "Hybrid", [&] { return HybridStore(chunks); }, batches, pool,
                chunks, reps));
    }
    std::cerr << "\n";

    TextTable table({"Store", "Batch", "Legacy Medges/s",
                     "Partitioned Medges/s", "Speedup"});
    for (const Measurement &m : results) {
        table.addRow({m.store, std::to_string(m.batchSize),
                      formatDouble(m.legacyEps() / 1e6, 2),
                      formatDouble(m.partitionedEps() / 1e6, 2),
                      formatDouble(m.speedup(), 2)});
    }
    table.print(std::cout);
    writeJson(opt.out, opt, threads, results);
    std::cout << "\nWrote " << opt.out << "\n";

    if (!opt.telemetry.empty()) {
        if (!telemetry::writeMetricsJson(opt.telemetry)) {
            std::cerr << "FAIL: cannot write " << opt.telemetry << "\n";
            return 1;
        }
        std::cout << "Wrote " << opt.telemetry
                  << " (perf: " << telemetry::perfStatus() << ")\n";
    }
    if (!opt.trace.empty()) {
        if (!telemetry::writeTraceJson(opt.trace)) {
            std::cerr << "FAIL: cannot write " << opt.trace << "\n";
            return 1;
        }
        std::cout << "Wrote " << opt.trace << "\n";
    }

    // Smoke regression gate: the scatter path must never be pathologically
    // slower than the legacy scan for the chunk-owned stores (AC/DAH),
    // whatever the runner's core count. The >= 2x claim is checked on
    // multi-worker perf runs, not here — CI runners are too noisy/small
    // for a tight bound.
    if (opt.smoke) {
        bool ok = true;
        for (const Measurement &m : results) {
            if ((m.store == "AC" || m.store == "DAH") && m.speedup() < 0.5) {
                std::cerr << "FAIL: " << m.store << " batch=" << m.batchSize
                          << " partitioned path is " << formatDouble(
                                 1.0 / m.speedup(), 2)
                          << "x slower than legacy\n";
                ok = false;
            }
        }
        // Hybrid gate: on partitioned ingest, the tiered store must beat
        // the best of the four paper stores at every measured batch size
        // (>= 1.2x smoke floor; the full-run target is 1.5x at 1M-edge
        // batches — see EXPERIMENTS.md). Skipped when --store filtered
        // the comparison set away.
        if (opt.store.empty()) {
            for (std::uint64_t batch_size : batch_sizes) {
                double best_paper = 0, hybrid = 0;
                for (const Measurement &m : results) {
                    if (m.batchSize != batch_size)
                        continue;
                    if (m.store == "Hybrid")
                        hybrid = m.partitionedEps();
                    else
                        best_paper = std::max(best_paper, m.partitionedEps());
                }
                if (hybrid < 1.2 * best_paper) {
                    std::cerr << "FAIL: hybrid batch=" << batch_size << " is "
                              << formatDouble(hybrid / best_paper, 2)
                              << "x the best paper store (< 1.2x floor)\n";
                    ok = false;
                }
            }
        }
        if (!ok)
            return 1;
        std::cout << "smoke gate passed (AC/DAH speedup >= 0.5x; hybrid >= "
                     "1.2x best-of-four)\n";
    }
    return 0;
}

} // namespace
} // namespace saga

int
main(int argc, char **argv)
{
    saga::Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            opt.smoke = true;
        } else if (arg == "--threads" && i + 1 < argc) {
            opt.threads = static_cast<std::size_t>(std::stoul(argv[++i]));
        } else if (arg.rfind("--store=", 0) == 0) {
            opt.store = arg.substr(8);
            if (opt.store != "as" && opt.store != "ac" &&
                opt.store != "stinger" && opt.store != "dah" &&
                opt.store != "hybrid") {
                std::cerr << "unknown --store: " << opt.store
                          << " (want as|ac|stinger|dah|hybrid)\n";
                return 2;
            }
        } else if (arg == "--out" && i + 1 < argc) {
            opt.out = argv[++i];
        } else if (arg.rfind("--telemetry=", 0) == 0) {
            opt.telemetry = arg.substr(12);
        } else if (arg.rfind("--trace=", 0) == 0) {
            opt.trace = arg.substr(8);
        } else {
            std::cerr << "usage: bench_ingest [--smoke] [--threads N] "
                         "[--store=as|ac|stinger|dah|hybrid] [--out PATH] "
                         "[--telemetry=PATH] [--trace=PATH]\n";
            return 2;
        }
    }
    return saga::run(opt);
}
