/**
 * @file
 * Ablation: hybrid tiered-store knobs — the T1 → T2 promotion threshold
 * (t1MaxDegree, rounded up to a power of two) and the hub table's probe
 * bound (pslLimit). Swept on the heavy-tailed datasets where the tier
 * split earns its keep (DESIGN.md §12): a low threshold builds hub
 * tables for the whole warm tail (per-vertex hash overhead everywhere),
 * a high one keeps true hubs in linear rows (O(degree) dup scans on the
 * skew spine). The PSL bound trades insert-time rehash churn against a
 * hard worst-case probe length on the read side.
 */

#include <iostream>

#include "bench_util.h"

namespace saga {
namespace {

void
run()
{
    bench::banner("Ablation — hybrid T1→T2 threshold and hub PSL limit");

    std::cout << "\nT1→T2 promotion threshold sweep (pslLimit = 24)\n";
    TextTable threshold_table({"Dataset", "t1MaxDegree", "P3 update s",
                               "P3 compute s", "P3 total s"});
    for (const char *name : {"wiki", "talk"}) {
        const DatasetProfile profile =
            findProfile(name)->scaled(benchScale());
        for (std::uint32_t threshold : {16u, 32u, 64u, 128u, 256u}) {
            RunConfig cfg;
            cfg.ds = DsKind::Hybrid;
            cfg.alg = AlgKind::BFS;
            cfg.model = ModelKind::INC;
            cfg.hybrid.t1MaxDegree = threshold;
            const WorkloadStages stages =
                measureWorkload(profile, cfg, benchReps());
            threshold_table.addRow({profile.name,
                                    std::to_string(threshold),
                                    formatDouble(stages.update.p3.mean, 4),
                                    formatDouble(stages.compute.p3.mean, 4),
                                    formatDouble(stages.total.p3.mean, 4)});
            std::cerr << "." << std::flush;
        }
    }
    std::cerr << "\n";
    threshold_table.print(std::cout);

    std::cout << "\nHub PSL-limit sweep (t1MaxDegree = 128)\n";
    TextTable psl_table({"Dataset", "pslLimit", "P3 update s",
                         "P3 total s"});
    for (const char *name : {"wiki", "talk"}) {
        const DatasetProfile profile =
            findProfile(name)->scaled(benchScale());
        for (std::uint32_t limit : {8u, 16u, 32u, 64u}) {
            RunConfig cfg;
            cfg.ds = DsKind::Hybrid;
            cfg.alg = AlgKind::BFS;
            cfg.model = ModelKind::INC;
            cfg.hybrid.pslLimit = limit;
            const WorkloadStages stages =
                measureWorkload(profile, cfg, benchReps());
            psl_table.addRow({profile.name, std::to_string(limit),
                              formatDouble(stages.update.p3.mean, 4),
                              formatDouble(stages.total.p3.mean, 4)});
            std::cerr << "." << std::flush;
        }
    }
    std::cerr << "\n";
    psl_table.print(std::cout);

    std::cout << "\nExpected shape: the threshold sweep is U-shaped — "
                 "16 hashes the warm tail (promotion churn plus hub "
                 "overhead on mid-degree rows), 256 leaves hubs linear "
                 "(quadratic dup-scan work on the skew spine); the "
                 "128 default sits at the basin. The PSL sweep is flat "
                 "until the limit gets tight enough (8) that insert-time "
                 "grow cascades dominate — the limit is a read-side "
                 "worst-case bound, not a throughput knob.\n";
}

} // namespace
} // namespace saga

int
main()
{
    saga::run();
    return 0;
}
