/**
 * @file
 * Reproduces **Figure 9**: (a) update/compute performance scalability with
 * physical core count for the STail and HTail groups, (b) memory bandwidth
 * utilization, and (c) QPI (inter-socket) link utilization per phase over
 * the three stages.
 *
 * The measurement host has one physical core and no PMU, so all three
 * panels come from the architecture model (DESIGN.md, substitutions): the
 * cache simulator supplies DRAM traffic, the workload model + scheduling
 * simulator supply phase durations at each core count, and the bandwidth
 * model converts both into utilization on the paper's dual-socket Xeon.
 */

#include <iostream>
#include <map>

#include "arch_profile.h"
#include "bench_util.h"
#include "perfmodel/bandwidth_model.h"

namespace saga {
namespace {

using bench::PhaseStats;

/** Total update makespan across a dataset group at one core count. */
double
groupUpdateMakespan(const std::vector<DatasetProfile> &profiles, DsKind ds,
                    int cores)
{
    const perf::CostParams params;
    double total = 0;
    for (const DatasetProfile &profile : profiles) {
        perf::UpdatePhaseModel model(ds, cores, profile.directed, params);
        StreamSource stream(profile.generate(1), profile.batchSize, 1);
        while (stream.hasNext()) {
            total += perf::scheduleTasks(model.batchTasks(stream.next()),
                                         cores, params.lockWaitPenalty)
                         .makespan;
        }
    }
    return total;
}

/** Total one-iteration compute makespan across a group. */
double
groupComputeMakespan(const std::vector<DatasetProfile> &profiles,
                     DsKind ds, int cores)
{
    double total = 0;
    for (const DatasetProfile &profile : profiles) {
        // Degrees of the fully ingested graph (one pull iteration).
        perf::UpdatePhaseModel model(ds, cores, profile.directed);
        StreamSource stream(profile.generate(1), profile.batchSize, 1);
        std::vector<perf::SimTask> tasks;
        while (stream.hasNext())
            model.batchTasks(stream.next());
        tasks = perf::computeIterationTasks(model.inDegrees(),
                                            perf::CostParams{});
        total += perf::scheduleTasks(tasks, cores).makespan;
    }
    return total;
}

void
panelA()
{
    std::cout << "\n(a) performance (1/makespan) normalized to 4 cores, "
                 "core counts 4..28\n";
    TextTable table({"curve", "4", "8", "12", "16", "20", "24", "28"});

    const auto st = bench::stailProfiles();
    const auto ht = bench::htailProfiles();

    struct Curve
    {
        const char *name;
        std::vector<DatasetProfile> profiles;
        DsKind ds;
        bool update;
    };
    const std::vector<Curve> curves = {
        {"Update STail (AS)", st, DsKind::AS, true},
        {"Compute STail", st, DsKind::AS, false},
        {"Update HTail (DAH)", ht, DsKind::DAH, true},
        {"Compute HTail", ht, DsKind::DAH, false},
    };

    for (const Curve &curve : curves) {
        std::vector<std::string> row{curve.name};
        double base = 0;
        for (int cores = 4; cores <= 28; cores += 4) {
            const double makespan =
                curve.update
                    ? groupUpdateMakespan(curve.profiles, curve.ds, cores)
                    : groupComputeMakespan(curve.profiles, curve.ds,
                                           cores);
            const double perf = 1.0 / makespan;
            if (cores == 4)
                base = perf;
            row.push_back(formatDouble(perf / base, 2));
        }
        table.addRow(row);
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";
    table.print(std::cout);
    std::cout << "Expected shape: compute curves keep climbing; update "
                 "curves flatten early; HTail update is nearly flat "
                 "(chunk imbalance), STail update gains only up to ~12 "
                 "cores (lock contention).\n";
}

void
panelsBC()
{
    std::cout << "\n(b,c) memory bandwidth (GB/s) and QPI utilization (%) "
                 "per phase per stage (modeled at 32 cores)\n";

    perf::MachineModel machine;
    // The bandwidth study needs working sets larger than the 22MB LLC, so
    // it runs a representative subset (2 pull algorithms, 2 datasets per
    // group) at several times the default scale (see arch_profile.h).
    const std::vector<AlgKind> algs{AlgKind::BFS, AlgKind::CC};

    TextTable table({"group", "phase", "P1 GB/s", "P2 GB/s", "P3 GB/s",
                     "P1 QPI%", "P2 QPI%", "P3 QPI%"});

    struct Group
    {
        const char *name;
        std::vector<DatasetProfile> profiles;
        DsKind ds;
    };
    const double arch_scale = bench::archScale();
    for (const Group &group :
         {Group{"STail", bench::archStail(arch_scale), DsKind::AS},
          Group{"HTail", bench::archHtail(arch_scale), DsKind::DAH}}) {
        const bench::ArchProfile arch =
            bench::profileGroup(group.profiles, group.ds, algs, 32);

        for (bool update : {true, false}) {
            std::vector<std::string> gbs, qpi;
            for (int stage = 0; stage < 3; ++stage) {
                const PhaseStats &stats = update ? arch.update[stage]
                                                 : arch.compute[stage];
                const perf::PhaseUtilization u = perf::modelPhase(
                    machine, stats.makespanUnits, stats.dramBytes);
                gbs.push_back(formatDouble(u.memGBs, 1));
                qpi.push_back(formatDouble(u.qpiPercent, 1));
            }
            table.addRow({group.name, update ? "update" : "compute",
                          gbs[0], gbs[1], gbs[2], qpi[0], qpi[1],
                          qpi[2]});
        }
    }
    std::cerr << "\n";
    table.print(std::cout);
    std::cout << "Expected shape (paper Fig. 9b,c): compute utilizes more "
                 "memory and QPI bandwidth than update in both groups and "
                 "both grow P1->P3; HTail update is pinned near the floor "
                 "(paper: ~5 GB/s, ~4% QPI) because one chunk does almost "
                 "all the work.\n";
}

} // namespace
} // namespace saga

int
main()
{
    saga::bench::banner("Figure 9 — core scaling, memory bandwidth, QPI "
                        "utilization (architecture model)");
    saga::panelA();
    saga::panelsBC();
    return 0;
}
