/**
 * @file
 * Micro-benchmarks (google-benchmark) of the four data structures' core
 * operations: batch insert under three regimes (uniform, duplicate-heavy,
 * hub-centric) and full neighbor traversal. These isolate the per-edge
 * mechanism costs that the macro benches aggregate.
 */

#include <benchmark/benchmark.h>

#include "ds/adj_chunked.h"
#include "ds/adj_shared.h"
#include "ds/dah.h"
#include "ds/dyn_graph.h"
#include "ds/hybrid.h"
#include "ds/stinger.h"
#include "platform/rng.h"
#include "platform/thread_pool.h"
#include "saga/edge_batch.h"

namespace saga {
namespace {

enum class Regime { Uniform, DupHeavy, Hub };

EdgeBatch
makeBatch(Regime regime, std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Edge> edges;
    edges.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        NodeId src = 0, dst = 0;
        switch (regime) {
          case Regime::Uniform:
            src = static_cast<NodeId>(rng.below(20000));
            dst = static_cast<NodeId>(rng.below(20000));
            break;
          case Regime::DupHeavy: // small id space -> many duplicates
            src = static_cast<NodeId>(rng.below(200));
            dst = static_cast<NodeId>(rng.below(200));
            break;
          case Regime::Hub: // 1 source fanning out
            src = 0;
            dst = static_cast<NodeId>(1 + rng.below(50000));
            break;
        }
        edges.push_back({src, dst, 1.0f});
    }
    return EdgeBatch(std::move(edges));
}

template <typename Store>
Store
makeStore()
{
    if constexpr (std::is_constructible_v<Store, std::size_t>) {
        return Store(2);
    } else {
        return Store();
    }
}

template <typename Store>
void
insertBench(benchmark::State &state, Regime regime)
{
    ThreadPool pool(2);
    const EdgeBatch batch =
        makeBatch(regime, static_cast<std::size_t>(state.range(0)), 42);
    for (auto _ : state) {
        state.PauseTiming();
        auto store = makeStore<Store>();
        state.ResumeTiming();
        store.updateBatch(batch, pool, false);
        benchmark::DoNotOptimize(store.numEdges());
    }
    state.SetItemsProcessed(state.iterations() * batch.size());
}

template <typename Store>
void
traverseBench(benchmark::State &state)
{
    ThreadPool pool(2);
    auto store = makeStore<Store>();
    store.updateBatch(
        makeBatch(Regime::Uniform,
                  static_cast<std::size_t>(state.range(0)), 42),
        pool, false);
    for (auto _ : state) {
        std::uint64_t sum = 0;
        for (NodeId v = 0; v < store.numNodes(); ++v) {
            store.forNeighbors(v, [&](const Neighbor &nbr) {
                sum += nbr.node;
            });
        }
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * store.numEdges());
}

#define SAGA_DS_BENCH(Store, Tag)                                          \
    void BM_##Tag##_InsertUniform(benchmark::State &s)                     \
    {                                                                      \
        insertBench<Store>(s, Regime::Uniform);                            \
    }                                                                      \
    BENCHMARK(BM_##Tag##_InsertUniform)->Arg(50000);                       \
    void BM_##Tag##_InsertDupHeavy(benchmark::State &s)                    \
    {                                                                      \
        insertBench<Store>(s, Regime::DupHeavy);                           \
    }                                                                      \
    BENCHMARK(BM_##Tag##_InsertDupHeavy)->Arg(50000);                      \
    void BM_##Tag##_InsertHub(benchmark::State &s)                         \
    {                                                                      \
        insertBench<Store>(s, Regime::Hub);                                \
    }                                                                      \
    BENCHMARK(BM_##Tag##_InsertHub)->Arg(20000);                           \
    void BM_##Tag##_Traverse(benchmark::State &s)                          \
    {                                                                      \
        traverseBench<Store>(s);                                           \
    }                                                                      \
    BENCHMARK(BM_##Tag##_Traverse)->Arg(50000);

SAGA_DS_BENCH(AdjSharedStore, AS)
SAGA_DS_BENCH(AdjChunkedStore, AC)
SAGA_DS_BENCH(StingerStore, Stinger)
SAGA_DS_BENCH(DahStore, DAH)
SAGA_DS_BENCH(HybridStore, Hybrid)

#undef SAGA_DS_BENCH

} // namespace
} // namespace saga

BENCHMARK_MAIN();
