/**
 * @file
 * saga_serve — the always-on streaming-graph server binary.
 *
 * Stands up a GraphService (src/serve/service.h) behind the
 * length-prefixed TCP protocol (src/serve/wire.h): one listener thread
 * accepts connections, one handler thread per connection decodes
 * request frames, executes them via wire::handleRequest, and writes
 * reply frames back. The background epoch loop runs inside the
 * service; admission control and snapshot consistency are entirely the
 * service's business — this file is sockets and flags only.
 *
 * Startup prints exactly one line, "saga_serve listening on <port>",
 * once the socket is bound (port 0 requests an ephemeral port, and the
 * printed number is the real one) — CI's serve-smoke job keys on it.
 *
 *   ./saga_serve --port=7077 --ds=as --seed-scale=12 --duration=10 \
 *       --telemetry=serve_telemetry.json
 *
 * See docs/SERVING.md for the full flag table and a worked profiling
 * walkthrough.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "gen/rmat.h"
#include "serve/dispatch.h"
#include "serve/service.h"
#include "serve/wire.h"
#include "telemetry/telemetry.h"

namespace {

struct Options
{
    int port = 7077;
    std::string ds = "as";
    std::size_t threads = 2;
    std::size_t queueDepth = std::size_t{1} << 16;
    std::size_t epochEdges = std::size_t{1} << 14;
    std::uint32_t epochIntervalUs = 1000;
    saga::NodeId bfsSource = 0;
    std::size_t topK = 10;
    std::uint32_t prIters = 5;
    std::uint32_t seedScale = 12;
    std::uint64_t seedEdges = 1 << 15;
    double durationSeconds = 0; // 0 = run until SIGINT/SIGTERM
    std::string telemetryOut;
    std::string traceOut;
};

bool
parseFlag(const std::string &arg, const char *name, std::string &out)
{
    const std::string prefix = std::string("--") + name + "=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    out = arg.substr(prefix.size());
    return true;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: saga_serve [--port=N] [--ds=as|ac|stinger|dah|hybrid]\n"
        "                  [--threads=N] [--queue-depth=EDGES]\n"
        "                  [--epoch-edges=N] [--epoch-interval-us=N]\n"
        "                  [--bfs-source=V] [--topk=K] [--pr-iters=N]\n"
        "                  [--seed-scale=S] [--seed-edges=N]\n"
        "                  [--duration=SECONDS]\n"
        "                  [--telemetry=PATH] [--trace=PATH]\n");
}

/**
 * Numeric flag-value parsers: false on malformed or trailing junk
 * instead of the uncaught std::invalid_argument/std::out_of_range the
 * raw std::sto* calls would abort with on e.g. --port=abc.
 */
bool
toU64(const std::string &v, std::uint64_t &out)
{
    if (v.empty() || v[0] == '-') // stoull silently wraps negatives
        return false;
    try {
        std::size_t pos = 0;
        out = std::stoull(v, &pos);
        return pos == v.size();
    } catch (const std::exception &) {
        return false;
    }
}

bool
toI32(const std::string &v, int &out)
{
    try {
        std::size_t pos = 0;
        out = std::stoi(v, &pos);
        return pos == v.size() && !v.empty();
    } catch (const std::exception &) {
        return false;
    }
}

bool
toDouble(const std::string &v, double &out)
{
    try {
        std::size_t pos = 0;
        out = std::stod(v, &pos);
        return pos == v.size() && !v.empty();
    } catch (const std::exception &) {
        return false;
    }
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    bool ok = true;
    std::uint64_t u = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string v;
        if (parseFlag(arg, "port", v)) ok = toI32(v, opt.port);
        else if (parseFlag(arg, "ds", v)) opt.ds = v;
        else if (parseFlag(arg, "threads", v)) {
            if ((ok = toU64(v, u))) opt.threads = u;
        } else if (parseFlag(arg, "queue-depth", v)) {
            if ((ok = toU64(v, u))) opt.queueDepth = u;
        } else if (parseFlag(arg, "epoch-edges", v)) {
            if ((ok = toU64(v, u))) opt.epochEdges = u;
        } else if (parseFlag(arg, "epoch-interval-us", v)) {
            if ((ok = toU64(v, u)))
                opt.epochIntervalUs = static_cast<std::uint32_t>(u);
        } else if (parseFlag(arg, "bfs-source", v)) {
            if ((ok = toU64(v, u)))
                opt.bfsSource = static_cast<saga::NodeId>(u);
        } else if (parseFlag(arg, "topk", v)) {
            if ((ok = toU64(v, u))) opt.topK = u;
        } else if (parseFlag(arg, "pr-iters", v)) {
            if ((ok = toU64(v, u)))
                opt.prIters = static_cast<std::uint32_t>(u);
        } else if (parseFlag(arg, "seed-scale", v)) {
            if ((ok = toU64(v, u)))
                opt.seedScale = static_cast<std::uint32_t>(u);
        } else if (parseFlag(arg, "seed-edges", v)) {
            ok = toU64(v, opt.seedEdges);
        } else if (parseFlag(arg, "duration", v)) {
            ok = toDouble(v, opt.durationSeconds);
        } else if (parseFlag(arg, "telemetry", v)) {
            opt.telemetryOut = v;
        } else if (parseFlag(arg, "trace", v)) {
            opt.traceOut = v;
        } else {
            std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
            usage();
            return false;
        }
        if (!ok) {
            std::fprintf(stderr, "bad value in %s\n", arg.c_str());
            usage();
            return false;
        }
    }
    return true;
}

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

/**
 * Serve one connection until the peer disconnects or errors. Does NOT
 * close @p fd — the accept loop's connection table owns the
 * descriptor and closes it when it reaps the finished handler, so a
 * kernel-recycled fd number can never alias a stale table entry.
 */
void
serveConnection(saga::GraphService &svc, int fd)
{
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::vector<std::uint8_t> body;
    while (saga::wire::readFrame(fd, body)) {
        const std::vector<std::uint8_t> reply =
            saga::wire::handleRequest(svc, body);
        if (!saga::wire::writeFrame(fd, reply))
            break;
    }
}

/**
 * One live connection. The table entry owns the socket fd; the done
 * flag is the handler thread's only shared state with the accept loop
 * (heap-allocated so vector reallocation cannot move it under the
 * thread). Only the accept-loop thread touches the table itself.
 */
struct Connection
{
    int fd = -1;
    std::unique_ptr<std::atomic<bool>> done;
    std::thread handler;
};

/** Join, close, and drop every connection whose handler has exited. */
void
reapFinished(std::vector<Connection> &conns)
{
    for (std::size_t i = 0; i < conns.size();) {
        if (conns[i].done->load(std::memory_order_acquire)) {
            conns[i].handler.join();
            ::close(conns[i].fd);
            conns.erase(conns.begin() +
                        static_cast<std::ptrdiff_t>(i));
        } else {
            ++i;
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    if (!opt.telemetryOut.empty() || !opt.traceOut.empty()) {
        saga::telemetry::setEnabled(!opt.telemetryOut.empty());
        saga::telemetry::setTraceEnabled(!opt.traceOut.empty());
    }

    saga::ServeConfig cfg;
    cfg.ds = saga::parseDs(opt.ds);
    cfg.threads = opt.threads;
    cfg.queueDepthEdges = opt.queueDepth;
    cfg.epochMaxEdges = opt.epochEdges;
    cfg.epochIntervalMicros = opt.epochIntervalUs;
    cfg.bfsSource = opt.bfsSource;
    cfg.topK = opt.topK;
    cfg.prMaxIters = opt.prIters;

    std::unique_ptr<saga::GraphService> svc = saga::makeService(cfg);
    {
        saga::RmatParams params;
        params.scale = opt.seedScale;
        params.numEdges = opt.seedEdges;
        svc->bootstrap(saga::generateRmat(params));
    }
    svc->start();

    const int listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd < 0) {
        std::perror("socket");
        return 1;
    }
    const int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opt.port));
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd, 64) != 0) {
        std::perror("bind/listen");
        ::close(listenFd);
        return 1;
    }
    socklen_t addrLen = sizeof(addr);
    ::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr), &addrLen);
    std::printf("saga_serve listening on %d\n", ntohs(addr.sin_port));
    std::fflush(stdout);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    // A client that disconnects while we write its reply must surface
    // as EPIPE from writeFrame (a normal disconnect), not as SIGPIPE's
    // default process kill — belt to writeFrame's MSG_NOSIGNAL braces.
    std::signal(SIGPIPE, SIG_IGN);

    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(opt.durationSeconds));
    std::vector<Connection> conns;
    while (!g_stop.load()) {
        if (opt.durationSeconds > 0 &&
            std::chrono::steady_clock::now() >= deadline)
            break;
        // Reap each poll tick, not just on accept: a long-running
        // server must not accumulate dead fds and joinable threads.
        reapFinished(conns);
        pollfd pfd{listenFd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200);
        if (ready <= 0)
            continue;
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        Connection conn;
        conn.fd = fd;
        conn.done = std::make_unique<std::atomic<bool>>(false);
        std::atomic<bool> *done = conn.done.get();
        conn.handler = std::thread([&svc, fd, done] {
            serveConnection(*svc, fd);
            done->store(true, std::memory_order_release);
        });
        conns.push_back(std::move(conn));
    }
    ::close(listenFd);
    // Force-close live connections so handler threads unblock, then
    // join them before stopping the service (handlers hold &svc). The
    // table holds only fds it still owns — reaped entries are gone, so
    // no shutdown() can hit a closed-and-recycled descriptor.
    for (const Connection &conn : conns)
        ::shutdown(conn.fd, SHUT_RDWR);
    for (Connection &conn : conns) {
        conn.handler.join();
        ::close(conn.fd);
    }
    svc->stop();

    if (!opt.telemetryOut.empty() &&
        !saga::telemetry::writeMetricsJson(opt.telemetryOut)) {
        std::fprintf(stderr, "failed to write %s\n",
                     opt.telemetryOut.c_str());
        return 1;
    }
    if (!opt.traceOut.empty() &&
        !saga::telemetry::writeTraceJson(opt.traceOut)) {
        std::fprintf(stderr, "failed to write %s\n", opt.traceOut.c_str());
        return 1;
    }
    return 0;
}
