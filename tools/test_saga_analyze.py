#!/usr/bin/env python3
"""Unit tests for tools/saga_analyze.py — call-graph construction, one
suite per rule pack, marker/escape handling, the seeded fixture
directory, engine selection, and cache invalidation. Run directly
(`python3 tools/test_saga_analyze.py`) or via the
`saga_analyze_selftest` ctest target."""

import contextlib
import io
import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import saga_analyze  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def analyze_tree(files, root=None, cache_dir=None):
    """Analyze an in-memory tree ({relpath: source}); .cc files become
    TUs. Returns (analyzer, program, ["pack/rule", ...])."""
    owned = root is None
    if owned:
        root = tempfile.mkdtemp(prefix="saga_analyze_test_")
    try:
        for rel, src in files.items():
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(src)
        scope_dirs = sorted({rel.split("/")[0] for rel in files})
        an = saga_analyze.Analyzer(root, "internal", cache_dir=cache_dir)
        for rel in sorted(files):
            if rel.endswith(".cc"):
                an.analyze_tu({"file": os.path.join(root, rel),
                               "args": ["-I" + root], "dir": root},
                              scope_dirs)
        prog = saga_analyze.Program(an.file_facts)
        findings, _, _ = saga_analyze.check_hotpath(prog)
        findings = list(findings)
        findings += saga_analyze.check_atomics(prog)
        findings += saga_analyze.check_guarded(prog)
        findings += saga_analyze.check_telemetry(prog)
        rules = ["%s/%s" % (f.pack, f.rule) for f in findings]
        return an, prog, rules
    finally:
        if owned:
            shutil.rmtree(root, ignore_errors=True)


def rules_of(source):
    """Analyze a single-file tree and return the fired rule ids."""
    _, _, rules = analyze_tree({"src/unit.cc": source})
    return rules


ENTRY = "// saga-analyze: hotpath-entry\n"


class CallGraph(unittest.TestCase):
    def test_impurity_behind_call_edge_is_reachable(self):
        src = (ENTRY +
               "void kernelRound() { helper(); }\n"
               "void helper() { throw 1; }\n")
        self.assertIn("hotpath/throw", rules_of(src))

    def test_reachability_crosses_files(self):
        files = {
            "src/helper.h": "inline void helper() { throw 1; }\n",
            "src/kernel.cc": ('#include "helper.h"\n' + ENTRY +
                              "void kernelRound() { helper(); }\n"),
        }
        _, _, rules = analyze_tree(files)
        self.assertIn("hotpath/throw", rules)

    def test_cut_methods_stop_traversal(self):
        # ThreadPool::run is a cut: impurity inside it is the pool's
        # business, not the kernel's.
        src = ("struct ThreadPool {\n"
               "    void run() { jobs_.push_back(1); }\n"
               "    std::vector<int> jobs_;\n"
               "};\n" + ENTRY +
               "void kernelRound(ThreadPool &pool) { pool.run(); }\n")
        self.assertEqual([r for r in rules_of(src)
                          if r.startswith("hotpath/")], [])

    def test_receiver_type_disambiguates_same_named_methods(self):
        # `lane.step()` must resolve to Clean::step (the parameter's
        # type), not fabricate an edge to Dirty::step.
        src = ("struct Clean { void step() {} };\n"
               "struct Dirty {\n"
               "    void step() { buf_.push_back(1); }\n"
               "    std::vector<int> buf_;\n"
               "};\n" + ENTRY +
               "void kernelRound(Clean &lane) { lane.step(); }\n")
        self.assertEqual([r for r in rules_of(src)
                          if r.startswith("hotpath/")], [])

    def test_unreachable_impurity_is_not_flagged(self):
        src = (ENTRY + "void kernelRound() {}\n"
               "void coldSetup() { throw 1; }\n")
        self.assertEqual([r for r in rules_of(src)
                          if r.startswith("hotpath/")], [])


class HotpathPack(unittest.TestCase):
    def test_each_impurity_kind(self):
        src = (ENTRY +
               "void kernelRound(std::vector<int> &buf, std::mutex &m) {\n"
               "    buf.push_back(1);\n"
               "    int *p = new int(7);\n"
               "    std::printf(\"%d\\n\", *p);\n"
               "    std::lock_guard<std::mutex> g(m);\n"
               "    throw 42;\n"
               "}\n")
        rules = rules_of(src)
        for rule in ("hotpath/container-growth", "hotpath/heap-allocation",
                     "hotpath/io", "hotpath/lock-acquisition",
                     "hotpath/throw"):
            self.assertIn(rule, rules)

    def test_justified_escape_passes(self):
        src = (ENTRY +
               "void kernelRound(std::vector<int> &buf) {\n"
               "    // hotpath-allow: amortized doubling, one per epoch\n"
               "    buf.push_back(1);\n"
               "}\n")
        self.assertEqual([r for r in rules_of(src)
                          if r.startswith("hotpath/")], [])

    def test_empty_reason_is_unjustified_escape(self):
        src = (ENTRY +
               "void kernelRound(std::vector<int> &buf) {\n"
               "    // hotpath-allow:\n"
               "    buf.push_back(1);\n"
               "}\n")
        self.assertEqual(rules_of(src), ["hotpath/unjustified-escape"])

    def test_marker_atop_multiline_comment_block(self):
        src = (ENTRY +
               "void kernelRound(std::vector<int> &buf) {\n"
               "    // hotpath-allow: worker-local scratch queue whose\n"
               "    // growth is amortized across the whole round\n"
               "    buf.push_back(1);\n"
               "}\n")
        self.assertEqual([r for r in rules_of(src)
                          if r.startswith("hotpath/")], [])


class AtomicsPack(unittest.TestCase):
    MEMBERS = ("    std::atomic<int> flag_{0};\n"
               "    int payload_ = 0;\n")

    def test_orphaned_release(self):
        src = ("struct S {\n"
               "    void pub() { flag_.store(1, "
               "std::memory_order_release); }\n" + self.MEMBERS + "};\n")
        self.assertIn("atomics/orphaned-release", rules_of(src))

    def test_orphaned_acquire(self):
        src = ("struct S {\n"
               "    int sub() { return flag_.load("
               "std::memory_order_acquire); }\n" + self.MEMBERS + "};\n")
        self.assertIn("atomics/orphaned-acquire", rules_of(src))

    def test_paired_acquire_release_is_clean(self):
        src = ("struct S {\n"
               "    void pub() { flag_.store(1, "
               "std::memory_order_release); }\n"
               "    int sub() { return flag_.load("
               "std::memory_order_acquire); }\n" + self.MEMBERS + "};\n")
        self.assertEqual([r for r in rules_of(src)
                          if r.startswith("atomics/")], [])

    def test_pairing_is_whole_program(self):
        # The release and the acquire live in different TUs; the pair
        # must still be found.
        files = {
            "src/s.h": ("struct S {\n"
                        "    void pub();\n    int sub();\n" +
                        self.MEMBERS + "};\n"),
            "src/pub.cc": ('#include "s.h"\n'
                           "void S::pub() { flag_.store(1, "
                           "std::memory_order_release); }\n"),
            "src/sub.cc": ('#include "s.h"\n'
                           "int S::sub() { return flag_.load("
                           "std::memory_order_acquire); }\n"),
        }
        _, _, rules = analyze_tree(files)
        self.assertEqual([r for r in rules
                          if r.startswith("atomics/")], [])

    def test_seq_cst_downgrade(self):
        src = ("struct S {\n"
               "    void a() { flag_.fetch_add(1); }\n"
               "    void b() { flag_.fetch_add(1, "
               "std::memory_order_relaxed); }\n" + self.MEMBERS + "};\n")
        self.assertIn("atomics/seq-cst-downgrade", rules_of(src))

    def test_relaxed_comment_justifies_downgrade(self):
        src = ("struct S {\n"
               "    void a() { flag_.fetch_add(1); }\n"
               "    // relaxed: monotonic counter, read after barrier\n"
               "    void b() { flag_.fetch_add(1, "
               "std::memory_order_relaxed); }\n" + self.MEMBERS + "};\n")
        self.assertEqual([r for r in rules_of(src)
                          if r.startswith("atomics/")], [])

    def test_atomic_pair_allow_marker_on_declaration(self):
        src = ("struct S {\n"
               "    void pub() { flag_.store(1, "
               "std::memory_order_release); }\n"
               "    // atomic-pair-allow: consumer lives in a later PR\n"
               "    std::atomic<int> flag_{0};\n"
               "};\n")
        self.assertEqual([r for r in rules_of(src)
                          if r.startswith("atomics/")], [])


AUDIT = "// saga-analyze: audit-class\n"


class GuardedPack(unittest.TestCase):
    def test_unannotated_member(self):
        src = (AUDIT + "struct S { int hits_ = 0; };\n")
        self.assertEqual(rules_of(src), ["guarded/unannotated-member"])

    def test_categories_pass(self):
        src = (AUDIT + "struct S {\n"
               "    std::atomic<int> epoch_{0};\n"
               "    std::mutex mu_;\n"
               "    int cold_ GUARDED_BY(mu_);\n"
               "    // immutable-after-build: sized once in ctor\n"
               "    int capacity_ = 0;\n"
               "    // quiescent-mutated: serial ensureNodes only\n"
               "    int num_nodes_ = 0;\n"
               "    const int kind_ = 1;\n"
               "    static constexpr int kShift = 6;\n"
               "};\n")
        self.assertEqual([r for r in rules_of(src)
                          if r.startswith("guarded/")], [])

    def test_bogus_chunk_owned(self):
        src = (AUDIT + "struct S {\n"
               "    // chunk-owned: per-chunk rows\n"
               "    std::vector<int> rows_;\n"
               "};\n")
        self.assertIn("guarded/bogus-chunk-owned", rules_of(src))

    def test_chunk_owned_with_capability_passes(self):
        src = (AUDIT + "struct S {\n"
               "    void touch() SAGA_REQUIRES(ownership_) {}\n"
               "    // chunk-owned: per-chunk rows\n"
               "    std::vector<int> rows_;\n"
               "    ChunkOwnership ownership_;\n"
               "};\n")
        self.assertEqual([r for r in rules_of(src)
                          if r.startswith("guarded/")], [])

    def test_unaudited_class_is_ignored(self):
        src = "struct Plain { int hits_ = 0; };\n"
        self.assertEqual([r for r in rules_of(src)
                          if r.startswith("guarded/")], [])

    def test_brace_initialized_member_is_audited(self):
        # `std::function<void()> job_{};` must register as a member —
        # a regression here silently blinds the whole pack.
        src = (AUDIT + "struct S { std::function<void()> job_{}; };\n")
        self.assertEqual(rules_of(src), ["guarded/unannotated-member"])


class TelemetryPack(unittest.TestCase):
    def test_phase_scope_temporary(self):
        src = ("void f() { telemetry::PhaseScope("
               "telemetry::Phase::ComputeRound); }\n")
        self.assertEqual(rules_of(src),
                         ["telemetry/phase-scope-temporary"])

    def test_named_phase_scope_passes(self):
        src = ("void f() { telemetry::PhaseScope scope("
               "telemetry::Phase::ComputeRound); }\n")
        self.assertEqual(rules_of(src), [])

    def test_unqualified_macro_args(self):
        src = ("void f() {\n"
               "    SAGA_PHASE(ComputeRound);\n"
               "    SAGA_COUNT(ComputeRounds, 1);\n"
               "}\n")
        self.assertEqual(rules_of(src).count(
            "telemetry/unqualified-counter-id"), 2)

    def test_qualified_macro_args_pass(self):
        src = ("void f() {\n"
               "    SAGA_PHASE(telemetry::Phase::ComputeRound);\n"
               "    SAGA_COUNT(telemetry::Counter::ComputeRounds, 1);\n"
               "}\n")
        self.assertEqual(rules_of(src), [])


class SeededFixtures(unittest.TestCase):
    """The shipped fixture directory must trip every rule it claims."""

    EXPECTED = {
        "bad_hotpath.cc": {"hotpath/container-growth",
                           "hotpath/heap-allocation", "hotpath/io",
                           "hotpath/lock-acquisition", "hotpath/throw",
                           "hotpath/unjustified-escape"},
        "bad_atomic_pairing.cc": {"atomics/orphaned-release",
                                  "atomics/orphaned-acquire",
                                  "atomics/seq-cst-downgrade"},
        "bad_guarded_member.cc": {"guarded/unannotated-member",
                                  "guarded/bogus-chunk-owned"},
        "bad_phase_scope.cc": {"telemetry/phase-scope-temporary",
                               "telemetry/unqualified-counter-id"},
    }

    def test_every_seeded_violation_fires(self):
        fixture_dir = os.path.join(REPO_ROOT, "tests", "analyze_fixtures")
        out = io.StringIO()
        with tempfile.TemporaryDirectory() as tmp:
            report = os.path.join(tmp, "report.json")
            with contextlib.redirect_stdout(out), \
                    contextlib.redirect_stderr(io.StringIO()):
                code = saga_analyze.main(
                    ["--root", REPO_ROOT, "--engine", "internal",
                     "--fixtures", fixture_dir, "--json", report])
            self.assertEqual(code, 1)
            import json
            with open(report, encoding="utf-8") as f:
                findings = json.load(f)["findings"]
        by_file = {}
        for f in findings:
            name = os.path.basename(f["file"])
            by_file.setdefault(name, set()).add(
                "%s/%s" % (f["pack"], f["rule"]))
        self.assertEqual(by_file, self.EXPECTED)


class EngineSelection(unittest.TestCase):
    def test_libclang_unavailable_skips_cleanly(self):
        real = saga_analyze.try_import_libclang
        saga_analyze.try_import_libclang = lambda: None
        try:
            with contextlib.redirect_stdout(io.StringIO()), \
                    contextlib.redirect_stderr(io.StringIO()):
                self.assertEqual(
                    saga_analyze.main(["--engine", "libclang"]), 0)
                self.assertEqual(
                    saga_analyze.main(["--engine", "libclang",
                                       "--require-engine"]), 3)
        finally:
            saga_analyze.try_import_libclang = real


class Caching(unittest.TestCase):
    FILES = {
        "src/helper.h": "inline void helper() {}\n",
        "src/kernel.cc": ('#include "helper.h"\n' + ENTRY +
                          "void kernelRound() { helper(); }\n"),
        "src/other.cc": "void standalone() {}\n",
    }

    def test_warm_rerun_hits_and_header_edit_invalidates(self):
        root = tempfile.mkdtemp(prefix="saga_analyze_cache_")
        cache = os.path.join(root, ".cache")
        try:
            an1, _, _ = analyze_tree(dict(self.FILES), root=root,
                                     cache_dir=cache)
            self.assertEqual(an1.tu_hits, 0)
            self.assertEqual(an1.tu_misses, 2)

            an2, _, _ = analyze_tree(dict(self.FILES), root=root,
                                     cache_dir=cache)
            self.assertEqual(an2.tu_hits, 2)
            self.assertEqual(an2.file_misses, 0)

            # Editing a header must invalidate exactly the TU whose
            # include closure contains it.
            edited = dict(self.FILES)
            edited["src/helper.h"] = "inline void helper() { throw 1; }\n"
            an3, _, rules = analyze_tree(edited, root=root,
                                         cache_dir=cache)
            self.assertEqual(an3.tu_hits, 1)    # other.cc untouched
            self.assertEqual(an3.tu_misses, 1)  # kernel.cc re-keyed
            self.assertEqual(an3.file_misses, 1)  # only the edited file
            self.assertIn("hotpath/throw", rules)
        finally:
            shutil.rmtree(root, ignore_errors=True)

    def test_cache_is_engine_and_version_keyed(self):
        an = saga_analyze.Analyzer(".", "internal", cache_dir=None)
        k_int = an.file_cache_key("src/a.h", "d" * 8)
        an.engine_name = "libclang"
        self.assertNotEqual(k_int, an.file_cache_key("src/a.h", "d" * 8))


if __name__ == "__main__":
    unittest.main()
