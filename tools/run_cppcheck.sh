#!/bin/sh
# run_cppcheck.sh — the single entry point for the cppcheck gate.
#
# CI runs exactly this script, so a local `tools/run_cppcheck.sh`
# reproduces the CI verdict: configuration comes from saga.cppcheck (the
# committed project file) and waivers from tools/cppcheck_suppressions.txt.
# Extra arguments pass through to cppcheck (e.g. --xml, -j8).
#
# Exit status: 0 = clean or cppcheck not installed (skip with a notice),
# 1 = findings, cppcheck's own codes otherwise.
set -eu
cd "$(dirname "$0")/.."

if ! command -v cppcheck >/dev/null 2>&1; then
    echo "run_cppcheck: cppcheck not installed — skipping" \
         "(the CI static-analysis job installs and enforces it)" >&2
    exit 0
fi

mkdir -p build/cppcheck

exec cppcheck \
    --project=saga.cppcheck \
    --suppressions-list=tools/cppcheck_suppressions.txt \
    --enable=warning,portability \
    --inline-suppr \
    --error-exitcode=1 \
    "$@"
