#!/usr/bin/env python3
"""Unit tests for tools/saga_lint.py — one per rule, plus suppression,
scoping, and comment/string handling. Run directly (`python3
tools/test_saga_lint.py`) or via the `saga_lint_selftest` ctest target."""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import saga_lint  # noqa: E402


def lint_source(source, relpath):
    """Lint `source` as if it lived at `relpath`; return finding rules."""
    with tempfile.NamedTemporaryFile("w", suffix=".cc", delete=False) as f:
        f.write(source)
        path = f.name
    try:
        return [rule for _, rule, _ in saga_lint.lint_file(path, relpath)]
    finally:
        os.unlink(path)


class AtomicRefConfined(unittest.TestCase):
    def test_flags_atomic_ref_outside_platform(self):
        rules = lint_source("std::atomic_ref<int> r(x);\n", "src/algo/x.h")
        self.assertIn("atomic-ref-confined", rules)

    def test_allows_atomic_ref_in_atomic_ops(self):
        rules = lint_source("std::atomic_ref<int> r(x);\n"
                            "#include <atomic>\n",
                            "src/platform/atomic_ops.h")
        self.assertNotIn("atomic-ref-confined", rules)


class KernelAtomics(unittest.TestCase):
    def test_flags_raw_load_in_kernel(self):
        rules = lint_source("auto v = flag.load(std::memory_order_acquire);\n"
                            "#include <atomic>\n", "src/algo/bfs.h")
        self.assertIn("kernel-atomics", rules)

    def test_flags_fetch_add_and_cas(self):
        src = ("count.fetch_add(1);\n"
               "ref.compare_exchange_weak(a, b);\n")
        rules = lint_source(src, "src/algo/pr.h")
        self.assertEqual(rules.count("kernel-atomics"), 2)

    def test_helpers_and_non_kernel_paths_ok(self):
        self.assertNotIn("kernel-atomics",
                         lint_source("atomicLoad(values[v]);\n",
                                     "src/algo/cc.h"))
        self.assertNotIn("kernel-atomics",
                         lint_source("count.fetch_add(1);\n#include <atomic>\n",
                                     "src/ds/stinger.h"))

    def test_comment_mention_is_not_flagged(self):
        rules = lint_source("// uses .load() internally\n", "src/algo/x.h")
        self.assertNotIn("kernel-atomics", rules)


class NoStdMutex(unittest.TestCase):
    def test_flags_mutex_family_in_src(self):
        src = ("std::mutex m;\n"
               "std::lock_guard<std::mutex> g(m);\n"
               "std::condition_variable cv;\n")
        rules = lint_source(src, "src/saga/driver.cc")
        self.assertGreaterEqual(rules.count("no-std-mutex"), 3)

    def test_tests_may_use_mutex(self):
        rules = lint_source("std::mutex m;\n", "tests/test_x.cc")
        self.assertNotIn("no-std-mutex", rules)


class NoVolatile(unittest.TestCase):
    def test_flags_volatile_in_src(self):
        rules = lint_source("volatile int x = 0;\n", "src/gen/rmat.cc")
        self.assertIn("no-volatile", rules)


class NoRand(unittest.TestCase):
    def test_flags_rand_and_srand(self):
        rules = lint_source("srand(42);\nint x = rand();\n",
                            "bench/micro.cc")
        self.assertEqual(rules.count("no-rand"), 2)

    def test_mt19937_is_fine(self):
        rules = lint_source("std::mt19937_64 gen(7);\n", "bench/micro.cc")
        self.assertNotIn("no-rand", rules)


class NoPthread(unittest.TestCase):
    def test_flags_pthread_call(self):
        rules = lint_source("pthread_create(&t, 0, fn, 0);\n",
                            "src/platform/x.cc")
        self.assertIn("no-pthread", rules)


class NoNewArray(unittest.TestCase):
    def test_flags_naked_new_array_in_stores(self):
        rules = lint_source("entries = new Neighbor[16];\n",
                            "src/ds/stinger.h")
        self.assertIn("no-new-array", rules)

    def test_make_unique_ok(self):
        rules = lint_source(
            "entries = std::make_unique<Neighbor[]>(16);\n",
            "src/ds/stinger.h")
        self.assertNotIn("no-new-array", rules)

    def test_scalar_new_ok(self):
        rules = lint_source("auto *b = new EdgeBlock;\n", "src/ds/stinger.h")
        self.assertNotIn("no-new-array", rules)


class RelaxedNeedsReason(unittest.TestCase):
    def test_flags_unjustified_relaxed(self):
        rules = lint_source(
            "#include <atomic>\n"
            "n.load(std::memory_order_relaxed);\n", "src/ds/x.h")
        self.assertIn("relaxed-needs-reason", rules)

    def test_same_line_justification(self):
        rules = lint_source(
            "#include <atomic>\n"
            "n.load(std::memory_order_relaxed); // relaxed: counter\n",
            "src/ds/x.h")
        self.assertNotIn("relaxed-needs-reason", rules)

    def test_justification_up_to_three_lines_above(self):
        rules = lint_source(
            "#include <atomic>\n"
            "// relaxed: monotonic counter\n"
            "n.store(0,\n"
            "        std::memory_order_relaxed);\n", "src/ds/x.h")
        self.assertNotIn("relaxed-needs-reason", rules)

    def test_justification_too_far_above(self):
        rules = lint_source(
            "#include <atomic>\n"
            "// relaxed: far away\n"
            "int a;\nint b;\nint c;\n"
            "n.load(std::memory_order_relaxed);\n", "src/ds/x.h")
        self.assertIn("relaxed-needs-reason", rules)


class PipelineNoRelaxed(unittest.TestCase):
    def test_flags_relaxed_in_handoff_even_with_justification(self):
        # relaxed-needs-reason accepts a justified relaxed; the epoch
        # handoff does not allow one at all.
        rules = lint_source(
            "#include <atomic>\n"
            "// relaxed: epoch counter\n"
            "epoch_.load(std::memory_order_relaxed);\n",
            "src/saga/driver.h")
        self.assertIn("pipeline-no-relaxed", rules)

    def test_flags_in_staged_apply(self):
        rules = lint_source(
            "#include <atomic>\n"
            "n.fetch_add(1, std::memory_order_relaxed); // relaxed: x\n",
            "src/saga/staged_apply.h")
        self.assertIn("pipeline-no-relaxed", rules)

    def test_store_counters_out_of_scope(self):
        rules = lint_source(
            "#include <atomic>\n"
            "// relaxed: monotonic counter\n"
            "n.fetch_add(1, std::memory_order_relaxed);\n",
            "src/ds/adj_shared.h")
        self.assertNotIn("pipeline-no-relaxed", rules)

    def test_other_saga_files_out_of_scope(self):
        rules = lint_source(
            "#include <atomic>\n"
            "// relaxed: monotonic counter\n"
            "n.fetch_add(1, std::memory_order_relaxed);\n",
            "src/saga/registry.cc")
        self.assertNotIn("pipeline-no-relaxed", rules)

    def test_flags_relaxed_in_serve_epoch_gate(self):
        rules = lint_source(
            "#include <atomic>\n"
            "// relaxed: reader count is advisory\n"
            "state_.load(std::memory_order_relaxed);\n",
            "src/serve/epoch_gate.h")
        self.assertIn("pipeline-no-relaxed", rules)

    def test_flags_relaxed_in_serve_service(self):
        rules = lint_source(
            "#include <atomic>\n"
            "// relaxed: epoch is monotone\n"
            "graph_epoch_.load(std::memory_order_relaxed);\n",
            "src/serve/service.cc")
        self.assertIn("pipeline-no-relaxed", rules)

    def test_serve_non_handoff_files_out_of_scope(self):
        # The histogram and wire files are not epoch-handoff code.
        rules = lint_source(
            "#include <atomic>\n"
            "// relaxed: stats only\n"
            "n.fetch_add(1, std::memory_order_relaxed);\n",
            "src/serve/latency_histogram.h")
        self.assertNotIn("pipeline-no-relaxed", rules)


class AtomicInclude(unittest.TestCase):
    def test_flags_missing_include(self):
        rules = lint_source("std::atomic<int> n{0};\n", "src/saga/x.h")
        self.assertIn("atomic-include", rules)

    def test_include_present_ok(self):
        rules = lint_source("#include <atomic>\nstd::atomic<int> n{0};\n",
                            "src/saga/x.h")
        self.assertNotIn("atomic-include", rules)

    def test_memory_order_token_requires_include(self):
        rules = lint_source(
            "// relaxed: x\nfoo(std::memory_order_relaxed);\n",
            "src/saga/x.h")
        self.assertIn("atomic-include", rules)


class PaddedWorkerAccumulators(unittest.TestCase):
    def test_flags_plain_vector_sized_by_pool_in_kernel(self):
        rules = lint_source(
            "std::vector<double> worker_delta(pool.size(), 0.0);\n",
            "src/algo/pr.h")
        self.assertIn("padded-worker-accumulators", rules)

    def test_flags_nested_vector_and_member_pool(self):
        src = ("std::vector<std::vector<NodeId>> local{pool.size()};\n"
               "std::vector<char> changed(pool_.size(), 0);\n")
        rules = lint_source(src, "src/algo/cc.h")
        self.assertEqual(rules.count("padded-worker-accumulators"), 2)

    def test_padded_accumulator_ok(self):
        rules = lint_source(
            "PaddedAccumulator<double> worker_delta(pool.size(), 0.0);\n",
            "src/algo/pr.h")
        self.assertNotIn("padded-worker-accumulators", rules)

    def test_non_worker_vectors_ok(self):
        # Sized by the graph, not the pool: dense value arrays are meant
        # to be contiguous.
        rules = lint_source(
            "std::vector<double> next(n, 0.0);\n", "src/algo/pr.h")
        self.assertNotIn("padded-worker-accumulators", rules)

    def test_out_of_kernel_scope_ok(self):
        # The bench's legacy kernels keep the packed layout on purpose
        # (they reproduce the pre-engine behavior, false sharing and all).
        rules = lint_source(
            "std::vector<double> worker_delta(pool.size(), 0.0);\n",
            "bench/bench_compute.cc")
        self.assertNotIn("padded-worker-accumulators", rules)


class TelemetryEnumQualified(unittest.TestCase):
    def test_flags_unqualified_phase(self):
        rules = lint_source("SAGA_PHASE(Phase::Update);\n", "src/ds/x.h")
        self.assertIn("telemetry-enum-qualified", rules)

    def test_flags_non_enumerator_counter(self):
        rules = lint_source("SAGA_COUNT(kMyCounter, 1);\n", "bench/x.cc")
        self.assertIn("telemetry-enum-qualified", rules)

    def test_qualified_uses_ok(self):
        src = ("SAGA_PHASE(telemetry::Phase::Update);\n"
               "SAGA_COUNT(telemetry::Counter::IngestBatches, 1);\n"
               "SAGA_COUNT(saga::telemetry::Counter::ScatterEdges, n);\n"
               "SAGA_PHASE(::saga::telemetry::Phase::Compute);\n")
        rules = lint_source(src, "src/ds/x.h")
        self.assertNotIn("telemetry-enum-qualified", rules)

    def test_macro_definition_header_exempt(self):
        rules = lint_source("#define SAGA_PHASE(phase) ((void)0)\n",
                            "src/telemetry/telemetry.h")
        self.assertNotIn("telemetry-enum-qualified", rules)

    def test_comment_mention_is_not_flagged(self):
        rules = lint_source("// wrap it in SAGA_PHASE(...) to time it\n",
                            "src/ds/x.h")
        self.assertNotIn("telemetry-enum-qualified", rules)


class Suppressions(unittest.TestCase):
    def test_same_line_allow(self):
        rules = lint_source(
            "volatile int x; // saga-lint: allow(no-volatile) MMIO shim\n",
            "src/platform/x.h")
        self.assertNotIn("no-volatile", rules)

    def test_allow_next_line(self):
        rules = lint_source(
            "// saga-lint: allow-next(no-volatile) MMIO shim\n"
            "volatile int x;\n", "src/platform/x.h")
        self.assertNotIn("no-volatile", rules)

    def test_allow_file(self):
        rules = lint_source(
            "// saga-lint: allow-file(no-std-mutex): parking needs one\n"
            "std::mutex a;\nstd::mutex b;\n", "src/platform/pool.cc")
        self.assertNotIn("no-std-mutex", rules)

    def test_allow_wrong_rule_does_not_suppress(self):
        rules = lint_source(
            "volatile int x; // saga-lint: allow(no-rand) wrong rule\n",
            "src/platform/x.h")
        self.assertIn("no-volatile", rules)

    def test_multiple_rules_in_one_allow(self):
        rules = lint_source(
            "volatile int x = rand(); "
            "// saga-lint: allow(no-volatile, no-rand) fixture\n",
            "src/platform/x.h")
        self.assertNotIn("no-volatile", rules)
        self.assertNotIn("no-rand", rules)


class StaleSuppressionAudit(unittest.TestCase):
    def test_stale_allow_is_flagged(self):
        rules = lint_source(
            "int x; // saga-lint: allow(no-volatile) fixed long ago\n",
            "src/platform/x.h")
        self.assertIn("stale-suppression", rules)

    def test_stale_allow_next_is_flagged(self):
        rules = lint_source(
            "// saga-lint: allow-next(no-rand) code moved away\n"
            "int x;\n", "src/platform/x.h")
        self.assertIn("stale-suppression", rules)

    def test_stale_allow_file_is_flagged(self):
        rules = lint_source(
            "// saga-lint: allow-file(no-std-mutex): nothing left\n"
            "int x;\n", "src/platform/x.h")
        self.assertIn("stale-suppression", rules)

    def test_live_suppression_is_not_stale(self):
        rules = lint_source(
            "volatile int x; // saga-lint: allow(no-volatile) MMIO shim\n",
            "src/platform/x.h")
        self.assertEqual(rules, [])

    def test_partially_stale_multi_rule_pragma(self):
        # no-volatile absorbs a finding; no-rand absorbs nothing — the
        # dead half of the pragma is flagged without losing the live one.
        rules = lint_source(
            "volatile int x; "
            "// saga-lint: allow(no-volatile, no-rand) fixture\n",
            "src/platform/x.h")
        self.assertEqual(rules, ["stale-suppression"])

    def test_allow_on_wrong_line_is_stale(self):
        # The pragma sits one line below the violation it meant to waive:
        # the violation fires AND the pragma is reported stale.
        rules = lint_source(
            "volatile int x;\n"
            "// saga-lint: allow(no-volatile) off by one\n",
            "src/platform/x.h")
        self.assertEqual(sorted(rules),
                         ["no-volatile", "stale-suppression"])

    def test_audit_is_not_suppressible(self):
        rules = lint_source(
            "int x; // saga-lint: allow(no-volatile, stale-suppression)\n",
            "src/platform/x.h")
        self.assertEqual(rules.count("stale-suppression"), 2)

    def test_live_atomic_include_file_waiver(self):
        rules = lint_source(
            "// saga-lint: allow-file(atomic-include): forwarded\n"
            "std::atomic<int> *p;\n", "src/platform/fwd.h")
        self.assertEqual(rules, [])

    def test_stale_atomic_include_file_waiver(self):
        rules = lint_source(
            "// saga-lint: allow-file(atomic-include): forwarded\n"
            "#include <atomic>\n"
            "std::atomic<int> *p;\n", "src/platform/fwd.h")
        self.assertEqual(rules, ["stale-suppression"])


class FixtureSandbox(unittest.TestCase):
    def test_all_rules_active_in_fixture_dir(self):
        # src/-scoped rules must fire inside tests/lint_fixtures/ too.
        rules = lint_source("std::mutex m;\nvolatile int x;\n",
                            "tests/lint_fixtures/bad.cc")
        self.assertIn("no-std-mutex", rules)
        self.assertIn("no-volatile", rules)


class StringAndCommentHandling(unittest.TestCase):
    def test_string_literal_not_flagged(self):
        rules = lint_source('const char *s = "volatile std::mutex";\n',
                            "src/stats/x.cc")
        self.assertEqual(rules, [])

    def test_block_comment_not_flagged(self):
        rules = lint_source("/* std::mutex m;\n   volatile int x; */\n",
                            "src/stats/x.cc")
        self.assertEqual(rules, [])


class TreeIsClean(unittest.TestCase):
    def test_repo_tree_lints_clean(self):
        root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))
        self.assertEqual(saga_lint.main(["--root", root]), 0)


if __name__ == "__main__":
    unittest.main()
