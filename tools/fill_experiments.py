#!/usr/bin/env python3
"""Fill EXPERIMENTS.md placeholders from bench_output.txt.

Repo maintenance helper: after regenerating bench_output.txt, re-run this
script to refresh the quoted result blocks in EXPERIMENTS.md.
"""
import re
import sys

OUT = "bench_output.txt"
DOC = "EXPERIMENTS.md"


def section(name: str) -> str:
    text = open(OUT).read()
    match = re.search(
        r"##### \S*/" + re.escape(name) + r"\n(.*?)(?=\n##### |\Z)",
        text, re.S)
    if not match:
        raise SystemExit(f"section {name} not found in {OUT}")
    return match.group(1)


def table_lines(body: str, header_prefix: str, stop_blank: bool = True):
    """Lines of the first table whose header starts with header_prefix."""
    lines = body.splitlines()
    for i, line in enumerate(lines):
        if line.startswith(header_prefix):
            rows = [line]
            for row in lines[i + 1:]:
                if stop_blank and not row.strip():
                    break
                rows.append(row)
            return rows
    raise SystemExit(f"table '{header_prefix}' not found")


def fence(rows) -> str:
    return "```\n" + "\n".join(r.rstrip() for r in rows) + "\n```"


def main():
    doc = open(DOC).read()

    # Table IV: the whole table.
    t4 = section("table4_degrees")
    doc = doc.replace("{{TABLE4}}", fence(table_lines(t4, "Dataset")))

    # Table III: quote a representative slice (BFS + PR rows).
    t3 = section("table3_best_combo")
    rows = table_lines(t3, "Alg")
    keep = [rows[0], rows[1]] + [r for r in rows
                                 if r.startswith(("bfs", "pr", "sssp"))]
    doc = doc.replace("{{TABLE3_SUMMARY}}", fence(keep))

    # Fig 6: update table (b) and modeled table (b').
    f6 = section("fig6_data_structures")
    update_idx = f6.find("(b) P3 update")
    model_idx = f6.find("(b') update")
    doc = doc.replace(
        "{{FIG6_SUMMARY}}",
        fence(table_lines(f6[update_idx:], "Alg")))
    doc = doc.replace(
        "{{FIG6_MODEL}}",
        fence(table_lines(f6[model_idx:], "Dataset")))

    # Fig 7: quote the rmat + talk rows (largest/smallest beneficiaries).
    f7 = section("fig7_compute_model")
    rows = table_lines(f7, "Alg")
    keep = rows[:2] + [r for r in rows[2:]
                       if "  rmat " in " " + r or "  talk " in " " + r
                       or r.split()[1:2] in (["rmat"], ["talk"])]
    keep = rows[:2] + [r for r in rows[2:]
                       if len(r.split()) > 1 and
                       r.split()[1] in ("rmat", "talk")]
    doc = doc.replace("{{FIG7_SUMMARY}}", fence(keep))

    # Fig 8: the ">= 40%" summary line.
    f8 = section("fig8_update_share")
    line = next(l for l in f8.splitlines() if "stage cells" in l)
    doc = doc.replace("{{FIG8_SUMMARY}}", line.strip())

    # Fig 9: both tables.
    f9 = section("fig9_scaling")
    doc = doc.replace(
        "{{FIG9_SUMMARY}}",
        fence(table_lines(f9, "curve")) + "\n" +
        fence(table_lines(f9, "group")))

    # Fig 10: quote both group blocks' MPKI tables plus hit ratios.
    f10 = section("fig10_caches")
    blocks = []
    for marker in ("--- STail", "--- HTail"):
        idx = f10.find(marker)
        blocks.append(f10[idx:].splitlines()[0])
        blocks.extend(table_lines(f10[idx:], "phase"))
    doc = doc.replace("{{FIG10_SUMMARY}}", fence(blocks))

    # Micro: full table.
    micro = section("micro_ds")
    rows = [l for l in micro.splitlines()
            if l.startswith(("Benchmark", "BM_", "---"))]
    doc = doc.replace("{{MICRO_SUMMARY}}", fence(rows))

    open(DOC, "w").write(doc)
    print("EXPERIMENTS.md updated")


if __name__ == "__main__":
    sys.exit(main())
