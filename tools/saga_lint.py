#!/usr/bin/env python3
"""saga_lint — SAGA-Bench's atomic-discipline linter.

Enforces the repo-specific concurrency rules that neither the compiler nor
Clang Thread Safety Analysis can express (TSA checks lock contracts; these
rules pin down *which primitives may appear where*):

  atomic-ref-confined   std::atomic_ref only inside platform/atomic_ops.h;
                        everything else uses the atomicLoad/atomicStore/
                        atomicFetchMin/Max/atomicClaim helpers.
  kernel-atomics        src/algo/ (the compute kernels) may not call raw
                        .load()/.store()/.exchange()/.fetch_*()/
                        compare_exchange* — kernels go through the helpers
                        so every cross-thread access shares one discipline.
  no-std-mutex          <mutex> primitives are banned in src/ (locking goes
                        through platform/spinlock.h); the thread pool is
                        the one sanctioned exception (condvar parking) and
                        carries a file-level suppression.
  no-volatile           volatile is not a concurrency primitive.
  no-rand               rand()/srand() are racy global state; use
                        platform/rng.h.
  no-pthread            raw pthread_* calls bypass the platform layer.
  no-new-array          naked `new T[...]` in the stores (src/ds/) leaks on
                        exception paths; use std::make_unique<T[]> or a
                        container.
  relaxed-needs-reason  every std::memory_order_relaxed must carry a
                        `relaxed:` justification comment on the same line
                        or within the three preceding lines.
  pipeline-no-relaxed   the pipelined driver's epoch handoff
                        (saga/staged_apply.h, saga/driver.h,
                        saga/experiment.*) may not use relaxed atomics at
                        all, justified or not: stage/publish/compute
                        hand-offs synchronize through the AsyncLane mutex
                        or acquire/release, so TSan's verdict on the
                        overlap is meaningful.
  atomic-include        a src/ file that names std::atomic / std::memory_order
                        must #include <atomic> itself (include-what-you-use
                        for the concurrency surface).
  padded-worker-accumulators
                        kernels (src/algo/) may not declare per-worker
                        accumulator arrays as plain std::vector sized by
                        pool.size() — adjacent workers' slots land on the
                        same cache line; use PaddedAccumulator
                        (platform/padded.h) or an alignas(64) slot type.
  telemetry-enum-qualified
                        SAGA_PHASE / SAGA_COUNT take a qualified
                        telemetry::Phase:: / telemetry::Counter::
                        enumerator — never a bare name or an expression —
                        so every instrumentation point greps to the closed
                        enums in src/telemetry/metrics.h.

Suppressions (all require the rule name, keeping waivers greppable):

  // saga-lint: allow(rule-a, rule-b) <reason>      this line only
  // saga-lint: allow-next(rule) <reason>           the following line
  // saga-lint: allow-file(rule): <reason>          the whole file

Stale-suppression audit: a pragma whose rule never actually fires under
it (the code it waived was fixed or moved) is itself a violation,
  stale-suppression     reported at the pragma's line; *not* suppressible
                        — the only fix is deleting the dead pragma, so
                        waivers never outlive the code they excuse.

Usage:
  saga_lint.py [--root DIR] [paths...]   lint paths (default: src bench
                                         tests examples, minus fixture and
                                         negative-compile directories)
  saga_lint.py --list-rules              print the rules table

Exit status: 0 = clean, 1 = violations, 2 = usage error.
"""

import argparse
import os
import re
import sys

CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")

# Directories (relative to the repo root) holding intentionally-bad inputs:
# negative-compile cases and the seeded fixtures of this linter and of
# saga_analyze. They are
# skipped when a *directory* is expanded, but linted when named explicitly
# (that is how the seeded-fixture ctest drives them).
DEFAULT_EXCLUDES = ("tests/lint_fixtures", "tests/compile_fail",
                    "tests/analyze_fixtures")

DEFAULT_PATHS = ("src", "bench", "tests", "examples")

# The seeded-fixture sandbox is linted with *every* rule active (its whole
# point is to violate them), regardless of each rule's path scope.
FIXTURE_DIR = "tests/lint_fixtures"

SUPPRESS_RE = re.compile(
    r"//\s*saga-lint:\s*(allow|allow-next|allow-file)\(([^)]*)\)")


class Rule:
    """One lint rule: a name, a scope predicate, and a line checker."""

    def __init__(self, name, summary, applies, pattern, message,
                 strip_comments=True):
        self.name = name
        self.summary = summary
        self.applies = applies  # fn(relpath) -> bool
        self.pattern = re.compile(pattern)
        self.message = message
        # Most rules ignore commented-out code; relaxed-needs-reason must
        # see comments (the justification lives in one).
        self.strip_comments = strip_comments

    def check_line(self, line):
        return self.pattern.search(line) is not None


def in_dir(*prefixes):
    def applies(relpath):
        if relpath.startswith(FIXTURE_DIR + "/"):
            return True
        return any(relpath.startswith(p + "/") or relpath == p
                   for p in prefixes)
    return applies


def everywhere_except(*exempt):
    def applies(relpath):
        return relpath not in exempt
    return applies


def epoch_handoff_scope(relpath):
    # The epoch-handoff surface: everything between stageAsync() and the
    # publish barrier in the pipelined driver, plus the serving layer's
    # equivalent (EpochGate readers/publisher and the service epoch
    # loop). Store-internal relaxed counters (src/ds/) are out of scope
    # — they answer to relaxed-needs-reason instead.
    if relpath.startswith(FIXTURE_DIR + "/"):
        return True
    return relpath in ("src/saga/staged_apply.h", "src/saga/driver.h",
                       "src/saga/driver.cc", "src/saga/experiment.h",
                       "src/saga/experiment.cc",
                       "src/serve/epoch_gate.h", "src/serve/service.h",
                       "src/serve/service.cc")


def telemetry_macro_scope(relpath):
    # telemetry.h *defines* the macros (`#define SAGA_PHASE(phase) ...`),
    # so its parameter names would trip the qualification check.
    if relpath == "src/telemetry/telemetry.h":
        return False
    return in_dir("src", "bench", "examples", "tests")(relpath)


RULES = [
    Rule("atomic-ref-confined",
         "std::atomic_ref only inside platform/atomic_ops.h",
         everywhere_except("src/platform/atomic_ops.h"),
         r"\bstd::atomic_ref\b",
         "raw std::atomic_ref outside platform/atomic_ops.h — use "
         "atomicLoad/atomicStore/atomicFetchMin/Max/atomicClaim"),
    Rule("kernel-atomics",
         "kernels (src/algo/) use the atomic helpers, not raw member ops",
         in_dir("src/algo"),
         r"\.\s*(load|store|exchange|fetch_\w+|compare_exchange_\w+)\s*\(",
         "raw atomic member op in a kernel — use the platform/atomic_ops.h "
         "helpers"),
    Rule("no-std-mutex",
         "src/ locks via platform/spinlock.h, not <mutex>",
         in_dir("src"),
         r"\bstd::(mutex|timed_mutex|recursive_mutex|shared_mutex|"
         r"scoped_lock|lock_guard|unique_lock|shared_lock|"
         r"condition_variable\w*)\b",
         "std::mutex-family primitive in src/ — use SpinLock/SpinGuard "
         "(platform/spinlock.h)"),
    Rule("no-volatile",
         "volatile is not a concurrency primitive",
         in_dir("src"),
         r"\bvolatile\b",
         "volatile in src/ — use std::atomic or the atomic helpers"),
    Rule("no-rand",
         "rand()/srand() are racy global state",
         in_dir("src", "bench", "examples"),
         r"\b(s?rand)\s*\(",
         "C rand()/srand() — use platform/rng.h"),
    Rule("no-pthread",
         "raw pthreads bypass the platform layer",
         in_dir("src"),
         r"\bpthread_\w+",
         "raw pthread_* call in src/ — use ThreadPool / std::thread"),
    Rule("no-new-array",
         "stores allocate arrays via make_unique/containers",
         in_dir("src/ds"),
         r"\bnew\s+[A-Za-z_][\w:<>, ]*\[",
         "naked new[] in a store — use std::make_unique<T[]> or a "
         "container"),
    Rule("relaxed-needs-reason",
         "memory_order_relaxed needs a `relaxed:` justification comment",
         in_dir("src"),
         r"\bmemory_order_relaxed\b",
         "memory_order_relaxed without a `// relaxed: ...` justification "
         "on this line or the three lines above",
         strip_comments=False),
    Rule("pipeline-no-relaxed",
         "no relaxed atomics in the pipelined epoch handoff",
         epoch_handoff_scope,
         r"\bmemory_order_relaxed\b",
         "memory_order_relaxed in the pipelined epoch handoff — "
         "stage/publish/compute hand-offs must synchronize via the "
         "AsyncLane mutex or acquire/release; a relaxed counter belongs "
         "in the store, not here"),
    Rule("padded-worker-accumulators",
         "per-worker accumulator arrays in kernels are false-sharing safe",
         in_dir("src/algo"),
         # The lookbehind skips std::vector appearing as a template
         # argument (e.g. PaddedAccumulator<std::vector<NodeId>>).
         r"(?<!<)\bstd::vector<[^;()]*>\s+\w+\s*[({]\s*pool_?\.size\(\)",
         "per-worker accumulator sized by pool.size() as a plain "
         "std::vector — adjacent workers' slots share cache lines; use "
         "PaddedAccumulator (platform/padded.h) or an alignas(64) slot "
         "type"),
    Rule("telemetry-enum-qualified",
         "SAGA_PHASE/SAGA_COUNT take qualified Phase::/Counter:: enumerators",
         telemetry_macro_scope,
         r"\bSAGA_PHASE\s*\(\s*(?!(::)?(saga::)?telemetry::Phase::)"
         r"|\bSAGA_COUNT\s*\(\s*(?!(::)?(saga::)?telemetry::Counter::)"
         r"|\bSAGA_COUNT_MAX\s*\(\s*(?!(::)?(saga::)?telemetry::Counter::)",
         "SAGA_PHASE/SAGA_COUNT/SAGA_COUNT_MAX argument must be a "
         "qualified telemetry::Phase::/telemetry::Counter:: enumerator "
         "(src/telemetry/metrics.h)"),
]

STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')
LINE_COMMENT_RE = re.compile(r"//.*$")


def strip_noncode(line, in_block_comment):
    """Remove string literals and comments; track /* */ state."""
    line = STRING_RE.sub('""', line)
    out = []
    i = 0
    while i < len(line):
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        start_block = line.find("/*", i)
        start_line = line.find("//", i)
        if start_line >= 0 and (start_block < 0 or start_line < start_block):
            out.append(line[i:start_line])
            return "".join(out), False
        if start_block >= 0:
            out.append(line[i:start_block])
            i = start_block + 2
            in_block_comment = True
            continue
        out.append(line[i:])
        break
    return "".join(out), in_block_comment


def parse_suppressions(lines):
    """Return (file_level_rules, line_allow, next_allow, decls).

    decls is the stale-audit ledger: one record per (pragma, rule) pair.
    lint_file flips `used` when a finding is actually absorbed by the
    pragma; anything still unused at end of file is a dead waiver."""
    file_level = set()
    line_allow = {}   # lineno -> set(rule)
    next_allow = {}   # lineno the suppression *protects* -> set(rule)
    decls = []        # {"line", "kind", "rule", "used"}
    for lineno, line in enumerate(lines, 1):
        for kind, rule_list in SUPPRESS_RE.findall(line):
            rules = {r.strip() for r in rule_list.split(",") if r.strip()}
            for rule in sorted(rules):
                decls.append({"line": lineno, "kind": kind, "rule": rule,
                              "used": False})
            if kind == "allow-file":
                file_level |= rules
            elif kind == "allow":
                line_allow.setdefault(lineno, set()).update(rules)
            elif kind == "allow-next":
                next_allow.setdefault(lineno + 1, set()).update(rules)
    return file_level, line_allow, next_allow, decls


def relaxed_is_justified(lines, idx):
    """`relaxed:` comment on the line or within the three lines above."""
    for back in range(0, 4):
        j = idx - back
        if j < 0:
            break
        if "relaxed:" in lines[j]:
            return True
    return False


def has_atomic_include(lines):
    """True if the file has a real (non-comment) #include <atomic>."""
    in_block = False
    for line in lines:
        code, in_block = strip_noncode(line, in_block)
        if re.search(r'#\s*include\s*<atomic>', code):
            return True
    return False


def lint_file(path, relpath):
    """Yield (lineno, rule, message) findings for one file."""
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as err:
        yield 0, "io-error", str(err)
        return

    file_level, line_allow, next_allow, decls = parse_suppressions(lines)

    def mark_used(rule_name, lineno):
        for d in decls:
            if d["rule"] != rule_name:
                continue
            if (d["kind"] == "allow-file" or
                    (d["kind"] == "allow" and d["line"] == lineno) or
                    (d["kind"] == "allow-next" and
                     d["line"] + 1 == lineno)):
                d["used"] = True

    def suppressed(rule_name, lineno):
        hit = (rule_name in file_level or
               rule_name in line_allow.get(lineno, ()) or
               rule_name in next_allow.get(lineno, ()))
        if hit:
            mark_used(rule_name, lineno)
        return hit

    active = [r for r in RULES if r.applies(relpath)]

    in_block = False
    uses_atomic_tokens = False
    for idx, raw in enumerate(lines):
        code, in_block = strip_noncode(raw, in_block)
        if re.search(r"\bstd::(atomic|memory_order)", code):
            uses_atomic_tokens = True
        for rule in active:
            subject = raw if not rule.strip_comments else code
            if not rule.check_line(subject):
                continue
            if rule.name == "relaxed-needs-reason" and \
                    relaxed_is_justified(lines, idx):
                continue
            if suppressed(rule.name, idx + 1):
                continue
            yield idx + 1, rule.name, rule.message

    if (relpath.startswith("src/") or
            relpath.startswith(FIXTURE_DIR + "/")) and \
            uses_atomic_tokens and \
            not has_atomic_include(lines):
        if "atomic-include" in file_level:
            mark_used("atomic-include", 1)
        else:
            yield 1, "atomic-include", (
                "file names std::atomic/std::memory_order but does not "
                "#include <atomic> (include-what-you-use)")

    # Stale-suppression audit: a waiver that absorbed nothing is dead
    # weight that would silently excuse a future regression. Deliberately
    # not suppressible — the only fix is deleting the pragma.
    for d in decls:
        if not d["used"]:
            yield d["line"], "stale-suppression", (
                "%s(%s) suppresses nothing — rule `%s` does not fire "
                "under this pragma; delete it" %
                (d["kind"], d["rule"], d["rule"]))


def collect_files(root, paths):
    """Expand paths to (abspath, relpath) C++ files, honoring excludes."""
    seen = []
    for p in paths:
        abspath = p if os.path.isabs(p) else os.path.join(root, p)
        abspath = os.path.normpath(abspath)
        if os.path.isfile(abspath):
            seen.append(abspath)
            continue
        for dirpath, dirnames, filenames in os.walk(abspath):
            rel = os.path.relpath(dirpath, root).replace(os.sep, "/")
            # Prune excluded subtrees only during implicit expansion of a
            # directory that *contains* them — naming an excluded
            # directory on the command line lints it.
            pruned = []
            for d in list(dirnames):
                child = (rel + "/" + d).lstrip("./")
                if child in DEFAULT_EXCLUDES and \
                        os.path.normpath(abspath) != \
                        os.path.normpath(os.path.join(root, child)):
                    dirnames.remove(d)
                    pruned.append(d)
            for name in sorted(filenames):
                if name.endswith(CXX_EXTENSIONS):
                    seen.append(os.path.join(dirpath, name))
    out = []
    for abspath in sorted(set(seen)):
        relpath = os.path.relpath(abspath, root).replace(os.sep, "/")
        out.append((abspath, relpath))
    return out


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="saga_lint",
        description="SAGA-Bench atomic-discipline linter")
    parser.add_argument("--root", default=".",
                        help="repo root (rules scope by path relative to "
                             "this; default: cwd)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rules table and exit")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: %s)" % " ".join(DEFAULT_PATHS))
    args = parser.parse_args(argv)

    if args.list_rules:
        width = max(len(r.name) for r in RULES)
        for rule in RULES:
            print("%-*s  %s" % (width, rule.name, rule.summary))
        return 0

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print("saga_lint: no such root: %s" % root, file=sys.stderr)
        return 2
    paths = args.paths or [p for p in DEFAULT_PATHS
                           if os.path.isdir(os.path.join(root, p))]

    findings = 0
    checked = 0
    for abspath, relpath in collect_files(root, paths):
        checked += 1
        for lineno, rule, message in lint_file(abspath, relpath):
            findings += 1
            print("%s:%d: [%s] %s" % (relpath, lineno, rule, message))

    if findings:
        print("saga_lint: %d violation(s) in %d file(s) checked" %
              (findings, checked), file=sys.stderr)
        return 1
    print("saga_lint: clean (%d files checked)" % checked)
    return 0


if __name__ == "__main__":
    sys.exit(main())
