#!/usr/bin/env python3
"""saga_analyze — AST- and call-graph-grounded whole-program checker.

Where saga_lint matches single lines, this tool understands the *program*:
it parses every translation unit named by compile_commands.json into a
structural model (classes, members, functions, call sites, atomic
accesses), builds an interprocedural call graph, and runs four rule
packs over the whole-program view:

  hotpath    Nothing reachable from a kernel entry point (the bfs/cc/pr/
             pr_blocked/mc/sssp/sswp inner loops, PartitionedBatch::build,
             the StagedApply stage path, the DestBins phases) may perform
             heap allocation, lock acquisition, I/O, throw, or grow a
             std:: container. Escape: `// hotpath-allow: <reason>` on the
             offending line or the line above (reason required).
  atomics    Acquire/release pairing per *declaration*: a member written
             with a release store must have an acquire-side read
             somewhere in the program, and vice versa; a member that is
             part of a seq_cst protocol (any seq_cst access) must not be
             accessed with a weaker order anywhere (the thread-pool
             Dekker handshake must never be silently downgraded).
             Escape: `// atomic-pair-allow: <reason>`.
  guarded    Every non-static, non-const data member of the audited
             classes (the four stores, DynGraph, ThreadPool, AsyncLane
             and their nested structs) must be GUARDED_BY-annotated,
             atomic / a sync primitive, chunk-owned (class embeds a
             ChunkOwnership and has SAGA_REQUIRES accessors; marked
             `// chunk-owned:`), marked `// immutable-after-build:`,
             marked `// quiescent-mutated:` (phase-separated writes), or
             escaped `// guarded-member-allow: <reason>`.
  telemetry  PhaseScope objects must be named locals — a temporary
             `PhaseScope(...)` dies before the scope it claims to time —
             and SAGA_PHASE/SAGA_COUNT/telemetry::count arguments must be
             qualified telemetry::Phase:: / telemetry::Counter::
             enumerators.

Engines:
  libclang   Preferred when the clang Python bindings are importable
             (CI installs python3-clang); parses with the real compiler
             front end.
  internal   A self-contained C++ tokenizer/scope parser tuned to this
             codebase's idiom. Always available, so local builds check
             the same contracts; the two engines fill one IR and the
             rule packs cannot tell them apart.
  --engine=libclang with no libclang prints a notice and exits 0
  (skipped) unless --require-engine is given.

Caching: per-file facts are cached keyed on content hash + engine +
analyzer version; a TU is a cache hit only if every file in its include
closure is unchanged. `--stats` prints the hit rate (CI logs it).

Usage:
  saga_analyze.py --root . -p build [--json out.json] [--fix-hints]
                  [--engine auto|libclang|internal] [--cache-dir DIR]
                  [--fixtures DIR] [--stats] [--list-rules]

Exit status: 0 clean/skipped, 1 findings, 2 usage or internal error,
3 --require-engine and the requested engine is unavailable.
"""

import argparse
import hashlib
import json
import os
import re
import sys

ANALYZER_VERSION = 4

# ---------------------------------------------------------------------------
# Configuration tables
# ---------------------------------------------------------------------------

# Kernel entry points (qualified-name suffixes). Functions can also opt in
# with a `// saga-analyze: hotpath-entry` comment on the preceding lines.
HOTPATH_ENTRY_SUFFIXES = (
    "Bfs::pushRound", "Bfs::pullRound", "Bfs::recompute",
    "Cc::denseRound", "Cc::sparseRound", "Cc::recompute",
    "Pr::recompute", "Mc::recompute", "Sssp::recompute", "Sswp::recompute",
    "PartitionedBatch::build",
    "StagedApply::stage", "StagedApply::stageBucket",
    "detail::snapshotFindWeight",
    "DestBins::append", "DestBins::drainBin", "DestBins::beginRound",
    "MonotoneWorklist::run",
)

# Call-graph cut points: dispatch/barrier infrastructure. Work dispatched
# through them is analyzed where it is written (the lambda body lives in
# the caller); the dispatcher's own parking slow path is the phase
# boundary itself, not kernel code.
HOTPATH_CUTS = (
    "ThreadPool::run", "AsyncLane::submit", "AsyncLane::wait",
    "PhaseScope::PhaseScope", "PhaseScope::finish",
)

# Impure-operation tables for the hotpath pack.
ALLOC_CALLS = {"malloc", "calloc", "realloc", "aligned_alloc",
               "make_unique", "make_shared", "strdup"}
# Container-growth member calls flagged whenever seen on any receiver.
GROWTH_ALWAYS = {"push_back", "emplace_back", "reserve", "shrink_to_fit",
                 "push_front", "resize"}
# Growth member calls only flagged when the receiver is a known container
# (these names collide with repo APIs like store.insert / Padded::assign).
GROWTH_TYPED = {"insert", "emplace", "assign", "append"}
CONTAINER_TYPE_RE = re.compile(
    r"\bstd\s*::\s*(vector|string|deque|map|unordered_map|set|"
    r"unordered_set|list|basic_string)\b")
LOCK_CALLS = {"lock", "try_lock"}
LOCK_TYPES = {"SpinGuard", "lock_guard", "unique_lock", "scoped_lock",
              "shared_lock"}
IO_CALLS = {"printf", "fprintf", "sprintf", "snprintf", "puts", "fputs",
            "fopen", "fwrite", "fread", "fclose", "getline", "system",
            "fflush", "perror"}
IO_STREAMS = {"cout", "cerr", "clog", "ofstream", "ifstream", "fstream",
              "stringstream", "ostringstream"}

# Atomic member operations and their read/write roles.
ATOMIC_READ_OPS = {"load"}
ATOMIC_WRITE_OPS = {"store"}
ATOMIC_RMW_OPS = {"exchange", "fetch_add", "fetch_sub", "fetch_or",
                  "fetch_and", "fetch_xor", "compare_exchange_weak",
                  "compare_exchange_strong"}
ATOMIC_HELPER_READ = {"atomicLoad"}
ATOMIC_HELPER_WRITE = {"atomicStore"}
ATOMIC_HELPER_RMW = {"atomicFetchMin", "atomicFetchMax", "atomicClaim",
                     "atomicFetchOr"}

ACQUIRE_ORDERS = {"acquire", "acq_rel", "seq_cst"}
RELEASE_ORDERS = {"release", "acq_rel", "seq_cst"}

# Classes audited by the guarded pack (bare class names; nested structs of
# an audited class are audited too). Fixture/test classes opt in with
# `// saga-analyze: audit-class`.
AUDIT_CLASSES = {"AdjSharedStore", "AdjChunkedStore", "DahStore",
                 "StingerStore", "HybridStore", "DynGraph", "ThreadPool",
                 "AsyncLane"}

# Member types that are themselves synchronization (or immutable-by-type).
SYNC_TYPE_RE = re.compile(
    r"\b(std\s*::\s*atomic\w*|std\s*::\s*mutex|std\s*::\s*condition_variable"
    r"\w*|std\s*::\s*once_flag|SpinLock|ChunkOwnership|std\s*::\s*thread)\b")

MARKER_RE = re.compile(
    r"//\s*(?:saga-analyze:\s*)?"
    r"(hotpath-allow|atomic-pair-allow|guarded-member-allow|"
    r"immutable-after-build|chunk-owned|quiescent-mutated|"
    r"hotpath-entry|audit-class)\b:?\s*(.*)")

QUALIFIED_PHASE_RE = re.compile(
    r"^(::)?\s*(saga\s*::\s*)?telemetry\s*::\s*Phase\s*::\s*\w+")
QUALIFIED_COUNTER_RE = re.compile(
    r"^(::)?\s*(saga\s*::\s*)?telemetry\s*::\s*Counter\s*::\s*\w+")

DEFAULT_ANALYZE_DIRS = ("src", "bench", "examples")

KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "alignas", "catch", "requires", "decltype", "static_cast",
    "dynamic_cast", "reinterpret_cast", "const_cast", "noexcept",
    "static_assert", "defined", "assert", "typeid", "co_await", "throw",
    "new", "delete", "operator", "template", "typename", "using",
}


# ---------------------------------------------------------------------------
# IR
# ---------------------------------------------------------------------------

class Member:
    def __init__(self, cls, name, type_text, line, guarded_by, is_static,
                 is_const, markers):
        self.cls = cls                  # ClassFacts
        self.name = name
        self.type_text = type_text
        self.line = line
        self.guarded_by = guarded_by    # annotation arg text or None
        self.is_static = is_static
        self.is_const = is_const
        self.markers = markers          # dict marker -> reason

    @property
    def qname(self):
        return self.cls.qname + "::" + self.name


class ClassFacts:
    def __init__(self, qname, file, line):
        self.qname = qname
        self.file = file
        self.line = line
        self.members = []
        self.has_chunk_ownership = False
        self.has_requires_method = False
        self.markers = {}               # class-level markers

    @property
    def bare(self):
        return self.qname.rsplit("::", 1)[-1]


class CallSite:
    def __init__(self, name, receiver, line):
        self.name = name                # possibly qualified callee text
        self.receiver = receiver        # receiver chain last ident or None
        self.line = line


class ImpureOp:
    def __init__(self, kind, detail, line):
        self.kind = kind                # alloc | growth | lock | io | throw
        self.detail = detail
        self.line = line


class AtomicAccess:
    def __init__(self, member, role, order, line, via):
        self.member = member            # member name text or None
        self.role = role                # read | write | rmw
        self.order = order              # relaxed|acquire|release|acq_rel|
                                        # seq_cst|consume|dynamic
        self.line = line
        self.via = via                  # raw | helper


class MacroArg:
    def __init__(self, macro, arg, line):
        self.macro = macro              # SAGA_PHASE | SAGA_COUNT | count
        self.arg = arg
        self.line = line


class PhaseScopeUse:
    def __init__(self, named, line):
        self.named = named
        self.line = line


class FunctionFacts:
    def __init__(self, qname, file, line):
        self.qname = qname
        self.file = file
        self.line = line
        self.calls = []
        self.impure = []
        self.atomics = []
        self.macro_args = []
        self.phase_scopes = []
        self.param_types = {}           # param name -> type text
        self.requires_annotation = False
        self.entry_marker = False

    @property
    def bare(self):
        return self.qname.rsplit("::", 1)[-1]

    @property
    def suffix2(self):
        parts = self.qname.split("::")
        return "::".join(parts[-2:]) if len(parts) >= 2 else self.qname


class FileFacts:
    """Everything the rule packs need to know about one source file."""

    def __init__(self, path):
        self.path = path                # repo-relative
        self.classes = []
        self.functions = []
        self.markers = {}               # line -> (marker, reason)
        self.relaxed_lines = set()      # lines with `relaxed:` comments
        self.comment_lines = set()      # pure-comment line numbers
        self.includes = []              # repo-relative resolved includes

    def to_json(self):
        def member(m):
            return {"name": m.name, "type": m.type_text, "line": m.line,
                    "guarded_by": m.guarded_by, "static": m.is_static,
                    "const": m.is_const, "markers": m.markers}

        def cls(c):
            return {"qname": c.qname, "line": c.line,
                    "members": [member(m) for m in c.members],
                    "chunk_ownership": c.has_chunk_ownership,
                    "requires_method": c.has_requires_method,
                    "markers": c.markers}

        def fn(f):
            return {
                "qname": f.qname, "line": f.line,
                "calls": [[c.name, c.receiver, c.line] for c in f.calls],
                "impure": [[i.kind, i.detail, i.line] for i in f.impure],
                "atomics": [[a.member, a.role, a.order, a.line, a.via]
                            for a in f.atomics],
                "macro_args": [[m.macro, m.arg, m.line]
                               for m in f.macro_args],
                "phase_scopes": [[p.named, p.line]
                                 for p in f.phase_scopes],
                "params": f.param_types,
                "requires": f.requires_annotation,
                "entry_marker": f.entry_marker,
            }

        return {"path": self.path, "includes": self.includes,
                "relaxed_lines": sorted(self.relaxed_lines),
                "comment_lines": sorted(self.comment_lines),
                "markers": {str(k): v for k, v in self.markers.items()},
                "classes": [cls(c) for c in self.classes],
                "functions": [fn(f) for f in self.functions]}

    @staticmethod
    def from_json(data):
        ff = FileFacts(data["path"])
        ff.includes = list(data["includes"])
        ff.relaxed_lines = set(data.get("relaxed_lines", []))
        ff.comment_lines = set(data.get("comment_lines", []))
        ff.markers = {int(k): tuple(v) for k, v in data["markers"].items()}
        for c in data["classes"]:
            cf = ClassFacts(c["qname"], ff.path, c["line"])
            cf.has_chunk_ownership = c["chunk_ownership"]
            cf.has_requires_method = c["requires_method"]
            cf.markers = dict(c["markers"])
            for m in c["members"]:
                cf.members.append(Member(cf, m["name"], m["type"],
                                         m["line"], m["guarded_by"],
                                         m["static"], m["const"],
                                         dict(m["markers"])))
            ff.classes.append(cf)
        for f in data["functions"]:
            fn = FunctionFacts(f["qname"], ff.path, f["line"])
            fn.calls = [CallSite(n, r, l) for n, r, l in f["calls"]]
            fn.impure = [ImpureOp(k, d, l) for k, d, l in f["impure"]]
            fn.atomics = [AtomicAccess(m, ro, o, l, v)
                          for m, ro, o, l, v in f["atomics"]]
            fn.macro_args = [MacroArg(mc, a, l)
                             for mc, a, l in f["macro_args"]]
            fn.phase_scopes = [PhaseScopeUse(n, l)
                               for n, l in f["phase_scopes"]]
            fn.param_types = dict(f.get("params", {}))
            fn.requires_annotation = f["requires"]
            fn.entry_marker = f["entry_marker"]
            ff.functions.append(fn)
        return ff


def collect_nearby_markers(ff, line, max_walk=10):
    """Markers attached to `line`: on the line itself, the line above,
    or further up through a contiguous block of pure-comment lines (a
    multi-line justification comment counts as one annotation)."""
    out = {}
    probes = [line, line - 1]
    p = line - 1
    while p in ff.comment_lines and line - p < max_walk:
        p -= 1
        probes.append(p)
    for probe in probes:
        mk = ff.markers.get(probe)
        if mk is not None:
            out.setdefault(mk[0], mk[1])
    return out


# ---------------------------------------------------------------------------
# Internal engine: tokenizer
# ---------------------------------------------------------------------------

TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<lcomment>//[^\n]*)
  | (?P<bcomment>/\*.*?\*/)
  | (?P<str>"(?:[^"\\\n]|\\.)*")
  | (?P<chr>'(?:[^'\\\n]|\\.)*')
  | (?P<num>\.?\d(?:[\w.']|[eEpP][+-])*)
  | (?P<id>[A-Za-z_]\w*)
  | (?P<p2>::|->|\+\+|--|<<=|>>=|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|
       %=|&=|\|=|\^=|\.\.\.)
  | (?P<p1>.)
""", re.VERBOSE | re.DOTALL)


class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return "%s(%r)@%d" % (self.kind, self.text, self.line)


def tokenize(text):
    """Return (tokens, comments) with comments as (line, text) pairs."""
    toks = []
    comments = []
    line = 1
    pos = 0
    n = len(text)
    while pos < n:
        m = TOKEN_RE.match(text, pos)
        if not m:
            pos += 1
            continue
        kind = m.lastgroup
        tok_text = m.group()
        if kind == "lcomment" or kind == "bcomment":
            comments.append((line, tok_text))
        elif kind != "ws":
            toks.append(Tok("id" if kind == "id" else
                            ("str" if kind == "str" else
                             ("num" if kind == "num" else "p")),
                            tok_text, line))
        line += tok_text.count("\n")
        pos = m.end()
    return toks, comments


def strip_preprocessor(text):
    """Blank out preprocessor directives (keep line structure) and return
    (stripped_text, includes) where includes are the quoted include
    targets in order."""
    out_lines = []
    includes = []
    cont = False
    for raw in text.split("\n"):
        stripped = raw.lstrip()
        if cont or stripped.startswith("#"):
            m = re.match(r'#\s*include\s*"([^"]+)"', stripped)
            if m:
                includes.append(m.group(1))
            cont = stripped.rstrip().endswith("\\")
            out_lines.append("")
        else:
            out_lines.append(raw)
    return "\n".join(out_lines), includes


# ---------------------------------------------------------------------------
# Internal engine: structural parser
# ---------------------------------------------------------------------------

ANNOTATION_MACROS = {
    "SAGA_CAPABILITY", "SAGA_SCOPED_CAPABILITY", "SAGA_GUARDED_BY",
    "SAGA_PT_GUARDED_BY", "SAGA_REQUIRES", "SAGA_ACQUIRE", "SAGA_RELEASE",
    "SAGA_TRY_ACQUIRE", "SAGA_EXCLUDES", "SAGA_ASSERT_CAPABILITY",
    "SAGA_RETURN_CAPABILITY", "SAGA_NO_THREAD_SAFETY_ANALYSIS",
    "GUARDED_BY", "REQUIRES",
}


def match_balanced(toks, i, open_t, close_t):
    """toks[i] is open_t; return index just past its matching close_t."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def skip_template_args(toks, i):
    """toks[i] == '<': best-effort skip of a balanced template argument
    list; returns index past '>' or i+1 if it does not look balanced."""
    depth = 0
    n = len(toks)
    j = i
    while j < n:
        t = toks[j].text
        if t == "<":
            depth += 1
        elif t == ">" or t == ">>":
            depth -= 2 if t == ">>" else 1
            if depth <= 0:
                return j + 1
        elif t in (";", "{", "}"):
            return i + 1
        j += 1
    return i + 1


class InternalParser:
    """Single-file structural parser producing FileFacts."""

    def __init__(self, relpath, text):
        self.relpath = relpath
        stripped, self.includes = strip_preprocessor(text)
        self.toks, comments = tokenize(stripped)
        self.facts = FileFacts(relpath)
        self.facts.includes = []  # resolved later by the driver
        self.raw_includes = self.includes
        self.comment_lines = {}
        for line, ctext in comments:
            for m in MARKER_RE.finditer(ctext):
                # Block comments can span lines; attribute to start line.
                self.facts.markers[line] = (m.group(1), m.group(2).strip())
            if "relaxed:" in ctext:
                self.facts.relaxed_lines.add(line)
            self.comment_lines.setdefault(line, []).append(ctext)
        for lineno, raw in enumerate(text.split("\n"), 1):
            s = raw.strip()
            if s.startswith("//") or s.startswith("/*") or \
                    s.startswith("*"):
                self.facts.comment_lines.add(lineno)

    # -- scope walk ---------------------------------------------------------

    def parse(self):
        self.walk(0, len(self.toks), [])
        return self.facts

    def walk(self, i, end, scope):
        """Walk tokens at namespace/class scope. scope is a list of
        ('ns'|'class', name) pairs; class entries carry ClassFacts."""
        toks = self.toks
        seg_start = i
        while i < end:
            t = toks[i]
            if t.text == ";":
                self.maybe_member(seg_start, i, scope)
                i += 1
                seg_start = i
                continue
            if t.text == "template" and i + 1 < end and \
                    toks[i + 1].text == "<":
                i = skip_template_args(toks, i + 1)
                continue
            if t.text != "{":
                i += 1
                continue
            seg = toks[seg_start:i]
            kind, name, cls = self.classify(seg, scope)
            body_end = match_balanced(toks, i, "{", "}")
            if kind == "ns":
                self.walk(i + 1, body_end - 1, scope + [("ns", name, None)])
            elif kind == "class":
                self.facts.classes.append(cls)
                self.walk(i + 1, body_end - 1,
                          scope + [("class", name, cls)])
            elif kind == "fn":
                fn = self.make_function(name, seg, scope)
                self.extract_body(fn, i + 1, body_end - 1, scope)
                self.facts.functions.append(fn)
            elif scope and scope[-1][0] == "class" and \
                    (not seg or seg[0].text != "enum"):
                # Default member initializer (`std::atomic<int> n_{0};`):
                # the braces belong to the member declaration — skip the
                # initializer but keep accumulating the segment so the
                # trailing ';' records the member.
                i = body_end
                continue
            # else: opaque block (enum body, brace init, requires clause)
            i = body_end
            # A class/struct definition may be followed by declarators and
            # must end with ';' — either way the segment is consumed.
            seg_start = i
        self.maybe_member(seg_start, end, scope)

    def classify(self, seg, scope):
        """Classify the '{' that follows seg. Returns (kind, name, cls)."""
        texts = [t.text for t in seg]
        # Strip leading template<...> remnants and annotation macros.
        if "namespace" in texts:
            idx = texts.index("namespace")
            name = "<anon>"
            for t in seg[idx + 1:]:
                if t.kind == "id":
                    name = t.text
                break
            return "ns", name, None
        if texts and texts[0] == "enum":
            return "block", None, None
        # class/struct definition? The keyword must be at the start
        # (after attributes), not inside a parameter list.
        for j, t in enumerate(seg):
            if t.text in ("class", "struct") and not self.inside_parens(
                    seg, j):
                # Name: last plain identifier before ':' (base clause)
                # that is not inside parens and not an annotation macro.
                name = None
                k = j + 1
                limit = len(seg)
                for k2 in range(j + 1, limit):
                    if seg[k2].text == ":" and not self.inside_parens(
                            seg, k2):
                        limit = k2
                        break
                depth = 0
                for k2 in range(j + 1, limit):
                    tt = seg[k2]
                    if tt.text == "(":
                        depth += 1
                    elif tt.text == ")":
                        depth -= 1
                    elif depth == 0 and tt.kind == "id" and \
                            tt.text not in ANNOTATION_MACROS and \
                            tt.text not in ("final", "alignas"):
                        name = tt.text
                if name is None:
                    return "block", None, None
                qname = self.qualify(scope, name)
                line = seg[0].line if seg else 0
                cls = ClassFacts(qname, self.relpath, line)
                cls.markers = self.nearby_markers(line)
                return "class", name, cls
            if t.text == "(":
                break
        # Function definition? find 'ident (' ... ')' then optional
        # qualifiers / init list up to the '{'.
        return self.classify_function(seg, scope)

    def classify_function(self, seg, scope):
        # Find the first '(' whose preceding token is a non-keyword ident.
        n = len(seg)
        for j in range(n):
            if seg[j].text != "(":
                continue
            if j == 0:
                return "block", None, None
            prev = seg[j - 1]
            if prev.kind != "id" or prev.text in KEYWORDS or \
                    prev.text in ANNOTATION_MACROS:
                return "block", None, None
            # Destructor? '~Name' — treat as function named ~Name.
            name = prev.text
            if j >= 2 and seg[j - 2].text == "~":
                name = "~" + name
            close = j
            depth = 0
            while close < n:
                if seg[close].text == "(":
                    depth += 1
                elif seg[close].text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                close += 1
            if close >= n - 0 and depth != 0:
                return "block", None, None
            # Everything after ')' must be qualifiers, annotations, an
            # init list, or a trailing return — never '=' or operators.
            k = close + 1
            while k < n:
                tt = seg[k]
                if tt.text in ("const", "noexcept", "override", "final",
                               "&", "&&", "->", "try"):
                    k += 1
                    continue
                if tt.kind == "id" and (tt.text in ANNOTATION_MACROS or
                                        tt.text.isidentifier()):
                    k += 1
                    continue
                if tt.text == "(":
                    k = self.seg_balance(seg, k, "(", ")")
                    continue
                if tt.text == "::" or tt.text == "<":
                    k += 1
                    continue
                if tt.text == ":":
                    # ctor init list: runs to the end of seg
                    k = n
                    continue
                if tt.text == ",":
                    k += 1
                    continue
                return "block", None, None
            return "fn", name, None
        return "block", None, None

    @staticmethod
    def seg_balance(seg, k, open_t, close_t):
        depth = 0
        n = len(seg)
        while k < n:
            if seg[k].text == open_t:
                depth += 1
            elif seg[k].text == close_t:
                depth -= 1
                if depth == 0:
                    return k + 1
            k += 1
        return n

    @staticmethod
    def inside_parens(seg, idx):
        depth = 0
        for t in seg[:idx]:
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
        return depth > 0

    def qualify(self, scope, name):
        parts = [s[1] for s in scope if s[1] and s[1] != "<anon>"]
        return "::".join(parts + [name])

    def nearby_markers(self, line):
        return collect_nearby_markers(self.facts, line)

    def make_function(self, name, seg, scope):
        line = seg[0].line if seg else 0
        fn = FunctionFacts(self.qualify(scope, name), self.relpath, line)
        texts = [t.text for t in seg]
        fn.requires_annotation = "SAGA_REQUIRES" in texts or \
            "REQUIRES" in texts
        fn.entry_marker = "hotpath-entry" in self.nearby_markers(line)
        fn.param_types = self.extract_params(seg, name)
        # Record REQUIRES on the enclosing class.
        for s in reversed(scope):
            if s[0] == "class" and s[2] is not None:
                if fn.requires_annotation:
                    s[2].has_requires_method = True
                break
        return fn

    def extract_params(self, seg, fn_name):
        """Map parameter names to their type text: `ThreadPool& pool`
        gives {'pool': 'ThreadPool &'}. Best effort — default arguments
        and template parameters are ignored."""
        # Find the '(' that opens the parameter list: the one right
        # after the function-name token.
        open_idx = None
        for j in range(len(seg) - 1):
            if seg[j].kind == "id" and seg[j].text == fn_name.lstrip("~") \
                    and seg[j + 1].text == "(":
                open_idx = j + 1
        if open_idx is None:
            return {}
        close_idx = self.seg_balance(seg, open_idx, "(", ")") - 1
        params = {}
        group = []
        depth = 0
        for t in seg[open_idx + 1:close_idx] + [Tok("p", ",", 0)]:
            if t.text in ("(", "<", "[", "{"):
                depth += 1
            elif t.text in (")", ">", "]", "}"):
                depth -= 1
            if t.text == "," and depth == 0:
                ids = [x for x in group if x.kind == "id"
                       and x.text not in ("const", "constexpr", "struct",
                                          "class", "typename")]
                if len(ids) >= 2:
                    pname = ids[-1].text
                    ptype = " ".join(x.text for x in group
                                     if x is not ids[-1])
                    # Drop a default argument if one slipped through.
                    ptype = ptype.split("=")[0].strip()
                    params[pname] = ptype
                group = []
            else:
                group.append(t)
        return params

    # -- member declarations -----------------------------------------------

    def maybe_member(self, start, end, scope):
        if not scope or scope[-1][0] != "class" or scope[-1][2] is None:
            return
        seg = self.toks[start:end]
        if not seg:
            return
        texts = [t.text for t in seg]
        if any(t in ("using", "typedef", "friend", "static_assert",
                     "public", "private", "protected", "enum", "return")
               for t in texts):
            self.strip_access_specifiers(seg, scope)
            return
        paren_at_top = False
        angle = 0
        for t in seg:
            if t.text == "<":
                angle += 1
            elif t.text == ">":
                angle -= 1
            elif t.text == ">>":
                angle -= 2
            elif t.text == "(" and angle <= 0:
                paren_at_top = True
                break
        if paren_at_top and "SAGA_GUARDED_BY" not in texts and \
                "GUARDED_BY" not in texts:
            # Function declaration (or deleted/defaulted definition).
            # Parens inside template args (`std::function<void()> f_;`)
            # don't count — that's a data member.
            if "=" not in texts or "delete" in texts or \
                    "default" in texts:
                return
        cls = scope[-1][2]
        # Find the member name: identifier before '=', annotation macro,
        # or end-of-segment.
        stop = len(seg)
        for j, t in enumerate(seg):
            if t.text in ("=", "{") or t.text in ("SAGA_GUARDED_BY",
                                                  "GUARDED_BY"):
                stop = j
                break
        name_tok = None
        for t in reversed(seg[:stop]):
            if t.kind == "id" and t.text not in ANNOTATION_MACROS:
                name_tok = t
                break
        if name_tok is None:
            return
        if not name_tok.text.isidentifier() or name_tok.text in KEYWORDS:
            return
        type_text = " ".join(t.text for t in seg[:stop]
                             if t is not name_tok)
        if not type_text:
            return
        guarded_by = None
        for j, t in enumerate(seg):
            if t.text in ("SAGA_GUARDED_BY", "GUARDED_BY") and \
                    j + 1 < len(seg) and seg[j + 1].text == "(":
                k = self.seg_balance(seg, j + 1, "(", ")")
                guarded_by = " ".join(x.text for x in seg[j + 2:k - 1])
        is_static = "static" in texts or "constexpr" in texts or \
            "inline" in texts
        is_const = texts[0] == "const" and "*" not in texts
        line = name_tok.line
        markers = self.nearby_markers(line)
        # Also accept a marker on the type's first line (multi-line decl).
        markers.update({k: v for k, v in
                        self.nearby_markers(seg[0].line).items()
                        if k not in markers})
        member = Member(cls, name_tok.text, type_text, line, guarded_by,
                        is_static, is_const, markers)
        cls.members.append(member)
        if "ChunkOwnership" in texts:
            cls.has_chunk_ownership = True

    def strip_access_specifiers(self, seg, scope):
        # `public:` / `private:` segments can *contain* a member decl when
        # the parser's segment boundaries land there; nothing to do — the
        # next ';' pass will see the member alone.
        return

    # -- function bodies ----------------------------------------------------

    MEMORY_ORDER_RE = re.compile(r"memory_order_(\w+)")

    def extract_body(self, fn, start, end, scope):
        toks = self.toks
        cls = None
        for s in reversed(scope):
            if s[0] == "class":
                cls = s[2]
                break
        local_containers = set()
        i = start
        while i < end:
            t = toks[i]
            if t.text == "throw":
                fn.impure.append(ImpureOp("throw", "throw", t.line))
                i += 1
                continue
            if t.text == "new":
                fn.impure.append(ImpureOp("alloc", "new", t.line))
                i += 1
                continue
            if t.kind == "id":
                # Local container declarations: std::vector<...> name
                if t.text == "std" and i + 2 < end and \
                        toks[i + 1].text == "::" and \
                        toks[i + 2].text in ("vector", "string", "deque",
                                             "map", "set", "unordered_map",
                                             "unordered_set"):
                    j = i + 3
                    if j < end and toks[j].text == "<":
                        j = skip_template_args(toks, j)
                    while j < end and toks[j].text in ("&", "*", "const"):
                        j += 1
                    if j < end and toks[j].kind == "id":
                        local_containers.add(toks[j].text)
                # PhaseScope uses
                if t.text == "PhaseScope" and not (
                        cls is not None and cls.bare == "PhaseScope"):
                    j = i + 1
                    named = True
                    if j < end and toks[j].text == "(":
                        named = False  # temporary
                    fn.phase_scopes.append(PhaseScopeUse(named, t.line))
                # SAGA_PHASE / SAGA_COUNT macro arguments
                if t.text in ("SAGA_PHASE", "SAGA_COUNT",
                              "SAGA_COUNT_MAX") and \
                        i + 1 < end and toks[i + 1].text == "(":
                    close = match_balanced(toks, i + 1, "(", ")")
                    arg = self.first_arg_text(toks, i + 2, close - 1)
                    fn.macro_args.append(MacroArg(t.text, arg, t.line))
                # Guard/lock declarations (`SpinGuard guard(lock_);`,
                # `std::lock_guard<std::mutex> hold(m_);`) never reach
                # the ident-then-'(' call scan — catch the type name.
                if t.text in LOCK_TYPES and \
                        (i == start or toks[i - 1].text not in (".",
                                                                "->")):
                    fn.impure.append(ImpureOp("lock", t.text, t.line))
                # Calls
                if i + 1 < end and toks[i + 1].text == "(" and \
                        t.text not in KEYWORDS:
                    self.record_call(fn, toks, i, end, cls,
                                     local_containers)
                elif i + 1 < end and toks[i + 1].text == "<" and \
                        t.text not in KEYWORDS:
                    # `make_unique<T>(...)` — explicit template args put
                    # '<', not '(', after the callee name.
                    j = skip_template_args(toks, i + 1)
                    if j < end and toks[j].text == "(" and j > i + 1:
                        self.record_call(fn, toks, i, end, cls,
                                         local_containers, open_idx=j)
            i += 1

    def first_arg_text(self, toks, start, end):
        out = []
        depth = 0
        for t in toks[start:end]:
            if t.text in ("(", "<", "[", "{"):
                depth += 1
            elif t.text in (")", ">", "]", "}"):
                depth -= 1
            elif t.text == "," and depth == 0:
                break
            out.append(t.text)
        return "".join(out)

    def arg_orders(self, toks, start, end):
        orders = []
        for t in toks[start:end]:
            m = self.MEMORY_ORDER_RE.fullmatch(t.text)
            if m:
                orders.append(m.group(1))
        return orders

    def receiver_of(self, toks, i):
        """toks[i] is the callee ident preceded by '.'/'->'; return the
        last identifier of the receiver chain, or None."""
        j = i - 1
        if j < 0 or toks[j].text not in (".", "->"):
            return None
        j -= 1
        # Skip a subscript: values [ v ] .load — receiver ident before '['
        if j >= 0 and toks[j].text == "]":
            depth = 0
            while j >= 0:
                if toks[j].text == "]":
                    depth += 1
                elif toks[j].text == "[":
                    depth -= 1
                    if depth == 0:
                        j -= 1
                        break
                j -= 1
        if j >= 0 and toks[j].text == ")":
            return None  # call-returning receiver; give up
        if j >= 0 and toks[j].kind == "id":
            return toks[j].text
        return None

    def record_call(self, fn, toks, i, end, cls, local_containers,
                    open_idx=None):
        name = toks[i].text
        line = toks[i].line
        if open_idx is None:
            open_idx = i + 1
        close = match_balanced(toks, open_idx, "(", ")")
        receiver = self.receiver_of(toks, i)
        is_member_call = receiver is not None or (
            i >= 1 and toks[i - 1].text in (".", "->"))
        # Qualified callee text (A::B::f) for resolution.
        qname = name
        j = i - 1
        while j >= 1 and toks[j].text == "::" and toks[j - 1].kind == "id":
            qname = toks[j - 1].text + "::" + qname
            j -= 2

        # Atomic accesses -------------------------------------------------
        orders = self.arg_orders(toks, open_idx, close)
        if is_member_call and (name in ATOMIC_READ_OPS or
                               name in ATOMIC_WRITE_OPS or
                               name in ATOMIC_RMW_OPS):
            role = ("read" if name in ATOMIC_READ_OPS else
                    "write" if name in ATOMIC_WRITE_OPS else "rmw")
            order = orders[0] if orders else (
                "seq_cst" if self.args_nonempty_order_slot(
                    toks, i, close, name) else "seq_cst")
            if not orders and self.has_order_expr(toks, open_idx, close):
                order = "dynamic"
            fn.atomics.append(AtomicAccess(receiver, role, order, line,
                                           "raw"))
        elif name in ATOMIC_HELPER_READ or name in ATOMIC_HELPER_WRITE \
                or name in ATOMIC_HELPER_RMW:
            role = ("read" if name in ATOMIC_HELPER_READ else
                    "write" if name in ATOMIC_HELPER_WRITE else "rmw")
            member = self.helper_member_arg(toks, open_idx + 1,
                                            close - 1)
            order = orders[0] if orders else "relaxed"
            fn.atomics.append(AtomicAccess(member, role, order, line,
                                           "helper"))

        # telemetry::count direct calls -----------------------------------
        if name == "count" and qname.endswith("telemetry::count"):
            arg = self.first_arg_text(toks, open_idx + 1, close - 1)
            fn.macro_args.append(MacroArg("count", arg, line))

        # Impure operations ----------------------------------------------
        if name in ALLOC_CALLS:
            fn.impure.append(ImpureOp("alloc", name, line))
        elif name in IO_CALLS:
            fn.impure.append(ImpureOp("io", name, line))
        elif is_member_call and name in GROWTH_ALWAYS:
            fn.impure.append(ImpureOp("growth", "." + name, line))
        elif is_member_call and name in GROWTH_TYPED:
            if self.is_container_receiver(receiver, cls,
                                          local_containers):
                fn.impure.append(ImpureOp("growth", "." + name, line))
            else:
                fn.calls.append(CallSite(name, receiver, line))
        elif is_member_call and name in LOCK_CALLS:
            fn.impure.append(ImpureOp("lock", "." + name + "()", line))
        elif name in LOCK_TYPES:
            pass  # already recorded by the type-name scan
        elif name in IO_STREAMS:
            fn.impure.append(ImpureOp("io", name, line))
        else:
            fn.calls.append(CallSite(qname, receiver, line))

    @staticmethod
    def args_nonempty_order_slot(toks, i, close, name):
        return True

    def has_order_expr(self, toks, start, close):
        # An identifier named 'order'/'success'/'failure' as an argument
        # means the order is a runtime parameter.
        for t in toks[start:close]:
            if t.kind == "id" and t.text in ("order", "success",
                                             "failure", "mo"):
                return True
        return False

    def helper_member_arg(self, toks, start, end):
        """atomicLoad(values[v]) -> None; atomicLoad(slot_) -> 'slot_';
        atomicStore(obj.field, x) -> 'field'."""
        arg = []
        depth = 0
        for t in toks[start:end]:
            if t.text in ("(", "[", "{"):
                depth += 1
            elif t.text in (")", "]", "}"):
                depth -= 1
            elif t.text == "," and depth == 0:
                break
            arg.append(t)
        if not arg:
            return None
        if any(t.text == "[" for t in arg):
            return None  # array slot, not a declaration
        last = arg[-1]
        if last.kind == "id" and last.text.isidentifier():
            return last.text
        return None

    def is_container_receiver(self, receiver, cls, local_containers):
        if receiver is None:
            return False
        if receiver in local_containers:
            return True
        if cls is not None:
            for m in cls.members:
                if m.name == receiver and CONTAINER_TYPE_RE.search(
                        m.type_text):
                    return True
        # Search all known classes (receiver may be a member of another
        # class in the same file, e.g. stage.fresh).
        for c in self.facts.classes:
            for m in c.members:
                if m.name == receiver and CONTAINER_TYPE_RE.search(
                        m.type_text):
                    return True
        return False


# ---------------------------------------------------------------------------
# libclang engine (optional)
# ---------------------------------------------------------------------------

def try_import_libclang():
    try:
        import clang.cindex as cindex  # noqa: F401
        # Probe that the shared library actually loads.
        cindex.Index.create()
        return cindex
    except Exception:
        return None


class LibclangEngine:
    """Parses TUs with clang.cindex, filling the same FileFacts IR.

    Only repo files are kept. Raises on any parse failure so the driver
    can fall back to the internal engine."""

    name = "libclang"

    def __init__(self, cindex, root):
        self.cindex = cindex
        self.root = root
        self.index = cindex.Index.create()

    def parse_tu(self, entry):
        cindex = self.cindex
        args = [a for a in entry["args"]
                if not a.endswith(".cc") and not a.endswith(".cpp") and
                a not in ("-c", "-o")]
        tu = self.index.parse(entry["file"], args=args)
        sev = cindex.Diagnostic.Error
        errors = [d for d in tu.diagnostics if d.severity >= sev]
        if errors:
            raise RuntimeError("parse errors in %s: %s" %
                               (entry["file"], errors[0].spelling))
        facts = {}

        def relof(node):
            f = node.location.file
            if f is None:
                return None
            path = os.path.realpath(f.name)
            if not path.startswith(self.root + os.sep):
                return None
            return os.path.relpath(path, self.root).replace(os.sep, "/")

        def facts_for(rel):
            if rel not in facts:
                ff = FileFacts(rel)
                with open(os.path.join(self.root, rel),
                          encoding="utf-8", errors="replace") as f:
                    text = f.read()
                for lineno, line in enumerate(text.splitlines(), 1):
                    m = MARKER_RE.search(line)
                    if m:
                        ff.markers[lineno] = (m.group(1),
                                              m.group(2).strip())
                    if "//" in line and "relaxed:" in \
                            line[line.index("//"):]:
                        ff.relaxed_lines.add(lineno)
                    s = line.strip()
                    if s.startswith("//") or s.startswith("/*") or \
                            s.startswith("*"):
                        ff.comment_lines.add(lineno)
                facts[rel] = ff
            return facts[rel]

        ck = cindex.CursorKind

        def qname_of(node):
            parts = []
            p = node
            while p is not None and p.kind != ck.TRANSLATION_UNIT:
                if p.spelling:
                    parts.append(p.spelling)
                p = p.semantic_parent
            return "::".join(reversed(parts))

        def walk(node, fn, cls):
            rel = relof(node)
            if node.kind in (ck.NAMESPACE, ck.TRANSLATION_UNIT,
                             ck.UNEXPOSED_DECL):
                for c in node.get_children():
                    walk(c, None, None)
                return
            if node.kind in (ck.CLASS_DECL, ck.STRUCT_DECL,
                             ck.CLASS_TEMPLATE) and node.is_definition():
                if rel is None:
                    return
                ff = facts_for(rel)
                cf = ClassFacts(qname_of(node), rel,
                                node.location.line)
                cf.markers = dict([ff.markers[node.location.line]]
                                  if node.location.line in ff.markers
                                  else [])
                ff.classes.append(cf)
                for c in node.get_children():
                    if c.kind == ck.FIELD_DECL:
                        type_text = c.type.spelling
                        guarded = None
                        for ch in c.get_children():
                            if ch.kind == ck.ANNOTATE_ATTR:
                                guarded = ch.spelling
                        markers = collect_nearby_markers(
                            ff, c.location.line)
                        cf.members.append(Member(
                            cf, c.spelling, type_text, c.location.line,
                            guarded, False,
                            c.type.is_const_qualified(), markers))
                        if "ChunkOwnership" in type_text:
                            cf.has_chunk_ownership = True
                    else:
                        walk(c, None, cf)
                return
            if node.kind in (ck.CXX_METHOD, ck.FUNCTION_DECL,
                             ck.FUNCTION_TEMPLATE, ck.CONSTRUCTOR,
                             ck.DESTRUCTOR) and node.is_definition():
                if rel is None:
                    return
                ff = facts_for(rel)
                f = FunctionFacts(qname_of(node), rel, node.location.line)
                if "hotpath-entry" in collect_nearby_markers(
                        ff, node.location.line):
                    f.entry_marker = True
                ff.functions.append(f)
                for c in node.get_children():
                    walk_body(c, f, cls)
                return
            for c in node.get_children():
                walk(c, fn, cls)

        def walk_body(node, fn, cls):
            if node.kind == ck.CXX_NEW_EXPR:
                fn.impure.append(ImpureOp("alloc", "new",
                                          node.location.line))
            elif node.kind == ck.CXX_THROW_EXPR:
                fn.impure.append(ImpureOp("throw", "throw",
                                          node.location.line))
            elif node.kind == ck.CALL_EXPR:
                name = node.spelling or ""
                line = node.location.line
                tokens = [t.spelling for t in node.get_tokens()]
                orders = [m.group(1) for t in tokens
                          for m in [re.match(r"memory_order_(\w+)", t)]
                          if m]
                receiver = None
                if name in ATOMIC_READ_OPS | ATOMIC_WRITE_OPS | \
                        ATOMIC_RMW_OPS:
                    role = ("read" if name in ATOMIC_READ_OPS else
                            "write" if name in ATOMIC_WRITE_OPS
                            else "rmw")
                    # Receiver: the member ref the method is called on.
                    for c in node.get_children():
                        for cc in c.walk_preorder():
                            if cc.kind == ck.MEMBER_REF_EXPR and \
                                    cc.spelling != name:
                                receiver = cc.spelling
                        break
                    order = orders[0] if orders else "seq_cst"
                    fn.atomics.append(AtomicAccess(receiver, role, order,
                                                   line, "raw"))
                elif name in ATOMIC_HELPER_READ | ATOMIC_HELPER_WRITE | \
                        ATOMIC_HELPER_RMW:
                    role = ("read" if name in ATOMIC_HELPER_READ else
                            "write" if name in ATOMIC_HELPER_WRITE
                            else "rmw")
                    member = None
                    args = list(node.get_arguments())
                    if args:
                        a0 = args[0]
                        if a0.kind == ck.MEMBER_REF_EXPR or \
                                a0.kind == ck.DECL_REF_EXPR:
                            member = a0.spelling
                        else:
                            for cc in a0.walk_preorder():
                                if cc.kind == ck.ARRAY_SUBSCRIPT_EXPR:
                                    member = None
                                    break
                                if cc.kind == ck.MEMBER_REF_EXPR:
                                    member = cc.spelling
                    order = orders[0] if orders else "relaxed"
                    fn.atomics.append(AtomicAccess(member, role, order,
                                                   line, "helper"))
                elif name in ALLOC_CALLS:
                    fn.impure.append(ImpureOp("alloc", name, line))
                elif name in IO_CALLS:
                    fn.impure.append(ImpureOp("io", name, line))
                elif name in GROWTH_ALWAYS:
                    fn.impure.append(ImpureOp("growth", "." + name, line))
                elif name in GROWTH_TYPED:
                    ref = node.referenced
                    stype = ""
                    if ref is not None and ref.semantic_parent is not None:
                        stype = ref.semantic_parent.spelling or ""
                    if stype in ("vector", "basic_string", "deque", "map",
                                 "set", "unordered_map", "unordered_set"):
                        fn.impure.append(ImpureOp("growth", "." + name,
                                                  line))
                    else:
                        fn.calls.append(CallSite(name, None, line))
                elif name in LOCK_CALLS:
                    fn.impure.append(ImpureOp("lock", "." + name + "()",
                                              line))
                elif name in LOCK_TYPES:
                    fn.impure.append(ImpureOp("lock", name, line))
                else:
                    if name:
                        fn.calls.append(CallSite(name, None, line))
            elif node.kind == ck.DECL_STMT:
                for c in node.get_children():
                    if c.kind == ck.VAR_DECL and \
                            "PhaseScope" in c.type.spelling:
                        fn.phase_scopes.append(
                            PhaseScopeUse(True, c.location.line))
            for c in node.get_children():
                walk_body(c, fn, cls)

        walk(tu.cursor, None, None)
        # libclang sees post-preprocessed code: SAGA_PHASE expands to a
        # named PhaseScope, so the temporaries check and the macro-arg
        # check are re-done textually per file (same as internal engine).
        for rel, ff in facts.items():
            self._textual_macro_pass(ff)
        return facts

    def _textual_macro_pass(self, ff):
        path = os.path.join(self.root, ff.path)
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        parser = InternalParser(ff.path, text)
        parsed = parser.parse()
        # Merge only macro_args / phase_scopes from the textual pass.
        by_name = {fn.qname: fn for fn in ff.functions}
        for pf in parsed.functions:
            target = by_name.get(pf.qname)
            if target is None and pf.macro_args:
                # Attach to a synthetic function so the telemetry pack
                # still sees the use.
                target = FunctionFacts(pf.qname, ff.path, pf.line)
                ff.functions.append(target)
                by_name[pf.qname] = target
            if target is not None:
                target.macro_args = pf.macro_args
                target.phase_scopes = pf.phase_scopes


# ---------------------------------------------------------------------------
# Program model + rule packs
# ---------------------------------------------------------------------------

class Finding:
    def __init__(self, pack, rule, file, line, message, path=None,
                 hint=None):
        self.pack = pack
        self.rule = rule
        self.file = file
        self.line = line
        self.message = message
        self.path = path or []
        self.hint = hint

    def to_json(self):
        return {"pack": self.pack, "rule": self.rule, "file": self.file,
                "line": self.line, "message": self.message,
                "path": self.path, "hint": self.hint}

    def render(self, fix_hints):
        out = "%s:%d: [%s/%s] %s" % (self.file, self.line, self.pack,
                                     self.rule, self.message)
        if self.path:
            out += "\n    reachable via: " + " -> ".join(self.path)
        if fix_hints and self.hint:
            out += "\n    hint: " + self.hint
        return out


class Program:
    def __init__(self, files):
        self.files = files              # path -> FileFacts
        self.functions = []
        self.by_qname = {}
        self.by_suffix2 = {}
        self.by_bare = {}
        self.classes = []
        self.class_names = set()
        self.members_by_name = {}
        for ff in files.values():
            for fn in ff.functions:
                self.functions.append(fn)
                self.by_qname.setdefault(fn.qname, []).append(fn)
                self.by_suffix2.setdefault(fn.suffix2, []).append(fn)
                self.by_bare.setdefault(fn.bare, []).append(fn)
            for cls in ff.classes:
                self.classes.append(cls)
                self.class_names.add(cls.bare)
                for m in cls.members:
                    self.members_by_name.setdefault(m.name, []).append(m)

    def is_method(self, fn):
        parts = fn.qname.split("::")
        return len(parts) >= 2 and parts[-2] in self.class_names

    def receiver_classes(self, caller, receiver):
        """Class names the receiver could have, judging from the
        caller's parameters, the caller's class members, then any class
        member with that name anywhere. Empty set = unknown."""
        sources = []
        ptype = caller.param_types.get(receiver)
        if ptype is not None:
            sources.append(ptype)
        else:
            for m in self.members_by_name.get(receiver, []):
                sources.append(m.type_text)
        out = set()
        for src in sources:
            for name in self.class_names:
                if re.search(r"\b%s\b" % re.escape(name), src):
                    out.add(name)
        return out

    def resolve(self, call, caller=None):
        """Resolve a call site to candidate FunctionFacts.

        A member call (explicit receiver) only resolves to class methods,
        and when the receiver's type is known (a caller parameter or a
        recorded data member) only to methods of that class — letting
        `pool.run(...)` fall through to a same-named free function or an
        unrelated class would fabricate edges across the driver layer."""
        name = call.name
        if name in self.by_qname:
            cands = self.by_qname[name]
        elif "::" in name:
            suffix = "::".join(name.split("::")[-2:])
            if suffix in self.by_suffix2:
                cands = self.by_suffix2[suffix]
            else:
                cands = self.by_bare.get(name.split("::")[-1], [])
        else:
            cands = self.by_bare.get(name, [])
        if call.receiver is not None:
            cands = [fn for fn in cands if self.is_method(fn)]
            if caller is not None:
                classes = self.receiver_classes(caller, call.receiver)
                if classes:
                    cands = [fn for fn in cands
                             if fn.qname.split("::")[-2] in classes]
        return cands

    def relaxed_justified(self, file, line):
        """`relaxed:` comment on the access line or within the three
        lines above (the saga_lint justification window)."""
        ff = self.files.get(file)
        if ff is None:
            return False
        return any(probe in ff.relaxed_lines
                   for probe in range(line - 3, line + 1))

    def marker_at(self, file, line, wanted):
        """Marker `wanted` on this line, the line above, or atop the
        comment block ending there; returns the reason string or None
        (an empty string means marker present but unjustified)."""
        ff = self.files.get(file)
        if ff is None:
            return None
        return collect_nearby_markers(ff, line).get(wanted)


def check_hotpath(prog):
    findings = []
    entries = []
    for fn in prog.functions:
        if fn.entry_marker or any(fn.qname.endswith(s)
                                  for s in HOTPATH_ENTRY_SUFFIXES):
            entries.append(fn)
    # BFS over the call graph, remembering the shortest path to each fn.
    seen = {}
    queue = [(fn, [fn.qname]) for fn in entries]
    for fn, path in queue:
        seen.setdefault(id(fn), (fn, path))
    head = 0
    while head < len(queue):
        fn, path = queue[head]
        head += 1
        if len(path) > 12:
            continue
        for call in fn.calls:
            for callee in prog.resolve(call, caller=fn):
                if any(callee.qname.endswith(c) for c in HOTPATH_CUTS):
                    continue
                if id(callee) in seen:
                    continue
                cpath = path + [callee.qname]
                seen[id(callee)] = (callee, cpath)
                queue.append((callee, cpath))
    rule_names = {"alloc": "heap-allocation", "growth": "container-growth",
                  "lock": "lock-acquisition", "io": "io", "throw": "throw"}
    hints = {
        "alloc": "hoist the allocation out of the kernel or reuse a "
                 "per-worker scratch buffer (see batch_scratch.h)",
        "growth": "pre-size the container before the parallel region or "
                  "use PaddedAccumulator-backed reusable buffers",
        "lock": "restructure to the chunk-owned or phase-separated "
                "pattern (DESIGN.md §7); locks do not belong in kernels",
        "io": "move I/O to the driver; kernels must not touch streams",
        "throw": "return an error value; exceptions unwind across the "
                 "pool barrier",
    }
    for fn, path in seen.values():
        for op in fn.impure:
            reason = prog.marker_at(fn.file, op.line, "hotpath-allow")
            if reason is not None and reason.strip():
                continue
            if reason is not None:
                findings.append(Finding(
                    "hotpath", "unjustified-escape", fn.file, op.line,
                    "hotpath-allow escape in %s carries no "
                    "justification — the reason is the contract" %
                    fn.qname,
                    hint="write why this %s is amortized or off the "
                         "hot path after the colon" % op.kind))
                continue
            findings.append(Finding(
                "hotpath", rule_names[op.kind], fn.file, op.line,
                "%s (`%s`) in %s, reachable from kernel entry %s — "
                "add `// hotpath-allow: <reason>` only if this is "
                "amortized or provably off the hot path" %
                (rule_names[op.kind].replace("-", " "), op.detail,
                 fn.qname, path[0]),
                path=path if len(path) > 1 else None,
                hint=hints[op.kind]))
    return findings, len(entries), len(seen)


def check_atomics(prog):
    findings = []
    # member name -> {"reads": [(order, file, line)], "writes": ...}
    acc = {}
    for fn in prog.functions:
        for a in fn.atomics:
            if a.member is None:
                continue
            # Resolve the member name to a declaration; unresolved
            # receivers (locals, atomic_ref temporaries) are skipped.
            decls = prog.members_by_name.get(a.member)
            if not decls:
                continue
            key = a.member
            rec = acc.setdefault(key, {"reads": [], "writes": [],
                                       "decl": decls[0]})
            if a.role in ("read", "rmw"):
                rec["reads"].append((a.order, fn.file, a.line))
            if a.role in ("write", "rmw"):
                rec["writes"].append((a.order, fn.file, a.line))
    for member, rec in sorted(acc.items()):
        decl = rec["decl"]
        read_orders = {o for o, _, _ in rec["reads"]}
        write_orders = {o for o, _, _ in rec["writes"]}
        all_orders = read_orders | write_orders
        if "dynamic" in all_orders:
            continue  # order is a runtime parameter (the helper shims)
        esc = decl.markers.get("atomic-pair-allow")
        if esc is None:
            esc = prog.marker_at(decl.cls.file, decl.line,
                                 "atomic-pair-allow")
        if esc is not None:
            continue
        rel_writes = [w for w in rec["writes"]
                      if w[0] in RELEASE_ORDERS]
        acq_reads = [r for r in rec["reads"] if r[0] in ACQUIRE_ORDERS]
        if rel_writes and not acq_reads:
            o, f, l = rel_writes[0]
            findings.append(Finding(
                "atomics", "orphaned-release", f, l,
                "release-store of %s has no acquire-side read anywhere "
                "in the program — the fence publishes to nobody" %
                decl.qname,
                hint="pair it with an atomicLoad(..., acquire) / "
                     ".load(acquire) at the consumer, or relax it with "
                     "a `relaxed:` justification if the pool barrier "
                     "publishes instead"))
        if acq_reads and not rel_writes:
            o, f, l = acq_reads[0]
            findings.append(Finding(
                "atomics", "orphaned-acquire", f, l,
                "acquire-read of %s has no release-side write anywhere "
                "in the program — there is nothing to synchronize with" %
                decl.qname,
                hint="add the matching release store or downgrade the "
                     "read with a `relaxed:` justification"))
        if "seq_cst" in all_orders and \
                any(o != "seq_cst" for o in all_orders):
            # A weaker access that carries the repo's `relaxed:`
            # justification comment (same line or up to three above —
            # saga_lint's convention) is a documented, deliberate
            # downgrade; only silent ones are findings.
            weaker = [(o, f, l)
                      for o, f, l in rec["reads"] + rec["writes"]
                      if o != "seq_cst" and
                      not prog.relaxed_justified(f, l)]
            if weaker:
                o, f, l = weaker[0]
                findings.append(Finding(
                    "atomics", "seq-cst-downgrade", f, l,
                    "%s is part of a seq_cst protocol but is accessed "
                    "with memory_order_%s here — a silent downgrade "
                    "breaks the Dekker-style handshake" %
                    (decl.qname, o),
                    hint="use memory_order_seq_cst on every access of "
                         "this member, justify the downgrade with a "
                         "`// relaxed: ...` comment at the access, or "
                         "add `// atomic-pair-allow:` on the "
                         "declaration explaining the mixed discipline"))
    return findings


def check_guarded(prog):
    findings = []
    audited = []
    for cls in prog.classes:
        bare = cls.bare
        in_list = bare in AUDIT_CLASSES or "audit-class" in cls.markers
        if in_list:
            audited.append(cls)
            # Nested structs: prefix match on the qualified name.
            for other in prog.classes:
                if other is not cls and \
                        other.qname.startswith(cls.qname + "::"):
                    audited.append(other)
    seen_ids = set()
    for cls in audited:
        if id(cls) in seen_ids:
            continue
        seen_ids.add(id(cls))
        owner = cls
        if "::" in cls.qname:
            for c2 in prog.classes:
                if c2.bare in AUDIT_CLASSES and \
                        cls.qname.startswith(c2.qname + "::"):
                    owner = c2
        for m in cls.members:
            if m.is_static or m.is_const:
                continue
            if m.guarded_by is not None:
                continue
            if SYNC_TYPE_RE.search(m.type_text):
                continue
            if "immutable-after-build" in m.markers or \
                    "quiescent-mutated" in m.markers or \
                    "guarded-member-allow" in m.markers:
                continue
            if "chunk-owned" in m.markers:
                if not (owner.has_chunk_ownership or
                        cls.has_chunk_ownership):
                    findings.append(Finding(
                        "guarded", "bogus-chunk-owned", m.cls.file,
                        m.line,
                        "%s is marked chunk-owned but %s embeds no "
                        "ChunkOwnership capability" %
                        (m.qname, owner.qname),
                        hint="add a ChunkOwnership member and "
                             "SAGA_REQUIRES(ownership_) accessors, or "
                             "pick the correct category"))
                elif not (owner.has_requires_method or
                          cls.has_requires_method):
                    findings.append(Finding(
                        "guarded", "bogus-chunk-owned", m.cls.file,
                        m.line,
                        "%s is marked chunk-owned but %s has no "
                        "SAGA_REQUIRES-annotated accessor" %
                        (m.qname, owner.qname),
                        hint="annotate the mutating accessors "
                             "SAGA_REQUIRES(ownership_)"))
                continue
            findings.append(Finding(
                "guarded", "unannotated-member", m.cls.file, m.line,
                "%s (%s) has no concurrency category: not GUARDED_BY, "
                "not atomic/sync, not chunk-owned, not marked "
                "immutable-after-build / quiescent-mutated" %
                (m.qname, m.type_text.strip()),
                hint="pick the category that is actually true and "
                     "annotate the declaration; "
                     "`// guarded-member-allow: <reason>` is the "
                     "documented escape"))
    return findings


def check_telemetry(prog):
    findings = []
    for fn in prog.functions:
        for ps in fn.phase_scopes:
            if not ps.named:
                findings.append(Finding(
                    "telemetry", "phase-scope-temporary", fn.file,
                    ps.line,
                    "PhaseScope temporary in %s dies at the end of the "
                    "full-expression — it times nothing" % fn.qname,
                    hint="name it (`telemetry::PhaseScope scope(...)`) "
                         "or use SAGA_PHASE(...), which declares a "
                         "named local"))
        for ma in fn.macro_args:
            arg = ma.arg.strip()
            if ma.macro == "SAGA_PHASE":
                ok = QUALIFIED_PHASE_RE.match(arg)
            elif ma.macro in ("SAGA_COUNT", "SAGA_COUNT_MAX"):
                ok = QUALIFIED_COUNTER_RE.match(arg)
            else:  # direct telemetry::count call
                ok = QUALIFIED_COUNTER_RE.match(arg) or \
                    arg.startswith("Counter::") or arg == "c"
            if not ok:
                findings.append(Finding(
                    "telemetry", "unqualified-counter-id", fn.file,
                    ma.line,
                    "%s argument `%s` in %s is not a qualified "
                    "telemetry enum id" % (ma.macro, arg, fn.qname),
                    hint="spell it telemetry::Phase::X / "
                         "telemetry::Counter::X so it greps to "
                         "src/telemetry/metrics.h"))
    return findings


# ---------------------------------------------------------------------------
# Driver: compile_commands, include closure, caching
# ---------------------------------------------------------------------------

def load_compile_commands(path):
    if os.path.isdir(path):
        path = os.path.join(path, "compile_commands.json")
    with open(path, encoding="utf-8") as f:
        db = json.load(f)
    entries = []
    for e in db:
        if "arguments" in e:
            args = e["arguments"]
        else:
            args = e.get("command", "").split()
        file = e["file"]
        if not os.path.isabs(file):
            file = os.path.join(e.get("directory", "."), file)
        entries.append({"file": os.path.realpath(file), "args": args,
                        "dir": e.get("directory", ".")})
    return entries


def include_dirs_of(entry):
    dirs = []
    args = entry["args"]
    for i, a in enumerate(args):
        if a == "-I" and i + 1 < len(args):
            dirs.append(args[i + 1])
        elif a.startswith("-I"):
            dirs.append(a[2:])
        elif a.startswith("-isystem") and len(a) > 8:
            dirs.append(a[8:])
    out = []
    for d in dirs:
        if not os.path.isabs(d):
            d = os.path.join(entry["dir"], d)
        out.append(os.path.realpath(d))
    return out


def sha256_file(path):
    h = hashlib.sha256()
    with open(path, "rb") as f:
        h.update(f.read())
    return h.hexdigest()


class Analyzer:
    def __init__(self, root, engine_name, cache_dir=None, verbose=False):
        self.root = os.path.realpath(root)
        self.engine_name = engine_name
        self.cache_dir = cache_dir
        self.verbose = verbose
        self.file_hits = 0
        self.file_misses = 0
        self.tu_hits = 0
        self.tu_misses = 0
        self.file_facts = {}       # relpath -> FileFacts
        self.file_hashes = {}      # relpath -> sha256
        self.libclang = None
        if engine_name == "libclang":
            cindex = try_import_libclang()
            if cindex is None:
                raise RuntimeError("libclang unavailable")
            self.libclang = LibclangEngine(cindex, self.root)

    # -- caching ------------------------------------------------------------

    def cache_path(self, key):
        return os.path.join(self.cache_dir, key + ".json")

    def file_cache_key(self, relpath, digest):
        h = hashlib.sha256()
        h.update(("file:%s:%s:v%d:%s" % (relpath, digest,
                                         ANALYZER_VERSION,
                                         self.engine_name)).encode())
        return h.hexdigest()[:32]

    def tu_cache_key(self, tu_file, closure_digests):
        h = hashlib.sha256()
        h.update(("tu:%s:v%d:%s:" % (tu_file, ANALYZER_VERSION,
                                     self.engine_name)).encode())
        for rel, digest in sorted(closure_digests.items()):
            h.update(("%s=%s;" % (rel, digest)).encode())
        return h.hexdigest()[:32]

    def cache_load(self, key):
        if not self.cache_dir:
            return None
        path = self.cache_path(key)
        if not os.path.exists(path):
            return None
        try:
            with open(path, encoding="utf-8") as f:
                return json.load(f)
        except (OSError, ValueError):
            return None

    def cache_store(self, key, data):
        if not self.cache_dir:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        tmp = self.cache_path(key) + ".tmp.%d" % os.getpid()
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(data, f)
        os.replace(tmp, self.cache_path(key))

    # -- include closure ----------------------------------------------------

    def resolve_include(self, inc, from_dir, include_dirs):
        for base in [from_dir] + include_dirs:
            cand = os.path.realpath(os.path.join(base, inc))
            if os.path.isfile(cand) and \
                    cand.startswith(self.root + os.sep):
                return cand
        return None

    def closure_of(self, abspath, include_dirs):
        """All repo files reachable from abspath via quoted includes."""
        seen = {}
        stack = [abspath]
        while stack:
            path = stack.pop()
            rel = os.path.relpath(path, self.root).replace(os.sep, "/")
            if rel in seen:
                continue
            try:
                with open(path, encoding="utf-8",
                          errors="replace") as f:
                    text = f.read()
            except OSError:
                continue
            _, includes = strip_preprocessor(text)
            seen[rel] = includes
            for inc in includes:
                target = self.resolve_include(
                    inc, os.path.dirname(path), include_dirs)
                if target is not None:
                    stack.append(target)
        return seen

    # -- per-file analysis --------------------------------------------------

    def analyze_file_internal(self, relpath):
        if relpath in self.file_facts:
            return self.file_facts[relpath]
        abspath = os.path.join(self.root, relpath)
        digest = self.file_hashes.get(relpath) or sha256_file(abspath)
        self.file_hashes[relpath] = digest
        key = self.file_cache_key(relpath, digest)
        cached = self.cache_load(key)
        if cached is not None:
            self.file_hits += 1
            ff = FileFacts.from_json(cached)
        else:
            self.file_misses += 1
            with open(abspath, encoding="utf-8", errors="replace") as f:
                text = f.read()
            ff = InternalParser(relpath, text).parse()
            self.cache_store(key, ff.to_json())
        self.file_facts[relpath] = ff
        return ff

    # -- TU analysis --------------------------------------------------------

    def analyze_tu(self, entry, scope_dirs):
        abspath = entry["file"]
        include_dirs = include_dirs_of(entry)
        closure = self.closure_of(abspath, include_dirs)
        digests = {}
        for rel in closure:
            p = os.path.join(self.root, rel)
            if rel not in self.file_hashes:
                self.file_hashes[rel] = sha256_file(p)
            digests[rel] = self.file_hashes[rel]
        rel_tu = os.path.relpath(abspath, self.root).replace(os.sep, "/")
        tu_key = self.tu_cache_key(rel_tu, digests)
        in_scope = [rel for rel in closure
                    if any(rel.startswith(d + "/") for d in scope_dirs)]

        if self.libclang is not None:
            cached = self.cache_load(tu_key)
            if cached is not None:
                self.tu_hits += 1
                for rel, data in cached["files"].items():
                    if rel not in self.file_facts:
                        self.file_facts[rel] = FileFacts.from_json(data)
                return
            self.tu_misses += 1
            facts = self.libclang.parse_tu(entry)
            payload = {"files": {}}
            for rel, ff in facts.items():
                if rel in in_scope or rel == rel_tu:
                    payload["files"][rel] = ff.to_json()
                    if rel not in self.file_facts:
                        self.file_facts[rel] = ff
            self.cache_store(tu_key, payload)
            return

        # Internal engine: per-file parse (cached per file); the TU key
        # still tracks hit-rate at TU granularity.
        if self.cache_load(tu_key) is not None:
            self.tu_hits += 1
        else:
            self.tu_misses += 1
            self.cache_store(tu_key, {"files": sorted(closure)})
        for rel in in_scope + ([rel_tu] if rel_tu not in in_scope and
                               any(rel_tu.startswith(d + "/")
                                   for d in scope_dirs) else []):
            self.analyze_file_internal(rel)


def run_analysis(args):
    engine_requested = args.engine
    engine_name = engine_requested
    if engine_requested == "auto":
        engine_name = "libclang" if try_import_libclang() else "internal"
    elif engine_requested == "libclang" and try_import_libclang() is None:
        msg = ("saga_analyze: libclang (clang.cindex) unavailable — "
               "analysis skipped. Install python3-clang + libclang, or "
               "run with --engine=internal.")
        if args.require_engine:
            print(msg, file=sys.stderr)
            return 3
        print(msg)
        if args.json:
            with open(args.json, "w", encoding="utf-8") as f:
                json.dump({"version": ANALYZER_VERSION, "engine": "none",
                           "skipped": True, "findings": []}, f, indent=1)
        return 0

    root = os.path.realpath(args.root)
    analyzer = Analyzer(root, engine_name, cache_dir=args.cache_dir)

    scope_dirs = list(args.dirs) if args.dirs else \
        list(DEFAULT_ANALYZE_DIRS)

    if args.fixtures:
        fixture_dir = os.path.realpath(args.fixtures)
        rel_fix = os.path.relpath(fixture_dir, root).replace(os.sep, "/")
        scope_dirs = [rel_fix]
        entries = []
        for name in sorted(os.listdir(fixture_dir)):
            if name.endswith((".cc", ".cpp", ".h")):
                entries.append({
                    "file": os.path.join(fixture_dir, name),
                    "args": ["-I" + os.path.join(root, "src")],
                    "dir": root})
    else:
        if not args.build:
            print("saga_analyze: -p/--build (compile_commands.json) is "
                  "required unless --fixtures is given", file=sys.stderr)
            return 2
        try:
            entries = load_compile_commands(args.build)
        except (OSError, ValueError) as err:
            print("saga_analyze: cannot load compile_commands.json: %s"
                  % err, file=sys.stderr)
            return 2
        entries = [e for e in entries
                   if e["file"].startswith(root + os.sep) and
                   any(os.path.relpath(e["file"], root)
                       .replace(os.sep, "/").startswith(d + "/")
                       for d in scope_dirs)]

    fallback_notice = None
    try:
        for entry in entries:
            analyzer.analyze_tu(entry, scope_dirs)
    except Exception as err:  # libclang misbehaving: fall back
        if engine_name == "libclang" and engine_requested == "auto":
            fallback_notice = ("saga_analyze: libclang engine failed "
                               "(%s); falling back to internal engine"
                               % err)
            print(fallback_notice)
            analyzer = Analyzer(root, "internal",
                                cache_dir=args.cache_dir)
            engine_name = "internal"
            for entry in entries:
                analyzer.analyze_tu(entry, scope_dirs)
        else:
            raise

    # Headers reachable only from excluded TUs (tests) are not analyzed;
    # that is deliberate — the packs govern the product tree.
    prog = Program(analyzer.file_facts)
    findings = []
    hot, n_entries, n_reach = check_hotpath(prog)
    findings += hot
    findings += check_atomics(prog)
    findings += check_guarded(prog)
    findings += check_telemetry(prog)
    findings.sort(key=lambda f: (f.file, f.line, f.rule))

    tu_total = analyzer.tu_hits + analyzer.tu_misses
    stats = {
        "engine": engine_name,
        "tus": tu_total,
        "files": len(analyzer.file_facts),
        "functions": len(prog.functions),
        "hotpath_entries": n_entries,
        "hotpath_reachable": n_reach,
        "tu_cache_hits": analyzer.tu_hits,
        "tu_cache_misses": analyzer.tu_misses,
        "file_cache_hits": analyzer.file_hits,
        "file_cache_misses": analyzer.file_misses,
    }

    for f in findings:
        print(f.render(args.fix_hints))

    if args.stats or args.verbose:
        hit_pct = (100.0 * analyzer.tu_hits / tu_total) if tu_total \
            else 0.0
        print("saga_analyze: engine=%s tus=%d files=%d functions=%d "
              "entries=%d reachable=%d" %
              (engine_name, tu_total, stats["files"],
               stats["functions"], n_entries, n_reach))
        print("saga_analyze: TU cache %d/%d hits (%.0f%%), file cache "
              "%d/%d hits" %
              (analyzer.tu_hits, tu_total, hit_pct, analyzer.file_hits,
               analyzer.file_hits + analyzer.file_misses))

    if args.json:
        report = {"version": ANALYZER_VERSION, "engine": engine_name,
                  "root": root, "skipped": False, "stats": stats,
                  "findings": [f.to_json() for f in findings]}
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=1)

    if findings:
        print("saga_analyze: %d finding(s)" % len(findings),
              file=sys.stderr)
        return 1
    print("saga_analyze: clean (%d TU(s), %d file(s), %d function(s), "
          "%d kernel entr%s)" %
          (tu_total, stats["files"], stats["functions"], n_entries,
           "y" if n_entries == 1 else "ies"))
    return 0


RULES_TABLE = (
    ("hotpath/heap-allocation", "no allocation reachable from kernels"),
    ("hotpath/container-growth", "no std:: container growth in kernels"),
    ("hotpath/lock-acquisition", "no locks reachable from kernels"),
    ("hotpath/io", "no I/O reachable from kernels"),
    ("hotpath/throw", "no exceptions reachable from kernels"),
    ("hotpath/unjustified-escape", "hotpath-allow needs a written reason"),
    ("atomics/orphaned-release", "release store needs an acquire read"),
    ("atomics/orphaned-acquire", "acquire read needs a release store"),
    ("atomics/seq-cst-downgrade", "seq_cst protocols stay seq_cst"),
    ("guarded/unannotated-member", "audited members carry a category"),
    ("guarded/bogus-chunk-owned", "chunk-owned claims need the capability"),
    ("telemetry/phase-scope-temporary", "PhaseScope must be a named local"),
    ("telemetry/unqualified-counter-id", "qualified telemetry enum ids"),
)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="saga_analyze",
        description="SAGA-Bench whole-program static analyzer")
    parser.add_argument("--root", default=".", help="repo root")
    parser.add_argument("-p", "--build", default=None,
                        help="build dir (or path) with "
                             "compile_commands.json")
    parser.add_argument("--engine", default="auto",
                        choices=("auto", "libclang", "internal"))
    parser.add_argument("--require-engine", action="store_true",
                        help="fail (exit 3) instead of skipping when the "
                             "requested engine is unavailable")
    parser.add_argument("--cache-dir", default=None,
                        help="per-TU/per-file analysis cache directory")
    parser.add_argument("--json", default=None,
                        help="write the machine-readable report here")
    parser.add_argument("--fix-hints", action="store_true",
                        help="append a fix hint to each finding")
    parser.add_argument("--fixtures", default=None,
                        help="analyze a fixture directory as standalone "
                             "TUs (no compile_commands needed)")
    parser.add_argument("--dirs", nargs="*", default=None,
                        help="repo-relative dirs to analyze (default: "
                             "%s)" % " ".join(DEFAULT_ANALYZE_DIRS))
    parser.add_argument("--stats", action="store_true",
                        help="print TU/file counts and cache hit rate")
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        width = max(len(r) for r, _ in RULES_TABLE)
        for rule, summary in RULES_TABLE:
            print("%-*s  %s" % (width, rule, summary))
        return 0

    try:
        return run_analysis(args)
    except RuntimeError as err:
        print("saga_analyze: %s" % err, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
