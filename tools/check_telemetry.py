#!/usr/bin/env python3
"""check_telemetry — validate SAGA-Bench telemetry artifacts.

Three checks, all stdlib-only so CI can run it anywhere:

  1. The metrics dump (--metrics) conforms to the `saga.telemetry`
     schema v1: every required key present, counters/phases well-typed,
     the perf block complete, derived perf metrics only where their
     source events are live.
  2. The Chrome trace (--trace) is loadable trace_event JSON: metadata
     events present, every B has a matching same-phase E on the same
     thread, per-thread timestamps monotonic.
  3. The metrics contract (--docs, default docs/TELEMETRY.md) documents
     every exported counter, phase, and perf-event name appearing in the
     dump — the docs cannot silently fall behind the code.

Usage:
  check_telemetry.py --metrics PATH [--trace PATH] [--docs PATH]
                     [--extra-docs PREFIX=PATH]... [--expect-phase NAME]...

--extra-docs holds a subsystem handbook to the same contract: every
exported name starting with PREFIX (counter `prefix.` or phase
`prefix/`) must also be documented in PATH. The serve-smoke CI job uses
`--extra-docs serve=docs/SERVING.md` so the serving handbook cannot
fall behind the serve.* telemetry surface.

Exit status: 0 = all checks pass, 1 = violations, 2 = usage error.
"""

import argparse
import json
import sys

SCHEMA = "saga.telemetry"
TRACE_SCHEMA = "saga.trace"
VERSION = 1

PHASE_KEYS = ("count", "total_s", "mean_s", "min_s", "max_s")
PERF_DERIVED = ("ipc", "l1d_hit_ratio", "l1d_mpki", "llc_hit_ratio",
                "llc_mpki")


class Checker:
    def __init__(self):
        self.failures = []

    def expect(self, ok, message):
        if not ok:
            self.failures.append(message)
        return ok


def load_json(path, chk):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        chk.expect(False, "%s: not readable JSON: %s" % (path, err))
        return None


def check_metrics(doc, chk):
    """Structural checks on the saga.telemetry dump."""
    for key in ("schema", "version", "enabled", "compiled_out", "threads",
                "counters", "phases", "perf", "trace"):
        if not chk.expect(key in doc, "metrics: missing key %r" % key):
            return
    chk.expect(doc["schema"] == SCHEMA,
               "metrics: schema is %r, want %r" % (doc["schema"], SCHEMA))
    chk.expect(doc["version"] == VERSION,
               "metrics: version is %r, want %d" % (doc["version"], VERSION))

    counters = doc["counters"]
    chk.expect(isinstance(counters, dict) and counters,
               "metrics: counters must be a non-empty object")
    for name, value in counters.items():
        chk.expect(isinstance(value, int) and value >= 0,
                   "metrics: counter %r must be a non-negative integer" %
                   name)

    phases = doc["phases"]
    chk.expect(isinstance(phases, dict) and phases,
               "metrics: phases must be a non-empty object")
    for name, stats in phases.items():
        for key in PHASE_KEYS:
            chk.expect(isinstance(stats, dict) and key in stats,
                       "metrics: phase %r missing %r" % (name, key))
        if isinstance(stats, dict) and all(k in stats for k in PHASE_KEYS):
            chk.expect(stats["min_s"] <= stats["max_s"] <= stats["total_s"]
                       or stats["count"] == 0,
                       "metrics: phase %r min/max/total inconsistent" % name)

    perf = doc["perf"]
    for key in ("available", "status", "paranoid_level", "events", "phases"):
        chk.expect(key in perf, "metrics: perf block missing %r" % key)
    events = perf.get("events", {})
    for name, live in events.items():
        chk.expect(isinstance(live, bool),
                   "metrics: perf event %r liveness must be a bool" % name)
    for name, stats in perf.get("phases", {}).items():
        chk.expect(name in phases,
                   "metrics: perf phase %r is not a known phase" % name)
        chk.expect(stats.get("samples", 0) > 0,
                   "metrics: perf phase %r exported with zero samples" %
                   name)
        # Derived metrics may only appear when their source events are
        # live — the exporter must not fabricate ratios from dead fds.
        if not (events.get("cycles") and events.get("instructions")):
            chk.expect("ipc" not in stats,
                       "metrics: perf phase %r has ipc without live "
                       "cycles+instructions" % name)
        if not (events.get("l1d_loads") and events.get("l1d_misses")):
            chk.expect("l1d_hit_ratio" not in stats,
                       "metrics: perf phase %r has l1d_hit_ratio without "
                       "live L1D events" % name)

    trace = doc["trace"]
    for key in ("enabled", "events", "dropped"):
        chk.expect(key in trace, "metrics: trace block missing %r" % key)


def check_trace(doc, chk, expect_phases):
    """Chrome trace_event checks: loadability, nesting, monotonicity."""
    if not chk.expect(isinstance(doc, dict) and "traceEvents" in doc,
                      "trace: missing traceEvents"):
        return
    events = doc["traceEvents"]
    chk.expect(doc.get("otherData", {}).get("schema") == TRACE_SCHEMA,
               "trace: otherData.schema must be %r" % TRACE_SCHEMA)
    chk.expect(any(e.get("ph") == "M" and e.get("name") == "process_name"
                   for e in events),
               "trace: missing process_name metadata event")

    last_ts = {}
    stacks = {}
    seen_phases = set()
    for event in events:
        ph = event.get("ph")
        if ph == "M":
            continue
        if not chk.expect(ph in ("B", "E"),
                          "trace: unexpected event type %r" % ph):
            continue
        for key in ("name", "pid", "tid", "ts"):
            chk.expect(key in event, "trace: %s event missing %r" % (ph, key))
        tid = event.get("tid")
        ts = event.get("ts", 0)
        if tid in last_ts:
            chk.expect(ts >= last_ts[tid],
                       "trace: tid %s timestamps not monotonic" % tid)
        last_ts[tid] = ts
        name = event.get("name")
        seen_phases.add(name)
        stack = stacks.setdefault(tid, [])
        if ph == "B":
            stack.append(name)
        else:
            if chk.expect(stack, "trace: tid %s has E without B" % tid):
                chk.expect(stack[-1] == name,
                           "trace: tid %s span %r closed while %r open" %
                           (tid, name, stack[-1]))
                stack.pop()
    for tid, stack in stacks.items():
        chk.expect(not stack,
                   "trace: tid %s has unclosed span(s) %s" % (tid, stack))
    for name in expect_phases:
        chk.expect(name in seen_phases,
                   "trace: expected at least one %r span" % name)


def check_docs(doc, docs_path, chk):
    """Every exported metric name must appear in the metrics contract."""
    try:
        with open(docs_path, encoding="utf-8") as f:
            docs = f.read()
    except OSError as err:
        chk.expect(False, "docs: cannot read %s: %s" % (docs_path, err))
        return
    names = list(doc.get("counters", {}))
    names += list(doc.get("phases", {}))
    names += list(doc.get("perf", {}).get("events", {}))
    names += PERF_DERIVED
    for name in names:
        chk.expect("`%s`" % name in docs,
                   "docs: %s does not document `%s`" % (docs_path, name))


def check_extra_docs(doc, spec, chk):
    """--extra-docs PREFIX=PATH: names under PREFIX must appear in PATH."""
    prefix, sep, path = spec.partition("=")
    if not chk.expect(sep == "=" and prefix and path,
                      "extra-docs: %r is not PREFIX=PATH" % spec):
        return
    try:
        with open(path, encoding="utf-8") as f:
            docs = f.read()
    except OSError as err:
        chk.expect(False, "extra-docs: cannot read %s: %s" % (path, err))
        return
    names = [n for n in doc.get("counters", {})
             if n.startswith(prefix + ".")]
    names += [n for n in doc.get("phases", {})
              if n.startswith(prefix + "/")]
    chk.expect(bool(names),
               "extra-docs: dump exports no %r-prefixed names — "
               "wrong prefix or a dead dump" % prefix)
    for name in names:
        chk.expect("`%s`" % name in docs,
                   "extra-docs: %s does not document `%s`" % (path, name))


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="check_telemetry",
        description="validate SAGA-Bench telemetry artifacts")
    parser.add_argument("--metrics", required=True,
                        help="saga.telemetry JSON dump")
    parser.add_argument("--trace",
                        help="Chrome trace_event JSON (optional)")
    parser.add_argument("--docs", default="docs/TELEMETRY.md",
                        help="metrics contract to check names against "
                             "(default: %(default)s)")
    parser.add_argument("--extra-docs", action="append", default=[],
                        metavar="PREFIX=PATH",
                        help="also require every exported name under "
                             "PREFIX to be documented in PATH "
                             "(repeatable)")
    parser.add_argument("--expect-phase", action="append", default=[],
                        metavar="NAME",
                        help="require at least one trace span named NAME "
                             "(repeatable)")
    args = parser.parse_args(argv)

    chk = Checker()
    metrics = load_json(args.metrics, chk)
    if metrics is not None:
        check_metrics(metrics, chk)
        check_docs(metrics, args.docs, chk)
        for spec in args.extra_docs:
            check_extra_docs(metrics, spec, chk)
    if args.trace:
        trace = load_json(args.trace, chk)
        if trace is not None:
            check_trace(trace, chk, args.expect_phase)

    for failure in chk.failures:
        print("check_telemetry: %s" % failure, file=sys.stderr)
    if chk.failures:
        print("check_telemetry: %d failure(s)" % len(chk.failures),
              file=sys.stderr)
        return 1
    print("check_telemetry: ok (%s%s)" %
          (args.metrics, ", " + args.trace if args.trace else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
