/**
 * @file
 * Real-time fraud monitoring over a streaming transaction graph — the
 * paper's second motivating scenario (real-time financial fraud
 * detection).
 *
 * Synthesizes a money-flow stream: accounts transact mostly within their
 * community, a few mule accounts fan money out, and one flagged account is
 * the investigation root. After every batch, incremental BFS from the
 * flagged account re-labels every account by its hop distance in the flow
 * graph; accounts that newly come within the alert radius are reported the
 * moment the batch lands — the low-latency loop that motivates streaming
 * graph analytics.
 *
 *   ./examples/fraud_detection [num_accounts] [batches]
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "platform/rng.h"
#include "saga/driver.h"

namespace {

constexpr saga::NodeId kFlaggedAccount = 0;
constexpr std::uint32_t kAlertRadius = 3; // hops of money flow

/** One batch of synthetic transactions. */
saga::EdgeBatch
transactionBatch(saga::NodeId accounts, std::size_t count,
                 std::uint64_t seed)
{
    saga::Rng rng(seed);
    std::vector<saga::Edge> txns;
    txns.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        saga::NodeId from, to;
        const std::uint64_t kind = rng.below(100);
        if (kind < 3) {
            // The flagged account moves money to a random mule.
            from = kFlaggedAccount;
            to = static_cast<saga::NodeId>(1 + rng.below(20));
        } else if (kind < 15) {
            // Mules fan out widely.
            from = static_cast<saga::NodeId>(1 + rng.below(20));
            to = static_cast<saga::NodeId>(rng.below(accounts));
        } else {
            // Ordinary local commerce within a community of 64.
            from = static_cast<saga::NodeId>(rng.below(accounts));
            to = static_cast<saga::NodeId>(
                (from / 64) * 64 + rng.below(64));
        }
        if (to == from)
            to = (to + 1) % accounts;
        const auto amount =
            static_cast<saga::Weight>(1 + rng.below(1000));
        txns.push_back({from, to, amount});
    }
    return saga::EdgeBatch(std::move(txns));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace saga;

    const NodeId accounts =
        argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 20000;
    const int batches = argc > 2 ? std::atoi(argv[2]) : 25;

    RunConfig cfg;
    cfg.ds = DsKind::DAH; // mule fan-out makes the stream heavy-tailed
    cfg.alg = AlgKind::BFS;
    cfg.model = ModelKind::INC;
    cfg.ctx.source = kFlaggedAccount;
    auto monitor = makeRunner(cfg);

    std::vector<bool> alerted; // accounts already reported
    std::size_t total_alerts = 0;

    for (int b = 0; b < batches; ++b) {
        const EdgeBatch batch = transactionBatch(accounts, 4000, 100 + b);
        const BatchResult result = monitor->processBatch(batch);

        const std::vector<double> hops = monitor->values();
        alerted.resize(hops.size(), false);
        std::size_t fresh = 0;
        for (NodeId account = 0; account < hops.size(); ++account) {
            if (!alerted[account] && hops[account] <= kAlertRadius) {
                alerted[account] = true;
                ++fresh;
            }
        }
        total_alerts += fresh;

        std::cout << "batch " << b << ": " << result.batchEdges
                  << " txns ingested in "
                  << result.updateSeconds * 1e3 << " ms, screened in "
                  << result.computeSeconds * 1e3 << " ms";
        if (fresh > 0)
            std::cout << "  -> " << fresh << " accounts newly within "
                      << kAlertRadius << " hops of flagged funds";
        std::cout << "\n";
    }

    std::cout << "\n" << total_alerts << " of " << accounts
              << " accounts entered the alert radius while streaming.\n";
    return 0;
}
