/**
 * @file
 * Social-network analytics over a streaming friendship/follow graph — the
 * paper's first motivating scenario.
 *
 * Streams the LiveJournal-like profile and, after every batch, maintains
 * two live analytics:
 *   - influencer tracking: incremental PageRank; reports when the top
 *     influencer changes;
 *   - community structure: incremental connected components; reports the
 *     shrinking number of communities as the network densifies.
 *
 *   ./examples/social_network [scale]
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <unordered_set>

#include "gen/profiles.h"
#include "saga/driver.h"
#include "saga/stream_source.h"

namespace {

saga::NodeId
topVertex(const std::vector<double> &ranks)
{
    saga::NodeId best = 0;
    for (saga::NodeId v = 1; v < ranks.size(); ++v) {
        if (ranks[v] > ranks[best])
            best = v;
    }
    return best;
}

std::size_t
communityCount(const std::vector<double> &labels)
{
    std::unordered_set<double> distinct(labels.begin(), labels.end());
    return distinct.size();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace saga;

    const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
    const DatasetProfile profile = findProfile("lj")->scaled(scale);
    std::cout << "streaming " << profile.numEdges << " follow edges over "
              << profile.numNodes << " users, batch "
              << profile.batchSize << "\n\n";

    RunConfig pr_cfg;
    pr_cfg.ds = DsKind::AS; // best structure for this short-tailed graph
    pr_cfg.alg = AlgKind::PR;
    pr_cfg.model = ModelKind::INC;
    pr_cfg.directed = profile.directed;
    auto influencers = makeRunner(pr_cfg);

    RunConfig cc_cfg = pr_cfg;
    cc_cfg.alg = AlgKind::CC;
    auto communities = makeRunner(cc_cfg);

    StreamSource stream(profile.generate(7), profile.batchSize, 7);
    NodeId reigning = kInvalidNode;
    int batch_index = 0;
    double total_latency = 0;

    while (stream.hasNext()) {
        const EdgeBatch batch = stream.next();
        const BatchResult pr = influencers->processBatch(batch);
        const BatchResult cc = communities->processBatch(batch);
        total_latency += pr.totalSeconds() + cc.totalSeconds();

        const NodeId leader = topVertex(influencers->values());
        if (leader != reigning) {
            std::cout << "batch " << batch_index << ": new top influencer"
                      << " v" << leader << "\n";
            reigning = leader;
        }
        if (batch_index % 10 == 0) {
            std::cout << "batch " << batch_index << ": "
                      << communityCount(communities->values())
                      << " communities, " << cc.graphEdges
                      << " unique edges\n";
        }
        ++batch_index;
    }

    std::cout << "\nprocessed " << batch_index << " batches; total "
              << "analytics latency " << total_latency << " s ("
              << total_latency / batch_index * 1e3 << " ms/batch for both "
              << "analytics)\n";
    return 0;
}
