/**
 * @file
 * Quickstart: stream a synthetic graph through SAGA-Bench's public API.
 *
 * Build an R-MAT edge stream, ingest it batch by batch into a
 * degree-aware-hashing store, run incremental PageRank after every batch,
 * and print the per-batch latencies (Eq. 1 of the paper) plus the top
 * vertices at the end.
 *
 *   ./examples/quickstart [batch_size]
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "gen/rmat.h"
#include "saga/driver.h"
#include "saga/stream_source.h"

int
main(int argc, char **argv)
{
    using namespace saga;

    const std::size_t batch_size =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4000;

    // 1. A stream of edges (here synthetic R-MAT; any Edge vector works).
    RmatParams params;
    params.scale = 14;
    params.numEdges = 120000;
    StreamSource stream(generateRmat(params), batch_size);

    // 2. A streaming workload: data structure x algorithm x compute model.
    RunConfig cfg;
    cfg.ds = DsKind::DAH;        // as | ac | stinger | dah
    cfg.alg = AlgKind::PR;       // bfs | cc | mc | pr | sssp | sswp
    cfg.model = ModelKind::INC;  // inc | fs
    auto runner = makeRunner(cfg);

    // 3. Drive the stream: update phase + compute phase per batch.
    std::cout << "batch  edges    nodes    update_ms  compute_ms\n";
    int index = 0;
    while (stream.hasNext()) {
        const EdgeBatch batch = stream.next();
        const BatchResult result = runner->processBatch(batch);
        std::cout << index++ << "      " << result.graphEdges << "   "
                  << result.graphNodes << "    "
                  << result.updateSeconds * 1e3 << "       "
                  << result.computeSeconds * 1e3 << "\n";
    }

    // 4. Read out the freshest analytics results.
    const std::vector<double> ranks = runner->values();
    std::vector<NodeId> order(ranks.size());
    for (NodeId v = 0; v < order.size(); ++v)
        order[v] = v;
    std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                      [&](NodeId a, NodeId b) {
                          return ranks[a] > ranks[b];
                      });

    std::cout << "\ntop-5 PageRank vertices:\n";
    for (int i = 0; i < 5; ++i)
        std::cout << "  v" << order[i] << "  rank " << ranks[order[i]]
                  << "\n";
    return 0;
}
