/**
 * @file
 * saga_run — command-line driver for any workload combination.
 *
 * Runs one {dataset, data structure, algorithm, compute model} streaming
 * workload and prints per-batch and per-stage latencies — the swiss-army
 * entry point for ad-hoc experiments beyond the canned benches.
 *
 * Usage:
 *   saga_run [--dataset lj|orkut|rmat|wiki|talk] [--ds as|ac|stinger|dah|hybrid]
 *            [--alg bfs|cc|mc|pr|sssp|sswp] [--model inc|fs]
 *            [--scale F] [--threads N] [--seed S] [--per-batch]
 *            [--pipeline] [--writers N]
 *            [--telemetry=PATH] [--trace=PATH]
 *
 * --pipeline swaps the strict update/compute alternation for the
 * snapshot-isolated overlap driver (DESIGN.md §9); --writers sets the
 * writer-lane width (default: half of --threads). Note that perf
 * sampling is disabled in pipeline mode (overlapping spans).
 *
 * --telemetry enables the runtime metrics layer and writes the JSON dump
 * (docs/TELEMETRY.md schema) at exit; --trace additionally records every
 * phase span and writes Chrome trace_event JSON loadable in
 * chrome://tracing / Perfetto.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "saga/experiment.h"
#include "saga/stream_source.h"
#include "stats/table.h"
#include "telemetry/telemetry.h"

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--dataset lj|orkut|rmat|wiki|talk] [--ds as|ac|stinger|dah|hybrid]\n"
           "       [--alg bfs|cc|mc|pr|sssp|sswp] [--model inc|fs]\n"
           "       [--scale F] [--threads N] [--seed S] [--per-batch]\n"
           "       [--pipeline] [--writers N]\n"
           "       [--telemetry=PATH] [--trace=PATH]\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace saga;

    std::string dataset = "lj";
    RunConfig cfg;
    cfg.ds = DsKind::AS;
    cfg.alg = AlgKind::PR;
    cfg.model = ModelKind::INC;
    double scale = 1.0;
    std::uint64_t seed = 1;
    bool per_batch = false;
    std::string telemetry, trace;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        try {
            if (arg == "--dataset") {
                dataset = next();
            } else if (arg == "--ds") {
                cfg.ds = parseDs(next());
            } else if (arg == "--alg") {
                cfg.alg = parseAlg(next());
            } else if (arg == "--model") {
                cfg.model = parseModel(next());
            } else if (arg == "--scale") {
                scale = std::atof(next().c_str());
            } else if (arg == "--threads") {
                cfg.threads = std::strtoul(next().c_str(), nullptr, 10);
            } else if (arg == "--seed") {
                seed = std::strtoull(next().c_str(), nullptr, 10);
            } else if (arg == "--per-batch") {
                per_batch = true;
            } else if (arg == "--pipeline") {
                cfg.pipeline = true;
            } else if (arg == "--writers") {
                cfg.writerThreads =
                    std::strtoul(next().c_str(), nullptr, 10);
            } else if (arg.rfind("--telemetry=", 0) == 0) {
                telemetry = arg.substr(12);
            } else if (arg.rfind("--trace=", 0) == 0) {
                trace = arg.substr(8);
            } else {
                usage(argv[0]);
            }
        } catch (const std::exception &error) {
            std::cerr << "error: " << error.what() << "\n";
            usage(argv[0]);
        }
    }

    const DatasetProfile *base = findProfile(dataset);
    if (!base) {
        std::cerr << "error: unknown dataset '" << dataset << "'\n";
        usage(argv[0]);
    }
    const DatasetProfile profile = base->scaled(scale);

    // Perf counters must open before the runner's worker pool exists
    // (inherit=1 folds later-created workers into the counts).
    if (!telemetry.empty()) {
        telemetry::enablePerf();
        telemetry::setEnabled(true);
    }
    if (!trace.empty())
        telemetry::setTraceEnabled(true);

    std::cout << "dataset=" << profile.name << " |V|=" << profile.numNodes
              << " |E|=" << profile.numEdges << " batch="
              << profile.batchSize << " (" << profile.batchCount()
              << " batches)  ds=" << toString(cfg.ds) << " alg="
              << toString(cfg.alg) << " model=" << toString(cfg.model)
              << (cfg.pipeline ? "  [pipelined]" : "") << "\n\n";

    const StreamRun run = runStream(profile, cfg, seed);
    std::cout << "wall: " << formatDouble(run.wallSeconds, 3) << " s"
              << (run.pipelined
                      ? "  (pipelined: per-batch update/compute overlap; "
                        "their sums over-count)"
                      : "")
              << "\n\n";

    if (per_batch) {
        TextTable table({"batch", "edges", "nodes", "update_ms",
                         "compute_ms", "total_ms"});
        for (std::size_t i = 0; i < run.batches.size(); ++i) {
            const BatchResult &b = run.batches[i];
            table.addRow({std::to_string(i),
                          std::to_string(b.graphEdges),
                          std::to_string(b.graphNodes),
                          formatDouble(b.updateSeconds * 1e3, 3),
                          formatDouble(b.computeSeconds * 1e3, 3),
                          formatDouble(b.totalSeconds() * 1e3, 3)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    const StageSummary update = summarizeStages(run.updateLatencies());
    const StageSummary compute = summarizeStages(run.computeLatencies());
    const StageSummary total = summarizeStages(run.totalLatencies());

    TextTable stages({"stage", "update s", "compute s", "total s",
                      "95% CI (total)"});
    const char *names[3] = {"P1 (early)", "P2 (middle)", "P3 (final)"};
    for (int s = 0; s < 3; ++s) {
        stages.addRow({names[s], formatDouble(update.stage(s).mean, 5),
                       formatDouble(compute.stage(s).mean, 5),
                       formatDouble(total.stage(s).mean, 5),
                       "+/- " +
                           formatDouble(total.stage(s).ciHalfWidth, 5)});
    }
    stages.print(std::cout);

    if (!telemetry.empty()) {
        if (!telemetry::writeMetricsJson(telemetry)) {
            std::cerr << "error: cannot write " << telemetry << "\n";
            return 1;
        }
        std::cout << "\nWrote " << telemetry
                  << " (perf: " << telemetry::perfStatus() << ")\n";
    }
    if (!trace.empty()) {
        if (!telemetry::writeTraceJson(trace)) {
            std::cerr << "error: cannot write " << trace << "\n";
            return 1;
        }
        std::cout << "Wrote " << trace << "\n";
    }
    return 0;
}
