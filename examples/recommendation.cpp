/**
 * @file
 * Real-time recommendation over a streaming interaction graph — the
 * paper's third motivating scenario (recommendation systems, a la
 * GraphJet/Pixie).
 *
 * Users interact with items; each interaction carries an affinity weight.
 * For a focal user, the widest path (incremental SSWP) to an item is the
 * strength of the strongest chain of interactions connecting them — a
 * cheap streaming proxy for random-walk relevance. After each batch the
 * top not-yet-consumed items for the focal user are refreshed.
 *
 *   ./examples/recommendation [users] [items]
 */

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <set>
#include <vector>

#include "platform/rng.h"
#include "saga/driver.h"

namespace {

constexpr saga::NodeId kFocalUser = 0;

} // namespace

int
main(int argc, char **argv)
{
    using namespace saga;

    const NodeId users =
        argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 4000;
    const NodeId items =
        argc > 2 ? static_cast<NodeId>(std::atoi(argv[2])) : 8000;
    // Vertex ids: [0, users) are users, [users, users+items) are items.

    RunConfig cfg;
    cfg.ds = DsKind::AS;
    cfg.alg = AlgKind::SSWP;
    cfg.model = ModelKind::INC;
    cfg.directed = false; // interactions connect both ways
    cfg.ctx.source = kFocalUser;
    auto engine = makeRunner(cfg);

    Rng rng(9);
    std::set<NodeId> consumed; // items the focal user already has

    for (int b = 0; b < 30; ++b) {
        // One batch of interactions: a user engages an item with some
        // affinity; tastes cluster (user group <-> item genre).
        std::vector<Edge> batch_edges;
        for (int i = 0; i < 3000; ++i) {
            const NodeId user = static_cast<NodeId>(rng.below(users));
            const NodeId genre = (user % 16);
            const NodeId item = static_cast<NodeId>(
                users + genre * (items / 16) + rng.below(items / 16));
            const auto affinity =
                static_cast<Weight>(1 + rng.below(10));
            batch_edges.push_back({user, item, affinity});
            if (user == kFocalUser)
                consumed.insert(item);
        }
        const EdgeBatch batch{std::move(batch_edges)};
        const BatchResult result = engine->processBatch(batch);

        if (b % 10 == 9) {
            const std::vector<double> strength = engine->values();
            std::vector<NodeId> candidates;
            for (NodeId item = users; item < strength.size(); ++item) {
                if (strength[item] > 0 && !consumed.count(item))
                    candidates.push_back(item);
            }
            std::partial_sort(
                candidates.begin(),
                candidates.begin() +
                    std::min<std::size_t>(3, candidates.size()),
                candidates.end(), [&](NodeId a, NodeId b2) {
                    return strength[a] > strength[b2];
                });

            std::cout << "after batch " << b << " ("
                      << result.totalSeconds() * 1e3
                      << " ms): recommend items";
            for (std::size_t i = 0;
                 i < std::min<std::size_t>(3, candidates.size()); ++i) {
                std::cout << "  #" << candidates[i] - users << " (affinity "
                          << strength[candidates[i]] << ")";
            }
            std::cout << "\n";
        }
    }
    return 0;
}
