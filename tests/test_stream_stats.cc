/** @file Stream batching/shuffling and summary-statistics tests. */

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "saga/stream_source.h"
#include "stats/summary.h"
#include "stats/table.h"

namespace saga {
namespace {

std::vector<Edge>
rampEdges(std::size_t count)
{
    std::vector<Edge> edges;
    for (std::size_t i = 0; i < count; ++i) {
        edges.push_back({static_cast<NodeId>(i),
                         static_cast<NodeId>(i + 1), 1.0f});
    }
    return edges;
}

TEST(StreamSource, BatchCountAndSizes)
{
    StreamSource stream(rampEdges(1050), 100);
    EXPECT_EQ(stream.batchCount(), 11u);
    std::size_t total = 0;
    std::size_t batches = 0;
    while (stream.hasNext()) {
        const EdgeBatch batch = stream.next();
        total += batch.size();
        ++batches;
        if (batches < 11)
            EXPECT_EQ(batch.size(), 100u);
        else
            EXPECT_EQ(batch.size(), 50u); // final partial batch
    }
    EXPECT_EQ(total, 1050u);
    EXPECT_EQ(batches, 11u);
}

TEST(StreamSource, ShuffleIsPermutation)
{
    StreamSource stream(rampEdges(500), 500, /*shuffle_seed=*/3);
    const EdgeBatch batch = stream.next();
    std::set<NodeId> sources;
    for (const Edge &e : batch.edges())
        sources.insert(e.src);
    EXPECT_EQ(sources.size(), 500u); // nothing lost or duplicated
    // And actually shuffled:
    bool moved = false;
    for (std::size_t i = 0; i < batch.size(); ++i)
        moved |= (batch[i].src != i);
    EXPECT_TRUE(moved);
}

TEST(StreamSource, ShuffleDeterministicPerSeed)
{
    StreamSource a(rampEdges(200), 50, 7);
    StreamSource b(rampEdges(200), 50, 7);
    StreamSource c(rampEdges(200), 50, 8);
    bool differs_from_c = false;
    while (a.hasNext()) {
        const EdgeBatch ba = a.next(), bb = b.next(), bc = c.next();
        EXPECT_EQ(ba.edges(), bb.edges());
        differs_from_c |= !(ba.edges() == bc.edges());
    }
    EXPECT_TRUE(differs_from_c);
}

TEST(StreamSource, NoShufflePreservesOrder)
{
    StreamSource stream(rampEdges(100), 30, StreamSource::kNoShuffle);
    const EdgeBatch batch = stream.next();
    for (std::size_t i = 0; i < batch.size(); ++i)
        EXPECT_EQ(batch[i].src, i);
}

TEST(StreamSource, RewindReplaysSameBatches)
{
    StreamSource stream(rampEdges(90), 40, 5);
    std::vector<Edge> first;
    while (stream.hasNext()) {
        const auto batch = stream.next();
        first.insert(first.end(), batch.edges().begin(),
                     batch.edges().end());
    }
    stream.rewind();
    std::vector<Edge> second;
    while (stream.hasNext()) {
        const auto batch = stream.next();
        second.insert(second.end(), batch.edges().begin(),
                      batch.edges().end());
    }
    EXPECT_EQ(first, second);
}

TEST(StreamSource, ZeroBatchSizeClampedToOne)
{
    // Regression: batch_size == 0 used to divide by zero in batchCount()
    // (and next() would never advance the cursor).
    StreamSource stream(rampEdges(5), 0, StreamSource::kNoShuffle);
    EXPECT_EQ(stream.batchSize(), 1u);
    EXPECT_EQ(stream.batchCount(), 5u);
    std::size_t batches = 0;
    while (stream.hasNext()) {
        EXPECT_EQ(stream.next().size(), 1u);
        ++batches;
    }
    EXPECT_EQ(batches, 5u);
}

TEST(EdgeBatch, MaxNode)
{
    EdgeBatch empty;
    EXPECT_EQ(empty.maxNode(), kInvalidNode);
    EdgeBatch batch({{3, 9, 1.0f}, {11, 2, 1.0f}});
    EXPECT_EQ(batch.maxNode(), 11u);
}

TEST(EdgeBatch, SentinelEdgesRejected)
{
    // Regression: a kInvalidNode endpoint made the stores compute
    // ensureNodes(maxNode() + 1), which wraps to 0 and then indexes out
    // of bounds. Sentinel edges are dropped at batch construction.
    EdgeBatch batch({{kInvalidNode, 2, 1.0f},
                     {3, kInvalidNode, 1.0f},
                     {kInvalidNode, kInvalidNode, 1.0f},
                     {3, 9, 1.0f}});
    EXPECT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch.maxNode(), 9u);

    batch.push_back({kInvalidNode, 1, 1.0f});
    batch.push_back({1, kInvalidNode, 1.0f});
    EXPECT_EQ(batch.size(), 1u);

    EdgeBatch only_sentinels({{kInvalidNode, kInvalidNode, 1.0f}});
    EXPECT_TRUE(only_sentinels.empty());
    EXPECT_EQ(only_sentinels.maxNode(), kInvalidNode);
}

TEST(Summary, BasicMoments)
{
    const Summary s = summarize({2, 4, 4, 4, 5, 5, 7, 9});
    EXPECT_EQ(s.count, 8u);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_NEAR(s.stddev, 2.138, 1e-3);
    EXPECT_NEAR(s.ciHalfWidth, 1.96 * 2.138 / std::sqrt(8.0), 1e-3);
}

TEST(Summary, EmptyAndSingleton)
{
    EXPECT_EQ(summarize({}).count, 0u);
    const Summary one = summarize({3.5});
    EXPECT_EQ(one.count, 1u);
    EXPECT_DOUBLE_EQ(one.mean, 3.5);
    EXPECT_EQ(one.ciHalfWidth, 0.0);
}

TEST(Summary, OverlapDetection)
{
    Summary a, b;
    a.mean = 1.0;
    a.ciHalfWidth = 0.2;
    b.mean = 1.3;
    b.ciHalfWidth = 0.2;
    EXPECT_TRUE(a.overlaps(b));
    b.mean = 2.0;
    EXPECT_FALSE(a.overlaps(b));
}

TEST(Stages, ThirdsPartition)
{
    // 9 values: stages are {1,2,3}, {4,5,6}, {7,8,9}.
    std::vector<double> values{1, 2, 3, 4, 5, 6, 7, 8, 9};
    const StageSummary stages = summarizeStages(values);
    EXPECT_DOUBLE_EQ(stages.p1.mean, 2.0);
    EXPECT_DOUBLE_EQ(stages.p2.mean, 5.0);
    EXPECT_DOUBLE_EQ(stages.p3.mean, 8.0);
    EXPECT_EQ(stages.p1.count, 3u);
}

TEST(Stages, PoolsRepeatedRuns)
{
    // Two repetitions pool 1/3 x batchCount x reps values per stage
    // (paper Section IV-B).
    const StageSummary stages = summarizeStages(
        std::vector<std::vector<double>>{{1, 2, 3}, {3, 4, 5}});
    EXPECT_EQ(stages.p1.count, 2u);
    EXPECT_DOUBLE_EQ(stages.p1.mean, 2.0);
    EXPECT_DOUBLE_EQ(stages.p3.mean, 4.0);
}

TEST(Stages, UnevenCount)
{
    // 11 values -> stages of 3/4/4.
    std::vector<double> values(11, 1.0);
    const StageSummary stages = summarizeStages(values);
    EXPECT_EQ(stages.p1.count + stages.p2.count + stages.p3.count, 11u);
}

TEST(TextTable, AlignedOutput)
{
    TextTable table({"name", "value"});
    table.addRow({"a", "1"});
    table.addRow({"long-name", "2.5"});
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, CsvOutput)
{
    TextTable table({"a", "b"});
    table.addRow({"1", "2"});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, ShortRowsPadded)
{
    TextTable table({"a", "b", "c"});
    table.addRow({"1"});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "a,b,c\n1,,\n");
}

TEST(FormatDouble, Precision)
{
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(formatDouble(1.0, 4), "1.0000");
}

} // namespace
} // namespace saga
