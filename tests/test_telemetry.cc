/**
 * @file
 * Telemetry layer: per-thread aggregation exactness (TSan covers the
 * races), phase accumulator semantics, trace well-formedness, JSON schema
 * completeness, the no-op-when-disabled contract, and the ingest-counter
 * invariant (edges_seen == inserted + duplicates).
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ds/adj_shared.h"
#include "ds/dyn_graph.h"
#include "platform/thread_pool.h"
#include "telemetry/telemetry.h"
#include "test_util.h"

namespace saga {
namespace {

using telemetry::Counter;
using telemetry::MetricsSnapshot;
using telemetry::Phase;
using telemetry::PhaseScope;
using telemetry::TraceEvent;

[[maybe_unused]] std::uint64_t
counterValue(const MetricsSnapshot &snap, Counter c)
{
    return snap.counters[static_cast<std::size_t>(c)];
}

[[maybe_unused]] const telemetry::PhaseTotals &
phaseTotals(const MetricsSnapshot &snap, Phase p)
{
    return snap.phases[static_cast<std::size_t>(p)];
}

/** Every test starts and ends with telemetry off and zeroed — the flags
    and slots are process-global. */
class TelemetryTest : public ::testing::Test
{
  protected:
    void SetUp() override { quiesce(); }
    void TearDown() override { quiesce(); }

    static void quiesce()
    {
        telemetry::setEnabled(false);
        telemetry::setTraceEnabled(false);
        telemetry::reset();
    }
};

TEST_F(TelemetryTest, MetricsJsonNamesEveryCounterAndPhase)
{
    // The docs/TELEMETRY.md contract: a dump enumerates the full closed
    // metric set, zeros included, in every build mode.
    std::ostringstream os;
    telemetry::writeMetricsJson(os);
    const std::string json = os.str();

    EXPECT_NE(json.find("\"schema\": \"saga.telemetry\""), std::string::npos);
    EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
    for (std::size_t i = 0; i < telemetry::kNumCounters; ++i) {
        const std::string quoted =
            std::string("\"") + name(static_cast<Counter>(i)) + "\"";
        EXPECT_NE(json.find(quoted), std::string::npos)
            << "metrics dump missing counter " << quoted;
    }
    for (std::size_t i = 0; i < telemetry::kNumPhases; ++i) {
        const std::string quoted =
            std::string("\"") + name(static_cast<Phase>(i)) + "\"";
        EXPECT_NE(json.find(quoted), std::string::npos)
            << "metrics dump missing phase " << quoted;
    }
    for (std::size_t i = 0; i < telemetry::kNumPerfEvents; ++i) {
        const std::string quoted =
            std::string("\"") +
            name(static_cast<telemetry::PerfEvent>(i)) + "\"";
        EXPECT_NE(json.find(quoted), std::string::npos)
            << "metrics dump missing perf event " << quoted;
    }
    EXPECT_NE(json.find("\"trace\""), std::string::npos);
}

#ifndef SAGA_TELEMETRY_DISABLED

TEST_F(TelemetryTest, DisabledRecordingIsNoOp)
{
    SAGA_COUNT(telemetry::Counter::IngestBatches, 7);
    {
        SAGA_PHASE(telemetry::Phase::Update);
    }
    const MetricsSnapshot snap = telemetry::snapshot();
    EXPECT_EQ(counterValue(snap, Counter::IngestBatches), 0u);
    EXPECT_EQ(phaseTotals(snap, Phase::Update).count, 0u);
    EXPECT_TRUE(telemetry::traceSnapshot().empty());
}

TEST_F(TelemetryTest, CountsAggregateExactlyAcrossPoolWorkers)
{
    telemetry::setEnabled(true);
    ThreadPool pool(4);
    constexpr std::uint64_t kReps = 1000;
    pool.run([&](std::size_t worker) {
        for (std::uint64_t i = 0; i < kReps; ++i)
            SAGA_COUNT(telemetry::Counter::IngestEdgesSeen, worker + 1);
    });
    // Aggregation happens at a quiescent point (pool.run has joined), so
    // the per-thread slots must sum exactly: reps * (1+2+3+4).
    const MetricsSnapshot snap = telemetry::snapshot();
    EXPECT_EQ(counterValue(snap, Counter::IngestEdgesSeen), kReps * 10);
    EXPECT_GE(snap.threads, pool.size());
}

TEST_F(TelemetryTest, PhaseAccumulatorTracksCountMinMax)
{
    telemetry::setEnabled(true);
    for (int i = 0; i < 2; ++i) {
        SAGA_PHASE(telemetry::Phase::Compute);
    }
    const MetricsSnapshot snap = telemetry::snapshot();
    const telemetry::PhaseTotals &pt = phaseTotals(snap, Phase::Compute);
    EXPECT_EQ(pt.count, 2u);
    EXPECT_LE(pt.minNs, pt.maxNs);
    // With exactly two samples the total is the sum of the extremes.
    EXPECT_EQ(pt.totalNs, pt.minNs + pt.maxNs);
}

TEST_F(TelemetryTest, FinishIsIdempotentAndRecordsOnce)
{
    telemetry::setEnabled(true);
    PhaseScope scope(Phase::Update, PhaseScope::kAlwaysTime);
    const double first = scope.finish();
    const double second = scope.finish();
    EXPECT_GE(first, 0.0);
    EXPECT_EQ(first, second);
    // The destructor must not record a second sample after finish().
    {
        PhaseScope inner(Phase::Update);
        inner.finish();
    }
    const MetricsSnapshot snap = telemetry::snapshot();
    EXPECT_EQ(phaseTotals(snap, Phase::Update).count, 2u);
}

TEST_F(TelemetryTest, AlwaysTimeMeasuresEvenWhenDisabled)
{
    PhaseScope scope(Phase::Update, PhaseScope::kAlwaysTime);
    volatile std::uint64_t sink = 0; // keep the timed region non-empty
    for (int i = 0; i < 10000; ++i)
        sink = sink + 1;
    EXPECT_GT(scope.finish(), 0.0);
    const MetricsSnapshot snap = telemetry::snapshot();
    EXPECT_EQ(phaseTotals(snap, Phase::Update).count, 0u);
}

TEST_F(TelemetryTest, TraceSpansBalanceAndTimestampsAreMonotonic)
{
    telemetry::setEnabled(true);
    telemetry::setTraceEnabled(true);
    ThreadPool pool(4);
    pool.run([&](std::size_t) {
        SAGA_PHASE(telemetry::Phase::Update);
        {
            SAGA_PHASE(telemetry::Phase::UpdateApply);
        }
    });

    const std::vector<TraceEvent> events = telemetry::traceSnapshot();
    ASSERT_EQ(events.size(), pool.size() * 4); // two B/E pairs per worker

    std::map<std::uint32_t, std::uint64_t> last_ts;
    std::map<std::uint32_t, std::vector<Phase>> stack;
    for (const TraceEvent &ev : events) {
        auto it = last_ts.find(ev.tid);
        if (it != last_ts.end()) {
            EXPECT_GE(ev.tsNs, it->second) << "tid " << ev.tid;
        }
        last_ts[ev.tid] = ev.tsNs;
        if (ev.type == 'B') {
            stack[ev.tid].push_back(ev.phase);
        } else {
            ASSERT_EQ(ev.type, 'E');
            ASSERT_FALSE(stack[ev.tid].empty()) << "E without B";
            EXPECT_EQ(stack[ev.tid].back(), ev.phase) << "unnested span";
            stack[ev.tid].pop_back();
        }
    }
    for (const auto &entry : stack)
        EXPECT_TRUE(entry.second.empty()) << "unclosed span";
}

TEST_F(TelemetryTest, TraceJsonIsChromeLoadable)
{
    telemetry::setEnabled(true);
    telemetry::setTraceEnabled(true);
    {
        SAGA_PHASE(telemetry::Phase::Compute);
    }
    std::ostringstream os;
    telemetry::writeTraceJson(os);
    const std::string json = os.str();

    EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"compute\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    EXPECT_NE(json.find("\"schema\":\"saga.trace\""), std::string::npos);
}

TEST_F(TelemetryTest, ResetClearsEverything)
{
    telemetry::setEnabled(true);
    telemetry::setTraceEnabled(true);
    SAGA_COUNT(telemetry::Counter::DahFlushes, 3);
    {
        SAGA_PHASE(telemetry::Phase::Update);
    }
    telemetry::reset();
    const MetricsSnapshot snap = telemetry::snapshot();
    EXPECT_EQ(counterValue(snap, Counter::DahFlushes), 0u);
    EXPECT_EQ(phaseTotals(snap, Phase::Update).count, 0u);
    EXPECT_TRUE(telemetry::traceSnapshot().empty());
}

TEST_F(TelemetryTest, IngestCountersSatisfyTheSeenInvariant)
{
    telemetry::setEnabled(true);
    ThreadPool pool(2);
    DynGraph<AdjSharedStore> g(/*directed=*/true);
    const EdgeBatch batch = test::randomBatch(64, 500, /*seed=*/7);
    g.update(batch, pool);
    g.update(batch, pool); // second pass: every edge is a duplicate

    const MetricsSnapshot snap = telemetry::snapshot();
    // Each update ingests the batch into the out- and in-stores, and each
    // store pass counts every edge exactly once.
    EXPECT_EQ(counterValue(snap, Counter::IngestBatches), 2u);
    EXPECT_EQ(counterValue(snap, Counter::IngestEdgesSeen),
              4 * batch.size());
    EXPECT_EQ(counterValue(snap, Counter::IngestEdgesSeen),
              counterValue(snap, Counter::IngestEdgesInserted) +
                  counterValue(snap, Counter::IngestDuplicates));
    // Both stores hold every deduplicated edge after either pass.
    EXPECT_EQ(counterValue(snap, Counter::IngestEdgesInserted),
              2 * g.numEdges());
}

#endif // !SAGA_TELEMETRY_DISABLED

} // namespace
} // namespace saga
