/**
 * @file
 * Algorithm edge cases: self-loops, cycles, parallel/duplicate edges,
 * analytic PageRank fixpoints, and cross-backend equivalence (the same
 * stream through AS and the CSR baseline must give identical results).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "algo/bfs.h"
#include "algo/cc.h"
#include "algo/inc_engine.h"
#include "algo/mc.h"
#include "algo/pr.h"
#include "algo/sssp.h"
#include "algo/sswp.h"
#include "ds/adj_shared.h"
#include "ds/csr.h"
#include "ds/dyn_graph.h"
#include "ds/reference.h"
#include "platform/thread_pool.h"
#include "test_util.h"

namespace saga {
namespace {

class AlgoEdgeCases : public ::testing::Test
{
  protected:
    AlgoEdgeCases() : g_(/*directed=*/true), pool_(2) {}

    void update(std::vector<Edge> edges)
    {
        g_.update(EdgeBatch(std::move(edges)), pool_);
    }

    DynGraph<ReferenceStore> g_;
    ThreadPool pool_;
    AlgContext ctx_;
};

TEST_F(AlgoEdgeCases, BfsSelfLoopAtSource)
{
    update({{0, 0, 1.0f}, {0, 1, 1.0f}});
    std::vector<Bfs::Value> values;
    Bfs::computeFs(g_, pool_, values, ctx_);
    EXPECT_EQ(values[0], 0u); // self loop must not bump the source depth
    EXPECT_EQ(values[1], 1u);
}

TEST_F(AlgoEdgeCases, BfsCycleTerminates)
{
    update({{0, 1, 1.0f}, {1, 2, 1.0f}, {2, 0, 1.0f}});
    std::vector<Bfs::Value> values;
    Bfs::computeFs(g_, pool_, values, ctx_);
    EXPECT_EQ(values[0], 0u);
    EXPECT_EQ(values[1], 1u);
    EXPECT_EQ(values[2], 2u);
}

TEST_F(AlgoEdgeCases, SsspPrefersLightMultiHopPath)
{
    update({{0, 2, 10.0f}, {0, 1, 1.0f}, {1, 2, 1.0f}});
    std::vector<Sssp::Value> values;
    Sssp::computeFs(g_, pool_, values, ctx_);
    EXPECT_FLOAT_EQ(values[2], 2.0f);
}

TEST_F(AlgoEdgeCases, SswpPrefersWideMultiHopPath)
{
    update({{0, 2, 2.0f}, {0, 1, 9.0f}, {1, 2, 8.0f}});
    std::vector<Sswp::Value> values;
    Sswp::computeFs(g_, pool_, values, ctx_);
    EXPECT_FLOAT_EQ(values[2], 8.0f); // min(9,8) beats direct width 2
    EXPECT_TRUE(std::isinf(values[0]));
}

TEST_F(AlgoEdgeCases, McOnCyclePropagatesMaxEverywhere)
{
    update({{3, 1, 1.0f}, {1, 2, 1.0f}, {2, 3, 1.0f}});
    std::vector<Mc::Value> values;
    Mc::computeFs(g_, pool_, values, ctx_);
    EXPECT_EQ(values[1], 3u);
    EXPECT_EQ(values[2], 3u);
    EXPECT_EQ(values[3], 3u);
    EXPECT_EQ(values[0], 0u); // isolated
}

TEST_F(AlgoEdgeCases, CcSelfLoopIsOwnComponent)
{
    update({{5, 5, 1.0f}, {1, 2, 1.0f}});
    std::vector<Cc::Value> values;
    Cc::computeFs(g_, pool_, values, ctx_);
    EXPECT_EQ(values[5], 5u);
    EXPECT_EQ(values[1], 1u);
    EXPECT_EQ(values[2], 1u);
}

TEST_F(AlgoEdgeCases, PrTwoNodeCycleAnalytic)
{
    // Symmetric 2-cycle: the unique fixpoint is rank 0.5 each.
    update({{0, 1, 1.0f}, {1, 0, 1.0f}});
    std::vector<Pr::Value> values;
    ctx_.prMaxIters = 200;
    ctx_.prTolerance = 1e-12;
    Pr::computeFs(g_, pool_, values, ctx_);
    EXPECT_NEAR(values[0], 0.5, 1e-6);
    EXPECT_NEAR(values[1], 0.5, 1e-6);
}

TEST_F(AlgoEdgeCases, PrStarAnalytic)
{
    // Star 1..4 -> 0: leaves keep the base rank (1-d)/5; the center gets
    // base + d * 4 * leaf (leaves have out-degree 1).
    update({{1, 0, 1.0f}, {2, 0, 1.0f}, {3, 0, 1.0f}, {4, 0, 1.0f}});
    std::vector<Pr::Value> values;
    ctx_.prMaxIters = 200;
    ctx_.prTolerance = 1e-12;
    Pr::computeFs(g_, pool_, values, ctx_);
    const double base = 0.15 / 5;
    EXPECT_NEAR(values[1], base, 1e-9);
    EXPECT_NEAR(values[0], base + 0.85 * 4 * base, 1e-9);
}

TEST_F(AlgoEdgeCases, IncDuplicateOnlyBatchIsQuiescent)
{
    const std::vector<Edge> edges{{0, 1, 1.0f}, {1, 2, 1.0f}};
    update(edges);
    std::vector<Sssp::Value> values;
    incCompute<Sssp>(g_, pool_, values,
                     affectedVertices(EdgeBatch(edges), g_.numNodes()),
                     ctx_);
    const auto snapshot = values;
    update(edges); // pure duplicates
    incCompute<Sssp>(g_, pool_, values,
                     affectedVertices(EdgeBatch(edges), g_.numNodes()),
                     ctx_);
    EXPECT_EQ(values, snapshot);
}

/** The same stream through AS and the CSR baseline gives equal results. */
TEST(CrossBackend, AsAndCsrAgreeOnEveryAlgorithm)
{
    DynGraph<AdjSharedStore> as(/*directed=*/true);
    DynGraph<CsrStore> csr(/*directed=*/true);
    ThreadPool pool(2);
    for (int b = 0; b < 3; ++b) {
        const EdgeBatch batch = test::randomBatch(150, 700, 55 + b);
        as.update(batch, pool);
        csr.update(batch, pool);
    }
    AlgContext ctx;

    std::vector<Bfs::Value> b1, b2;
    Bfs::computeFs(as, pool, b1, ctx);
    Bfs::computeFs(csr, pool, b2, ctx);
    EXPECT_EQ(b1, b2);

    std::vector<Sssp::Value> s1, s2;
    Sssp::computeFs(as, pool, s1, ctx);
    Sssp::computeFs(csr, pool, s2, ctx);
    EXPECT_EQ(s1, s2);

    std::vector<Cc::Value> c1, c2;
    Cc::computeFs(as, pool, c1, ctx);
    Cc::computeFs(csr, pool, c2, ctx);
    EXPECT_EQ(c1, c2);

    std::vector<Pr::Value> p1, p2;
    Pr::computeFs(as, pool, p1, ctx);
    Pr::computeFs(csr, pool, p2, ctx);
    ASSERT_EQ(p1.size(), p2.size());
    for (std::size_t v = 0; v < p1.size(); ++v)
        EXPECT_NEAR(p1[v], p2[v], 1e-12) << "v=" << v;
}

} // namespace
} // namespace saga
