/**
 * @file
 * Compile-out probe for the telemetry layer: built with
 * SAGA_TELEMETRY_DISABLED (cmake -DSAGA_TELEMETRY=OFF) against its own
 * copies of telemetry.cc/perf_counters.cc — deliberately NOT linked
 * against the saga library, whose objects are built in the enabled mode
 * (mixing the two in one binary would be an ODR violation).
 *
 * Verifies the disabled-mode contract the hot paths rely on:
 *  - the macros reduce to no-ops and recording can never turn on;
 *  - PhaseScope still times under kAlwaysTime (BatchResult needs it);
 *  - the JSON writers still emit the full schema, flagged compiled_out.
 *
 * Exits 0 on success; prints the first failed check and exits 1 otherwise.
 */

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>

#include "telemetry/telemetry.h"

#ifndef SAGA_TELEMETRY_DISABLED
#error "this probe must be compiled with SAGA_TELEMETRY_DISABLED"
#endif

namespace {

int g_failures = 0;

void
check(bool ok, const std::string &what)
{
    if (!ok) {
        std::cerr << "FAIL: " << what << "\n";
        ++g_failures;
    }
}

} // namespace

int
main()
{
    using namespace saga::telemetry;

    // Recording is statically off; the setters must not resurrect it.
    setEnabled(true);
    setTraceEnabled(true);
    check(!enabled(), "enabled() must stay false when compiled out");
    check(!traceEnabled(), "traceEnabled() must stay false");
    check(!enablePerf(), "enablePerf() must report unavailable");
    check(!perfAvailable(), "perfAvailable() must stay false");

    // The macros must compile to nothing and leave no state behind.
    SAGA_COUNT(saga::telemetry::Counter::IngestBatches, 5);
    {
        SAGA_PHASE(saga::telemetry::Phase::Update);
    }
    const MetricsSnapshot snap = snapshot();
    check(snap.counters[static_cast<std::size_t>(
              Counter::IngestBatches)] == 0,
          "SAGA_COUNT must be a no-op");
    check(snap.phases[static_cast<std::size_t>(Phase::Update)].count == 0,
          "SAGA_PHASE must record nothing");
    check(traceSnapshot().empty(), "trace buffer must stay empty");

    // kAlwaysTime is the one behavior that survives: the streaming driver
    // derives BatchResult latencies from finish().
    PhaseScope scope(Phase::Update, PhaseScope::kAlwaysTime);
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 100000; ++i)
        sink = sink + 1;
    const double first = scope.finish();
    check(first > 0.0, "kAlwaysTime finish() must measure elapsed time");
    check(scope.finish() == first, "finish() must be idempotent");
    PhaseScope untimed(Phase::Update);
    check(untimed.finish() == 0.0,
          "finish() without kAlwaysTime must return 0");

    // Dumps keep the documented schema so tooling never needs a special
    // case for compiled-out builds.
    std::ostringstream metrics;
    writeMetricsJson(metrics);
    const std::string mjson = metrics.str();
    check(mjson.find("\"schema\": \"saga.telemetry\"") != std::string::npos,
          "metrics dump must carry the schema stamp");
    check(mjson.find("\"compiled_out\": true") != std::string::npos,
          "metrics dump must flag compiled_out");
    check(mjson.find("\"ingest.batches\": 0") != std::string::npos,
          "metrics dump must enumerate counters (zeros)");

    std::ostringstream trace;
    writeTraceJson(trace);
    const std::string tjson = trace.str();
    check(tjson.find("{\"traceEvents\":[") == 0,
          "trace dump must be Chrome trace_event JSON");
    check(tjson.find("\"schema\":\"saga.trace\"") != std::string::npos,
          "trace dump must carry the schema stamp");

    if (g_failures) {
        std::cerr << g_failures << " check(s) failed\n";
        return 1;
    }
    std::cout << "telemetry_disabled_probe: all checks passed\n";
    return 0;
}
