/** @file Platform substrate tests: spinlock, pool, parallel loops, RNG. */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "platform/parallel_for.h"
#include "platform/rng.h"
#include "platform/spinlock.h"
#include "platform/thread_pool.h"
#include "platform/timer.h"

namespace saga {
namespace {

TEST(SpinLock, MutualExclusionCounting)
{
    SpinLock lock;
    long counter = 0;
    constexpr int kThreads = 8;
    constexpr int kIters = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                SpinGuard hold(lock);
                ++counter;
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(counter, long(kThreads) * kIters);
}

TEST(SpinLock, TryLockReflectsState)
{
    SpinLock lock;
    EXPECT_TRUE(lock.try_lock());
    EXPECT_FALSE(lock.try_lock());
    lock.unlock();
    EXPECT_TRUE(lock.try_lock());
    lock.unlock();
}

TEST(SpinLock, CopyYieldsUnlockedIndependentLock)
{
    // Copying is construction-time-only (vector growth while quiescent):
    // the source must be free — copying a *held* lock asserts in debug
    // builds — and the copy starts unlocked, independent of the source.
    SpinLock a;
    SpinLock b(a);
    EXPECT_TRUE(b.try_lock());
    b.unlock();
    a.lock(); // locking the source must not affect the copy
    EXPECT_TRUE(b.try_lock());
    b.unlock();
    a.unlock();
}

TEST(ThreadPool, RunsEveryWorkerExactlyOnce)
{
    ThreadPool pool(5);
    EXPECT_EQ(pool.size(), 5u);
    std::vector<int> hits(5, 0);
    pool.run([&](std::size_t w) { ++hits[w]; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ReusableAcrossManyRuns)
{
    ThreadPool pool(3);
    std::atomic<int> total{0};
    for (int i = 0; i < 200; ++i)
        pool.run([&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 600);
}

TEST(ThreadPool, BarrierStressManyTinyRuns)
{
    // Hammer the spin-then-park wakeup/completion barrier with tasks far
    // shorter than the spin budget: every run() must still dispatch each
    // worker exactly once and the caller must never return early.
    ThreadPool pool(4);
    constexpr int kRuns = 20000;
    std::vector<long> per_worker(pool.size(), 0);
    for (int i = 0; i < kRuns; ++i)
        pool.run([&](std::size_t w) { ++per_worker[w]; });
    for (std::size_t w = 0; w < pool.size(); ++w)
        EXPECT_EQ(per_worker[w], kRuns) << "worker " << w;
}

TEST(ThreadPool, BarrierParkPathAfterIdleGaps)
{
    // Sleep between run() calls so workers exhaust their spin budget and
    // take the park/notify slow path; the next run() must wake them.
    ThreadPool pool(3);
    std::atomic<int> total{0};
    for (int i = 0; i < 5; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        pool.run([&](std::size_t) { total.fetch_add(1); });
    }
    EXPECT_EQ(total.load(), 15);
}

TEST(ThreadPool, CallerSeesAllTaskEffects)
{
    // Completion-barrier publication: plain (non-atomic) writes made by
    // workers must be visible to the caller after run() returns.
    ThreadPool pool(4);
    std::vector<std::vector<int>> data(pool.size());
    for (int i = 0; i < 500; ++i) {
        pool.run([&](std::size_t w) { data[w].push_back(i); });
        for (std::size_t w = 0; w < pool.size(); ++w) {
            ASSERT_EQ(data[w].size(), static_cast<std::size_t>(i + 1));
            ASSERT_EQ(data[w].back(), i);
        }
    }
}

TEST(ThreadPool, SingleWorkerRunsInline)
{
    ThreadPool pool(1);
    const auto caller = std::this_thread::get_id();
    std::thread::id seen;
    pool.run([&](std::size_t) { seen = std::this_thread::get_id(); });
    EXPECT_EQ(seen, caller);
}

TEST(ParallelFor, CoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(pool, 0, hits.size(),
                [&](std::uint64_t i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndSingletonRanges)
{
    ThreadPool pool(4);
    int count = 0;
    parallelFor(pool, 5, 5, [&](std::uint64_t) { ++count; });
    EXPECT_EQ(count, 0);
    parallelFor(pool, 7, 8, [&](std::uint64_t i) {
        EXPECT_EQ(i, 7u);
        ++count;
    });
    EXPECT_EQ(count, 1);
}

TEST(ParallelSlices, SlicesArePartition)
{
    ThreadPool pool(4);
    std::mutex m;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> slices;
    parallelSlices(pool, 10, 110,
                   [&](std::size_t, std::uint64_t lo, std::uint64_t hi) {
        std::lock_guard<std::mutex> hold(m);
        slices.emplace_back(lo, hi);
    });
    std::sort(slices.begin(), slices.end());
    EXPECT_EQ(slices.front().first, 10u);
    EXPECT_EQ(slices.back().second, 110u);
    for (std::size_t i = 1; i < slices.size(); ++i)
        EXPECT_EQ(slices[i].first, slices[i - 1].second);
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    bool diverged = false;
    for (int i = 0; i < 100; ++i) {
        const auto va = a();
        EXPECT_EQ(va, b());
        diverged |= (va != c());
    }
    EXPECT_TRUE(diverged);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t x = rng.below(17);
        ASSERT_LT(x, 17u);
        seen.insert(x);
    }
    EXPECT_EQ(seen.size(), 17u); // all residues hit
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Timer, MeasuresElapsedTime)
{
    Timer timer;
    double sink = 0;
    for (int i = 0; i < 100000; ++i)
        sink += i;
    asm volatile("" : : "g"(&sink) : "memory");
    EXPECT_GE(timer.seconds(), 0.0);
    const double before = timer.seconds();
    timer.reset();
    EXPECT_LE(timer.seconds(), before + 1.0);
}

} // namespace
} // namespace saga
