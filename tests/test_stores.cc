/**
 * @file
 * Store-concept conformance tests, typed over all four data structures
 * (plus the reference store itself), validated against the std::map
 * oracle: dedup, degrees, traversal completeness, growth, weights.
 */

#include <gtest/gtest.h>

#include "ds/adj_chunked.h"
#include "ds/adj_shared.h"
#include "ds/dah.h"
#include "ds/reference.h"
#include "ds/stinger.h"
#include "platform/thread_pool.h"
#include "test_util.h"

namespace saga {
namespace {

template <typename Store>
Store
makeStore()
{
    if constexpr (std::is_constructible_v<Store, std::size_t>) {
        return Store(4); // AC/DAH: 4 chunks; Stinger: 4-entry blocks
    } else {
        return Store();
    }
}

template <typename Store>
class StoreTest : public ::testing::Test
{
  protected:
    StoreTest() : store_(makeStore<Store>()), pool_(4) {}

    void
    update(const EdgeBatch &batch, bool reversed = false)
    {
        store_.updateBatch(batch, pool_, reversed);
        oracle_.updateBatch(batch, pool_, reversed);
    }

    void
    expectMatchesOracle()
    {
        ASSERT_EQ(store_.numNodes(), oracle_.numNodes());
        ASSERT_EQ(store_.numEdges(), oracle_.numEdges());
        for (NodeId v = 0; v < oracle_.numNodes(); ++v) {
            EXPECT_EQ(store_.degree(v), oracle_.degree(v)) << "v=" << v;
            EXPECT_EQ(test::sortedNeighbors(store_, v),
                      test::sortedNeighbors(oracle_, v))
                << "v=" << v;
        }
    }

    Store store_;
    ReferenceStore oracle_;
    ThreadPool pool_;
};

using StoreTypes =
    ::testing::Types<AdjSharedStore, AdjChunkedStore, StingerStore,
                     DahStore, ReferenceStore>;
TYPED_TEST_SUITE(StoreTest, StoreTypes);

TYPED_TEST(StoreTest, EmptyStore)
{
    EXPECT_EQ(this->store_.numNodes(), 0u);
    EXPECT_EQ(this->store_.numEdges(), 0u);
}

TYPED_TEST(StoreTest, SingleEdge)
{
    this->update(EdgeBatch({{1, 2, 5.0f}}));
    EXPECT_EQ(this->store_.numNodes(), 3u);
    EXPECT_EQ(this->store_.numEdges(), 1u);
    EXPECT_EQ(this->store_.degree(1), 1u);
    EXPECT_EQ(this->store_.degree(0), 0u);
    this->expectMatchesOracle();
}

TYPED_TEST(StoreTest, DuplicateEdgesIngestedUniquely)
{
    // Single worker so "first weight wins" is deterministic.
    ThreadPool serial(1);
    auto store = makeStore<TypeParam>();
    store.updateBatch(EdgeBatch({{1, 2, 5.0f}, {1, 2, 9.0f}, {1, 2, 5.0f}}),
                      serial, false);
    EXPECT_EQ(store.numEdges(), 1u);
    const auto nbrs = test::sortedNeighbors(store, 1);
    ASSERT_EQ(nbrs.size(), 1u);
    EXPECT_EQ(nbrs[0].node, 2u);
    EXPECT_EQ(nbrs[0].weight, 5.0f);
}

TYPED_TEST(StoreTest, DuplicateAcrossBatches)
{
    this->update(EdgeBatch({{3, 4, 1.0f}}));
    this->update(EdgeBatch({{3, 4, 2.0f}, {3, 5, 2.0f}}));
    EXPECT_EQ(this->store_.numEdges(), 2u);
    this->expectMatchesOracle();
}

TYPED_TEST(StoreTest, SelfLoopAllowed)
{
    this->update(EdgeBatch({{7, 7, 1.0f}}));
    EXPECT_EQ(this->store_.degree(7), 1u);
    this->expectMatchesOracle();
}

TYPED_TEST(StoreTest, ReversedIngestSwapsEndpoints)
{
    this->update(EdgeBatch({{1, 2, 5.0f}, {3, 1, 2.0f}}),
                 /*reversed=*/true);
    EXPECT_EQ(this->store_.degree(2), 1u);
    EXPECT_EQ(this->store_.degree(1), 1u);
    EXPECT_EQ(this->store_.degree(3), 0u);
    this->expectMatchesOracle();
}

TYPED_TEST(StoreTest, GrowsAcrossBatches)
{
    this->update(test::randomBatch(50, 200, 1));
    this->update(test::randomBatch(500, 400, 2));
    this->update(test::randomBatch(5000, 800, 3));
    this->expectMatchesOracle();
}

TYPED_TEST(StoreTest, RandomStreamMatchesOracle)
{
    for (int b = 0; b < 8; ++b)
        this->update(test::randomBatch(300, 1500, 100 + b));
    this->expectMatchesOracle();
}

TYPED_TEST(StoreTest, HubVertexManyNeighbors)
{
    // One vertex receives edges to many distinct targets (heavy tail).
    std::vector<Edge> edges;
    for (NodeId i = 0; i < 600; ++i)
        edges.push_back({0, i + 1, static_cast<Weight>(i % 7 + 1)});
    this->update(EdgeBatch(std::move(edges)));
    EXPECT_EQ(this->store_.degree(0), 600u);
    this->expectMatchesOracle();
}

TYPED_TEST(StoreTest, DenseSmallGraphAllPairs)
{
    std::vector<Edge> edges;
    for (NodeId s = 0; s < 30; ++s) {
        for (NodeId d = 0; d < 30; ++d)
            edges.push_back({s, d, 1.0f});
    }
    this->update(EdgeBatch(std::move(edges)));
    EXPECT_EQ(this->store_.numEdges(), 900u);
    this->expectMatchesOracle();
}

TYPED_TEST(StoreTest, WeightsPreserved)
{
    this->update(EdgeBatch({{0, 1, 3.5f}, {0, 2, 7.25f}, {1, 2, 0.5f}}));
    this->expectMatchesOracle();
    const auto nbrs = test::sortedNeighbors(this->store_, 0);
    ASSERT_EQ(nbrs.size(), 2u);
    EXPECT_EQ(nbrs[0].weight, 3.5f);
    EXPECT_EQ(nbrs[1].weight, 7.25f);
}

TYPED_TEST(StoreTest, EmptyBatchIsNoop)
{
    this->update(EdgeBatch({{1, 2, 1.0f}}));
    this->update(EdgeBatch());
    EXPECT_EQ(this->store_.numEdges(), 1u);
    this->expectMatchesOracle();
}

/**
 * Concurrency stress: many workers hammer overlapping batches with heavy
 * duplication and a hot hub vertex; the result must still exactly match
 * the single-threaded oracle.
 */
TYPED_TEST(StoreTest, ConcurrentStressMatchesOracle)
{
    ThreadPool wide(8);
    auto store = makeStore<TypeParam>();
    ReferenceStore oracle;
    ThreadPool serial(1);

    for (int b = 0; b < 6; ++b) {
        // 40% of edges source from a single hub to few targets ->
        // intra-vertex contention plus heavy duplication.
        Rng rng(777 + b);
        std::vector<Edge> edges;
        for (int i = 0; i < 4000; ++i) {
            NodeId src, dst;
            if (rng.below(10) < 4) {
                src = 5;
                dst = static_cast<NodeId>(rng.below(900));
            } else {
                src = static_cast<NodeId>(rng.below(200));
                dst = static_cast<NodeId>(rng.below(200));
            }
            // Weight is a pure function of (src, dst) so racing duplicate
            // inserts cannot make the surviving weight nondeterministic.
            edges.push_back({src, dst,
                             static_cast<Weight>((src * 31 + dst) % 9 + 1)});
        }
        EdgeBatch batch(std::move(edges));
        store.updateBatch(batch, wide, false);
        oracle.updateBatch(batch, serial, false);
    }

    ASSERT_EQ(store.numEdges(), oracle.numEdges());
    for (NodeId v = 0; v < oracle.numNodes(); ++v) {
        ASSERT_EQ(test::sortedNeighbors(store, v),
                  test::sortedNeighbors(oracle, v))
            << "v=" << v;
    }
}

/**
 * Contention focus: the same duplicate-heavy batch is ingested repeatedly
 * by a wide pool. Each edge occurs ~8 times with different weights, so
 * racing inserts must both dedup (numEdges == unique-edge count) and
 * resolve every duplicate to the minimum weight.
 */
TYPED_TEST(StoreTest, RepeatedDuplicateHeavyIngestionKeepsMinWeights)
{
    ThreadPool wide(8);
    ThreadPool serial(1);
    auto store = makeStore<TypeParam>();
    ReferenceStore oracle;

    Rng rng(4242);
    std::vector<Edge> edges;
    for (int i = 0; i < 3000; ++i) {
        const NodeId src = static_cast<NodeId>(rng.below(20));
        const NodeId dst = static_cast<NodeId>(rng.below(20));
        // Per-occurrence weights: the surviving weight must be the min,
        // not whichever racing insert appended first.
        edges.push_back({src, dst, static_cast<Weight>(rng.below(89) + 1)});
    }
    const EdgeBatch batch(std::move(edges));

    for (int round = 0; round < 4; ++round) {
        store.updateBatch(batch, wide, false);
        oracle.updateBatch(batch, serial, false);
    }

    ASSERT_LE(oracle.numEdges(), 400u); // key space bound: really dup-heavy
    ASSERT_EQ(store.numEdges(), oracle.numEdges());
    for (NodeId v = 0; v < oracle.numNodes(); ++v) {
        ASSERT_EQ(test::sortedNeighbors(store, v),
                  test::sortedNeighbors(oracle, v))
            << "v=" << v;
    }
}

/**
 * Sentinel boundary: edges carrying kInvalidNode are rejected at batch
 * construction, so a batch of sentinels is a no-op instead of wrapping
 * ensureNodes(maxNode() + 1) to zero and indexing out of bounds.
 */
TYPED_TEST(StoreTest, SentinelIdsDoNotCorruptStore)
{
    this->update(EdgeBatch({{1, 2, 1.0f}}));
    this->update(EdgeBatch({{kInvalidNode, 4, 1.0f},
                            {4, kInvalidNode, 1.0f},
                            {kInvalidNode, kInvalidNode, 1.0f}}));
    EXPECT_EQ(this->store_.numEdges(), 1u);
    EXPECT_EQ(this->store_.numNodes(), 3u);
    this->expectMatchesOracle();
}

} // namespace
} // namespace saga
