/**
 * @file
 * Tier-boundary property tests for the hybrid store (DESIGN.md §12):
 * degrees exactly at/around the T0→T1 and T1→T2 thresholds, duplicate
 * floods on hubs, PSL-limit eviction cascades in the hub table, slab
 * allocator alignment/reuse, the staged-apply contract, and the
 * hybrid.* telemetry counters.
 */

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "ds/dyn_graph.h"
#include "ds/hybrid.h"
#include "platform/thread_pool.h"
#include "saga/partitioned_batch.h"
#include "saga/staged_apply.h"
#include "telemetry/telemetry.h"
#include "test_util.h"

namespace saga {
namespace {

// The hybrid store must be a first-class citizen of both ingest
// pipelines and the staged (overlap) pipeline.
static_assert(kChunkOwnedAppend<HybridStore>,
              "hybrid must expose the chunk-owned append hooks");
static_assert(kStageableStore<HybridStore>,
              "hybrid must be stageable for the pipelined driver");
static_assert(detail::kHasFindWeight<HybridStore>,
              "hybrid should expose the stage classifier's point lookup");

/** Distinct-destination edge (v -> base + k) with a deterministic weight. */
Edge
edgeTo(NodeId v, NodeId dst)
{
    return {v, dst, static_cast<Weight>(dst % 13 + 1)};
}

class HybridTierTest : public ::testing::Test
{
  protected:
    /** Single-chunk store so one vertex's promotions are easy to watch. */
    HybridStore
    makeStore(std::uint32_t t1_max, std::uint32_t psl_limit = 24)
    {
        HybridConfig cfg;
        cfg.t1MaxDegree = t1_max;
        cfg.pslLimit = psl_limit;
        return HybridStore(1, cfg);
    }

    /** Insert @p count distinct edges from @p v (dsts 1000..1000+count). */
    void
    fill(HybridStore &store, NodeId v, std::uint32_t count)
    {
        store.ensureNodes(std::max<NodeId>(v + 1, 1000 + count));
        store.declareChunksOwned(); // single-threaded: quiescent owner
        for (std::uint32_t k = 0; k < count; ++k) {
            const Edge e = edgeTo(v, 1000 + k);
            ASSERT_TRUE(store.insertOwned(e.src, e.dst, e.weight));
        }
    }
};

TEST_F(HybridTierTest, T0BoundaryAtInlineCapacity)
{
    HybridStore store = makeStore(32);
    fill(store, 5, HybridStore::kInlineCap); // exactly full inline slot
    EXPECT_EQ(store.degree(5), HybridStore::kInlineCap);
    EXPECT_EQ(store.numT0Vertices(), 1u);
    EXPECT_EQ(store.numT1Vertices(), 0u);
    EXPECT_EQ(store.t1CapacityOf(5), 0u);

    // One more edge crosses the T0→T1 boundary.
    store.declareChunksOwned();
    ASSERT_TRUE(store.insertOwned(5, 2000, 1.0f));
    EXPECT_EQ(store.degree(5), HybridStore::kInlineCap + 1);
    EXPECT_EQ(store.numT0Vertices(), 0u);
    EXPECT_EQ(store.numT1Vertices(), 1u);
    EXPECT_EQ(store.t1CapacityOf(5), HybridSlabAllocator::kMinBlock);
    EXPECT_EQ(store.numEdges(), HybridStore::kInlineCap + 1);
}

TEST_F(HybridTierTest, T1DoublesThenPromotesToT2AtThreshold)
{
    HybridStore store = makeStore(/*t1_max=*/32);
    EXPECT_EQ(store.t1Cap(), 32u);

    fill(store, 5, 16); // fills the first T1 block exactly
    EXPECT_EQ(store.t1CapacityOf(5), 16u);
    store.declareChunksOwned();
    ASSERT_TRUE(store.insertOwned(5, 3000, 1.0f)); // 17th → grow to 32
    EXPECT_EQ(store.t1CapacityOf(5), 32u);
    EXPECT_EQ(store.numT1Vertices(), 1u);
    EXPECT_EQ(store.numT2Vertices(), 0u);

    // Fill T1 to its max capacity; still not a hub.
    for (NodeId k = 0; store.degree(5) < 32; ++k) {
        store.declareChunksOwned();
        store.insertOwned(5, 4000 + k, 1.0f);
    }
    EXPECT_EQ(store.numT2Vertices(), 0u);

    // Edge 33 crosses the T1→T2 boundary.
    store.declareChunksOwned();
    ASSERT_TRUE(store.insertOwned(5, 9000, 1.0f));
    EXPECT_EQ(store.degree(5), 33u);
    EXPECT_EQ(store.numT1Vertices(), 0u);
    EXPECT_EQ(store.numT2Vertices(), 1u);

    // All 33 distinct destinations survived the cascade of migrations.
    EXPECT_EQ(test::sortedNeighbors(store, 5).size(), 33u);
    EXPECT_EQ(store.numEdges(), 33u);
}

TEST_F(HybridTierTest, DuplicatesKeepMinWeightAcrossAllTiers)
{
    HybridStore store = makeStore(/*t1_max=*/16);
    store.ensureNodes(100000);
    store.declareChunksOwned();

    // Grow vertex 7 through every tier, re-offering one probe edge with
    // varying weights at each stage.
    ASSERT_TRUE(store.insertOwned(7, 42, 5.0f)); // T0
    EXPECT_FALSE(store.insertOwned(7, 42, 9.0f));
    EXPECT_FALSE(store.insertOwned(7, 42, 3.0f)); // min drops to 3

    for (NodeId k = 0; k < 10; ++k) // push into T1
        store.insertOwned(7, 1000 + k, 1.0f);
    EXPECT_EQ(store.numT1Vertices(), 1u);
    EXPECT_FALSE(store.insertOwned(7, 42, 8.0f));
    EXPECT_FALSE(store.insertOwned(7, 42, 2.0f)); // min drops to 2

    for (NodeId k = 0; k < 30; ++k) // push into T2
        store.insertOwned(7, 2000 + k, 1.0f);
    EXPECT_EQ(store.numT2Vertices(), 1u);
    EXPECT_FALSE(store.insertOwned(7, 42, 7.0f));
    EXPECT_FALSE(store.insertOwned(7, 42, 0.5f)); // min drops to 0.5

    bool found = false;
    EXPECT_EQ(store.findWeight(7, 42, found), 0.5f);
    EXPECT_TRUE(found);
    EXPECT_EQ(store.degree(7), 41u);
    EXPECT_EQ(store.numEdges(), 41u);
}

TEST_F(HybridTierTest, DuplicateFloodOnHubLeavesStateUntouched)
{
    HybridStore store = makeStore(/*t1_max=*/16);
    fill(store, 9, 200); // deep into T2
    ASSERT_EQ(store.numT2Vertices(), 1u);
    const auto before = test::sortedNeighbors(store, 9);
    const std::uint64_t edges_before = store.numEdges();

    store.declareChunksOwned();
    for (int round = 0; round < 3; ++round) {
        for (std::uint32_t k = 0; k < 200; ++k) {
            const Edge e = edgeTo(9, 1000 + k);
            EXPECT_FALSE(store.insertOwned(e.src, e.dst, e.weight));
        }
    }
    EXPECT_EQ(store.degree(9), 200u);
    EXPECT_EQ(store.numEdges(), edges_before);
    EXPECT_EQ(test::sortedNeighbors(store, 9), before);
}

TEST_F(HybridTierTest, FindWeightMatchesForNeighborsAcrossTiers)
{
    for (std::uint32_t degree : {3u, 12u, 40u, 300u}) {
        HybridStore store = makeStore(/*t1_max=*/16);
        fill(store, 1, degree);
        bool found = false;
        for (std::uint32_t k = 0; k < degree; ++k) {
            const Edge e = edgeTo(1, 1000 + k);
            EXPECT_EQ(store.findWeight(1, e.dst, found), e.weight);
            EXPECT_TRUE(found);
        }
        store.findWeight(1, 999, found);
        EXPECT_FALSE(found);
        store.findWeight(2, 1000, found); // untouched vertex
        EXPECT_FALSE(found);
    }
}

TEST_F(HybridTierTest, BlockIterationMatchesForNeighbors)
{
    for (std::uint32_t degree : {0u, 5u, 7u, 8u, 16u, 33u, 500u}) {
        HybridStore store = makeStore(/*t1_max=*/32);
        if (degree > 0)
            fill(store, 3, degree);
        else
            store.ensureNodes(4);

        std::vector<Neighbor> via_blocks;
        store.forNeighborsBlock(3, [&](const Neighbor *run,
                                       std::uint32_t len) {
            for (std::uint32_t i = 0; i < len; ++i)
                via_blocks.push_back(run[i]);
            return true;
        });
        std::sort(via_blocks.begin(), via_blocks.end(),
                  [](const Neighbor &a, const Neighbor &b) {
                      return a.node < b.node;
                  });
        EXPECT_EQ(via_blocks, test::sortedNeighbors(store, 3))
            << "degree=" << degree;
    }
}

TEST_F(HybridTierTest, BlockIterationEarlyStop)
{
    HybridStore store = makeStore(/*t1_max=*/16);
    fill(store, 3, 400); // T2: many runs
    std::uint32_t calls = 0;
    store.forNeighborsBlock(3, [&](const Neighbor *, std::uint32_t) {
        ++calls;
        return false; // stop after the first run
    });
    EXPECT_EQ(calls, 1u);
}

// ---------------------------------------------------------------------------
// Hub table: bounded PSL + eviction-cascade grows.

TEST(HybridHubTable, PslNeverExceedsLimitUnderCascades)
{
    // A tiny PSL limit forces repeated grow-and-rehash cascades; the
    // bound must hold at every step and no edge may be lost.
    HybridHubTable table(/*initial_capacity=*/64, /*psl_limit=*/2);
    std::set<NodeId> inserted;
    for (NodeId k = 0; k < 5000; ++k) {
        const NodeId dst = k * 2654435761u % 100000;
        if (inserted.insert(dst).second)
            ASSERT_TRUE(table.insertUnique(dst, 1.0f)) << "dst=" << dst;
        else
            ASSERT_FALSE(table.insertUnique(dst, 1.0f)) << "dst=" << dst;
        ASSERT_LE(table.maxPsl(), 2u);
    }
    EXPECT_EQ(table.size(), inserted.size());
    for (NodeId dst : inserted)
        EXPECT_NE(table.find(dst), nullptr) << "dst=" << dst;
}

TEST(HybridHubTable, ForRunsCoversEveryOccupiedSlotOnce)
{
    HybridHubTable table(64, 24);
    for (NodeId k = 0; k < 777; ++k)
        table.insertUnique(k * 7919, static_cast<Weight>(k % 5 + 1));

    std::multiset<NodeId> via_runs, via_all;
    table.forRuns([&](const Neighbor *run, std::uint32_t len) {
        for (std::uint32_t i = 0; i < len; ++i)
            via_runs.insert(run[i].node);
        return true;
    });
    table.forAll([&](const Neighbor &nbr) { via_all.insert(nbr.node); });
    EXPECT_EQ(via_runs.size(), table.size());
    EXPECT_EQ(via_runs, via_all);
}

TEST(HybridHubTable, FindIsBoundedAndExact)
{
    HybridHubTable table(64, 8);
    for (NodeId k = 0; k < 300; ++k)
        table.insertUnique(k, static_cast<Weight>(k + 1));
    for (NodeId k = 0; k < 300; ++k) {
        const Neighbor *hit = table.find(k);
        ASSERT_NE(hit, nullptr) << "k=" << k;
        EXPECT_EQ(hit->weight, static_cast<Weight>(k + 1));
    }
    EXPECT_EQ(table.find(301), nullptr);
    EXPECT_LE(table.maxPsl(), 8u);
}

// ---------------------------------------------------------------------------
// Slab allocator: cache-line alignment and block reuse.

TEST(HybridSlabAllocator, BlocksAreCacheLineAligned)
{
    HybridSlabAllocator slab;
    for (std::uint32_t cap : {16u, 32u, 64u, 128u, 16u, 32u}) {
        Neighbor *block = slab.allocate(cap);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(block) % 64, 0u)
            << "cap=" << cap;
    }
}

TEST(HybridSlabAllocator, ReleasedBlocksAreRecycled)
{
    HybridSlabAllocator slab;
    Neighbor *a = slab.allocate(32);
    slab.release(a, 32);
    EXPECT_EQ(slab.allocate(32), a); // same class → same block back
    EXPECT_EQ(slab.numSlabs(), 1u);

    // Churning grow-release cycles must not consume fresh slab space.
    for (int i = 0; i < 10000; ++i) {
        Neighbor *b = slab.allocate(64);
        slab.release(b, 64);
    }
    EXPECT_EQ(slab.numSlabs(), 1u);
}

// ---------------------------------------------------------------------------
// Staged-apply contract: stage + publish must equal serial insert.

TEST(HybridStagedApply, PublishMatchesSerialApply)
{
    ThreadPool pool(4);
    const std::size_t chunks = 4;
    HybridConfig cfg;
    cfg.t1MaxDegree = 16; // low thresholds: promotions inside publish
    HybridStore serial(chunks, cfg), staged(chunks, cfg);
    StagedApply<HybridStore> apply;
    PartitionedBatch parts;

    for (int b = 0; b < 6; ++b) {
        EdgeBatch batch = test::randomBatch(150, 4000, 113 + b);
        parts.build(batch, pool, chunks);
        serial.updateBatch(parts, pool, /*reversed=*/false);
        apply.stage(staged, parts, /*reversed=*/false, pool);
        apply.publish(staged, pool);
    }

    ASSERT_EQ(staged.numNodes(), serial.numNodes());
    ASSERT_EQ(staged.numEdges(), serial.numEdges());
    for (NodeId v = 0; v < serial.numNodes(); ++v) {
        ASSERT_EQ(staged.degree(v), serial.degree(v)) << "v=" << v;
        ASSERT_EQ(test::sortedNeighbors(staged, v),
                  test::sortedNeighbors(serial, v))
            << "v=" << v;
    }
    // The low thresholds above must actually have exercised promotion
    // inside the publish window for the test to mean anything.
    EXPECT_GT(staged.numT2Vertices(), 0u);
}

// ---------------------------------------------------------------------------
// Telemetry: tier-occupancy counters and the probe-length high-water mark.

class HybridTelemetryTest : public ::testing::Test
{
  protected:
    void SetUp() override { quiesce(); }
    void TearDown() override { quiesce(); }

    static void quiesce()
    {
        telemetry::setEnabled(false);
        telemetry::setTraceEnabled(false);
        telemetry::reset();
    }

    static std::uint64_t
    counter(const telemetry::MetricsSnapshot &snap, telemetry::Counter c)
    {
        return snap.counters[static_cast<std::size_t>(c)];
    }
};

TEST_F(HybridTelemetryTest, TierCountersMatchStoreOccupancy)
{
    telemetry::setEnabled(true);

    ThreadPool pool(4);
    HybridConfig cfg;
    cfg.t1MaxDegree = 16;
    HybridStore store(4, cfg);
    PartitionedBatch parts;
    for (int b = 0; b < 4; ++b) {
        const EdgeBatch batch = test::randomBatch(120, 6000, 131 + b);
        parts.build(batch, pool, store.numChunks());
        store.updateBatch(parts, pool, /*reversed=*/false);
    }

    const telemetry::MetricsSnapshot snap = telemetry::snapshot();
    using telemetry::Counter;
    // Every touched vertex was born in T0.
    EXPECT_EQ(counter(snap, Counter::HybridT0Vertices),
              store.numT0Vertices() + store.numT1Vertices() +
                  store.numT2Vertices());
    // One-way promotion: tier counters are promotion events, so current
    // occupancy is derivable (T1 promotions that later became T2 hubs).
    EXPECT_EQ(counter(snap, Counter::HybridT1Vertices),
              store.numT1Vertices() + store.numT2Vertices());
    EXPECT_EQ(counter(snap, Counter::HybridT2Vertices),
              store.numT2Vertices());
    EXPECT_EQ(counter(snap, Counter::HybridPromotions),
              counter(snap, Counter::HybridT1Vertices) +
                  counter(snap, Counter::HybridT2Vertices));
    EXPECT_GT(counter(snap, Counter::HybridT2Vertices), 0u);
    // The probe high-water mark is max-aggregated and bounded by the
    // PSL limit.
    EXPECT_EQ(counter(snap, Counter::HybridProbeLenMax),
              store.maxProbeLen());
    EXPECT_LE(counter(snap, Counter::HybridProbeLenMax), cfg.pslLimit);
    // Ingest invariant holds for the hybrid insert path too.
    EXPECT_EQ(counter(snap, Counter::IngestEdgesSeen),
              counter(snap, Counter::IngestEdgesInserted) +
                  counter(snap, Counter::IngestDuplicates));
}

TEST_F(HybridTelemetryTest, CountMaxAggregatesByMaximum)
{
    telemetry::setEnabled(true);
    using telemetry::Counter;
    SAGA_COUNT_MAX(telemetry::Counter::HybridProbeLenMax, 7);
    SAGA_COUNT_MAX(telemetry::Counter::HybridProbeLenMax, 3); // no-op
    telemetry::MetricsSnapshot snap = telemetry::snapshot();
    EXPECT_EQ(counter(snap, Counter::HybridProbeLenMax), 7u);

    // Other threads' smaller high-water marks must not sum into it.
    ThreadPool pool(4);
    pool.run([&](std::size_t w) {
        SAGA_COUNT_MAX(telemetry::Counter::HybridProbeLenMax,
                       static_cast<std::uint64_t>(w + 1));
    });
    snap = telemetry::snapshot();
    EXPECT_EQ(counter(snap, Counter::HybridProbeLenMax), 7u);
}

} // namespace
} // namespace saga
