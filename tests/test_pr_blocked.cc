/**
 * @file
 * Locality-aware PageRank tests: every PrVariant (pull / blocked /
 * hybrid / auto) must match the serial push-iteration oracle across all
 * 4 stores × directed/undirected × thread counts, including the
 * degenerate shapes the variants treat specially (dangling vertices,
 * a single dominant hub, empty graphs); plus unit coverage for the
 * DestBins slab structure and the PaddedAccumulator false-sharing
 * guard, and dispatch checks that the pinned variants actually take
 * their own round types.
 */

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "algo/pr.h"
#include "ds/adj_chunked.h"
#include "ds/adj_shared.h"
#include "ds/dah.h"
#include "ds/hybrid.h"
#include "ds/dyn_graph.h"
#include "ds/stinger.h"
#include "platform/dest_bins.h"
#include "platform/padded.h"
#include "platform/thread_pool.h"
#include "reference_algos.h"
#include "telemetry/telemetry.h"
#include "test_util.h"

namespace saga {
namespace {

constexpr PrVariant kAllVariants[] = {PrVariant::Auto, PrVariant::Pull,
                                      PrVariant::Blocked,
                                      PrVariant::Hybrid};

const char *
variantName(PrVariant v)
{
    switch (v) {
    case PrVariant::Auto:
        return "auto";
    case PrVariant::Pull:
        return "pull";
    case PrVariant::Blocked:
        return "blocked";
    case PrVariant::Hybrid:
        return "hybrid";
    }
    return "?";
}

template <typename Store>
DynGraph<Store>
makeGraph(bool directed, std::size_t chunks)
{
    if constexpr (std::is_constructible_v<Store, std::size_t>) {
        return DynGraph<Store>(directed, chunks); // AC, DAH, Stinger(block)
    } else {
        (void)chunks;
        return DynGraph<Store>(directed); // AS, Reference
    }
}

/** The graph's out-adjacency as the refPr oracle input (undirected
    graphs already hold both orientations in the out store). */
template <typename Graph>
test::AdjList
oracleAdj(const Graph &g)
{
    test::AdjList adj(g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v)
        adj[v] = test::sortedOut(g, v);
    return adj;
}

template <typename Store>
class PrBlockedTest : public ::testing::Test
{
  protected:
    static constexpr std::size_t kChunks = 4;

    /**
     * All variants vs the push oracle, at several thread counts. The
     * ctx tweaks force the interesting machinery even on test-sized
     * graphs: a tiny prResidentBytes makes Auto leave the pull path,
     * a small prBinBytes gives the blocked path several bins, and a
     * low prHubFactor makes the hybrid actually split hubs.
     */
    void
    expectAllVariantsMatchOracle(const std::vector<EdgeBatch> &batches,
                                 bool directed)
    {
        DynGraph<Store> g = makeGraph<Store>(directed, kChunks);
        {
            ThreadPool build_pool(4);
            for (const EdgeBatch &batch : batches)
                g.update(batch, build_pool);
        }
        AlgContext ctx;
        ctx.numNodesHint = g.numNodes();
        ctx.prResidentBytes = 256;   // Auto must not hide the new paths
        ctx.prBinBytes = 1024;       // 128 ranks per bin: several bins
        ctx.prHubFactor = 2.0;       // hub split engages on skewed graphs
        const auto expected =
            test::refPr(oracleAdj(g), g.numNodes(), ctx.damping,
                        ctx.prTolerance, ctx.prMaxIters);

        for (std::size_t threads : {1u, 3u, 8u}) {
            ThreadPool pool(threads);
            for (PrVariant variant : kAllVariants) {
                ctx.prVariant = variant;
                std::vector<Pr::Value> values;
                Pr::computeFs(g, pool, values, ctx);
                ASSERT_EQ(values.size(), expected.size());
                double l1 = 0;
                for (NodeId v = 0; v < g.numNodes(); ++v)
                    l1 += std::fabs(values[v] - expected[v]);
                // Pull/blocked/push iterations stop at slightly
                // different points; all are within the convergence
                // tolerance of the true ranks.
                EXPECT_LT(l1, 4 * ctx.prTolerance)
                    << "variant=" << variantName(variant)
                    << " threads=" << threads << " directed=" << directed;
            }
        }
    }
};

using PrStores = ::testing::Types<AdjSharedStore, AdjChunkedStore,
                                  StingerStore, DahStore, HybridStore>;
TYPED_TEST_SUITE(PrBlockedTest, PrStores);

TYPED_TEST(PrBlockedTest, RandomDirected)
{
    this->expectAllVariantsMatchOracle({test::randomBatch(150, 600, 11),
                                        test::randomBatch(150, 600, 12)},
                                       /*directed=*/true);
}

TYPED_TEST(PrBlockedTest, RandomUndirected)
{
    this->expectAllVariantsMatchOracle({test::randomBatch(150, 600, 21)},
                                       /*directed=*/false);
}

TYPED_TEST(PrBlockedTest, DanglingNodes)
{
    // A directed star INTO vertex 0 plus a small chain: vertex 0 and the
    // chain tail are dangling (out-degree 0), so their rank mass leaves
    // the system — inv[v] = 0 must match the oracle's skip of empty
    // out-rows, on every variant.
    std::vector<Edge> edges;
    for (NodeId v = 1; v < 40; ++v)
        edges.push_back({v, 0, 1.0f});
    edges.push_back({40, 41, 1.0f});
    edges.push_back({41, 42, 1.0f});
    this->expectAllVariantsMatchOracle({EdgeBatch(std::move(edges))},
                                       /*directed=*/true);
}

TYPED_TEST(PrBlockedTest, SingleDominantHub)
{
    // One vertex receives nearly every edge: the hybrid's hub split must
    // classify it and pull it contiguously while the tail goes through
    // the bins; the blocked path funnels almost all pairs into one bin.
    std::vector<Edge> edges;
    for (NodeId v = 1; v < 120; ++v) {
        edges.push_back({v, 0, 1.0f});
        edges.push_back({0, v, 1.0f});
        if (v % 7 == 0)
            edges.push_back({v, v / 7, 1.0f});
    }
    this->expectAllVariantsMatchOracle({EdgeBatch(std::move(edges))},
                                       /*directed=*/true);
}

TYPED_TEST(PrBlockedTest, EmptyAndEdgelessGraphs)
{
    ThreadPool pool(2);
    AlgContext ctx;
    for (PrVariant variant : kAllVariants) {
        ctx.prVariant = variant;
        {
            DynGraph<TypeParam> g =
                makeGraph<TypeParam>(true, this->kChunks);
            std::vector<Pr::Value> values{1.0, 2.0}; // stale, must clear
            Pr::computeFs(g, pool, values, ctx);
            EXPECT_TRUE(values.empty())
                << "variant=" << variantName(variant);
        }
        {
            // Vertices but no edges: everyone keeps the base rank.
            DynGraph<TypeParam> g =
                makeGraph<TypeParam>(true, this->kChunks);
            ThreadPool build_pool(2);
            g.update(EdgeBatch({{0, 4, 1.0f}}), build_pool);
            ctx.numNodesHint = g.numNodes();
            std::vector<Pr::Value> values;
            Pr::computeFs(g, pool, values, ctx);
            ASSERT_EQ(values.size(), 5u);
            const double base = (1.0 - ctx.damping) / 5;
            // Vertices 1..3 have no in-edges at all.
            EXPECT_NEAR(values[1], base, 1e-12)
                << "variant=" << variantName(variant);
        }
    }
}

/** Blocked and hybrid must agree with pull bit-for-bit in iteration
    count, so rank agreement is much tighter than the oracle bound. */
TYPED_TEST(PrBlockedTest, VariantsAgreeTightly)
{
    ThreadPool pool(4);
    DynGraph<TypeParam> g = makeGraph<TypeParam>(true, this->kChunks);
    g.update(test::randomBatch(200, 1200, 31), pool);

    AlgContext ctx;
    ctx.numNodesHint = g.numNodes();
    ctx.prBinBytes = 1024;
    ctx.prHubFactor = 2.0;

    ctx.prVariant = PrVariant::Pull;
    std::vector<Pr::Value> pull;
    Pr::computeFs(g, pool, pull, ctx);

    for (PrVariant variant : {PrVariant::Blocked, PrVariant::Hybrid}) {
        ctx.prVariant = variant;
        std::vector<Pr::Value> values;
        Pr::computeFs(g, pool, values, ctx);
        ASSERT_EQ(values.size(), pull.size());
        for (NodeId v = 0; v < g.numNodes(); ++v)
            EXPECT_NEAR(values[v], pull[v], 1e-12)
                << "variant=" << variantName(variant) << " v=" << v;
    }
}

#ifndef SAGA_TELEMETRY_DISABLED
/** The pinned variants must take their own round types, and Auto must
    respect the prResidentBytes / prHybridAvgDegree crossovers. */
TYPED_TEST(PrBlockedTest, VariantDispatch)
{
    ThreadPool pool(2);
    DynGraph<TypeParam> g = makeGraph<TypeParam>(true, this->kChunks);
    g.update(test::randomBatch(100, 500, 41), pool);

    telemetry::setEnabled(true);
    using C = telemetry::Counter;
    const auto counter = [](C c) {
        return telemetry::snapshot().counters[static_cast<std::size_t>(c)];
    };
    const auto rounds = [&](AlgContext ctx) {
        ctx.numNodesHint = g.numNodes();
        const std::uint64_t pull0 = counter(C::PrPullRounds);
        const std::uint64_t blocked0 = counter(C::PrBlockedRounds);
        const std::uint64_t hub0 = counter(C::PrHubVertices);
        std::vector<Pr::Value> values;
        Pr::computeFs(g, pool, values, ctx);
        return std::array<std::uint64_t, 3>{
            counter(C::PrPullRounds) - pull0,
            counter(C::PrBlockedRounds) - blocked0,
            counter(C::PrHubVertices) - hub0};
    };

    AlgContext ctx;
    ctx.prVariant = PrVariant::Pull;
    auto r = rounds(ctx);
    EXPECT_GT(r[0], 0u);
    EXPECT_EQ(r[1], 0u);

    ctx.prVariant = PrVariant::Blocked;
    r = rounds(ctx);
    EXPECT_EQ(r[0], 0u);
    EXPECT_GT(r[1], 0u);
    EXPECT_EQ(r[2], 0u); // no hub split on the pure blocked path

    ctx.prVariant = PrVariant::Hybrid;
    ctx.prHubFactor = 1.0; // guarantee a nonempty hub set
    r = rounds(ctx);
    EXPECT_GT(r[1], 0u);
    EXPECT_GT(r[2], 0u);

    // Auto on a cache-resident graph: plain pull.
    ctx = AlgContext{};
    ctx.prVariant = PrVariant::Auto;
    r = rounds(ctx);
    EXPECT_GT(r[0], 0u);
    EXPECT_EQ(r[1], 0u);

    // Auto with a tiny residency budget and sparse graph: blocked.
    ctx.prResidentBytes = 16;
    ctx.prHybridAvgDegree = 1e9;
    r = rounds(ctx);
    EXPECT_EQ(r[0], 0u);
    EXPECT_GT(r[1], 0u);
    EXPECT_EQ(r[2], 0u);

    // ... and with a low dense crossover: hybrid (the hub factor must
    // come down too — this uniform graph has no 8×-average hubs).
    ctx.prHybridAvgDegree = 0.0;
    ctx.prHubFactor = 1.0;
    r = rounds(ctx);
    EXPECT_GT(r[1], 0u);
    EXPECT_GT(r[2], 0u);
}
#endif // SAGA_TELEMETRY_DISABLED

// ---------------------------------------------------------------------------
// DestBins unit coverage
// ---------------------------------------------------------------------------

using Pair = pr_detail::DestContrib;

TEST(DestBinsTest, RoundTripAcrossLanesAndBins)
{
    DestBins<Pair> bins;
    bins.configure(/*workers=*/3, /*bins=*/4, /*slab_pairs=*/8);
    EXPECT_EQ(bins.numBins(), 4u);
    EXPECT_EQ(bins.workers(), 3u);
    bins.beginRound();

    // 3 lanes × 4 bins × 20 pairs: every lane spills its first slab.
    for (std::size_t w = 0; w < 3; ++w)
        for (std::uint32_t b = 0; b < 4; ++b)
            for (std::uint32_t i = 0; i < 20; ++i)
                bins.append(w, b,
                            {static_cast<NodeId>(b * 100 + i),
                             static_cast<double>(w + 1)});

    for (std::uint32_t b = 0; b < 4; ++b) {
        EXPECT_EQ(bins.pairCount(b), 60u) << "bin=" << b;
        double mass = 0;
        std::uint64_t pairs = 0;
        bins.drainBin(b, [&](const Pair *run, std::uint32_t len) {
            for (std::uint32_t j = 0; j < len; ++j) {
                EXPECT_EQ(run[j].dst / 100, b);
                mass += run[j].contrib;
            }
            pairs += len;
        });
        EXPECT_EQ(pairs, 60u) << "bin=" << b;
        EXPECT_DOUBLE_EQ(mass, 20.0 * (1 + 2 + 3)) << "bin=" << b;
    }
    // 20 pairs per (lane, bin) at 8 pairs/slab = 2 sealed slabs each.
    EXPECT_EQ(bins.roundFlushes(), 3u * 4u * 2u);
}

TEST(DestBinsTest, BeginRoundResetsWithoutReleasingSlabs)
{
    DestBins<Pair> bins;
    bins.configure(1, 2, 4);
    bins.beginRound();
    for (int i = 0; i < 10; ++i)
        bins.append(0, 1, {static_cast<NodeId>(i), 1.0});
    EXPECT_EQ(bins.pairCount(1), 10u);

    bins.beginRound();
    EXPECT_EQ(bins.pairCount(0), 0u);
    EXPECT_EQ(bins.pairCount(1), 0u);
    EXPECT_EQ(bins.roundFlushes(), 0u);
    int calls = 0;
    bins.drainBin(1, [&](const Pair *, std::uint32_t) { ++calls; });
    EXPECT_EQ(calls, 0);

    // The pool is reused: appending after reset must not corrupt.
    bins.append(0, 0, {7, 2.0});
    EXPECT_EQ(bins.pairCount(0), 1u);
    bins.drainBin(0, [&](const Pair *run, std::uint32_t len) {
        ASSERT_EQ(len, 1u);
        EXPECT_EQ(run[0].dst, 7u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(DestBinsTest, PartialSlabsDoNotCountAsFlushes)
{
    DestBins<Pair> bins;
    bins.configure(2, 1, 16);
    bins.beginRound();
    for (int i = 0; i < 5; ++i)
        bins.append(0, 0, {static_cast<NodeId>(i), 1.0});
    EXPECT_EQ(bins.roundFlushes(), 0u); // open slab, never sealed
    EXPECT_EQ(bins.pairCount(0), 5u);
}

// ---------------------------------------------------------------------------
// PaddedAccumulator unit coverage
// ---------------------------------------------------------------------------

TEST(PaddedAccumulatorTest, SlotsAreCacheLineSeparated)
{
    PaddedAccumulator<double> acc(4, 0.0);
    ASSERT_EQ(acc.size(), 4u);
    const auto addr = [&](std::size_t i) {
        return reinterpret_cast<std::uintptr_t>(&acc[i]);
    };
    EXPECT_EQ(addr(0) % kCacheLineBytes, 0u);
    for (std::size_t i = 1; i < acc.size(); ++i)
        EXPECT_GE(addr(i) - addr(i - 1), kCacheLineBytes) << "i=" << i;
}

TEST(PaddedAccumulatorTest, FillSumAndAssign)
{
    PaddedAccumulator<std::uint64_t> acc;
    EXPECT_TRUE(acc.empty());
    EXPECT_EQ(acc.sum(std::uint64_t{0}), 0u);

    acc.assign(3, 7);
    EXPECT_EQ(acc.sum(std::uint64_t{0}), 21u);
    acc.fill(1);
    acc[2] += 10;
    EXPECT_EQ(acc.sum(std::uint64_t{0}), 13u);

    // Non-trivial element type: per-worker queues.
    PaddedAccumulator<std::vector<NodeId>> queues(2);
    queues[0].push_back(1);
    queues[1].push_back(2);
    queues[1].push_back(3);
    std::size_t total = 0;
    for (std::size_t w = 0; w < queues.size(); ++w)
        total += queues[w].size();
    EXPECT_EQ(total, 3u);
}

} // namespace
} // namespace saga
