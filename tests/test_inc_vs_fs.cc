/**
 * @file
 * The system invariant (paper Section III-B): after every batch, the
 * incremental compute model must produce the same vertex values as
 * recomputation from scratch — exactly for the monotone discrete/weighted
 * algorithms, within tolerance for PageRank. Parameterized over every
 * (algorithm x data structure) combination.
 */

#include <algorithm>
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "saga/driver.h"
#include "test_util.h"

namespace saga {
namespace {

struct Combo
{
    DsKind ds;
    AlgKind alg;
};

std::string
comboName(const ::testing::TestParamInfo<Combo> &info)
{
    return std::string(toString(info.param.ds)) + "_" +
           toString(info.param.alg);
}

class IncVsFsTest : public ::testing::TestWithParam<Combo>
{};

TEST_P(IncVsFsTest, ValuesAgreeAfterEveryBatch)
{
    const Combo combo = GetParam();

    RunConfig fs_cfg;
    fs_cfg.ds = combo.ds;
    fs_cfg.alg = combo.alg;
    fs_cfg.model = ModelKind::FS;
    fs_cfg.threads = 2;
    RunConfig inc_cfg = fs_cfg;
    inc_cfg.model = ModelKind::INC;

    auto fs = makeRunner(fs_cfg);
    auto inc = makeRunner(inc_cfg);

    for (int b = 0; b < 8; ++b) {
        const EdgeBatch batch = test::randomBatch(400, 1200, 900 + b);
        fs->processBatch(batch);
        inc->processBatch(batch);

        const std::vector<double> fs_values = fs->values();
        const std::vector<double> inc_values = inc->values();
        ASSERT_EQ(fs_values.size(), inc_values.size()) << "batch " << b;

        if (combo.alg == AlgKind::PR) {
            double l1 = 0, max_diff = 0;
            for (std::size_t v = 0; v < fs_values.size(); ++v) {
                const double d =
                    std::fabs(fs_values[v] - inc_values[v]);
                l1 += d;
                max_diff = std::max(max_diff, d);
            }
            EXPECT_LT(l1 / double(fs_values.size()), 2e-4)
                << "batch " << b;
            EXPECT_LT(max_diff, 5e-3) << "batch " << b;
        } else {
            for (std::size_t v = 0; v < fs_values.size(); ++v) {
                if (std::isinf(fs_values[v])) {
                    EXPECT_TRUE(std::isinf(inc_values[v]) &&
                                (fs_values[v] > 0) == (inc_values[v] > 0))
                        << "batch " << b << " v=" << v;
                } else {
                    EXPECT_EQ(fs_values[v], inc_values[v])
                        << "batch " << b << " v=" << v;
                }
            }
        }
    }
}

std::vector<Combo>
allCombos()
{
    std::vector<Combo> combos;
    for (DsKind ds : {DsKind::AS, DsKind::AC, DsKind::Stinger, DsKind::DAH,
          DsKind::Hybrid})
        for (AlgKind alg : {AlgKind::BFS, AlgKind::CC, AlgKind::MC,
                            AlgKind::PR, AlgKind::SSSP, AlgKind::SSWP})
            combos.push_back({ds, alg});
    return combos;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, IncVsFsTest,
                         ::testing::ValuesIn(allCombos()), comboName);

/** Undirected variant (exercises the single-store ingest path). */
TEST(IncVsFsUndirected, CcAgreesOnUndirectedStream)
{
    RunConfig fs_cfg;
    fs_cfg.ds = DsKind::AS;
    fs_cfg.alg = AlgKind::CC;
    fs_cfg.model = ModelKind::FS;
    fs_cfg.directed = false;
    fs_cfg.threads = 2;
    RunConfig inc_cfg = fs_cfg;
    inc_cfg.model = ModelKind::INC;

    auto fs = makeRunner(fs_cfg);
    auto inc = makeRunner(inc_cfg);
    for (int b = 0; b < 6; ++b) {
        const EdgeBatch batch = test::randomBatch(300, 500, 40 + b);
        fs->processBatch(batch);
        inc->processBatch(batch);
        EXPECT_EQ(fs->values(), inc->values()) << "batch " << b;
    }
}

} // namespace
} // namespace saga
