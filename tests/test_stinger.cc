/** @file Stinger internals: edge blocks, two-pass insert, block capacity. */

#include <gtest/gtest.h>

#include "ds/stinger.h"
#include "platform/thread_pool.h"
#include "test_util.h"

namespace saga {
namespace {

TEST(Stinger, DefaultBlockCapacityIsSixteen)
{
    StingerStore store;
    EXPECT_EQ(store.blockCapacity(), 16u);
}

TEST(Stinger, FillsBlocksWithoutHoles)
{
    StingerStore store(4); // tiny blocks to force chaining
    ThreadPool pool(1);
    std::vector<Edge> edges;
    for (NodeId d = 1; d <= 10; ++d)
        edges.push_back({0, d, static_cast<Weight>(d)});
    store.updateBatch(EdgeBatch(std::move(edges)), pool, false);

    EXPECT_EQ(store.degree(0), 10u);
    const auto nbrs = test::sortedNeighbors(store, 0);
    ASSERT_EQ(nbrs.size(), 10u);
    for (NodeId d = 1; d <= 10; ++d) {
        EXPECT_EQ(nbrs[d - 1].node, d);
        EXPECT_EQ(nbrs[d - 1].weight, static_cast<Weight>(d));
    }
}

TEST(Stinger, SingleEntryBlocks)
{
    StingerStore store(1); // degenerate: one edge per block
    ThreadPool pool(2);
    std::vector<Edge> edges;
    for (NodeId d = 1; d <= 50; ++d)
        edges.push_back({3, d, 1.0f});
    store.updateBatch(EdgeBatch(std::move(edges)), pool, false);
    EXPECT_EQ(store.degree(3), 50u);
    EXPECT_EQ(test::sortedNeighbors(store, 3).size(), 50u);
}

TEST(Stinger, DuplicateInsertSecondBatch)
{
    StingerStore store(4);
    ThreadPool pool(1);
    std::vector<Edge> edges;
    for (NodeId d = 1; d <= 9; ++d)
        edges.push_back({0, d, 1.0f});
    store.updateBatch(EdgeBatch(edges), pool, false);
    store.updateBatch(EdgeBatch(edges), pool, false); // all duplicates
    EXPECT_EQ(store.degree(0), 9u);
    EXPECT_EQ(store.numEdges(), 9u);
}

TEST(Stinger, ClearReleasesEverything)
{
    StingerStore store(2);
    ThreadPool pool(1);
    store.updateBatch(test::randomBatch(100, 2000, 1), pool, false);
    EXPECT_GT(store.numEdges(), 0u);
    store.clear();
    EXPECT_EQ(store.numNodes(), 0u);
    EXPECT_EQ(store.numEdges(), 0u);
}

TEST(Stinger, ConcurrentHubInsertsStayUnique)
{
    // Many threads insert overlapping edges for ONE vertex: exercises the
    // lock-free search + locked append path.
    StingerStore store(8);
    ThreadPool pool(8);
    std::vector<Edge> edges;
    for (int rep = 0; rep < 5; ++rep) {
        for (NodeId d = 1; d <= 400; ++d)
            edges.push_back({0, d, static_cast<Weight>(d % 5 + 1)});
    }
    store.updateBatch(EdgeBatch(std::move(edges)), pool, false);
    EXPECT_EQ(store.degree(0), 400u);
    EXPECT_EQ(test::sortedNeighbors(store, 0).size(), 400u);
    EXPECT_EQ(store.numEdges(), 400u);
}

} // namespace
} // namespace saga
