/**
 * @file
 * Naive, obviously-correct serial graph algorithms used as oracles for the
 * FS engine tests. These deliberately use different algorithmic strategies
 * from the library (Dijkstra instead of delta-stepping, union-find instead
 * of label propagation, ...) so agreement is meaningful.
 */

#ifndef SAGA_TESTS_REFERENCE_ALGOS_H_
#define SAGA_TESTS_REFERENCE_ALGOS_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <queue>
#include <vector>

#include "saga/types.h"

namespace saga {
namespace test {

using AdjList = std::vector<std::vector<Neighbor>>;

/** Build forward/reverse adjacency from a unique edge list. */
inline AdjList
buildAdj(const std::vector<Edge> &edges, NodeId n, bool reversed = false)
{
    AdjList adj(n);
    for (const Edge &e : edges) {
        if (reversed)
            adj[e.dst].push_back({e.src, e.weight});
        else
            adj[e.src].push_back({e.dst, e.weight});
    }
    return adj;
}

/** Queue-based BFS depths; UINT32_MAX for unreached. */
inline std::vector<std::uint32_t>
refBfs(const AdjList &adj, NodeId source)
{
    constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
    std::vector<std::uint32_t> depth(adj.size(), kInf);
    if (source >= adj.size())
        return depth;
    depth[source] = 0;
    std::queue<NodeId> queue;
    queue.push(source);
    while (!queue.empty()) {
        const NodeId v = queue.front();
        queue.pop();
        for (const Neighbor &nbr : adj[v]) {
            if (depth[nbr.node] == kInf) {
                depth[nbr.node] = depth[v] + 1;
                queue.push(nbr.node);
            }
        }
    }
    return depth;
}

/** Dijkstra shortest paths; +inf for unreached. */
inline std::vector<float>
refDijkstra(const AdjList &adj, NodeId source)
{
    constexpr float kInf = std::numeric_limits<float>::infinity();
    std::vector<float> dist(adj.size(), kInf);
    if (source >= adj.size())
        return dist;
    using Entry = std::pair<float, NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    dist[source] = 0;
    heap.push({0, source});
    while (!heap.empty()) {
        const auto [d, v] = heap.top();
        heap.pop();
        if (d > dist[v])
            continue;
        for (const Neighbor &nbr : adj[v]) {
            const float cand = d + nbr.weight;
            if (cand < dist[nbr.node]) {
                dist[nbr.node] = cand;
                heap.push({cand, nbr.node});
            }
        }
    }
    return dist;
}

/** Dijkstra-style widest paths; source = +inf, unreached = 0. */
inline std::vector<float>
refWidest(const AdjList &adj, NodeId source)
{
    std::vector<float> width(adj.size(), 0.0f);
    if (source >= adj.size())
        return width;
    using Entry = std::pair<float, NodeId>;
    std::priority_queue<Entry> heap; // max-heap on width
    width[source] = std::numeric_limits<float>::infinity();
    heap.push({width[source], source});
    while (!heap.empty()) {
        const auto [w, v] = heap.top();
        heap.pop();
        if (w < width[v])
            continue;
        for (const Neighbor &nbr : adj[v]) {
            const float cand = std::min(w, nbr.weight);
            if (cand > width[nbr.node]) {
                width[nbr.node] = cand;
                heap.push({cand, nbr.node});
            }
        }
    }
    return width;
}

/** Weakly-connected components via union-find; label = min id. */
inline std::vector<NodeId>
refCc(const std::vector<Edge> &edges, NodeId n)
{
    std::vector<NodeId> parent(n);
    std::iota(parent.begin(), parent.end(), 0);
    const auto find = [&](NodeId v) {
        while (parent[v] != v) {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        return v;
    };
    for (const Edge &e : edges) {
        const NodeId a = find(e.src), b = find(e.dst);
        if (a != b)
            parent[std::max(a, b)] = std::min(a, b);
    }
    // Min id per component.
    std::vector<NodeId> label(n);
    for (NodeId v = 0; v < n; ++v)
        label[v] = find(v);
    return label;
}

/** Fixpoint max-ancestor values (init = own id). */
inline std::vector<NodeId>
refMc(const AdjList &adj, NodeId n)
{
    std::vector<NodeId> value(n);
    std::iota(value.begin(), value.end(), 0);
    bool changed = true;
    while (changed) {
        changed = false;
        for (NodeId v = 0; v < n; ++v) {
            for (const Neighbor &nbr : adj[v]) {
                if (value[v] > value[nbr.node]) {
                    value[nbr.node] = value[v];
                    changed = true;
                }
            }
        }
    }
    return value;
}

/** Push-style PageRank iteration (different style from the library). */
inline std::vector<double>
refPr(const AdjList &out_adj, NodeId n, double damping, double tolerance,
      int max_iters)
{
    if (n == 0)
        return {};
    std::vector<double> rank(n, 1.0 / n), next(n);
    for (int iter = 0; iter < max_iters; ++iter) {
        std::fill(next.begin(), next.end(), (1.0 - damping) / n);
        for (NodeId v = 0; v < n; ++v) {
            if (out_adj[v].empty())
                continue;
            const double share = damping * rank[v] / out_adj[v].size();
            for (const Neighbor &nbr : out_adj[v])
                next[nbr.node] += share;
        }
        double delta = 0;
        for (NodeId v = 0; v < n; ++v)
            delta += std::abs(next[v] - rank[v]);
        rank.swap(next);
        if (delta < tolerance)
            break;
    }
    return rank;
}

} // namespace test
} // namespace saga

#endif // SAGA_TESTS_REFERENCE_ALGOS_H_
