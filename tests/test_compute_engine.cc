/**
 * @file
 * Compute-engine tests: the direction-optimizing kernels (BFS, CC) must
 * match the serial oracles across all 4 stores × directed/undirected ×
 * FS/INC, in every direction mode (Auto + forced push + forced pull, so
 * both code paths run under TSan); plus unit/property coverage for the
 * Frontier dual representation, the edge-balanced range splitter, and
 * the store block-iteration hooks.
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <set>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "algo/bfs.h"
#include "algo/cc.h"
#include "algo/inc_engine.h"
#include "algo/frontier.h"
#include "ds/adj_chunked.h"
#include "ds/adj_shared.h"
#include "ds/dah.h"
#include "ds/hybrid.h"
#include "ds/dyn_graph.h"
#include "ds/reference.h"
#include "ds/stinger.h"
#include "platform/edge_ranges.h"
#include "platform/rng.h"
#include "platform/thread_pool.h"
#include "reference_algos.h"
#include "test_util.h"

namespace saga {
namespace {

/** Build a DynGraph over @p Store with a representative configuration. */
template <typename Store>
DynGraph<Store>
makeGraph(bool directed, std::size_t chunks)
{
    if constexpr (std::is_constructible_v<Store, std::size_t>) {
        return DynGraph<Store>(directed, chunks); // AC, DAH, Stinger(block)
    } else {
        (void)chunks;
        return DynGraph<Store>(directed); // AS, Reference
    }
}

/** Hub-heavy batch: a few vertices carry most of the edge mass, which is
    exactly the skew the α heuristic and the edge-balanced split target. */
EdgeBatch
hubBatch(NodeId num_nodes, std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Edge> edges;
    edges.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        NodeId src = static_cast<NodeId>(rng.below(num_nodes));
        NodeId dst = static_cast<NodeId>(rng.below(num_nodes));
        if (i % 4 == 0)
            src = 0; // hot out-hub at the BFS source
        if (i % 4 == 1)
            dst = 3; // hot in-hub
        const Weight weight =
            static_cast<Weight>((src * 2654435761u + dst * 40503u) % 32 + 1);
        edges.push_back({src, dst, weight});
    }
    return EdgeBatch(std::move(edges));
}

/** The graph's out-adjacency as an oracle AdjList (undirected graphs
    already hold both orientations in the out store). */
template <typename Graph>
test::AdjList
oracleAdj(const Graph &g)
{
    test::AdjList adj(g.numNodes());
    for (NodeId v = 0; v < g.numNodes(); ++v)
        adj[v] = test::sortedOut(g, v);
    return adj;
}

/** Unique directed edges of the graph (for the union-find CC oracle). */
template <typename Graph>
std::vector<Edge>
oracleEdges(const Graph &g)
{
    std::vector<Edge> edges;
    for (NodeId v = 0; v < g.numNodes(); ++v)
        g.outNeigh(v, [&](const Neighbor &nbr) {
            edges.push_back({v, nbr.node, nbr.weight});
        });
    return edges;
}

constexpr Direction kAllDirections[] = {
    Direction::Auto, Direction::ForcePush, Direction::ForcePull};

template <typename Store>
class ComputeEngineTest : public ::testing::Test
{
  protected:
    static constexpr std::size_t kChunks = 4;

    /** BFS and CC, every direction mode, against the serial oracles. */
    void
    expectFsMatchesOracle(const std::vector<EdgeBatch> &batches,
                          bool directed, NodeId source)
    {
        ThreadPool pool(4);
        DynGraph<Store> g = makeGraph<Store>(directed, kChunks);
        for (const EdgeBatch &batch : batches)
            g.update(batch, pool);

        const test::AdjList adj = oracleAdj(g);
        const auto ref_depth = test::refBfs(adj, source);
        const auto ref_label =
            test::refCc(oracleEdges(g), g.numNodes());

        for (Direction dir : kAllDirections) {
            AlgContext ctx;
            ctx.source = source;
            ctx.direction = dir;
            std::vector<Bfs::Value> depth;
            Bfs::computeFs(g, pool, depth, ctx);
            ASSERT_EQ(depth.size(), ref_depth.size());
            for (NodeId v = 0; v < g.numNodes(); ++v)
                ASSERT_EQ(depth[v], ref_depth[v])
                    << "bfs v=" << v << " dir=" << static_cast<int>(dir)
                    << " directed=" << directed;

            std::vector<Cc::Value> label;
            Cc::computeFs(g, pool, label, ctx);
            ASSERT_EQ(label.size(), ref_label.size());
            for (NodeId v = 0; v < g.numNodes(); ++v)
                ASSERT_EQ(label[v], ref_label[v])
                    << "cc v=" << v << " dir=" << static_cast<int>(dir)
                    << " directed=" << directed;
        }
    }

    /** INC BFS/CC values after each batch must equal the oracle on the
        cumulative graph (additions only, so both are monotone). */
    void
    expectIncMatchesOracle(const std::vector<EdgeBatch> &batches,
                           bool directed, NodeId source)
    {
        ThreadPool pool(4);
        DynGraph<Store> g = makeGraph<Store>(directed, kChunks);
        AlgContext ctx;
        ctx.source = source;
        std::vector<Bfs::Value> depth;
        std::vector<Cc::Value> label;

        for (const EdgeBatch &batch : batches) {
            g.update(batch, pool);
            const std::vector<NodeId> affected =
                affectedVertices(batch, g.numNodes());
            incCompute<Bfs>(g, pool, depth, affected, ctx);
            incCompute<Cc>(g, pool, label, affected, ctx);

            const test::AdjList adj = oracleAdj(g);
            const auto ref_depth = test::refBfs(adj, source);
            const auto ref_label =
                test::refCc(oracleEdges(g), g.numNodes());
            for (NodeId v = 0; v < g.numNodes(); ++v) {
                ASSERT_EQ(depth[v], ref_depth[v])
                    << "inc bfs v=" << v << " directed=" << directed;
                ASSERT_EQ(label[v], ref_label[v])
                    << "inc cc v=" << v << " directed=" << directed;
            }
        }
    }
};

using ComputeStores = ::testing::Types<AdjSharedStore, AdjChunkedStore,
                                       StingerStore, DahStore,
                                       HybridStore>;
TYPED_TEST_SUITE(ComputeEngineTest, ComputeStores);

TYPED_TEST(ComputeEngineTest, FsRandomDirected)
{
    this->expectFsMatchesOracle({test::randomBatch(120, 400, 11),
                                 test::randomBatch(120, 400, 12)},
                                /*directed=*/true, /*source=*/0);
}

TYPED_TEST(ComputeEngineTest, FsRandomUndirected)
{
    this->expectFsMatchesOracle({test::randomBatch(120, 400, 21),
                                 test::randomBatch(120, 400, 22)},
                                /*directed=*/false, /*source=*/5);
}

TYPED_TEST(ComputeEngineTest, FsHubHeavyDirected)
{
    this->expectFsMatchesOracle({hubBatch(150, 900, 31)},
                                /*directed=*/true, /*source=*/0);
}

TYPED_TEST(ComputeEngineTest, FsHubHeavyUndirected)
{
    this->expectFsMatchesOracle({hubBatch(150, 900, 41)},
                                /*directed=*/false, /*source=*/0);
}

TYPED_TEST(ComputeEngineTest, FsSparseDisconnected)
{
    // Many unreachable vertices: the pull rounds must leave them kInf
    // and the heuristic must terminate with a shrinking frontier.
    this->expectFsMatchesOracle({test::randomBatch(300, 150, 51)},
                                /*directed=*/true, /*source=*/1);
}

TYPED_TEST(ComputeEngineTest, IncStreamDirected)
{
    this->expectIncMatchesOracle({test::randomBatch(100, 250, 61),
                                  test::randomBatch(100, 250, 62),
                                  hubBatch(100, 400, 63)},
                                 /*directed=*/true, /*source=*/0);
}

TYPED_TEST(ComputeEngineTest, IncStreamUndirected)
{
    this->expectIncMatchesOracle({test::randomBatch(100, 250, 71),
                                  hubBatch(100, 400, 72),
                                  test::randomBatch(100, 250, 73)},
                                 /*directed=*/false, /*source=*/2);
}

TYPED_TEST(ComputeEngineTest, BlockIterationMatchesForNeighbors)
{
    ThreadPool pool(2);
    DynGraph<TypeParam> g = makeGraph<TypeParam>(true, this->kChunks);
    g.update(hubBatch(80, 600, 81), pool);

    for (NodeId v = 0; v < g.numNodes(); ++v) {
        std::vector<Neighbor> via_blocks;
        g.outNeighBlock(v, [&](const Neighbor *run, std::uint32_t len) {
            via_blocks.insert(via_blocks.end(), run, run + len);
            return true;
        });
        std::sort(via_blocks.begin(), via_blocks.end(),
                  [](const Neighbor &a, const Neighbor &b) {
                      return a.node < b.node;
                  });
        ASSERT_EQ(via_blocks, test::sortedOut(g, v)) << "v=" << v;

        via_blocks.clear();
        g.inNeighBlock(v, [&](const Neighbor *run, std::uint32_t len) {
            via_blocks.insert(via_blocks.end(), run, run + len);
            return true;
        });
        std::sort(via_blocks.begin(), via_blocks.end(),
                  [](const Neighbor &a, const Neighbor &b) {
                      return a.node < b.node;
                  });
        ASSERT_EQ(via_blocks, test::sortedIn(g, v)) << "v=" << v;
    }
}

TYPED_TEST(ComputeEngineTest, BlockIterationEarlyStop)
{
    ThreadPool pool(2);
    DynGraph<TypeParam> g = makeGraph<TypeParam>(true, this->kChunks);
    g.update(hubBatch(40, 400, 91), pool);

    for (NodeId v = 0; v < g.numNodes(); ++v) {
        if (g.outDegree(v) == 0)
            continue;
        // Stop after the first run: the callback must not fire again.
        int calls = 0;
        std::uint32_t first_len = 0;
        g.outNeighBlock(v, [&](const Neighbor *, std::uint32_t len) {
            ++calls;
            first_len = len;
            return false;
        });
        EXPECT_EQ(calls, 1) << "v=" << v;
        EXPECT_GE(first_len, 1u) << "v=" << v;
    }
}

TEST(FrontierTest, SparseDenseRoundTrip)
{
    ThreadPool pool(3);
    Rng rng(7);
    const NodeId n = 500;
    std::set<NodeId> members;
    std::vector<NodeId> queue;
    for (int i = 0; i < 120; ++i) {
        const NodeId v = static_cast<NodeId>(rng.below(n));
        if (members.insert(v).second)
            queue.push_back(v);
    }

    Frontier f;
    f.assignSparse(queue);
    EXPECT_FALSE(f.dense());
    EXPECT_EQ(f.count(), members.size());

    f.toDense(pool, n);
    EXPECT_TRUE(f.dense());
    EXPECT_EQ(f.count(), members.size());
    for (NodeId v = 0; v < n; ++v)
        EXPECT_EQ(Frontier::testBit(f.bits(), v), members.count(v) > 0)
            << "v=" << v;

    f.toSparse(pool);
    EXPECT_FALSE(f.dense());
    std::set<NodeId> back(f.sparse().begin(), f.sparse().end());
    EXPECT_EQ(back, members);
}

TEST(FrontierTest, EmptyAndConversionIdempotence)
{
    ThreadPool pool(2);
    Frontier f;
    f.assignSparse({});
    EXPECT_TRUE(f.empty());
    f.toDense(pool, 100);
    EXPECT_TRUE(f.empty());
    f.toDense(pool, 100); // no-op
    f.toSparse(pool);
    EXPECT_TRUE(f.sparse().empty());
    f.toSparse(pool); // no-op
}

TEST(EdgeBalancedRangesTest, SlicesPartitionExactly)
{
    ThreadPool pool(4);
    Rng rng(13);
    const std::uint64_t count = 777;
    std::vector<std::uint32_t> degree(count);
    for (auto &d : degree)
        d = static_cast<std::uint32_t>(rng.below(100));
    degree[5] = 50000; // hub

    EdgeBalancedRanges ranges;
    ranges.build(pool, count,
                 [&](std::uint64_t i) { return degree[i]; });

    for (std::size_t workers : {1u, 3u, 4u, 7u, 16u}) {
        std::uint64_t expect_lo = 0;
        for (std::size_t w = 0; w < workers; ++w) {
            const auto [lo, hi] = ranges.slice(w, workers);
            EXPECT_EQ(lo, expect_lo) << "w=" << w;
            EXPECT_LE(lo, hi);
            expect_lo = hi;
        }
        EXPECT_EQ(expect_lo, count) << "workers=" << workers;
    }
}

TEST(EdgeBalancedRangesTest, SlicesAreWeightBalanced)
{
    ThreadPool pool(4);
    Rng rng(17);
    const std::uint64_t count = 1000;
    std::vector<std::uint32_t> degree(count);
    std::uint64_t max_weight = 0;
    for (auto &d : degree) {
        d = static_cast<std::uint32_t>(rng.below(64));
        max_weight = std::max<std::uint64_t>(max_weight, d + 1);
    }
    degree[0] = 40000; // hub dominates: its slice may exceed the ideal
    max_weight = std::max<std::uint64_t>(max_weight, 40001);

    EdgeBalancedRanges ranges;
    ranges.build(pool, count,
                 [&](std::uint64_t i) { return degree[i]; });

    std::vector<std::uint64_t> prefix(count + 1, 0);
    for (std::uint64_t i = 0; i < count; ++i)
        prefix[i + 1] = prefix[i] + degree[i] + 1;
    ASSERT_EQ(ranges.total(), prefix.back());

    const std::size_t workers = 8;
    for (std::size_t w = 0; w < workers; ++w) {
        const auto [lo, hi] = ranges.slice(w, workers);
        const std::uint64_t weight = prefix[hi] - prefix[lo];
        // A slice never exceeds the ideal share by more than one item.
        EXPECT_LE(weight, ranges.total() / workers + max_weight)
            << "w=" << w;
    }
}

TEST(EdgeBalancedRangesTest, ZeroDegreeTailIsCovered)
{
    ThreadPool pool(2);
    // All the edge mass up front, a long zero-degree tail: the +1 item
    // weights must still distribute the tail across slices.
    const std::uint64_t count = 100;
    EdgeBalancedRanges ranges;
    ranges.build(pool, count, [](std::uint64_t i) {
        return i < 4 ? 1000u : 0u;
    });
    const auto [lo_last, hi_last] = ranges.slice(3, 4);
    EXPECT_EQ(hi_last, count); // the tail belongs to someone
    EXPECT_GT(hi_last, lo_last);
}

TEST(EdgeBalancedRangesTest, EmptyBuild)
{
    ThreadPool pool(2);
    EdgeBalancedRanges ranges;
    ranges.build(pool, 0, [](std::uint64_t) { return 1u; });
    EXPECT_EQ(ranges.count(), 0u);
    EXPECT_EQ(ranges.total(), 0u);
    int calls = 0;
    ranges.forSlices(pool, [&](std::size_t, std::uint64_t, std::uint64_t) {
        ++calls;
    });
    EXPECT_EQ(calls, 0);
}

/** The ReferenceStore has no block hook: the DynGraph fallback must
    produce single-entry runs equivalent to forNeighbors. */
TEST(BlockFallbackTest, ReferenceStoreFallsBackToUnitRuns)
{
    ThreadPool pool(2);
    DynGraph<ReferenceStore> g(/*directed=*/true);
    g.update(test::randomBatch(40, 200, 99), pool);

    for (NodeId v = 0; v < g.numNodes(); ++v) {
        std::vector<Neighbor> via_blocks;
        g.outNeighBlock(v, [&](const Neighbor *run, std::uint32_t len) {
            EXPECT_EQ(len, 1u);
            via_blocks.push_back(run[0]);
            return true;
        });
        std::sort(via_blocks.begin(), via_blocks.end(),
                  [](const Neighbor &a, const Neighbor &b) {
                      return a.node < b.node;
                  });
        ASSERT_EQ(via_blocks, test::sortedOut(g, v)) << "v=" << v;
    }
}

} // namespace
} // namespace saga
