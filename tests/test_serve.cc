/**
 * @file
 * Tests for the serving layer (src/serve/): latency histogram math
 * against a sorted-vector oracle, admission-queue shed/accept
 * properties under concurrent producers, EpochGate exclusion, wire
 * protocol round-trips, dispatch semantics, and the end-to-end
 * snapshot-consistency contract — reads issued while the epoch loop
 * stages and publishes must return exactly the epoch they claim,
 * bit-equal to a serial ReferenceStore oracle. The concurrent tests
 * are part of the TSan tier-1 matrix.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "algo/bfs.h"
#include "ds/reference.h"
#include "platform/thread_pool.h"
#include "reference_algos.h"
#include "serve/admission_queue.h"
#include "serve/dispatch.h"
#include "serve/epoch_gate.h"
#include "serve/latency_histogram.h"
#include "serve/service.h"
#include "serve/wire.h"
#include "test_util.h"

namespace saga {
namespace {

// --- LatencyHistogram ---------------------------------------------------

TEST(LatencyHistogram, BucketIndexRoundTripsEveryBucket)
{
    for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
        const std::uint64_t ub = LatencyHistogram::bucketUpperBound(i);
        EXPECT_EQ(LatencyHistogram::bucketIndex(ub), i) << "bucket " << i;
        // The value one past the upper bound belongs to the next bucket
        // (except for the last bucket, whose bound is UINT64_MAX).
        if (ub != std::numeric_limits<std::uint64_t>::max()) {
            EXPECT_EQ(LatencyHistogram::bucketIndex(ub + 1), i + 1);
        }
    }
}

TEST(LatencyHistogram, BoundaryValuesLandInBounds)
{
    // Powers of two and their neighbors — the log-linear seams.
    for (unsigned m = 0; m < 64; ++m) {
        const std::uint64_t v = std::uint64_t{1} << m;
        for (const std::uint64_t probe : {v - 1, v, v + 1}) {
            const std::size_t idx = LatencyHistogram::bucketIndex(probe);
            ASSERT_LT(idx, LatencyHistogram::kNumBuckets);
            EXPECT_GE(LatencyHistogram::bucketUpperBound(idx), probe);
            if (idx > 0) {
                EXPECT_LT(LatencyHistogram::bucketUpperBound(idx - 1),
                          probe);
            }
        }
    }
    EXPECT_LT(LatencyHistogram::bucketIndex(
                  std::numeric_limits<std::uint64_t>::max()),
              LatencyHistogram::kNumBuckets);
}

TEST(LatencyHistogram, ExactBelowLinearRegion)
{
    // Values below 2 * kSubBuckets get one-nanosecond buckets: the
    // reported percentile is exact, not just within the error bound.
    LatencyHistogram h;
    std::vector<std::uint64_t> values;
    std::mt19937_64 rng(7);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng() % (2 * LatencyHistogram::kSubBuckets);
        values.push_back(v);
        h.record(v);
    }
    std::sort(values.begin(), values.end());
    for (const double p : {1.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
        std::uint64_t rank = static_cast<std::uint64_t>(
            p / 100.0 * static_cast<double>(values.size()));
        if (static_cast<double>(rank) < p / 100.0 * 1000.0)
            ++rank;
        rank = std::max<std::uint64_t>(rank, 1);
        EXPECT_EQ(h.percentile(p), values[rank - 1]) << "p" << p;
    }
}

TEST(LatencyHistogram, PercentilesMatchSortedOracleWithinErrorBound)
{
    // Mixed distribution spanning the full range the serving layer
    // produces: sub-microsecond point reads through multi-millisecond
    // stalls, plus a handful of huge outliers.
    LatencyHistogram h;
    std::vector<std::uint64_t> values;
    std::mt19937_64 rng(42);
    std::uniform_real_distribution<double> logu(2.0, 10.0); // 100ns..10s
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t v =
            static_cast<std::uint64_t>(std::pow(10.0, logu(rng)));
        values.push_back(v);
        h.record(v);
    }
    values.push_back(std::numeric_limits<std::uint64_t>::max());
    h.record(std::numeric_limits<std::uint64_t>::max());
    std::sort(values.begin(), values.end());

    const std::uint64_t n = values.size();
    for (const double p : {10.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0}) {
        const double want = p / 100.0 * static_cast<double>(n);
        std::uint64_t rank = static_cast<std::uint64_t>(want);
        if (static_cast<double>(rank) < want)
            ++rank;
        rank = std::max<std::uint64_t>(rank, 1);
        const std::uint64_t oracle = values[rank - 1];
        const std::uint64_t got = h.percentile(p);
        // Conservative: never under-reports; within 2^-7 relative error
        // above the true quantile. (Difference form — the additive bound
        // would overflow for quantiles near UINT64_MAX.)
        ASSERT_GE(got, oracle) << "p" << p;
        EXPECT_LE(got - oracle, oracle / 128 + 1) << "p" << p;
    }
    EXPECT_EQ(h.percentile(100.0), values.back());
    EXPECT_EQ(h.maxNs(), values.back());
    EXPECT_EQ(h.minNs(), values.front());
    EXPECT_EQ(h.count(), n);
}

TEST(LatencyHistogram, MergeEqualsSingleHistogram)
{
    LatencyHistogram whole, parts[3];
    std::mt19937_64 rng(11);
    for (int i = 0; i < 3000; ++i) {
        const std::uint64_t v = rng() % 1000000;
        whole.record(v);
        parts[i % 3].record(v);
    }
    LatencyHistogram merged;
    for (const LatencyHistogram &part : parts)
        merged.merge(part);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_EQ(merged.sumNs(), whole.sumNs());
    EXPECT_EQ(merged.minNs(), whole.minNs());
    EXPECT_EQ(merged.maxNs(), whole.maxNs());
    for (const double p : {50.0, 95.0, 99.0})
        EXPECT_EQ(merged.percentile(p), whole.percentile(p));
}

TEST(LatencyHistogram, EmptyHistogramIsZero)
{
    const LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(50), 0u);
    EXPECT_EQ(h.minNs(), 0u);
    EXPECT_EQ(h.maxNs(), 0u);
    EXPECT_EQ(h.meanNs(), 0.0);
}

// --- AdmissionQueue -----------------------------------------------------

TEST(AdmissionQueue, AllOrNothingAtDepth)
{
    AdmissionQueue q(8);
    std::vector<Edge> edges(9, Edge{0, 1, 1.0f});
    EXPECT_FALSE(q.offer(edges.data(), 9)); // over depth even when empty
    EXPECT_EQ(q.shedEdges(), 9u);
    EXPECT_TRUE(q.offer(edges.data(), 8)); // exactly depth fits
    EXPECT_FALSE(q.offer(edges.data(), 1)); // full now
    EXPECT_EQ(q.backlog(), 8u);
    EdgeBatch out;
    EXPECT_EQ(q.drain(out, 100), 8u);
    EXPECT_EQ(q.backlog(), 0u);
    EXPECT_TRUE(q.offer(edges.data(), 1)); // drained: accepts again
}

TEST(AdmissionQueue, FifoOrderPreserved)
{
    AdmissionQueue q(1024);
    for (std::uint32_t i = 0; i < 100; ++i) {
        const Edge e{i, i + 1, 1.0f};
        ASSERT_TRUE(q.offer(&e, 1));
    }
    EdgeBatch out;
    // Partial drains must continue from where the previous one stopped.
    EXPECT_EQ(q.drain(out, 30), 30u);
    EXPECT_EQ(q.drain(out, 1000), 70u);
    ASSERT_EQ(out.size(), 100u);
    for (std::uint32_t i = 0; i < 100; ++i)
        EXPECT_EQ(out[i].src, i);
}

TEST(AdmissionQueue, SustainedBacklogDoesNotGrowBuffer)
{
    // The leak regression: under sustained backlog the queue never
    // fully drains, so the consumed prefix is reclaimed by compaction
    // in drain(), never by the queue-empty reset. The internal buffer
    // must stay bounded (<= 2 * depth) over many epochs, FIFO intact.
    constexpr std::size_t kDepth = 128;
    AdmissionQueue q(kDepth);
    std::uint32_t nextSrc = 0;
    std::uint32_t nextExpected = 0;
    const auto offerSome = [&](std::size_t n) {
        std::vector<Edge> edges;
        for (std::size_t i = 0; i < n; ++i)
            edges.push_back(Edge{nextSrc + static_cast<std::uint32_t>(i),
                                 0, 1.0f});
        if (q.offer(edges.data(), n))
            nextSrc += static_cast<std::uint32_t>(n);
    };
    offerSome(kDepth); // fill: backlog never reaches zero below
    for (int epoch = 0; epoch < 1000; ++epoch) {
        EdgeBatch out;
        ASSERT_EQ(q.drain(out, 32), 32u);
        for (std::size_t i = 0; i < out.size(); ++i)
            ASSERT_EQ(out[i].src, nextExpected++);
        offerSome(32); // refill what was drained
        offerSome(64); // over depth: shed, keeps the backlog pegged
        ASSERT_GT(q.backlog(), 0u);
        ASSERT_LE(q.bufferedEdges(), 2 * kDepth);
    }
    EXPECT_GT(q.shedEdges(), 0u);
}

TEST(AdmissionQueue, ConcurrentProducersConserveEdges)
{
    // Property: accepted + shed == offered (per producer and in total),
    // drained == accepted, and the backlog never exceeds the depth.
    constexpr std::size_t kDepth = 256;
    constexpr int kProducers = 4;
    constexpr int kOffersPerProducer = 2000;
    AdmissionQueue q(kDepth);
    std::atomic<bool> stopConsumer{false};
    std::atomic<std::uint64_t> accepted[kProducers] = {};
    std::atomic<std::uint64_t> offered[kProducers] = {};

    std::thread consumer([&] {
        EdgeBatch out;
        std::uint64_t drained = 0;
        while (!stopConsumer.load(std::memory_order_acquire) ||
               q.backlog() > 0) {
            EXPECT_LE(q.backlog(), kDepth);
            drained += q.drain(out, 64);
            std::this_thread::yield();
        }
        drained += q.drain(out, kDepth);
        EXPECT_EQ(drained, out.size());
        EXPECT_EQ(drained, q.acceptedEdges());
    });

    std::vector<std::thread> producers;
    for (int t = 0; t < kProducers; ++t) {
        producers.emplace_back([&, t] {
            std::mt19937_64 rng(100 + t);
            std::vector<Edge> edges(32);
            for (int i = 0; i < kOffersPerProducer; ++i) {
                const std::size_t n = 1 + rng() % edges.size();
                for (std::size_t j = 0; j < n; ++j)
                    edges[j] = Edge{static_cast<NodeId>(rng() % 64),
                                    static_cast<NodeId>(rng() % 64), 1.0f};
                offered[t].fetch_add(n, std::memory_order_relaxed);
                if (q.offer(edges.data(), n))
                    accepted[t].fetch_add(n, std::memory_order_relaxed);
            }
        });
    }
    for (std::thread &p : producers)
        p.join();
    stopConsumer.store(true, std::memory_order_release);
    consumer.join();

    std::uint64_t totalOffered = 0, totalAccepted = 0;
    for (int t = 0; t < kProducers; ++t) {
        totalOffered += offered[t].load(std::memory_order_relaxed);
        totalAccepted += accepted[t].load(std::memory_order_relaxed);
    }
    EXPECT_EQ(q.acceptedEdges(), totalAccepted);
    EXPECT_EQ(q.shedEdges(), totalOffered - totalAccepted);
    EXPECT_EQ(q.backlog(), 0u);
}

// --- EpochGate ----------------------------------------------------------

TEST(EpochGate, ReadersDoNotExcludeEachOther)
{
    EpochGate gate;
    gate.enterRead();
    gate.enterRead(); // second reader enters immediately
    gate.exitRead();
    gate.exitRead();
}

TEST(EpochGate, PublisherWaitsForReadersAndExcludesNewOnes)
{
    EpochGate gate;
    std::atomic<bool> published{false};
    gate.enterRead();
    std::thread publisher([&] {
        gate.beginPublish();
        published.store(true, std::memory_order_release);
        gate.endPublish();
    });
    // The publisher must not finish while a reader is inside.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(published.load(std::memory_order_acquire));
    gate.exitRead();
    publisher.join();
    EXPECT_TRUE(published.load(std::memory_order_acquire));
    // Gate is reusable after the window closes.
    gate.enterRead();
    gate.exitRead();
}

TEST(EpochGate, PublishWindowIsExclusiveUnderStress)
{
    // Two plain (non-atomic) ints mutated only inside publish windows;
    // readers assert they never observe a torn pair. TSan additionally
    // proves there is no data race in this schedule.
    EpochGate gate;
    int a = 0, b = 0;
    std::atomic<bool> stop{false};
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
        readers.emplace_back([&] {
            while (!stop.load(std::memory_order_acquire)) {
                EpochGate::ReadGuard guard(gate);
                EXPECT_EQ(a, b);
            }
        });
    }
    for (int k = 1; k <= 2000; ++k) {
        gate.beginPublish();
        a = k;
        b = k;
        gate.endPublish();
    }
    stop.store(true, std::memory_order_release);
    for (std::thread &r : readers)
        r.join();
    EXPECT_EQ(a, 2000);
}

// --- wire protocol ------------------------------------------------------

TEST(Wire, ReaderLatchesOnShortBuffer)
{
    const std::vector<std::uint8_t> buf = {1, 2, 3}; // 3 bytes
    wire::Reader r(buf);
    EXPECT_EQ(r.u8(), 1u);
    EXPECT_EQ(r.u32(), 0u); // only 2 bytes left: latches, zero-fills
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.u64(), 0u); // stays latched
    EXPECT_FALSE(r.ok());
}

TEST(Wire, UpdateRequestRoundTrips)
{
    const std::vector<Edge> edges = {
        {1, 2, 0.5f}, {3, 4, 1.25f}, {5, 6, -2.0f}};
    const std::vector<std::uint8_t> body =
        wire::encodeUpdateRequest(edges.data(), edges.size());
    wire::Reader r(body);
    EXPECT_EQ(r.u8(), static_cast<std::uint8_t>(wire::Op::kUpdate));
    std::vector<Edge> decoded;
    ASSERT_TRUE(wire::decodeUpdatePayload(r, decoded));
    ASSERT_EQ(decoded.size(), edges.size());
    for (std::size_t i = 0; i < edges.size(); ++i) {
        EXPECT_EQ(decoded[i].src, edges[i].src);
        EXPECT_EQ(decoded[i].dst, edges[i].dst);
        EXPECT_EQ(decoded[i].weight, edges[i].weight);
    }
}

TEST(Wire, UpdatePayloadLengthMismatchRejected)
{
    std::vector<std::uint8_t> body;
    wire::putU8(body, static_cast<std::uint8_t>(wire::Op::kUpdate));
    wire::putU32(body, 2); // claims 2 edges...
    wire::putU32(body, 1);
    wire::putU32(body, 2);
    wire::putF32(body, 1.0f); // ...but carries only 1
    wire::Reader r(body);
    r.u8();
    std::vector<Edge> decoded;
    EXPECT_FALSE(wire::decodeUpdatePayload(r, decoded));
}

TEST(Wire, FramesRoundTripOverPipe)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const std::vector<std::uint8_t> body = {9, 8, 7, 6, 5};
    ASSERT_TRUE(wire::writeFrame(fds[1], body));
    std::vector<std::uint8_t> got;
    ASSERT_TRUE(wire::readFrame(fds[0], got));
    EXPECT_EQ(got, body);
    // EOF: closing the write end fails the next read cleanly.
    ::close(fds[1]);
    EXPECT_FALSE(wire::readFrame(fds[0], got));
    ::close(fds[0]);
}

TEST(Wire, OversizedAndZeroPrefixesRejected)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    std::vector<std::uint8_t> raw;
    wire::putU32(raw, wire::kMaxFrameBytes + 1);
    ASSERT_EQ(::write(fds[1], raw.data(), raw.size()),
              static_cast<ssize_t>(raw.size()));
    std::vector<std::uint8_t> got;
    EXPECT_FALSE(wire::readFrame(fds[0], got));
    raw.clear();
    wire::putU32(raw, 0);
    ASSERT_EQ(::write(fds[1], raw.data(), raw.size()),
              static_cast<ssize_t>(raw.size()));
    EXPECT_FALSE(wire::readFrame(fds[0], got));
    ::close(fds[0]);
    ::close(fds[1]);
}

// --- dispatch -----------------------------------------------------------

class DispatchTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ServeConfig cfg;
        cfg.threads = 1;
        cfg.bfsSource = 0;
        cfg.topK = 3;
        svc_ = makeService(cfg);
        // 0 -> 1 -> 2, 0 -> 2; node 3 isolated via self-anchor 3 -> 3.
        svc_->bootstrap({{0, 1, 1.0f},
                         {1, 2, 1.0f},
                         {0, 2, 1.0f},
                         {3, 3, 1.0f}});
    }

    std::vector<std::uint8_t>
    call(const std::vector<std::uint8_t> &req)
    {
        return wire::handleRequest(*svc_, req);
    }

    std::unique_ptr<GraphService> svc_;
};

TEST_F(DispatchTest, DegreeReply)
{
    const std::vector<std::uint8_t> reply =
        call(wire::encodeNodeRequest(wire::Op::kDegree, 0));
    wire::Reader r(reply);
    EXPECT_EQ(r.u8(), static_cast<std::uint8_t>(wire::Status::kOk));
    EXPECT_EQ(r.u64(), 0u); // epoch 0 right after bootstrap
    EXPECT_EQ(r.u32(), 2u); // out-degree
    EXPECT_EQ(r.u32(), 0u); // in-degree
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
}

TEST_F(DispatchTest, NeighborsReplyCarriesMatchingDegree)
{
    const std::vector<std::uint8_t> reply =
        call(wire::encodeNodeRequest(wire::Op::kNeighbors, 0));
    wire::Reader r(reply);
    EXPECT_EQ(r.u8(), static_cast<std::uint8_t>(wire::Status::kOk));
    r.u64();
    const std::uint32_t deg = r.u32();
    EXPECT_EQ(deg, 2u);
    EXPECT_EQ(r.remaining(), deg * 4u);
    std::vector<NodeId> nbrs = {r.u32(), r.u32()};
    std::sort(nbrs.begin(), nbrs.end());
    EXPECT_EQ(nbrs, (std::vector<NodeId>{1, 2}));
}

TEST_F(DispatchTest, BfsAndTopKReplies)
{
    const std::vector<std::uint8_t> bfs =
        call(wire::encodeNodeRequest(wire::Op::kBfs, 2));
    wire::Reader rb(bfs);
    EXPECT_EQ(rb.u8(), static_cast<std::uint8_t>(wire::Status::kOk));
    rb.u64();
    EXPECT_EQ(rb.u32(), 1u); // 0 -> 2 directly

    const std::vector<std::uint8_t> topk =
        call(wire::encodeEmptyRequest(wire::Op::kTopK));
    wire::Reader rt(topk);
    EXPECT_EQ(rt.u8(), static_cast<std::uint8_t>(wire::Status::kOk));
    rt.u64();
    const std::uint32_t k = rt.u32();
    EXPECT_EQ(k, 3u);
    double prev = std::numeric_limits<double>::infinity();
    for (std::uint32_t i = 0; i < k; ++i) {
        rt.u32();
        const double rank = rt.f64();
        EXPECT_LE(rank, prev);
        prev = rank;
    }
    EXPECT_TRUE(rt.ok());
    EXPECT_EQ(rt.remaining(), 0u);
}

TEST_F(DispatchTest, UpdateAdvancesEpochAfterStep)
{
    const Edge e{2, 3, 1.0f};
    const std::vector<std::uint8_t> reply =
        call(wire::encodeUpdateRequest(&e, 1));
    wire::Reader r(reply);
    EXPECT_EQ(r.u8(), static_cast<std::uint8_t>(wire::Status::kOk));
    EXPECT_EQ(r.u64(), 0u); // not yet applied
    EXPECT_TRUE(svc_->stepEpoch());
    EXPECT_EQ(svc_->graphEpoch(), 1u);
    const std::vector<std::uint8_t> deg =
        call(wire::encodeNodeRequest(wire::Op::kDegree, 2));
    wire::Reader rd(deg);
    rd.u8();
    EXPECT_EQ(rd.u64(), 1u); // epoch 1
    EXPECT_EQ(rd.u32(), 1u); // 2 -> 3 landed
}

TEST_F(DispatchTest, StatsReply)
{
    const std::vector<std::uint8_t> reply =
        call(wire::encodeEmptyRequest(wire::Op::kStats));
    wire::Reader r(reply);
    EXPECT_EQ(r.u8(), static_cast<std::uint8_t>(wire::Status::kOk));
    EXPECT_EQ(r.u64(), 0u); // graph epoch
    EXPECT_EQ(r.u64(), 0u); // algo epoch
    r.u64();                // accepted
    r.u64();                // shed
    r.u64();                // backlog
    EXPECT_EQ(r.u64(), 4u); // graph edges
    EXPECT_EQ(r.u32(), 4u); // graph nodes
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
}

TEST_F(DispatchTest, MalformedRequestsRejected)
{
    // Unknown op.
    EXPECT_EQ(call({42})[0],
              static_cast<std::uint8_t>(wire::Status::kBadRequest));
    // Trailing junk after a well-formed degree request.
    std::vector<std::uint8_t> req =
        wire::encodeNodeRequest(wire::Op::kDegree, 0);
    req.push_back(0xff);
    EXPECT_EQ(call(req)[0],
              static_cast<std::uint8_t>(wire::Status::kBadRequest));
    // Truncated node id.
    EXPECT_EQ(call({static_cast<std::uint8_t>(wire::Op::kDegree), 1})[0],
              static_cast<std::uint8_t>(wire::Status::kBadRequest));
    // TopK with a payload it should not have.
    std::vector<std::uint8_t> topk =
        wire::encodeEmptyRequest(wire::Op::kTopK);
    topk.push_back(0);
    EXPECT_EQ(call(topk)[0],
              static_cast<std::uint8_t>(wire::Status::kBadRequest));
}

TEST(DispatchBacklog, OverDepthOfferYieldsBacklogStatus)
{
    ServeConfig cfg;
    cfg.threads = 1;
    cfg.queueDepthEdges = 2;
    std::unique_ptr<GraphService> svc = makeService(cfg);
    svc->bootstrap({{0, 1, 1.0f}});
    const std::vector<Edge> edges(3, Edge{0, 1, 1.0f});
    const std::vector<std::uint8_t> reply = wire::handleRequest(
        *svc, wire::encodeUpdateRequest(edges.data(), edges.size()));
    EXPECT_EQ(reply[0],
              static_cast<std::uint8_t>(wire::Status::kBacklog));
    EXPECT_EQ(reply.size(), 1u);
    EXPECT_EQ(svc->stats().shedEdges, 3u);
}

// --- end-to-end snapshot consistency ------------------------------------

/** Serial per-epoch oracle state mirrored from a ReferenceStore pair. */
struct EpochOracle
{
    std::vector<std::uint32_t> outDeg;
    std::vector<std::uint32_t> inDeg;
    std::vector<std::vector<NodeId>> sortedOut;
    std::vector<std::uint32_t> bfsDist;
};

class ServeE2eTest : public ::testing::TestWithParam<DsKind>
{};

/**
 * The headline contract: while the epoch loop drains, stages, and
 * publishes batch after batch, concurrent readers must observe, for
 * whatever epoch tag their reply carries, *exactly* the serial oracle's
 * state at that epoch — degrees, neighbor sets, and BFS distances
 * bit-equal, never a blend of adjacent epochs. Epoch tags must also be
 * monotone per reader. Runs under TSan in the tier-1 matrix, which
 * additionally proves the stage/publish overlap is race-free.
 */
TEST_P(ServeE2eTest, ConcurrentReadsSeeExactEpochSnapshots)
{
    constexpr NodeId kNodes = 192;
    constexpr std::size_t kEpochs = 10;
    constexpr std::size_t kBatchEdges = 300;
    constexpr int kReaders = 3;

    ServeConfig cfg;
    cfg.ds = GetParam();
    cfg.threads = 2;
    cfg.bfsSource = 0;
    cfg.topK = 5;
    cfg.queueDepthEdges = 1 << 16;
    cfg.epochMaxEdges = 1 << 14; // one step drains a whole batch
    std::unique_ptr<GraphService> svc = makeService(cfg);

    // Serial oracle: the same batches applied to ReferenceStores, with
    // the full per-epoch state snapshotted *before* the service
    // publishes that epoch. Readers index it by the epoch tag their
    // replies carry; visibility is inherited from the epoch publication
    // (acquire load of an epoch implies the oracle writes that preceded
    // its publication are visible).
    ReferenceStore fwd, rev;
    fwd.ensureNodes(kNodes);
    rev.ensureNodes(kNodes);
    std::vector<EpochOracle> oracle(kEpochs + 1);
    std::vector<Edge> accepted; // every edge ever admitted, in order

    const auto snapshotOracle = [&](EpochOracle &o) {
        o.outDeg.resize(kNodes);
        o.inDeg.resize(kNodes);
        o.sortedOut.resize(kNodes);
        for (NodeId v = 0; v < kNodes; ++v) {
            o.outDeg[v] = fwd.degree(v);
            o.inDeg[v] = rev.degree(v);
            std::vector<NodeId> nbrs;
            fwd.forNeighbors(v, [&](const Neighbor &nbr) {
                nbrs.push_back(nbr.node);
            });
            std::sort(nbrs.begin(), nbrs.end());
            o.sortedOut[v] = std::move(nbrs);
        }
        o.bfsDist = test::refBfs(
            test::buildAdj(accepted, kNodes), cfg.bfsSource);
    };

    // Bootstrap graph == oracle epoch 0. The anchor edge pins
    // numNodes to kNodes in both.
    EdgeBatch seed = test::randomBatch(kNodes, 400, /*seed=*/1);
    seed.push_back({kNodes - 1, 0, 1.0f});
    {
        std::vector<Edge> seedEdges;
        for (std::size_t i = 0; i < seed.size(); ++i)
            seedEdges.push_back(seed[i]);
        svc->bootstrap(seedEdges);
        ThreadPool serialPool(1);
        fwd.updateBatch(seed, serialPool, /*reversed=*/false);
        rev.updateBatch(seed, serialPool, /*reversed=*/true);
        accepted.insert(accepted.end(), seedEdges.begin(),
                        seedEdges.end());
    }
    snapshotOracle(oracle[0]);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> failures{0};
    std::atomic<std::uint64_t> readsDone{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < kReaders; ++t) {
        readers.emplace_back([&, t] {
            std::mt19937_64 rng(500 + t);
            std::uint64_t lastGraphEpoch = 0;
            std::uint64_t lastAlgoEpoch = 0;
            while (!stop.load(std::memory_order_acquire)) {
                const NodeId v = static_cast<NodeId>(rng() % kNodes);
                switch (rng() % 3) {
                  case 0: {
                    const DegreeReply r = svc->degree(v);
                    const EpochOracle &o = oracle[r.epoch];
                    if (r.epoch < lastGraphEpoch ||
                        r.outDegree != o.outDeg[v] ||
                        r.inDegree != o.inDeg[v])
                        failures.fetch_add(1, std::memory_order_relaxed);
                    lastGraphEpoch = std::max(lastGraphEpoch, r.epoch);
                    break;
                  }
                  case 1: {
                    NeighborsReply r = svc->neighbors(v);
                    const EpochOracle &o = oracle[r.epoch];
                    std::sort(r.neighbors.begin(), r.neighbors.end());
                    if (r.epoch < lastGraphEpoch ||
                        r.degree != r.neighbors.size() ||
                        r.neighbors != o.sortedOut[v])
                        failures.fetch_add(1, std::memory_order_relaxed);
                    lastGraphEpoch = std::max(lastGraphEpoch, r.epoch);
                    break;
                  }
                  default: {
                    const BfsReply r = svc->bfsDistance(v);
                    const EpochOracle &o = oracle[r.epoch];
                    const std::uint32_t want = o.bfsDist[v];
                    const bool wantReachable = want != Bfs::kInf;
                    if (r.epoch < lastAlgoEpoch ||
                        r.reachable != wantReachable ||
                        (wantReachable && r.distance != want))
                        failures.fetch_add(1, std::memory_order_relaxed);
                    lastAlgoEpoch = std::max(lastAlgoEpoch, r.epoch);
                    break;
                  }
                }
                readsDone.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    // Writer lane: prepare the oracle for epoch e, then publish it,
    // while the readers above hammer the snapshot.
    ThreadPool serialPool(1);
    for (std::size_t e = 1; e <= kEpochs; ++e) {
        const EdgeBatch batch =
            test::randomBatch(kNodes, kBatchEdges, /*seed=*/100 + e);
        std::vector<Edge> edges;
        for (std::size_t i = 0; i < batch.size(); ++i)
            edges.push_back(batch[i]);
        fwd.updateBatch(batch, serialPool, /*reversed=*/false);
        rev.updateBatch(batch, serialPool, /*reversed=*/true);
        accepted.insert(accepted.end(), edges.begin(), edges.end());
        snapshotOracle(oracle[e]); // written BEFORE publication
        ASSERT_TRUE(svc->offerUpdate(edges.data(), edges.size()));
        ASSERT_TRUE(svc->stepEpoch());
        ASSERT_EQ(svc->graphEpoch(), e);
    }

    stop.store(true, std::memory_order_release);
    for (std::thread &r : readers)
        r.join();

    EXPECT_EQ(failures.load(std::memory_order_relaxed), 0u);
    EXPECT_GT(readsDone.load(std::memory_order_relaxed), 0u);
    const ServeStats s = svc->stats();
    EXPECT_EQ(s.graphEpoch, kEpochs);
    EXPECT_EQ(s.algoEpoch, kEpochs);
    EXPECT_EQ(s.backlogEdges, 0u);
    EXPECT_EQ(s.shedEdges, 0u);
    EXPECT_EQ(s.graphNodes, kNodes);
}

TEST_P(ServeE2eTest, IdleStepDoesNotAdvanceEpoch)
{
    ServeConfig cfg;
    cfg.ds = GetParam();
    cfg.threads = 1;
    std::unique_ptr<GraphService> svc = makeService(cfg);
    svc->bootstrap({{0, 1, 1.0f}});
    EXPECT_FALSE(svc->stepEpoch()); // nothing queued
    EXPECT_EQ(svc->graphEpoch(), 0u);
}

TEST_P(ServeE2eTest, BackgroundLoopDrainsOffers)
{
    ServeConfig cfg;
    cfg.ds = GetParam();
    cfg.threads = 1;
    cfg.epochIntervalMicros = 200;
    std::unique_ptr<GraphService> svc = makeService(cfg);
    svc->bootstrap({{0, 1, 1.0f}});
    svc->start();
    const Edge e{1, 2, 1.0f};
    ASSERT_TRUE(svc->offerUpdate(&e, 1));
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(30);
    while (svc->graphEpoch() == 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    svc->stop();
    EXPECT_GE(svc->graphEpoch(), 1u);
    EXPECT_EQ(svc->degree(1).outDegree, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllStores, ServeE2eTest,
                         ::testing::Values(DsKind::AS, DsKind::AC,
                                           DsKind::Stinger, DsKind::DAH,
                                           DsKind::Hybrid),
                         [](const ::testing::TestParamInfo<DsKind> &tpi) {
                             return std::string(toString(tpi.param));
                         });

} // namespace
} // namespace saga
