/**
 * @file
 * Randomized multi-threaded stress harness (the sanitizer workout).
 *
 * The sanitizer CI matrix runs this suite under TSan and ASan+UBSan; the
 * tests are shaped so the concurrency the paper characterizes is actually
 * *reached*, not just plausible:
 *
 *  - adversarial ingestion batches — hub-heavy (intra-vertex contention on
 *    the shared-style stores), duplicate-heavy with per-occurrence weights
 *    (racing dedup must still keep the minimum weight), and interleaved
 *    orientations (both directions of every edge into one store);
 *  - FS + INC across all six algorithms at maximum pool width, asserting
 *    FS-vs-INC value agreement and run-to-run determinism;
 *  - a propagation chain long enough to wrap the INC engine's epoch byte.
 *
 * Every assertion is on deterministic final state, so a failure is a real
 * bug rather than schedule noise.
 */

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ds/adj_chunked.h"
#include "ds/adj_shared.h"
#include "ds/dah.h"
#include "ds/hybrid.h"
#include "ds/reference.h"
#include "ds/stinger.h"
#include "platform/thread_pool.h"
#include "saga/driver.h"
#include "test_util.h"

namespace saga {
namespace {

/** Widest pool the host supports (at least 4, so races stay reachable). */
std::size_t
maxPoolWidth()
{
    return std::max<std::size_t>(4, std::thread::hardware_concurrency());
}

/**
 * Hub-heavy batch: half of all edges touch one of a few hub vertices (as
 * source or destination), concentrating contention the way the paper's
 * heavy-tailed per-batch degree profiles do.
 */
EdgeBatch
hubHeavyBatch(NodeId num_nodes, std::size_t count, std::uint64_t seed,
              NodeId num_hubs = 4)
{
    Rng rng(seed);
    std::vector<Edge> edges;
    edges.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        NodeId src = static_cast<NodeId>(rng.below(num_nodes));
        NodeId dst = static_cast<NodeId>(rng.below(num_nodes));
        const std::uint64_t roll = rng.below(4);
        if (roll == 0)
            src = static_cast<NodeId>(rng.below(num_hubs));
        else if (roll == 1)
            dst = static_cast<NodeId>(rng.below(num_hubs));
        // Weight is a pure function of (src, dst): racing duplicate
        // inserts all carry the same weight.
        const Weight weight = static_cast<Weight>(
            (src * 2654435761u + dst * 40503u) % 32 + 1);
        edges.push_back({src, dst, weight});
    }
    return EdgeBatch(std::move(edges));
}

/**
 * Duplicate-heavy batch over a tiny key space: most edges repeat, and each
 * occurrence carries a *different* weight, so the stores' min-weight dedup
 * must converge to the per-edge minimum no matter which racing insert wins
 * the append.
 */
EdgeBatch
duplicateHeavyBatch(NodeId key_space, std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Edge> edges;
    edges.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const NodeId src = static_cast<NodeId>(rng.below(key_space));
        const NodeId dst = static_cast<NodeId>(rng.below(key_space));
        const Weight weight = static_cast<Weight>(rng.below(97) + 1);
        edges.push_back({src, dst, weight});
    }
    return EdgeBatch(std::move(edges));
}

template <typename Store>
Store
makeStressStore()
{
    if constexpr (std::is_constructible_v<Store, std::size_t>) {
        return Store(4); // AC/DAH: 4 chunks; Stinger: 4-entry blocks
    } else {
        return Store();
    }
}

template <typename Store>
class StoreRaceStress : public ::testing::Test
{
  protected:
    StoreRaceStress()
        : store_(makeStressStore<Store>()), pool_(maxPoolWidth()),
          serial_(1)
    {}

    void
    update(const EdgeBatch &batch, bool reversed = false)
    {
        store_.updateBatch(batch, pool_, reversed);
        oracle_.updateBatch(batch, serial_, reversed);
    }

    void
    expectMatchesOracle()
    {
        ASSERT_EQ(store_.numNodes(), oracle_.numNodes());
        ASSERT_EQ(store_.numEdges(), oracle_.numEdges());
        for (NodeId v = 0; v < oracle_.numNodes(); ++v) {
            ASSERT_EQ(test::sortedNeighbors(store_, v),
                      test::sortedNeighbors(oracle_, v))
                << "v=" << v;
        }
    }

    Store store_;
    ReferenceStore oracle_;
    ThreadPool pool_;
    ThreadPool serial_;
};

using StressStoreTypes = ::testing::Types<AdjSharedStore, AdjChunkedStore,
                                          StingerStore, DahStore,
                                          HybridStore>;
TYPED_TEST_SUITE(StoreRaceStress, StressStoreTypes);

TYPED_TEST(StoreRaceStress, HubHeavyStreamMatchesOracle)
{
    for (int b = 0; b < 4; ++b)
        this->update(hubHeavyBatch(400, 3000, 5000 + b));
    this->expectMatchesOracle();
}

TYPED_TEST(StoreRaceStress, DuplicateHeavyKeepsMinWeight)
{
    // ~6000 draws over an 80x80 key space: every edge is ingested many
    // times with distinct weights, mostly in the same parallel batch.
    for (int b = 0; b < 3; ++b)
        this->update(duplicateHeavyBatch(80, 2000, 9000 + b));
    this->expectMatchesOracle();
}

TYPED_TEST(StoreRaceStress, InterleavedOrientationsMatchOracle)
{
    // Both orientations of every batch into the same store (the
    // undirected ingest path), alternating which direction goes first.
    for (int b = 0; b < 3; ++b) {
        const EdgeBatch batch = hubHeavyBatch(300, 2000, 7000 + b);
        this->update(batch, /*reversed=*/(b % 2 != 0));
        this->update(batch, /*reversed=*/(b % 2 == 0));
    }
    this->expectMatchesOracle();
}

TYPED_TEST(StoreRaceStress, RepeatedIngestionIsIdempotent)
{
    const EdgeBatch batch = duplicateHeavyBatch(120, 2500, 31);
    this->update(batch);
    const std::uint64_t edges_after_first = this->store_.numEdges();
    for (int round = 0; round < 3; ++round)
        this->update(batch);
    EXPECT_EQ(this->store_.numEdges(), edges_after_first);
    this->expectMatchesOracle();
}

/** FS + INC across every algorithm under maximum pool width. */
class ComputeRaceStress : public ::testing::TestWithParam<AlgKind>
{};

std::string
algName(const ::testing::TestParamInfo<AlgKind> &info)
{
    return toString(info.param);
}

std::vector<double>
runStream(DsKind ds, AlgKind alg, ModelKind model)
{
    RunConfig cfg;
    cfg.ds = ds;
    cfg.alg = alg;
    cfg.model = model;
    cfg.threads = maxPoolWidth();
    auto runner = makeRunner(cfg);
    for (int b = 0; b < 4; ++b)
        runner->processBatch(hubHeavyBatch(250, 1500, 1300 + b));
    return runner->values();
}

TEST_P(ComputeRaceStress, FsIncAgreeAndRunsAreDeterministic)
{
    const AlgKind alg = GetParam();
    // AS for the shared-style locking path, DAH for chunk ownership.
    for (DsKind ds : {DsKind::AS, DsKind::DAH}) {
        const std::vector<double> fs = runStream(ds, alg, ModelKind::FS);
        const std::vector<double> fs2 = runStream(ds, alg, ModelKind::FS);
        const std::vector<double> inc = runStream(ds, alg, ModelKind::INC);
        ASSERT_EQ(fs.size(), inc.size());

        if (alg == AlgKind::PR) {
            // PR sums ranks in stored-neighbor order, and racing appends
            // make that order run-dependent, so reruns agree only up to
            // float associativity; FS-vs-INC is tolerance-bounded.
            for (std::size_t v = 0; v < fs.size(); ++v) {
                EXPECT_NEAR(fs[v], fs2[v], 1e-9)
                    << toString(ds) << " v=" << v;
                EXPECT_NEAR(fs[v], inc[v], 5e-3)
                    << toString(ds) << " v=" << v;
            }
            continue;
        }
        EXPECT_EQ(fs, fs2) << toString(ds);
        for (std::size_t v = 0; v < fs.size(); ++v) {
            if (std::isinf(fs[v])) {
                EXPECT_TRUE(std::isinf(inc[v]) &&
                            (fs[v] > 0) == (inc[v] > 0))
                    << toString(ds) << " v=" << v;
            } else {
                EXPECT_EQ(fs[v], inc[v]) << toString(ds) << " v=" << v;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ComputeRaceStress,
                         ::testing::Values(AlgKind::BFS, AlgKind::CC,
                                           AlgKind::MC, AlgKind::PR,
                                           AlgKind::SSSP, AlgKind::SSWP),
                         algName);

/**
 * A propagation chain longer than 255 rounds: the INC engine's epoch-byte
 * visited scheme wraps, and the wrap handling (one real clear per 255
 * rounds) must not let stale marks suppress propagation.
 */
TEST(IncEpochWrap, LongChainStillReachesFixedPoint)
{
    RunConfig fs_cfg;
    fs_cfg.ds = DsKind::AS;
    fs_cfg.alg = AlgKind::BFS;
    fs_cfg.model = ModelKind::FS;
    fs_cfg.threads = maxPoolWidth();
    RunConfig inc_cfg = fs_cfg;
    inc_cfg.model = ModelKind::INC;

    auto fs = makeRunner(fs_cfg);
    auto inc = makeRunner(inc_cfg);

    // A 700-vertex path ingested in one batch, listed deepest-edge first
    // so the affected sweep visits vertices in decreasing depth order and
    // BFS depth propagates exactly one hop per INC round: reaching the
    // fixed point needs ~700 rounds (the epoch byte wraps twice).
    std::vector<Edge> chain;
    for (NodeId v = 700; v > 0; --v)
        chain.push_back({v - 1, v, 1.0f});
    const EdgeBatch batch{std::move(chain)};
    fs->processBatch(batch);
    inc->processBatch(batch);
    EXPECT_EQ(fs->values(), inc->values());
}

} // namespace
} // namespace saga
